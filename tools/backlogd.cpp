// backlogd — the Backlog network daemon.
//
//   backlogd <root> [--port N] [--bind ADDR] [--shards N] [--io-threads N]
//
// Hosts every volume directory under <root> in one VolumeManager and serves
// the wire protocol (see src/net/frame.hpp) on an epoll server. Port 0 (the
// default) binds an ephemeral port; the bound address is printed to stdout
// as soon as the server is accepting —
//
//   backlogd: listening on 127.0.0.1:43211
//
// — flushed, so a harness can start the daemon, read one line and connect
// (the CI loopback smoke test does exactly this). SIGINT/SIGTERM shut the
// daemon down cleanly: stop accepting, close every connection, flush and
// close every volume.
//
// Malformed invocations print usage and exit 2; runtime failures exit 1.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "net/handlers.hpp"
#include "service/service.hpp"

using namespace backlog;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: backlogd <root> [--port N] [--bind ADDR] [--shards N] "
               "[--io-threads N]\n");
  return 2;
}

bool parse_u64(const char* arg, std::uint64_t& out,
               std::uint64_t min_value = 0,
               std::uint64_t max_value = UINT64_MAX) {
  if (arg == nullptr || *arg == '\0' || *arg == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 0);
  if (errno != 0 || end == arg || *end != '\0') return false;
  if (v < min_value || v > max_value) return false;
  out = v;
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) { g_stop = 1; }

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* root = argv[1];
  std::uint64_t port = 0, shards = 4, io_threads = 2;
  std::string bind_address = "127.0.0.1";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], port, 0, 65535)) return usage();
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      bind_address = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], shards, 1, 1024)) return usage();
    } else if (std::strcmp(argv[i], "--io-threads") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], io_threads, 1, 64)) return usage();
    } else {
      return usage();
    }
  }

  try {
    service::ServiceOptions so;
    so.shards = shards;
    so.root = root;
    so.sync_writes = true;  // a remote mutation must be durable when acked
    service::VolumeManager vm(so);

    // Host whatever already lives under the root; remote kOpenVolume adds
    // more at runtime.
    std::vector<std::string> tenants;
    std::filesystem::create_directories(root);
    for (const auto& e : std::filesystem::directory_iterator(root)) {
      if (e.is_directory() &&
          e.path().filename().string().find('.') == std::string::npos) {
        tenants.push_back(e.path().filename().string());
      }
    }
    for (const auto& t : tenants) vm.open_volume(t);

    net::ServiceEndpoint endpoint(vm);
    net::ServerOptions opts;
    opts.bind_address = bind_address;
    opts.port = static_cast<std::uint16_t>(port);
    opts.io_threads = io_threads;
    endpoint.start(opts);

    std::printf("backlogd: listening on %s:%u (%zu volumes, %llu shards)\n",
                bind_address.c_str(), endpoint.port(), tenants.size(),
                static_cast<unsigned long long>(shards));
    std::fflush(stdout);

    struct sigaction sa{};
    sa.sa_handler = on_signal;
    ::sigaction(SIGINT, &sa, nullptr);
    ::sigaction(SIGTERM, &sa, nullptr);
    sigset_t mask;
    ::sigemptyset(&mask);
    while (g_stop == 0) ::sigsuspend(&mask);

    std::fprintf(stderr, "backlogd: shutting down\n");
    endpoint.stop();
    for (const auto& t : vm.tenants()) vm.close_volume(t);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backlogd: %s\n", e.what());
    return 1;
  }
}
