// backlogd — the Backlog network daemon.
//
//   backlogd <root> [--port N] [--bind ADDR] [--shards N] [--io-threads N]
//            [--commit-window-us N]
//
// Hosts every volume directory under <root> in one VolumeManager and serves
// the wire protocol (see src/net/frame.hpp) on an epoll server. Port 0 (the
// default) binds an ephemeral port; the bound address is printed to stdout
// as soon as the server is accepting —
//
//   backlogd: listening on 127.0.0.1:43211
//
// — flushed, so a harness can start the daemon, read one line and connect
// (the CI loopback smoke test does exactly this). SIGINT/SIGTERM shut the
// daemon down cleanly: stop accepting, close every connection, flush and
// close every volume.
//
// Malformed invocations print usage and exit 2; runtime failures exit 1.
#include <csignal>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include "net/handlers.hpp"
#include "service/service.hpp"

using namespace backlog;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: backlogd <root> [--port N] [--bind ADDR] [--shards N] "
               "[--io-threads N] [--commit-window-us N]\n"
               "  --commit-window-us N   group-commit WAL window (0 = fsync "
               "per batch, the default)\n");
  return 2;
}

bool parse_u64(const char* arg, std::uint64_t& out,
               std::uint64_t min_value = 0,
               std::uint64_t max_value = UINT64_MAX) {
  if (arg == nullptr || *arg == '\0' || *arg == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 0);
  if (errno != 0 || end == arg || *end != '\0') return false;
  if (v < min_value || v > max_value) return false;
  out = v;
  return true;
}

volatile std::sig_atomic_t g_stop = 0;
void on_signal(int) {
  // Second signal: the clean shutdown (final consistency points, fsyncs,
  // WAL truncation) is taking longer than whoever is signalling will wait.
  // Force out with the conventional killed-by-SIGTERM code; recovery will
  // replay the WAL on the next start.
  if (g_stop != 0) ::_exit(143);
  g_stop = 1;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const char* root = argv[1];
  std::uint64_t port = 0, shards = 4, io_threads = 2, commit_window_us = 0;
  std::string bind_address = "127.0.0.1";
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], port, 0, 65535)) return usage();
    } else if (std::strcmp(argv[i], "--bind") == 0 && i + 1 < argc) {
      bind_address = argv[++i];
    } else if (std::strcmp(argv[i], "--shards") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], shards, 1, 1024)) return usage();
    } else if (std::strcmp(argv[i], "--io-threads") == 0 && i + 1 < argc) {
      if (!parse_u64(argv[++i], io_threads, 1, 64)) return usage();
    } else if (std::strcmp(argv[i], "--commit-window-us") == 0 &&
               i + 1 < argc) {
      if (!parse_u64(argv[++i], commit_window_us, 0, 10'000'000))
        return usage();
    } else {
      return usage();
    }
  }

  // Handlers go in *before* the VolumeManager exists: a SIGTERM landing
  // during recovery/WAL replay must request a clean stop (finish startup,
  // then immediately shut down) rather than hit the default action and kill
  // the process mid-recovery. SA_RESTART keeps recovery's blocking I/O from
  // surfacing spurious EINTRs. The signals stay *blocked* until the wait
  // loop — sigsuspend unblocks and waits atomically, so a signal delivered
  // at any point during startup cannot slip between the g_stop check and
  // the wait (the classic lost-wakeup race).
  struct sigaction sa{};
  sa.sa_handler = on_signal;
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
  sigset_t blocked, orig_mask;
  ::sigemptyset(&blocked);
  ::sigaddset(&blocked, SIGINT);
  ::sigaddset(&blocked, SIGTERM);
  ::sigprocmask(SIG_BLOCK, &blocked, &orig_mask);

  try {
    service::ServiceOptions so;
    so.shards = shards;
    so.root = root;
    // A remote mutation must be durable when acked: every apply future
    // resolves only once its WAL record is fsync-covered. The window
    // amortizes one fsync over every batch on the shard (0 = per-batch).
    so.wal_enabled = true;
    so.wal_commit_window_micros = static_cast<std::uint32_t>(commit_window_us);
    service::VolumeManager vm(so);

    // Host whatever already lives under the root; remote kOpenVolume adds
    // more at runtime.
    std::vector<std::string> tenants;
    std::filesystem::create_directories(root);
    for (const auto& e : std::filesystem::directory_iterator(root)) {
      if (e.is_directory() &&
          e.path().filename().string().find('.') == std::string::npos) {
        tenants.push_back(e.path().filename().string());
      }
    }
    for (const auto& t : tenants) vm.open_volume(t);

    net::ServiceEndpoint endpoint(vm);
    net::ServerOptions opts;
    opts.bind_address = bind_address;
    opts.port = static_cast<std::uint16_t>(port);
    opts.io_threads = io_threads;
    endpoint.start(opts);

    std::printf("backlogd: listening on %s:%u (%zu volumes, %llu shards)\n",
                bind_address.c_str(), endpoint.port(), tenants.size(),
                static_cast<unsigned long long>(shards));
    std::fflush(stdout);

    // Wait with the original (signal-deliverable) mask; a SIGTERM that
    // arrived during startup is pending and fires on the first sigsuspend,
    // turning an early kill into an immediate clean shutdown.
    while (g_stop == 0) ::sigsuspend(&orig_mask);
    // Unblock for the shutdown phase so a second signal reaches the handler
    // and forces an exit instead of queueing behind a stuck close.
    ::sigprocmask(SIG_SETMASK, &orig_mask, nullptr);

    std::fprintf(stderr, "backlogd: shutting down\n");
    endpoint.stop();
    for (const auto& t : vm.tenants()) vm.close_volume(t);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backlogd: %s\n", e.what());
    return 1;
  }
}
