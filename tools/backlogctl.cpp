// backlogctl — command-line inspector for a Backlog volume directory.
//
//   backlogctl info <dir>                  volume summary (CP, lines, runs)
//   backlogctl runs <dir>                  list run files with metadata
//   backlogctl query <dir> <block> [n]     masked owner query (the paper's
//                                          "tell me all the objects...")
//   backlogctl raw <dir> <block> [n]       unmasked joined records
//   backlogctl scan <dir>                  dump every joined record
//   backlogctl maintain <dir>              run database maintenance (§5.2)
//   backlogctl dump-run <dir> <file>       decode one run file's records
//   backlogctl stress <dir> <tenants> <ops> [shards] [--batch N]
//                                          drive the multi-tenant volume
//                                          service: <tenants> volumes under
//                                          <dir>, ~<ops> block ops total,
//                                          concurrent replay + background
//                                          maintenance, throughput report.
//                                          --batch N feeds N-op batches
//                                          through the batched hot-path
//                                          verb (apply_batch) instead of
//                                          apply()'s per-op loop
//   backlogctl snap <root> <tenant> [line]
//                                          take + commit a snapshot of the
//                                          tenant's line (default 0)
//   backlogctl clone <root> <src> <dst> [line [version]]
//                                          materialize a writable clone of
//                                          src's snapshot as new tenant
//                                          <dst> (default: latest snapshot
//                                          of line 0). Copy-on-write: run
//                                          files are hard-linked and
//                                          refcounted, not copied; prints
//                                          the shared-byte accounting
//   backlogctl destroy <root> <tenant> [shards]
//                                          permanently delete the tenant's
//                                          volume, releasing every shared
//                                          file through the refcount
//                                          manifest (files shared with
//                                          clones survive)
//   backlogctl migrate <root> <tenant> <target-shard> [shards]
//                                          live-migrate the tenant between
//                                          shards of a <shards>-wide service
//                                          (a protocol demo: placement is
//                                          hash-routed again on reopen)
//   backlogctl qos <root> <tenant> <ops-per-sec> <bytes-per-sec> [ops]
//                                          drive [ops] single-op updates
//                                          through the tenant under that
//                                          TenantQos (0 = unlimited) and
//                                          report admission counters +
//                                          effective throughput
//   backlogctl balance <root> <shards> [cycles]
//                                          open every volume under <root>,
//                                          pulse a synthetic load and run
//                                          the autonomous balancer for
//                                          [cycles] cycles; print the moves
//                                          and final placement
//   backlogctl stats <root> [shards] [--json]
//                                          open every volume under <root>
//                                          and print the merged ServiceStats
//                                          (per-tenant table, or one JSON
//                                          object with --json)
//   backlogctl cache <root> [shards] [--json]
//                                          open every volume under <root>
//                                          and print the shared block
//                                          cache's counters plus each
//                                          volume's result-cache counters
//   backlogctl cache clear <root> [shards]
//                                          drop every cached page and
//                                          cached query result (the
//                                          paper's cold-cache lever,
//                                          fleet-wide), then print the
//                                          report
//   backlogctl metrics <root> [shards] [--prom|--json] [--watch N]
//                                          open every volume, pulse a
//                                          synthetic load through the
//                                          service and print the metrics
//                                          registry: Prometheus exposition
//                                          (default) or JSON. --watch N
//                                          polls N windows first, printing
//                                          one rate line per window
//   backlogctl trace <root> <tenants> <ops> [shards] [--sample N] [--slow-us N]
//                                          stress-style run with per-op
//                                          tracing on (sample 1-in-N,
//                                          default 1); dumps the newest
//                                          sampled spans and the slow-op
//                                          log (ops slower than --slow-us)
//   backlogctl --connect host:port <cmd> [args]
//                                          run any subcommand against a live
//                                          backlogd over the wire protocol.
//                                          Volume commands (info/runs/query/
//                                          raw/scan/maintain/dump-run) take
//                                          the *tenant name* where the local
//                                          form takes a directory; service
//                                          commands keep their <root>
//                                          positional for symmetry but
//                                          operate on the daemon's root.
//                                          Reports are rendered server-side
//                                          through the same code as the
//                                          local path (src/net/render.hpp),
//                                          so the output is byte-identical.
//
// Malformed invocations (wrong arity, non-numeric or out-of-range
// arguments) print usage and exit 2; runtime failures exit 1.
//
// Note: opening a volume re-establishes the manifest base (one metadata
// write); all other inspection is read-only (stress/snap/clone/destroy/
// migrate/qos/balance, of course, write). Volume-level commands (info/
// maintain/...) open the directory standalone, outside any service: a
// `maintain` on a volume whose runs are CoW-shared with clones is safe
// (hard links keep sharers intact) but leaves the service root's FILEREFS
// accounting stale until the next service start recounts it.
#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "core/backlog_db.hpp"
#include "fsim/multi_tenant.hpp"
#include "lsm/run_file.hpp"
#include "net/client.hpp"
#include "net/render.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

using namespace backlog;

namespace {

/// Shared by every remote-mode connection. `--wait-ms N` after the
/// `--connect` spec fills retry_for_ms so scripts (and CI) can start the
/// client before the daemon finishes binding instead of sleeping and hoping.
net::Client::ConnectOptions g_connect_opts;

int usage() {
  std::fprintf(stderr,
               "usage: backlogctl <info|runs|query|raw|scan|maintain|dump-run|"
               "stress|snap|clone|destroy|migrate|qos|balance|stats|cache|"
               "metrics|trace> <dir> [args]\n"
               "       backlogctl query|raw <dir> <block> [count]\n"
               "       backlogctl dump-run <dir> <file>\n"
               "       backlogctl stress <dir> <tenants> <ops> [shards] [--batch N]\n"
               "       backlogctl snap <root> <tenant> [line]\n"
               "       backlogctl clone <root> <src> <dst> [line [version]]\n"
               "       backlogctl destroy <root> <tenant> [shards]\n"
               "       backlogctl migrate <root> <tenant> <target-shard> "
               "[shards]\n"
               "       backlogctl qos <root> <tenant> <ops-per-sec> "
               "<bytes-per-sec> [ops]\n"
               "       backlogctl balance <root> <shards> [cycles]\n"
               "       backlogctl stats <root> [shards] [--json]\n"
               "       backlogctl cache <root> [shards] [--json]\n"
               "       backlogctl cache clear <root> [shards]\n"
               "       backlogctl metrics <root> [shards] [--prom|--json] "
               "[--watch N]\n"
               "       backlogctl trace <root> <tenants> <ops> [shards] "
               "[--sample N] [--slow-us N]\n"
               "       backlogctl --connect host:port [--wait-ms N] <cmd> "
               "[args]\n"
               "                  (volume commands take the tenant name; "
               "--wait-ms retries\n"
               "                  refused connects for N ms — races daemon "
               "startup safely)\n");
  return 2;
}

/// Strict numeric parse: the whole argument must be a decimal/hex number in
/// [min, max]. Malformed arguments are a usage error, not silently 0 (which
/// strtoull alone would give for "abc").
bool parse_u64(const char* arg, std::uint64_t& out,
               std::uint64_t min_value = 0,
               std::uint64_t max_value = UINT64_MAX) {
  if (arg == nullptr || *arg == '\0' || *arg == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(arg, &end, 0);
  if (errno != 0 || end == arg || *end != '\0') return false;
  if (v < min_value || v > max_value) return false;
  out = v;
  return true;
}

service::ServiceOptions service_options(const char* root, std::size_t shards) {
  service::ServiceOptions so;
  so.shards = shards;
  so.root = root;
  so.sync_writes = true;  // a CLI mutation should be durable when it returns
  return so;
}

// The inspection reports are rendered through src/net/render.hpp — the same
// functions the network server uses for the *_text verbs — so local and
// --connect output stay byte-identical by construction.

int cmd_info(storage::Env& env) {
  core::BacklogDb db(env);
  std::fputs(net::render_info(db, env.root()).c_str(), stdout);
  return 0;
}

int cmd_runs(storage::Env& env) {
  core::BacklogDb db(env);  // opening replays the manifest first
  std::fputs(net::render_runs(env).c_str(), stdout);
  return 0;
}

int cmd_query(storage::Env& env, core::BlockNo block, std::uint64_t count,
              bool raw) {
  core::BacklogDb db(env);
  const std::string out = raw
      ? net::render_records(db.query_raw(block, count), /*indent=*/true)
      : net::render_query(db.query(block, count));
  std::fputs(out.c_str(), stdout);
  return 0;
}

int cmd_scan(storage::Env& env) {
  core::BacklogDb db(env);
  std::fputs(net::render_records(db.scan_all(), /*indent=*/false).c_str(),
             stdout);
  return 0;
}

int cmd_maintain(storage::Env& env) {
  core::BacklogDb db(env);
  std::fputs(net::render_maintenance(db.maintain()).c_str(), stdout);
  return 0;
}

int cmd_dump_run(storage::Env& env, const std::string& file) {
  std::fputs(net::render_dump_run(env, file).c_str(), stdout);
  return 0;
}

int cmd_stress(const char* dir, std::uint64_t tenants, std::uint64_t total_ops,
               std::uint64_t shards, std::uint64_t batch) {
  if (tenants == 0 || total_ops == 0 || shards == 0) return usage();

  service::ServiceOptions so;
  so.shards = shards;
  so.root = dir;
  so.sync_writes = false;
  service::VolumeManager vm(so);

  service::MaintenancePolicy policy;
  policy.l0_run_threshold = 24;
  policy.poll_interval = std::chrono::milliseconds(10);
  service::MaintenanceScheduler scheduler(vm, policy);

  std::vector<fsim::TenantWorkload> workloads;
  for (std::uint64_t i = 0; i < tenants; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "tenant-%03llu",
                  static_cast<unsigned long long>(i));
    vm.open_volume(name);
    fsim::TenantTraceOptions to;
    to.block_ops = std::max<std::uint64_t>(1, total_ops / tenants);
    to.seed = 42 + i;
    workloads.push_back({name, fsim::synthesize_tenant_trace(to)});
  }

  const auto t0 = std::chrono::steady_clock::now();
  fsim::ReplayOptions ro;
  ro.query_every_ops = 64;
  if (batch > 0) {
    ro.batch_ops = batch;
    ro.use_apply_batch = true;  // the batched hot-path verb (apply_batch)
  }
  const auto results = fsim::replay_concurrently(vm, workloads, ro);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  scheduler.stop();

  std::uint64_t ops = 0;
  for (const auto& r : results) ops += r.ops;
  const service::ServiceStats stats = vm.stats();
  std::printf("shards:            %llu\n",
              static_cast<unsigned long long>(shards));
  std::printf("tenants:           %llu\n",
              static_cast<unsigned long long>(tenants));
  std::printf("update verb:       %s\n",
              batch > 0 ? "apply_batch (batched hot path)" : "apply");
  std::printf("block ops:         %" PRIu64 " in %.2f s (%.0f ops/s)\n", ops,
              wall, wall > 0 ? ops / wall : 0.0);
  std::printf("queries:           %" PRIu64 " (p50 %" PRIu64 " us, p99 %" PRIu64
              " us)\n",
              stats.total.queries,
              stats.total.query_micros.quantile_micros(0.50),
              stats.total.query_micros.quantile_micros(0.99));
  std::printf("consistency pts:   %" PRIu64 " (p99 %" PRIu64 " us)\n",
              stats.total.cps, stats.total.cp_micros.quantile_micros(0.99));
  std::printf("maintenance:       %" PRIu64 " runs, %" PRIu64 " skipped probes\n",
              stats.total.maintenance_runs, stats.total.maintenance_skipped);
  std::printf("io:                %" PRIu64 " page reads, %" PRIu64
              " page writes\n",
              stats.total.io.page_reads, stats.total.io.page_writes);
  std::printf("%-12s %6s %10s %8s %8s %10s %12s\n", "tenant", "shard", "ops",
              "cps", "queries", "maint", "page_writes");
  for (const auto& [name, ts] : stats.tenants) {
    std::printf("%-12s %6zu %10" PRIu64 " %8" PRIu64 " %8" PRIu64 " %10" PRIu64
                " %12" PRIu64 "\n",
                name.c_str(), ts.shard, ts.updates, ts.cps, ts.queries,
                ts.maintenance_runs, ts.io.page_writes);
  }
  // Leave the volumes cleanly closed (flushes anything still buffered).
  for (const auto& name : vm.tenants()) vm.close_volume(name);
  return 0;
}

int cmd_snap(const char* root, const std::string& tenant, core::LineId line) {
  service::VolumeManager vm(service_options(root, 1));
  vm.open_volume(tenant);
  const core::Epoch version = vm.take_snapshot(tenant, line).get();
  std::printf("retained snapshot (line %" PRIu64 ", v%" PRIu64 ") of %s\n",
              line, version, tenant.c_str());
  vm.close_volume(tenant);
  return 0;
}

int cmd_clone(const char* root, const std::string& src, const std::string& dst,
              core::LineId line, std::uint64_t version_or_latest) {
  service::VolumeManager vm(service_options(root, 1));
  vm.open_volume(src);
  core::Epoch version = version_or_latest;
  if (version == 0) {  // default: the latest retained snapshot of the line
    const auto versions = vm.list_versions(src, line).get();
    if (versions.empty()) {
      std::fprintf(stderr,
                   "backlogctl: %s line %" PRIu64
                   " has no retained snapshot (run `backlogctl snap` first)\n",
                   src.c_str(), line);
      return 1;
    }
    version = versions.back();
  }
  const core::LineId new_line = vm.clone_volume(src, dst, line, version);
  std::printf("cloned %s snapshot (line %" PRIu64 ", v%" PRIu64
              ") -> tenant %s, writable line %" PRIu64 "\n",
              src.c_str(), line, version, dst.c_str(), new_line);
  const core::FileManifest::Stats fs = vm.shared_files().stats();
  std::printf("copy-on-write: %" PRIu64 " shared files, %" PRIu64
              " shared bytes (%.2f MB stored once instead of per clone)\n",
              fs.shared_files, fs.shared_bytes,
              fs.saved_bytes / (1024.0 * 1024.0));
  vm.close_volume(dst);
  vm.close_volume(src);
  return 0;
}

int cmd_destroy(const char* root, const std::string& tenant,
                std::size_t shards) {
  // A destructive verb must never *create* its target: open_volume would
  // happily materialize an empty directory for a typo'd name and report
  // "destroyed" with nothing deleted.
  if (!std::filesystem::is_directory(std::filesystem::path(root) / tenant)) {
    std::fprintf(stderr, "backlogctl: no volume '%s' under %s\n",
                 tenant.c_str(), root);
    return 1;
  }
  service::VolumeManager vm(service_options(root, shards));
  vm.open_volume(tenant);
  const auto before = vm.shared_files().stats();
  vm.destroy_volume(tenant);
  const auto after = vm.shared_files().stats();
  std::printf("destroyed %s: released %" PRIu64
              " shared-file references; %" PRIu64 " files still shared "
              "elsewhere\n",
              tenant.c_str(),
              before.shared_files >= after.shared_files
                  ? before.shared_files - after.shared_files
                  : 0,
              after.shared_files);
  return 0;
}

int cmd_qos(const char* root, const std::string& tenant,
            std::uint64_t ops_per_sec, std::uint64_t bytes_per_sec,
            std::uint64_t ops) {
  service::VolumeManager vm(service_options(root, 1));
  vm.open_volume(tenant);

  service::TenantQos qos;
  qos.ops_per_sec = ops_per_sec == 0 ? service::kUnlimitedRate
                                     : static_cast<double>(ops_per_sec);
  qos.bytes_per_sec = bytes_per_sec == 0 ? service::kUnlimitedRate
                                         : static_cast<double>(bytes_per_sec);
  qos.burst_ops = 256;
  qos.burst_bytes = 1 << 20;
  qos.max_wait_queue = 1 << 16;
  vm.set_qos(tenant, qos);
  std::printf("qos on %s: %s ops/s, %s bytes/s (burst %g ops / %g bytes)\n",
              tenant.c_str(),
              ops_per_sec == 0 ? "unlimited" : std::to_string(ops_per_sec).c_str(),
              bytes_per_sec == 0 ? "unlimited" : std::to_string(bytes_per_sec).c_str(),
              qos.burst_ops, qos.burst_bytes);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::future<void>> futs;
  futs.reserve(ops);
  for (std::uint64_t i = 0; i < ops; ++i) {
    service::UpdateOp op;
    op.kind = service::UpdateOp::Kind::kAdd;
    op.key.block = 1 + i;
    op.key.inode = 2;
    op.key.length = 1;
    futs.push_back(vm.apply(tenant, {op}));
  }
  std::uint64_t rejected = 0;
  for (auto& f : futs) {
    try {
      f.get();
    } catch (const service::ServiceError&) {
      ++rejected;
    }
  }
  vm.consistency_point(tenant).get();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const service::QosSnapshot snap = vm.qos(tenant);
  std::printf("drove %" PRIu64 " ops in %.2f s (%.0f ops/s effective)\n", ops,
              wall, wall > 0 ? static_cast<double>(ops - rejected) / wall : 0);
  std::printf("admission: %" PRIu64 " direct, %" PRIu64 " waited, %" PRIu64
              " released, %" PRIu64 " rejected (kThrottled)\n",
              snap.admitted, snap.queued, snap.released, snap.rejected);
  vm.close_volume(tenant);
  return 0;
}

/// Every directory under a service root is a volume; sorted for stable
/// output. Empty result = nothing to operate on (callers report and exit 1).
std::vector<std::string> discover_tenants(const char* root) {
  std::vector<std::string> tenants;
  for (const auto& e : std::filesystem::directory_iterator(root)) {
    if (e.is_directory()) tenants.push_back(e.path().filename().string());
  }
  std::sort(tenants.begin(), tenants.end());
  return tenants;
}

int cmd_balance(const char* root, std::size_t shards, std::uint64_t cycles) {
  const std::vector<std::string> tenants = discover_tenants(root);
  if (tenants.empty()) {
    std::fprintf(stderr, "backlogctl: no volumes under %s\n", root);
    return 1;
  }

  service::ServiceOptions so = service_options(root, shards);
  so.sync_writes = false;  // the pulse below annihilates in the write store
  service::VolumeManager vm(so);
  for (const auto& t : tenants) vm.open_volume(t);

  service::BalancerPolicy bp;
  bp.latency_weighted = false;
  bp.cooldown = std::chrono::milliseconds(0);
  bp.min_load_to_act = 1;
  bp.max_moves_per_cycle = 2;
  service::Balancer balancer(vm, bp);

  std::printf("%zu volumes on %zu shards; %" PRIu64 " balancer cycles\n",
              tenants.size(), shards, cycles);
  // Synthetic pulse: per volume, add+remove of a fresh key annihilates in
  // the write store, so the load is real but the volume is left unchanged.
  core::BlockNo probe = 1ull << 40;
  for (std::uint64_t c = 0; c <= cycles; ++c) {
    std::vector<std::future<void>> futs;
    for (const auto& t : tenants) {
      for (int i = 0; i < 16; ++i) {
        service::UpdateOp a;
        a.kind = service::UpdateOp::Kind::kAdd;
        a.key.block = probe++;
        a.key.inode = 2;
        a.key.length = 1;
        service::UpdateOp r = a;
        r.kind = service::UpdateOp::Kind::kRemove;
        futs.push_back(vm.apply(t, {a, r}));
      }
    }
    for (auto& f : futs) f.get();
    if (c == 0) {
      balancer.run_once();  // first sighting primes the rate counters
      continue;
    }
    const auto moves = balancer.run_once();
    for (const auto& m : moves) {
      std::printf("cycle %" PRIu64 ": moved %s shard %zu -> %zu "
                  "(imbalance %.3f -> %.3f)\n",
                  c, m.tenant.c_str(), m.from_shard, m.to_shard,
                  m.imbalance_before, m.imbalance_after);
    }
    if (moves.empty()) {
      std::printf("cycle %" PRIu64 ": balanced (imbalance %.3f)\n", c,
                  balancer.last_imbalance());
    }
  }

  std::printf("%-20s %6s\n", "tenant", "shard");
  for (const auto& p : vm.placements()) {
    std::printf("%-20s %6zu\n", p.tenant.c_str(), p.shard);
  }
  std::printf("moves: %" PRIu64 ", final imbalance %.3f\n", balancer.moves(),
              balancer.last_imbalance());
  for (const auto& t : tenants) vm.close_volume(t);
  return 0;
}

int cmd_stats(const char* root, std::size_t shards, bool json) {
  const std::vector<std::string> tenants = discover_tenants(root);
  if (tenants.empty()) {
    std::fprintf(stderr, "backlogctl: no volumes under %s\n", root);
    return 1;
  }
  service::VolumeManager vm(service_options(root, shards));
  for (const auto& t : tenants) vm.open_volume(t);
  std::fputs(net::render_stats(vm.stats(), json).c_str(), stdout);
  for (const auto& t : tenants) vm.close_volume(t);
  return 0;
}

int cmd_cache(const char* root, std::size_t shards, bool json, bool clear) {
  const std::vector<std::string> tenants = discover_tenants(root);
  if (tenants.empty()) {
    std::fprintf(stderr, "backlogctl: no volumes under %s\n", root);
    return 1;
  }
  service::VolumeManager vm(service_options(root, shards));
  for (const auto& t : tenants) vm.open_volume(t);
  if (clear) {
    vm.clear_caches();
    std::fputs("caches cleared\n", stdout);
  }
  std::fputs(net::render_cache(vm.cache_stats(), json).c_str(), stdout);
  for (const auto& t : tenants) vm.close_volume(t);
  return 0;
}

/// One `metrics --watch` rate line. A sample with primed=false has no
/// previous poll to difference against — its zeros are "unknown", not
/// "idle" — so it is labeled instead of printed as rates (used by both the
/// local watch loop and the --connect one, where the daemon's poller really
/// can be unprimed).
void print_rate_window(const service::RateSample& s) {
  if (!s.primed) {
    std::printf("window %.3fs: priming (no previous sample yet)\n",
                s.window_seconds);
    return;
  }
  double busy = 0;
  for (const double b : s.shard_busy_fraction) busy = std::max(busy, b);
  std::printf("window %.3fs: %.0f update ops/s, %.0f queries/s, "
              "%.0f throttles/s, max shard busy %.1f%%\n",
              s.window_seconds, s.update_ops_per_sec, s.queries_per_sec,
              s.throttles_per_sec, 100.0 * busy);
}

int cmd_metrics(const char* root, std::size_t shards, bool json,
                std::uint64_t watch) {
  const std::vector<std::string> tenants = discover_tenants(root);
  if (tenants.empty()) {
    std::fprintf(stderr, "backlogctl: no volumes under %s\n", root);
    return 1;
  }
  service::ServiceOptions so = service_options(root, shards);
  so.sync_writes = false;  // the pulse below annihilates in the write store
  service::VolumeManager vm(so);
  for (const auto& t : tenants) vm.open_volume(t);

  // Synthetic annihilating pulse (same trick as `balance`): real dispatch
  // load, volumes left byte-identical.
  core::BlockNo probe = 1ull << 40;
  const auto pulse = [&] {
    std::vector<std::future<void>> futs;
    for (const auto& t : tenants) {
      for (int i = 0; i < 16; ++i) {
        service::UpdateOp a;
        a.kind = service::UpdateOp::Kind::kAdd;
        a.key.block = probe++;
        a.key.inode = 2;
        a.key.length = 1;
        service::UpdateOp r = a;
        r.kind = service::UpdateOp::Kind::kRemove;
        futs.push_back(vm.apply(t, {a, r}));
      }
    }
    for (auto& f : futs) f.get();
  };

  service::MetricsPoller poller(vm, std::chrono::milliseconds(100));
  pulse();
  poller.poll_once();  // prime the rate window
  for (std::uint64_t w = 0; w < std::max<std::uint64_t>(1, watch); ++w) {
    pulse();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const service::RateSample s = poller.poll_once();
    if (watch > 0) print_rate_window(s);
  }

  const std::string out =
      json ? vm.metrics().to_json() : vm.metrics().to_prometheus();
  std::fputs(out.c_str(), stdout);
  if (json) std::fputs("\n", stdout);
  for (const auto& t : tenants) vm.close_volume(t);
  return 0;
}

int cmd_trace(const char* dir, std::uint64_t tenants, std::uint64_t total_ops,
              std::uint64_t shards, std::uint64_t sample,
              std::uint64_t slow_us) {
  service::ServiceOptions so;
  so.shards = shards;
  so.root = dir;
  so.sync_writes = false;
  so.trace_sample_every = static_cast<std::uint32_t>(sample);
  so.slow_op_micros = slow_us;
  service::VolumeManager vm(so);

  std::vector<fsim::TenantWorkload> workloads;
  for (std::uint64_t i = 0; i < tenants; ++i) {
    char name[32];
    std::snprintf(name, sizeof name, "tenant-%03llu",
                  static_cast<unsigned long long>(i));
    vm.open_volume(name);
    fsim::TenantTraceOptions to;
    to.block_ops = std::max<std::uint64_t>(1, total_ops / tenants);
    to.seed = 42 + i;
    workloads.push_back({name, fsim::synthesize_tenant_trace(to)});
  }
  fsim::ReplayOptions ro;
  ro.query_every_ops = 64;
  fsim::replay_concurrently(vm, workloads, ro);

  std::fputs(net::render_trace(vm.trace_spans(), vm.slow_ops(), sample,
                               slow_us).c_str(),
             stdout);
  for (const auto& name : vm.tenants()) vm.close_volume(name);
  return 0;
}

int cmd_migrate(const char* root, const std::string& tenant,
                std::size_t target, std::size_t shards) {
  service::VolumeManager vm(service_options(root, shards));
  vm.open_volume(tenant);
  const auto before = vm.quick_stats(tenant).get();
  const service::MigrationStats ms = vm.migrate_volume(tenant, target);
  if (!ms.moved) {
    std::printf("%s already lives on shard %zu of %zu — nothing to do\n",
                tenant.c_str(), ms.source_shard, shards);
  } else {
    std::printf("migrated %s: shard %zu -> %zu (%s, %zu racing ops replayed)\n",
                tenant.c_str(), ms.source_shard, ms.target_shard,
                ms.forced_cp ? "flushed a consistency point" : "write store empty",
                ms.replayed_tasks);
  }
  const auto after = vm.quick_stats(tenant).get();
  std::printf("write store: %" PRIu64 " -> %" PRIu64 " entries, run records: %"
              PRIu64 " -> %" PRIu64 "\n",
              before.ws_entries, after.ws_entries, before.run_records,
              after.run_records);
  vm.close_volume(tenant);
  return 0;
}

// ---------------------------------------------------------------------------
// Remote mode (`--connect host:port`). Same subcommands, same arity checks,
// same output — but every operation is a wire round trip to a backlogd.
// Reports come back pre-rendered (the server runs the same render.hpp
// functions the local path uses); the driving commands (stress, qos,
// metrics, trace) generate their load client-side and push it through the
// typed batch verbs, which is exactly what makes them a loopback/network
// exercise of the data plane.
// ---------------------------------------------------------------------------

std::string stress_tenant_name(std::uint64_t i) {
  char name[32];
  std::snprintf(name, sizeof name, "tenant-%03llu",
                static_cast<unsigned long long>(i));
  return name;
}

int rcmd_stress(const std::string& host, std::uint16_t port,
                std::uint64_t tenants, std::uint64_t total_ops,
                std::uint64_t batch) {
  // The wire data plane only speaks apply_batch; --batch sizes the chunks
  // (default 64 — a per-op round trip would measure nothing but latency).
  const std::uint64_t chunk =
      std::min<std::uint64_t>(batch == 0 ? 64 : batch, net::wire::kMaxBatchOps);
  const std::uint64_t per_tenant =
      std::max<std::uint64_t>(1, total_ops / tenants);

  std::vector<std::thread> threads;
  std::vector<std::uint64_t> ops_done(tenants, 0);
  std::vector<std::string> errors(tenants);
  const auto t0 = std::chrono::steady_clock::now();
  for (std::uint64_t i = 0; i < tenants; ++i) {
    threads.emplace_back([&, i] {
      try {
        net::Client c;  // one connection per tenant thread (Client is not
        c.connect(host, port, g_connect_opts);  // thread-safe by design)
        const std::string name = stress_tenant_name(i);
        c.open_volume(name);
        fsim::TenantTraceOptions to;
        to.block_ops = per_tenant;
        to.seed = 42 + i;
        const fsim::TenantTrace trace = fsim::synthesize_tenant_trace(to);
        std::vector<service::UpdateOp> pending;
        pending.reserve(chunk);
        std::uint64_t since_query = 0;
        for (const auto& op : trace.ops) {
          pending.push_back(op);
          if (pending.size() < chunk) continue;
          c.apply_batch(name, pending);
          ops_done[i] += pending.size();
          since_query += pending.size();
          pending.clear();
          if (since_query >= 64) {
            since_query = 0;
            service::QueryRange qr;
            qr.first = op.key.block;
            qr.count = 8;
            c.query_batch(name, {qr});
          }
        }
        if (!pending.empty()) {
          c.apply_batch(name, pending);
          ops_done[i] += pending.size();
        }
        c.consistency_point(name);
      } catch (const std::exception& e) {
        errors[i] = e.what();
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  for (std::uint64_t i = 0; i < tenants; ++i) {
    if (!errors[i].empty()) {
      std::fprintf(stderr, "backlogctl: %s: %s\n",
                   stress_tenant_name(i).c_str(), errors[i].c_str());
      return 1;
    }
  }
  std::uint64_t ops = 0;
  for (const std::uint64_t n : ops_done) ops += n;
  std::printf("remote:            %s:%u\n", host.c_str(), port);
  std::printf("tenants:           %llu (one connection each)\n",
              static_cast<unsigned long long>(tenants));
  std::printf("update verb:       apply_batch over TCP (%llu-op chunks)\n",
              static_cast<unsigned long long>(chunk));
  std::printf("block ops:         %" PRIu64 " in %.2f s (%.0f ops/s)\n", ops,
              wall, wall > 0 ? ops / wall : 0.0);
  net::Client c;
  c.connect(host, port, g_connect_opts);
  std::fputs(c.stats_text(false).c_str(), stdout);
  return 0;
}

int rcmd_qos(net::Client& c, const std::string& tenant,
             std::uint64_t ops_per_sec, std::uint64_t bytes_per_sec,
             std::uint64_t ops) {
  c.open_volume(tenant);
  service::TenantQos qos;
  qos.ops_per_sec = ops_per_sec == 0 ? service::kUnlimitedRate
                                     : static_cast<double>(ops_per_sec);
  qos.bytes_per_sec = bytes_per_sec == 0 ? service::kUnlimitedRate
                                         : static_cast<double>(bytes_per_sec);
  qos.burst_ops = 256;
  qos.burst_bytes = 1 << 20;
  qos.max_wait_queue = 1 << 16;
  c.set_qos(tenant, qos);
  std::printf("qos on %s: %s ops/s, %s bytes/s (burst %g ops / %g bytes)\n",
              tenant.c_str(),
              ops_per_sec == 0 ? "unlimited" : std::to_string(ops_per_sec).c_str(),
              bytes_per_sec == 0 ? "unlimited" : std::to_string(bytes_per_sec).c_str(),
              qos.burst_ops, qos.burst_bytes);

  // One op per request, synchronously: a throttled op comes back as a
  // kThrottled ServiceError exactly like the in-process future would throw.
  const auto t0 = std::chrono::steady_clock::now();
  std::uint64_t rejected = 0;
  for (std::uint64_t i = 0; i < ops; ++i) {
    service::UpdateOp op;
    op.kind = service::UpdateOp::Kind::kAdd;
    op.key.block = 1 + i;
    op.key.inode = 2;
    op.key.length = 1;
    try {
      c.apply_batch(tenant, {op});
    } catch (const service::ServiceError& e) {
      if (e.code() != service::ErrorCode::kThrottled) throw;
      ++rejected;
    }
  }
  c.consistency_point(tenant);
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  const service::QosSnapshot snap = c.qos_snapshot(tenant);
  std::printf("drove %" PRIu64 " ops in %.2f s (%.0f ops/s effective)\n", ops,
              wall, wall > 0 ? static_cast<double>(ops - rejected) / wall : 0);
  std::printf("admission: %" PRIu64 " direct, %" PRIu64 " waited, %" PRIu64
              " released, %" PRIu64 " rejected (kThrottled)\n",
              snap.admitted, snap.queued, snap.released, snap.rejected);
  return 0;
}

int rcmd_metrics(net::Client& c, const std::string& host, std::uint16_t port,
                 bool json, std::uint64_t watch) {
  const std::vector<std::string> tenants = c.list_tenants();
  if (tenants.empty()) {
    std::fprintf(stderr, "backlogctl: no volumes hosted by %s:%u\n",
                 host.c_str(), port);
    return 1;
  }
  // Same annihilating pulse as the local command, shipped as one batch per
  // tenant (adds + removes cancel in the write store).
  core::BlockNo probe = 1ull << 40;
  const auto pulse = [&] {
    for (const auto& t : tenants) {
      std::vector<service::UpdateOp> batch;
      batch.reserve(32);
      for (int i = 0; i < 16; ++i) {
        service::UpdateOp a;
        a.kind = service::UpdateOp::Kind::kAdd;
        a.key.block = probe++;
        a.key.inode = 2;
        a.key.length = 1;
        service::UpdateOp r = a;
        r.kind = service::UpdateOp::Kind::kRemove;
        batch.push_back(a);
        batch.push_back(r);
      }
      c.apply_batch(t, batch);
    }
  };
  pulse();
  // The daemon's poller may never have been polled: the priming sample
  // carries primed=false and is labeled, not misread as an idle service.
  const service::RateSample first = c.poll_rates();
  if (!first.primed && watch > 0) {
    std::printf("window %.3fs: priming (no previous sample yet)\n",
                first.window_seconds);
  }
  for (std::uint64_t w = 0; w < std::max<std::uint64_t>(1, watch); ++w) {
    pulse();
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const service::RateSample s = c.poll_rates();
    if (watch > 0) print_rate_window(s);
  }
  std::fputs(c.metrics_text(json).c_str(), stdout);
  return 0;
}

int rcmd_trace(const std::string& host, std::uint16_t port,
               std::uint64_t tenants, std::uint64_t total_ops,
               std::uint64_t sample, std::uint64_t slow_us) {
  net::Client c;
  c.connect(host, port, g_connect_opts);
  c.set_tracing(static_cast<std::uint32_t>(sample), slow_us);
  const std::uint64_t per_tenant =
      std::max<std::uint64_t>(1, total_ops / tenants);
  for (std::uint64_t i = 0; i < tenants; ++i) {
    const std::string name = stress_tenant_name(i);
    c.open_volume(name);
    fsim::TenantTraceOptions to;
    to.block_ops = per_tenant;
    to.seed = 42 + i;
    const fsim::TenantTrace trace = fsim::synthesize_tenant_trace(to);
    std::vector<service::UpdateOp> pending;
    for (const auto& op : trace.ops) {
      pending.push_back(op);
      if (pending.size() < 64) continue;
      c.apply_batch(name, pending);
      pending.clear();
      service::QueryRange qr;
      qr.first = op.key.block;
      qr.count = 8;
      c.query_batch(name, {qr});
    }
    if (!pending.empty()) c.apply_batch(name, pending);
  }
  std::fputs(c.trace_text(sample, slow_us).c_str(), stdout);
  return 0;
}

/// `--connect` dispatch: argv is shifted so argv[1] is the subcommand and
/// positionals line up with the local layout. Every argument is validated
/// with the local rules *before* a byte hits the network — a malformed
/// remote invocation exits 2 without connecting.
int remote_main(const std::string& host, std::uint16_t port, int argc,
                char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  try {
    if (cmd == "stress") {
      std::uint64_t batch = 0;
      int end = argc;
      if (argc >= 7 && std::strcmp(argv[argc - 2], "--batch") == 0) {
        if (!parse_u64(argv[argc - 1], batch, 1, 1 << 20)) return usage();
        end = argc - 2;
      }
      std::uint64_t tenants = 0, ops = 0, shards = 4;
      if (end < 5 || end > 6 || !parse_u64(argv[3], tenants, 1, 1 << 16) ||
          !parse_u64(argv[4], ops, 1) ||
          (end > 5 && !parse_u64(argv[5], shards, 1, 1024))) {
        return usage();
      }
      (void)shards;  // the daemon's shard count applies remotely
      return rcmd_stress(host, port, tenants, ops, batch);
    }
    if (cmd == "snap") {
      std::uint64_t line = 0;
      if (argc < 4 || argc > 5 || (argc > 4 && !parse_u64(argv[4], line)))
        return usage();
      net::Client c;
      c.connect(host, port, g_connect_opts);
      c.open_volume(argv[3]);
      const core::Epoch version = c.take_snapshot(argv[3], line);
      std::printf("retained snapshot (line %" PRIu64 ", v%" PRIu64 ") of %s\n",
                  line, version, argv[3]);
      return 0;
    }
    if (cmd == "clone") {
      std::uint64_t line = 0, version = 0;
      if (argc < 5 || argc > 7 || (argc > 5 && !parse_u64(argv[5], line)) ||
          (argc > 6 && !parse_u64(argv[6], version))) {
        return usage();
      }
      const std::string src = argv[3], dst = argv[4];
      net::Client c;
      c.connect(host, port, g_connect_opts);
      c.open_volume(src);
      if (version == 0) {  // default: the latest retained snapshot
        const auto versions = c.list_versions(src, line);
        if (versions.empty()) {
          std::fprintf(stderr,
                       "backlogctl: %s line %" PRIu64
                       " has no retained snapshot (run `backlogctl snap` "
                       "first)\n",
                       src.c_str(), line);
          return 1;
        }
        version = versions.back();
      }
      const auto res = c.clone_volume(src, dst, line, version);
      std::printf("cloned %s snapshot (line %" PRIu64 ", v%" PRIu64
                  ") -> tenant %s, writable line %" PRIu64 "\n",
                  src.c_str(), line, version, dst.c_str(), res.new_line);
      std::printf("copy-on-write: %" PRIu64 " shared files, %" PRIu64
                  " shared bytes (%.2f MB stored once instead of per clone)\n",
                  res.shared_files, res.shared_bytes,
                  res.saved_bytes / (1024.0 * 1024.0));
      return 0;
    }
    if (cmd == "destroy") {
      std::uint64_t shards = 1;
      if (argc < 4 || argc > 5 ||
          (argc > 4 && !parse_u64(argv[4], shards, 1, 1024))) {
        return usage();
      }
      net::Client c;
      c.connect(host, port, g_connect_opts);
      try {
        c.destroy_volume(argv[3]);
      } catch (const service::ServiceError& e) {
        if (e.code() == service::ErrorCode::kNoSuchTenant) {
          std::fprintf(stderr, "backlogctl: no volume '%s' hosted by %s:%u\n",
                       argv[3], host.c_str(), port);
          return 1;
        }
        throw;
      }
      std::printf("destroyed %s\n", argv[3]);
      return 0;
    }
    if (cmd == "migrate") {
      std::uint64_t target = 0, shards = 4;
      if (argc < 5 || argc > 6 || !parse_u64(argv[4], target) ||
          (argc > 5 && !parse_u64(argv[5], shards, 1, 1024))) {
        return usage();
      }
      // target-vs-shard-count is the daemon's call (its shard count rules);
      // out of range comes back as kBadRequest.
      (void)shards;
      const std::string tenant = argv[3];
      net::Client c;
      c.connect(host, port, g_connect_opts);
      c.open_volume(tenant);
      const core::QuickStats before = c.quick_stats(tenant);
      const service::MigrationStats ms = c.migrate_volume(tenant, target);
      if (!ms.moved) {
        std::printf("%s already lives on shard %zu — nothing to do\n",
                    tenant.c_str(), ms.source_shard);
      } else {
        std::printf(
            "migrated %s: shard %zu -> %zu (%s, %zu racing ops replayed)\n",
            tenant.c_str(), ms.source_shard, ms.target_shard,
            ms.forced_cp ? "flushed a consistency point" : "write store empty",
            ms.replayed_tasks);
      }
      const core::QuickStats after = c.quick_stats(tenant);
      std::printf("write store: %" PRIu64 " -> %" PRIu64
                  " entries, run records: %" PRIu64 " -> %" PRIu64 "\n",
                  before.ws_entries, after.ws_entries, before.run_records,
                  after.run_records);
      return 0;
    }
    if (cmd == "qos") {
      std::uint64_t ops_rate = 0, bytes_rate = 0, ops = 2000;
      if (argc < 6 || argc > 7 || !parse_u64(argv[4], ops_rate) ||
          !parse_u64(argv[5], bytes_rate) ||
          (argc > 6 && !parse_u64(argv[6], ops, 1))) {
        return usage();
      }
      net::Client c;
      c.connect(host, port, g_connect_opts);
      return rcmd_qos(c, argv[3], ops_rate, bytes_rate, ops);
    }
    if (cmd == "balance") {
      std::uint64_t shards = 0, cycles = 3;
      if (argc < 4 || argc > 5 || !parse_u64(argv[3], shards, 1, 1024) ||
          (argc > 4 && !parse_u64(argv[4], cycles, 1, 1 << 20))) {
        return usage();
      }
      net::Client c;  // the cycle runs entirely server-side (kBalanceText)
      c.connect(host, port, g_connect_opts);
      std::fputs(c.balance_text(cycles).c_str(), stdout);
      return 0;
    }
    if (cmd == "stats") {
      std::uint64_t shards = 1;
      bool json = false, have_shards = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && !json) {
          json = true;
        } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
          have_shards = true;
        } else {
          return usage();
        }
      }
      (void)shards;
      net::Client c;
      c.connect(host, port, g_connect_opts);
      std::fputs(c.stats_text(json).c_str(), stdout);
      return 0;
    }
    if (cmd == "metrics") {
      std::uint64_t shards = 1, watch = 0;
      bool json = false, prom = false, have_shards = false;
      for (int i = 3; i < argc; ++i) {
        if (std::strcmp(argv[i], "--json") == 0 && !json && !prom) {
          json = true;
        } else if (std::strcmp(argv[i], "--prom") == 0 && !json && !prom) {
          prom = true;
        } else if (std::strcmp(argv[i], "--watch") == 0 && watch == 0 &&
                   i + 1 < argc) {
          if (!parse_u64(argv[++i], watch, 1, 1 << 20)) return usage();
        } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
          have_shards = true;
        } else {
          return usage();
        }
      }
      (void)shards;
      (void)prom;  // Prometheus exposition is the remote default too
      net::Client c;
      c.connect(host, port, g_connect_opts);
      return rcmd_metrics(c, host, port, json, watch);
    }
    if (cmd == "cache") {
      // Same shapes as the local form; <root> is kept for symmetry but the
      // daemon operates on its own root.
      const bool clear = argc > 2 && std::strcmp(argv[2], "clear") == 0;
      const int root_at = clear ? 3 : 2;
      if (argc <= root_at) return usage();
      std::uint64_t shards = 1;
      bool json = false, have_shards = false;
      for (int i = root_at + 1; i < argc; ++i) {
        if (!clear && std::strcmp(argv[i], "--json") == 0 && !json) {
          json = true;
        } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
          have_shards = true;
        } else {
          return usage();
        }
      }
      (void)shards;
      net::Client c;
      c.connect(host, port, g_connect_opts);
      if (clear) {
        c.cache_clear();
        std::fputs("caches cleared\n", stdout);
      }
      std::fputs(c.cache_text(json).c_str(), stdout);
      return 0;
    }
    if (cmd == "trace") {
      std::uint64_t tenants = 0, ops = 0, shards = 2, sample = 1,
                    slow_us = 1000;
      if (argc < 5 || !parse_u64(argv[3], tenants, 1, 1 << 16) ||
          !parse_u64(argv[4], ops, 1)) {
        return usage();
      }
      bool have_shards = false;
      for (int i = 5; i < argc; ++i) {
        if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
          if (!parse_u64(argv[++i], sample, 1, 1u << 30)) return usage();
        } else if (std::strcmp(argv[i], "--slow-us") == 0 && i + 1 < argc) {
          if (!parse_u64(argv[++i], slow_us, 1)) return usage();
        } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
          have_shards = true;
        } else {
          return usage();
        }
      }
      (void)shards;
      return rcmd_trace(host, port, tenants, ops, sample, slow_us);
    }
    const bool known_volume_cmd = cmd == "info" || cmd == "runs" ||
                                  cmd == "scan" || cmd == "maintain" ||
                                  cmd == "query" || cmd == "raw" ||
                                  cmd == "dump-run";
    if (!known_volume_cmd) return usage();
    std::uint64_t block = 0, count = 1;
    if (cmd == "query" || cmd == "raw") {
      if (argc < 4 || argc > 5 || !parse_u64(argv[3], block) ||
          (argc > 4 && !parse_u64(argv[4], count, 1))) {
        return usage();
      }
    } else if (cmd == "dump-run") {
      if (argc != 4) return usage();
    } else if (argc != 3) {
      return usage();
    }
    const std::string tenant = argv[2];  // where local takes a directory
    net::Client c;
    c.connect(host, port, g_connect_opts);
    std::string out;
    if (cmd == "info") {
      out = c.info_text(tenant);
    } else if (cmd == "runs") {
      out = c.runs_text(tenant);
    } else if (cmd == "scan") {
      out = c.scan_text(tenant);
    } else if (cmd == "maintain") {
      out = c.maintain_text(tenant);
    } else if (cmd == "query" || cmd == "raw") {
      out = c.query_text(tenant, block, count, cmd == "raw");
    } else {
      out = c.dump_run_text(tenant, argv[3]);
    }
    std::fputs(out.c_str(), stdout);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backlogctl: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  if (std::strcmp(argv[1], "--connect") == 0) {
    // --connect host:port <cmd> [args] — shift past the flag + spec so the
    // remote dispatcher sees the same argv layout as the local one.
    if (argc < 4) return usage();
    std::string host;
    std::uint16_t port = 0;
    if (!net::parse_host_port(argv[2], host, port)) return usage();
    int shift = 2;
    if (argc >= 5 && std::strcmp(argv[3], "--wait-ms") == 0) {
      std::uint64_t wait_ms = 0;
      if (argc < 6 || !parse_u64(argv[4], wait_ms, 0, 10 * 60 * 1000))
        return usage();
      g_connect_opts.retry_for_ms = static_cast<std::uint32_t>(wait_ms);
      shift = 4;
    }
    return remote_main(host, port, argc - shift, argv + shift);
  }
  const std::string cmd = argv[1];
  // Service-level commands take a service *root* (volumes live underneath).
  // Arity and argument ranges are validated up front: a malformed
  // invocation is a usage error (exit 2), never a half-parsed run.
  if (cmd == "stress" || cmd == "snap" || cmd == "clone" || cmd == "destroy" ||
      cmd == "migrate" || cmd == "qos" || cmd == "balance" || cmd == "stats" ||
      cmd == "metrics" || cmd == "trace" || cmd == "cache") {
    try {
      if (cmd == "stress") {
        // Trailing option: --batch N routes the replay through apply_batch
        // with N-op batches (0/absent = the per-op apply loop).
        std::uint64_t batch = 0;
        int end = argc;
        if (argc >= 7 && std::strcmp(argv[argc - 2], "--batch") == 0) {
          if (!parse_u64(argv[argc - 1], batch, 1, 1 << 20)) return usage();
          end = argc - 2;
        }
        std::uint64_t tenants = 0, ops = 0, shards = 4;
        if (end < 5 || end > 6 ||
            !parse_u64(argv[3], tenants, 1, 1 << 16) ||
            !parse_u64(argv[4], ops, 1) ||
            (end > 5 && !parse_u64(argv[5], shards, 1, 1024))) {
          return usage();
        }
        return cmd_stress(argv[2], tenants, ops, shards, batch);
      }
      if (cmd == "snap") {
        std::uint64_t line = 0;
        if (argc < 4 || argc > 5 || (argc > 4 && !parse_u64(argv[4], line)))
          return usage();
        return cmd_snap(argv[2], argv[3], line);
      }
      if (cmd == "clone") {
        std::uint64_t line = 0, version = 0;
        if (argc < 5 || argc > 7 || (argc > 5 && !parse_u64(argv[5], line)) ||
            (argc > 6 && !parse_u64(argv[6], version))) {
          return usage();
        }
        return cmd_clone(argv[2], argv[3], argv[4], line, version);
      }
      if (cmd == "destroy") {
        std::uint64_t shards = 1;
        if (argc < 4 || argc > 5 ||
            (argc > 4 && !parse_u64(argv[4], shards, 1, 1024))) {
          return usage();
        }
        return cmd_destroy(argv[2], argv[3], shards);
      }
      if (cmd == "qos") {
        std::uint64_t ops_rate = 0, bytes_rate = 0, ops = 2000;
        if (argc < 6 || argc > 7 || !parse_u64(argv[4], ops_rate) ||
            !parse_u64(argv[5], bytes_rate) ||
            (argc > 6 && !parse_u64(argv[6], ops, 1))) {
          return usage();
        }
        return cmd_qos(argv[2], argv[3], ops_rate, bytes_rate, ops);
      }
      if (cmd == "balance") {
        std::uint64_t shards = 0, cycles = 3;
        if (argc < 4 || argc > 5 || !parse_u64(argv[3], shards, 1, 1024) ||
            (argc > 4 && !parse_u64(argv[4], cycles, 1, 1 << 20))) {
          return usage();
        }
        return cmd_balance(argv[2], shards, cycles);
      }
      if (cmd == "stats") {
        // stats <root> [shards] [--json] — one optional shard count, one
        // optional flag; anything else (double flags, junk) is exit 2.
        std::uint64_t shards = 1;
        bool json = false, have_shards = false;
        for (int i = 3; i < argc; ++i) {
          if (std::strcmp(argv[i], "--json") == 0 && !json) {
            json = true;
          } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
            have_shards = true;
          } else {
            return usage();
          }
        }
        return cmd_stats(argv[2], shards, json);
      }
      if (cmd == "metrics") {
        std::uint64_t shards = 1, watch = 0;
        bool json = false, prom = false, have_shards = false;
        for (int i = 3; i < argc; ++i) {
          if (std::strcmp(argv[i], "--json") == 0 && !json && !prom) {
            json = true;
          } else if (std::strcmp(argv[i], "--prom") == 0 && !json && !prom) {
            prom = true;
          } else if (std::strcmp(argv[i], "--watch") == 0 && watch == 0 &&
                     i + 1 < argc) {
            if (!parse_u64(argv[++i], watch, 1, 1 << 20)) return usage();
          } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
            have_shards = true;
          } else {
            return usage();
          }
        }
        return cmd_metrics(argv[2], shards, json, watch);
      }
      if (cmd == "cache") {
        // cache <root> [shards] [--json]   — print the cache report
        // cache clear <root> [shards]      — cold-cache the whole service
        const bool clear = argc > 2 && std::strcmp(argv[2], "clear") == 0;
        const int root_at = clear ? 3 : 2;
        if (argc <= root_at) return usage();
        std::uint64_t shards = 1;
        bool json = false, have_shards = false;
        for (int i = root_at + 1; i < argc; ++i) {
          if (!clear && std::strcmp(argv[i], "--json") == 0 && !json) {
            json = true;
          } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
            have_shards = true;
          } else {
            return usage();
          }
        }
        return cmd_cache(argv[root_at], shards, json, clear);
      }
      if (cmd == "trace") {
        std::uint64_t tenants = 0, ops = 0, shards = 2, sample = 1,
                      slow_us = 1000;
        if (argc < 5 || !parse_u64(argv[3], tenants, 1, 1 << 16) ||
            !parse_u64(argv[4], ops, 1)) {
          return usage();
        }
        bool have_shards = false;
        for (int i = 5; i < argc; ++i) {
          if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
            if (!parse_u64(argv[++i], sample, 1, 1u << 30)) return usage();
          } else if (std::strcmp(argv[i], "--slow-us") == 0 && i + 1 < argc) {
            if (!parse_u64(argv[++i], slow_us, 1)) return usage();
          } else if (!have_shards && parse_u64(argv[i], shards, 1, 1024)) {
            have_shards = true;
          } else {
            return usage();
          }
        }
        return cmd_trace(argv[2], tenants, ops, shards, sample, slow_us);
      }
      std::uint64_t target = 0, shards = 4;
      if (argc < 5 || argc > 6 || !parse_u64(argv[4], target) ||
          (argc > 5 && !parse_u64(argv[5], shards, 1, 1024)) ||
          target >= shards) {
        return usage();
      }
      return cmd_migrate(argv[2], argv[3], target, shards);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "backlogctl: %s\n", e.what());
      return 1;
    }
  }
  const bool known_volume_cmd = cmd == "info" || cmd == "runs" ||
                                cmd == "scan" || cmd == "maintain" ||
                                cmd == "query" || cmd == "raw" ||
                                cmd == "dump-run";
  if (!known_volume_cmd) return usage();
  // Validate arguments before touching the volume (Env creation writes).
  std::uint64_t block = 0, count = 1;
  if (cmd == "query" || cmd == "raw") {
    if (argc < 4 || argc > 5 || !parse_u64(argv[3], block) ||
        (argc > 4 && !parse_u64(argv[4], count, 1))) {
      return usage();
    }
  } else if (cmd == "dump-run") {
    if (argc != 4) return usage();
  } else if (argc != 3) {
    return usage();
  }
  try {
    storage::Env env(argv[2]);
    if (cmd == "info") return cmd_info(env);
    if (cmd == "runs") return cmd_runs(env);
    if (cmd == "scan") return cmd_scan(env);
    if (cmd == "maintain") return cmd_maintain(env);
    if (cmd == "query" || cmd == "raw")
      return cmd_query(env, block, count, cmd == "raw");
    return cmd_dump_run(env, argv[3]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backlogctl: %s\n", e.what());
    return 1;
  }
}
