// backlogctl — command-line inspector for a Backlog volume directory.
//
//   backlogctl info <dir>                  volume summary (CP, lines, runs)
//   backlogctl runs <dir>                  list run files with metadata
//   backlogctl query <dir> <block> [n]     masked owner query (the paper's
//                                          "tell me all the objects...")
//   backlogctl raw <dir> <block> [n]       unmasked joined records
//   backlogctl scan <dir>                  dump every joined record
//   backlogctl maintain <dir>              run database maintenance (§5.2)
//   backlogctl dump-run <dir> <file>       decode one run file's records
//
// Note: opening a volume re-establishes the manifest base (one metadata
// write); all other inspection is read-only.
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <string>

#include "core/backlog_db.hpp"
#include "lsm/run_file.hpp"
#include "storage/env.hpp"

using namespace backlog;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: backlogctl <info|runs|query|raw|scan|maintain|dump-run>"
               " <volume-dir> [args]\n");
  return 2;
}

void print_entry(const core::BackrefEntry& e) {
  std::printf("  %s versions:", core::to_string(e.rec).c_str());
  for (const core::Epoch v : e.versions) std::printf(" %" PRIu64, v);
  std::printf("\n");
}

int cmd_info(storage::Env& env) {
  core::BacklogDb db(env);
  const auto s = db.stats();
  std::printf("volume:            %s\n", env.root().c_str());
  std::printf("current CP:        %" PRIu64 "\n", db.current_cp());
  std::printf("partitions:        %" PRIu64 "\n", s.partitions);
  std::printf("runs:              %" PRIu64 " From, %" PRIu64 " To, %" PRIu64
              " Combined\n", s.from_runs, s.to_runs, s.combined_runs);
  std::printf("run records:       %" PRIu64 "\n", s.run_records);
  std::printf("db bytes:          %" PRIu64 " (%.2f MB)\n", s.db_bytes,
              s.db_bytes / (1024.0 * 1024.0));
  std::printf("deletion vectors:  %" PRIu64 " entries\n", s.dv_entries);
  const auto& reg = db.registry();
  std::printf("zombie snapshots:  %zu\n", reg.zombie_count());
  for (const core::LineId line : reg.lines()) {
    std::printf("line %" PRIu64 ": %s", line,
                reg.line_live(line) ? "live" : "dead");
    if (const auto parent = reg.parent_of(line)) {
      std::printf(", cloned from (line %" PRIu64 ", v%" PRIu64 ")",
                  parent->parent, parent->branch_version);
    }
    std::printf(", snapshots:");
    for (const core::Epoch v : reg.snapshots(line)) std::printf(" %" PRIu64, v);
    std::printf("\n");
  }
  return 0;
}

int cmd_runs(storage::Env& env) {
  core::BacklogDb db(env);
  std::printf("%-26s %10s %14s\n", "file", "records", "bytes");
  storage::PageCache cache(64);
  for (const std::string& name : env.list_files()) {
    if (!name.ends_with(".run")) continue;
    lsm::RunFile run(env, name, cache);
    std::printf("%-26s %10" PRIu64 " %14" PRIu64, name.c_str(),
                run.record_count(), run.size_bytes());
    if (const auto mn = run.min_record()) {
      std::printf("   blocks [%" PRIu64 ", %" PRIu64 "]",
                  util::get_be64(mn->data()),
                  util::get_be64(run.max_record()->data()));
    }
    std::printf("\n");
  }
  return 0;
}

int cmd_query(storage::Env& env, core::BlockNo block, std::uint64_t count,
              bool raw) {
  core::BacklogDb db(env);
  if (raw) {
    for (const auto& r : db.query_raw(block, count)) {
      std::printf("  %s\n", core::to_string(r).c_str());
    }
  } else {
    for (const auto& e : db.query(block, count)) print_entry(e);
  }
  return 0;
}

int cmd_scan(storage::Env& env) {
  core::BacklogDb db(env);
  for (const auto& r : db.scan_all()) {
    std::printf("%s\n", core::to_string(r).c_str());
  }
  return 0;
}

int cmd_maintain(storage::Env& env) {
  core::BacklogDb db(env);
  const auto m = db.maintain();
  std::printf("input records:   %" PRIu64 "\n", m.input_records);
  std::printf("complete out:    %" PRIu64 "\n", m.output_complete);
  std::printf("incomplete out:  %" PRIu64 "\n", m.output_incomplete);
  std::printf("purged:          %" PRIu64 "\n", m.purged);
  std::printf("bytes:           %" PRIu64 " -> %" PRIu64 "\n", m.bytes_before,
              m.bytes_after);
  std::printf("io:              %" PRIu64 " reads, %" PRIu64 " writes\n",
              m.pages_read, m.pages_written);
  std::printf("wall time:       %.3f s\n", m.wall_micros / 1e6);
  return 0;
}

int cmd_dump_run(storage::Env& env, const std::string& file) {
  storage::PageCache cache(256);
  lsm::RunFile run(env, file, cache);
  const char kind = file.empty() ? '?' : file[0];
  auto stream = run.scan();
  while (stream->valid()) {
    const auto rec = stream->record();
    if (kind == 'c' && rec.size() == core::kCombinedRecordSize) {
      std::printf("%s\n", core::to_string(core::decode_combined(rec.data())).c_str());
    } else if (kind == 'f' && rec.size() == core::kFromRecordSize) {
      const auto r = core::decode_from(rec.data());
      std::printf("%s from=%" PRIu64 "\n", core::to_string(r.key).c_str(), r.from);
    } else if (kind == 't' && rec.size() == core::kToRecordSize) {
      const auto r = core::decode_to(rec.data());
      std::printf("%s to=%" PRIu64 "\n", core::to_string(r.key).c_str(), r.to);
    } else {
      std::printf("(%zu raw bytes)\n", rec.size());
    }
    stream->next();
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return usage();
  const std::string cmd = argv[1];
  storage::Env env(argv[2]);
  try {
    if (cmd == "info") return cmd_info(env);
    if (cmd == "runs") return cmd_runs(env);
    if (cmd == "scan") return cmd_scan(env);
    if (cmd == "maintain") return cmd_maintain(env);
    if (cmd == "query" || cmd == "raw") {
      if (argc < 4) return usage();
      const core::BlockNo block = std::strtoull(argv[3], nullptr, 0);
      const std::uint64_t count =
          argc > 4 ? std::strtoull(argv[4], nullptr, 0) : 1;
      return cmd_query(env, block, count, cmd == "raw");
    }
    if (cmd == "dump-run") {
      if (argc < 4) return usage();
      return cmd_dump_run(env, argv[3]);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "backlogctl: %s\n", e.what());
    return 1;
  }
  return usage();
}
