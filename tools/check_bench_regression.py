#!/usr/bin/env python3
"""Bench-regression gate for the service_throughput JSONROW output.

Compares a fresh run's rows against the checked-in baseline
(BENCH_baseline.json, one JSON object per line) and fails when throughput
regressed by more than the threshold at equal configuration (same bench,
shard count, tenant count, churn period, qos / balancer flag).

CI machines differ wildly in absolute speed, so by default throughput is
compared *normalized*: each service_throughput row's ops_per_second is
divided by that run's 1-shard/16-tenant row, making the gate a check on the
scaling shape (a >25% drop of the 4-shard speedup at equal shard count is a
real regression, a slower runner is not). Set --absolute to compare raw
ops/s instead (useful on a pinned benchmarking host).

Exit codes: 0 ok, 1 regression found, 2 bad invocation/inputs.
"""

import argparse
import json
import sys


def load_rows(path):
    """Accepts either pure JSONL or a full bench transcript: when any
    'JSONROW ' lines are present only those are parsed, so the raw tee'd
    output works directly."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh if line.strip()]
    tagged = [l[len("JSONROW "):] for l in lines if l.startswith("JSONROW ")]
    candidates = tagged if tagged else lines
    rows = []
    for line in candidates:
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            sys.exit(f"error: {path}: unparsable row: {line!r} ({exc})")
    if not rows:
        sys.exit(f"error: {path}: no JSONROW rows")
    return rows


KEY_FIELDS = ("bench", "shards", "tenants", "churn_period_ms", "qos",
              "balancer", "batched")


def keyed_rows(rows):
    """(key, row) pairs where the key carries an occurrence index: several
    sweeps emit the same configuration (e.g. the 4-shard/16-tenant row
    appears in sweeps a, b and c), and the bench emits them in a fixed
    order, so the i-th occurrence of a config always lines up with the
    i-th occurrence in the baseline."""
    seen = {}
    out = []
    for row in rows:
        if "ops_per_second" not in row:
            continue
        base = tuple(row.get(f) for f in KEY_FIELDS)
        idx = seen.get(base, 0)
        seen[base] = idx + 1
        out.append((base + (idx,), row))
    return out


def check_clone_cost(rows, min_speedup=4.0, max_flatness=6.0):
    """Functional gate on the service_clone_cost sweep (CoW clone_volume):
    clone latency must be O(metadata). Checked on the *current* run alone —
    the properties are machine-independent shapes, not absolute speeds:

      * speedup: at the largest volume size the CoW clone must beat the
        full-copy path by at least `min_speedup` (the bench's headline
        target is 10x; the gate uses a loose floor so runner noise on the
        sub-millisecond CoW side cannot flake CI);
      * flatness: CoW clone latency across the >= 16x size spread must stay
        within `max_flatness` (headline target: 2x).
    """
    clone = [r for r in rows if r.get("bench") == "service_clone_cost"
             and "clone_micros_cow" in r]
    failures = []
    if not clone:
        return failures
    clone.sort(key=lambda r: r.get("ops", 0))
    largest = clone[-1]
    speedup = largest.get("speedup", 0)
    status = "FAIL" if speedup < min_speedup else "ok"
    print(f"{status}: clone_cost speedup at ops={largest.get('ops')}: "
          f"{speedup:.1f}x (gate >= {min_speedup}x, headline target 10x)")
    if speedup < min_speedup:
        failures.append(f"clone_cost speedup {speedup:.1f}x < {min_speedup}x")
    cows = [r["clone_micros_cow"] for r in clone if r["clone_micros_cow"] > 0]
    if len(cows) >= 2:
        flatness = max(cows) / min(cows)
        status = "FAIL" if flatness > max_flatness else "ok"
        print(f"{status}: clone_cost CoW flatness across sizes: "
              f"{flatness:.2f}x (gate <= {max_flatness}x, headline target 2x)")
        if flatness > max_flatness:
            failures.append(
                f"clone_cost CoW latency spread {flatness:.2f}x > {max_flatness}x")
    return failures


def check_shard_scaling(rows, floor=2.0):
    """Shard-scaling gate on the *batched* sweep of the current run alone:
    aggregate ops/s at 4 shards must be at least `floor` x the 1-shard row.
    The property is a shape, not an absolute speed — but it only exists on
    hardware that can actually run 4 shard threads in parallel, so the gate
    self-skips when the run reports hardware_concurrency < 4 (the bench
    stamps every service_throughput row with it)."""
    sweep = [r for r in rows
             if r.get("bench") == "service_throughput"
             and r.get("batched") == 1 and r.get("tenants") == 16
             and r.get("churn_period_ms") == 0]
    if not sweep:
        print("note: no batched shard-sweep rows — scaling gate skipped")
        return []
    hc = sweep[0].get("hardware_concurrency")
    if hc is None or hc < 4:
        print(f"note: hardware_concurrency={hc} < 4 — shard-scaling gate "
              "skipped (thread-per-shard cannot scale on this host)")
        return []
    by_shards = {r["shards"]: r["ops_per_second"] for r in sweep}
    if 1 not in by_shards or 4 not in by_shards:
        print("note: batched sweep lacks the 1- or 4-shard row — "
              "scaling gate skipped")
        return []
    ratio = by_shards[4] / by_shards[1] if by_shards[1] > 0 else 0
    status = "FAIL" if ratio < floor else "ok"
    print(f"{status}: batched 1->4 shard scaling: {ratio:.2f}x "
          f"(gate >= {floor}x on a {hc}-core host)")
    if ratio < floor:
        return [f"batched 1->4 shard scaling {ratio:.2f}x < {floor}x"]
    return []


def check_dispatch_overhead(rows, min_ratio=3.0):
    """Dispatch-overhead ceiling from the pure no-op microbench (sweep g),
    on the current run alone: the batched path's per-op queue overhead must
    be at least `min_ratio` x smaller than one-task-per-op dispatch. A pure
    ratio of two same-machine measurements, so runner speed is factored
    out."""
    modes = {r.get("mode"): r for r in rows
             if r.get("bench") == "service_dispatch"}
    if "single" not in modes or "batched" not in modes:
        print("note: no service_dispatch rows — dispatch gate skipped")
        return []
    single = modes["single"].get("nanos_per_op", 0)
    batched = modes["batched"].get("nanos_per_op", 0)
    if batched <= 0:
        print("note: degenerate dispatch measurement — gate skipped")
        return []
    ratio = single / batched
    status = "FAIL" if ratio < min_ratio else "ok"
    print(f"{status}: dispatch overhead single/batched: {single:.0f} / "
          f"{batched:.0f} ns/op = {ratio:.1f}x (gate >= {min_ratio}x)")
    if ratio < min_ratio:
        return [f"dispatch overhead reduction {ratio:.1f}x < {min_ratio}x"]
    return []


def check_dispatch_vs_baseline(base_rows, cur_rows, max_ratio=1.2):
    """Disabled-observability overhead gate: with tracing and metrics off
    (the dispatch microbench never enables them), the dispatch cost must
    stay within `max_ratio` of the checked-in baseline. Runner speeds
    differ, so the comparison is a ratio of ratios — the current run's
    batched/single split against the baseline's — which cancels the
    machine and isolates what the observability hooks added to the hot
    path."""
    def modes(rows):
        return {r.get("mode"): r for r in rows
                if r.get("bench") == "service_dispatch"}

    cur, base = modes(cur_rows), modes(base_rows)
    if "single" not in cur or "batched" not in cur:
        print("note: no current service_dispatch rows — baseline dispatch "
              "gate skipped")
        return []
    if "single" not in base or "batched" not in base:
        print("note: baseline lacks service_dispatch rows — baseline "
              "dispatch gate skipped")
        return []
    base_single = base["single"].get("nanos_per_op", 0)
    base_batched = base["batched"].get("nanos_per_op", 0)
    cur_single = cur["single"].get("nanos_per_op", 0)
    cur_batched = cur["batched"].get("nanos_per_op", 0)
    if min(base_single, base_batched, cur_single, cur_batched) <= 0:
        print("note: degenerate dispatch measurement — baseline dispatch "
              "gate skipped")
        return []
    # Fraction of a single-dispatch op that one batched op costs, now vs
    # then. If the hot path grew (per-op work in the drain loop or the
    # wrapper), this ratio rises on any machine.
    base_frac = base_batched / base_single
    cur_frac = cur_batched / cur_single
    ratio = cur_frac / base_frac
    status = "FAIL" if ratio > max_ratio else "ok"
    print(f"{status}: dispatch cost vs baseline: batched/single "
          f"{cur_frac:.4f} now vs {base_frac:.4f} baseline = {ratio:.2f}x "
          f"(gate <= {max_ratio}x with observability disabled)")
    if ratio > max_ratio:
        return [f"disabled-observability dispatch cost {ratio:.2f}x the "
                f"baseline ratio (> {max_ratio}x)"]
    return []


def check_cache_hit(rows, max_p99_ratio=1.2, p99_slack_us=50):
    """Shared-block-cache gate on the cache_hit bench of the current run
    alone (self-skips when the capture has no cache_hit rows). Both
    properties compare two same-machine, same-budget measurements, so
    runner speed cancels out:

      * hit ratio: at a matched total byte budget on the clone-heavy
        fleet, the shared (dev,ino)-keyed cache must *strictly* beat the
        per-volume split — CoW clones hard-link the same run files, so
        dedup by construction is the whole point of sharing;
      * query p99: the shared cache's striped locking may not cost more
        than `max_p99_ratio` of the per-volume baseline's tail latency.
        Warm-cache p99s sit in single-digit microseconds, where one
        scheduler blip flips any pure ratio, so the gate also requires the
        absolute gap to exceed `p99_slack_us` — a real regression (lock
        convoy, thrash) shows up in the hundreds of µs, far past both."""
    cache = [r for r in rows if r.get("bench") == "cache_hit"]
    failures = []
    if not cache:
        return failures
    by_mode = {r.get("mode"): r for r in cache}
    shared, pervol = by_mode.get("shared"), by_mode.get("pervol")
    if not shared or not pervol:
        print("note: cache_hit capture lacks a shared/pervol pair — "
              "cache gate skipped")
        return failures
    if (shared.get("budget_bytes") != pervol.get("budget_bytes")
            or shared.get("volumes") != pervol.get("volumes")):
        print("note: cache_hit modes ran unmatched configs — cache gate "
              "skipped")
        return failures

    s_ratio, p_ratio = shared.get("hit_ratio", 0), pervol.get("hit_ratio", 0)
    status = "FAIL" if s_ratio <= p_ratio else "ok"
    print(f"{status}: cache_hit hit ratio at matched budget: shared "
          f"{s_ratio:.3f} vs per-volume {p_ratio:.3f} (gate: strictly "
          f"greater)")
    if s_ratio <= p_ratio:
        failures.append(
            f"shared cache hit ratio {s_ratio:.3f} <= per-volume "
            f"{p_ratio:.3f} at matched budget")

    s_p99, p_p99 = shared.get("query_p99_us", 0), pervol.get("query_p99_us", 0)
    if p_p99 > 0:
        ratio = s_p99 / p_p99
        bad = ratio > max_p99_ratio and s_p99 - p_p99 > p99_slack_us
        status = "FAIL" if bad else "ok"
        print(f"{status}: cache_hit query p99: shared {s_p99} us vs "
              f"per-volume {p_p99} us = {ratio:.2f}x "
              f"(gate <= {max_p99_ratio}x beyond {p99_slack_us} us slack)")
        if bad:
            failures.append(
                f"shared cache query p99 {ratio:.2f}x the per-volume "
                f"baseline (> {max_p99_ratio}x + {p99_slack_us} us)")
    return failures


def check_net_loopback(rows, min_wire_fraction=0.10, min_batch_speedup=3.0):
    """Wire-protocol overhead gate on the net_loopback bench of the current
    run alone (self-skips when the capture has no net_loopback rows). Both
    properties are ratios of two same-machine measurements, so runner speed
    cancels out:

      * wire fraction: at the largest matched (connections, batch) config
        the loopback path must keep at least `min_wire_fraction` of the
        in-process throughput — framing + crc32c + a loopback round trip
        may cost a constant factor, never an order of magnitude;
      * batch speedup: on the wire, batch=256 must beat batch=1 by at least
        `min_batch_speedup` at 1 connection — the whole point of batched
        verbs is amortizing the per-frame round trip."""
    net = [r for r in rows if r.get("bench") == "net_loopback"]
    failures = []
    if not net:
        return failures
    by_cfg = {(r.get("mode"), r.get("connections"), r.get("batch")): r
              for r in net}

    matched = [(c, b) for (m, c, b) in by_cfg if m == "loopback"
               and ("inprocess", c, b) in by_cfg]
    if matched:
        conns, batch = max(matched, key=lambda cb: (cb[1], cb[0]))
        inproc = by_cfg[("inprocess", conns, batch)]["ops_per_second"]
        wire = by_cfg[("loopback", conns, batch)]["ops_per_second"]
        frac = wire / inproc if inproc > 0 else 0
        status = "FAIL" if frac < min_wire_fraction else "ok"
        print(f"{status}: net_loopback wire fraction at conns={conns} "
              f"batch={batch}: {frac:.2f} of in-process "
              f"(gate >= {min_wire_fraction})")
        if frac < min_wire_fraction:
            failures.append(
                f"net_loopback wire fraction {frac:.2f} < {min_wire_fraction}")

    small = by_cfg.get(("loopback", 1, 1))
    large = [by_cfg[k] for k in by_cfg
             if k[0] == "loopback" and k[1] == 1 and k[2] > 1]
    if small and large and small["ops_per_second"] > 0:
        best = max(r["ops_per_second"] for r in large)
        speedup = best / small["ops_per_second"]
        status = "FAIL" if speedup < min_batch_speedup else "ok"
        print(f"{status}: net_loopback batching speedup on the wire: "
              f"{speedup:.1f}x (gate >= {min_batch_speedup}x)")
        if speedup < min_batch_speedup:
            failures.append(
                f"net_loopback batching speedup {speedup:.1f}x "
                f"< {min_batch_speedup}x")
    return failures


def check_durability(rows, min_amortization=3.0, min_speedup=3.0,
                     min_fsync_us=60.0):
    """Group-commit WAL gate on the durability bench of the current run
    alone (self-skips when the capture has no durability rows). At the
    widest fleet that ran both windows:

      * amortization: the group-commit run must cover at least
        `min_amortization` WAL records per fsync — a pure counter ratio,
        machine-independent (the per-batch baseline is exactly 1.0 by
        construction);
      * durable-ops/s: group commit must beat the per-batch baseline by
        `min_speedup`. Throughput only separates where an fsync actually
        costs something, so this half self-skips when the baseline's mean
        fsync is under `min_fsync_us` (tmpfs/overlay runners sync from page
        cache in microseconds and both modes run at memory speed)."""
    dur = [r for r in rows if r.get("bench") == "durability"]
    failures = []
    if not dur:
        return failures
    by_cfg = {(r.get("volumes"), r.get("window_us") > 0): r for r in dur}
    paired = [v for (v, grouped) in by_cfg if grouped
              and (v, False) in by_cfg]
    if not paired:
        print("note: durability capture lacks a baseline/group pair — "
              "durability gate skipped")
        return failures
    volumes = max(paired)
    base, group = by_cfg[(volumes, False)], by_cfg[(volumes, True)]

    fsyncs = group.get("wal_fsyncs", 0)
    records = group.get("wal_records", 0)
    amort = records / fsyncs if fsyncs > 0 else 0
    status = "FAIL" if amort < min_amortization else "ok"
    print(f"{status}: durability amortization at {volumes} volumes: "
          f"{records} records / {fsyncs} fsyncs = {amort:.1f} per fsync "
          f"(gate >= {min_amortization})")
    if amort < min_amortization:
        failures.append(
            f"group commit amortized only {amort:.1f} records/fsync "
            f"< {min_amortization}")

    fsync_us = base.get("fsync_micros_mean", 0)
    if fsync_us < min_fsync_us:
        print(f"note: baseline fsync mean {fsync_us:.0f} us < {min_fsync_us}"
              f" us — durable-ops/s gate skipped (fsync too cheap on this "
              f"filesystem for amortization to show in wall time)")
        return failures
    base_ops = base.get("durable_ops_per_second", 0)
    group_ops = group.get("durable_ops_per_second", 0)
    speedup = group_ops / base_ops if base_ops > 0 else 0
    status = "FAIL" if speedup < min_speedup else "ok"
    print(f"{status}: durable-ops/s at {volumes} volumes (fsync mean "
          f"{fsync_us:.0f} us): group {group_ops:.0f} vs per-batch "
          f"{base_ops:.0f} = {speedup:.1f}x (gate >= {min_speedup}x)")
    if speedup < min_speedup:
        failures.append(
            f"group commit durable-ops/s {speedup:.1f}x < {min_speedup}x")
    return failures


def reference_ops(rows):
    """ops_per_second of the (unbatched) 1-shard/16-tenant sweep-(a) row.
    `batched` is absent in pre-batching baselines, hence the (0, None)."""
    for row in rows:
        if (row.get("bench") == "service_throughput"
                and row.get("shards") == 1 and row.get("churn_period_ms") == 0
                and row.get("batched") in (0, None)):
            return row["ops_per_second"]
    return None


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline", help="checked-in BENCH_baseline.json")
    ap.add_argument("current", help="fresh JSONROW capture (txt or jsonl)")
    ap.add_argument("--threshold", type=float, default=0.25,
                    help="max allowed fractional regression (default 0.25)")
    ap.add_argument("--absolute", action="store_true",
                    help="compare raw ops/s instead of 1-shard-normalized")
    args = ap.parse_args()

    base_rows = load_rows(args.baseline)
    cur_rows = load_rows(args.current)

    base_ref = cur_ref = 1.0
    if not args.absolute:
        base_ref = reference_ops(base_rows)
        cur_ref = reference_ops(cur_rows)
        if not base_ref or not cur_ref:
            sys.exit("error: missing the 1-shard reference row; "
                     "rerun with --absolute or fix the capture")

    base_by_key = dict(keyed_rows(base_rows))

    checked = 0
    failures = []
    for key, row in keyed_rows(cur_rows):
        base = base_by_key.get(key)
        if base is None:
            print(f"note: no baseline for {key} — new config, skipped")
            continue
        if not args.absolute and row.get("qos") == 1:
            # Rate-limited rows are wall-clock-pinned (the throttle, not the
            # CPU, sets their ops/s), so dividing by the CPU-bound 1-shard
            # reference would read as a regression on any faster runner.
            print(f"note: skipping rate-limited row {key} in normalized mode")
            continue
        base_val = base["ops_per_second"] / base_ref
        cur_val = row["ops_per_second"] / cur_ref
        checked += 1
        if base_val <= 0:
            continue
        drop = 1.0 - cur_val / base_val
        tag = (f"{row['bench']} shards={row.get('shards')} "
               f"tenants={row.get('tenants')} churn={row.get('churn_period_ms')} "
               f"qos={row.get('qos')} balancer={row.get('balancer')}")
        status = "FAIL" if drop > args.threshold else "ok"
        print(f"{status}: {tag}: {base_val:.3g} -> {cur_val:.3g} "
              f"({-drop * 100:+.1f}%)")
        if drop > args.threshold:
            failures.append(tag)

    failures.extend(check_clone_cost(cur_rows))
    failures.extend(check_shard_scaling(cur_rows))
    failures.extend(check_dispatch_overhead(cur_rows))
    failures.extend(check_dispatch_vs_baseline(base_rows, cur_rows))
    failures.extend(check_net_loopback(cur_rows))
    failures.extend(check_cache_hit(cur_rows))
    failures.extend(check_durability(cur_rows))

    if checked == 0:
        sys.exit("error: no comparable rows between baseline and current run")
    if failures:
        print(f"\n{len(failures)} row(s) regressed more than "
              f"{args.threshold * 100:.0f}%:")
        for tag in failures:
            print(f"  {tag}")
        return 1
    print(f"\nall {checked} comparable rows within "
          f"{args.threshold * 100:.0f}% of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
