#!/usr/bin/env python3
"""Validate Prometheus text exposition produced by `backlogctl metrics --prom`.

Stdlib-only gate for CI: reads the exposition from stdin (or a file given as
argv[1]) and checks the invariants a scraper relies on:

  * every sample line parses as  name[{labels}] value
  * metric and label names match the Prometheus grammar
  * every family has exactly one # HELP and one # TYPE line, appearing
    before its first sample
  * counter family names end in _total
  * histogram families expose _bucket / _sum / _count series, bucket counts
    are cumulative (non-decreasing as le rises), the le="+Inf" bucket is
    present and equals _count
  * no duplicate (name, labels) series

Exit 0 when the exposition is well-formed, 1 with one line per violation.
"""

import re
import sys

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
LABEL_RE = re.compile(r'^([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"$')
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})?\s+(\S+)(\s+\d+)?$")


def parse_labels(raw, errors, lineno):
    labels = {}
    if not raw:
        return labels
    for part in raw.split(","):
        m = LABEL_RE.match(part.strip())
        if not m:
            errors.append(f"line {lineno}: malformed label '{part}'")
            continue
        labels[m.group(1)] = m.group(2)
    return labels


def family_of(name):
    """Histogram series fold into their family name."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)], suffix
    return name, ""


def check(text):
    errors = []
    helps = {}      # family -> lineno
    types = {}      # family -> (type, lineno)
    seen_series = set()
    # histogram family -> list of (le, value); _count/_sum -> value
    hist_buckets = {}
    hist_count = {}
    samples_before_meta = set()

    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("# HELP "):
            rest = line[len("# HELP "):].split(None, 1)
            if not rest or not NAME_RE.match(rest[0]):
                errors.append(f"line {lineno}: malformed HELP line")
                continue
            if rest[0] in helps:
                errors.append(f"line {lineno}: duplicate HELP for {rest[0]}")
            helps[rest[0]] = lineno
            continue
        if line.startswith("# TYPE "):
            rest = line[len("# TYPE "):].split()
            if len(rest) != 2 or not NAME_RE.match(rest[0]):
                errors.append(f"line {lineno}: malformed TYPE line")
                continue
            if rest[1] not in ("counter", "gauge", "histogram", "summary",
                               "untyped"):
                errors.append(
                    f"line {lineno}: unknown metric type '{rest[1]}'")
            if rest[0] in types:
                errors.append(f"line {lineno}: duplicate TYPE for {rest[0]}")
            types[rest[0]] = (rest[1], lineno)
            continue
        if line.startswith("#"):
            continue  # comment

        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample '{line}'")
            continue
        name, _, raw_labels, value = m.group(1), m.group(2), m.group(3), \
            m.group(4)
        labels = parse_labels(raw_labels, errors, lineno)
        try:
            fvalue = float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value '{value}'")
            continue

        series_key = (name, tuple(sorted(labels.items())))
        if series_key in seen_series:
            errors.append(f"line {lineno}: duplicate series {series_key}")
        seen_series.add(series_key)

        family, suffix = family_of(name)
        meta_name = family if (
            family in types and types[family][0] == "histogram") else name
        if meta_name not in types:
            samples_before_meta.add(name)
        ftype = types.get(meta_name, ("untyped", 0))[0]

        if ftype == "counter":
            if not name.endswith("_total"):
                errors.append(
                    f"line {lineno}: counter '{name}' must end in _total")
            if fvalue < 0:
                errors.append(f"line {lineno}: negative counter '{name}'")
        if ftype == "histogram":
            if suffix == "_bucket":
                le = labels.get("le")
                if le is None:
                    errors.append(
                        f"line {lineno}: histogram bucket without le label")
                else:
                    hist_buckets.setdefault(family, []).append(
                        (le, fvalue, lineno))
            elif suffix == "_count":
                hist_count[family] = fvalue

    for name in sorted(samples_before_meta):
        errors.append(f"sample '{name}' has no preceding # TYPE line")
    for family, (_, lineno) in types.items():
        if family not in helps:
            errors.append(f"family '{family}' has a TYPE but no HELP line")

    for family, buckets in hist_buckets.items():
        les = [le for le, _, _ in buckets]
        if "+Inf" not in les:
            errors.append(f"histogram '{family}' is missing le=\"+Inf\"")
            continue
        # Exposition order must already be cumulative.
        prev = -1.0
        for le, value, lineno in buckets:
            if value < prev:
                errors.append(
                    f"line {lineno}: histogram '{family}' bucket le={le} "
                    f"decreases ({value} < {prev})")
            prev = value
        inf_value = dict((le, v) for le, v, _ in buckets)["+Inf"]
        if family in hist_count and inf_value != hist_count[family]:
            errors.append(
                f"histogram '{family}': le=\"+Inf\" bucket ({inf_value}) != "
                f"_count ({hist_count[family]})")
        if family not in hist_count:
            errors.append(f"histogram '{family}' is missing _count")

    return errors


def main():
    if len(sys.argv) > 2:
        print("usage: check_prom_format.py [exposition.txt] (default stdin)",
              file=sys.stderr)
        return 2
    if len(sys.argv) == 2:
        with open(sys.argv[1], encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        print("FAIL: empty exposition")
        return 1
    errors = check(text)
    for e in errors:
        print(f"FAIL: {e}")
    if not errors:
        families = [l for l in text.splitlines() if l.startswith("# TYPE ")]
        print(f"ok: exposition well-formed ({len(families)} families)")
        return 0
    return 1


if __name__ == "__main__":
    sys.exit(main())
