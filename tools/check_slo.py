#!/usr/bin/env python3
"""SLO gate for the fleet_sim JSONROW output.

Reads a fleet_sim capture (raw transcript or extracted JSONL — same loader
contract as check_bench_regression.py) and gates on the per-class "slo"
rows: every QoS class must meet its p99 queue-wait target. With
--expect-breach the polarity flips — at least one class must MISS its
target, which is how CI proves the gate actually has teeth (a 10x
overload scenario that still "passes" means the harness is measuring
nothing).

Queue-wait p99 under open-loop load is a property of spare capacity, so
it only means something on hardware with headroom: the gate self-skips
(exit 0) when the capture's hardware_concurrency is below --min-cores.
Correctness rows are exempt from the skip: when a "chaos" row is present,
verifier_divergence and dropped_ops must be zero on any machine — chaos
may slow the fleet down, it may never lose or corrupt an op.

Exit codes: 0 ok (or skipped), 1 gate failed, 2 bad invocation/inputs.
"""

import argparse
import json
import sys


def load_rows(path):
    """Accepts either pure JSONL or a full transcript: when any 'JSONROW '
    lines are present only those are parsed, so raw tee'd output works."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = [line.strip() for line in fh if line.strip()]
    tagged = [l[len("JSONROW "):] for l in lines if l.startswith("JSONROW ")]
    candidates = tagged if tagged else lines
    rows = []
    for line in candidates:
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            sys.exit(f"error: {path}: unparsable row: {line!r} ({exc})")
    if not rows:
        sys.exit(f"error: {path}: no JSONROW rows")
    return rows


def check_chaos(rows):
    """Correctness side of the chaos scenario — never skipped on core
    count, because losing ops is wrong on any machine."""
    failures = []
    for row in rows:
        if row.get("bench") != "fleet_sim" or row.get("row") != "chaos":
            continue
        div = row.get("verifier_divergence", 0)
        dropped = row.get("dropped_ops", 0)
        wound_failures = row.get("wound_failures", 0)
        status = "FAIL" if div or dropped or wound_failures else "ok"
        print(f"{status}: chaos correctness: verifier_divergence={div} "
              f"dropped_ops={dropped} wound_failures={wound_failures} "
              f"(kills={row.get('shard_kills')} "
              f"at-wal-point={row.get('wal_point_kills', 0)} "
              f"migrations={row.get('forced_migrations')} "
              f"clones={row.get('clones')} destroys={row.get('destroys')} "
              f"wounds={row.get('wounds', 0)} heals={row.get('heals', 0)})")
        if div:
            failures.append(f"verifier divergence: {div} live-set mismatches")
        if dropped:
            failures.append(f"{dropped} op future(s) dropped under chaos")
        if wound_failures:
            failures.append(
                f"{wound_failures} wounded-volume degradation check(s) "
                f"failed (write not kWounded / read failed / reopen did "
                f"not heal)")
    return failures


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("capture", help="fleet_sim JSONROW capture (txt or jsonl)")
    ap.add_argument("--expect-breach", action="store_true",
                    help="require at least one class to MISS its SLO "
                         "(overload sanity check)")
    ap.add_argument("--min-cores", type=int, default=4,
                    help="self-skip the SLO rows below this "
                         "hardware_concurrency (default 4); chaos "
                         "correctness rows are checked regardless")
    args = ap.parse_args()

    rows = load_rows(args.capture)
    slo = [r for r in rows
           if r.get("bench") == "fleet_sim" and r.get("row") == "slo"]

    failures = check_chaos(rows)

    if not slo:
        sys.exit("error: capture has no fleet_sim slo rows")

    cores = slo[0].get("hardware_concurrency")
    if cores is None or cores < args.min_cores:
        print(f"note: hardware_concurrency={cores} < {args.min_cores} — "
              "SLO latency gate skipped (no headroom to absorb open-loop "
              "arrivals on this host)")
        if failures:
            print(f"\nchaos correctness failed:")
            for f in failures:
                print(f"  {f}")
            return 1
        return 0

    breached = []
    for row in slo:
        cls = row.get("class")
        p99 = row.get("p99_queue_wait_us")
        target = row.get("target_us")
        ok = bool(row.get("pass"))
        status = "ok" if ok else ("MISS" if args.expect_breach else "FAIL")
        print(f"{status}: {row.get('scenario')}/{cls}: p99 queue wait "
              f"{p99} us vs target {target} us "
              f"({row.get('samples')} samples)")
        if not ok:
            breached.append(f"{cls}: p99 {p99} us > target {target} us")

    if args.expect_breach:
        if not breached:
            failures.append(
                "overload scenario breached no SLO — the gate has no teeth")
    else:
        failures.extend(breached)

    if failures:
        print(f"\n{len(failures)} SLO gate failure(s):")
        for f in failures:
            print(f"  {f}")
        return 1
    verdict = ("breach confirmed" if args.expect_breach
               else "all classes within target")
    print(f"\nSLO gate ok: {verdict} across {len(slo)} class row(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
