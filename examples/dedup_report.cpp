// Deduplication sharing report — the §4.2 scenario: "imagine that we have
// previously run a deduplication process and found that many files contain
// a block of all 0's... now we wish to move the physical location of that
// block". Before moving anything, an administrator wants to know how
// sharing is distributed: which blocks are hot, who owns them, and across
// how many snapshots each reference spans.
//
// This example builds a deduplicated volume with the paper's measured
// sharing profile (§6.1: ~75-78% of blocks with refcount 1, ~18% with 2,
// ~5% with 3, ...) and regenerates that distribution from back-reference
// queries alone, then drills into the hottest block.
#include <cstdio>
#include <map>

#include "fsim/fsim.hpp"
#include "fsim/workload.hpp"
#include "storage/env.hpp"

using namespace backlog;

int main() {
  storage::TempDir dir("backlog-dedup");
  storage::Env env(dir.path());
  fsim::FsimOptions options;
  options.ops_per_cp = 2000;
  // Calibrated so the surviving-block refcount profile matches the paper's
  // NetApp-filer measurements (§6.1: ~75-78% refcount 1, ~18% refcount 2,
  // ~5% refcount 3). The duplicate-write fraction exceeds the paper's
  // quoted 10% because churn (overwrites/deletes) preferentially destroys
  // singleton references.
  options.dedup_fraction = 0.22;
  options.dedup_zipf_alpha = 0.9;
  options.dedup_pool_size = 16384;
  fsim::FileSystem fs(env, options);

  std::printf("building a deduplicated volume...\n");
  fsim::WorkloadOptions wl;
  wl.seed = 11;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  for (int cp = 0; cp < 20; ++cp) {
    gen.run_block_writes(2000);
    fs.consistency_point();
  }
  fs.db().maintain();
  std::printf("volume: %llu blocks, %llu dedup hits during writes\n\n",
              (unsigned long long)fs.stats().allocated_blocks,
              (unsigned long long)fs.stats().dedup_hits);

  // Regenerate the refcount distribution from back references: for every
  // allocated block, count the *live* owners (to == inf records).
  std::map<std::size_t, std::uint64_t> histogram;
  core::BlockNo hottest = 0;
  std::size_t hottest_refs = 0;
  const core::BlockNo limit = fs.max_block();
  for (core::BlockNo b = 1; b < limit; b += 64) {
    const std::uint64_t count = std::min<std::uint64_t>(64, limit - b);
    std::map<core::BlockNo, std::size_t> live_refs;
    for (const core::BackrefEntry& e : fs.db().query(b, count)) {
      if (e.rec.to == core::kInfinity) ++live_refs[e.rec.key.block];
    }
    for (const auto& [blk, n] : live_refs) {
      ++histogram[n];
      if (n > hottest_refs) {
        hottest_refs = n;
        hottest = blk;
      }
    }
  }

  std::uint64_t total = 0;
  for (const auto& [refs, blocks] : histogram) total += blocks;
  std::printf("sharing distribution (from back references):\n");
  std::printf("%10s %12s %10s   %s\n", "refcount", "blocks", "share",
              "(paper: ~75-78%% / ~18%% / ~5%% / ...)");
  for (const auto& [refs, blocks] : histogram) {
    if (refs > 6) break;
    std::printf("%10zu %12llu %9.1f%%\n", refs, (unsigned long long)blocks,
                100.0 * static_cast<double>(blocks) / static_cast<double>(total));
  }

  // Drill into the hottest block: the full owner list a mover would need.
  std::printf("\nhottest block %llu has %zu live owners:\n",
              (unsigned long long)hottest, hottest_refs);
  std::size_t shown = 0;
  for (const core::BackrefEntry& e : fs.db().query(hottest)) {
    if (e.rec.to != core::kInfinity) continue;
    std::printf("  inode %llu offset %llu (line %llu)\n",
                (unsigned long long)e.rec.key.inode,
                (unsigned long long)e.rec.key.offset,
                (unsigned long long)e.rec.key.line);
    if (++shown == 10) {
      std::printf("  ...\n");
      break;
    }
  }

  // And the §4.2 finale: move it. One call updates every owner's metadata.
  const core::BlockNo target = fs.max_block() + 7;
  const std::uint64_t updated = fs.relocate_extent(hottest, 1, target);
  std::printf("\nrelocated block %llu -> %llu: %llu pointers updated in one "
              "pass\n", (unsigned long long)hottest, (unsigned long long)target,
              (unsigned long long)updated);
  return 0;
}
