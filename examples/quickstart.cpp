// Quickstart: the Backlog public API in five minutes.
//
// Creates a simulated write-anywhere file system backed by a Backlog
// database, writes some files, takes a snapshot, makes a writable clone,
// and asks the question the whole system exists to answer efficiently:
//
//     "Tell me all the objects containing this physical block."
//
// Build & run:   ./build/examples/quickstart
#include <cstdio>

#include "core/backlog_db.hpp"
#include "fsim/fsim.hpp"
#include "storage/env.hpp"

using namespace backlog;

int main() {
  // A storage environment is a directory; everything Backlog persists —
  // run files, the manifest, deletion vectors — lives under it.
  storage::TempDir dir("backlog-quickstart");
  storage::Env env(dir.path());
  std::printf("volume directory: %s\n\n", dir.path().c_str());

  // The simulated write-anywhere file system owns a BacklogDb and drives it
  // through the three callbacks of the paper: reference added, reference
  // removed, consistency point.
  fsim::FsimOptions options;
  options.ops_per_cp = 1000000;  // we'll take CPs explicitly below
  options.dedup_fraction = 0.0;
  fsim::FileSystem fs(env, options);

  // --- 1. create a file and commit a consistency point ----------------------
  const fsim::InodeNo readme = fs.create_file(/*line=*/0, /*num_blocks=*/4);
  const auto cp1 = fs.consistency_point();
  std::printf("created inode %llu (4 blocks); CP %llu flushed %llu records "
              "with %llu page writes\n",
              (unsigned long long)readme, (unsigned long long)cp1.cp,
              (unsigned long long)cp1.block_ops,
              (unsigned long long)cp1.pages_written);

  // --- 2. snapshot, then overwrite: copy-on-write ---------------------------
  const core::Epoch snap = fs.take_snapshot(0);
  fs.consistency_point();
  fs.write_file(0, readme, /*offset=*/0, /*count=*/2);  // CoW blocks 0-1
  fs.consistency_point();
  std::printf("snapshot v%llu taken, then blocks 0-1 rewritten (CoW)\n\n",
              (unsigned long long)snap);

  // --- 3. query back references ---------------------------------------------
  const core::BlockNo old_block = fs.snapshot_images(0).at(snap).at(readme)->blocks[0];
  const core::BlockNo new_block = fs.live_image(0).at(readme)->blocks[0];

  std::printf("who references the OLD block %llu?\n",
              (unsigned long long)old_block);
  for (const core::BackrefEntry& e : fs.db().query(old_block)) {
    std::printf("  %s visible at versions:", core::to_string(e.rec).c_str());
    for (const core::Epoch v : e.versions) std::printf(" %llu", (unsigned long long)v);
    std::printf("\n");
  }
  std::printf("who references the NEW block %llu?\n",
              (unsigned long long)new_block);
  for (const core::BackrefEntry& e : fs.db().query(new_block)) {
    std::printf("  %s visible at versions:", core::to_string(e.rec).c_str());
    for (const core::Epoch v : e.versions) std::printf(" %llu", (unsigned long long)v);
    std::printf("\n");
  }

  // --- 4. writable clones cost nothing (structural inheritance) -------------
  const fsim::LineId clone = fs.create_clone(0, snap);
  const auto cp_clone = fs.consistency_point();
  std::printf("\nclone line %llu created; back-reference records written: %llu"
              " (structural inheritance)\n",
              (unsigned long long)clone, (unsigned long long)cp_clone.block_ops);
  std::printf("owners of block %llu after cloning:\n",
              (unsigned long long)old_block);
  for (const core::BackrefEntry& e : fs.db().query(old_block)) {
    std::printf("  %s\n", core::to_string(e.rec).c_str());
  }

  // --- 5. maintenance --------------------------------------------------------
  const core::MaintenanceStats m = fs.db().maintain();
  std::printf("\nmaintenance: %llu records in, %llu complete + %llu incomplete "
              "out, %llu purged, %.0f%% of bytes reclaimed\n",
              (unsigned long long)m.input_records,
              (unsigned long long)m.output_complete,
              (unsigned long long)m.output_incomplete,
              (unsigned long long)m.purged,
              m.bytes_before == 0
                  ? 0.0
                  : 100.0 * (1.0 - static_cast<double>(m.bytes_after) /
                                       static_cast<double>(m.bytes_before)));
  std::printf("\ndone. (the volume directory is removed on exit)\n");
  return 0;
}
