// Volume shrinking — the paper's first motivating use case (§3).
//
// To shrink a volume, every allocated block above the new size must move
// below it, and *every pointer to it* — in the live tree, in snapshots, in
// clones — must be updated. Ext3 can only do this by walking the whole file
// system tree per block range; with back references it is one indexed query
// per block (§3: "Tell me all the objects containing this block").
//
// This example builds an aged, snapshot-carrying volume, then evacuates the
// top 30% of the block space using Backlog queries + relocation, verifies
// the result against the file-system ground truth, and prints the I/O the
// queries cost.
#include <cstdio>
#include <vector>

#include "fsim/fsim.hpp"
#include "fsim/verifier.hpp"
#include "fsim/workload.hpp"
#include "storage/env.hpp"

using namespace backlog;

int main() {
  storage::TempDir dir("backlog-shrink");
  storage::Env env(dir.path());
  fsim::FsimOptions options;
  options.ops_per_cp = 2000;
  options.dedup_fraction = 0.10;
  fsim::FileSystem fs(env, options);

  // Age the volume: workload + snapshots, so blocks in the evacuation zone
  // are referenced from multiple file-system versions.
  std::printf("aging the volume...\n");
  fsim::WorkloadOptions wl;
  wl.seed = 7;
  fsim::WorkloadGenerator gen(fs, 0, wl);
  std::vector<core::Epoch> snaps;
  for (int cp = 0; cp < 30; ++cp) {
    gen.run_block_writes(2000);
    if (cp % 10 == 5) snaps.push_back(fs.take_snapshot(0));
    fs.consistency_point();
  }
  // The volume is being shrunk because it is underutilized: retire the two
  // older snapshots and a third of the files, leaving free holes everywhere.
  fs.delete_snapshot(0, snaps[0]);
  fs.delete_snapshot(0, snaps[1]);
  const auto all_files = fs.list_files(0);
  for (std::size_t i = 0; i < all_files.size(); i += 3) {
    fs.delete_file(0, all_files[i]);
  }
  fs.consistency_point();
  fs.db().maintain();

  const core::BlockNo old_limit = fs.max_block();
  // Shrink to 125% of the allocated size: guaranteed to fit, with headroom.
  const core::BlockNo new_limit =
      std::min<core::BlockNo>(old_limit, fs.stats().allocated_blocks * 5 / 4);
  std::printf("volume: %llu blocks allocated, high-water mark %llu\n",
              (unsigned long long)fs.stats().allocated_blocks,
              (unsigned long long)old_limit);
  std::printf("shrinking: evacuating blocks [%llu, %llu)\n\n",
              (unsigned long long)new_limit, (unsigned long long)old_limit);

  // Evacuate. In a real system the destination allocator would pick free
  // space below the cut; fsim's relocate_extent handles pointer rewriting in
  // every image plus the back-reference database rewrite (deletion vector +
  // re-keyed runs, §5.1).
  const storage::IoStats before = env.stats();
  std::uint64_t moved = 0, owners_updated = 0, extents_moved = 0;

  // Free slots below the cut, coalesced into extents so each relocation
  // moves a contiguous range (one deletion-vector pass + one new run).
  std::vector<std::pair<core::BlockNo, std::uint64_t>> free_extents;
  for (core::BlockNo b = 1; b < new_limit;) {
    if (fs.block_allocated(b)) {
      ++b;
      continue;
    }
    core::BlockNo e = b + 1;
    while (e < new_limit && !fs.block_allocated(e)) ++e;
    free_extents.emplace_back(b, e - b);
    b = e;
  }
  std::size_t fe = 0;
  core::BlockNo src = new_limit;
  bool out_of_space = false;
  while (src < old_limit && !out_of_space) {
    if (!fs.block_allocated(src)) {
      ++src;
      continue;
    }
    // Coalesce the source side too, bounded by the current free extent.
    if (fe >= free_extents.size()) {
      out_of_space = true;
      break;
    }
    auto& [dst, dst_len] = free_extents[fe];
    core::BlockNo end = src + 1;
    while (end < old_limit && end - src < dst_len && fs.block_allocated(end))
      ++end;
    const std::uint64_t len = end - src;
    // The back-reference query: every object (inode, offset, line, version)
    // that points at these blocks, without walking any file-system tree.
    owners_updated += fs.db().query(src, len).size();
    fs.relocate_extent(src, len, dst);
    moved += len;
    ++extents_moved;
    dst += len;
    dst_len -= len;
    if (dst_len == 0) ++fe;
    src = end;
    // Periodic compaction bounds the Level-0 run population the relocation
    // rewrites create — exactly why the paper recommends running
    // maintenance before/under query-intensive tasks (§6.4).
    if (extents_moved % 512 == 0) {
      fs.consistency_point();
      fs.db().maintain();
    }
  }
  if (out_of_space) {
    std::printf("free space below the cut exhausted after %llu moves\n",
                (unsigned long long)moved);
  }
  fs.consistency_point();
  const storage::IoStats delta = env.stats() - before;

  std::printf("moved %llu blocks; %llu owner records consulted\n",
              (unsigned long long)moved, (unsigned long long)owners_updated);
  std::printf("back-reference I/O: %llu page reads, %llu page writes\n",
              (unsigned long long)delta.page_reads,
              (unsigned long long)delta.page_writes);

  // Nothing above the cut may be referenced any more.
  bool clean = true;
  for (core::BlockNo b = new_limit; b < old_limit; ++b) {
    if (fs.block_allocated(b)) clean = false;
  }
  std::printf("evacuation zone empty: %s\n", clean ? "yes" : "NO");

  // Full ground-truth verification: every snapshot, clone and live pointer
  // agrees with the database after the move.
  const auto result = fsim::verify_backrefs(fs);
  std::printf("verifier: %s (%llu references checked)\n",
              result.ok ? "OK" : "MISMATCH",
              (unsigned long long)result.ground_truth_refs);
  if (!result.ok) {
    for (const auto& e : result.errors) std::printf("  %s\n", e.c_str());
    return 1;
  }
  fs.db().maintain();  // compact away the relocation's deletion vector
  std::printf("post-shrink maintenance done; db = %.1f MB\n",
              fs.db().stats().db_bytes / (1024.0 * 1024.0));
  return 0;
}
