// Sharing-aware defragmentation — the paper's second motivating use case
// (§3): two cloned VM images share most blocks; defragmenting them one at a
// time would ping-pong the shared blocks between the files. Back references
// let the defragmenter see the sharing relationship *before* moving
// anything and decide per block: relocate it (updating every owner) or
// break the sharing by duplicating.
//
// This example clones a "master VM image", diverges both copies, uses
// Backlog queries to classify each block as private or shared, and then
// lays out each file sequentially while keeping shared blocks co-located
// in a common region — the multi-file-aware policy the paper argues for.
#include <cstdio>
#include <map>
#include <vector>

#include "fsim/fsim.hpp"
#include "fsim/verifier.hpp"
#include "storage/env.hpp"

using namespace backlog;

int main() {
  storage::TempDir dir("backlog-defrag");
  storage::Env env(dir.path());
  fsim::FsimOptions options;
  options.ops_per_cp = 1000000;
  options.dedup_fraction = 0;
  fsim::FileSystem fs(env, options);

  // Master image: one large file. Fragment it on purpose by interleaving
  // writes with a second file's growth.
  const fsim::InodeNo master = fs.create_file(0, 1);
  const fsim::InodeNo noise = fs.create_file(0, 1);
  for (int i = 1; i < 64; ++i) {
    fs.write_file(0, master, i, 1);
    fs.write_file(0, noise, i, 1);
  }
  const core::Epoch golden = fs.take_snapshot(0);
  fs.consistency_point();

  // Two writable clones of the golden image, each diverging a little.
  const fsim::LineId vm1 = fs.create_clone(0, golden);
  const fsim::LineId vm2 = fs.create_clone(0, golden);
  fs.write_file(vm1, master, 5, 4);   // VM1 patches blocks 5-8
  fs.write_file(vm2, master, 40, 6);  // VM2 patches blocks 40-45
  fs.consistency_point();

  // --- classify the master file's blocks by owner count ----------------------
  // For each physical block of VM1's image: how many lines reference it?
  auto classify = [&](fsim::LineId line) {
    std::map<core::BlockNo, std::vector<core::LineId>> owners;
    const auto& blocks = fs.live_image(line).at(master)->blocks;
    for (const core::BlockNo b : blocks) {
      for (const core::BackrefEntry& e : fs.db().query(b)) {
        if (e.rec.key.inode == master) owners[b].push_back(e.rec.key.line);
      }
    }
    return owners;
  };
  const auto vm1_owners = classify(vm1);
  std::size_t shared = 0, priv = 0;
  for (const auto& [b, lines] : vm1_owners) {
    if (lines.size() > 1) {
      ++shared;
    } else {
      ++priv;
    }
  }
  std::printf("VM1 image: %zu blocks, %zu shared with other lines, %zu "
              "private\n", vm1_owners.size(), shared, priv);

  // --- sharing-aware layout ----------------------------------------------------
  // Policy (one of the §3 options): keep sharing, co-locate shared blocks in
  // one contiguous region, and give each VM's *private* blocks their own
  // sequential region. Compute target regions past the high-water mark.
  core::BlockNo cursor = fs.max_block() + 100;
  auto relocate_class = [&](fsim::LineId line, bool want_shared,
                            const char* label) {
    std::uint64_t moved = 0;
    const auto owners = classify(line);
    for (const auto& [b, lines] : owners) {
      const bool is_shared = lines.size() > 1;
      if (is_shared != want_shared) continue;
      fs.relocate_extent(b, 1, cursor++);
      ++moved;
    }
    std::printf("  %-22s %llu blocks -> contiguous region ending at %llu\n",
                label, (unsigned long long)moved, (unsigned long long)cursor);
    return moved;
  };
  std::printf("relocating with sharing awareness:\n");
  relocate_class(vm1, true, "shared (golden) blocks");
  relocate_class(vm1, false, "VM1 private blocks");
  relocate_class(vm2, false, "VM2 private blocks");
  fs.consistency_point();

  // --- measure layout quality ---------------------------------------------------
  auto seq_score = [&](fsim::LineId line) {
    const auto& blocks = fs.live_image(line).at(master)->blocks;
    std::size_t seq = 0;
    for (std::size_t i = 1; i < blocks.size(); ++i) {
      if (blocks[i] == blocks[i - 1] + 1) ++seq;
    }
    return 100.0 * static_cast<double>(seq) /
           static_cast<double>(blocks.size() - 1);
  };
  std::printf("sequentiality after defrag: VM1 %.0f%%, VM2 %.0f%% (shared "
              "region breaks each file once, by design)\n",
              seq_score(vm1), seq_score(vm2));

  const auto result = fsim::verify_backrefs(fs);
  std::printf("verifier: %s\n", result.ok ? "OK" : "MISMATCH");
  return result.ok ? 0 : 1;
}
