// Balancer — autonomous load-balancing placement on top of migrate_volume.
//
// PR 2 built the *mechanism* (live drain/park/replay migration); this is the
// *policy*: a control thread that periodically
//
//   1. polls the per-shard load signals (queue depth, task-latency EWMA —
//      see WorkerPool) and every volume's dispatched-op counter, differencing
//      the counters into per-volume rates since the previous cycle;
//   2. scores each shard: load = (rate + queue_depth), optionally weighted
//      by the shard's latency EWMA (BalancerPolicy::latency_weighted — the
//      default; tests disable it for a fully deterministic metric);
//   3. while the hottest shard exceeds the hysteresis band over the coolest,
//      picks the largest volume on the hot shard whose contribution fits in
//      half the gap (best-fit, so a move can never overshoot and ping-pong)
//      and live-migrates it to the cool shard.
//
// Guard rails, all tunable through BalancerPolicy:
//   * hysteresis — no action inside the band, so a balanced-but-noisy fleet
//     is left alone;
//   * per-volume cooldown — a volume that just moved is ineligible until the
//     window expires, bounding churn per tenant;
//   * migration budget — at most max_moves_per_cycle handoffs per cycle,
//     executed sequentially (the balancer never runs concurrent handoffs);
//   * clean-only moves — rebalancing uses migrate_volume(require_clean), so
//     it never forces a consistency point on a tenant mid-CP-window; a dirty
//     volume is skipped and reconsidered next cycle;
//   * min_load_to_act — an idle service is never shuffled.
//
// run_once() takes an explicit timestamp and returns the moves it made, so
// tests drive convergence deterministically; start() runs the same cycle on
// a timer thread.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/volume_manager.hpp"

namespace backlog::service {

struct BalancerPolicy {
  std::chrono::milliseconds poll_interval{200};
  /// A volume may move at most once per cooldown window.
  std::chrono::milliseconds cooldown{2000};
  /// Act only when hot > hysteresis * cool (and the gap fits a candidate).
  double hysteresis = 1.5;
  /// Migration budget: handoffs per cycle (always sequential).
  std::size_t max_moves_per_cycle = 1;
  /// Don't rebalance a fleet doing less than this much total work per
  /// cycle (load-metric units: ops observed + tasks queued).
  double min_load_to_act = 64;
  /// Weight shard loads by their task-latency EWMA (the queue-depth ×
  /// latency signal). Off = pure op-count loads, fully deterministic.
  bool latency_weighted = true;
};

/// One completed rebalancing move, with the metric before/after (recomputed
/// from the same cycle's snapshot) — the convergence trail tests assert on.
struct BalancerMove {
  std::string tenant;
  std::size_t from_shard = 0;
  std::size_t to_shard = 0;
  double imbalance_before = 0;
  double imbalance_after = 0;
  std::uint64_t at_micros = 0;
};

class Balancer {
 public:
  /// Does not start the thread; call start() or drive run_once() directly.
  /// `vm` must outlive this object.
  explicit Balancer(VolumeManager& vm, BalancerPolicy policy = {});
  ~Balancer();

  Balancer(const Balancer&) = delete;
  Balancer& operator=(const Balancer&) = delete;

  /// Start the periodic thread (idempotent).
  void start();
  /// Stop and join it (idempotent; also called by the destructor): a cycle
  /// in flight completes its handoffs first, and moves()/history() are
  /// stable once this returns. Call start/stop from one thread.
  void stop();

  /// One rebalancing cycle at `now_micros`; returns the moves made.
  /// Thread-safe against the periodic thread (cycles serialize).
  std::vector<BalancerMove> run_once(std::uint64_t now_micros);
  std::vector<BalancerMove> run_once();  ///< … at the current wall clock

  /// Imbalance metric of the last cycle: (max - min) / total shard load,
  /// in [0, 1]; 0 until a cycle has run or when the fleet is idle.
  [[nodiscard]] double last_imbalance() const noexcept {
    return last_imbalance_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t cycles() const noexcept {
    return cycles_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t moves() const noexcept {
    return moves_.load(std::memory_order_relaxed);
  }
  /// The most recent moves (bounded at kMaxHistory; copy).
  static constexpr std::size_t kMaxHistory = 4096;
  [[nodiscard]] std::vector<BalancerMove> history() const;

 private:
  void loop();

  VolumeManager& vm_;
  BalancerPolicy policy_;

  mutable std::mutex cycle_mu_;  // serializes run_once with the periodic thread
  // Previous dispatched-op reading per tenant (cycle_mu_).
  std::map<std::string, std::uint64_t> prev_ops_;
  // Last completed move per tenant, for the cooldown (cycle_mu_).
  std::map<std::string, std::uint64_t> last_move_micros_;
  std::vector<BalancerMove> history_;  // cycle_mu_

  std::atomic<double> last_imbalance_{0};
  std::atomic<std::uint64_t> cycles_{0};
  std::atomic<std::uint64_t> moves_{0};

  // Registry mirrors of the accessors above, written from the balancer's
  // control slot (the single-writer API slot is fine: only this object's
  // serialized cycles touch these counters).
  std::size_t metric_slot_;
  MetricsRegistry::Counter* m_cycles_;
  MetricsRegistry::Counter* m_moves_;
  MetricsRegistry::Gauge* g_imbalance_;

  std::mutex thread_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

}  // namespace backlog::service
