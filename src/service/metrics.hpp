// MetricsRegistry: named counters / gauges / histograms with per-shard
// single-writer slots, merged only at scrape time.
//
// The write side is built for the shard-per-thread service: every metric
// family owns one cache-line-aligned slot per shard plus one extra slot
// shared by API/control threads. A shard thread bumps its own slot with a
// relaxed load+store (no RMW, no contention, no allocation); a scrape sums
// the slots with relaxed loads. Totals are therefore eventually consistent
// across slots — exactly the semantics a Prometheus scrape needs — while the
// hot path pays a single uncontended store.
//
// Export formats:
//   to_prometheus()  text exposition (counters `_total`, histograms with
//                    cumulative `_bucket{le=...}` / `_sum` / `_count`)
//   to_json()        one JSON object mirroring the same data, used by
//                    `backlogctl metrics --json` and bench tooling
//
// MetricsPoller turns the cumulative counters (ServiceStats + the WorkerPool
// busy clock) into windowed rates: ops/s, queries/s, throttles/s, cache-free
// IO bytes/s (the Env only charges cache-miss reads, so read rates are
// cache-free by construction) and per-shard busy fraction. poll_once() takes
// an explicit timestamp so tests get deterministic windows.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "service/service_stats.hpp"

namespace backlog::service {

class VolumeManager;

/// Destructive-interference alignment for per-shard metric slots. A fixed 64
/// (every mainstream target's cache line) rather than std::hardware_
/// destructive_interference_size, whose value shifts with -mtune and makes
/// GCC warn on any header use.
inline constexpr std::size_t kMetricSlotAlign = 64;

class MetricsRegistry {
 public:
  /// `slots` = writer count: one per shard plus one for API/control threads
  /// (VolumeManager passes shards + 1).
  explicit MetricsRegistry(std::size_t slots);

  /// Monotonic counter. add() is single-writer per slot: a relaxed
  /// load+store pair, not an RMW — two threads must never share a slot.
  class Counter {
   public:
    Counter(std::string name, std::string help, std::size_t slots)
        : name_(std::move(name)), help_(std::move(help)), slots_(slots) {}

    void add(std::size_t slot, std::uint64_t n = 1) noexcept {
      auto& cell = slots_[slot].value;
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }

    [[nodiscard]] std::uint64_t total() const noexcept {
      std::uint64_t sum = 0;
      for (const auto& s : slots_) sum += s.value.load(std::memory_order_relaxed);
      return sum;
    }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& help() const noexcept { return help_; }

   private:
    struct alignas(kMetricSlotAlign) Slot {
      std::atomic<std::uint64_t> value{0};
    };
    std::string name_;
    std::string help_;
    std::vector<Slot> slots_;
  };

  /// Point-in-time value, any thread may set it (last writer wins). An
  /// optional fixed label set ("shard=\"3\"") distinguishes series within
  /// one family.
  class Gauge {
   public:
    Gauge(std::string name, std::string help, std::string labels)
        : name_(std::move(name)), help_(std::move(help)),
          labels_(std::move(labels)) {}

    void set(double v) noexcept { value_.store(v, std::memory_order_relaxed); }
    [[nodiscard]] double value() const {
      return fn_ ? fn_() : value_.load(std::memory_order_relaxed);
    }

    /// Callback-backed mode: the gauge evaluates `fn` at scrape time
    /// instead of storing a value — used for counters that live elsewhere
    /// as relaxed atomics (the BlockCache's hit/miss/eviction counts). The
    /// callback must be thread-safe; it runs under the registry lock on
    /// whatever thread scrapes.
    void set_callback(std::function<double()> fn) { fn_ = std::move(fn); }

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& help() const noexcept { return help_; }
    [[nodiscard]] const std::string& labels() const noexcept { return labels_; }

   private:
    std::string name_;
    std::string help_;
    std::string labels_;
    std::atomic<double> value_{0.0};
    std::function<double()> fn_;
  };

  /// Log2-bucketed latency histogram with per-slot single-writer storage;
  /// merged() folds the slots into a LatencyHistogram at scrape time.
  class Histogram {
   public:
    Histogram(std::string name, std::string help, std::size_t slots)
        : name_(std::move(name)), help_(std::move(help)), slots_(slots) {}

    void record(std::size_t slot, std::uint64_t micros) noexcept {
      Slot& s = slots_[slot];
      bump(s.buckets[LatencyHistogram::bucket_of(micros)]);
      bump(s.count);
      bump(s.sum, micros);
      if (micros > s.max.load(std::memory_order_relaxed)) {
        s.max.store(micros, std::memory_order_relaxed);
      }
    }

    [[nodiscard]] LatencyHistogram merged() const;

    [[nodiscard]] const std::string& name() const noexcept { return name_; }
    [[nodiscard]] const std::string& help() const noexcept { return help_; }

   private:
    static void bump(std::atomic<std::uint64_t>& cell,
                     std::uint64_t n = 1) noexcept {
      cell.store(cell.load(std::memory_order_relaxed) + n,
                 std::memory_order_relaxed);
    }
    struct alignas(kMetricSlotAlign) Slot {
      std::atomic<std::uint64_t> buckets[LatencyHistogram::kBuckets]{};
      std::atomic<std::uint64_t> count{0};
      std::atomic<std::uint64_t> sum{0};
      std::atomic<std::uint64_t> max{0};
    };
    std::string name_;
    std::string help_;
    std::vector<Slot> slots_;
  };

  /// Registration is idempotent (same name -> same object) and returns a
  /// handle that stays valid for the registry's lifetime, so components
  /// constructed repeatedly (Balancer, MaintenanceScheduler) can re-register
  /// freely and cache the pointer.
  Counter& counter(const std::string& name, const std::string& help);
  Gauge& gauge(const std::string& name, const std::string& help,
               const std::string& labels = "");
  Histogram& histogram(const std::string& name, const std::string& help);

  [[nodiscard]] std::size_t slots() const noexcept { return slots_; }

  [[nodiscard]] std::string to_prometheus() const;
  [[nodiscard]] std::string to_json() const;

 private:
  std::size_t slots_;
  mutable std::mutex mu_;  ///< guards the maps, not the metric slots
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  // Gauges keyed by name + labels: one family (shared HELP/TYPE) may hold
  // several labeled series, e.g. backlog_shard_busy_fraction{shard="k"}.
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// One windowed-rate sample from MetricsPoller.
struct RateSample {
  /// False on the first (or otherwise unprimed) poll: there was no previous
  /// sample to diff against, so every rate below is a meaningless zero, not
  /// a measured zero. Consumers must skip or label unprimed samples —
  /// `backlogctl metrics --watch` tags the priming row instead of printing
  /// an all-zero rate line as if the service were idle.
  bool primed = false;
  std::uint64_t at_micros = 0;       ///< steady-clock stamp of this sample
  double window_seconds = 0;         ///< width of the window it covers
  double update_ops_per_sec = 0;     ///< add/remove ops applied
  double queries_per_sec = 0;
  double throttles_per_sec = 0;      ///< QoS queued + rejected
  double io_read_bytes_per_sec = 0;  ///< cache-miss reads only
  double io_write_bytes_per_sec = 0;
  std::vector<double> shard_busy_fraction;  ///< per shard, 0..1
};

/// Periodically (or on demand) diffs cumulative ServiceStats + WorkerPool
/// busy clocks into rates and mirrors them into registry gauges
/// (backlog_update_ops_per_sec, backlog_shard_busy_fraction{shard="k"}, ...).
/// The first poll primes the window and reports zero rates.
class MetricsPoller {
 public:
  /// Registers its gauges in vm.metrics(). Does not start a thread; call
  /// start() for background polling or poll_once() to drive it manually.
  MetricsPoller(VolumeManager& vm, std::chrono::milliseconds interval);
  ~MetricsPoller();

  MetricsPoller(const MetricsPoller&) = delete;
  MetricsPoller& operator=(const MetricsPoller&) = delete;

  void start();
  void stop();

  /// One deterministic sample: scrape cumulative stats, diff against the
  /// previous sample over (`now_micros` - prev stamp). Thread-safe.
  RateSample poll_once(std::uint64_t now_micros);
  /// Convenience wall-clock overload.
  RateSample poll_once();

  /// Most recent sample (zero-initialized before the second poll).
  [[nodiscard]] RateSample last() const;

 private:
  void loop();

  VolumeManager& vm_;
  std::chrono::milliseconds interval_;

  mutable std::mutex mu_;
  bool primed_ = false;
  std::uint64_t prev_at_ = 0;
  std::uint64_t prev_updates_ = 0;
  std::uint64_t prev_queries_ = 0;
  std::uint64_t prev_throttles_ = 0;
  std::uint64_t prev_read_bytes_ = 0;
  std::uint64_t prev_write_bytes_ = 0;
  std::vector<std::uint64_t> prev_busy_;
  RateSample last_{};

  MetricsRegistry::Gauge* g_updates_;
  MetricsRegistry::Gauge* g_queries_;
  MetricsRegistry::Gauge* g_throttles_;
  MetricsRegistry::Gauge* g_read_bytes_;
  MetricsRegistry::Gauge* g_write_bytes_;
  std::vector<MetricsRegistry::Gauge*> g_busy_;

  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stopping_ = false;
  std::thread thread_;
};

}  // namespace backlog::service
