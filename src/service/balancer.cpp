#include "service/balancer.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/clock.hpp"

namespace backlog::service {

namespace {

/// (max - min) / total over per-shard loads; 0 for an idle fleet. Bounded
/// by 1 (everything on one shard) and 0 (perfectly even).
double imbalance_of(const std::vector<double>& loads) {
  double lo = loads.empty() ? 0 : loads[0], hi = lo, total = 0;
  for (const double l : loads) {
    lo = std::min(lo, l);
    hi = std::max(hi, l);
    total += l;
  }
  return total > 0 ? (hi - lo) / total : 0;
}

}  // namespace

Balancer::Balancer(VolumeManager& vm, BalancerPolicy policy)
    : vm_(vm),
      policy_(policy),
      metric_slot_(vm.metrics().slots() - 1),
      m_cycles_(&vm.metrics().counter("backlog_balancer_cycles_total",
                                      "Rebalancing cycles run")),
      m_moves_(&vm.metrics().counter("backlog_balancer_moves_total",
                                     "Volumes live-migrated by the balancer")),
      g_imbalance_(&vm.metrics().gauge(
          "backlog_balancer_imbalance",
          "Shard load imbalance (max-min)/total of the last cycle, 0..1")) {}

Balancer::~Balancer() { stop(); }

void Balancer::start() {
  std::lock_guard lock(thread_mu_);
  if (thread_.joinable() || stop_) return;
  thread_ = std::thread([this] { loop(); });
}

void Balancer::stop() {
  {
    std::lock_guard lock(thread_mu_);
    stop_ = true;
  }
  cv_.notify_all();
  // Join so callers observe stable moves()/history() afterwards (a cycle in
  // flight completes its handoffs first).
  if (thread_.joinable()) thread_.join();
}

void Balancer::loop() {
  std::unique_lock lock(thread_mu_);
  while (!stop_) {
    cv_.wait_for(lock, policy_.poll_interval, [&] { return stop_; });
    if (stop_) break;
    lock.unlock();
    run_once();
    lock.lock();
  }
}

std::vector<BalancerMove> Balancer::run_once() {
  return run_once(util::now_micros());
}

std::vector<BalancerMove> Balancer::run_once(std::uint64_t now_micros) {
  std::lock_guard cycle(cycle_mu_);
  std::vector<BalancerMove> made;

  // --- 1. snapshot the load signals -----------------------------------------
  const auto shard_loads = vm_.shard_loads();
  const auto placements = vm_.placements();
  const std::size_t shards = shard_loads.size();
  if (shards < 2) {
    cycles_.fetch_add(1, std::memory_order_relaxed);
    m_cycles_->add(metric_slot_);
    return made;
  }

  // Per-volume rate since the previous cycle (first sighting counts the
  // whole counter: a fresh balancer sees recent history, which is what it
  // should react to).
  struct Candidate {
    std::string tenant;
    std::size_t shard;
    double contribution;
  };
  std::vector<Candidate> cands;
  cands.reserve(placements.size());
  std::map<std::string, std::uint64_t> next_prev;
  std::vector<double> rate(shards, 0);
  for (const auto& p : placements) {
    const auto it = prev_ops_.find(p.tenant);
    const std::uint64_t delta =
        it == prev_ops_.end() ? p.dispatched_ops
                              : p.dispatched_ops - std::min(it->second,
                                                            p.dispatched_ops);
    next_prev[p.tenant] = p.dispatched_ops;
    rate[p.shard] += static_cast<double>(delta);
    cands.push_back({p.tenant, p.shard, static_cast<double>(delta)});
  }
  prev_ops_ = std::move(next_prev);

  // --- 2. score the shards ---------------------------------------------------
  std::vector<double> load(shards, 0);
  double total = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    load[s] = rate[s] + static_cast<double>(shard_loads[s].queue_depth);
    if (policy_.latency_weighted) {
      load[s] *= static_cast<double>(
          std::max<std::uint64_t>(1, shard_loads[s].latency_ewma_micros));
    }
    total += load[s];
  }
  for (auto& c : cands) {
    if (policy_.latency_weighted) {
      c.contribution *= static_cast<double>(std::max<std::uint64_t>(
          1, shard_loads[c.shard].latency_ewma_micros));
    }
  }

  last_imbalance_.store(imbalance_of(load), std::memory_order_relaxed);
  g_imbalance_->set(imbalance_of(load));
  cycles_.fetch_add(1, std::memory_order_relaxed);
  m_cycles_->add(metric_slot_);
  if (total < policy_.min_load_to_act) return made;

  // --- 3. move volumes until the band is met or the budget is spent ---------
  while (made.size() < policy_.max_moves_per_cycle) {
    std::size_t hot = 0, cool = 0;
    for (std::size_t s = 1; s < shards; ++s) {
      if (load[s] > load[hot]) hot = s;
      if (load[s] < load[cool]) cool = s;
    }
    if (load[hot] <= 0) break;
    if (load[cool] > 0 && load[hot] <= policy_.hysteresis * load[cool]) break;
    const double gap = load[hot] - load[cool];

    // Best fit: the largest contributor on the hot shard that fits in half
    // the gap (moving it can't invert hot and cool), eligible (not cooling
    // down, actually contributing).
    Candidate* best = nullptr;
    for (auto& c : cands) {
      if (c.shard != hot || c.contribution <= 0) continue;
      if (c.contribution > gap / 2) continue;
      const auto lm = last_move_micros_.find(c.tenant);
      if (lm != last_move_micros_.end() &&
          now_micros - lm->second <
              static_cast<std::uint64_t>(policy_.cooldown.count()) * 1000) {
        continue;
      }
      if (best == nullptr || c.contribution > best->contribution) best = &c;
    }
    if (best == nullptr) break;

    const double before = imbalance_of(load);
    MigrationStats ms;
    try {
      ms = vm_.migrate_volume(best->tenant, cool, /*require_clean=*/true);
    } catch (const std::exception&) {
      // Volume closed, or a handoff (ours from a past cycle, or an explicit
      // caller's) is in flight — drop the candidate for this cycle.
      best->contribution = 0;
      continue;
    }
    if (!ms.moved) {
      // Dirty (mid-CP-window) — reconsider next cycle, try another volume.
      best->contribution = 0;
      continue;
    }
    load[hot] -= best->contribution;
    load[cool] += best->contribution;
    best->shard = cool;
    last_move_micros_[best->tenant] = now_micros;
    const double after = imbalance_of(load);
    made.push_back(
        {best->tenant, hot, cool, before, after, now_micros});
    moves_.fetch_add(1, std::memory_order_relaxed);
    m_moves_->add(metric_slot_);
    last_imbalance_.store(after, std::memory_order_relaxed);
    g_imbalance_->set(after);
  }

  history_.insert(history_.end(), made.begin(), made.end());
  // Bounded: a long-lived balancer must not grow (or copy) without limit.
  if (history_.size() > kMaxHistory) {
    history_.erase(history_.begin(),
                   history_.end() - static_cast<std::ptrdiff_t>(kMaxHistory));
  }
  return made;
}

std::vector<BalancerMove> Balancer::history() const {
  std::lock_guard lock(cycle_mu_);
  return history_;
}

}  // namespace backlog::service
