// Fixed worker pool: one thread per shard, each draining its own ShardQueue.
//
// Shard-per-thread (the ScyllaDB idiom): at any moment every hosted volume
// is owned by exactly one shard, all of its tasks execute on that shard's
// thread, and so the single-threaded BacklogDb needs no internal locking.
// The pool is sized once at service start; ownership of a volume can move
// between shards at runtime via VolumeManager::migrate_volume(), whose
// drain/replay handoff guarantees the old and new owner never touch the
// volume concurrently.
//
// Drain loop (the batching PR): the worker pops tasks in chunks of
// `dequeue_chunk` via ShardQueue::pop_many — one mutex/condvar round-trip
// per chunk instead of per task — and runs the chunk lock-free. The loop
// also owns the hot path's only clock reads: it timestamps once per task
// *boundary* (task i's end is task i+1's start), feeding both the per-shard
// execution-time EWMA and, through dispatch_time_micros(), the queue-wait
// histograms — the submit path no longer re-reads the clock at execution.
//
// With `pin_threads`, shard i is pinned via pthread_setaffinity_np to the
// i-th (mod count) CPU of the process's *allowed* set — enumerated from
// sched_getaffinity, so cpuset-restricted containers with non-contiguous
// masks pin correctly. A shard's working set (write stores, page cache
// shards, queue) then stays on one core's caches instead of bouncing
// wherever the scheduler wanders (first step of the ROADMAP's NUMA-aware
// placement; Linux-only, silently unpinned elsewhere).
//
// Each shard additionally maintains two cheap load signals for the
// Balancer: its queue depth (pending tasks) and an EWMA of task execution
// time, updated by the worker thread after every task (alpha = 1/8, relaxed
// atomics — the balancer only needs a trend, not a fence).
//
// Chaos hooks (the fleet_sim PR): kill_shard()/restart_shard() stop and
// re-spawn a single shard's worker thread while its queue stays open, so
// tasks submitted against a dead shard accumulate and execute — late — once
// the shard returns. That is exactly the failure mode an open-loop load
// generator needs to observe: a crashed worker shows up as queue-wait, not
// as lost operations. The destructor restarts any dead shard before closing
// queues, so a pool torn down mid-kill still drains every pending promise.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "service/shard_queue.hpp"

namespace backlog::service {

class WorkerPool {
 public:
  WorkerPool(std::size_t shards, std::size_t bg_starvation_limit,
             std::size_t dequeue_chunk = 16, bool pin_threads = false);
  /// Closes every queue, drains pending tasks, joins the threads.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }

  /// True when thread pinning was requested and applied to every shard.
  [[nodiscard]] bool pinned() const noexcept { return pinned_; }

  /// Sentinel returned by current_shard() off the pool's threads.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  /// Shard index of the calling worker thread (kNoShard for API threads).
  /// Lets a task detect that it was popped by a shard that no longer owns
  /// its volume — possible for background tasks, which can linger in the
  /// low-priority queue past a migration's foreground drain barrier.
  [[nodiscard]] static std::size_t current_shard() noexcept;

  /// Monotonic micros at which the currently executing task was handed to
  /// its task body (the worker's task-boundary timestamp). Only meaningful
  /// on a pool thread, from inside a task: bodies use it to compute queue
  /// wait without a second clock read. 0 off the pool's threads.
  [[nodiscard]] static std::uint64_t dispatch_time_micros() noexcept;

  /// `flow`/`weight`: the weighted-fair scheduling identity of the task
  /// (one flow per volume; see shard_queue.hpp).
  void submit(std::size_t shard, Task t, std::uint64_t flow = 0,
              std::uint32_t weight = 1) {
    shards_[shard]->queue.push(std::move(t), flow, weight);
  }
  void submit_background(std::size_t shard, Task t) {
    shards_[shard]->queue.push_background(std::move(t));
  }

  // --- chaos hooks (fault injection) -----------------------------------------

  /// Stops shard `shard`'s worker thread at its next chunk boundary and
  /// joins it. The queue stays open: submissions keep enqueueing and no
  /// pending task is dropped — they simply wait until restart_shard().
  /// Returns false if the shard is already dead. Must not be called from a
  /// pool thread (it joins the worker).
  bool kill_shard(std::size_t shard);

  /// Spawns a fresh worker thread on a dead shard's surviving queue (and
  /// re-pins it when pinning is on). Everything queued while the shard was
  /// dead now executes, with the accumulated wait visible to the queue-wait
  /// histograms. Returns false if the shard is already alive.
  bool restart_shard(std::size_t shard);

  /// True while the shard has a live worker thread.
  [[nodiscard]] bool shard_alive(std::size_t shard) const noexcept {
    return shards_[shard]->alive.load(std::memory_order_acquire);
  }

  // --- load signals (Balancer) -----------------------------------------------

  [[nodiscard]] std::size_t queue_depth(std::size_t shard) const {
    return shards_[shard]->queue.depth();
  }

  /// Lock-free busyness approximation — the submit path's "will this task
  /// actually wait?" heuristic. Counts queued tasks (ShardQueue::
  /// depth_approx) plus the worker's popped-but-not-finished chunk
  /// remainder: a task submitted while a chunk (or one long task) executes
  /// waits behind it even though the queue itself reads empty.
  [[nodiscard]] std::size_t queue_depth_approx(std::size_t shard) const {
    const Shard& s = *shards_[shard];
    return s.queue.depth_approx() +
           s.inflight.load(std::memory_order_relaxed);
  }

  /// EWMA of this shard's task execution time in microseconds (0 until the
  /// shard has run its first task).
  [[nodiscard]] std::uint64_t latency_ewma_micros(std::size_t shard) const {
    return shards_[shard]->ewma_micros.load(std::memory_order_relaxed);
  }

  /// Cumulative micros this shard's thread has spent *executing tasks* (the
  /// busy half of its busy/idle clock; blocking pops are idle). Updated from
  /// the task-boundary timestamps the drain loop already reads, so the
  /// signal is free on the hot path. MetricsPoller differences successive
  /// readings against wall time into a busy fraction.
  [[nodiscard]] std::uint64_t busy_micros(std::size_t shard) const {
    return shards_[shard]->busy_micros.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    ShardQueue queue;
    std::atomic<std::uint64_t> ewma_micros{0};
    std::atomic<std::uint64_t> busy_micros{0};
    /// Tasks of the current chunk popped from the queue but not yet
    /// finished (set by the worker after pop_many, decremented per task).
    std::atomic<std::size_t> inflight{0};
    /// kill_shard() raises this; the drain loop checks it at chunk
    /// boundaries (before pop_many, so a stopping worker never strands a
    /// popped-but-unrun task).
    std::atomic<bool> stop{false};
    std::atomic<bool> alive{false};
    std::thread thread;

    explicit Shard(std::size_t bg_starvation_limit)
        : queue(bg_starvation_limit) {}
  };

  /// Spawns (or re-spawns) shard i's worker on its existing queue and
  /// applies pinning. Caller holds lifecycle_mu_; the shard must have no
  /// live thread.
  void start_worker(std::size_t i);

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t chunk_ = 16;
  bool pin_requested_ = false;
  std::vector<int> pin_cpus_;  ///< allowed CPUs resolved at construction
  bool pinned_ = false;
  /// Serializes kill/restart/teardown; never taken on the hot path.
  mutable std::mutex lifecycle_mu_;
};

}  // namespace backlog::service
