// Fixed worker pool: one thread per shard, each draining its own ShardQueue.
//
// Shard-per-thread (the ScyllaDB idiom): at any moment every hosted volume
// is owned by exactly one shard, all of its tasks execute on that shard's
// thread, and so the single-threaded BacklogDb needs no internal locking.
// The pool is sized once at service start; ownership of a volume can move
// between shards at runtime via VolumeManager::migrate_volume(), whose
// drain/replay handoff guarantees the old and new owner never touch the
// volume concurrently.
//
// Each shard additionally maintains two cheap load signals for the
// Balancer: its queue depth (pending tasks) and an EWMA of task execution
// time, updated by the worker thread after every task (alpha = 1/8, relaxed
// atomics — the balancer only needs a trend, not a fence).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "service/shard_queue.hpp"

namespace backlog::service {

class WorkerPool {
 public:
  WorkerPool(std::size_t shards, std::size_t bg_starvation_limit);
  /// Closes every queue, drains pending tasks, joins the threads.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }

  /// Sentinel returned by current_shard() off the pool's threads.
  static constexpr std::size_t kNoShard = static_cast<std::size_t>(-1);

  /// Shard index of the calling worker thread (kNoShard for API threads).
  /// Lets a task detect that it was popped by a shard that no longer owns
  /// its volume — possible for background tasks, which can linger in the
  /// low-priority queue past a migration's foreground drain barrier.
  [[nodiscard]] static std::size_t current_shard() noexcept;

  /// `flow`/`weight`: the weighted-fair scheduling identity of the task
  /// (one flow per volume; see shard_queue.hpp).
  void submit(std::size_t shard, Task t, std::uint64_t flow = 0,
              std::uint32_t weight = 1) {
    shards_[shard]->queue.push(std::move(t), flow, weight);
  }
  void submit_background(std::size_t shard, Task t) {
    shards_[shard]->queue.push_background(std::move(t));
  }

  // --- load signals (Balancer) -----------------------------------------------

  [[nodiscard]] std::size_t queue_depth(std::size_t shard) const {
    return shards_[shard]->queue.depth();
  }

  /// EWMA of this shard's task execution time in microseconds (0 until the
  /// shard has run its first task).
  [[nodiscard]] std::uint64_t latency_ewma_micros(std::size_t shard) const {
    return shards_[shard]->ewma_micros.load(std::memory_order_relaxed);
  }

 private:
  struct Shard {
    ShardQueue queue;
    std::atomic<std::uint64_t> ewma_micros{0};
    std::thread thread;

    explicit Shard(std::size_t bg_starvation_limit)
        : queue(bg_starvation_limit) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace backlog::service
