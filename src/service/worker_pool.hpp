// Fixed worker pool: one thread per shard, each draining its own ShardQueue.
//
// Shard-per-thread (the ScyllaDB idiom): every hosted volume is pinned to
// exactly one shard, all of its tasks execute on that shard's thread, and so
// the single-threaded BacklogDb needs no internal locking. The pool is sized
// once at service start; tenants are routed onto it, never migrated.
#pragma once

#include <cstddef>
#include <memory>
#include <thread>
#include <vector>

#include "service/shard_queue.hpp"

namespace backlog::service {

class WorkerPool {
 public:
  WorkerPool(std::size_t shards, std::size_t bg_starvation_limit);
  /// Closes every queue, drains pending tasks, joins the threads.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return shards_.size(); }

  void submit(std::size_t shard, Task t) {
    shards_[shard]->queue.push(std::move(t));
  }
  void submit_background(std::size_t shard, Task t) {
    shards_[shard]->queue.push_background(std::move(t));
  }

 private:
  struct Shard {
    ShardQueue queue;
    std::thread thread;

    explicit Shard(std::size_t bg_starvation_limit)
        : queue(bg_starvation_limit) {}
  };

  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace backlog::service
