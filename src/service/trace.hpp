// Per-op tracing: sampled, allocation-free span records for every service
// verb, answering "why was this op slow?" after the fact.
//
// Life of a span: run_on() stamps a TraceCtx at submit time (one clock read)
// and carries it by value inside the op's InlineTask body — no allocation,
// no pointer chasing. When the body runs on its shard the stage boundaries
// fall out of clocks that are already being read (the worker's dispatch
// stamp, the Env's io_micros counter), so a traced op adds exactly one extra
// clock read (the end stamp) over an untraced one. The finished TraceSpan is
// pushed into the executing shard's TraceRing — single-writer, overwrite-
// oldest, never blocking the shard thread — and, when its end-to-end latency
// meets ServiceOptions::slow_op_micros, into the shard's slow-op log as
// well. Because the ctx rides inside the task, a span survives a migration
// park/replay intact: the stage breakdown of an op that crossed a live
// handoff shows the park window as queue wait and flags `migrated`.
//
// Stages (all microseconds, summing exactly to end-to-end):
//   gate_wait   submit -> QoS gate admit (0 when the op was not throttled)
//   queue_wait  admit -> shard thread picks the task up (park time included)
//   execute     on-shard run of the verb, split into:
//     io          wall time inside Env read/write/fsync syscalls
//     core        execute - io: apply/query/CP CPU work
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace backlog::service {

/// Which service verb a span measured.
enum class TraceVerb : std::uint8_t {
  kApply,
  kApplyBatch,
  kQuery,
  kQueryBatch,
  kCp,
  kSnapshot,
  kMaintenance,
  kControl,  ///< clone/destroy/scan and other control-plane verbs
};

[[nodiscard]] const char* to_string(TraceVerb v) noexcept;

/// Submit-side context carried by value inside the op's task body (~40
/// bytes). `active` ops are stage-stamped; of those, `sampled` ones land in
/// the trace ring while *every* active op is checked against the slow-op
/// threshold (forensics must not depend on sampling luck).
struct TraceCtx {
  std::uint64_t id = 0;        ///< service-unique span id
  std::uint64_t t_submit = 0;  ///< steady-clock µs at run_on entry
  std::uint64_t t_admit = 0;   ///< stamped by the QoS release thunk; 0 = ungated
  std::uint32_t ops = 1;       ///< logical ops in the verb (batch size)
  std::uint16_t submit_shard = 0;
  TraceVerb verb = TraceVerb::kControl;
  bool active = false;
  bool sampled = false;
};

/// A finished per-op span. Fixed-size and self-contained (tenant name is a
/// truncated char array) so ring writes never allocate.
struct TraceSpan {
  std::uint64_t id = 0;
  std::uint64_t t_submit = 0;         ///< steady-clock µs (same epoch as util::now_micros)
  std::uint64_t gate_wait_micros = 0;
  std::uint64_t queue_wait_micros = 0;
  std::uint64_t execute_micros = 0;   ///< on-shard run, IO included
  std::uint64_t io_micros = 0;        ///< Env syscall time within execute
  std::uint32_t ops = 1;
  std::uint16_t submit_shard = 0;
  std::uint16_t exec_shard = 0;
  TraceVerb verb = TraceVerb::kControl;
  bool migrated = false;              ///< replayed on a different shard (park/replay)
  bool slow = false;                  ///< met the slow-op threshold
  char tenant[24] = {};               ///< truncated, always NUL-terminated

  [[nodiscard]] std::uint64_t end_to_end_micros() const noexcept {
    return gate_wait_micros + queue_wait_micros + execute_micros;
  }
  [[nodiscard]] std::uint64_t core_micros() const noexcept {
    return execute_micros - io_micros;
  }

  void set_tenant(const std::string& name) noexcept;
};

/// One human-readable record per span — the slow-op log format (documented
/// in README "Observability"; ordinary sampled spans print "span" instead of
/// "slow-op"):
///   slow-op id=7 verb=query tenant=t0 ops=1 shard=0->1 migrated
///     gate=0us queue=5210us exec=130us (io=90us core=40us) e2e=5340us
[[nodiscard]] std::string format_span(const TraceSpan& s);

/// Fixed-capacity overwrite-oldest span ring. Written exclusively by the
/// owning shard's thread and read by tasks running *on* that thread
/// (VolumeManager::trace_spans() scrapes the same way stats() does), so no
/// synchronization exists and a push can never block the shard.
class TraceRing {
 public:
  explicit TraceRing(std::size_t capacity);

  /// Records `s`, overwriting the oldest span when full. Returns true when
  /// an unread span was evicted to make room.
  bool push(const TraceSpan& s) noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::uint64_t recorded() const noexcept { return recorded_; }
  [[nodiscard]] std::uint64_t evicted() const noexcept {
    return recorded_ > slots_.size() ? recorded_ - slots_.size() : 0;
  }

  /// Spans oldest -> newest.
  [[nodiscard]] std::vector<TraceSpan> snapshot() const;

 private:
  std::vector<TraceSpan> slots_;
  std::size_t next_ = 0;       ///< insertion cursor
  std::uint64_t recorded_ = 0; ///< lifetime pushes
};

/// Runtime tracing knobs, readable from any thread (relaxed atomics; the
/// hot path does two loads when enabled, one when disabled). Seeded from
/// ServiceOptions and adjustable live via VolumeManager::set_tracing().
struct TraceControl {
  std::atomic<std::uint32_t> sample_every{0};   ///< 0 = sampling off
  std::atomic<std::uint64_t> slow_op_micros{0}; ///< 0 = slow-op log off

  /// True when any foreground op should be stage-stamped.
  [[nodiscard]] bool enabled() const noexcept {
    return sample_every.load(std::memory_order_relaxed) != 0 ||
           slow_op_micros.load(std::memory_order_relaxed) != 0;
  }
};

}  // namespace backlog::service
