// Umbrella header for the multi-tenant volume service:
//
//   VolumeManager         — hosts N Backlog volumes on a sharded worker pool
//   MaintenanceScheduler  — tenant-fair background compaction
//   Balancer              — autonomous load-balancing placement
//   TenantQos / QosGate   — per-tenant admission control + fair scheduling
//   ServiceStats          — per-tenant latency histograms + I/O accounting
//   MetricsRegistry       — named counters/gauges/histograms + rate poller
//   TraceRing / TraceSpan — sampled per-op tracing and slow-op forensics
//
// See volume_manager.hpp for the threading model.
#pragma once

#include "service/balancer.hpp"
#include "service/maintenance_scheduler.hpp"
#include "service/metrics.hpp"
#include "service/qos.hpp"
#include "service/service_stats.hpp"
#include "service/shard_queue.hpp"
#include "service/trace.hpp"
#include "service/volume_manager.hpp"
#include "service/worker_pool.hpp"
