// The service hot path's task plumbing: a small-buffer-optimized task type
// and a reusable ring deque, shared by ShardQueue and WorkerPool.
//
// The original queue carried std::function<void()> per operation. That type
// erases through a 16-byte inline buffer, so every real task body — a verb
// lambda plus its promise and volume handle — heap-allocated at enqueue and
// freed at execute, twice per op once the dispatch wrapper nested a second
// std::function. InlineTask replaces it with a move-only callable whose
// inline buffer is sized for the service's dispatch wrapper (the chasing
// wrapper around a verb body: this + volume shared_ptr + body + flags), so
// the steady-state enqueue path performs no allocation at all; oversized
// callables (e.g. volume-open tasks capturing paths and options) fall back
// to the heap transparently. RingDeque replaces std::deque as the queue's
// storage: libstdc++'s deque allocates and frees a block every ~512 bytes
// of churn even at constant depth, while a ring reuses its slots forever
// and only reallocates when the peak depth grows.
//
// tests/test_service_batch.cpp pins both properties with a counting
// operator new: pushing and draining a warmed ShardQueue is allocation-free.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

namespace backlog::service {

/// Move-only type-erased `void()` callable with a large inline buffer.
class InlineTask {
 public:
  /// Sized for the dispatch wrapper of the widest common verb body (an
  /// apply_batch body: vector + promise + trace context + service pointer,
  /// wrapped with the volume handle); measured ~128 bytes since the trace
  /// ctx rides in the body, kept with headroom so small verb additions
  /// don't silently fall off the fast path.
  static constexpr std::size_t kInlineBytes = 192;

  InlineTask() noexcept = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InlineTask> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  InlineTask(F&& f) {  // NOLINT(google-explicit-constructor): callable wrapper
    using Fn = std::decay_t<F>;
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      ops_ = &kInlineOps<Fn>;
    } else {
      Fn* p = new Fn(std::forward<F>(f));
      std::memcpy(buf_, &p, sizeof p);
      ops_ = &kHeapOps<Fn>;
    }
  }

  InlineTask(InlineTask&& o) noexcept : ops_(o.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(o.buf_, buf_);
      o.ops_ = nullptr;
    }
  }

  InlineTask& operator=(InlineTask&& o) noexcept {
    if (this != &o) {
      reset();
      if (o.ops_ != nullptr) {
        ops_ = o.ops_;
        ops_->relocate(o.buf_, buf_);
        o.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineTask(const InlineTask&) = delete;
  InlineTask& operator=(const InlineTask&) = delete;

  ~InlineTask() { reset(); }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  /// True when the callable spilled to the heap (test/diagnostic hook: the
  /// hot path's wrappers must report false).
  [[nodiscard]] bool heap_allocated() const noexcept {
    return ops_ != nullptr && ops_->heap;
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void*) noexcept;
    bool heap;
  };

  template <typename Fn>
  struct InlineModel {
    static void invoke(void* p) { (*static_cast<Fn*>(p))(); }
    static void relocate(void* from, void* to) noexcept {
      ::new (to) Fn(std::move(*static_cast<Fn*>(from)));
      static_cast<Fn*>(from)->~Fn();
    }
    static void destroy(void* p) noexcept { static_cast<Fn*>(p)->~Fn(); }
  };

  template <typename Fn>
  struct HeapModel {
    static Fn* get(void* p) noexcept {
      Fn* f;
      std::memcpy(&f, p, sizeof f);
      return f;
    }
    static void invoke(void* p) { (*get(p))(); }
    static void relocate(void* from, void* to) noexcept {
      std::memcpy(to, from, sizeof(Fn*));
    }
    static void destroy(void* p) noexcept { delete get(p); }
  };

  template <typename Fn>
  static constexpr Ops kInlineOps{&InlineModel<Fn>::invoke,
                                  &InlineModel<Fn>::relocate,
                                  &InlineModel<Fn>::destroy, false};
  template <typename Fn>
  static constexpr Ops kHeapOps{&HeapModel<Fn>::invoke,
                                &HeapModel<Fn>::relocate,
                                &HeapModel<Fn>::destroy, true};

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

/// Power-of-two ring deque: push_back/pop_front with slot reuse. Capacity
/// only ever grows (to the peak depth), so a queue oscillating at constant
/// depth never touches the allocator — the property std::deque lacks.
/// Requires T to be default-constructible and to leave a moved-from value
/// empty/reusable (InlineTask does).
template <typename T>
class RingDeque {
 public:
  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push_back(T t) {
    if (size_ == slots_.size()) grow();
    slots_[(head_ + size_) & (slots_.size() - 1)] = std::move(t);
    ++size_;
  }

  T pop_front() {
    T out = std::move(slots_[head_]);
    head_ = (head_ + 1) & (slots_.size() - 1);
    --size_;
    return out;
  }

 private:
  void grow() {
    const std::size_t cap = slots_.empty() ? 8 : slots_.size() * 2;
    std::vector<T> next(cap);
    for (std::size_t i = 0; i < size_; ++i) {
      next[i] = std::move(slots_[(head_ + i) & (slots_.size() - 1)]);
    }
    slots_ = std::move(next);
    head_ = 0;
  }

  std::vector<T> slots_;
  std::size_t head_ = 0;
  std::size_t size_ = 0;
};

}  // namespace backlog::service
