#include "service/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

namespace backlog::service {

const char* to_string(TraceVerb v) noexcept {
  switch (v) {
    case TraceVerb::kApply: return "apply";
    case TraceVerb::kApplyBatch: return "apply_batch";
    case TraceVerb::kQuery: return "query";
    case TraceVerb::kQueryBatch: return "query_batch";
    case TraceVerb::kCp: return "cp";
    case TraceVerb::kSnapshot: return "snapshot";
    case TraceVerb::kMaintenance: return "maintenance";
    case TraceVerb::kControl: return "control";
  }
  return "unknown";
}

void TraceSpan::set_tenant(const std::string& name) noexcept {
  const std::size_t n = std::min(name.size(), sizeof(tenant) - 1);
  std::memcpy(tenant, name.data(), n);
  tenant[n] = '\0';
}

std::string format_span(const TraceSpan& s) {
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "%s id=%llu verb=%s tenant=%s ops=%u shard=%u->%u%s\n"
                "  gate=%lluus queue=%lluus exec=%lluus (io=%lluus "
                "core=%lluus) e2e=%lluus",
                s.slow ? "slow-op" : "span",
                static_cast<unsigned long long>(s.id), to_string(s.verb),
                s.tenant, s.ops, s.submit_shard, s.exec_shard,
                s.migrated ? " migrated" : "",
                static_cast<unsigned long long>(s.gate_wait_micros),
                static_cast<unsigned long long>(s.queue_wait_micros),
                static_cast<unsigned long long>(s.execute_micros),
                static_cast<unsigned long long>(s.io_micros),
                static_cast<unsigned long long>(s.core_micros()),
                static_cast<unsigned long long>(s.end_to_end_micros()));
  return buf;
}

TraceRing::TraceRing(std::size_t capacity)
    : slots_(capacity == 0 ? 1 : capacity) {}

bool TraceRing::push(const TraceSpan& s) noexcept {
  const bool evicting = recorded_ >= slots_.size();
  slots_[next_] = s;
  next_ = (next_ + 1) % slots_.size();
  ++recorded_;
  return evicting;
}

std::size_t TraceRing::size() const noexcept {
  return recorded_ < slots_.size() ? static_cast<std::size_t>(recorded_)
                                   : slots_.size();
}

std::vector<TraceSpan> TraceRing::snapshot() const {
  std::vector<TraceSpan> out;
  const std::size_t n = size();
  out.reserve(n);
  // Oldest span sits at the insertion cursor once the ring has wrapped.
  const std::size_t start = recorded_ < slots_.size() ? 0 : next_;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(slots_[(start + i) % slots_.size()]);
  }
  return out;
}

}  // namespace backlog::service
