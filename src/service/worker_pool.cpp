#include "service/worker_pool.hpp"

#include "util/clock.hpp"

namespace backlog::service {

namespace {
thread_local std::size_t tls_shard = WorkerPool::kNoShard;
}  // namespace

std::size_t WorkerPool::current_shard() noexcept { return tls_shard; }

WorkerPool::WorkerPool(std::size_t shards, std::size_t bg_starvation_limit) {
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bg_starvation_limit));
    Shard* s = shards_.back().get();
    // Tasks are exception-safe wrappers (they route failures into their
    // promise), so the drain loop itself never needs a try/catch.
    s->thread = std::thread([s, i] {
      tls_shard = i;
      while (Task t = s->queue.pop()) {
        const std::uint64_t t0 = util::now_micros();
        t();
        const std::uint64_t d = util::now_micros() - t0;
        const std::uint64_t old =
            s->ewma_micros.load(std::memory_order_relaxed);
        s->ewma_micros.store(old == 0 ? d : (7 * old + d) / 8,
                             std::memory_order_relaxed);
      }
    });
  }
}

WorkerPool::~WorkerPool() {
  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

}  // namespace backlog::service
