#include "service/worker_pool.hpp"

#include "util/clock.hpp"

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace backlog::service {

namespace {
thread_local std::size_t tls_shard = WorkerPool::kNoShard;
thread_local std::uint64_t tls_dispatch_micros = 0;

#if defined(__linux__)
/// CPUs the process may actually run on, in id order. Containers and
/// cpuset cgroups hand out non-contiguous masks (e.g. {0, 2}), so pinning
/// must enumerate the allowed set rather than assume ids 0..n-1.
std::vector<int> allowed_cpus() {
  std::vector<int> out;
  cpu_set_t set;
  CPU_ZERO(&set);
  if (sched_getaffinity(0, sizeof set, &set) != 0) return out;
  for (int cpu = 0; cpu < CPU_SETSIZE; ++cpu) {
    if (CPU_ISSET(cpu, &set)) out.push_back(cpu);
  }
  return out;
}

bool pin_to_cpu(std::thread& t, int cpu) {
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  return pthread_setaffinity_np(t.native_handle(), sizeof set, &set) == 0;
}
#endif
}  // namespace

std::size_t WorkerPool::current_shard() noexcept { return tls_shard; }

std::uint64_t WorkerPool::dispatch_time_micros() noexcept {
  return tls_dispatch_micros;
}

void WorkerPool::start_worker(std::size_t i) {
  Shard* s = shards_[i].get();
  s->stop.store(false, std::memory_order_relaxed);
  // Tasks are exception-safe wrappers (they route failures into their
  // promise), so the drain loop itself never needs a try/catch.
  s->thread = std::thread([s, i, chunk = chunk_] {
    tls_shard = i;
    std::vector<Task> tasks;
    tasks.reserve(chunk);
    for (;;) {
      // Chunk-boundary stop check, *before* pop_many: a stopping worker
      // must never pop tasks it won't run (they'd be dropped with broken
      // promises). kill_shard() pushes a no-op after raising the flag, so
      // a worker blocked inside pop_many wakes, runs the chunk, and exits
      // here on the next iteration.
      if (s->stop.load(std::memory_order_acquire)) break;
      tasks.clear();
      const std::size_t n = s->queue.pop_many(tasks, chunk);
      if (n == 0) break;  // closed + drained
      // The popped chunk no longer counts in the queue's depth, but a
      // submitter still waits behind it — keep it visible to the
      // queue_depth_approx busyness heuristic until each task finishes.
      s->inflight.store(n, std::memory_order_relaxed);
      // One clock read per task boundary: t_prev is both the start of the
      // next task (exported through dispatch_time_micros for queue-wait
      // accounting) and the end of the previous one (EWMA input). The
      // refresh after the blocking pop keeps idle wait out of the first
      // task's measurement.
      std::uint64_t t_prev = util::now_micros();
      for (Task& t : tasks) {
        tls_dispatch_micros = t_prev;
        t();
        t = Task{};  // release captures now, not at the next blocking pop
        s->inflight.fetch_sub(1, std::memory_order_relaxed);
        const std::uint64_t t_end = util::now_micros();
        const std::uint64_t d = t_end - t_prev;
        t_prev = t_end;
        const std::uint64_t old =
            s->ewma_micros.load(std::memory_order_relaxed);
        s->ewma_micros.store(old == 0 ? d : (7 * old + d) / 8,
                             std::memory_order_relaxed);
        // Busy clock: same `d`, plain relaxed load+store (single writer).
        s->busy_micros.store(
            s->busy_micros.load(std::memory_order_relaxed) + d,
            std::memory_order_relaxed);
      }
    }
  });
#if defined(__linux__)
  if (pin_requested_ && !pin_cpus_.empty()) {
    pinned_ = pin_to_cpu(s->thread, pin_cpus_[i % pin_cpus_.size()]) && pinned_;
  }
#endif
  s->alive.store(true, std::memory_order_release);
}

WorkerPool::WorkerPool(std::size_t shards, std::size_t bg_starvation_limit,
                       std::size_t dequeue_chunk, bool pin_threads) {
  chunk_ = dequeue_chunk == 0 ? 1 : dequeue_chunk;
  pin_requested_ = pin_threads;
  if (pin_threads) {
#if defined(__linux__)
    pin_cpus_ = allowed_cpus();
    pinned_ = !pin_cpus_.empty();
#endif
  }
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>(bg_starvation_limit));
  }
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  for (std::size_t i = 0; i < shards; ++i) start_worker(i);
}

bool WorkerPool::kill_shard(std::size_t shard) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  Shard& s = *shards_[shard];
  if (!s.alive.load(std::memory_order_relaxed)) return false;
  // Flag first, wake second: the no-op guarantees a worker blocked in
  // pop_many observes the flag promptly. If the no-op lands behind real
  // work it simply executes as a (harmless) task, possibly only after
  // restart.
  s.stop.store(true, std::memory_order_release);
  s.queue.push(Task([] {}));
  s.thread.join();
  s.alive.store(false, std::memory_order_release);
  return true;
}

bool WorkerPool::restart_shard(std::size_t shard) {
  std::lock_guard<std::mutex> lk(lifecycle_mu_);
  Shard& s = *shards_[shard];
  if (s.alive.load(std::memory_order_relaxed)) return false;
  start_worker(shard);
  return true;
}

WorkerPool::~WorkerPool() {
  {
    // A pool torn down while a shard is dead must still drain that shard's
    // queue (pending tasks hold promises): bring every worker back before
    // the close/join handshake.
    std::lock_guard<std::mutex> lk(lifecycle_mu_);
    for (std::size_t i = 0; i < shards_.size(); ++i) {
      if (!shards_[i]->alive.load(std::memory_order_relaxed)) start_worker(i);
    }
  }
  for (auto& s : shards_) s->queue.close();
  for (auto& s : shards_) {
    if (s->thread.joinable()) s->thread.join();
  }
}

}  // namespace backlog::service
