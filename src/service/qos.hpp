// Per-tenant quality of service for the volume service.
//
// Two cooperating mechanisms, both configured through one TenantQos struct:
//
//  * admission control — a pair of token buckets (operations/s and bytes/s)
//    consulted at enqueue time, on the API thread, before a foreground task
//    reaches its shard. An op that doesn't fit waits in a bounded per-volume
//    FIFO; a dedicated pacer thread releases waiters as tokens refill. When
//    the wait queue is full the op is rejected immediately with
//    ErrorCode::kThrottled (surfaced through the returned future) — the
//    backpressure signal a client of the service is expected to handle.
//    Batched verbs (apply_batch / query_batch) are one admission unit:
//    the gate is consulted once with the batch's total cost, the batch
//    occupies one wait-queue slot, and a rejection fails the whole batch
//    with a single kThrottled — never a partial admit (oversized batches
//    ride the TokenBucket debt rule below, so a batch larger than the
//    burst cannot wedge the queue);
//  * weighted-fair dequeue — every volume is its own flow in its shard's
//    queue (see shard_queue.hpp), scheduled by stride over TenantQos::weight,
//    so even an *unthrottled* tenant cannot monopolize a shard with sheer
//    task count. A saturating tenant's backlog waits in its own flow while
//    its neighbours' tasks keep dequeuing at their fair share.
//
// Ordering: the gate preserves per-tenant submission order. Once any op of a
// tenant is waiting, every later foreground op of that tenant queues behind
// it (unmetered verbs ride through with zero cost), so the service's
// per-tenant FIFO guarantee survives throttling. Clearing the QoS (or
// closing the volume) releases the whole wait queue in order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <mutex>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace backlog::service {

/// Service-level error codes — also the wire protocol's status space: a
/// response frame carries exactly one of these, so remote clients see the
/// same backpressure signals (kThrottled in particular) as in-process
/// callers. Append only; the values are on the wire.
enum class ErrorCode : std::uint8_t {
  kOk = 0,
  kThrottled = 1,     ///< QoS wait queue full — retry with backoff
  kBadRequest = 2,    ///< malformed or out-of-range request payload
  kNoSuchTenant = 3,  ///< the named volume is not hosted here
  kNoSuchVerb = 4,    ///< verb id not registered on this server
  kTooLarge = 5,      ///< payload length over the verb's cap
  kInternal = 6,      ///< handler threw an unexpected exception
  kWounded = 7,       ///< volume is read-only after persistent write errors
};

/// Stable wire-facing name of an error code ("ok", "throttled", ...).
const char* to_string(ErrorCode code) noexcept;

/// Exception carried by a future whose op the service refused; code() lets
/// callers branch without string matching.
class ServiceError : public std::runtime_error {
 public:
  ServiceError(ErrorCode code, const std::string& what)
      : std::runtime_error(what), code_(code) {}
  [[nodiscard]] ErrorCode code() const noexcept { return code_; }

 private:
  ErrorCode code_;
};

/// Rate of a bucket that never throttles.
inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

/// Per-tenant QoS configuration (VolumeManager::set_qos). Rates of
/// kUnlimitedRate disable that bucket; a rate of 0 admits at most the burst
/// and then throttles forever (the "fully throttled tenant").
struct TenantQos {
  double ops_per_sec = kUnlimitedRate;
  double bytes_per_sec = kUnlimitedRate;
  /// Bucket capacities: how much a tenant may spend at once after idling.
  double burst_ops = 64;
  double burst_bytes = 1 << 20;
  /// Weighted-fair share of the shard's dequeue (stride scheduling); a
  /// weight-2 tenant dequeues twice as often as a weight-1 neighbour when
  /// both have work queued.
  std::uint32_t weight = 1;
  /// Throttled ops waiting for tokens beyond this bound are rejected with
  /// ErrorCode::kThrottled instead of queued.
  std::size_t max_wait_queue = 256;
};

/// Classic token bucket with explicit time (micros) so tests drive it
/// deterministically. Oversized requests (cost > burst) are admitted on a
/// full bucket and paid off as debt, so a single large batch can't wedge the
/// head of a wait queue forever — unless the rate is 0, where nothing beyond
/// the initial burst is ever admitted.
class TokenBucket {
 public:
  TokenBucket() = default;
  TokenBucket(double rate_per_sec, double burst, std::uint64_t now_micros) {
    reset(rate_per_sec, burst, now_micros);
  }

  void reset(double rate_per_sec, double burst, std::uint64_t now_micros) {
    rate_ = rate_per_sec;
    burst_ = burst;
    tokens_ = burst;
    last_micros_ = now_micros;
  }

  [[nodiscard]] bool unlimited() const noexcept {
    return rate_ == kUnlimitedRate;
  }

  /// Refill to `now`, then consume `cost` if admissible.
  bool try_consume(double cost, std::uint64_t now_micros) {
    if (unlimited() || cost <= 0) return true;
    refill(now_micros);
    const bool oversized_ok = rate_ > 0 && cost > burst_ && tokens_ >= burst_;
    if (tokens_ >= cost || oversized_ok) {
      tokens_ -= cost;  // may go negative: debt repaid by future refills
      return true;
    }
    return false;
  }

  /// Micros until try_consume(cost) could succeed (0 = now; UINT64_MAX =
  /// never, i.e. a zero-rate bucket that can't cover the cost).
  [[nodiscard]] std::uint64_t micros_until(double cost,
                                           std::uint64_t now_micros) {
    if (unlimited() || cost <= 0) return 0;
    refill(now_micros);
    // Oversized costs wait for a *full* bucket (see try_consume) — and only
    // refills can fill one, so a zero-rate bucket never admits them.
    if (cost > burst_ && rate_ <= 0)
      return std::numeric_limits<std::uint64_t>::max();
    const double need = (cost > burst_ ? burst_ : cost) - tokens_;
    if (need <= 0) return 0;
    if (rate_ <= 0) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(need / rate_ * 1e6) + 1;
  }

  /// Return tokens to the bucket (capped at burst) — undoes a consume when
  /// a sibling bucket refused its half of the cost.
  void refund(double cost) noexcept {
    if (unlimited() || cost <= 0) return;
    tokens_ = std::min(burst_, tokens_ + cost);
  }

  [[nodiscard]] double tokens() const noexcept { return tokens_; }

 private:
  void refill(std::uint64_t now_micros) {
    if (now_micros <= last_micros_) return;
    const double dt = static_cast<double>(now_micros - last_micros_);
    last_micros_ = now_micros;
    if (rate_ <= 0) return;
    tokens_ = std::min(burst_, tokens_ + rate_ * dt / 1e6);
  }

  double rate_ = kUnlimitedRate;
  double burst_ = 0;
  double tokens_ = 0;
  std::uint64_t last_micros_ = 0;
};

/// Admission verdict for one foreground op.
enum class Admission : std::uint8_t {
  kAdmitted,  ///< dispatch now
  kQueued,    ///< the gate kept the release thunk; the pacer will dispatch it
  kRejected,  ///< wait queue full — fail the op with ErrorCode::kThrottled
};

/// Monitoring snapshot of one volume's gate.
struct QosSnapshot {
  bool enabled = false;
  TenantQos qos{};
  std::uint64_t admitted = 0;  ///< ops that passed the buckets directly
  std::uint64_t queued = 0;    ///< ops that waited for tokens
  std::uint64_t released = 0;  ///< queued ops since dispatched
  std::uint64_t rejected = 0;  ///< ops refused with kThrottled
  std::size_t wait_depth = 0;  ///< ops currently waiting
};

/// The per-volume QoS gate: buckets + bounded wait queue. Admission runs on
/// API threads; drain() runs on the service's pacer thread; close() runs on
/// the volume-lifecycle paths. All three serialize on one small mutex; the
/// no-QoS fast path is a single relaxed atomic load.
class QosGate {
 public:
  /// Install (or replace) the tenant's QoS. Buckets reset to the new burst;
  /// ops already waiting stay queued and drain under the new rates.
  void configure(const TenantQos& qos, std::uint64_t now_micros);

  /// Gate one op. kAdmitted: `release` (which enqueues the op on its
  /// shard) was invoked inline, under the gate mutex — admission and
  /// dispatch are atomic, so a queued neighbour can never be overtaken.
  /// kQueued: the gate kept the thunk for the pacer. kRejected: the thunk
  /// was dropped; fail the op with ErrorCode::kThrottled.
  Admission admit(double ops_cost, double bytes_cost, std::uint64_t now_micros,
                  std::function<void()>&& release);

  /// Dispatch every waiting op whose cost now fits, in FIFO order. Called
  /// periodically by the pacer.
  void drain(std::uint64_t now_micros);

  /// Disable QoS. `flush` dispatches the remaining waiters in order (the
  /// throttle→unthrottle transition and volume close/teardown both must not
  /// strand promises); the released ops do not consume tokens.
  void clear(bool flush = true);

  [[nodiscard]] QosSnapshot snapshot() const;

  /// True when admit() must be consulted (QoS enabled, or leftover waiters
  /// still draining). Relaxed: a racing configure() is visible to the next
  /// op, exactly like any op/configure race.
  [[nodiscard]] bool gated() const noexcept {
    return gated_.load(std::memory_order_acquire);
  }

  [[nodiscard]] std::uint64_t rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t throttled() const noexcept {
    return queued_.load(std::memory_order_relaxed);
  }

 private:
  struct Waiter {
    double ops_cost = 0;
    double bytes_cost = 0;
    std::function<void()> release;
  };

  void update_gated() {
    gated_.store(enabled_ || !waiters_.empty(), std::memory_order_release);
  }

  mutable std::mutex mu_;
  bool enabled_ = false;
  TenantQos qos_{};
  TokenBucket ops_bucket_;
  TokenBucket bytes_bucket_;
  std::deque<Waiter> waiters_;
  std::atomic<bool> gated_{false};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> queued_{0};
  std::atomic<std::uint64_t> released_{0};
  std::atomic<std::uint64_t> rejected_{0};
};

/// Throws std::invalid_argument on nonsensical settings (negative or NaN
/// rates/bursts, zero weight, zero wait queue).
void validate_qos(const TenantQos& qos);

}  // namespace backlog::service
