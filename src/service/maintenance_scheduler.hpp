// MaintenanceScheduler — background compaction steering for the service.
//
// A single control thread periodically sweeps the hosted volumes and hands
// out background maintenance probes through
// VolumeManager::schedule_maintenance(). Fairness comes from two mechanisms:
//
//  * a per-sweep budget (MaintenancePolicy::budget_per_sweep) bounds how many
//    probes enter the shard queues at once, so compaction — which can take
//    orders of magnitude longer than a query — never floods a shard;
//  * sweeps start from a rotating round-robin cursor, so under sustained
//    pressure every tenant gets its turn regardless of name order or how
//    loud its neighbours are.
//
// The probes themselves re-check the volume's QuickStats on the shard and
// no-op below threshold, so an over-eager sweep costs one queue hop, not a
// compaction.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <thread>

#include "service/volume_manager.hpp"

namespace backlog::service {

class MaintenanceScheduler {
 public:
  /// Starts the sweep thread immediately. `vm` must outlive this object.
  explicit MaintenanceScheduler(VolumeManager& vm, MaintenancePolicy policy = {});
  ~MaintenanceScheduler();

  MaintenanceScheduler(const MaintenanceScheduler&) = delete;
  MaintenanceScheduler& operator=(const MaintenanceScheduler&) = delete;

  /// Stop sweeping (idempotent; also called by the destructor). Probes
  /// already queued still run on their shards.
  void stop();

  [[nodiscard]] std::uint64_t sweeps() const noexcept {
    return sweeps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t probes_scheduled() const noexcept {
    return scheduled_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  VolumeManager& vm_;
  MaintenancePolicy policy_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::size_t cursor_ = 0;  // round-robin start index into the tenant list
  std::atomic<std::uint64_t> sweeps_{0};
  std::atomic<std::uint64_t> scheduled_{0};
  // Registry mirrors, bumped only from the (single) sweep thread via the
  // control slot.
  std::size_t metric_slot_;
  MetricsRegistry::Counter* m_sweeps_;
  MetricsRegistry::Counter* m_probes_;
  std::thread thread_;  // declared last: starts after all state is ready
};

}  // namespace backlog::service
