// VolumeManager — the multi-tenant volume service ("backlogd" core).
//
// Hosts N independent Backlog volumes, one directory per tenant under a
// common root, and routes every tenant deterministically onto one shard of a
// fixed worker pool (shard-per-thread). All access to a volume's Env and
// BacklogDb happens on its shard's thread, serialized through the shard's
// task queue, so the paper's single-threaded update path is preserved
// unchanged — scaling comes from sharding tenants, not from locking the hot
// path. The API is asynchronous: update batches, consistency points,
// queries, relocation and maintenance all return futures.
//
// Ordering guarantee: foreground operations for one tenant execute in
// submission order (per-shard FIFO). Background maintenance runs at lower
// priority and only between foreground tasks (see shard_queue.hpp), and it
// skips the volume whenever the write store is non-empty — maintenance never
// interposes inside a tenant's CP window.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/backlog_db.hpp"
#include "service/service_stats.hpp"
#include "service/worker_pool.hpp"
#include "storage/env.hpp"
#include "util/hash.hpp"

namespace backlog::service {

struct ServiceOptions {
  /// Worker shards; each hosts a disjoint subset of the volumes.
  std::size_t shards = 4;

  /// Volumes live at root/<tenant>.
  std::filesystem::path root;

  /// Options applied to every hosted BacklogDb. The service additionally
  /// requires cache_pages > 0: a hosted volume always serves queries, so the
  /// cold-cache experimental setting would be a misconfiguration here.
  core::BacklogOptions db_options{};

  /// Env fsync behaviour for hosted volumes (benches disable it).
  bool sync_writes = false;

  /// Anti-starvation ratio of the per-shard queues: one background task may
  /// run after this many consecutive foreground tasks.
  std::size_t bg_starvation_limit = 8;
};

/// Thresholds steering background maintenance (see MaintenanceScheduler).
struct MaintenancePolicy {
  /// Schedule maintenance once a volume holds at least this many Level-0
  /// (From + To) runs.
  std::uint64_t l0_run_threshold = 48;
  /// Additionally schedule once the volume's run files exceed this many
  /// bytes (0 = disabled).
  std::uint64_t db_bytes_threshold = 0;
  /// Max background jobs enqueued per scheduler sweep, handed out
  /// round-robin over tenants — the tenant-fair budget that keeps compaction
  /// from monopolizing shards.
  std::size_t budget_per_sweep = 1;
  std::chrono::milliseconds poll_interval{20};
};

/// One batched update-path operation (§5 callbacks, service form).
struct UpdateOp {
  enum class Kind : std::uint8_t { kAdd, kRemove };
  Kind kind = Kind::kAdd;
  core::BackrefKey key;
};

class VolumeManager {
 public:
  explicit VolumeManager(ServiceOptions options);
  /// Joins the worker pool (pending tasks drain first) and closes every
  /// still-open volume. Buffered write-store entries that were never
  /// committed by a consistency point are discarded, exactly as on process
  /// exit — the file system's journal replay covers them.
  ~VolumeManager();

  VolumeManager(const VolumeManager&) = delete;
  VolumeManager& operator=(const VolumeManager&) = delete;

  // --- routing ---------------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept { return pool_.size(); }

  /// Deterministic tenant -> shard route: a platform-stable hash of the
  /// tenant name, so the same tenant lands on the same shard across
  /// restarts and across processes (given the same shard count).
  [[nodiscard]] std::size_t shard_of(std::string_view tenant) const noexcept {
    return util::hash_bytes(tenant.data(), tenant.size(), /*seed=*/0x7e9a97) %
           pool_.size();
  }

  // --- volume lifecycle ------------------------------------------------------

  /// Open (or create) the volume for `tenant`; blocks until recovery is
  /// complete. Throws std::invalid_argument for bad names or duplicates.
  void open_volume(const std::string& tenant);

  /// Flush (consistency point, if anything is buffered) and close. Blocks.
  void close_volume(const std::string& tenant);

  [[nodiscard]] bool has_volume(const std::string& tenant) const;
  [[nodiscard]] std::vector<std::string> tenants() const;

  // --- update path -----------------------------------------------------------

  /// Apply a batch of add/remove callbacks in order on the tenant's shard.
  /// On a per-op validation failure the future carries the exception and the
  /// batch is applied only up to the failing op (same contract as issuing
  /// the calls directly).
  std::future<void> apply(const std::string& tenant,
                          std::vector<UpdateOp> batch);

  std::future<core::CpFlushStats> consistency_point(const std::string& tenant);

  std::future<std::uint64_t> relocate(const std::string& tenant,
                                      core::BlockNo old_block,
                                      std::uint64_t length,
                                      core::BlockNo new_block);

  // --- queries ---------------------------------------------------------------

  std::future<std::vector<core::BackrefEntry>> query(
      const std::string& tenant, core::BlockNo first, std::uint64_t count = 1,
      core::QueryOptions opts = {});

  std::future<std::vector<core::CombinedRecord>> scan_all(
      const std::string& tenant);

  // --- maintenance -----------------------------------------------------------

  /// Explicit foreground maintenance (e.g. backlogctl): runs at normal
  /// priority, fails if the write store is non-empty (core contract).
  std::future<core::MaintenanceStats> maintain(const std::string& tenant);

  /// Background maintenance probe (MaintenanceScheduler entry point): at
  /// most one in flight per volume; the probe re-checks the thresholds on
  /// the shard against a QuickStats snapshot and silently skips when the
  /// volume is below them or mid-CP-window. Returns false if the tenant is
  /// unknown or a probe is already pending.
  bool schedule_maintenance(const std::string& tenant,
                            const MaintenancePolicy& policy);

  // --- stats -----------------------------------------------------------------

  std::future<core::DbStats> db_stats(const std::string& tenant);
  std::future<core::QuickStats> quick_stats(const std::string& tenant);
  /// The tenant's private Env counters — volumes never share an Env, so
  /// these isolate one tenant's I/O from every other's.
  std::future<storage::IoStats> io_stats(const std::string& tenant);

  /// Aggregated snapshot across all shards and tenants (blocks briefly: one
  /// foreground task per shard).
  ServiceStats stats();

  /// Test/tooling hook: run `fn` with exclusive access to the tenant's db on
  /// its shard.
  std::future<void> with_db(const std::string& tenant,
                            std::function<void(core::BacklogDb&)> fn);

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  struct Volume {
    std::string tenant;
    std::size_t shard = 0;
    // Created, used and destroyed only on the shard thread.
    std::unique_ptr<storage::Env> env;
    std::unique_ptr<core::BacklogDb> db;
    TenantStats stats;  // shard-thread-only
    std::atomic<bool> maintenance_pending{false};
  };

  [[nodiscard]] std::shared_ptr<Volume> find(const std::string& tenant) const;

  /// Run `fn(Volume&)` on the volume's shard; the future carries the result
  /// or the exception. Tasks capture the Volume by shared_ptr, so a volume
  /// outlives any task still referencing it even after close_volume().
  template <typename Fn>
  auto run_on(std::shared_ptr<Volume> vol, Fn fn, bool background = false)
      -> std::future<std::invoke_result_t<Fn&, Volume&>> {
    using R = std::invoke_result_t<Fn&, Volume&>;
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    const std::size_t shard = vol->shard;
    Task task = [vol = std::move(vol), fn = std::move(fn), prom]() mutable {
      try {
        if (vol->db == nullptr)
          throw std::logic_error("volume is closed: " + vol->tenant);
        if constexpr (std::is_void_v<R>) {
          fn(*vol);
          prom->set_value();
        } else {
          prom->set_value(fn(*vol));
        }
      } catch (...) {
        prom->set_exception(std::current_exception());
      }
    };
    if (background) {
      pool_.submit_background(shard, std::move(task));
    } else {
      pool_.submit(shard, std::move(task));
    }
    return fut;
  }

  ServiceOptions options_;
  mutable std::mutex mu_;  // guards volumes_ (routing metadata only)
  std::map<std::string, std::shared_ptr<Volume>> volumes_;
  // Declared last: ~WorkerPool drains and joins before volumes_ goes away.
  WorkerPool pool_;
};

}  // namespace backlog::service
