// VolumeManager — the multi-tenant volume service ("backlogd" core).
//
// Hosts N independent Backlog volumes, one directory per tenant under a
// common root, and routes every tenant onto one shard of a fixed worker
// pool (shard-per-thread). All access to a volume's Env and BacklogDb
// happens on its shard's thread, serialized through the shard's task queue,
// so the paper's single-threaded update path is preserved unchanged —
// scaling comes from sharding tenants, not from locking the hot path. The
// API is asynchronous: update batches, consistency points, queries,
// snapshot lifecycle verbs, relocation and maintenance all return futures.
//
// Placement is *dynamic*: a tenant initially lands on the shard its name
// hashes to, but migrate_volume() can move a live volume to any other shard
// without stopping its traffic (see the migration protocol below), and
// clone_volume() materializes a writable clone of one tenant's snapshot as
// a brand-new, independently addressable tenant.
//
// Ordering guarantee: foreground operations for one tenant execute in
// submission order — per-flow FIFO while the tenant is settled (each volume
// is its own weighted-fair flow in its shard's queue), and the park/replay
// handoff of a migration preserves that order end to end. Per-tenant QoS
// (set_qos) inserts a token-bucket gate *before* the queue: throttled ops
// wait in a bounded per-volume FIFO drained by a pacer thread, and every
// later op of that tenant — metered or not — queues behind them, so the
// ordering guarantee survives throttling. Background maintenance runs at
// lower priority and only between foreground tasks (see shard_queue.hpp),
// and it skips the volume whenever the write store is non-empty —
// maintenance never interposes inside a tenant's CP window.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <filesystem>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/backlog_db.hpp"
#include "core/file_manifest.hpp"
#include "core/result_cache.hpp"
#include "core/wal.hpp"
#include "service/metrics.hpp"
#include "service/qos.hpp"
#include "service/service_stats.hpp"
#include "service/trace.hpp"
#include "service/worker_pool.hpp"
#include "storage/block_cache.hpp"
#include "storage/env.hpp"
#include "util/clock.hpp"
#include "util/hash.hpp"

namespace backlog::service {

/// Service-wide cache configuration. This replaces per-volume
/// BacklogOptions::cache_pages for hosted volumes: one block cache, sized
/// once, serves every tenant — CoW-cloned volumes share cached pages of
/// their hard-linked runs by construction (the cache keys on file identity,
/// not on the owning volume).
struct CacheOptions {
  /// Total byte budget of the shared block cache, across all tenants
  /// (paper: 32 MB, §6.1). 0 disables page caching entirely (cold-cache
  /// experiments): every read goes to storage.
  std::uint64_t capacity_bytes = 32ull << 20;

  /// Mutex stripes of the block cache (clamped to >= 1). More stripes =
  /// less lock contention across shard threads; each stripe LRUs its own
  /// slice of the budget.
  std::size_t block_cache_shards = 16;

  /// Per-volume query result cache capacity, in entries (0 disables).
  /// Entries are invalidated by mutation-epoch tag comparison — see
  /// core/result_cache.hpp.
  std::size_t result_cache_entries = 256;

  /// Escape hatch back to the legacy per-volume caches: when false, no
  /// shared cache is injected and every hosted BacklogDb builds a private
  /// cache of db_options.cache_pages (which must then be > 0). Exists for
  /// A/B benching (bench/cache_hit) — production wants the shared cache.
  bool enable_block_cache = true;

  /// When false, hosted volumes get no result cache regardless of
  /// result_cache_entries.
  bool enable_result_cache = true;
};

struct ServiceOptions {
  /// Worker shards; each hosts a disjoint subset of the volumes.
  std::size_t shards = 4;

  /// Volumes live at root/<tenant>.
  std::filesystem::path root;

  /// Options applied to every hosted BacklogDb. Caching fields are
  /// overridden by `cache` below: hosted volumes read through the shared
  /// service cache, so db_options.cache_pages is ignored unless
  /// cache.enable_block_cache is false (the legacy per-volume mode, which
  /// requires cache_pages > 0).
  core::BacklogOptions db_options{};

  /// The service-wide cache configuration (block cache + per-volume result
  /// caches). See CacheOptions.
  CacheOptions cache{};

  /// Env fsync behaviour for hosted volumes (benches disable it).
  bool sync_writes = false;

  /// Anti-starvation ratio of the per-shard queues: one background task may
  /// run after this many consecutive foreground tasks.
  std::size_t bg_starvation_limit = 8;

  /// Chunked dequeue: a worker drains up to this many tasks from its queue
  /// per lock acquisition and runs them without re-locking (1 restores the
  /// one-pop-per-task behaviour). See shard_queue.hpp.
  std::size_t dequeue_chunk = 16;

  /// Pin each shard's worker thread to CPU (shard mod hardware cores) via
  /// pthread_setaffinity_np, keeping a shard's working set on one core's
  /// caches. Linux-only; silently unpinned elsewhere (see shards_pinned()).
  bool pin_shards = false;

  /// How often the QoS pacer re-checks throttled volumes' wait queues. The
  /// pacer thread only exists once some volume has a QoS configured.
  std::chrono::milliseconds qos_pacer_interval{1};

  /// Copy-on-write clone_volume: share the source's immutable run files
  /// with the clone via hard links + the service's reference-counted
  /// FileManifest, so clone cost is O(metadata) instead of O(volume size).
  /// false restores the full byte copy of every live file (the pre-CoW
  /// behaviour; also the fallback for filesystems without hard links).
  bool cow_clone = true;

  /// Test hook: invoked at the named durability points of clone_volume's
  /// commit sequence ("files_staged", "refs_persisted",
  /// "registry_persisted"). Crash harnesses _exit() inside it to kill the
  /// process between the refcount persist and the clone-directory commit.
  std::function<void(std::string_view)> clone_checkpoint;

  /// Test hook: persist the shared-file refcounts *after* the clone
  /// directory commit instead of before, flipping the order of the two
  /// durability points so crash recovery is exercised from both sides.
  bool clone_persist_refs_last = false;

  /// Fault-injection hook installed on every hosted volume's Env (see
  /// Env::set_fault_hook): lets tests fail a link/copy mid-clone or inject
  /// IO latency (slow-op forensics tests sleep in it).
  storage::Env::FaultHook env_fault_hook;

  /// Test hook: invoked with each hosted volume's Env right after
  /// construction, before recovery runs — the place to arm
  /// Env::set_write_fault plans per tenant (wounded-volume tests, the
  /// fleet_sim chaos round).
  std::function<void(const std::string& tenant, storage::Env&)> env_prepare;

  // --- durability (group-commit WAL; see README "Durability") --------------

  /// Write-ahead logging for the update verbs: every applied batch is
  /// appended to the volume's WAL (core/wal.hpp) and the returned future
  /// resolves only after the record is covered by an fsync, so a resolved
  /// apply survives a crash — recovery replays the WAL tail through
  /// apply_many. Off by default: without it the service keeps the paper's
  /// CP-only durability (buffered updates lost on crash, the file system's
  /// journal replay covers them). Enabling it forces real fsyncs on every
  /// hosted Env regardless of `sync_writes`.
  bool wal_enabled = false;

  /// Group-commit window, in microseconds. 0 = per-op fsync: every update
  /// batch syncs its own WAL record before its future resolves (the
  /// durable-but-slow baseline bench/durability measures against). N > 0:
  /// the first WAL append on a shard schedules one flush task N µs out;
  /// every batch appended to ANY volume on that shard meanwhile rides the
  /// same single fsync sweep, so durable-ops/s scales with batching rather
  /// than with fsync count.
  std::uint32_t wal_commit_window_micros = 0;

  /// Crash-injection hook for the durability pipeline, invoked at the five
  /// ordering points: "wal_appended" (record in the file, not yet synced),
  /// "wal_synced" (group fsync done, acks not yet delivered), "cp_flushed"
  /// / "registry_persisted" (inside BacklogDb::consistency_point — see
  /// BacklogOptions::checkpoint), and "wal_truncated" (log reset behind
  /// the committed CP). Crash tests _exit() inside it at every point.
  std::function<void(std::string_view)> wal_checkpoint;

  // --- observability (see trace.hpp / metrics.hpp) -------------------------
  // Both knobs are also adjustable at runtime via set_tracing(). While
  // either is non-zero every foreground op is stage-stamped (one extra
  // clock read per op); with both zero the trace machinery costs one
  // relaxed atomic load per op and allocates nothing.

  /// Record every Nth foreground op of a volume into its shard's trace
  /// ring (0 = sampling off).
  std::uint32_t trace_sample_every = 0;
  /// Ops whose end-to-end latency reaches this land in the slow-op log with
  /// their full stage breakdown (0 = off). Exact, not sampled.
  std::uint64_t slow_op_micros = 0;
  /// Capacity of each shard's sampled-span ring / slow-op log (oldest
  /// evicted, pushes never block the shard thread).
  std::size_t trace_ring_size = 1024;
  std::size_t slow_op_ring_size = 256;
};

/// Thresholds steering background maintenance (see MaintenanceScheduler).
struct MaintenancePolicy {
  /// Schedule maintenance once a volume holds at least this many Level-0
  /// (From + To) runs.
  std::uint64_t l0_run_threshold = 48;
  /// Additionally schedule once the volume's run files exceed this many
  /// bytes (0 = disabled).
  std::uint64_t db_bytes_threshold = 0;
  /// Max background jobs enqueued per scheduler sweep, handed out
  /// round-robin over tenants — the tenant-fair budget that keeps compaction
  /// from monopolizing shards.
  std::size_t budget_per_sweep = 1;
  std::chrono::milliseconds poll_interval{20};
};

/// One batched update-path operation (§5 callbacks, service form). The
/// value type now lives in core (core::Update) so BacklogDb::apply_many can
/// take the service's batches without a copy; the alias keeps every
/// existing spelling (`service::UpdateOp::Kind::kAdd`) working.
using UpdateOp = core::Update;

/// One owner-query range of a query_batch() call.
struct QueryRange {
  core::BlockNo first = 0;
  std::uint64_t count = 1;
  core::QueryOptions opts{};
};

/// Outcome of migrate_volume().
struct MigrationStats {
  std::size_t source_shard = 0;
  std::size_t target_shard = 0;
  /// False when the volume already lived on the target shard (no-op) or a
  /// require_clean move found buffered updates (aborted_dirty).
  bool moved = false;
  /// True when require_clean aborted the handoff because the write store
  /// was non-empty at the drain barrier; the volume stayed on its shard and
  /// no consistency point was forced.
  bool aborted_dirty = false;
  /// True when the drain flushed buffered updates as a consistency point.
  bool forced_cp = false;
  /// Operations that raced the move: parked during the handoff and replayed
  /// on the target shard in their original submission order.
  std::size_t replayed_tasks = 0;
};

class VolumeManager {
 public:
  explicit VolumeManager(ServiceOptions options);
  /// Joins the worker pool (pending tasks drain first) and closes every
  /// still-open volume. Buffered write-store entries that were never
  /// committed by a consistency point are discarded, exactly as on process
  /// exit — the file system's journal replay covers them.
  ~VolumeManager();

  VolumeManager(const VolumeManager&) = delete;
  VolumeManager& operator=(const VolumeManager&) = delete;

  // --- routing ---------------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept { return pool_.size(); }

  /// Whether ServiceOptions::pin_shards was requested *and* applied to
  /// every worker thread (false on platforms without thread affinity).
  [[nodiscard]] bool shards_pinned() const noexcept { return pool_.pinned(); }

  // --- fault injection (fleet_sim chaos mode, tests) -------------------------

  /// Kill shard `shard`'s worker thread (deterministically: the call joins
  /// it). The shard's queue stays open, so every verb keeps accepting work
  /// for tenants routed there — tasks simply wait, and the accumulated
  /// delay lands in the queue-wait histograms when restart_shard() brings
  /// the worker back. No operation is ever dropped. Returns false if the
  /// shard is already dead. Throws std::out_of_range on a bad index. Must
  /// not be called from a task body.
  bool kill_shard(std::size_t shard);

  /// Revive a killed shard; its backlog drains immediately. Returns false
  /// if the shard is alive. Throws std::out_of_range on a bad index.
  bool restart_shard(std::size_t shard);

  /// True while `shard` has a live worker. Throws std::out_of_range.
  [[nodiscard]] bool shard_alive(std::size_t shard) const;

  /// Deterministic tenant -> *initial* shard route: a platform-stable hash
  /// of the tenant name, so the same tenant lands on the same shard across
  /// restarts and across processes (given the same shard count). A volume
  /// moved by migrate_volume() keeps its new shard until closed; reopening
  /// returns it to the hash route.
  [[nodiscard]] std::size_t shard_of(std::string_view tenant) const noexcept {
    return util::hash_bytes(tenant.data(), tenant.size(), /*seed=*/0x7e9a97) %
           pool_.size();
  }

  /// The shard currently hosting `tenant` (racy by nature: a concurrent
  /// migration can change it immediately after the read).
  [[nodiscard]] std::size_t current_shard(const std::string& tenant) const;

  // --- volume lifecycle ------------------------------------------------------

  /// Open (or create) the volume for `tenant`; blocks until recovery is
  /// complete. Throws std::invalid_argument for bad names or duplicates.
  void open_volume(const std::string& tenant);

  /// Flush (consistency point, if anything is buffered) and close. Blocks.
  void close_volume(const std::string& tenant);

  /// Close `tenant` without flushing and permanently delete its directory.
  /// Every run file is released through the shared FileManifest before its
  /// link is removed: files shared with cloned volumes survive (their
  /// refcount drops by one), sole-owned files are physically removed.
  /// Blocks.
  void destroy_volume(const std::string& tenant);

  [[nodiscard]] bool has_volume(const std::string& tenant) const;
  [[nodiscard]] std::vector<std::string> tenants() const;

  // --- update path -----------------------------------------------------------

  /// Apply a batch of add/remove callbacks in order on the tenant's shard.
  /// On a per-op validation failure the future carries the exception and the
  /// batch is applied only up to the failing op (same contract as issuing
  /// the calls directly). Prefer apply_batch() on the hot path: same
  /// routing cost, but the batch is applied through BacklogDb::apply_many
  /// and validated as one unit.
  std::future<void> apply(const std::string& tenant,
                          std::vector<UpdateOp> batch);

  /// The batched update verb (the future wire protocol's RPC shape): the
  /// whole batch crosses the routing/QoS/queue boundary once — one gate
  /// charge with the batch's total cost, one task, one promise — and is
  /// applied via BacklogDb::apply_many. Ordering: the batch occupies a
  /// single slot in the tenant's FIFO, atomically ordered against
  /// interleaved apply()/query() calls and preserved across live
  /// migrations (a batch is parked/replayed as one unit, never split).
  /// Unlike apply(), validation is up front: an invalid op fails the whole
  /// batch with std::invalid_argument and nothing is applied. A batch
  /// rejected by QoS carries ServiceError(kThrottled) once, covering every
  /// constituent op; nothing is partially admitted.
  std::future<void> apply_batch(const std::string& tenant,
                                std::vector<UpdateOp> batch);

  std::future<core::CpFlushStats> consistency_point(const std::string& tenant);

  std::future<std::uint64_t> relocate(const std::string& tenant,
                                      core::BlockNo old_block,
                                      std::uint64_t length,
                                      core::BlockNo new_block);

  // --- snapshot lifecycle (§2, §4.2.2 — service form) ------------------------

  /// Retain the state of `line` as of the current CP as a snapshot and
  /// commit it: the verb takes a consistency point, so every update applied
  /// before the call is included in the returned version and every update
  /// applied after it is excluded. Returns the snapshot's version.
  std::future<core::Epoch> take_snapshot(const std::string& tenant,
                                         core::LineId line = 0);

  /// Create a writable clone of snapshot (parent_line, version) *inside*
  /// the tenant's volume; returns the new line id. The registry change is
  /// persisted immediately (manifest edit); no CP is taken.
  std::future<core::LineId> create_clone(const std::string& tenant,
                                         core::LineId parent_line,
                                         core::Epoch version);

  /// Delete snapshot (line, version). Zombie semantics apply: a cloned
  /// snapshot's back references survive until its descendants are gone.
  std::future<void> delete_snapshot(const std::string& tenant,
                                    core::LineId line, core::Epoch version);

  /// Retained snapshot versions of `line`, ascending.
  std::future<std::vector<core::Epoch>> list_versions(const std::string& tenant,
                                                      core::LineId line = 0);

  /// Clone-as-new-tenant: materialize a writable clone of src's snapshot
  /// (parent_line, version) as the independently addressable volume
  /// `dst_tenant`. The source is quiesced on its shard just long enough to
  /// flush buffered updates (if any) and *share* its durable files: with
  /// cow_clone (the default) immutable run files are hard-linked into a
  /// staging directory — no data copy, refcounts bumped in the shared
  /// FileManifest — and only the small mutable metadata (manifest, deletion
  /// vectors) is byte-copied, so clone cost is O(metadata). The staging
  /// directory commits by an atomic rename; a crash before the rename
  /// leaves a `<dst>.cloning` directory that the next VolumeManager
  /// construction removes (releasing its references). The new volume
  /// recovers from the committed directory, shares the full
  /// structural-inheritance history through its (copied) SnapshotRegistry,
  /// and gets a fresh writable line — whose id this call returns — cloned
  /// from the snapshot. The destination routes by hash like any newly
  /// opened volume. Blocks.
  core::LineId clone_volume(const std::string& src_tenant,
                            const std::string& dst_tenant,
                            core::LineId parent_line, core::Epoch version);

  /// Live migration: move `tenant` to `target_shard` without stopping its
  /// traffic. Protocol: (1) an exclusive routing-table write marks the
  /// volume as in-handoff, so operations that race the move are parked
  /// instead of enqueued; (2) a drain barrier runs on the source shard
  /// behind every previously queued op and forces a consistency point if
  /// updates are buffered; (3) ownership flips and the parked operations
  /// are replayed onto the target shard in their original order, ahead of
  /// anything submitted later. Per-tenant FIFO ordering is preserved end to
  /// end; other tenants never block. Blocks the caller (not the service).
  /// Throws std::logic_error if a migration of this volume is in flight.
  ///
  /// `require_clean`: abort instead of forcing a consistency point when the
  /// drain finds buffered updates (MigrationStats::aborted_dirty; the
  /// volume stays put, racers replay on the source in order). The Balancer
  /// moves volumes this way — rebalancing must never impose a durability
  /// point on a tenant mid-CP-window.
  MigrationStats migrate_volume(const std::string& tenant,
                                std::size_t target_shard,
                                bool require_clean = false);

  // --- per-tenant QoS --------------------------------------------------------

  /// Install (or replace) the tenant's QoS: token-bucket admission for
  /// apply()/query() plus the weighted-fair share of its shard. Applies to
  /// ops submitted after the call. Throws std::invalid_argument on
  /// nonsensical settings.
  void set_qos(const std::string& tenant, const TenantQos& qos);

  /// Remove the tenant's QoS; ops already waiting are released immediately
  /// (in order) and the weight returns to 1.
  void clear_qos(const std::string& tenant);

  /// Admission counters + configuration of the tenant's gate.
  [[nodiscard]] QosSnapshot qos(const std::string& tenant) const;

  // --- load signals (Balancer) -----------------------------------------------

  /// One shard's instantaneous load signals.
  struct ShardLoad {
    std::size_t shard = 0;
    std::size_t queue_depth = 0;           ///< pending tasks (fg + bg)
    std::uint64_t latency_ewma_micros = 0; ///< EWMA of task execution time
    std::uint64_t busy_micros = 0;         ///< cumulative task-execution time
  };
  [[nodiscard]] std::vector<ShardLoad> shard_loads() const;

  /// Where every volume currently lives plus its cumulative dispatched
  /// foreground-op count (monotonic; the Balancer differences successive
  /// readings into a rate). One locked pass, no shard round-trips.
  struct VolumePlacement {
    std::string tenant;
    std::size_t shard = 0;
    std::uint64_t dispatched_ops = 0;
  };
  [[nodiscard]] std::vector<VolumePlacement> placements() const;

  // --- queries ---------------------------------------------------------------

  std::future<std::vector<core::BackrefEntry>> query(
      const std::string& tenant, core::BlockNo first, std::uint64_t count = 1,
      core::QueryOptions opts = {});

  /// Batched owner queries: all of `ranges` execute in one task on the
  /// tenant's shard (one QoS charge of ranges.size() ops, one promise);
  /// result i answers ranges[i]. Like any foreground task the batch sits in
  /// the tenant's FIFO, so it observes every update applied before it was
  /// submitted — the batch counterpart of query().
  std::future<std::vector<std::vector<core::BackrefEntry>>> query_batch(
      const std::string& tenant, std::vector<QueryRange> ranges);

  std::future<std::vector<core::CombinedRecord>> scan_all(
      const std::string& tenant);

  // --- maintenance -----------------------------------------------------------

  /// Explicit foreground maintenance (e.g. backlogctl): runs at normal
  /// priority, fails if the write store is non-empty (core contract).
  std::future<core::MaintenanceStats> maintain(const std::string& tenant);

  /// Background maintenance probe (MaintenanceScheduler entry point): at
  /// most one in flight per volume; the probe re-checks the thresholds on
  /// the shard against a QuickStats snapshot and silently skips when the
  /// volume is below them or mid-CP-window. Returns false if the tenant is
  /// unknown or a probe is already pending.
  bool schedule_maintenance(const std::string& tenant,
                            const MaintenancePolicy& policy);

  // --- stats -----------------------------------------------------------------

  std::future<core::DbStats> db_stats(const std::string& tenant);
  std::future<core::QuickStats> quick_stats(const std::string& tenant);
  /// The tenant's private Env counters — volumes never share an Env, so
  /// these isolate one tenant's I/O from every other's.
  std::future<storage::IoStats> io_stats(const std::string& tenant);

  /// Aggregated snapshot across all shards and tenants. Shards are
  /// snapshotted *sequentially* — shard k's snapshot task is submitted only
  /// after shard k-1's completed — so at most one shard is ever servicing
  /// stats at a time: a slow shard delays only the aggregation, never the
  /// other shards, and the fleet never takes a coordinated stats blip.
  ServiceStats stats();

  // --- caches ----------------------------------------------------------------

  /// Fleet-wide cache snapshot: the shared block cache's counters plus each
  /// hosted volume's result-cache counters.
  struct CacheReport {
    storage::BlockCacheStats block;
    /// False when the shared cache is disabled (CacheOptions
    /// enable_block_cache = false): volumes run legacy private caches and
    /// `block` is the *sum* over every open volume's private cache —
    /// capacity_bytes totals the fleet budget, shards counts one stripe
    /// per volume.
    bool block_shared = true;
    struct VolumeRow {
      std::string tenant;
      core::ResultCacheStats result;
    };
    std::vector<VolumeRow> tenants;  ///< sorted by tenant name
  };

  /// Snapshot of all cache counters. Per-volume rows are gathered like
  /// stats(): sequentially, one bypass-gate task per shard, so a throttled
  /// tenant can still be inspected and at most one shard services the
  /// report at a time.
  [[nodiscard]] CacheReport cache_stats();

  /// Drop every cached page and cached query result service-wide (the
  /// paper's cold-cache lever, §6.4, lifted to the fleet). Volumes' result
  /// caches are cleared on their own shards; in-flight queries simply
  /// repopulate afterwards.
  void clear_caches();

  /// The service-wide block cache (disabled object when
  /// CacheOptions::enable_block_cache is false).
  [[nodiscard]] storage::BlockCache& block_cache() noexcept {
    return block_cache_;
  }

  // --- observability -----------------------------------------------------

  /// The service's metric registry (always on: every verb bumps its
  /// counters with one uncontended relaxed store). Scrape with
  /// to_prometheus()/to_json(); windowed rates come from MetricsPoller.
  [[nodiscard]] MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Adjust tracing at runtime (overrides the ServiceOptions seeds, applies
  /// to ops submitted after the call). sample_every=0 disables sampling,
  /// slow_op_micros=0 disables the slow-op log; with both zero foreground
  /// ops are not stage-stamped at all.
  void set_tracing(std::uint32_t sample_every,
                   std::uint64_t slow_op_micros) noexcept {
    trace_.sample_every.store(sample_every, std::memory_order_relaxed);
    trace_.slow_op_micros.store(slow_op_micros, std::memory_order_relaxed);
  }

  /// Sampled spans / slow-op log entries across all shards, oldest first.
  /// Gathered like stats(): a task per shard reads that shard's rings on
  /// its own thread, so the rings themselves need no synchronization.
  [[nodiscard]] std::vector<TraceSpan> trace_spans();
  [[nodiscard]] std::vector<TraceSpan> slow_ops();

  /// Test/tooling hook: run `fn` with exclusive access to the tenant's db on
  /// its shard.
  std::future<void> with_db(const std::string& tenant,
                            std::function<void(core::BacklogDb&)> fn);

  /// Like with_db but also exposes the volume's private Env — for tooling
  /// that inspects the durable files themselves (run listing, run dumping)
  /// while the volume stays hosted. Same shard-exclusive execution.
  std::future<void> with_env(
      const std::string& tenant,
      std::function<void(storage::Env&, core::BacklogDb&)> fn);

  /// The service-wide reference-counted ownership table of files shared
  /// across volume directories by copy-on-write clones.
  [[nodiscard]] core::FileManifest& shared_files() noexcept {
    return shared_files_;
  }

  [[nodiscard]] const ServiceOptions& options() const noexcept {
    return options_;
  }

 private:
  struct ParkedTask {
    Task task;
    bool background = false;
  };

  struct Volume {
    std::string tenant;
    // Routing state, guarded by routing_mu_: `shard` is where tasks enqueue,
    // `parked` is set for the duration of a migration handoff. The parked
    // deque has its own tiny mutex because parkers only hold routing_mu_
    // shared. `shard` is atomic only so the submit path can take one
    // *relaxed* peek outside the lock (the queue-depth heuristic in
    // run_on); every routing decision still reads it under routing_mu_,
    // which carries the ordering.
    std::atomic<std::size_t> shard{0};
    bool parked = false;
    std::mutex park_mu;
    std::deque<ParkedTask> parked_tasks;
    // Weighted-fair scheduling identity: one flow per volume, assigned at
    // registration and stable across migrations. The weight mirrors the
    // volume's TenantQos (1 when unconfigured).
    std::uint64_t flow_id = 0;
    std::atomic<std::uint32_t> qos_weight{1};
    // Token-bucket admission gate (API-thread side; see qos.hpp).
    QosGate gate;
    // Foreground tasks handed to the pool for this volume (monotonic,
    // incremented at dispatch) — the Balancer's per-volume rate signal.
    std::atomic<std::uint64_t> dispatched_ops{0};
    // Created, used and destroyed only on the owning shard's thread.
    std::unique_ptr<storage::Env> env;
    std::unique_ptr<core::BacklogDb> db;
    // Per-volume write-ahead log (null unless ServiceOptions::wal_enabled);
    // appended on the shard thread, group-synced by the shard's flush task.
    std::unique_ptr<core::Wal> wal;
    // Graceful degradation: set once a WAL append/sync hits a persistent
    // write error. A wounded volume keeps answering reads, but every
    // mutating verb fails fast with ServiceError(kWounded) instead of
    // aborting the shard thread. Atomic so the API-side gauge can read it
    // without visiting the shard; never cleared while hosted (close and
    // reopen — after fixing the disk — heals it).
    std::atomic<bool> wounded{false};
    TenantStats stats;  // shard-thread-only
    std::atomic<bool> maintenance_pending{false};
    // Trace sampling cursor: every Nth foreground op of this volume is
    // recorded (relaxed fetch_add on the submit path, only while tracing).
    std::atomic<std::uint64_t> trace_seq{0};
  };

  [[nodiscard]] std::shared_ptr<Volume> find(const std::string& tenant) const;

  /// Shard-thread helper: flush buffered updates as a consistency point
  /// (with stats accounting) if there are any; returns whether a CP was
  /// taken. Used by clone_volume's quiesce and migrate_volume's drain.
  /// Truncates the volume's WAL behind the committed CP. Fails fast with
  /// kWounded instead of attempting a CP on a wounded volume.
  bool flush_buffered_cp(Volume& v);

  /// Shard-thread body of the volume open/recovery sequence, shared by
  /// open_volume() and clone_volume()'s destination open: construct the Env
  /// (real fsyncs forced on when the WAL is enabled), arm the test hooks,
  /// recover the BacklogDb, replay the WAL tail through apply_many
  /// (committed immediately as a CP), and start a fresh log.
  void recover_volume_on_shard(Volume& v, const std::filesystem::path& dir,
                               const core::BacklogOptions& db_opts);

  /// Route one task to wherever the volume currently lives: its shard's
  /// queue, or the volume's parked deque while a migration handoff is in
  /// flight (replayed on the target in order). Readers share routing_mu_;
  /// only migrate_volume() ever takes it exclusively — the hot path pays
  /// one uncontended shared lock, the dbs themselves stay lock-free.
  void dispatch(const std::shared_ptr<Volume>& vol, Task task,
                bool background);

  /// Wrap `body` in a staleness check and route it to the volume. A
  /// foreground task always runs on the owning shard (the migration drain
  /// queues behind it), but a *background* task can linger in the
  /// low-priority queue past the drain barrier and be popped by the old
  /// owner after the volume moved — touching the volume there would race
  /// the new owner. The wrapper detects that (current_shard() no longer
  /// matches the routing table) and re-dispatches itself to chase the
  /// volume to its new home instead of running.
  ///
  /// Templated on the body so the whole wrapper is one concrete lambda
  /// stored directly in an InlineTask — the enqueue path never builds a
  /// std::function and never allocates for the common verb shapes (the
  /// allocation-freedom half of the batching PR; task.hpp has the sizing).
  template <typename Body>
  void submit_chasing(std::shared_ptr<Volume> vol, Body body,
                      bool background) {
    Task task = [this, vol, body = std::move(body), background]() mutable {
      bool stale = false;
      {
        std::shared_lock rl(routing_mu_);
        // A migration's drain barrier only covers the foreground queue, so
        // a *background* task can be popped by the old owner after the
        // volume moved (shard mismatch) — or, worse, in the drain-to-flip
        // window, where the shard field still points here but the target
        // may take over the moment the drain's promise lands (parked
        // flag). Either way the task must not touch the volume here.
        // Foreground tasks can never be stale: FIFO puts them ahead of the
        // drain, and they must run in place — re-parking them would
        // reorder against operations parked at dispatch.
        stale = vol->shard.load(std::memory_order_relaxed) !=
                    WorkerPool::current_shard() ||
                (background && vol->parked);
      }
      if (stale) {
        // Chase the volume to its current home (or into the parked deque,
        // which replays on the new owner). The routing-lock read above
        // also carries the happens-before edge from the previous handoff.
        submit_chasing(std::move(vol), std::move(body), background);
        return;
      }
      body(*vol);
    };
    dispatch(vol, std::move(task), background);
  }

  /// Run `fn(Volume&)` on the volume's shard; the future carries the result
  /// or the exception. Tasks capture the Volume by shared_ptr, so a volume
  /// outlives any task still referencing it even after close_volume().
  ///
  /// Foreground tasks pass through the volume's QoS gate: `ops_cost` /
  /// `bytes_cost` are charged against the tenant's token buckets (0 for
  /// control verbs, which still queue behind throttled ops to preserve
  /// order). A rejected op's future carries ServiceError(kThrottled).
  /// `bypass_gate` is for purely observational verbs (stats snapshots):
  /// they carry no ordering promise, and waiting behind a fully throttled
  /// tenant's queue would let one tenant stall fleet monitoring.
  ///
  /// `verb`/`op_count` label the op for tracing (see trace.hpp): while
  /// tracing is enabled a TraceCtx rides by value inside the task body,
  /// survives a migration park/replay with it, and is finished into the
  /// executing shard's trace ring / slow-op log by finish_trace().
  template <typename Fn>
  auto run_on(std::shared_ptr<Volume> vol, Fn fn, bool background = false,
              double ops_cost = 0, double bytes_cost = 0,
              bool bypass_gate = false, TraceVerb verb = TraceVerb::kControl,
              std::uint32_t op_count = 1)
      -> std::future<std::invoke_result_t<Fn&, Volume&>> {
    using R = std::invoke_result_t<Fn&, Volume&>;
    auto prom = std::make_shared<std::promise<R>>();
    std::future<R> fut = prom->get_future();
    // Queue-wait accounting without double timestamping: a foreground task
    // stamps its submission time only when it can actually wait — a QoS
    // gate is armed or the target shard's queue is non-empty (one relaxed
    // peek; racy, but this is a stats heuristic). The execute side then
    // reuses the worker loop's task-boundary timestamp instead of reading
    // the clock again, so the common uncontended op pays for *zero* extra
    // clock reads instead of two. Background probes idle by design; their
    // wait would only pollute the histogram. While tracing is enabled every
    // foreground op is stamped instead — a full span needs its submit time
    // unconditionally, and the slow-op check must be exact, not sampled.
    TraceCtx ctx;
    ctx.verb = verb;
    ctx.ops = op_count;
    if (!background && trace_.enabled()) {
      ctx.active = true;
      ctx.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
      ctx.t_submit = util::now_micros();
      ctx.submit_shard = static_cast<std::uint16_t>(
          vol->shard.load(std::memory_order_relaxed));
      const std::uint32_t every =
          trace_.sample_every.load(std::memory_order_relaxed);
      ctx.sampled =
          every != 0 &&
          vol->trace_seq.fetch_add(1, std::memory_order_relaxed) % every == 0;
    } else if (!background &&
               (vol->gate.gated() ||
                pool_.queue_depth_approx(
                    vol->shard.load(std::memory_order_relaxed)) > 0)) {
      ctx.t_submit = util::now_micros();
    }
    // The body is built by a factory so the gated path below can construct
    // it at release time, after stamping the gate-admit time into the ctx
    // it captures.
    auto make_body = [this, prom](Fn fn, TraceCtx ctx) {
      return [this, fn = std::move(fn), prom, ctx](Volume& v) mutable {
        try {
          std::uint64_t t_exec = 0;
          if (ctx.t_submit != 0) {
            t_exec = WorkerPool::dispatch_time_micros();
            if (t_exec < ctx.t_submit) t_exec = ctx.t_submit;
            // Same meaning as always: queue time plus any gate wait (the
            // span splits the two; the histogram keeps the total).
            v.stats.queue_wait_micros.record(t_exec - ctx.t_submit);
            hot_.queue_wait_micros->record(metric_slot(),
                                           t_exec - ctx.t_submit);
          }
          if (v.db == nullptr)
            throw std::logic_error("volume is closed: " + v.tenant);
          const std::uint64_t io_before =
              ctx.active ? v.env->stats().io_micros : 0;
          if constexpr (std::is_void_v<R>) {
            fn(v);
            if (ctx.active) finish_trace(v, ctx, t_exec, io_before);
            prom->set_value();
          } else {
            R result = fn(v);
            if (ctx.active) finish_trace(v, ctx, t_exec, io_before);
            prom->set_value(std::move(result));
          }
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
      };
    };
    if (background || bypass_gate || !vol->gate.gated()) {
      submit_chasing(std::move(vol), make_body(std::move(fn), ctx),
                     background);
      return fut;
    }
    // Gated: the gate either runs the release thunk inline (admitted),
    // keeps it for the pacer (queued), or drops it (rejected — fail the
    // promise with the backpressure signal). The thunk builds the body
    // itself so a traced op's gate wait ends exactly at release.
    Volume* gate_vol = vol.get();
    std::function<void()> release = [this, make_body, vol = std::move(vol),
                                     fn = std::move(fn), ctx]() mutable {
      if (ctx.active) ctx.t_admit = util::now_micros();
      submit_chasing(std::move(vol), make_body(std::move(fn), ctx),
                     /*background=*/false);
    };
    const Admission adm = gate_vol->gate.admit(
        ops_cost, bytes_cost, util::now_micros(), std::move(release));
    if (adm == Admission::kQueued) {
      hot_.throttle_queued->add(metric_slot());
    } else if (adm == Admission::kRejected) {
      hot_.throttle_rejected->add(metric_slot());
      prom->set_exception(std::make_exception_ptr(ServiceError(
          ErrorCode::kThrottled,
          "throttled: QoS wait queue full for " + gate_vol->tenant)));
    }
    return fut;
  }

  /// Completion callback of a deferred (WAL'd) update op: exactly one call,
  /// with null on success or the exception the future should carry.
  using DoneFn = std::function<void(std::exception_ptr)>;

  /// Deferred-completion sibling of run_on for the WAL'd update verbs: same
  /// routing, QoS gating and queue-wait accounting, but the future resolves
  /// when `fn`'s DoneFn is invoked — the shard's group-commit flush calls
  /// it after the WAL sync covering the op — instead of when fn returns.
  /// `fn(v, done)` must either throw (the future then carries that
  /// exception) or arrange exactly one `done` call, and must not throw
  /// after arranging it. A traced span finishes when fn returns, so it
  /// measures apply + WAL append and excludes the commit-window wait.
  template <typename Fn>
  std::future<void> run_on_deferred(std::shared_ptr<Volume> vol, Fn fn,
                                    double ops_cost, double bytes_cost,
                                    TraceVerb verb, std::uint32_t op_count) {
    auto prom = std::make_shared<std::promise<void>>();
    std::future<void> fut = prom->get_future();
    TraceCtx ctx;
    ctx.verb = verb;
    ctx.ops = op_count;
    if (trace_.enabled()) {
      ctx.active = true;
      ctx.id = next_trace_id_.fetch_add(1, std::memory_order_relaxed);
      ctx.t_submit = util::now_micros();
      ctx.submit_shard = static_cast<std::uint16_t>(
          vol->shard.load(std::memory_order_relaxed));
      const std::uint32_t every =
          trace_.sample_every.load(std::memory_order_relaxed);
      ctx.sampled =
          every != 0 &&
          vol->trace_seq.fetch_add(1, std::memory_order_relaxed) % every == 0;
    } else if (vol->gate.gated() ||
               pool_.queue_depth_approx(
                   vol->shard.load(std::memory_order_relaxed)) > 0) {
      ctx.t_submit = util::now_micros();
    }
    auto make_body = [this, prom](Fn fn, TraceCtx ctx) {
      return [this, fn = std::move(fn), prom, ctx](Volume& v) mutable {
        try {
          std::uint64_t t_exec = 0;
          if (ctx.t_submit != 0) {
            t_exec = WorkerPool::dispatch_time_micros();
            if (t_exec < ctx.t_submit) t_exec = ctx.t_submit;
            v.stats.queue_wait_micros.record(t_exec - ctx.t_submit);
            hot_.queue_wait_micros->record(metric_slot(),
                                           t_exec - ctx.t_submit);
          }
          if (v.db == nullptr)
            throw std::logic_error("volume is closed: " + v.tenant);
          const std::uint64_t io_before =
              ctx.active ? v.env->stats().io_micros : 0;
          DoneFn done = [prom](std::exception_ptr ep) {
            if (ep)
              prom->set_exception(std::move(ep));
            else
              prom->set_value();
          };
          fn(v, std::move(done));
          if (ctx.active) finish_trace(v, ctx, t_exec, io_before);
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
      };
    };
    if (!vol->gate.gated()) {
      submit_chasing(std::move(vol), make_body(std::move(fn), ctx),
                     /*background=*/false);
      return fut;
    }
    Volume* gate_vol = vol.get();
    std::function<void()> release = [this, make_body, vol = std::move(vol),
                                     fn = std::move(fn), ctx]() mutable {
      if (ctx.active) ctx.t_admit = util::now_micros();
      submit_chasing(std::move(vol), make_body(std::move(fn), ctx),
                     /*background=*/false);
    };
    const Admission adm = gate_vol->gate.admit(
        ops_cost, bytes_cost, util::now_micros(), std::move(release));
    if (adm == Admission::kQueued) {
      hot_.throttle_queued->add(metric_slot());
    } else if (adm == Admission::kRejected) {
      hot_.throttle_rejected->add(metric_slot());
      prom->set_exception(std::make_exception_ptr(ServiceError(
          ErrorCode::kThrottled,
          "throttled: QoS wait queue full for " + gate_vol->tenant)));
    }
    return fut;
  }

  // --- group-commit WAL pipeline (shard-thread state) ----------------------

  /// One shard's pending durability window. Touched only on that shard's
  /// worker thread (the flush task runs there too), so no locking.
  struct ShardCommit {
    bool flush_scheduled = false;
    std::uint64_t window_deadline_micros = 0;
    struct PendingAck {
      std::shared_ptr<Volume> vol;
      DoneFn done;
    };
    std::vector<PendingAck> pending;
  };

  /// Shard-thread body shared by apply()/apply_batch() under WAL: apply the
  /// batch to the db (`per_op` keeps apply()'s partial-prefix contract),
  /// append the applied prefix to the volume's WAL, then sync inline
  /// (window 0) or register `done` with the shard's group-commit window.
  void wal_apply_batch(const std::shared_ptr<Volume>& vol,
                       std::span<const UpdateOp> batch, bool per_op,
                       DoneFn done);

  /// Group-commit sweep of `shard`: sleeps out the remainder of the window,
  /// then runs wal_commit_now.
  void wal_flush_shard(std::size_t shard);

  /// The sweep itself, shard-thread-only and idempotent: fsyncs every
  /// distinct dirty volume's WAL once, then delivers the pending acks (a
  /// volume whose sync failed is wounded and its acks carry kWounded).
  /// Also called directly — without the sleep — by migrate_volume's drain
  /// barrier, so no ack can still reference a volume after its ownership
  /// moves to another shard.
  void wal_commit_now(std::size_t shard);

  /// Flip `v` read-only after a persistent WAL write error, bump the
  /// counters; idempotent.
  void wound(Volume& v, const char* what);

  void throw_if_wounded(const Volume& v) const {
    if (v.wounded.load(std::memory_order_relaxed))
      throw ServiceError(ErrorCode::kWounded,
                         "volume is wounded (read-only after write errors): " +
                             v.tenant);
  }

  /// Fire one named durability injection point (no-op without a hook).
  void wal_point(std::string_view point) const {
    if (options_.wal_checkpoint) options_.wal_checkpoint(point);
  }

  /// Slot of the calling thread in the metrics registry: its shard index on
  /// a worker thread, the extra trailing slot for API/control threads.
  [[nodiscard]] std::size_t metric_slot() const noexcept {
    const std::size_t s = WorkerPool::current_shard();
    return s == WorkerPool::kNoShard ? pool_.size() : s;
  }

  /// Shard-thread tail of a traced op (see run_on): computes the stage
  /// breakdown, pushes the span into this shard's trace ring (if sampled)
  /// and into the slow-op log (if over threshold), and bumps the trace
  /// counters. Never allocates, never blocks.
  void finish_trace(Volume& v, const TraceCtx& ctx, std::uint64_t t_exec,
                    std::uint64_t io_before_micros) noexcept;

  /// Lazily start / stop the QoS pacer thread (drains throttled volumes'
  /// wait queues as tokens refill).
  void ensure_pacer();
  void stop_pacer();
  void pacer_loop();

  /// Per-hosted-volume BacklogOptions: the shared defaults plus a fresh
  /// file_tag (globally unique run names) and the shared-file release hook.
  [[nodiscard]] core::BacklogOptions volume_db_options();

  /// Constructor helper: remove `*.cloning` staging directories left by a
  /// clone that crashed before its commit rename, then recount the shared
  /// FileManifest from the committed volume directories (the table itself
  /// is never trusted across a crash).
  void recover_clone_staging();

  /// Delete a volume directory *through the manifest*: every run file's
  /// own link is removed and its holder deregistered (only when the remove
  /// actually succeeded — a failed unlink must not desynchronize the
  /// table), then the refcounts persist and the directory goes away. Used
  /// by destroy_volume and by clone_volume's committed-directory cleanup.
  void release_directory_via_manifest(const std::filesystem::path& dir);

  /// All trace/slow-op spans of one shard, owned (written and read) only on
  /// that shard's thread — scrapes run as tasks on the shard.
  struct ShardTelemetry {
    TraceRing ring;
    TraceRing slow;
    ShardTelemetry(std::size_t ring_cap, std::size_t slow_cap)
        : ring(ring_cap), slow(slow_cap) {}
  };

  /// trace_spans()/slow_ops() implementation: per-shard ring snapshots,
  /// merged and sorted by submit time.
  [[nodiscard]] std::vector<TraceSpan> gather_spans(bool slow);

  /// Pre-resolved registry handles for the hot path (wired once in the
  /// constructor; see the metric catalog in README "Observability").
  struct HotMetrics {
    MetricsRegistry::Counter* updates = nullptr;
    MetricsRegistry::Counter* batches = nullptr;
    MetricsRegistry::Counter* queries = nullptr;
    MetricsRegistry::Counter* cps = nullptr;
    MetricsRegistry::Counter* snapshots = nullptr;
    MetricsRegistry::Counter* migrations = nullptr;
    MetricsRegistry::Counter* maintenance_runs = nullptr;
    MetricsRegistry::Counter* throttle_queued = nullptr;
    MetricsRegistry::Counter* throttle_rejected = nullptr;
    MetricsRegistry::Counter* trace_spans = nullptr;
    MetricsRegistry::Counter* trace_evictions = nullptr;
    MetricsRegistry::Counter* slow_ops = nullptr;
    MetricsRegistry::Counter* shard_kills = nullptr;
    MetricsRegistry::Counter* shard_restarts = nullptr;
    MetricsRegistry::Counter* wal_records = nullptr;
    MetricsRegistry::Counter* wal_syncs = nullptr;
    MetricsRegistry::Counter* wal_replayed_ops = nullptr;
    MetricsRegistry::Counter* volumes_wounded = nullptr;
    MetricsRegistry::Histogram* update_batch_micros = nullptr;
    MetricsRegistry::Histogram* query_micros = nullptr;
    MetricsRegistry::Histogram* cp_micros = nullptr;
    MetricsRegistry::Histogram* queue_wait_micros = nullptr;
    MetricsRegistry::Histogram* gate_wait_micros = nullptr;
  };

  ServiceOptions options_;
  core::FileManifest shared_files_;  // shared-file refcounts (CoW clones)
  // The shared block cache. Declared before volumes_/pool_ so it outlives
  // every hosted Env/BacklogDb that reads through it (members destroy in
  // reverse order; the pool joins first, then volumes_, then this).
  storage::BlockCache block_cache_;
  mutable std::mutex mu_;  // guards volumes_ (name -> volume membership)
  std::map<std::string, std::shared_ptr<Volume>> volumes_;
  // The routing table lock: shared for every task submission, exclusive
  // only for the two brief writes of a migration handoff.
  mutable std::shared_mutex routing_mu_;
  std::atomic<std::uint64_t> next_flow_id_{1};  // 0 = the shared default flow
  std::mutex pacer_mu_;
  std::condition_variable pacer_cv_;
  bool pacer_stop_ = false;
  std::thread pacer_;
  // Observability state. The registry has one slot per shard plus one for
  // API/control threads; telemetry_ is indexed by shard and only touched on
  // that shard's thread.
  MetricsRegistry metrics_;
  TraceControl trace_;
  std::vector<std::unique_ptr<ShardTelemetry>> telemetry_;
  std::atomic<std::uint64_t> next_trace_id_{1};
  HotMetrics hot_;
  // Group-commit windows, one per shard, each touched only on its shard's
  // thread (sized in the constructor, never resized after).
  std::vector<std::unique_ptr<ShardCommit>> commit_;
  // Declared last: ~WorkerPool drains and joins before volumes_ goes away.
  WorkerPool pool_;
};

}  // namespace backlog::service
