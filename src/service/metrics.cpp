#include "service/metrics.hpp"

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "service/volume_manager.hpp"
#include "util/clock.hpp"

namespace backlog::service {

namespace {

/// Minimal JSON string escaping: the registry's metric names and label
/// strings are programmer-chosen identifiers, so quotes/backslashes only
/// appear inside label *values* ("shard=\"3\"") and control characters never
/// do.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  out += buf;
}

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

MetricsRegistry::MetricsRegistry(std::size_t slots)
    : slots_(slots == 0 ? 1 : slots) {}

MetricsRegistry::Counter& MetricsRegistry::counter(const std::string& name,
                                                   const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>(name, help, slots_);
  return *slot;
}

MetricsRegistry::Gauge& MetricsRegistry::gauge(const std::string& name,
                                               const std::string& help,
                                               const std::string& labels) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name + "\x1f" + labels];
  if (slot == nullptr) slot = std::make_unique<Gauge>(name, help, labels);
  return *slot;
}

MetricsRegistry::Histogram& MetricsRegistry::histogram(
    const std::string& name, const std::string& help) {
  const std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>(name, help, slots_);
  return *slot;
}

LatencyHistogram MetricsRegistry::Histogram::merged() const {
  LatencyHistogram out;
  for (const Slot& s : slots_) {
    for (std::size_t i = 0; i < LatencyHistogram::kBuckets; ++i) {
      const std::uint64_t n = s.buckets[i].load(std::memory_order_relaxed);
      if (n != 0) out.ingest_bucket(i, n);
    }
    out.ingest_sum_max(s.sum.load(std::memory_order_relaxed),
                       s.max.load(std::memory_order_relaxed));
  }
  return out;
}

std::string MetricsRegistry::to_prometheus() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  out.reserve(4096);

  for (const auto& [name, c] : counters_) {
    out += "# HELP " + name + " " + c->help() + "\n";
    out += "# TYPE " + name + " counter\n";
    out += name + " ";
    append_u64(out, c->total());
    out += "\n";
  }

  // Gauges are keyed name+labels; emit one HELP/TYPE per family, then every
  // labeled series of that family (map order keeps a family contiguous).
  std::string prev_family;
  for (const auto& [key, g] : gauges_) {
    (void)key;
    if (g->name() != prev_family) {
      out += "# HELP " + g->name() + " " + g->help() + "\n";
      out += "# TYPE " + g->name() + " gauge\n";
      prev_family = g->name();
    }
    out += g->name();
    if (!g->labels().empty()) out += "{" + g->labels() + "}";
    out += " ";
    append_double(out, g->value());
    out += "\n";
  }

  for (const auto& [name, h] : histograms_) {
    const LatencyHistogram merged = h->merged();
    out += "# HELP " + name + " " + h->help() + "\n";
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (const HistogramBucket& b : merged.to_buckets()) {
      cum += b.count;
      // The top log2 bucket's bound is UINT64_MAX — fold it into +Inf
      // instead of emitting an unreadable 20-digit `le`.
      if (b.le_micros == UINT64_MAX) continue;
      out += name + "_bucket{le=\"";
      append_u64(out, b.le_micros);
      out += "\"} ";
      append_u64(out, cum);
      out += "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} ";
    append_u64(out, merged.count());
    out += "\n";
    out += name + "_sum ";
    append_u64(out, merged.sum_micros());
    out += "\n";
    out += name + "_count ";
    append_u64(out, merged.count());
    out += "\n";
  }
  return out;
}

std::string MetricsRegistry::to_json() const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\"" + json_escape(name) + "\":";
    append_u64(out, c->total());
  }
  out += "},\"gauges\":[";
  first = true;
  for (const auto& [key, g] : gauges_) {
    (void)key;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + json_escape(g->name()) + "\",\"labels\":\"" +
           json_escape(g->labels()) + "\",\"value\":";
    append_double(out, g->value());
    out += "}";
  }
  out += "],\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    const LatencyHistogram m = h->merged();
    out += "\"" + json_escape(name) + "\":{\"count\":";
    append_u64(out, m.count());
    out += ",\"sum_micros\":";
    append_u64(out, m.sum_micros());
    out += ",\"max_micros\":";
    append_u64(out, m.max_micros());
    out += ",\"p50\":";
    append_u64(out, m.p50());
    out += ",\"p95\":";
    append_u64(out, m.p95());
    out += ",\"p99\":";
    append_u64(out, m.p99());
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (const HistogramBucket& b : m.to_buckets()) {
      if (!bfirst) out += ",";
      bfirst = false;
      out += "{\"le_micros\":";
      append_u64(out, b.le_micros);
      out += ",\"count\":";
      append_u64(out, b.count);
      out += "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

MetricsPoller::MetricsPoller(VolumeManager& vm,
                             std::chrono::milliseconds interval)
    : vm_(vm), interval_(interval) {
  MetricsRegistry& reg = vm.metrics();
  g_updates_ = &reg.gauge("backlog_update_ops_per_sec",
                          "Update ops applied per second (last window)");
  g_queries_ = &reg.gauge("backlog_queries_per_sec",
                          "Queries served per second (last window)");
  g_throttles_ =
      &reg.gauge("backlog_throttles_per_sec",
                 "QoS throttle decisions (queued + rejected) per second");
  g_read_bytes_ =
      &reg.gauge("backlog_io_read_bytes_per_sec",
                 "Cache-miss bytes read from storage per second");
  g_write_bytes_ = &reg.gauge("backlog_io_write_bytes_per_sec",
                              "Bytes written to storage per second");
  // slots() counts one per shard plus the API slot.
  const std::size_t shards = reg.slots() - 1;
  g_busy_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i) {
    g_busy_.push_back(&reg.gauge(
        "backlog_shard_busy_fraction",
        "Fraction of wall time the shard thread spent executing tasks",
        "shard=\"" + std::to_string(i) + "\""));
  }
}

MetricsPoller::~MetricsPoller() { stop(); }

void MetricsPoller::start() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    if (thread_.joinable()) return;
    stopping_ = false;
  }
  thread_ = std::thread([this] { loop(); });
}

void MetricsPoller::stop() {
  {
    const std::lock_guard<std::mutex> lock(stop_mu_);
    stopping_ = true;
  }
  stop_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MetricsPoller::loop() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  while (!stopping_) {
    if (stop_cv_.wait_for(lock, interval_, [this] { return stopping_; })) {
      return;
    }
    lock.unlock();
    poll_once();
    lock.lock();
  }
}

RateSample MetricsPoller::poll_once() { return poll_once(util::now_micros()); }

RateSample MetricsPoller::poll_once(std::uint64_t now_micros) {
  // Scrape outside mu_ — stats() runs tasks on every shard.
  const ServiceStats stats = vm_.stats();
  const auto loads = vm_.shard_loads();

  const std::uint64_t updates = stats.total.updates;
  const std::uint64_t queries = stats.total.queries;
  const std::uint64_t throttles =
      stats.total.throttle_queued + stats.total.throttle_rejected;
  const std::uint64_t read_bytes = stats.total.io.bytes_read;
  const std::uint64_t write_bytes = stats.total.io.bytes_written;

  const std::lock_guard<std::mutex> lock(mu_);
  RateSample s;
  s.at_micros = now_micros;
  s.shard_busy_fraction.assign(loads.size(), 0.0);

  if (primed_ && now_micros > prev_at_) {
    s.primed = true;
    const double dt =
        static_cast<double>(now_micros - prev_at_) / 1'000'000.0;
    s.window_seconds = dt;
    s.update_ops_per_sec = static_cast<double>(updates - prev_updates_) / dt;
    s.queries_per_sec = static_cast<double>(queries - prev_queries_) / dt;
    s.throttles_per_sec =
        static_cast<double>(throttles - prev_throttles_) / dt;
    s.io_read_bytes_per_sec =
        static_cast<double>(read_bytes - prev_read_bytes_) / dt;
    s.io_write_bytes_per_sec =
        static_cast<double>(write_bytes - prev_write_bytes_) / dt;
    for (std::size_t i = 0; i < loads.size(); ++i) {
      const std::uint64_t prev =
          i < prev_busy_.size() ? prev_busy_[i] : 0;
      const double busy =
          static_cast<double>(loads[i].busy_micros - prev) /
          static_cast<double>(now_micros - prev_at_);
      s.shard_busy_fraction[i] = busy < 0.0 ? 0.0 : (busy > 1.0 ? 1.0 : busy);
    }
  }

  primed_ = true;
  prev_at_ = now_micros;
  prev_updates_ = updates;
  prev_queries_ = queries;
  prev_throttles_ = throttles;
  prev_read_bytes_ = read_bytes;
  prev_write_bytes_ = write_bytes;
  prev_busy_.resize(loads.size());
  for (std::size_t i = 0; i < loads.size(); ++i) {
    prev_busy_[i] = loads[i].busy_micros;
  }

  g_updates_->set(s.update_ops_per_sec);
  g_queries_->set(s.queries_per_sec);
  g_throttles_->set(s.throttles_per_sec);
  g_read_bytes_->set(s.io_read_bytes_per_sec);
  g_write_bytes_->set(s.io_write_bytes_per_sec);
  for (std::size_t i = 0; i < g_busy_.size(); ++i) {
    g_busy_[i]->set(i < s.shard_busy_fraction.size()
                        ? s.shard_busy_fraction[i]
                        : 0.0);
  }

  last_ = s;
  return s;
}

RateSample MetricsPoller::last() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return last_;
}

}  // namespace backlog::service
