// Service-level metrics for the multi-tenant volume manager.
//
// Each hosted volume accumulates a TenantStats on its owning shard thread
// (single-writer, no synchronization); VolumeManager::stats() gathers
// snapshots by running a task on every shard and merges them into a
// ServiceStats: per-tenant latency histograms for the three service verbs
// (update batches / consistency points / queries), maintenance accounting,
// and the volume's IoStats, plus a service-wide total.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "storage/env.hpp"

namespace backlog::service {

/// One exported histogram bucket: `count` observations at most `le_micros`
/// long (non-cumulative; the Prometheus encoder accumulates).
struct HistogramBucket {
  std::uint64_t le_micros = 0;
  std::uint64_t count = 0;
};

/// Log2-bucketed latency histogram (microseconds). record() is O(1); the
/// quantile is the upper bound of the bucket containing it, so reported
/// percentiles are conservative (never under-estimated) within a factor of 2.
class LatencyHistogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record(std::uint64_t micros) noexcept {
    ++count_;
    sum_micros_ += micros;
    max_micros_ = std::max(max_micros_, micros);
    ++buckets_[bucket_of(micros)];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum_micros() const noexcept { return sum_micros_; }
  [[nodiscard]] std::uint64_t max_micros() const noexcept { return max_micros_; }
  [[nodiscard]] double mean_micros() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_micros_) / count_;
  }

  /// Quantile `q` in (0, 1], linearly interpolated within the winning
  /// bucket (histogram_quantile semantics): the bucket holding the q-th
  /// observation is found by cumulative count, then the estimate walks from
  /// the bucket's lower bound toward its upper bound by the observation's
  /// rank within the bucket. The upper bound is clamped to max_micros(), so
  /// the top bucket interpolates toward the recorded maximum rather than
  /// its power-of-two ceiling. (Earlier revisions returned the raw bucket
  /// upper bound, which over-reported p50/p95/p99 by up to 2× for coarse
  /// buckets.) 0 if empty.
  [[nodiscard]] std::uint64_t quantile_micros(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count_)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] == 0) continue;
      cum += buckets_[i];
      if (cum < want) continue;
      // Bucket i holds [2^(i-1)+1 .. 2^i] (bucket 0: exactly 0..1 µs).
      const std::uint64_t lo = i == 0 ? 0 : bucket_upper_micros(i - 1);
      // max_micros_ lives in the highest non-empty bucket, so the clamp
      // only ever tightens that bucket; lower buckets keep their 2^i bound.
      std::uint64_t hi = std::min(bucket_upper_micros(i), max_micros_);
      if (hi < lo) hi = lo;
      const std::uint64_t rank_in_bucket = want - (cum - buckets_[i]);
      const double frac = static_cast<double>(rank_in_bucket) /
                          static_cast<double>(buckets_[i]);
      return lo + static_cast<std::uint64_t>(
                      frac * static_cast<double>(hi - lo) + 0.5);
    }
    return max_micros_;
  }

  /// Convenience percentile accessors (same interpolated semantics as
  /// quantile_micros) — the canonical spellings for bench rows, CLI tables
  /// and the metrics JSON export.
  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile_micros(0.50); }
  [[nodiscard]] std::uint64_t p95() const noexcept { return quantile_micros(0.95); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile_micros(0.99); }

  void merge(const LatencyHistogram& o) noexcept {
    count_ += o.count_;
    sum_micros_ += o.sum_micros_;
    max_micros_ = std::max(max_micros_, o.max_micros_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  }

  /// Non-empty buckets as (upper bound, count) pairs, ascending. Shared by
  /// the Prometheus histogram encoder and the bench JSONROW rows so both
  /// export the exact recorded distribution instead of recomputed quantiles.
  [[nodiscard]] std::vector<HistogramBucket> to_buckets() const {
    std::vector<HistogramBucket> out;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      if (buckets_[i] != 0) out.push_back({bucket_upper_micros(i), buckets_[i]});
    }
    return out;
  }

  /// Scrape-side ingestion for MetricsRegistry: fold a raw per-bucket count
  /// (indexes match bucket_of) and a slot's sum/max into this histogram.
  void ingest_bucket(std::size_t bucket, std::uint64_t n) noexcept {
    buckets_[std::min(bucket, buckets_.size() - 1)] += n;
    count_ += n;
  }
  void ingest_sum_max(std::uint64_t sum_micros, std::uint64_t max_micros) noexcept {
    sum_micros_ += sum_micros;
    max_micros_ = std::max(max_micros_, max_micros);
  }

  /// Index of the bucket an observation lands in (public: MetricsRegistry's
  /// per-slot histograms bucket with the same function so scrape-side
  /// ingest_bucket round-trips exactly).
  static std::size_t bucket_of(std::uint64_t micros) noexcept {
    if (micros <= 1) return 0;
    return std::min<std::size_t>(
        63, static_cast<std::size_t>(64 - std::countl_zero(micros - 1)));
  }

  /// Inclusive upper bound of bucket `i` in microseconds (bucket 0: 1 µs).
  static std::uint64_t bucket_upper_micros(std::size_t i) noexcept {
    return i >= 63 ? UINT64_MAX : (1ull << i);
  }

 private:
  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_micros_ = 0;
  std::uint64_t max_micros_ = 0;
};

/// Per-tenant service metrics. Owned and updated exclusively by the tenant's
/// shard thread; copied wholesale into snapshots.
struct TenantStats {
  std::size_t shard = 0;
  std::uint64_t updates = 0;             ///< add/remove ops applied
  std::uint64_t batches = 0;             ///< apply() calls executed
  std::uint64_t cps = 0;
  std::uint64_t queries = 0;
  std::uint64_t snapshots = 0;           ///< take_snapshot verbs committed
  std::uint64_t clones = 0;              ///< lines branched (intra + clone_volume)
  std::uint64_t snapshot_deletes = 0;
  std::uint64_t migrations = 0;          ///< completed shard handoffs
  std::uint64_t maintenance_runs = 0;
  std::uint64_t maintenance_skipped = 0; ///< bg probes below threshold / WS busy
  // QoS admission counters (accumulated on API threads by the tenant's
  // gate, stamped into the snapshot by stats()).
  std::uint64_t throttle_queued = 0;     ///< ops that waited for tokens
  std::uint64_t throttle_rejected = 0;   ///< ops refused with kThrottled
  // Copy-on-write ownership gauges, resolved against the service's shared
  // FileManifest at snapshot time: how many of the volume's durable bytes
  // are hard-linked into other volumes (clone sharing) vs owned alone.
  std::uint64_t owned_bytes = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t shared_files = 0;
  LatencyHistogram update_batch_micros;
  LatencyHistogram cp_micros;
  LatencyHistogram query_micros;
  LatencyHistogram maintenance_micros;
  /// Submission-to-execution delay of every foreground task — shard queue
  /// time plus any QoS gate wait. The verb histograms above measure on-shard
  /// execution only, so this is where a noisy neighbour (or a throttle)
  /// becomes visible to monitoring.
  LatencyHistogram queue_wait_micros;
  /// QoS-gate wait alone (pacer hold time of throttle-queued ops). Only
  /// populated while tracing is enabled — the span machinery stamps the
  /// admit time; with tracing off the gate wait stays folded into
  /// queue_wait_micros.
  LatencyHistogram gate_wait_micros;
  storage::IoStats io;                   ///< volume Env counters at snapshot

  void merge(const TenantStats& o) noexcept {
    updates += o.updates;
    batches += o.batches;
    cps += o.cps;
    queries += o.queries;
    snapshots += o.snapshots;
    clones += o.clones;
    snapshot_deletes += o.snapshot_deletes;
    migrations += o.migrations;
    maintenance_runs += o.maintenance_runs;
    maintenance_skipped += o.maintenance_skipped;
    throttle_queued += o.throttle_queued;
    throttle_rejected += o.throttle_rejected;
    owned_bytes += o.owned_bytes;
    shared_bytes += o.shared_bytes;
    shared_files += o.shared_files;
    update_batch_micros.merge(o.update_batch_micros);
    cp_micros.merge(o.cp_micros);
    query_micros.merge(o.query_micros);
    maintenance_micros.merge(o.maintenance_micros);
    queue_wait_micros.merge(o.queue_wait_micros);
    gate_wait_micros.merge(o.gate_wait_micros);
    io += o.io;
  }
};

/// Aggregated service snapshot: one row per tenant plus the merged total
/// (IoStats summed across the per-volume Envs).
struct ServiceStats {
  std::map<std::string, TenantStats> tenants;
  TenantStats total;
};

}  // namespace backlog::service
