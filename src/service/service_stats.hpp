// Service-level metrics for the multi-tenant volume manager.
//
// Each hosted volume accumulates a TenantStats on its owning shard thread
// (single-writer, no synchronization); VolumeManager::stats() gathers
// snapshots by running a task on every shard and merges them into a
// ServiceStats: per-tenant latency histograms for the three service verbs
// (update batches / consistency points / queries), maintenance accounting,
// and the volume's IoStats, plus a service-wide total.
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <string>

#include "storage/env.hpp"

namespace backlog::service {

/// Log2-bucketed latency histogram (microseconds). record() is O(1); the
/// quantile is the upper bound of the bucket containing it, so reported
/// percentiles are conservative (never under-estimated) within a factor of 2.
class LatencyHistogram {
 public:
  void record(std::uint64_t micros) noexcept {
    ++count_;
    sum_micros_ += micros;
    max_micros_ = std::max(max_micros_, micros);
    ++buckets_[bucket_of(micros)];
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum_micros() const noexcept { return sum_micros_; }
  [[nodiscard]] std::uint64_t max_micros() const noexcept { return max_micros_; }
  [[nodiscard]] double mean_micros() const noexcept {
    return count_ == 0 ? 0.0 : static_cast<double>(sum_micros_) / count_;
  }

  /// Upper bound of the bucket holding quantile `q` in (0, 1]; 0 if empty.
  [[nodiscard]] std::uint64_t quantile_micros(double q) const noexcept {
    if (count_ == 0) return 0;
    const auto want = std::max<std::uint64_t>(
        1, static_cast<std::uint64_t>(q * static_cast<double>(count_)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < buckets_.size(); ++i) {
      cum += buckets_[i];
      if (cum >= want) {
        // Bucket i holds [2^(i-1)+1 .. 2^i] (bucket 0: exactly 0..1 µs).
        const std::uint64_t hi = i >= 63 ? UINT64_MAX : (1ull << i);
        return std::min(hi, max_micros_);
      }
    }
    return max_micros_;
  }

  void merge(const LatencyHistogram& o) noexcept {
    count_ += o.count_;
    sum_micros_ += o.sum_micros_;
    max_micros_ = std::max(max_micros_, o.max_micros_);
    for (std::size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += o.buckets_[i];
  }

 private:
  static std::size_t bucket_of(std::uint64_t micros) noexcept {
    if (micros <= 1) return 0;
    return std::min<std::size_t>(
        63, static_cast<std::size_t>(64 - std::countl_zero(micros - 1)));
  }

  std::array<std::uint64_t, 64> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_micros_ = 0;
  std::uint64_t max_micros_ = 0;
};

/// Per-tenant service metrics. Owned and updated exclusively by the tenant's
/// shard thread; copied wholesale into snapshots.
struct TenantStats {
  std::size_t shard = 0;
  std::uint64_t updates = 0;             ///< add/remove ops applied
  std::uint64_t batches = 0;             ///< apply() calls executed
  std::uint64_t cps = 0;
  std::uint64_t queries = 0;
  std::uint64_t snapshots = 0;           ///< take_snapshot verbs committed
  std::uint64_t clones = 0;              ///< lines branched (intra + clone_volume)
  std::uint64_t snapshot_deletes = 0;
  std::uint64_t migrations = 0;          ///< completed shard handoffs
  std::uint64_t maintenance_runs = 0;
  std::uint64_t maintenance_skipped = 0; ///< bg probes below threshold / WS busy
  // QoS admission counters (accumulated on API threads by the tenant's
  // gate, stamped into the snapshot by stats()).
  std::uint64_t throttle_queued = 0;     ///< ops that waited for tokens
  std::uint64_t throttle_rejected = 0;   ///< ops refused with kThrottled
  // Copy-on-write ownership gauges, resolved against the service's shared
  // FileManifest at snapshot time: how many of the volume's durable bytes
  // are hard-linked into other volumes (clone sharing) vs owned alone.
  std::uint64_t owned_bytes = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t shared_files = 0;
  LatencyHistogram update_batch_micros;
  LatencyHistogram cp_micros;
  LatencyHistogram query_micros;
  LatencyHistogram maintenance_micros;
  /// Submission-to-execution delay of every foreground task — shard queue
  /// time plus any QoS gate wait. The verb histograms above measure on-shard
  /// execution only, so this is where a noisy neighbour (or a throttle)
  /// becomes visible to monitoring.
  LatencyHistogram queue_wait_micros;
  storage::IoStats io;                   ///< volume Env counters at snapshot

  void merge(const TenantStats& o) noexcept {
    updates += o.updates;
    batches += o.batches;
    cps += o.cps;
    queries += o.queries;
    snapshots += o.snapshots;
    clones += o.clones;
    snapshot_deletes += o.snapshot_deletes;
    migrations += o.migrations;
    maintenance_runs += o.maintenance_runs;
    maintenance_skipped += o.maintenance_skipped;
    throttle_queued += o.throttle_queued;
    throttle_rejected += o.throttle_rejected;
    owned_bytes += o.owned_bytes;
    shared_bytes += o.shared_bytes;
    shared_files += o.shared_files;
    update_batch_micros.merge(o.update_batch_micros);
    cp_micros.merge(o.cp_micros);
    query_micros.merge(o.query_micros);
    maintenance_micros.merge(o.maintenance_micros);
    queue_wait_micros.merge(o.queue_wait_micros);
    io.page_reads += o.io.page_reads;
    io.page_writes += o.io.page_writes;
    io.bytes_read += o.io.bytes_read;
    io.bytes_written += o.io.bytes_written;
    io.files_created += o.io.files_created;
    io.files_deleted += o.io.files_deleted;
  }
};

/// Aggregated service snapshot: one row per tenant plus the merged total
/// (IoStats summed across the per-volume Envs).
struct ServiceStats {
  std::map<std::string, TenantStats> tenants;
  TenantStats total;
};

}  // namespace backlog::service
