#include "service/maintenance_scheduler.hpp"

namespace backlog::service {

MaintenanceScheduler::MaintenanceScheduler(VolumeManager& vm,
                                           MaintenancePolicy policy)
    : vm_(vm),
      policy_(policy),
      metric_slot_(vm.metrics().slots() - 1),
      m_sweeps_(&vm.metrics().counter("backlog_maintenance_sweeps_total",
                                      "Scheduler sweeps over the tenant list")),
      m_probes_(&vm.metrics().counter(
          "backlog_maintenance_probes_total",
          "Background maintenance probes handed to shards")),
      thread_([this] { loop(); }) {}

MaintenanceScheduler::~MaintenanceScheduler() {
  stop();
  if (thread_.joinable()) thread_.join();
}

void MaintenanceScheduler::stop() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
}

void MaintenanceScheduler::loop() {
  std::unique_lock lock(mu_);
  while (!stop_) {
    cv_.wait_for(lock, policy_.poll_interval, [&] { return stop_; });
    if (stop_) break;
    lock.unlock();

    const std::vector<std::string> tenants = vm_.tenants();
    if (!tenants.empty()) {
      std::size_t handed_out = 0;
      const std::size_t start = cursor_ % tenants.size();
      for (std::size_t i = 0;
           i < tenants.size() && handed_out < policy_.budget_per_sweep; ++i) {
        const std::size_t idx = (start + i) % tenants.size();
        if (vm_.schedule_maintenance(tenants[idx], policy_)) {
          ++handed_out;
          scheduled_.fetch_add(1, std::memory_order_relaxed);
          m_probes_->add(metric_slot_);
          // Next sweep resumes after the tenant just served.
          cursor_ = idx + 1;
        }
      }
      if (handed_out == 0) cursor_ = start + 1;
    }
    sweeps_.fetch_add(1, std::memory_order_relaxed);
    m_sweeps_->add(metric_slot_);

    lock.lock();
  }
}

}  // namespace backlog::service
