// Per-shard task queue of the volume service's worker pool.
//
// Foreground work is organized into *flows* (one flow per hosted volume)
// scheduled by weighted stride scheduling: each flow carries a virtual pass
// time advanced by 1/weight per dequeued task, and the dequeue always serves
// the backlogged flow with the smallest pass. Within a flow tasks are
// strictly FIFO — the service's per-tenant ordering guarantee — while across
// flows a tenant with a thousand queued tasks shares the shard with a tenant
// that has one: the weighted-fair half of per-tenant QoS (see qos.hpp; the
// other half, token-bucket admission, runs before tasks ever reach this
// queue). A flow that drains is forgotten; when it reappears it joins at the
// current virtual time, so idling earns no credit and a returning flow
// can't starve the shard.
//
// Background (maintenance) tasks stay in a single low-priority deque:
// foreground work always runs first, but a 1-in-N anti-starvation rule
// dispatches one background task after N consecutive foreground tasks while
// background work is pending, so compaction makes progress under sustained
// load without ever stalling the foreground path for long.
//
// Hot-path shape (the batching PR): tasks are InlineTask — no allocation on
// push for the service's dispatch wrappers — and the storage is RingDeque,
// which reuses its slots at steady state (see task.hpp). The consumer
// drains in *chunks*: pop_many() moves up to K runnable tasks out under one
// lock acquisition, selecting per task exactly as pop() would (stride
// fairness and the background anti-starvation rule are applied inside the
// chunk, so chunking changes the locking, never the schedule), and the
// worker runs the chunk without re-locking. One mutex round-trip then costs
// 1/K of a task instead of a whole one.
//
// Producers are arbitrary API threads and the MaintenanceScheduler; the
// single consumer is the shard's worker thread (MPSC), which is what lets
// hosted BacklogDb instances stay lock-free. During a tenant migration,
// tasks that race the handoff are parked at the VolumeManager routing layer
// and replayed here in submission order — a queue never sees two shards'
// worth of one tenant's work interleaved.
#pragma once

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

#include "service/task.hpp"

namespace backlog::service {

using Task = InlineTask;

class ShardQueue {
 public:
  /// `bg_starvation_limit`: dispatch a pending background task after this
  /// many consecutive foreground tasks.
  explicit ShardQueue(std::size_t bg_starvation_limit = 8)
      : limit_(bg_starvation_limit == 0 ? 1 : bg_starvation_limit) {}

  /// Enqueue a foreground task on flow `flow` (0 = the shared default flow).
  /// `weight` is the flow's current fair-share weight; the latest push wins,
  /// so a QoS change applies from the next dequeue on.
  void push(Task t, std::uint64_t flow = 0, std::uint32_t weight = 1) {
    {
      std::lock_guard lock(mu_);
      Flow& f = flows_[flow];
      if (f.q.empty()) {
        // A (re)joining flow keeps its old finish tag if the shard's
        // virtual time hasn't caught up yet — a flow that just ran must
        // not leapfrog a backlogged neighbour by briefly going empty (the
        // sequential-caller ping-pong) — and otherwise starts at the
        // current virtual time: no credit for idling.
        f.pass = std::max(f.pass, virtual_time_);
      }
      f.weight = weight == 0 ? 1 : weight;
      f.q.push_back(std::move(t));
      ++fg_size_;
      depth_.store(fg_size_ + bg_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  void push_background(Task t) {
    {
      std::lock_guard lock(mu_);
      bg_.push_back(std::move(t));
      depth_.store(fg_size_ + bg_.size(), std::memory_order_relaxed);
    }
    cv_.notify_one();
  }

  /// Blocks until a task is available; returns an empty task only once the
  /// queue is closed *and* fully drained (pending tasks still run).
  Task pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || fg_size_ > 0 || !bg_.empty(); });
    Task t = take_locked();
    depth_.store(fg_size_ + bg_.size(), std::memory_order_relaxed);
    return t;
  }

  /// Chunked dequeue: blocks like pop(), then moves up to `max` runnable
  /// tasks into `out` under the one lock acquisition. Returns the number
  /// moved — 0 only once the queue is closed and drained. Task selection is
  /// per-task identical to repeated pop() calls.
  std::size_t pop_many(std::vector<Task>& out, std::size_t max) {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || fg_size_ > 0 || !bg_.empty(); });
    std::size_t n = 0;
    while (n < max) {
      Task t = take_locked();
      if (!t) break;
      out.push_back(std::move(t));
      ++n;
    }
    depth_.store(fg_size_ + bg_.size(), std::memory_order_relaxed);
    return n;
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  /// Pending tasks (foreground + background) — the balancer's queue-depth
  /// load signal.
  [[nodiscard]] std::size_t depth() const {
    std::lock_guard lock(mu_);
    return fg_size_ + bg_.size();
  }

  /// Lock-free approximation of depth() (one relaxed load), for hot-path
  /// heuristics: the submit path reads it to decide whether a task will
  /// actually wait (and so whether the queue-wait stamp is worth taking).
  /// Racy by nature — a stats heuristic, never a scheduling input.
  [[nodiscard]] std::size_t depth_approx() const noexcept {
    return depth_.load(std::memory_order_relaxed);
  }

 private:
  struct Flow {
    RingDeque<Task> q;
    double pass = 0;
    std::uint32_t weight = 1;
  };

  /// One scheduling decision (caller holds mu_): a background task when the
  /// anti-starvation rule fires or no foreground work exists, else the next
  /// task of the smallest-pass flow. Empty task = nothing runnable.
  Task take_locked() {
    const bool take_bg =
        !bg_.empty() && (fg_size_ == 0 || fg_since_bg_ >= limit_);
    if (take_bg) {
      fg_since_bg_ = 0;
      return bg_.pop_front();
    }
    if (fg_size_ == 0) return {};
    ++fg_since_bg_;
    // Serve the backlogged flow with the smallest pass; ties go to the
    // first flow in id order. Empty flows linger until virtual time
    // passes their finish tag (see push) and are purged here. Linear
    // scan: the map holds at most the volumes of one shard, typically a
    // handful.
    auto best = flows_.end();
    for (auto it = flows_.begin(); it != flows_.end();) {
      if (it->second.q.empty()) {
        if (it->second.pass <= virtual_time_) {
          it = flows_.erase(it);
          continue;
        }
      } else if (best == flows_.end() ||
                 it->second.pass < best->second.pass) {
        best = it;
      }
      ++it;
    }
    Flow& f = best->second;
    virtual_time_ = std::max(virtual_time_, f.pass);
    f.pass += 1.0 / f.weight;
    --fg_size_;
    return f.q.pop_front();
  }

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::uint64_t, Flow> flows_;  // only flows with queued work
  RingDeque<Task> bg_;
  std::size_t fg_size_ = 0;
  std::atomic<std::size_t> depth_{0};  // fg + bg mirror for depth_approx()
  double virtual_time_ = 0;
  std::size_t fg_since_bg_ = 0;
  std::size_t limit_;
  bool closed_ = false;
};

}  // namespace backlog::service
