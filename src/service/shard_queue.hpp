// Per-shard task queue of the volume service's worker pool.
//
// Two priorities: foreground (updates, consistency points, queries) and
// background (maintenance probes). Foreground work always runs first, but a
// 1-in-N anti-starvation rule dispatches one background task after N
// consecutive foreground tasks while background work is pending, so
// compaction makes progress under sustained load without ever stalling the
// foreground path for long. Producers are arbitrary API threads and the
// MaintenanceScheduler; the single consumer is the shard's worker thread
// (MPSC), which is what lets hosted BacklogDb instances stay lock-free.
// During a tenant migration, tasks that race the handoff are parked at the
// VolumeManager routing layer and replayed here in submission order — a
// queue never sees two shards' worth of one tenant's work interleaved.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <utility>

namespace backlog::service {

using Task = std::function<void()>;

class ShardQueue {
 public:
  /// `bg_starvation_limit`: dispatch a pending background task after this
  /// many consecutive foreground tasks.
  explicit ShardQueue(std::size_t bg_starvation_limit = 8)
      : limit_(bg_starvation_limit == 0 ? 1 : bg_starvation_limit) {}

  void push(Task t) {
    {
      std::lock_guard lock(mu_);
      fg_.push_back(std::move(t));
    }
    cv_.notify_one();
  }

  void push_background(Task t) {
    {
      std::lock_guard lock(mu_);
      bg_.push_back(std::move(t));
    }
    cv_.notify_one();
  }

  /// Blocks until a task is available; returns an empty function only once
  /// the queue is closed *and* fully drained (pending tasks still run).
  Task pop() {
    std::unique_lock lock(mu_);
    cv_.wait(lock, [&] { return closed_ || !fg_.empty() || !bg_.empty(); });
    const bool take_bg =
        !bg_.empty() && (fg_.empty() || fg_since_bg_ >= limit_);
    if (take_bg) {
      fg_since_bg_ = 0;
      Task t = std::move(bg_.front());
      bg_.pop_front();
      return t;
    }
    if (!fg_.empty()) {
      ++fg_since_bg_;
      Task t = std::move(fg_.front());
      fg_.pop_front();
      return t;
    }
    return {};  // closed and drained
  }

  void close() {
    {
      std::lock_guard lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Task> fg_, bg_;
  std::size_t fg_since_bg_ = 0;
  std::size_t limit_;
  bool closed_ = false;
};

}  // namespace backlog::service
