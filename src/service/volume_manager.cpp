#include "service/volume_manager.hpp"

#include <sys/stat.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <thread>

#include "util/clock.hpp"

namespace backlog::service {

using util::now_micros;

namespace {

/// Clone-in-progress staging directories: `<dst>.cloning` commits to `<dst>`
/// by an atomic rename; anything still carrying the suffix at construction
/// is a crashed clone and is discarded.
constexpr char kCloneStagingSuffix[] = ".cloning";

void validate_tenant_name(const std::string& tenant) {
  if (tenant.empty())
    throw std::invalid_argument("tenant name must not be empty");
  if (tenant.size() > 255)
    throw std::invalid_argument("tenant name too long: " + tenant);
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok)
      throw std::invalid_argument(
          "tenant name must be [A-Za-z0-9._-] (it names a directory): " +
          tenant);
  }
  if (tenant == "." || tenant == "..")
    throw std::invalid_argument("tenant name must not be a dot directory");
  if (tenant.ends_with(kCloneStagingSuffix))
    throw std::invalid_argument(
        "tenant name must not end with the reserved clone-staging suffix "
        "'.cloning': " +
        tenant);
  // The shared-file refcount table and its rename buddy live directly in
  // the service root; a volume directory with either name would make every
  // FILEREFS persist fail with EISDIR.
  if (tenant == "FILEREFS" || tenant == "FILEREFS.tmp")
    throw std::invalid_argument(
        "tenant name is reserved for the shared-file manifest: " + tenant);
}

/// A name component unique across every volume instance that shares a
/// FileManifest (see BacklogOptions::file_tag): a process-wide random nonce
/// mixed with an instance counter. Uniqueness is what matters — stability
/// across reopens is not (old files keep their recorded names, only newly
/// minted runs carry the new tag).
std::string make_file_tag() {
  static const std::uint64_t nonce = [] {
    std::random_device rd;
    return (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }();
  static std::atomic<std::uint64_t> counter{0};
  const std::uint64_t v =
      nonce ^ (0x9e3779b97f4a7c15ULL *
               (counter.fetch_add(1, std::memory_order_relaxed) + 1));
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

ServiceOptions validated(ServiceOptions options) {
  if (options.shards == 0)
    throw std::invalid_argument("ServiceOptions: shards must be > 0");
  if (options.root.empty())
    throw std::invalid_argument("ServiceOptions: root must be set");
  if (options.dequeue_chunk == 0)
    throw std::invalid_argument(
        "ServiceOptions: dequeue_chunk must be > 0 (1 = unchunked dequeue)");
  if (!options.cache.enable_block_cache &&
      options.db_options.cache_pages == 0)
    throw std::invalid_argument(
        "ServiceOptions: with the shared block cache disabled, "
        "db_options.cache_pages must be > 0 (a hosted volume always serves "
        "queries through some cache)");
  return options;
}

/// Clears the volume's maintenance-pending flag on every exit path of a
/// background probe.
struct PendingGuard {
  std::atomic<bool>& flag;
  ~PendingGuard() { flag.store(false, std::memory_order_release); }
};

}  // namespace

bool VolumeManager::flush_buffered_cp(Volume& v) {
  if (v.db->quick_stats().ws_entries == 0) return false;
  throw_if_wounded(v);
  const std::uint64_t t0 = now_micros();
  v.db->consistency_point();
  ++v.stats.cps;
  const std::uint64_t d = now_micros() - t0;
  v.stats.cp_micros.record(d);
  hot_.cps->add(metric_slot());
  hot_.cp_micros->record(metric_slot(), d);
  if (v.wal) {
    v.wal->reset();
    wal_point("wal_truncated");
  }
  return true;
}

VolumeManager::VolumeManager(ServiceOptions options)
    : options_(validated(std::move(options))),
      shared_files_(options_.root),
      block_cache_(options_.cache.enable_block_cache
                       ? options_.cache.capacity_bytes
                       : 0,
                   options_.cache.block_cache_shards),
      metrics_(options_.shards + 1),  // one slot per shard + the API slot
      pool_(options_.shards, options_.bg_starvation_limit,
            options_.dequeue_chunk, options_.pin_shards) {
  trace_.sample_every.store(options_.trace_sample_every,
                            std::memory_order_relaxed);
  trace_.slow_op_micros.store(options_.slow_op_micros,
                              std::memory_order_relaxed);
  telemetry_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i) {
    telemetry_.push_back(std::make_unique<ShardTelemetry>(
        options_.trace_ring_size, options_.slow_op_ring_size));
  }
  // The hot-path counter handles (see README "Observability" for the
  // catalog). Registered once here; the verbs bump them with one relaxed
  // store per op.
  hot_.updates = &metrics_.counter("backlog_updates_total",
                                   "Add/remove ops applied");
  hot_.batches = &metrics_.counter("backlog_update_batches_total",
                                   "Update batches executed");
  hot_.queries = &metrics_.counter("backlog_queries_total",
                                   "Owner queries served");
  hot_.cps = &metrics_.counter("backlog_cps_total",
                               "Consistency points committed");
  hot_.snapshots = &metrics_.counter("backlog_snapshots_total",
                                     "Snapshots taken");
  hot_.migrations = &metrics_.counter("backlog_migrations_total",
                                      "Completed live shard handoffs");
  hot_.maintenance_runs = &metrics_.counter(
      "backlog_maintenance_runs_total", "Maintenance passes executed");
  hot_.throttle_queued = &metrics_.counter(
      "backlog_throttle_queued_total", "Ops held by a QoS gate for tokens");
  hot_.throttle_rejected = &metrics_.counter(
      "backlog_throttle_rejected_total",
      "Ops refused with kThrottled (QoS wait queue full)");
  hot_.trace_spans = &metrics_.counter("backlog_trace_spans_total",
                                       "Sampled spans recorded");
  hot_.trace_evictions = &metrics_.counter(
      "backlog_trace_evictions_total",
      "Unread spans overwritten in a full trace ring");
  hot_.slow_ops = &metrics_.counter("backlog_slow_ops_total",
                                    "Ops at or over slow_op_micros");
  hot_.shard_kills = &metrics_.counter(
      "backlog_shard_kills_total", "Shard workers stopped by fault injection");
  hot_.shard_restarts = &metrics_.counter(
      "backlog_shard_restarts_total",
      "Shard workers restarted after fault injection");
  hot_.wal_records = &metrics_.counter("backlog_wal_records_total",
                                       "WAL records appended");
  hot_.wal_syncs = &metrics_.counter(
      "backlog_wal_syncs_total",
      "WAL fsync barriers (group commit counts one per dirty volume swept)");
  hot_.wal_replayed_ops = &metrics_.counter(
      "backlog_wal_replayed_ops_total",
      "Update ops replayed from WAL tails at volume open");
  hot_.volumes_wounded = &metrics_.counter(
      "backlog_volumes_wounded_total",
      "Volumes flipped read-only by persistent write errors");
  hot_.update_batch_micros = &metrics_.histogram(
      "backlog_update_batch_micros", "On-shard update-batch execution time");
  hot_.query_micros = &metrics_.histogram("backlog_query_micros",
                                          "On-shard query execution time");
  hot_.cp_micros = &metrics_.histogram("backlog_cp_micros",
                                       "Consistency-point execution time");
  hot_.queue_wait_micros = &metrics_.histogram(
      "backlog_queue_wait_micros",
      "Submit-to-execute delay (queue plus gate wait) of waiting ops");
  hot_.gate_wait_micros = &metrics_.histogram(
      "backlog_gate_wait_micros",
      "QoS gate hold time of throttled ops (populated while tracing)");
  // Block-cache counters live inside BlockCache as relaxed atomics (many
  // writers); the registry exports them through callback gauges evaluated
  // at scrape time instead of mirroring them on the hot path. Monotonic
  // except entries/bytes (and all reset by `backlogctl cache clear`).
  metrics_
      .gauge("backlog_block_cache_hits", "Shared block cache page hits")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().hits);
      });
  metrics_
      .gauge("backlog_block_cache_misses",
             "Shared block cache page misses (each one storage read)")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().misses);
      });
  metrics_
      .gauge("backlog_block_cache_evictions",
             "Pages evicted from the shared block cache (LRU)")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().evictions);
      });
  metrics_
      .gauge("backlog_block_cache_invalidations",
             "Pages dropped because their file's last link was removed")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().invalidations);
      });
  metrics_
      .gauge("backlog_block_cache_entries",
             "Pages currently resident in the shared block cache")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().entries);
      });
  metrics_
      .gauge("backlog_block_cache_bytes",
             "Bytes currently resident in the shared block cache")
      .set_callback([this] {
        return static_cast<double>(block_cache_.stats().bytes);
      });
  // Graceful-degradation visibility: how many hosted volumes are currently
  // read-only after persistent write errors. Evaluated at scrape time from
  // the per-volume flags (cheap: one relaxed load per volume under mu_).
  metrics_
      .gauge("backlog_wounded_volumes",
             "Hosted volumes currently read-only after write errors")
      .set_callback([this] {
        std::lock_guard lock(mu_);
        double n = 0;
        for (const auto& [name, vol] : volumes_) {
          if (vol->wounded.load(std::memory_order_relaxed)) ++n;
        }
        return n;
      });
  commit_.reserve(options_.shards);
  for (std::size_t i = 0; i < options_.shards; ++i)
    commit_.push_back(std::make_unique<ShardCommit>());
  recover_clone_staging();
}

void VolumeManager::finish_trace(Volume& v, const TraceCtx& ctx,
                                 std::uint64_t t_exec,
                                 std::uint64_t io_before_micros) noexcept {
  const std::uint64_t t_end = now_micros();
  const std::size_t shard = WorkerPool::current_shard();
  if (shard >= telemetry_.size()) return;  // defensive: not a pool thread
  TraceSpan s;
  s.id = ctx.id;
  s.verb = ctx.verb;
  s.ops = ctx.ops;
  s.t_submit = ctx.t_submit;
  s.submit_shard = ctx.submit_shard;
  s.exec_shard = static_cast<std::uint16_t>(shard);
  s.migrated = shard != ctx.submit_shard;
  // Stage boundaries (clamped monotone so a racy stamp can't underflow):
  // gate + queue + execute telescopes back to exactly t_end - t_submit.
  const std::uint64_t admitted =
      ctx.t_admit == 0 ? ctx.t_submit : std::max(ctx.t_admit, ctx.t_submit);
  s.gate_wait_micros = admitted - ctx.t_submit;
  s.queue_wait_micros = t_exec >= admitted ? t_exec - admitted : 0;
  s.execute_micros = t_end >= t_exec ? t_end - t_exec : 0;
  const std::uint64_t io_now = v.env ? v.env->stats().io_micros
                                     : io_before_micros;
  s.io_micros = std::min(io_now - io_before_micros, s.execute_micros);
  s.set_tenant(v.tenant);
  if (ctx.t_admit != 0) {
    v.stats.gate_wait_micros.record(s.gate_wait_micros);
    hot_.gate_wait_micros->record(shard, s.gate_wait_micros);
  }
  ShardTelemetry& tel = *telemetry_[shard];
  if (ctx.sampled) {
    hot_.trace_spans->add(shard);
    if (tel.ring.push(s)) hot_.trace_evictions->add(shard);
  }
  const std::uint64_t slow =
      trace_.slow_op_micros.load(std::memory_order_relaxed);
  if (slow != 0 && s.end_to_end_micros() >= slow) {
    s.slow = true;
    hot_.slow_ops->add(shard);
    if (tel.slow.push(s)) hot_.trace_evictions->add(shard);
  }
}

std::vector<TraceSpan> VolumeManager::gather_spans(bool slow) {
  std::vector<TraceSpan> all;
  // Same sequential per-shard pattern as stats(): the snapshot task runs on
  // the ring's owning thread, so the single-writer rings need no locks and
  // the scrape can never block a shard behind another shard's scrape.
  for (std::size_t shard = 0; shard < pool_.size(); ++shard) {
    std::promise<std::vector<TraceSpan>> prom;
    std::future<std::vector<TraceSpan>> fut = prom.get_future();
    pool_.submit(shard, [this, shard, slow, &prom] {
      const ShardTelemetry& tel = *telemetry_[shard];
      prom.set_value(slow ? tel.slow.snapshot() : tel.ring.snapshot());
    });
    std::vector<TraceSpan> spans = fut.get();
    all.insert(all.end(), spans.begin(), spans.end());
  }
  std::sort(all.begin(), all.end(),
            [](const TraceSpan& a, const TraceSpan& b) {
              return a.t_submit != b.t_submit ? a.t_submit < b.t_submit
                                              : a.id < b.id;
            });
  return all;
}

std::vector<TraceSpan> VolumeManager::trace_spans() {
  return gather_spans(/*slow=*/false);
}

std::vector<TraceSpan> VolumeManager::slow_ops() {
  return gather_spans(/*slow=*/true);
}

void VolumeManager::recover_clone_staging() {
  std::vector<std::filesystem::path> volume_dirs;
  bool found_staging = false;
  std::error_code ec;
  for (const auto& de :
       std::filesystem::directory_iterator(options_.root, ec)) {
    if (!de.is_directory()) continue;
    if (de.path().filename().string().ends_with(kCloneStagingSuffix)) {
      // A clone that died before its commit rename. Its contents are hard
      // links into live volumes, so removing them only drops this
      // directory's references — the rebuild below recounts the survivors.
      std::error_code rm_ec;
      std::filesystem::remove_all(de.path(), rm_ec);
      found_staging = true;
    } else {
      volume_dirs.push_back(de.path());
    }
  }
  // FILEREFS may be stale in either direction after a crash (ahead of a
  // clone that never committed, or behind one that did); the committed
  // directories are the truth. Skip the recount only when there is plainly
  // nothing to reconcile (fresh root).
  if (found_staging || !volume_dirs.empty()) shared_files_.rebuild(volume_dirs);
}

core::BacklogOptions VolumeManager::volume_db_options() {
  core::BacklogOptions opts = options_.db_options;
  opts.file_tag = make_file_tag();
  opts.shared_files = &shared_files_;
  // Hosted volumes read through the service-wide block cache (the BacklogDb
  // ctor attaches it to the volume's Env for unlink invalidation); the
  // legacy cache_pages knob only matters when the shared cache is disabled.
  if (options_.cache.enable_block_cache) opts.shared_cache = &block_cache_;
  opts.result_cache_entries = options_.cache.enable_result_cache
                                  ? options_.cache.result_cache_entries
                                  : 0;
  // The durability pipeline's two in-CP injection points ("cp_flushed",
  // "registry_persisted") fire from inside BacklogDb::consistency_point;
  // the service-level points fire through wal_point(). Same hook, so a
  // crash harness sees the full ordered sequence.
  if (options_.wal_checkpoint) opts.checkpoint = options_.wal_checkpoint;
  return opts;
}

void VolumeManager::recover_volume_on_shard(
    Volume& v, const std::filesystem::path& dir,
    const core::BacklogOptions& db_opts) {
  v.env = std::make_unique<storage::Env>(dir);
  // WAL durability is meaningless without real fsyncs: enabling it forces
  // them even when the service otherwise runs unsynced.
  v.env->set_sync(options_.sync_writes || options_.wal_enabled);
  v.env->set_fault_hook(options_.env_fault_hook);
  if (options_.env_prepare) options_.env_prepare(v.tenant, *v.env);
  v.db = std::make_unique<core::BacklogDb>(*v.env, db_opts);
  if (!options_.wal_enabled) return;
  // Replay the WAL tail into the recovered db. Records below the recovered
  // CP are already durable in run files and are skipped; anything at or
  // above it was acked durable but never reached a committed CP. Replayed
  // ops are committed as a consistency point immediately, so the reset
  // below can never drop an acked op.
  core::WalReplayOptions ropts;
  ropts.min_epoch = v.db->current_cp();
  ropts.max_extent_blocks = db_opts.max_extent_blocks;
  const core::WalReplayStats rs = core::Wal::replay(
      *v.env, core::Wal::kDefaultName, ropts,
      [&v](core::Epoch, std::span<const core::Update> ops) {
        v.db->apply_many(ops);
      });
  if (rs.ops_applied != 0) {
    v.db->consistency_point();
    hot_.wal_replayed_ops->add(metric_slot(), rs.ops_applied);
  }
  // Start a fresh, empty log: replayed ops are in runs now, and a rejected
  // torn/corrupt tail is garbage by definition. Deliberately not a
  // "wal_truncated" injection point — recovery truncation is not part of
  // the commit pipeline's ordering, and a crash test dying here could
  // never finish its own recovery.
  v.wal = std::make_unique<core::Wal>(*v.env, core::Wal::kDefaultName);
  v.wal->reset();
}

VolumeManager::~VolumeManager() {
  // Stop the pacer first, then flush every gate: a throttled op still
  // waiting for tokens must reach its shard (and its promise) before the
  // pool drains — stranding promises at teardown would hang callers.
  stop_pacer();
  std::vector<std::shared_ptr<Volume>> vols;
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, vol] : volumes_) vols.push_back(vol);
  }
  for (const auto& vol : vols) vol->gate.clear();
}

void VolumeManager::ensure_pacer() {
  std::lock_guard lock(pacer_mu_);
  if (pacer_.joinable()) return;
  pacer_ = std::thread([this] { pacer_loop(); });
}

void VolumeManager::stop_pacer() {
  {
    std::lock_guard lock(pacer_mu_);
    pacer_stop_ = true;
  }
  pacer_cv_.notify_all();
  if (pacer_.joinable()) pacer_.join();
}

void VolumeManager::pacer_loop() {
  std::unique_lock lock(pacer_mu_);
  while (!pacer_stop_) {
    pacer_cv_.wait_for(lock, options_.qos_pacer_interval,
                       [&] { return pacer_stop_; });
    if (pacer_stop_) break;
    lock.unlock();
    std::vector<std::shared_ptr<Volume>> gated;
    {
      std::lock_guard l(mu_);
      for (const auto& [name, vol] : volumes_) {
        if (vol->gate.gated()) gated.push_back(vol);
      }
    }
    const std::uint64_t now = now_micros();
    for (const auto& vol : gated) vol->gate.drain(now);
    lock.lock();
  }
}

void VolumeManager::set_qos(const std::string& tenant, const TenantQos& qos) {
  validate_qos(qos);
  const std::shared_ptr<Volume> vol = find(tenant);
  vol->gate.configure(qos, now_micros());
  vol->qos_weight.store(qos.weight, std::memory_order_relaxed);
  ensure_pacer();
}

void VolumeManager::clear_qos(const std::string& tenant) {
  const std::shared_ptr<Volume> vol = find(tenant);
  vol->gate.clear();
  vol->qos_weight.store(1, std::memory_order_relaxed);
}

QosSnapshot VolumeManager::qos(const std::string& tenant) const {
  return find(tenant)->gate.snapshot();
}

std::vector<VolumeManager::ShardLoad> VolumeManager::shard_loads() const {
  std::vector<ShardLoad> out;
  out.reserve(pool_.size());
  for (std::size_t i = 0; i < pool_.size(); ++i) {
    out.push_back({i, pool_.queue_depth(i), pool_.latency_ewma_micros(i),
                   pool_.busy_micros(i)});
  }
  return out;
}

std::vector<VolumeManager::VolumePlacement> VolumeManager::placements() const {
  std::vector<VolumePlacement> out;
  std::lock_guard lock(mu_);
  std::shared_lock rlock(routing_mu_);
  out.reserve(volumes_.size());
  for (const auto& [name, vol] : volumes_) {
    out.push_back({name, vol->shard.load(std::memory_order_relaxed),
                   vol->dispatched_ops.load(std::memory_order_relaxed)});
  }
  return out;
}

std::shared_ptr<VolumeManager::Volume> VolumeManager::find(
    const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = volumes_.find(tenant);
  if (it == volumes_.end())
    throw std::invalid_argument("unknown tenant: " + tenant);
  return it->second;
}

bool VolumeManager::has_volume(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  return volumes_.contains(tenant);
}

std::vector<std::string> VolumeManager::tenants() const {
  std::vector<std::string> out;
  std::lock_guard lock(mu_);
  out.reserve(volumes_.size());
  for (const auto& [name, vol] : volumes_) out.push_back(name);
  return out;
}

std::size_t VolumeManager::current_shard(const std::string& tenant) const {
  const std::shared_ptr<Volume> vol = find(tenant);
  std::shared_lock lock(routing_mu_);
  return vol->shard.load(std::memory_order_relaxed);
}

bool VolumeManager::kill_shard(std::size_t shard) {
  if (shard >= pool_.size()) throw std::out_of_range("kill_shard: bad shard");
  const bool killed = pool_.kill_shard(shard);
  if (killed) hot_.shard_kills->add(metric_slot());
  return killed;
}

bool VolumeManager::restart_shard(std::size_t shard) {
  if (shard >= pool_.size())
    throw std::out_of_range("restart_shard: bad shard");
  const bool restarted = pool_.restart_shard(shard);
  if (restarted) hot_.shard_restarts->add(metric_slot());
  return restarted;
}

bool VolumeManager::shard_alive(std::size_t shard) const {
  if (shard >= pool_.size()) throw std::out_of_range("shard_alive: bad shard");
  return pool_.shard_alive(shard);
}

void VolumeManager::dispatch(const std::shared_ptr<Volume>& vol, Task task,
                             bool background) {
  std::shared_lock lock(routing_mu_);
  if (!background)
    vol->dispatched_ops.fetch_add(1, std::memory_order_relaxed);
  if (vol->parked) {
    std::lock_guard pl(vol->park_mu);
    vol->parked_tasks.push_back({std::move(task), background});
    return;
  }
  const std::size_t shard = vol->shard.load(std::memory_order_relaxed);
  if (background) {
    pool_.submit_background(shard, std::move(task));
  } else {
    pool_.submit(shard, std::move(task), vol->flow_id,
                 vol->qos_weight.load(std::memory_order_relaxed));
  }
}

void VolumeManager::open_volume(const std::string& tenant) {
  validate_tenant_name(tenant);
  auto vol = std::make_shared<Volume>();
  vol->tenant = tenant;
  const std::size_t home = shard_of(tenant);
  vol->shard.store(home, std::memory_order_relaxed);
  vol->stats.shard = home;
  vol->flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    if (!volumes_.emplace(tenant, vol).second)
      throw std::invalid_argument("volume already open: " + tenant);
  }
  // Registered before the open task runs: any operation submitted after
  // open_volume() returns queues behind this task for the same volume
  // (per-shard FIFO + the migration park/replay order), so it observes a
  // fully recovered volume.
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> fut = prom->get_future();
  const std::filesystem::path dir = options_.root / tenant;
  dispatch(
      vol,
      [this, vol, prom, dir, db_opts = volume_db_options()] {
        try {
          recover_volume_on_shard(*vol, dir, db_opts);
          prom->set_value();
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
      },
      /*background=*/false);
  try {
    fut.get();
  } catch (...) {
    std::lock_guard lock(mu_);
    volumes_.erase(tenant);
    throw;
  }
}

void VolumeManager::close_volume(const std::string& tenant) {
  std::shared_ptr<Volume> vol;
  {
    std::lock_guard lock(mu_);
    const auto it = volumes_.find(tenant);
    if (it == volumes_.end())
      throw std::invalid_argument("unknown tenant: " + tenant);
    vol = it->second;
    volumes_.erase(it);  // no new operations route to it
  }
  // Flush the QoS gate before queueing the teardown: throttled ops reach
  // the shard (in order) ahead of the close, so their promises resolve
  // against a still-open volume rather than stranding.
  vol->gate.clear();
  run_on(vol,
         [](Volume& v) {
           // Commit anything still buffered, then tear down (persists the
           // manifest base via the CP's edit append). Tear-down happens even
           // if the flush fails: the tenant is already unrouted, so the
           // volume must actually close — a queued background probe checks
           // v.db and a subsequent open_volume() re-opens the directory —
           // while the caller still sees the flush error. Unflushed entries
           // are then lost to journal replay, exactly as in a crash.
           struct Teardown {
             Volume& v;
             ~Teardown() {
               v.wal.reset();  // before the Env it writes through
               v.db.reset();
               v.env.reset();
             }
           } teardown{v};
           if (v.db->quick_stats().ws_entries != 0) {
             v.db->consistency_point();
           }
         })
      .get();
}

void VolumeManager::release_directory_via_manifest(
    const std::filesystem::path& dir) {
  std::error_code ec;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = de.path().filename().string();
    // This path deletes with std::filesystem directly (the volume's Env is
    // already gone), so it must mirror Env::delete_file's cache rule by
    // hand: drop the file's cached pages when this link is the last one —
    // links still held by a clone keep the pages (and the bytes) alive.
    if (block_cache_.enabled()) {
      struct ::stat st{};
      if (::stat(de.path().c_str(), &st) == 0 && st.st_nlink <= 1) {
        block_cache_.erase_file(static_cast<std::uint64_t>(st.st_dev),
                                static_cast<std::uint64_t>(st.st_ino));
      }
    }
    std::error_code rm_ec;
    std::filesystem::remove(de.path(), rm_ec);
    if (!rm_ec && name.ends_with(".run")) shared_files_.note_unlink(name);
  }
  shared_files_.persist();
  std::error_code rm_ec;
  std::filesystem::remove_all(dir, rm_ec);
}

void VolumeManager::destroy_volume(const std::string& tenant) {
  std::shared_ptr<Volume> vol;
  {
    std::lock_guard lock(mu_);
    const auto it = volumes_.find(tenant);
    if (it == volumes_.end())
      throw std::invalid_argument("unknown tenant: " + tenant);
    vol = it->second;
    volumes_.erase(it);  // no new operations route to it
  }
  vol->gate.clear();
  const std::filesystem::path dir = options_.root / tenant;
  run_on(vol,
         [this, dir](Volume& v) {
           // Close the handles first so every file descriptor is released,
           // then delete through the manifest: each run's own link is
           // removed and its refcount decremented — a file shared with a
           // clone lives on in the sharer's directory, a sole-owned file's
           // unlink here is its physical removal. No remove_all shortcut:
           // that would leave the refcount table claiming holders that no
           // longer exist.
           v.wal.reset();
           v.db.reset();
           v.env.reset();
           release_directory_via_manifest(dir);
         })
      .get();
}

std::future<void> VolumeManager::apply(const std::string& tenant,
                                       std::vector<UpdateOp> batch) {
  // QoS metering: a batch costs its op count against the ops bucket and an
  // approximate encoded size (one From/To record per op) against the bytes
  // bucket.
  const double ops_cost = static_cast<double>(batch.size());
  const double bytes_cost = ops_cost * core::kFromRecordSize;
  const auto op_count = static_cast<std::uint32_t>(batch.size());
  if (options_.wal_enabled) {
    // Durable form of the verb: the future resolves only once the applied
    // prefix is covered by a WAL fsync (inline or the shard's group-commit
    // sweep). per_op preserves the partial-prefix contract documented above.
    std::shared_ptr<Volume> vol = find(tenant);
    return run_on_deferred(
        vol,
        [this, vol, batch = std::move(batch)](Volume&, DoneFn done) {
          wal_apply_batch(vol, batch, /*per_op=*/true, std::move(done));
        },
        ops_cost, bytes_cost, TraceVerb::kApply, op_count);
  }
  return run_on(
      find(tenant),
      [this, batch = std::move(batch)](Volume& v) {
        const std::uint64_t t0 = now_micros();
        for (const UpdateOp& op : batch) {
          if (op.kind == UpdateOp::Kind::kAdd) {
            v.db->add_reference(op.key);
          } else {
            v.db->remove_reference(op.key);
          }
        }
        v.stats.updates += batch.size();
        ++v.stats.batches;
        const std::uint64_t d = now_micros() - t0;
        v.stats.update_batch_micros.record(d);
        const std::size_t slot = metric_slot();
        hot_.updates->add(slot, batch.size());
        hot_.batches->add(slot);
        hot_.update_batch_micros->record(slot, d);
      },
      /*background=*/false, ops_cost, bytes_cost, /*bypass_gate=*/false,
      TraceVerb::kApply, op_count);
}

std::future<void> VolumeManager::apply_batch(const std::string& tenant,
                                             std::vector<UpdateOp> batch) {
  // One boundary crossing for the whole batch: the gate is charged once
  // with the batch's total cost, and the batch rides as a single task with
  // a single promise. The shard applies it through BacklogDb::apply_many
  // (validate → stamp → bulk insert), so the per-op path has no routing,
  // allocation or virtual-dispatch overhead left — only write-store work.
  const double ops_cost = static_cast<double>(batch.size());
  const double bytes_cost = ops_cost * core::kFromRecordSize;
  const auto op_count = static_cast<std::uint32_t>(batch.size());
  if (options_.wal_enabled) {
    std::shared_ptr<Volume> vol = find(tenant);
    return run_on_deferred(
        vol,
        [this, vol, batch = std::move(batch)](Volume&, DoneFn done) {
          wal_apply_batch(vol, batch, /*per_op=*/false, std::move(done));
        },
        ops_cost, bytes_cost, TraceVerb::kApplyBatch, op_count);
  }
  return run_on(
      find(tenant),
      [this, batch = std::move(batch)](Volume& v) {
        const std::uint64_t t0 = now_micros();
        v.db->apply_many(batch);
        v.stats.updates += batch.size();
        ++v.stats.batches;
        const std::uint64_t d = now_micros() - t0;
        v.stats.update_batch_micros.record(d);
        const std::size_t slot = metric_slot();
        hot_.updates->add(slot, batch.size());
        hot_.batches->add(slot);
        hot_.update_batch_micros->record(slot, d);
      },
      /*background=*/false, ops_cost, bytes_cost, /*bypass_gate=*/false,
      TraceVerb::kApplyBatch, op_count);
}

void VolumeManager::wound(Volume& v, const char* what) {
  bool expected = false;
  if (!v.wounded.compare_exchange_strong(expected, true,
                                         std::memory_order_acq_rel)) {
    return;  // already wounded — keep the first cause, count once
  }
  hot_.volumes_wounded->add(metric_slot());
  std::fprintf(stderr,
               "backlog: volume '%s' wounded (read-only): %s failed\n",
               v.tenant.c_str(), what);
}

void VolumeManager::wal_apply_batch(const std::shared_ptr<Volume>& vol,
                                    std::span<const UpdateOp> batch,
                                    bool per_op, DoneFn done) {
  Volume& v = *vol;
  throw_if_wounded(v);
  const std::uint64_t t0 = now_micros();
  // 1. Apply to the db first — a validation failure must never reach the
  //    log. per_op keeps apply()'s partial-prefix contract (ops before the
  //    failing one are applied, logged, and made durable); the batched verb
  //    validates up front, so apply_many throws with nothing applied and
  //    run_on_deferred routes that exception into the future.
  std::size_t applied = batch.size();
  std::exception_ptr apply_err;
  if (per_op) {
    applied = 0;
    for (const UpdateOp& op : batch) {
      try {
        if (op.kind == UpdateOp::Kind::kAdd) {
          v.db->add_reference(op.key);
        } else {
          v.db->remove_reference(op.key);
        }
      } catch (...) {
        apply_err = std::current_exception();
        break;
      }
      ++applied;
    }
  } else {
    v.db->apply_many(batch);
  }
  // 2. Log the applied prefix. A write error here is the degradation
  //    trigger: the in-memory state holds ops whose durability can no
  //    longer be promised, so the volume flips read-only.
  if (applied != 0) {
    try {
      v.wal->append(v.db->current_cp(), batch.first(applied));
    } catch (...) {
      wound(v, "WAL append");
      done(std::make_exception_ptr(ServiceError(
          ErrorCode::kWounded,
          "WAL append failed (volume now read-only): " + v.tenant)));
      return;
    }
    hot_.wal_records->add(metric_slot());
    wal_point("wal_appended");
  }
  v.stats.updates += applied;
  ++v.stats.batches;
  const std::uint64_t d = now_micros() - t0;
  v.stats.update_batch_micros.record(d);
  const std::size_t slot = metric_slot();
  hot_.updates->add(slot, applied);
  hot_.batches->add(slot);
  hot_.update_batch_micros->record(slot, d);
  if (applied == 0) {
    // Empty batch, or per_op's first op failed: nothing logged, nothing to
    // make durable — resolve immediately (apply_err is null when empty).
    done(std::move(apply_err));
    return;
  }
  // 3. Make it durable. Window 0 is the per-op-fsync baseline: sync inline
  //    and ack before returning.
  const std::uint32_t window = options_.wal_commit_window_micros;
  if (window == 0) {
    try {
      v.wal->sync();
    } catch (...) {
      wound(v, "WAL sync");
      done(std::make_exception_ptr(ServiceError(
          ErrorCode::kWounded,
          "WAL sync failed (volume now read-only): " + v.tenant)));
      return;
    }
    hot_.wal_syncs->add(slot);
    wal_point("wal_synced");
    done(std::move(apply_err));
    return;
  }
  // Group commit: the ack joins the shard's window; the window's first
  // append schedules the flush sweep. Every batch the shard executes until
  // the sweep reaches the head of its queue rides the same fsync.
  const std::size_t shard = WorkerPool::current_shard();
  ShardCommit& c = *commit_[shard];
  DoneFn ack = std::move(done);
  if (apply_err != nullptr) {
    // Partial-prefix contract under group commit: the caller sees the
    // validation error, but only after the applied prefix is covered by
    // the sweep (whose own kWounded failure outranks it).
    ack = [inner = std::move(ack), apply_err](std::exception_ptr ep) {
      inner(ep != nullptr ? ep : apply_err);
    };
  }
  c.pending.push_back({vol, std::move(ack)});
  if (!c.flush_scheduled) {
    c.flush_scheduled = true;
    c.window_deadline_micros = now_micros() + window;
    pool_.submit(shard, [this, shard] { wal_flush_shard(shard); });
  }
}

void VolumeManager::wal_flush_shard(std::size_t shard) {
  // The shard queue is stride-fair across per-volume flows, so this task
  // cannot "queue behind" the window's appends — the scheduler serves it
  // round-robin with them (after roughly one append per volume). Sleeping
  // out the whole window here would be worse still: the shard thread goes
  // dead while appends sit queued. Instead the flush task *yields its
  // scheduler turns*: while the window is open it resubmits itself, and
  // each round trip lets the stride scheduler run a fair slice of queued
  // appends — all of which join this window's sweep. A short sleep is taken
  // only when the queue holds nothing but this task, so an open window on a
  // busy shard drains appends at full speed while an open window on a quiet
  // shard wakes ~20 times instead of busy-spinning. Once the deadline
  // passes, the sweep covers every record appended so far — one fsync per
  // dirty volume, the group-commit amortization the README documents.
  const std::uint64_t deadline = commit_[shard]->window_deadline_micros;
  const std::uint64_t now = now_micros();
  if (now < deadline) {
    if (pool_.queue_depth_approx(shard) <= 1) {
      std::this_thread::sleep_for(std::chrono::microseconds(
          std::min<std::uint64_t>(deadline - now, 100)));
    }
    pool_.submit(shard, [this, shard] { wal_flush_shard(shard); });
    return;
  }
  wal_commit_now(shard);
}

void VolumeManager::wal_commit_now(std::size_t shard) {
  ShardCommit& c = *commit_[shard];
  c.flush_scheduled = false;
  if (c.pending.empty()) return;
  std::vector<ShardCommit::PendingAck> acks;
  acks.swap(c.pending);
  // One fsync per distinct volume. A clean WAL is skipped without losing
  // the ack's durability promise: the only way a logged-but-unsynced record
  // disappears from the log is a consistency point, which made its ops
  // durable in run files first. Likewise a closed volume (null wal) already
  // committed its buffered state in its close CP.
  std::vector<Volume*> seen;
  seen.reserve(acks.size());
  for (const ShardCommit::PendingAck& a : acks) {
    Volume& v = *a.vol;
    if (std::find(seen.begin(), seen.end(), &v) != seen.end()) continue;
    seen.push_back(&v);
    if (v.wounded.load(std::memory_order_relaxed)) continue;
    if (!v.wal || !v.wal->dirty()) continue;
    try {
      v.wal->sync();
      hot_.wal_syncs->add(metric_slot());
    } catch (...) {
      wound(v, "WAL sync");
    }
  }
  wal_point("wal_synced");
  for (ShardCommit::PendingAck& a : acks) {
    if (a.vol->wounded.load(std::memory_order_relaxed)) {
      a.done(std::make_exception_ptr(ServiceError(
          ErrorCode::kWounded,
          "WAL sync failed (volume now read-only): " + a.vol->tenant)));
    } else {
      a.done(nullptr);
    }
  }
}

std::future<std::vector<std::vector<core::BackrefEntry>>>
VolumeManager::query_batch(const std::string& tenant,
                           std::vector<QueryRange> ranges) {
  const double ops_cost = static_cast<double>(ranges.size());
  const auto op_count = static_cast<std::uint32_t>(ranges.size());
  return run_on(
      find(tenant),
      [this, ranges = std::move(ranges)](Volume& v) {
        std::vector<std::vector<core::BackrefEntry>> out;
        out.reserve(ranges.size());
        const std::size_t slot = metric_slot();
        for (const QueryRange& r : ranges) {
          const std::uint64_t t0 = now_micros();
          out.push_back(v.db->query(r.first, r.count, r.opts));
          ++v.stats.queries;
          const std::uint64_t d = now_micros() - t0;
          v.stats.query_micros.record(d);
          hot_.queries->add(slot);
          hot_.query_micros->record(slot, d);
        }
        return out;
      },
      /*background=*/false, ops_cost, 0, /*bypass_gate=*/false,
      TraceVerb::kQueryBatch, op_count);
}

std::future<core::CpFlushStats> VolumeManager::consistency_point(
    const std::string& tenant) {
  return run_on(
      find(tenant),
      [this](Volume& v) {
        throw_if_wounded(v);
        const std::uint64_t t0 = now_micros();
        core::CpFlushStats s = v.db->consistency_point();
        ++v.stats.cps;
        const std::uint64_t d = now_micros() - t0;
        v.stats.cp_micros.record(d);
        hot_.cps->add(metric_slot());
        hot_.cp_micros->record(metric_slot(), d);
        // The committed CP covers every logged op at or below its epoch:
        // the log restarts empty behind it. (A crash between the CP and
        // this reset is benign — replay skips records below the recovered
        // epoch, and the write store's set semantics make a same-epoch
        // re-apply idempotent.)
        if (v.wal) {
          v.wal->reset();
          wal_point("wal_truncated");
        }
        return s;
      },
      /*background=*/false, 0, 0, /*bypass_gate=*/false, TraceVerb::kCp);
}

std::future<std::uint64_t> VolumeManager::relocate(const std::string& tenant,
                                                   core::BlockNo old_block,
                                                   std::uint64_t length,
                                                   core::BlockNo new_block) {
  return run_on(find(tenant), [this, old_block, length, new_block](Volume& v) {
    throw_if_wounded(v);
    return v.db->relocate(old_block, length, new_block);
  });
}

std::future<core::Epoch> VolumeManager::take_snapshot(const std::string& tenant,
                                                      core::LineId line) {
  return run_on(
      find(tenant),
      [this, line](Volume& v) {
        throw_if_wounded(v);
        // Retain the in-progress CP as the snapshot version, then commit it:
        // updates applied before this verb carry from == version and are part
        // of the snapshot; the CP advance makes later updates invisible to it.
        const core::Epoch version = v.db->registry().take_snapshot(line);
        const std::uint64_t t0 = now_micros();
        v.db->consistency_point();
        if (v.wal) {
          v.wal->reset();
          wal_point("wal_truncated");
        }
        ++v.stats.cps;
        const std::uint64_t d = now_micros() - t0;
        v.stats.cp_micros.record(d);
        ++v.stats.snapshots;
        const std::size_t slot = metric_slot();
        hot_.cps->add(slot);
        hot_.cp_micros->record(slot, d);
        hot_.snapshots->add(slot);
        return version;
      },
      /*background=*/false, 0, 0, /*bypass_gate=*/false,
      TraceVerb::kSnapshot);
}

std::future<core::LineId> VolumeManager::create_clone(const std::string& tenant,
                                                      core::LineId parent_line,
                                                      core::Epoch version) {
  return run_on(find(tenant), [this, parent_line, version](Volume& v) {
    throw_if_wounded(v);
    const core::LineId line = v.db->registry().create_clone(parent_line, version);
    v.db->persist_registry();
    ++v.stats.clones;
    return line;
  });
}

std::future<void> VolumeManager::delete_snapshot(const std::string& tenant,
                                                 core::LineId line,
                                                 core::Epoch version) {
  return run_on(find(tenant), [this, line, version](Volume& v) {
    throw_if_wounded(v);
    v.db->registry().delete_snapshot(line, version);
    v.db->persist_registry();
    ++v.stats.snapshot_deletes;
  });
}

std::future<std::vector<core::Epoch>> VolumeManager::list_versions(
    const std::string& tenant, core::LineId line) {
  return run_on(find(tenant),
                [line](Volume& v) { return v.db->registry().snapshots(line); });
}

core::LineId VolumeManager::clone_volume(const std::string& src_tenant,
                                         const std::string& dst_tenant,
                                         core::LineId parent_line,
                                         core::Epoch version) {
  validate_tenant_name(dst_tenant);
  if (src_tenant == dst_tenant)
    throw std::invalid_argument("clone_volume: src and dst are the same");
  const std::shared_ptr<Volume> src = find(src_tenant);

  // Reserve the destination name up front: concurrent open_volume() or
  // clone_volume() calls for the same tenant fail on the map insert instead
  // of racing the copy (and possibly deleting each other's files in their
  // cleanup paths). Operations routed to the reservation before the volume
  // opens fail with "volume is closed", the same transient window a plain
  // open_volume() has.
  auto dst = std::make_shared<Volume>();
  dst->tenant = dst_tenant;
  const std::size_t dst_home = shard_of(dst_tenant);
  dst->shard.store(dst_home, std::memory_order_relaxed);
  dst->stats.shard = dst_home;
  dst->flow_id = next_flow_id_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard lock(mu_);
    if (!volumes_.emplace(dst_tenant, dst).second)
      throw std::invalid_argument("volume already open: " + dst_tenant);
  }

  const std::filesystem::path dst_dir = options_.root / dst_tenant;
  const std::filesystem::path staging =
      options_.root / (dst_tenant + kCloneStagingSuffix);
  bool copied = false;
  // Set by the shard task the moment the staging->dst rename lands: from
  // then on dst_dir is a committed volume and every failure path must
  // dismantle it through the manifest rather than roll refcounts back.
  auto committed = std::make_shared<std::atomic<bool>>(false);
  try {
    if (std::filesystem::exists(dst_dir))
      throw std::invalid_argument("clone_volume: destination already exists: " +
                                  dst_dir.string());

    // Quiesce-and-share on the source shard: the task serializes behind
    // every update submitted before this call, flushes anything buffered so
    // the durable files are the complete state, validates the snapshot, and
    // stages the db's own file list (manifest, deletion vectors, runs) into
    // `<dst>.cloning`. With cow_clone, immutable run files are hard-linked
    // (no data copy; the shared FileManifest's refcounts take ownership)
    // and only the mutable metadata is byte-copied. Two durability points
    // commit the clone — the refcount table (FILEREFS) and the atomic
    // staging->dst rename; recover_clone_staging() reconciles a crash
    // between them, in either persist order.
    const bool cow = options_.cow_clone;
    run_on(src,
           [this, parent_line, version, dst_dir, staging, cow,
            committed](Volume& v) {
             flush_buffered_cp(v);
             if (!v.db->registry().has_snapshot(parent_line, version)) {
               throw std::invalid_argument(
                   "clone_volume: (line " + std::to_string(parent_line) +
                   ", v" + std::to_string(version) +
                   ") is not a retained snapshot of " + v.tenant);
             }
             const auto checkpoint = [this](std::string_view point) {
               if (options_.clone_checkpoint) options_.clone_checkpoint(point);
             };
             std::error_code ec;
             std::filesystem::remove_all(staging, ec);  // stale leftovers
             std::filesystem::create_directories(staging);
             std::vector<std::string> linked;
             try {
               for (const std::string& name : v.db->live_files()) {
                 if (cow && name.ends_with(".run")) {
                   v.env->link_file_to(name, staging);
                   shared_files_.note_link(name, v.env->file_size(name));
                   linked.push_back(name);
                 } else {
                   v.env->copy_file_to(name, staging);
                 }
               }
               checkpoint("files_staged");
               if (!linked.empty() && !options_.clone_persist_refs_last) {
                 shared_files_.persist();
                 checkpoint("refs_persisted");
               }
               std::filesystem::rename(staging, dst_dir);  // the commit point
               committed->store(true, std::memory_order_release);
               checkpoint("registry_persisted");
               if (!linked.empty() && options_.clone_persist_refs_last) {
                 shared_files_.persist();
                 checkpoint("refs_persisted");
               }
             } catch (...) {
               if (committed->load(std::memory_order_acquire)) {
                 // The rename already committed: the links are live and the
                 // in-memory refcounts are right — leave both alone and let
                 // the outer cleanup dismantle the committed directory
                 // through the manifest.
                 throw;
               }
               // A failed link/copy mid-stage: step the refcounts back with
               // the links. Never bare remove_all — the staged runs are
               // shared state now, and dropping their links without
               // releasing them would leave the table claiming a holder
               // that no longer exists.
               for (const std::string& name : linked)
                 shared_files_.note_unlink(name);
               if (!linked.empty()) shared_files_.persist();
               std::error_code rm_ec;
               std::filesystem::remove_all(staging, rm_ec);
               throw;
             }
           })
        .get();
    copied = true;

    // The destination recovers from the copied manifest like any reopened
    // volume, then branches its writable line off the snapshot. The new
    // line is persisted immediately so the clone relationship survives a
    // crash.
    auto prom = std::make_shared<std::promise<void>>();
    std::future<void> opened = prom->get_future();
    dispatch(
        dst,
        [this, dst, prom, dst_dir, db_opts = volume_db_options()] {
          try {
            recover_volume_on_shard(*dst, dst_dir, db_opts);
            prom->set_value();
          } catch (...) {
            prom->set_exception(std::current_exception());
          }
        },
        /*background=*/false);
    opened.get();
    return run_on(dst,
                  [parent_line, version](Volume& v) {
                    const core::LineId line =
                        v.db->registry().create_clone(parent_line, version);
                    v.db->persist_registry();
                    ++v.stats.clones;
                    return line;
                  })
        .get();
  } catch (...) {
    // Unregister the reservation, tear down whatever opened on the shard,
    // and drop the committed directory *through the manifest* — its run
    // links hold shared references that must be released, exactly as in
    // destroy_volume. A retry must not hit "destination already exists"
    // for a volume that never came to life.
    {
      std::lock_guard lock(mu_);
      volumes_.erase(dst_tenant);
    }
    try {
      run_on(dst,
             [](Volume& v) {
               v.wal.reset();
               v.db.reset();
               v.env.reset();
             })
          .get();
    } catch (...) {
      // "volume is closed" when the open never happened — nothing to tear
      // down.
    }
    if (copied || committed->load(std::memory_order_acquire)) {
      release_directory_via_manifest(dst_dir);
    }
    throw;
  }
}

MigrationStats VolumeManager::migrate_volume(const std::string& tenant,
                                             std::size_t target_shard,
                                             bool require_clean) {
  if (target_shard >= pool_.size())
    throw std::invalid_argument("migrate_volume: no shard " +
                                std::to_string(target_shard));
  const std::shared_ptr<Volume> vol = find(tenant);
  MigrationStats ms;
  ms.target_shard = target_shard;

  // Phase 1 — park. The exclusive write waits out every in-flight dispatch,
  // so after it every previously submitted op is in the source queue and
  // every later one lands in the parked deque.
  {
    std::unique_lock lock(routing_mu_);
    if (vol->parked)
      throw std::logic_error("migrate_volume: handoff already in flight: " +
                             tenant);
    ms.source_shard = vol->shard.load(std::memory_order_relaxed);
    if (ms.source_shard == target_shard) return ms;  // already there
    vol->parked = true;
  }

  // Phase 2 — drain barrier on the source shard (submitted directly: run_on
  // would park it; the volume's own flow keeps it FIFO behind all of the
  // tenant's queued ops). It forces a consistency point when updates are
  // buffered, so the handoff is also a durability point — unless the caller
  // asked for a clean-only move, where buffered updates abort the handoff
  // instead (the Balancer's polite mode).
  enum class Drain : std::uint8_t { kClean, kForcedCp, kDirtyAbort };
  auto prom = std::make_shared<std::promise<Drain>>();
  std::future<Drain> drained = prom->get_future();
  pool_.submit(
      ms.source_shard,
      [this, vol, prom, target_shard, require_clean] {
        try {
          Drain result = Drain::kClean;
          if (vol->db != nullptr) {
            if (require_clean && vol->db->quick_stats().ws_entries != 0) {
              result = Drain::kDirtyAbort;
            } else {
              if (flush_buffered_cp(*vol)) result = Drain::kForcedCp;
              // Settle the shard's commit window before the handoff: a
              // pending ack still referencing this volume after ownership
              // flips would race the new owner's appends. (The sweep covers
              // the whole shard — neighbours' acks simply land a little
              // early, which is never incorrect.)
              if (options_.wal_enabled)
                wal_commit_now(WorkerPool::current_shard());
              ++vol->stats.migrations;
              hot_.migrations->add(metric_slot());
              vol->stats.shard = target_shard;
            }
          }
          prom->set_value(result);
        } catch (...) {
          prom->set_exception(std::current_exception());
        }
      },
      vol->flow_id, vol->qos_weight.load(std::memory_order_relaxed));

  // Replays the parked deque onto `shard` in original submission order.
  // Caller must hold routing_mu_ exclusively, so no new parkers interleave
  // and nothing submitted later can jump ahead of the replayed ops.
  const auto replay = [&](std::size_t shard) {
    std::deque<ParkedTask> parked;
    {
      std::lock_guard pl(vol->park_mu);
      parked.swap(vol->parked_tasks);
    }
    ms.replayed_tasks = parked.size();
    const std::uint32_t weight =
        vol->qos_weight.load(std::memory_order_relaxed);
    for (ParkedTask& pt : parked) {
      if (pt.background) {
        pool_.submit_background(shard, std::move(pt.task));
      } else {
        pool_.submit(shard, std::move(pt.task), vol->flow_id, weight);
      }
    }
    vol->parked = false;
  };

  Drain drain_result;
  try {
    drain_result = drained.get();
  } catch (...) {
    // Drain failed (e.g. the forced CP threw): the volume stays put and the
    // racers replay on the source, still in order.
    std::unique_lock lock(routing_mu_);
    replay(ms.source_shard);
    throw;
  }
  if (drain_result == Drain::kDirtyAbort) {
    // Clean-only move found buffered updates: unpark in place, no CP, no
    // ownership change.
    std::unique_lock lock(routing_mu_);
    replay(ms.source_shard);
    ms.aborted_dirty = true;
    return ms;
  }
  ms.forced_cp = drain_result == Drain::kForcedCp;

  // Phase 3 — flip ownership and replay. The promise/queue handoff orders
  // the source thread's last writes before the target thread's first reads,
  // so the BacklogDb handle moves shards without any lock of its own.
  {
    std::unique_lock lock(routing_mu_);
    vol->shard.store(target_shard, std::memory_order_relaxed);
    replay(target_shard);
  }
  ms.moved = true;
  return ms;
}

std::future<std::vector<core::BackrefEntry>> VolumeManager::query(
    const std::string& tenant, core::BlockNo first, std::uint64_t count,
    core::QueryOptions opts) {
  return run_on(
      find(tenant),
      [this, first, count, opts](Volume& v) {
        const std::uint64_t t0 = now_micros();
        std::vector<core::BackrefEntry> r = v.db->query(first, count, opts);
        ++v.stats.queries;
        const std::uint64_t d = now_micros() - t0;
        v.stats.query_micros.record(d);
        hot_.queries->add(metric_slot());
        hot_.query_micros->record(metric_slot(), d);
        return r;
      },
      /*background=*/false, /*ops_cost=*/1, 0, /*bypass_gate=*/false,
      TraceVerb::kQuery);
}

std::future<std::vector<core::CombinedRecord>> VolumeManager::scan_all(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) { return v.db->scan_all(); });
}

std::future<core::MaintenanceStats> VolumeManager::maintain(
    const std::string& tenant) {
  return run_on(
      find(tenant),
      [this](Volume& v) {
        throw_if_wounded(v);
        const std::uint64_t t0 = now_micros();
        core::MaintenanceStats m = v.db->maintain();
        ++v.stats.maintenance_runs;
        v.stats.maintenance_micros.record(now_micros() - t0);
        hot_.maintenance_runs->add(metric_slot());
        return m;
      },
      /*background=*/false, 0, 0, /*bypass_gate=*/false,
      TraceVerb::kMaintenance);
}

bool VolumeManager::schedule_maintenance(const std::string& tenant,
                                         const MaintenancePolicy& policy) {
  std::shared_ptr<Volume> vol;
  {
    std::lock_guard lock(mu_);
    const auto it = volumes_.find(tenant);
    if (it == volumes_.end()) return false;
    vol = it->second;
  }
  bool expected = false;
  if (!vol->maintenance_pending.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // a probe is already queued or running
  }
  const std::uint64_t l0 = policy.l0_run_threshold;
  const std::uint64_t bytes = policy.db_bytes_threshold;
  run_on(
      vol,
      [this, l0, bytes](Volume& v) {
        PendingGuard guard{v.maintenance_pending};
        // A wounded volume cannot write new runs; skip instead of failing
        // the background probe with an exception nobody awaits.
        if (v.wounded.load(std::memory_order_relaxed)) {
          ++v.stats.maintenance_skipped;
          return;
        }
        const core::QuickStats q = v.db->quick_stats();
        // maintain() requires an empty write store; mid-CP-window volumes
        // are retried on a later sweep rather than forced through an early
        // consistency point.
        if (q.ws_entries != 0) {
          ++v.stats.maintenance_skipped;
          return;
        }
        const bool over_runs = q.l0_runs() >= l0;
        const bool over_bytes = bytes != 0 && q.db_bytes >= bytes;
        if (!over_runs && !over_bytes) {
          ++v.stats.maintenance_skipped;
          return;
        }
        const std::uint64_t t0 = now_micros();
        v.db->maintain();
        ++v.stats.maintenance_runs;
        v.stats.maintenance_micros.record(now_micros() - t0);
        hot_.maintenance_runs->add(metric_slot());
      },
      /*background=*/true);
  return true;
}

std::future<core::DbStats> VolumeManager::db_stats(const std::string& tenant) {
  return run_on(
      find(tenant), [](Volume& v) { return v.db->stats(); },
      /*background=*/false, 0, 0, /*bypass_gate=*/true);
}

std::future<core::QuickStats> VolumeManager::quick_stats(
    const std::string& tenant) {
  return run_on(
      find(tenant), [](Volume& v) { return v.db->quick_stats(); },
      /*background=*/false, 0, 0, /*bypass_gate=*/true);
}

std::future<storage::IoStats> VolumeManager::io_stats(
    const std::string& tenant) {
  return run_on(
      find(tenant), [](Volume& v) { return v.env->stats(); },
      /*background=*/false, 0, 0, /*bypass_gate=*/true);
}

ServiceStats VolumeManager::stats() {
  // Group the open volumes by their current shard, then snapshot the groups
  // one shard at a time: the next shard's snapshot task is only submitted
  // once the previous shard finished, so a slow shard never drags the
  // others into a coordinated stats stall. Tasks route through run_on, so a
  // volume that migrates mid-aggregation is still snapshotted exactly once,
  // on whichever thread owns it when its task runs.
  std::vector<std::vector<std::shared_ptr<Volume>>> by_shard(pool_.size());
  {
    std::lock_guard lock(mu_);
    std::shared_lock rlock(routing_mu_);
    for (const auto& [name, vol] : volumes_)
      by_shard[vol->shard.load(std::memory_order_relaxed)].push_back(vol);
  }
  ServiceStats out;
  for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
    std::vector<std::pair<std::shared_ptr<Volume>, std::future<TenantStats>>>
        futs;
    futs.reserve(by_shard[shard].size());
    for (const auto& vol : by_shard[shard]) {
      futs.emplace_back(vol, run_on(
                                 vol,
                                 [](Volume& v) {
                                   TenantStats ts = v.stats;
                                   ts.io = v.env->stats();
                                   const core::FileOwnershipStats fo =
                                       v.db->file_ownership();
                                   ts.owned_bytes = fo.owned_bytes;
                                   ts.shared_bytes = fo.shared_bytes;
                                   ts.shared_files = fo.shared_files;
                                   return ts;
                                 },
                                 /*background=*/false, 0, 0,
                                 /*bypass_gate=*/true));
    }
    for (auto& [vol, fut] : futs) {
      try {
        TenantStats ts = fut.get();
        // The QoS counters live on the API side of the gate, not on the
        // shard thread; stamp them into the snapshot here.
        ts.throttle_queued = vol->gate.throttled();
        ts.throttle_rejected = vol->gate.rejected();
        out.total.merge(ts);
        out.tenants.emplace(vol->tenant, std::move(ts));
      } catch (const std::logic_error&) {
        // Closed while the snapshot task was queued — skip it.
      }
    }
  }
  return out;
}

VolumeManager::CacheReport VolumeManager::cache_stats() {
  CacheReport report;
  report.block = block_cache_.stats();
  report.block_shared = options_.cache.enable_block_cache;
  // In legacy per-volume mode the shared cache is a disabled stub; the
  // meaningful numbers live in each db's private cache, so zero the report
  // here and sum the per-volume counters below (capacity sums to the fleet
  // total, shards counts one stripe per volume).
  if (!report.block_shared) report.block = {};
  // Result-cache counters are shard-thread-private (like the write store),
  // so gather them the way stats() does: one bypass-gate task per volume,
  // shard by shard, sequentially.
  std::vector<std::vector<std::shared_ptr<Volume>>> by_shard(pool_.size());
  {
    std::lock_guard lock(mu_);
    std::shared_lock rlock(routing_mu_);
    for (const auto& [name, vol] : volumes_)
      by_shard[vol->shard.load(std::memory_order_relaxed)].push_back(vol);
  }
  struct VolCaches {
    core::ResultCacheStats result;
    storage::BlockCacheStats block;
  };
  for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
    std::vector<std::pair<std::shared_ptr<Volume>, std::future<VolCaches>>>
        futs;
    futs.reserve(by_shard[shard].size());
    for (const auto& vol : by_shard[shard]) {
      futs.emplace_back(
          vol, run_on(
                   vol,
                   [](Volume& v) {
                     return VolCaches{v.db->result_cache_stats(),
                                      v.db->block_cache_stats()};
                   },
                   /*background=*/false, 0, 0, /*bypass_gate=*/true));
    }
    for (auto& [vol, fut] : futs) {
      try {
        const VolCaches vc = fut.get();
        report.tenants.push_back({vol->tenant, vc.result});
        if (!report.block_shared) {
          report.block.hits += vc.block.hits;
          report.block.misses += vc.block.misses;
          report.block.evictions += vc.block.evictions;
          report.block.invalidations += vc.block.invalidations;
          report.block.entries += vc.block.entries;
          report.block.bytes += vc.block.bytes;
          report.block.capacity_bytes += vc.block.capacity_bytes;
          report.block.shards += vc.block.shards;
        }
      } catch (const std::logic_error&) {
        // Closed while the task was queued — skip it.
      }
    }
  }
  std::sort(report.tenants.begin(), report.tenants.end(),
            [](const CacheReport::VolumeRow& a, const CacheReport::VolumeRow& b) {
              return a.tenant < b.tenant;
            });
  return report;
}

void VolumeManager::clear_caches() {
  // One clear of the shared cache, then each volume drops its private state
  // on its own shard: the result cache always, and the legacy private block
  // cache when no shared cache is injected. bypass_gate so a throttled
  // tenant cannot wedge the fleet-wide cold-cache lever.
  block_cache_.clear();
  std::vector<std::shared_ptr<Volume>> vols;
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, vol] : volumes_) vols.push_back(vol);
  }
  std::vector<std::future<void>> futs;
  futs.reserve(vols.size());
  const bool shared = options_.cache.enable_block_cache;
  for (const auto& vol : vols) {
    futs.push_back(run_on(
        vol,
        [shared](Volume& v) {
          if (shared) {
            v.db->clear_result_cache();
          } else {
            v.db->clear_cache();  // private block cache + result cache
          }
        },
        /*background=*/false, 0, 0, /*bypass_gate=*/true));
  }
  for (auto& fut : futs) {
    try {
      fut.get();
    } catch (const std::logic_error&) {
      // Closed while the task was queued — nothing to clear.
    }
  }
}

std::future<void> VolumeManager::with_db(
    const std::string& tenant, std::function<void(core::BacklogDb&)> fn) {
  return run_on(find(tenant),
                [fn = std::move(fn)](Volume& v) { fn(*v.db); });
}

std::future<void> VolumeManager::with_env(
    const std::string& tenant,
    std::function<void(storage::Env&, core::BacklogDb&)> fn) {
  return run_on(find(tenant),
                [fn = std::move(fn)](Volume& v) { fn(*v.env, *v.db); });
}

}  // namespace backlog::service
