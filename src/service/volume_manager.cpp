#include "service/volume_manager.hpp"

#include <stdexcept>

#include "util/clock.hpp"

namespace backlog::service {

using util::now_micros;

namespace {

void validate_tenant_name(const std::string& tenant) {
  if (tenant.empty())
    throw std::invalid_argument("tenant name must not be empty");
  if (tenant.size() > 255)
    throw std::invalid_argument("tenant name too long: " + tenant);
  for (const char c : tenant) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok)
      throw std::invalid_argument(
          "tenant name must be [A-Za-z0-9._-] (it names a directory): " +
          tenant);
  }
  if (tenant == "." || tenant == "..")
    throw std::invalid_argument("tenant name must not be a dot directory");
}

/// Clears the volume's maintenance-pending flag on every exit path of a
/// background probe.
struct PendingGuard {
  std::atomic<bool>& flag;
  ~PendingGuard() { flag.store(false, std::memory_order_release); }
};

}  // namespace

VolumeManager::VolumeManager(ServiceOptions options)
    : options_(std::move(options)),
      pool_(options_.shards == 0 ? 1 : options_.shards,
            options_.bg_starvation_limit) {
  if (options_.shards == 0)
    throw std::invalid_argument("ServiceOptions: shards must be > 0");
  if (options_.root.empty())
    throw std::invalid_argument("ServiceOptions: root must be set");
  if (options_.db_options.cache_pages == 0)
    throw std::invalid_argument(
        "ServiceOptions: db_options.cache_pages must be > 0 (a hosted volume "
        "always serves queries through its cache)");
}

VolumeManager::~VolumeManager() = default;

std::shared_ptr<VolumeManager::Volume> VolumeManager::find(
    const std::string& tenant) const {
  std::lock_guard lock(mu_);
  const auto it = volumes_.find(tenant);
  if (it == volumes_.end())
    throw std::invalid_argument("unknown tenant: " + tenant);
  return it->second;
}

bool VolumeManager::has_volume(const std::string& tenant) const {
  std::lock_guard lock(mu_);
  return volumes_.contains(tenant);
}

std::vector<std::string> VolumeManager::tenants() const {
  std::vector<std::string> out;
  std::lock_guard lock(mu_);
  out.reserve(volumes_.size());
  for (const auto& [name, vol] : volumes_) out.push_back(name);
  return out;
}

void VolumeManager::open_volume(const std::string& tenant) {
  validate_tenant_name(tenant);
  auto vol = std::make_shared<Volume>();
  vol->tenant = tenant;
  vol->shard = shard_of(tenant);
  vol->stats.shard = vol->shard;
  {
    std::lock_guard lock(mu_);
    if (!volumes_.emplace(tenant, vol).second)
      throw std::invalid_argument("volume already open: " + tenant);
  }
  // Registered before the open task runs: any operation submitted after
  // open_volume() returns queues behind this task on the same shard (FIFO),
  // so it observes a fully recovered volume.
  auto prom = std::make_shared<std::promise<void>>();
  std::future<void> fut = prom->get_future();
  const std::filesystem::path dir = options_.root / tenant;
  pool_.submit(vol->shard, [this, vol, prom, dir] {
    try {
      vol->env = std::make_unique<storage::Env>(dir);
      vol->env->set_sync(options_.sync_writes);
      vol->db = std::make_unique<core::BacklogDb>(*vol->env, options_.db_options);
      prom->set_value();
    } catch (...) {
      prom->set_exception(std::current_exception());
    }
  });
  try {
    fut.get();
  } catch (...) {
    std::lock_guard lock(mu_);
    volumes_.erase(tenant);
    throw;
  }
}

void VolumeManager::close_volume(const std::string& tenant) {
  std::shared_ptr<Volume> vol;
  {
    std::lock_guard lock(mu_);
    const auto it = volumes_.find(tenant);
    if (it == volumes_.end())
      throw std::invalid_argument("unknown tenant: " + tenant);
    vol = it->second;
    volumes_.erase(it);  // no new operations route to it
  }
  run_on(vol,
         [](Volume& v) {
           // Commit anything still buffered, then tear down (persists the
           // manifest base via the CP's edit append). Tear-down happens even
           // if the flush fails: the tenant is already unrouted, so the
           // volume must actually close — a queued background probe checks
           // v.db and a subsequent open_volume() re-opens the directory —
           // while the caller still sees the flush error. Unflushed entries
           // are then lost to journal replay, exactly as in a crash.
           struct Teardown {
             Volume& v;
             ~Teardown() {
               v.db.reset();
               v.env.reset();
             }
           } teardown{v};
           if (v.db->quick_stats().ws_entries != 0) {
             v.db->consistency_point();
           }
         })
      .get();
}

std::future<void> VolumeManager::apply(const std::string& tenant,
                                       std::vector<UpdateOp> batch) {
  return run_on(find(tenant), [batch = std::move(batch)](Volume& v) {
    const std::uint64_t t0 = now_micros();
    for (const UpdateOp& op : batch) {
      if (op.kind == UpdateOp::Kind::kAdd) {
        v.db->add_reference(op.key);
      } else {
        v.db->remove_reference(op.key);
      }
    }
    v.stats.updates += batch.size();
    ++v.stats.batches;
    v.stats.update_batch_micros.record(now_micros() - t0);
  });
}

std::future<core::CpFlushStats> VolumeManager::consistency_point(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) {
    const std::uint64_t t0 = now_micros();
    core::CpFlushStats s = v.db->consistency_point();
    ++v.stats.cps;
    v.stats.cp_micros.record(now_micros() - t0);
    return s;
  });
}

std::future<std::uint64_t> VolumeManager::relocate(const std::string& tenant,
                                                   core::BlockNo old_block,
                                                   std::uint64_t length,
                                                   core::BlockNo new_block) {
  return run_on(find(tenant), [=](Volume& v) {
    return v.db->relocate(old_block, length, new_block);
  });
}

std::future<std::vector<core::BackrefEntry>> VolumeManager::query(
    const std::string& tenant, core::BlockNo first, std::uint64_t count,
    core::QueryOptions opts) {
  return run_on(find(tenant), [=](Volume& v) {
    const std::uint64_t t0 = now_micros();
    std::vector<core::BackrefEntry> r = v.db->query(first, count, opts);
    ++v.stats.queries;
    v.stats.query_micros.record(now_micros() - t0);
    return r;
  });
}

std::future<std::vector<core::CombinedRecord>> VolumeManager::scan_all(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) { return v.db->scan_all(); });
}

std::future<core::MaintenanceStats> VolumeManager::maintain(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) {
    const std::uint64_t t0 = now_micros();
    core::MaintenanceStats m = v.db->maintain();
    ++v.stats.maintenance_runs;
    v.stats.maintenance_micros.record(now_micros() - t0);
    return m;
  });
}

bool VolumeManager::schedule_maintenance(const std::string& tenant,
                                         const MaintenancePolicy& policy) {
  std::shared_ptr<Volume> vol;
  {
    std::lock_guard lock(mu_);
    const auto it = volumes_.find(tenant);
    if (it == volumes_.end()) return false;
    vol = it->second;
  }
  bool expected = false;
  if (!vol->maintenance_pending.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    return false;  // a probe is already queued or running
  }
  const std::uint64_t l0 = policy.l0_run_threshold;
  const std::uint64_t bytes = policy.db_bytes_threshold;
  run_on(
      vol,
      [l0, bytes](Volume& v) {
        PendingGuard guard{v.maintenance_pending};
        const core::QuickStats q = v.db->quick_stats();
        // maintain() requires an empty write store; mid-CP-window volumes
        // are retried on a later sweep rather than forced through an early
        // consistency point.
        if (q.ws_entries != 0) {
          ++v.stats.maintenance_skipped;
          return;
        }
        const bool over_runs = q.l0_runs() >= l0;
        const bool over_bytes = bytes != 0 && q.db_bytes >= bytes;
        if (!over_runs && !over_bytes) {
          ++v.stats.maintenance_skipped;
          return;
        }
        const std::uint64_t t0 = now_micros();
        v.db->maintain();
        ++v.stats.maintenance_runs;
        v.stats.maintenance_micros.record(now_micros() - t0);
      },
      /*background=*/true);
  return true;
}

std::future<core::DbStats> VolumeManager::db_stats(const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) { return v.db->stats(); });
}

std::future<core::QuickStats> VolumeManager::quick_stats(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) { return v.db->quick_stats(); });
}

std::future<storage::IoStats> VolumeManager::io_stats(
    const std::string& tenant) {
  return run_on(find(tenant), [](Volume& v) { return v.env->stats(); });
}

ServiceStats VolumeManager::stats() {
  // Group the open volumes by shard, then snapshot each shard's group on its
  // own thread (TenantStats is shard-thread-only state).
  std::vector<std::vector<std::shared_ptr<Volume>>> by_shard(pool_.size());
  {
    std::lock_guard lock(mu_);
    for (const auto& [name, vol] : volumes_) by_shard[vol->shard].push_back(vol);
  }
  using Rows = std::vector<std::pair<std::string, TenantStats>>;
  std::vector<std::future<Rows>> futs;
  for (std::size_t shard = 0; shard < by_shard.size(); ++shard) {
    if (by_shard[shard].empty()) continue;
    auto prom = std::make_shared<std::promise<Rows>>();
    futs.push_back(prom->get_future());
    pool_.submit(shard, [vols = by_shard[shard], prom] {
      Rows rows;
      rows.reserve(vols.size());
      for (const auto& vol : vols) {
        if (vol->db == nullptr) continue;  // closed while queued
        TenantStats ts = vol->stats;
        ts.io = vol->env->stats();
        rows.emplace_back(vol->tenant, std::move(ts));
      }
      prom->set_value(std::move(rows));
    });
  }
  ServiceStats out;
  for (auto& f : futs) {
    for (auto& [name, ts] : f.get()) {
      out.total.merge(ts);
      out.tenants.emplace(name, std::move(ts));
    }
  }
  return out;
}

std::future<void> VolumeManager::with_db(
    const std::string& tenant, std::function<void(core::BacklogDb&)> fn) {
  return run_on(find(tenant),
                [fn = std::move(fn)](Volume& v) { fn(*v.db); });
}

}  // namespace backlog::service
