#include "service/qos.hpp"

#include <cmath>

namespace backlog::service {

void validate_qos(const TenantQos& qos) {
  const auto bad = [](double v) { return std::isnan(v) || v < 0; };
  if (bad(qos.ops_per_sec) || bad(qos.bytes_per_sec))
    throw std::invalid_argument("TenantQos: rates must be >= 0 (or unlimited)");
  if (bad(qos.burst_ops) || bad(qos.burst_bytes) ||
      !std::isfinite(qos.burst_ops) || !std::isfinite(qos.burst_bytes))
    throw std::invalid_argument("TenantQos: bursts must be finite and >= 0");
  if (qos.weight == 0)
    throw std::invalid_argument("TenantQos: weight must be >= 1");
  if (qos.max_wait_queue == 0)
    throw std::invalid_argument("TenantQos: max_wait_queue must be >= 1");
}

void QosGate::configure(const TenantQos& qos, std::uint64_t now_micros) {
  validate_qos(qos);
  std::lock_guard lock(mu_);
  enabled_ = true;
  qos_ = qos;
  ops_bucket_.reset(qos.ops_per_sec, qos.burst_ops, now_micros);
  bytes_bucket_.reset(qos.bytes_per_sec, qos.burst_bytes, now_micros);
  update_gated();
}

Admission QosGate::admit(double ops_cost, double bytes_cost,
                         std::uint64_t now_micros,
                         std::function<void()>&& release) {
  std::lock_guard lock(mu_);
  // FIFO: once anything waits, everything later waits behind it, even a
  // zero-cost control verb — per-tenant submission order is the contract.
  // (A gate found disabled here raced a clear(); its queue is empty, so it
  // admits trivially.)
  bool admitted = false;
  if (waiters_.empty()) {
    if (!enabled_) {
      admitted = true;
    } else if (ops_bucket_.try_consume(ops_cost, now_micros)) {
      if (bytes_bucket_.try_consume(bytes_cost, now_micros)) {
        admitted = true;
      } else {
        ops_bucket_.refund(ops_cost);  // the op is charged as one unit
      }
    }
  }
  if (admitted) {
    admitted_.fetch_add(1, std::memory_order_relaxed);
    release();
    return Admission::kAdmitted;
  }
  if (waiters_.size() >= qos_.max_wait_queue) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return Admission::kRejected;
  }
  waiters_.push_back({ops_cost, bytes_cost, std::move(release)});
  queued_.fetch_add(1, std::memory_order_relaxed);
  update_gated();
  return Admission::kQueued;
}

void QosGate::drain(std::uint64_t now_micros) {
  // Dispatch under the mutex: a racing admit() must observe either a
  // non-empty wait queue or the released op already on its shard, never a
  // window where it could jump ahead of a waiter (order inversion).
  std::lock_guard lock(mu_);
  while (!waiters_.empty()) {
    Waiter& w = waiters_.front();
    if (!ops_bucket_.try_consume(w.ops_cost, now_micros)) break;
    if (!bytes_bucket_.try_consume(w.bytes_cost, now_micros)) {
      // Put the ops tokens back: the op stays queued as one unit.
      ops_bucket_.refund(w.ops_cost);
      break;
    }
    std::function<void()> release = std::move(w.release);
    waiters_.pop_front();
    released_.fetch_add(1, std::memory_order_relaxed);
    release();
  }
  update_gated();
}

void QosGate::clear(bool flush) {
  std::lock_guard lock(mu_);
  enabled_ = false;
  if (flush) {
    // Dispatch under the mutex, same lock-order story as drain(): a racing
    // admit() sees either a waiter ahead of it or the op already enqueued.
    while (!waiters_.empty()) {
      std::function<void()> release = std::move(waiters_.front().release);
      waiters_.pop_front();
      released_.fetch_add(1, std::memory_order_relaxed);
      release();
    }
  }
  update_gated();
}

QosSnapshot QosGate::snapshot() const {
  QosSnapshot s;
  std::lock_guard lock(mu_);
  s.enabled = enabled_;
  s.qos = qos_;
  s.admitted = admitted_.load(std::memory_order_relaxed);
  s.queued = queued_.load(std::memory_order_relaxed);
  s.released = released_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.wait_depth = waiters_.size();
  return s;
}

const char* to_string(ErrorCode code) noexcept {
  switch (code) {
    case ErrorCode::kOk: return "ok";
    case ErrorCode::kThrottled: return "throttled";
    case ErrorCode::kBadRequest: return "bad-request";
    case ErrorCode::kNoSuchTenant: return "no-such-tenant";
    case ErrorCode::kNoSuchVerb: return "no-such-verb";
    case ErrorCode::kTooLarge: return "too-large";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kWounded: return "wounded";
  }
  return "unknown";
}

}  // namespace backlog::service
