// Read-only LRU page cache shared by read-store run files.
//
// The paper's query experiments use a 32 MB cache (§6.1) and explicitly clear
// it before each query batch to measure worst-case cold performance; clear()
// supports that. Reads that hit the cache cost no IoStats page_reads, so the
// "I/O reads per query" series of Fig. 9 falls out of the accounting.
#pragma once

#include <array>
#include <cstdint>
#include <list>
#include <memory>
#include <span>
#include <unordered_map>

#include "storage/env.hpp"

namespace backlog::storage {

/// One cached 4 KB page.
using PageBuffer = std::array<std::uint8_t, kPageSize>;

class PageCache {
 public:
  /// `capacity_pages` = 0 disables caching entirely (every read is a miss).
  explicit PageCache(std::size_t capacity_pages);

  PageCache(const PageCache&) = delete;
  PageCache& operator=(const PageCache&) = delete;

  /// Fetch page `page_no` of `file`, reading through on miss. The returned
  /// shared_ptr stays valid even if the entry is evicted afterwards.
  std::shared_ptr<const PageBuffer> get(const RandomAccessFile& file,
                                        std::uint64_t page_no);

  /// Drop everything (cold-cache query experiments).
  void clear();

  /// Drop all pages of one file (called when a run file is deleted after
  /// compaction so stale ids cannot alias a recycled file id).
  void erase_file(std::uint64_t file_id);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }

 private:
  struct Key {
    std::uint64_t file_id;
    std::uint64_t page_no;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };
  struct Entry {
    Key key;
    std::shared_ptr<const PageBuffer> page;
  };

  using LruList = std::list<Entry>;

  std::size_t capacity_;
  LruList lru_;  // front = most recent
  std::unordered_map<Key, LruList::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
};

}  // namespace backlog::storage
