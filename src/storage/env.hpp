// Storage environment: all file I/O in this repository flows through Env so
// that every experiment can report exact page-granularity I/O counts — the
// paper's primary overhead metric is "I/O writes (4 KB blocks) per block
// operation" (Fig. 5/7).
//
// Files are accessed through RAII wrappers; an Env owns an IoStats block that
// the wrappers update. Reads performed through the BlockCache (see
// block_cache.hpp) are only charged on cache miss, mirroring the paper's
// 32 MB query cache setup (§6.1).
#pragma once

#include <cstdint>
#include <filesystem>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace backlog::storage {

/// All on-disk structures use 4 KB pages (the paper's WAFL block size).
inline constexpr std::size_t kPageSize = 4096;

/// Monotonically increasing I/O counters. `page_reads`/`page_writes` count
/// 4 KB pages touched, the unit the paper reports. `fsyncs`/`fsync_micros`
/// count durability barriers actually issued (no-op syncs under
/// `set_sync(false)` are not charged); `io_micros` is wall time spent inside
/// read/write/fsync syscalls (fsync time is a subset of it) and is what the
/// per-op trace spans report as their IO stage.
struct IoStats {
  std::uint64_t page_reads = 0;
  std::uint64_t page_writes = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t bytes_written = 0;
  std::uint64_t files_created = 0;
  std::uint64_t files_deleted = 0;
  std::uint64_t fsyncs = 0;
  std::uint64_t fsync_micros = 0;
  std::uint64_t io_micros = 0;

  void reset() { *this = IoStats{}; }

  /// Field-complete accumulate: TenantStats::merge and every other consumer
  /// fold IoStats with this operator so a newly added counter cannot be
  /// silently dropped (the static_assert below trips when a field is added
  /// without updating += and -).
  IoStats& operator+=(const IoStats& rhs) {
    page_reads += rhs.page_reads;
    page_writes += rhs.page_writes;
    bytes_read += rhs.bytes_read;
    bytes_written += rhs.bytes_written;
    files_created += rhs.files_created;
    files_deleted += rhs.files_deleted;
    fsyncs += rhs.fsyncs;
    fsync_micros += rhs.fsync_micros;
    io_micros += rhs.io_micros;
    return *this;
  }

  IoStats operator-(const IoStats& rhs) const {
    IoStats d;
    d.page_reads = page_reads - rhs.page_reads;
    d.page_writes = page_writes - rhs.page_writes;
    d.bytes_read = bytes_read - rhs.bytes_read;
    d.bytes_written = bytes_written - rhs.bytes_written;
    d.files_created = files_created - rhs.files_created;
    d.files_deleted = files_deleted - rhs.files_deleted;
    d.fsyncs = fsyncs - rhs.fsyncs;
    d.fsync_micros = fsync_micros - rhs.fsync_micros;
    d.io_micros = io_micros - rhs.io_micros;
    return d;
  }
};

static_assert(sizeof(IoStats) == 9 * sizeof(std::uint64_t),
              "IoStats gained a field: update operator+= and operator- above");

class WritableFile;
class RandomAccessFile;
class BlockCache;

/// A directory-rooted storage environment with shared I/O accounting.
/// Not thread-safe; each simulated volume owns one Env.
class Env {
 public:
  /// Creates `root` (and parents) if missing.
  explicit Env(std::filesystem::path root);

  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }
  [[nodiscard]] IoStats& stats() noexcept { return stats_; }
  [[nodiscard]] const IoStats& stats() const noexcept { return stats_; }

  /// When false, sync() calls become no-ops. Durability accounting is
  /// unaffected (page counts are identical); benches disable fsync so that
  /// wall-clock numbers measure the algorithms, not the host's disk. Crash-
  /// consistency tests leave it on.
  void set_sync(bool enabled) noexcept { sync_enabled_ = enabled; }
  [[nodiscard]] bool sync_enabled() const noexcept { return sync_enabled_; }

  /// Open for appending; truncates any existing file.
  std::unique_ptr<WritableFile> create_file(const std::string& name);

  /// Open for appending, preserving existing contents (creates if missing).
  /// Used by the manifest's edit log.
  std::unique_ptr<WritableFile> append_file(const std::string& name);

  /// Open for random reads. Throws std::system_error if missing.
  std::unique_ptr<RandomAccessFile> open_file(const std::string& name);

  /// Open for page-aligned random reads *and* writes (B+-tree backing file);
  /// creates the file if missing.
  std::unique_ptr<RandomAccessFile> open_paged_rw(const std::string& name);

  [[nodiscard]] bool file_exists(const std::string& name) const;
  [[nodiscard]] std::uint64_t file_size(const std::string& name) const;
  void delete_file(const std::string& name);
  void rename_file(const std::string& from, const std::string& to);

  /// Hard-link `name` into `dst_dir` under the same name (the copy-on-write
  /// clone's zero-byte sharing of an immutable file). The destination must
  /// not exist. Counts one file creation, no bytes.
  void link_file_to(const std::string& name,
                    const std::filesystem::path& dst_dir);

  /// Byte-copy `name` into `dst_dir` under the same name, replacing any
  /// existing file (mutable metadata — manifest, deletion vectors — must be
  /// copied, not linked: an append or rewrite through a link would corrupt
  /// every sharer). Charges the copied bytes as written pages.
  void copy_file_to(const std::string& name,
                    const std::filesystem::path& dst_dir);

  /// Fault-injection hook for crash/fault test harnesses: invoked at the
  /// top of link_file_to ("link"), copy_file_to ("copy"), create_file
  /// ("create"), and — when a hook is installed — WritableFile::append
  /// ("append") and WritableFile::sync ("sync") with the file name;
  /// throwing aborts the operation before it touches the filesystem, and a
  /// hook that merely sleeps is the standard way to inject IO latency
  /// (slow-op forensics tests delay "create" to stretch consistency
  /// points). Null (the default) disables injection.
  using FaultHook = std::function<void(std::string_view op,
                                       const std::string& name)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

  /// Synthetic write-failure modes layered under the FaultHook: where the
  /// hook can only delay or abort cleanly, these reproduce what a dying
  /// disk actually does to an append stream.
  enum class WriteFaultMode : std::uint8_t {
    kNone = 0,
    /// write() fails with EIO; nothing reaches the file.
    kEio,
    /// The first half of the data lands, then EIO — POSIX permits short
    /// writes, and an error after one makes the tail ambiguous.
    kShortWrite,
    /// The first half of one 4 KB page lands, then EIO — the classic torn
    /// page a power cut leaves mid-sector-stream. Manufactures exactly the
    /// torn WAL tails the recovery parser must clean-reject.
    kTornPage,
  };

  /// Arms write-fault injection: the next `after_writes` WritableFile
  /// appends under this Env succeed, then every later append (and sync)
  /// fails according to `mode`. `sticky` keeps the fault latched — the
  /// persistent-error case that wounds a volume; non-sticky injects one
  /// failure and heals. Replaces any previously armed plan and resets the
  /// countdown; mode kNone disarms.
  struct WriteFaultPlan {
    WriteFaultMode mode = WriteFaultMode::kNone;
    std::uint64_t after_writes = 0;
    bool sticky = true;
  };
  void set_write_fault(WriteFaultPlan plan) noexcept {
    write_fault_ = plan;
    fault_appends_seen_ = 0;
  }
  [[nodiscard]] const WriteFaultPlan& write_fault() const noexcept {
    return write_fault_;
  }

  /// Names (not paths) of regular files directly under the root, sorted.
  [[nodiscard]] std::vector<std::string> list_files() const;

  /// Attach the (service-shared) block cache so this Env can invalidate
  /// cached pages when an inode becomes eligible for recycling: deleting a
  /// file's *last* physical link, truncating an existing file in place, or
  /// renaming over an existing target all erase the affected (dev, ino)
  /// from the cache. Borrowed; must outlive the Env. Null (the default)
  /// disables invalidation — correct only when nothing reads this Env's
  /// files through a cache.
  void set_block_cache(BlockCache* cache) noexcept { block_cache_ = cache; }
  [[nodiscard]] BlockCache* block_cache() const noexcept {
    return block_cache_;
  }

 private:
  friend class WritableFile;
  friend class RandomAccessFile;

  [[nodiscard]] std::filesystem::path full(const std::string& name) const {
    return root_ / name;
  }

  /// If `path` names an existing file whose link being removed (or whose
  /// contents being replaced in place) would orphan cached pages, erase its
  /// (dev, ino) from the attached block cache. `last_link_only` restricts
  /// the erase to st_nlink == 1 — a file still hard-linked elsewhere keeps
  /// its entries, because the bytes stay live under the other links.
  void invalidate_cached_file(const std::filesystem::path& path,
                              bool last_link_only) noexcept;

  std::filesystem::path root_;
  IoStats stats_;
  FaultHook fault_hook_;
  WriteFaultPlan write_fault_;
  std::uint64_t fault_appends_seen_ = 0;
  std::uint64_t next_file_id_ = 1;
  bool sync_enabled_ = true;
  BlockCache* block_cache_ = nullptr;
};

/// Append-only file handle. Page-write accounting: every append charges the
/// pages it touches (a partial tail page rewritten by a later append is
/// charged again — matching how a real log would issue the I/O).
class WritableFile {
 public:
  WritableFile(Env& env, const std::filesystem::path& path,
               bool truncate = true);
  ~WritableFile();

  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  void append(std::span<const std::uint8_t> data);
  void sync();
  void close();

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }

 private:
  /// Applies the Env's armed WriteFaultPlan to an append of `data`:
  /// returns data.size() when no fault fires this call, otherwise a
  /// strictly smaller byte count to persist before throwing EIO (and
  /// latches or heals the plan per its stickiness).
  [[nodiscard]] std::size_t fault_admitted_bytes(
      std::span<const std::uint8_t> data);

  Env& env_;
  std::string name_;  ///< bare file name, for FaultHook identification
  int fd_ = -1;
  std::uint64_t size_ = 0;
};

/// Random-access file handle (reads anywhere; page-aligned writes only, used
/// by the update-in-place B+-tree). Reads charge the pages they touch.
class RandomAccessFile {
 public:
  RandomAccessFile(Env& env, const std::filesystem::path& path, bool writable);
  ~RandomAccessFile();

  RandomAccessFile(const RandomAccessFile&) = delete;
  RandomAccessFile& operator=(const RandomAccessFile&) = delete;

  /// Read exactly data.size() bytes at `offset`; throws on short read.
  void read(std::uint64_t offset, std::span<std::uint8_t> data) const;

  /// Read one 4 KB page (page-granularity accounting: exactly one read).
  void read_page(std::uint64_t page_no, std::span<std::uint8_t> page) const;

  /// Write one 4 KB page at page_no (extends the file if needed).
  void write_page(std::uint64_t page_no, std::span<const std::uint8_t> page);

  void sync();

  [[nodiscard]] std::uint64_t size() const noexcept { return size_; }
  [[nodiscard]] std::uint64_t page_count() const noexcept {
    return (size_ + kPageSize - 1) / kPageSize;
  }

  /// Unique id within this Env (legacy cache key; kept for diagnostics).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }

  /// Filesystem identity of the open file, captured by fstat at open. Two
  /// hard links to the same file — a run shared by CoW clones — report the
  /// same (dev, ino), which is what the service-wide BlockCache keys on.
  [[nodiscard]] std::uint64_t dev() const noexcept { return dev_; }
  [[nodiscard]] std::uint64_t ino() const noexcept { return ino_; }

 private:
  Env& env_;
  int fd_ = -1;
  bool writable_ = false;
  std::uint64_t size_ = 0;
  std::uint64_t id_ = 0;
  std::uint64_t dev_ = 0;
  std::uint64_t ino_ = 0;
};

/// RAII temporary directory for tests and benches.
class TempDir {
 public:
  /// Creates a fresh directory under the system temp dir.
  explicit TempDir(const std::string& prefix = "backlog");
  ~TempDir();

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  [[nodiscard]] const std::filesystem::path& path() const noexcept { return path_; }

 private:
  std::filesystem::path path_;
};

}  // namespace backlog::storage
