// Update-in-place on-disk B+-tree.
//
// This is the substrate for the two baselines the paper compares against:
//  * the btrfs-style "native" back references, which live in a global
//    update-in-place metadata B-tree (§7), and
//  * the naive "conceptual table" design (§4.1), whose read-modify-write per
//    block deallocation is exactly an update-in-place tree update.
//
// Design:
//  * 4 KB pages, fixed-size keys and values configured at open time.
//  * Keys are opaque byte strings compared with memcmp; callers encode
//    integers big-endian so lexicographic order equals numeric order.
//  * A write-back buffer manager (LRU, bounded) holds hot pages; dirty pages
//    are written on eviction or at flush(). Page reads/writes are charged to
//    the Env's IoStats, which is how the baselines' CP-time I/O is measured.
//  * Deletes do not rebalance (lazy deletion). The trees the baselines build
//    shrink only via whole-volume churn, where lazy deletion loses a few
//    percent of space — an acceptable, documented trade-off.
//  * Page image checksummed (CRC32-C) on write-back, verified on read.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/env.hpp"

namespace backlog::storage {

/// Statistics for introspection and the ablation benches.
struct BTreeStats {
  std::uint64_t record_count = 0;
  std::uint64_t page_count = 0;   // allocated pages incl. meta
  std::uint32_t height = 0;       // 1 = root is a leaf
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
};

class BTree {
 public:
  /// Open (or create) a tree stored in `file_name` under `env`.
  /// `key_size`/`value_size` must match the stored tree if it exists.
  /// `cache_pages` bounds the write-back cache (0 = unbounded).
  BTree(Env& env, const std::string& file_name, std::size_t key_size,
        std::size_t value_size, std::size_t cache_pages = 1024);
  ~BTree();

  BTree(const BTree&) = delete;
  BTree& operator=(const BTree&) = delete;

  /// Insert or overwrite. Returns true if the key was new.
  bool put(std::span<const std::uint8_t> key, std::span<const std::uint8_t> value);

  /// Point lookup.
  std::optional<std::vector<std::uint8_t>> get(std::span<const std::uint8_t> key);

  /// Remove. Returns true if the key existed.
  bool erase(std::span<const std::uint8_t> key);

  /// Write back all dirty pages (consistency-point behaviour for baselines).
  void flush();

  [[nodiscard]] std::uint64_t size() const noexcept { return record_count_; }
  [[nodiscard]] BTreeStats stats() const;

  [[nodiscard]] std::size_t key_size() const noexcept { return key_size_; }
  [[nodiscard]] std::size_t value_size() const noexcept { return value_size_; }

  /// Forward iterator over records with key >= seek key.
  class Cursor {
   public:
    /// False once past the last record.
    [[nodiscard]] bool valid() const noexcept { return page_ != 0; }
    [[nodiscard]] std::span<const std::uint8_t> key() const;
    [[nodiscard]] std::span<const std::uint8_t> value() const;
    void next();

   private:
    friend class BTree;
    BTree* tree_ = nullptr;
    std::uint64_t page_ = 0;  // 0 = end
    std::uint16_t index_ = 0;
    // Pinned copy of the current page so eviction can't invalidate us.
    std::shared_ptr<const std::vector<std::uint8_t>> snapshot_;
    void load();
  };

  Cursor seek(std::span<const std::uint8_t> key);
  Cursor begin();

 private:
  struct Frame {
    std::vector<std::uint8_t> data;  // kPageSize bytes
    bool dirty = false;
  };
  using FramePtr = std::shared_ptr<Frame>;

  // --- page layout helpers -------------------------------------------------
  [[nodiscard]] std::size_t leaf_slot_size() const noexcept {
    return key_size_ + value_size_;
  }
  [[nodiscard]] std::size_t internal_slot_size() const noexcept {
    return key_size_ + 8;
  }
  [[nodiscard]] std::size_t leaf_capacity() const noexcept;
  [[nodiscard]] std::size_t internal_capacity() const noexcept;

  // --- buffer manager ------------------------------------------------------
  FramePtr fetch(std::uint64_t page_no);
  FramePtr create_page(std::uint64_t* page_no_out);
  void mark_dirty(std::uint64_t page_no);
  void maybe_evict();
  void write_back(std::uint64_t page_no, Frame& frame);

  // --- tree operations -----------------------------------------------------
  struct PathEntry {
    std::uint64_t page_no;
    std::uint16_t child_index;  // which child we descended into
  };
  std::uint64_t descend(std::span<const std::uint8_t> key,
                        std::vector<PathEntry>* path);
  void split_leaf(std::uint64_t leaf_no, Frame& leaf,
                  std::vector<PathEntry>& path);
  void insert_into_parent(std::vector<PathEntry>& path,
                          std::span<const std::uint8_t> sep_key,
                          std::uint64_t new_child);
  void load_meta();
  void store_meta();

  Env& env_;
  std::string file_name_;
  std::unique_ptr<RandomAccessFile> file_;
  std::size_t key_size_;
  std::size_t value_size_;
  std::size_t cache_pages_;

  std::uint64_t root_ = 0;
  std::uint64_t next_page_ = 1;  // page 0 is the meta page
  std::uint64_t record_count_ = 0;
  std::uint32_t height_ = 1;
  bool meta_dirty_ = false;

  std::unordered_map<std::uint64_t, FramePtr> frames_;
  std::list<std::uint64_t> lru_;  // front = most recent
  std::unordered_map<std::uint64_t, std::list<std::uint64_t>::iterator> lru_pos_;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t cache_misses_ = 0;
};

}  // namespace backlog::storage
