#include "storage/btree.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>
#include <stdexcept>

#include "util/crc32c.hpp"
#include "util/serde.hpp"

namespace backlog::storage {

namespace {

// Page layout (both kinds):
//   [0]  u16 type (1 = leaf, 2 = internal)
//   [2]  u16 count
//   [4]  u32 crc32c over bytes [8, kPageSize)
//   [8]  u64 next_leaf (leaf pages; 0 = none)
//   [16] slots...
constexpr std::size_t kHeaderSize = 16;
constexpr std::uint16_t kLeaf = 1;
constexpr std::uint16_t kInternal = 2;

// Meta page (page 0):
//   [0] u64 magic  [8] u32 key_size  [12] u32 value_size
//   [16] u64 root  [24] u64 next_page  [32] u64 record_count  [40] u32 height
constexpr std::uint64_t kMagic = 0x424b4c4f47425452ULL;  // "BKLOGBTR"

std::uint16_t page_type(const std::uint8_t* p) { return util::get_u16(p); }
std::uint16_t page_count_of(const std::uint8_t* p) { return util::get_u16(p + 2); }
void set_page_type(std::uint8_t* p, std::uint16_t t) { util::put_u16(p, t); }
void set_page_count(std::uint8_t* p, std::uint16_t c) { util::put_u16(p + 2, c); }
std::uint64_t next_leaf_of(const std::uint8_t* p) { return util::get_u64(p + 8); }
void set_next_leaf(std::uint8_t* p, std::uint64_t n) { util::put_u64(p + 8, n); }

}  // namespace

std::size_t BTree::leaf_capacity() const noexcept {
  return (kPageSize - kHeaderSize) / leaf_slot_size();
}

std::size_t BTree::internal_capacity() const noexcept {
  return (kPageSize - kHeaderSize) / internal_slot_size();
}

BTree::BTree(Env& env, const std::string& file_name, std::size_t key_size,
             std::size_t value_size, std::size_t cache_pages)
    : env_(env),
      file_name_(file_name),
      key_size_(key_size),
      value_size_(value_size),
      cache_pages_(cache_pages) {
  if (key_size_ == 0 || key_size_ > 256)
    throw std::invalid_argument("BTree: key_size out of range");
  if (value_size_ > 1024) throw std::invalid_argument("BTree: value too large");
  if (leaf_capacity() < 4 || internal_capacity() < 4)
    throw std::invalid_argument("BTree: records too large for a 4 KB page");
  file_ = env_.open_paged_rw(file_name_);
  load_meta();
}

BTree::~BTree() {
  try {
    flush();
  } catch (...) {
    // Destructors must not throw; an unflushed baseline tree only loses
    // simulated state.
  }
}

void BTree::load_meta() {
  if (file_->size() == 0) {
    // Fresh tree: the root starts as an empty leaf on page 1.
    std::uint64_t root_no = 0;
    FramePtr root = create_page(&root_no);
    set_page_type(root->data.data(), kLeaf);
    set_page_count(root->data.data(), 0);
    set_next_leaf(root->data.data(), 0);
    root_ = root_no;
    height_ = 1;
    record_count_ = 0;
    meta_dirty_ = true;
    return;
  }
  std::vector<std::uint8_t> meta(kPageSize);
  file_->read_page(0, meta);
  if (util::get_u64(meta.data()) != kMagic)
    throw std::runtime_error("BTree: bad magic in " + file_name_);
  if (util::get_u32(meta.data() + 8) != key_size_ ||
      util::get_u32(meta.data() + 12) != value_size_)
    throw std::runtime_error("BTree: key/value size mismatch in " + file_name_);
  root_ = util::get_u64(meta.data() + 16);
  next_page_ = util::get_u64(meta.data() + 24);
  record_count_ = util::get_u64(meta.data() + 32);
  height_ = util::get_u32(meta.data() + 40);
}

void BTree::store_meta() {
  std::vector<std::uint8_t> meta(kPageSize, 0);
  util::put_u64(meta.data(), kMagic);
  util::put_u32(meta.data() + 8, static_cast<std::uint32_t>(key_size_));
  util::put_u32(meta.data() + 12, static_cast<std::uint32_t>(value_size_));
  util::put_u64(meta.data() + 16, root_);
  util::put_u64(meta.data() + 24, next_page_);
  util::put_u64(meta.data() + 32, record_count_);
  util::put_u32(meta.data() + 40, height_);
  file_->write_page(0, meta);
  meta_dirty_ = false;
}

BTree::FramePtr BTree::fetch(std::uint64_t page_no) {
  if (auto it = frames_.find(page_no); it != frames_.end()) {
    ++cache_hits_;
    lru_.splice(lru_.begin(), lru_, lru_pos_.at(page_no));
    return it->second;
  }
  ++cache_misses_;
  auto frame = std::make_shared<Frame>();
  frame->data.resize(kPageSize);
  file_->read_page(page_no, frame->data);
  const std::uint32_t want = util::get_u32(frame->data.data() + 4);
  const std::uint32_t got =
      util::crc32c(frame->data.data() + 8, kPageSize - 8);
  if (want != got)
    throw std::runtime_error("BTree: checksum mismatch on page " +
                             std::to_string(page_no));
  frames_.emplace(page_no, frame);
  lru_.push_front(page_no);
  lru_pos_[page_no] = lru_.begin();
  maybe_evict();
  return frame;
}

BTree::FramePtr BTree::create_page(std::uint64_t* page_no_out) {
  const std::uint64_t page_no = next_page_++;
  auto frame = std::make_shared<Frame>();
  frame->data.assign(kPageSize, 0);
  frame->dirty = true;
  frames_.emplace(page_no, frame);
  lru_.push_front(page_no);
  lru_pos_[page_no] = lru_.begin();
  meta_dirty_ = true;
  maybe_evict();
  *page_no_out = page_no;
  return frame;
}

void BTree::mark_dirty(std::uint64_t page_no) {
  if (auto it = frames_.find(page_no); it != frames_.end()) it->second->dirty = true;
}

void BTree::maybe_evict() {
  if (cache_pages_ == 0) return;
  // Scan from the cold end; skip frames pinned by callers (use_count > 1).
  auto it = lru_.end();
  while (frames_.size() > cache_pages_ && it != lru_.begin()) {
    --it;
    const std::uint64_t page_no = *it;
    auto fit = frames_.find(page_no);
    assert(fit != frames_.end());
    if (fit->second.use_count() > 1) continue;  // pinned
    if (fit->second->dirty) write_back(page_no, *fit->second);
    frames_.erase(fit);
    lru_pos_.erase(page_no);
    it = lru_.erase(it);
  }
}

void BTree::write_back(std::uint64_t page_no, Frame& frame) {
  util::put_u32(frame.data.data() + 4,
                util::crc32c(frame.data.data() + 8, kPageSize - 8));
  file_->write_page(page_no, frame.data);
  frame.dirty = false;
}

void BTree::flush() {
  for (auto& [page_no, frame] : frames_) {
    if (frame->dirty) write_back(page_no, *frame);
  }
  store_meta();
}

std::uint64_t BTree::descend(std::span<const std::uint8_t> key,
                             std::vector<PathEntry>* path) {
  std::uint64_t page_no = root_;
  while (true) {
    FramePtr frame = fetch(page_no);
    const std::uint8_t* p = frame->data.data();
    if (page_type(p) == kLeaf) return page_no;
    const std::uint16_t count = page_count_of(p);
    assert(count >= 1);
    const std::size_t slot = internal_slot_size();
    // Largest i with (i == 0 or key_i <= key): binary search over [1, count).
    std::uint16_t lo = 1, hi = count;  // answer in [lo-1, hi-1]
    while (lo < hi) {
      const std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
      const std::uint8_t* k = p + kHeaderSize + mid * slot;
      if (std::memcmp(k, key.data(), key_size_) <= 0) {
        lo = static_cast<std::uint16_t>(mid + 1);
      } else {
        hi = mid;
      }
    }
    const std::uint16_t child_index = static_cast<std::uint16_t>(lo - 1);
    if (path != nullptr) path->push_back({page_no, child_index});
    page_no = util::get_u64(p + kHeaderSize + child_index * slot + key_size_);
  }
}

namespace {
/// Binary search in a leaf: first slot with slot_key >= key.
/// Sets *found if an exact match exists.
std::uint16_t leaf_lower_bound(const std::uint8_t* p, std::uint16_t count,
                               std::span<const std::uint8_t> key,
                               std::size_t key_size, std::size_t slot_size,
                               bool* found) {
  std::uint16_t lo = 0, hi = count;
  while (lo < hi) {
    const std::uint16_t mid = static_cast<std::uint16_t>((lo + hi) / 2);
    const std::uint8_t* k = p + kHeaderSize + mid * slot_size;
    if (std::memcmp(k, key.data(), key_size) < 0) {
      lo = static_cast<std::uint16_t>(mid + 1);
    } else {
      hi = mid;
    }
  }
  *found = lo < count &&
           std::memcmp(p + kHeaderSize + lo * slot_size, key.data(), key_size) == 0;
  return lo;
}
}  // namespace

bool BTree::put(std::span<const std::uint8_t> key,
                std::span<const std::uint8_t> value) {
  if (key.size() != key_size_ || value.size() != value_size_)
    throw std::invalid_argument("BTree::put: wrong key/value size");
  while (true) {
    std::vector<PathEntry> path;
    const std::uint64_t leaf_no = descend(key, &path);
    FramePtr frame = fetch(leaf_no);
    std::uint8_t* p = frame->data.data();
    const std::uint16_t count = page_count_of(p);
    bool found = false;
    const std::uint16_t idx =
        leaf_lower_bound(p, count, key, key_size_, leaf_slot_size(), &found);
    if (found) {
      if (value_size_ != 0) {  // a zero-size value has a null span
        std::memcpy(p + kHeaderSize + idx * leaf_slot_size() + key_size_,
                    value.data(), value_size_);
      }
      frame->dirty = true;
      return false;
    }
    if (count < leaf_capacity()) {
      std::uint8_t* slot0 = p + kHeaderSize;
      std::memmove(slot0 + (idx + 1) * leaf_slot_size(),
                   slot0 + idx * leaf_slot_size(),
                   (count - idx) * leaf_slot_size());
      std::memcpy(slot0 + idx * leaf_slot_size(), key.data(), key_size_);
      if (value_size_ != 0) {  // a zero-size value has a null span
        std::memcpy(slot0 + idx * leaf_slot_size() + key_size_, value.data(),
                    value_size_);
      }
      set_page_count(p, static_cast<std::uint16_t>(count + 1));
      frame->dirty = true;
      ++record_count_;
      meta_dirty_ = true;
      return true;
    }
    split_leaf(leaf_no, *frame, path);
    // Retry: the re-descend lands in the correct half.
  }
}

void BTree::split_leaf(std::uint64_t leaf_no, Frame& leaf,
                       std::vector<PathEntry>& path) {
  std::uint8_t* p = leaf.data.data();
  const std::uint16_t count = page_count_of(p);
  const std::uint16_t keep = static_cast<std::uint16_t>(count / 2);
  const std::uint16_t moved = static_cast<std::uint16_t>(count - keep);

  std::uint64_t new_no = 0;
  FramePtr right = create_page(&new_no);
  std::uint8_t* q = right->data.data();
  set_page_type(q, kLeaf);
  set_page_count(q, moved);
  set_next_leaf(q, next_leaf_of(p));
  std::memcpy(q + kHeaderSize, p + kHeaderSize + keep * leaf_slot_size(),
              moved * leaf_slot_size());

  set_page_count(p, keep);
  set_next_leaf(p, new_no);
  leaf.dirty = true;
  (void)leaf_no;

  std::vector<std::uint8_t> sep(q + kHeaderSize, q + kHeaderSize + key_size_);
  insert_into_parent(path, sep, new_no);
}

void BTree::insert_into_parent(std::vector<PathEntry>& path,
                               std::span<const std::uint8_t> sep_key,
                               std::uint64_t new_child) {
  if (path.empty()) {
    // Grow a new root above the current one.
    std::uint64_t new_root_no = 0;
    FramePtr root = create_page(&new_root_no);
    std::uint8_t* p = root->data.data();
    set_page_type(p, kInternal);
    set_page_count(p, 2);
    const std::size_t slot = internal_slot_size();
    // Slot 0's key is never examined; zero it for determinism.
    std::memset(p + kHeaderSize, 0, key_size_);
    util::put_u64(p + kHeaderSize + key_size_, root_);
    std::memcpy(p + kHeaderSize + slot, sep_key.data(), key_size_);
    util::put_u64(p + kHeaderSize + slot + key_size_, new_child);
    root_ = new_root_no;
    ++height_;
    meta_dirty_ = true;
    return;
  }

  const PathEntry entry = path.back();
  path.pop_back();
  FramePtr frame = fetch(entry.page_no);
  std::uint8_t* p = frame->data.data();
  const std::uint16_t count = page_count_of(p);
  const std::size_t slot = internal_slot_size();
  const std::uint16_t insert_at = static_cast<std::uint16_t>(entry.child_index + 1);

  if (count < internal_capacity()) {
    std::uint8_t* slot0 = p + kHeaderSize;
    std::memmove(slot0 + (insert_at + 1) * slot, slot0 + insert_at * slot,
                 (count - insert_at) * slot);
    std::memcpy(slot0 + insert_at * slot, sep_key.data(), key_size_);
    util::put_u64(slot0 + insert_at * slot + key_size_, new_child);
    set_page_count(p, static_cast<std::uint16_t>(count + 1));
    frame->dirty = true;
    return;
  }

  // Full internal node: materialize count+1 entries, split in half, promote
  // the first key of the right half.
  struct Ent {
    std::vector<std::uint8_t> key;
    std::uint64_t child;
  };
  std::vector<Ent> entries;
  entries.reserve(count + 1);
  for (std::uint16_t i = 0; i < count; ++i) {
    const std::uint8_t* s = p + kHeaderSize + i * slot;
    entries.push_back(
        {std::vector<std::uint8_t>(s, s + key_size_), util::get_u64(s + key_size_)});
  }
  entries.insert(entries.begin() + insert_at,
                 {std::vector<std::uint8_t>(sep_key.begin(), sep_key.end()),
                  new_child});

  const std::size_t total = entries.size();
  const std::size_t keep = total / 2;

  set_page_count(p, static_cast<std::uint16_t>(keep));
  for (std::size_t i = 0; i < keep; ++i) {
    std::uint8_t* s = p + kHeaderSize + i * slot;
    std::memcpy(s, entries[i].key.data(), key_size_);
    util::put_u64(s + key_size_, entries[i].child);
  }
  frame->dirty = true;

  std::uint64_t new_no = 0;
  FramePtr right = create_page(&new_no);
  std::uint8_t* q = right->data.data();
  set_page_type(q, kInternal);
  set_page_count(q, static_cast<std::uint16_t>(total - keep));
  for (std::size_t i = keep; i < total; ++i) {
    std::uint8_t* s = q + kHeaderSize + (i - keep) * slot;
    std::memcpy(s, entries[i].key.data(), key_size_);
    util::put_u64(s + key_size_, entries[i].child);
  }

  insert_into_parent(path, entries[keep].key, new_no);
}

std::optional<std::vector<std::uint8_t>> BTree::get(
    std::span<const std::uint8_t> key) {
  if (key.size() != key_size_)
    throw std::invalid_argument("BTree::get: wrong key size");
  const std::uint64_t leaf_no = descend(key, nullptr);
  FramePtr frame = fetch(leaf_no);
  const std::uint8_t* p = frame->data.data();
  bool found = false;
  const std::uint16_t idx = leaf_lower_bound(p, page_count_of(p), key, key_size_,
                                             leaf_slot_size(), &found);
  if (!found) return std::nullopt;
  const std::uint8_t* v = p + kHeaderSize + idx * leaf_slot_size() + key_size_;
  return std::vector<std::uint8_t>(v, v + value_size_);
}

bool BTree::erase(std::span<const std::uint8_t> key) {
  if (key.size() != key_size_)
    throw std::invalid_argument("BTree::erase: wrong key size");
  const std::uint64_t leaf_no = descend(key, nullptr);
  FramePtr frame = fetch(leaf_no);
  std::uint8_t* p = frame->data.data();
  const std::uint16_t count = page_count_of(p);
  bool found = false;
  const std::uint16_t idx =
      leaf_lower_bound(p, count, key, key_size_, leaf_slot_size(), &found);
  if (!found) return false;
  std::uint8_t* slot0 = p + kHeaderSize;
  std::memmove(slot0 + idx * leaf_slot_size(), slot0 + (idx + 1) * leaf_slot_size(),
               (count - idx - 1) * leaf_slot_size());
  set_page_count(p, static_cast<std::uint16_t>(count - 1));
  frame->dirty = true;
  --record_count_;
  meta_dirty_ = true;
  return true;
}

BTreeStats BTree::stats() const {
  BTreeStats s;
  s.record_count = record_count_;
  s.page_count = next_page_;
  s.height = height_;
  s.cache_hits = cache_hits_;
  s.cache_misses = cache_misses_;
  return s;
}

void BTree::Cursor::load() {
  if (page_ == 0) {
    snapshot_.reset();
    return;
  }
  FramePtr frame = tree_->fetch(page_);
  snapshot_ = std::make_shared<const std::vector<std::uint8_t>>(frame->data);
}

std::span<const std::uint8_t> BTree::Cursor::key() const {
  const std::uint8_t* p = snapshot_->data();
  return {p + kHeaderSize + index_ * tree_->leaf_slot_size(), tree_->key_size_};
}

std::span<const std::uint8_t> BTree::Cursor::value() const {
  const std::uint8_t* p = snapshot_->data();
  return {p + kHeaderSize + index_ * tree_->leaf_slot_size() + tree_->key_size_,
          tree_->value_size_};
}

void BTree::Cursor::next() {
  if (page_ == 0) return;
  ++index_;
  while (page_ != 0 && index_ >= page_count_of(snapshot_->data())) {
    page_ = next_leaf_of(snapshot_->data());
    index_ = 0;
    load();
    if (page_ == 0) return;
  }
}

BTree::Cursor BTree::seek(std::span<const std::uint8_t> key) {
  if (key.size() != key_size_)
    throw std::invalid_argument("BTree::seek: wrong key size");
  Cursor c;
  c.tree_ = this;
  c.page_ = descend(key, nullptr);
  c.load();
  bool found = false;
  c.index_ = leaf_lower_bound(c.snapshot_->data(), page_count_of(c.snapshot_->data()),
                              key, key_size_, leaf_slot_size(), &found);
  // Normalize: if positioned past the last record of this leaf, hop forward.
  if (c.index_ >= page_count_of(c.snapshot_->data())) {
    // next() increments first, so step back one slot.
    if (c.index_ > 0) {
      --c.index_;
      c.next();
    } else {
      // Empty leaf (possible after lazy deletes): walk the chain.
      while (c.page_ != 0 && page_count_of(c.snapshot_->data()) == 0) {
        c.page_ = next_leaf_of(c.snapshot_->data());
        c.load();
      }
      c.index_ = 0;
    }
  }
  return c;
}

BTree::Cursor BTree::begin() {
  // Descend along child 0 to the leftmost leaf.
  Cursor c;
  c.tree_ = this;
  std::uint64_t page_no = root_;
  while (true) {
    FramePtr frame = fetch(page_no);
    const std::uint8_t* p = frame->data.data();
    if (page_type(p) == kLeaf) break;
    page_no = util::get_u64(p + kHeaderSize + key_size_);
  }
  c.page_ = page_no;
  c.index_ = 0;
  c.load();
  // Skip empty leading leaves.
  while (c.page_ != 0 && page_count_of(c.snapshot_->data()) == 0) {
    c.page_ = next_leaf_of(c.snapshot_->data());
    c.load();
  }
  return c;
}

}  // namespace backlog::storage
