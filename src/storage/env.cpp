#include "storage/env.hpp"

#include <fcntl.h>
#include <sys/resource.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>

#include "storage/block_cache.hpp"
#include "util/clock.hpp"

static_assert(std::endian::native == std::endian::little,
              "Backlog on-disk formats require a little-endian host");

namespace backlog::storage {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

std::uint64_t pages_touched(std::uint64_t offset, std::uint64_t len) {
  if (len == 0) return 0;
  const std::uint64_t first = offset / kPageSize;
  const std::uint64_t last = (offset + len - 1) / kPageSize;
  return last - first + 1;
}

/// Accumulates wall time spent inside a syscall loop into IoStats::io_micros
/// (two steady-clock reads, negligible against the syscall itself).
class IoTimer {
 public:
  explicit IoTimer(IoStats& stats)
      : stats_(stats), start_(util::now_micros()) {}
  ~IoTimer() { stats_.io_micros += util::now_micros() - start_; }

  IoTimer(const IoTimer&) = delete;
  IoTimer& operator=(const IoTimer&) = delete;

 private:
  IoStats& stats_;
  std::uint64_t start_;
};

}  // namespace

Env::Env(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  // Merges legitimately hold many run files open at once; lift the soft fd
  // limit to the hard limit once per process (idempotent, best effort).
  static const bool raised = [] {
    struct rlimit rl{};
    if (::getrlimit(RLIMIT_NOFILE, &rl) == 0 && rl.rlim_cur < rl.rlim_max) {
      rl.rlim_cur = rl.rlim_max;
      ::setrlimit(RLIMIT_NOFILE, &rl);
    }
    return true;
  }();
  (void)raised;
}

void Env::invalidate_cached_file(const std::filesystem::path& path,
                                 bool last_link_only) noexcept {
  if (block_cache_ == nullptr) return;
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0) return;
  if (last_link_only && st.st_nlink > 1) return;
  block_cache_->erase_file(static_cast<std::uint64_t>(st.st_dev),
                           static_cast<std::uint64_t>(st.st_ino));
}

std::unique_ptr<WritableFile> Env::create_file(const std::string& name) {
  if (fault_hook_) fault_hook_("create", name);
  // O_TRUNC reuses the existing inode: stale pages of the old contents must
  // not survive under the same (dev, ino) key.
  invalidate_cached_file(full(name), /*last_link_only=*/false);
  ++stats_.files_created;
  return std::make_unique<WritableFile>(*this, full(name));
}

std::unique_ptr<WritableFile> Env::append_file(const std::string& name) {
  if (!file_exists(name)) ++stats_.files_created;
  return std::make_unique<WritableFile>(*this, full(name), /*truncate=*/false);
}

std::unique_ptr<RandomAccessFile> Env::open_file(const std::string& name) {
  return std::make_unique<RandomAccessFile>(*this, full(name), /*writable=*/false);
}

std::unique_ptr<RandomAccessFile> Env::open_paged_rw(const std::string& name) {
  if (!file_exists(name)) {
    ++stats_.files_created;
    // Touch the file so open(O_RDWR) succeeds.
    const int fd = ::open(full(name).c_str(), O_CREAT | O_WRONLY, 0644);
    if (fd < 0) throw_errno("create " + name);
    ::close(fd);
  }
  return std::make_unique<RandomAccessFile>(*this, full(name), /*writable=*/true);
}

bool Env::file_exists(const std::string& name) const {
  return std::filesystem::exists(full(name));
}

std::uint64_t Env::file_size(const std::string& name) const {
  return std::filesystem::file_size(full(name));
}

void Env::delete_file(const std::string& name) {
  // Removing the *last* hard link frees the inode for recycling; a later
  // file may be handed the same (dev, ino) and would alias any cached pages
  // left behind. Links held by other volumes (CoW-shared runs) keep the
  // entries alive — the bytes are still live there.
  invalidate_cached_file(full(name), /*last_link_only=*/true);
  if (!std::filesystem::remove(full(name))) {
    throw std::runtime_error("delete_file: no such file: " + name);
  }
  ++stats_.files_deleted;
}

void Env::rename_file(const std::string& from, const std::string& to) {
  // rename over an existing target unlinks the target exactly like
  // delete_file would.
  invalidate_cached_file(full(to), /*last_link_only=*/true);
  std::filesystem::rename(full(from), full(to));
}

void Env::link_file_to(const std::string& name,
                       const std::filesystem::path& dst_dir) {
  if (fault_hook_) fault_hook_("link", name);
  std::filesystem::create_hard_link(full(name), dst_dir / name);
  ++stats_.files_created;
}

void Env::copy_file_to(const std::string& name,
                       const std::filesystem::path& dst_dir) {
  if (fault_hook_) fault_hook_("copy", name);
  std::filesystem::copy_file(full(name), dst_dir / name,
                             std::filesystem::copy_options::overwrite_existing);
  const std::uint64_t bytes = std::filesystem::file_size(dst_dir / name);
  ++stats_.files_created;
  stats_.bytes_written += bytes;
  stats_.page_writes += pages_touched(0, bytes);
}

std::vector<std::string> Env::list_files() const {
  std::vector<std::string> names;
  for (const auto& entry : std::filesystem::directory_iterator(root_)) {
    if (entry.is_regular_file()) names.push_back(entry.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  return names;
}

WritableFile::WritableFile(Env& env, const std::filesystem::path& path,
                           bool truncate)
    : env_(env), name_(path.filename().string()) {
  const int flags = O_CREAT | O_WRONLY | (truncate ? O_TRUNC : O_APPEND);
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) throw_errno("open for write: " + path.string());
  if (!truncate) {
    const off_t sz = ::lseek(fd_, 0, SEEK_END);
    if (sz < 0) throw_errno("lseek");
    size_ = static_cast<std::uint64_t>(sz);
  }
}

WritableFile::~WritableFile() {
  if (fd_ >= 0) ::close(fd_);
}

std::size_t WritableFile::fault_admitted_bytes(
    std::span<const std::uint8_t> data) {
  Env::WriteFaultPlan& plan = env_.write_fault_;
  if (plan.mode == Env::WriteFaultMode::kNone) return data.size();
  if (env_.fault_appends_seen_ < plan.after_writes) {
    ++env_.fault_appends_seen_;
    return data.size();
  }
  if (data.empty()) return 0;  // nothing to tear; the no-op append succeeds
  std::size_t admit = 0;
  switch (plan.mode) {
    case Env::WriteFaultMode::kEio:
      admit = 0;
      break;
    case Env::WriteFaultMode::kShortWrite:
      admit = data.size() / 2;
      break;
    case Env::WriteFaultMode::kTornPage:
      // Half of one 4 KB page lands; cap below the full request so the
      // failure is always observable as a torn tail.
      admit = std::min<std::size_t>(data.size() - 1, kPageSize / 2);
      break;
    case Env::WriteFaultMode::kNone:
      break;
  }
  // Latch: the partial write happened once; a sticky plan keeps failing as
  // a plain EIO from now on (the persistent-error case that wounds a
  // volume), a one-shot plan heals.
  plan.mode = plan.sticky ? Env::WriteFaultMode::kEio
                          : Env::WriteFaultMode::kNone;
  plan.after_writes = 0;
  env_.fault_appends_seen_ = 0;
  return admit;
}

void WritableFile::append(std::span<const std::uint8_t> data) {
  if (fd_ < 0) throw std::logic_error("WritableFile: append after close");
  if (env_.fault_hook_) env_.fault_hook_("append", name_);
  const std::size_t admitted = fault_admitted_bytes(data);
  const bool fail_after = admitted < data.size();
  if (fail_after) data = data.first(admitted);
  const IoTimer timer(env_.stats_);
  const std::uint8_t* p = data.data();
  std::size_t remaining = data.size();
  while (remaining > 0) {
    const ssize_t n = ::write(fd_, p, remaining);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("write");
    }
    // POSIX allows write() to return 0 for a nonzero count (e.g. a
    // non-blocking target); retrying would spin forever, so treat it as the
    // I/O error it is.
    if (n == 0)
      throw std::runtime_error("WritableFile: write returned 0 bytes");
    p += n;
    remaining -= static_cast<std::size_t>(n);
  }
  env_.stats_.page_writes += pages_touched(size_, data.size());
  env_.stats_.bytes_written += data.size();
  size_ += data.size();
  if (fail_after) {
    errno = EIO;
    throw_errno("write (injected fault): " + name_);
  }
}

void WritableFile::sync() {
  if (fd_ < 0) return;
  if (env_.fault_hook_) env_.fault_hook_("sync", name_);
  if (env_.write_fault_.mode != Env::WriteFaultMode::kNone &&
      env_.fault_appends_seen_ >= env_.write_fault_.after_writes) {
    errno = EIO;
    throw_errno("fsync (injected fault): " + name_);
  }
  if (!env_.sync_enabled_) return;
  const std::uint64_t start = util::now_micros();
  if (::fsync(fd_) < 0) throw_errno("fsync");
  const std::uint64_t d = util::now_micros() - start;
  ++env_.stats_.fsyncs;
  env_.stats_.fsync_micros += d;
  env_.stats_.io_micros += d;
}

void WritableFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

RandomAccessFile::RandomAccessFile(Env& env, const std::filesystem::path& path,
                                   bool writable)
    : env_(env), writable_(writable) {
  fd_ = ::open(path.c_str(), writable ? O_RDWR : O_RDONLY);
  if (fd_ < 0) throw_errno("open: " + path.string());
  const off_t sz = ::lseek(fd_, 0, SEEK_END);
  if (sz < 0) throw_errno("lseek");
  size_ = static_cast<std::uint64_t>(sz);
  id_ = env.next_file_id_++;
  struct stat st{};
  if (::fstat(fd_, &st) < 0) throw_errno("fstat: " + path.string());
  dev_ = static_cast<std::uint64_t>(st.st_dev);
  ino_ = static_cast<std::uint64_t>(st.st_ino);
}

RandomAccessFile::~RandomAccessFile() {
  if (fd_ >= 0) ::close(fd_);
}

void RandomAccessFile::read(std::uint64_t offset,
                            std::span<std::uint8_t> data) const {
  const IoTimer timer(env_.stats_);
  std::uint8_t* p = data.data();
  std::size_t remaining = data.size();
  std::uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pread(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pread");
    }
    if (n == 0) throw std::runtime_error("RandomAccessFile: short read");
    p += n;
    off += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  env_.stats_.page_reads += pages_touched(offset, data.size());
  env_.stats_.bytes_read += data.size();
}

void RandomAccessFile::read_page(std::uint64_t page_no,
                                 std::span<std::uint8_t> page) const {
  if (page.size() != kPageSize)
    throw std::invalid_argument("read_page: buffer must be one page");
  read(page_no * kPageSize, page);
}

void RandomAccessFile::write_page(std::uint64_t page_no,
                                  std::span<const std::uint8_t> page) {
  if (!writable_) throw std::logic_error("write_page on read-only file");
  if (page.size() != kPageSize)
    throw std::invalid_argument("write_page: buffer must be one page");
  const IoTimer timer(env_.stats_);
  const std::uint64_t offset = page_no * kPageSize;
  const std::uint8_t* p = page.data();
  std::size_t remaining = page.size();
  std::uint64_t off = offset;
  while (remaining > 0) {
    const ssize_t n = ::pwrite(fd_, p, remaining, static_cast<off_t>(off));
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("pwrite");
    }
    p += n;
    off += static_cast<std::uint64_t>(n);
    remaining -= static_cast<std::size_t>(n);
  }
  env_.stats_.page_writes += 1;
  env_.stats_.bytes_written += page.size();
  size_ = std::max(size_, offset + kPageSize);
}

void RandomAccessFile::sync() {
  if (!env_.sync_enabled_) return;
  const std::uint64_t start = util::now_micros();
  if (::fsync(fd_) < 0) throw_errno("fsync");
  const std::uint64_t d = util::now_micros() - start;
  ++env_.stats_.fsyncs;
  env_.stats_.fsync_micros += d;
  env_.stats_.io_micros += d;
}

TempDir::TempDir(const std::string& prefix) {
  static std::atomic<std::uint64_t> counter{0};
  const auto base = std::filesystem::temp_directory_path();
  for (int attempt = 0; attempt < 100; ++attempt) {
    auto candidate =
        base / (prefix + "-" + std::to_string(::getpid()) + "-" +
                std::to_string(counter.fetch_add(1)));
    std::error_code ec;
    if (std::filesystem::create_directory(candidate, ec)) {
      path_ = std::move(candidate);
      return;
    }
  }
  throw std::runtime_error("TempDir: could not create a unique directory");
}

TempDir::~TempDir() {
  std::error_code ec;
  std::filesystem::remove_all(path_, ec);  // best effort
}

}  // namespace backlog::storage
