#include "storage/block_cache.hpp"

#include "util/hash.hpp"

namespace backlog::storage {

std::size_t BlockCache::KeyHash::operator()(const Key& k) const noexcept {
  // Mix all three components through the same 64-bit finalizer the rest of
  // the repo uses; dev is almost always constant, so fold it in first.
  std::uint64_t h = k.dev * 0x9e3779b97f4a7c15ULL;
  h ^= k.ino * 0x100000001b3ULL;
  h ^= k.page_no;
  return static_cast<std::size_t>(util::hash_u64(h));
}

BlockCache::BlockCache(std::uint64_t capacity_bytes, std::size_t shards)
    : capacity_bytes_(capacity_bytes) {
  if (shards == 0) shards = 1;
  // Each stripe owns an equal slice of the page budget. A nonzero total
  // budget always grants every stripe at least one page — otherwise a
  // "1-page cache" with 16 stripes would silently cache nothing.
  const std::uint64_t total_pages = capacity_bytes_ / kPageSize;
  pages_per_shard_ = static_cast<std::size_t>(total_pages / shards);
  if (total_pages != 0 && pages_per_shard_ == 0) pages_per_shard_ = 1;
  shards_.reserve(shards);
  for (std::size_t i = 0; i < shards; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

BlockCache::Shard& BlockCache::shard_of(const Key& k) noexcept {
  return *shards_[KeyHash{}(k) % shards_.size()];
}

const BlockCache::Shard& BlockCache::shard_of(const Key& k) const noexcept {
  return *shards_[KeyHash{}(k) % shards_.size()];
}

std::shared_ptr<const PageBuffer> BlockCache::get(const RandomAccessFile& file,
                                                  std::uint64_t page_no) {
  const Key key{file.dev(), file.ino(), page_no};

  if (enabled()) {
    Shard& s = shard_of(key);
    {
      const std::lock_guard<std::mutex> lock(s.mu);
      const auto it = s.map.find(key);
      if (it != s.map.end()) {
        s.lru.splice(s.lru.begin(), s.lru, it->second);
        hits_.fetch_add(1, std::memory_order_relaxed);
        return it->second->page;
      }
    }
  }

  // Miss: read outside any lock. Env charges the page read here — cached
  // hits above are free, matching the paper's cache-miss-only I/O counts.
  misses_.fetch_add(1, std::memory_order_relaxed);
  auto page = std::make_shared<PageBuffer>();
  file.read_page(page_no, *page);
  if (!enabled()) return page;

  Shard& s = shard_of(key);
  const std::lock_guard<std::mutex> lock(s.mu);
  const auto it = s.map.find(key);
  if (it != s.map.end()) {
    // A concurrent miss inserted while we were reading; the file is
    // immutable so both copies are identical — keep the resident one.
    s.lru.splice(s.lru.begin(), s.lru, it->second);
    return it->second->page;
  }
  s.lru.push_front(Entry{key, page});
  s.map.emplace(key, s.lru.begin());
  entries_.fetch_add(1, std::memory_order_relaxed);
  while (s.lru.size() > pages_per_shard_) {
    s.map.erase(s.lru.back().key);
    s.lru.pop_back();
    evictions_.fetch_add(1, std::memory_order_relaxed);
    entries_.fetch_sub(1, std::memory_order_relaxed);
  }
  return page;
}

void BlockCache::erase_file(std::uint64_t dev, std::uint64_t ino) {
  // O(resident pages), but only runs when a file's last link disappears —
  // compaction and volume destruction, never the query hot path.
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    for (auto it = s.lru.begin(); it != s.lru.end();) {
      if (it->key.dev == dev && it->key.ino == ino) {
        s.map.erase(it->key);
        it = s.lru.erase(it);
        invalidations_.fetch_add(1, std::memory_order_relaxed);
        entries_.fetch_sub(1, std::memory_order_relaxed);
      } else {
        ++it;
      }
    }
  }
}

void BlockCache::clear() {
  for (const auto& sp : shards_) {
    Shard& s = *sp;
    const std::lock_guard<std::mutex> lock(s.mu);
    const std::uint64_t n = s.lru.size();
    s.map.clear();
    s.lru.clear();
    invalidations_.fetch_add(n, std::memory_order_relaxed);
    entries_.fetch_sub(n, std::memory_order_relaxed);
  }
}

BlockCacheStats BlockCache::stats() const {
  BlockCacheStats out;
  out.hits = hits_.load(std::memory_order_relaxed);
  out.misses = misses_.load(std::memory_order_relaxed);
  out.evictions = evictions_.load(std::memory_order_relaxed);
  out.invalidations = invalidations_.load(std::memory_order_relaxed);
  out.entries = entries_.load(std::memory_order_relaxed);
  out.bytes = out.entries * kPageSize;
  out.capacity_bytes = capacity_bytes_;
  out.shards = shards_.size();
  return out;
}

}  // namespace backlog::storage
