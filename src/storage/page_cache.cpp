#include "storage/page_cache.hpp"

#include "util/hash.hpp"

namespace backlog::storage {

std::size_t PageCache::KeyHash::operator()(const Key& k) const noexcept {
  return static_cast<std::size_t>(
      util::hash_u64(k.file_id * 0x100000001b3ULL ^ k.page_no));
}

PageCache::PageCache(std::size_t capacity_pages) : capacity_(capacity_pages) {}

std::shared_ptr<const PageBuffer> PageCache::get(const RandomAccessFile& file,
                                                 std::uint64_t page_no) {
  const Key key{file.id(), page_no};
  if (capacity_ > 0) {
    if (auto it = map_.find(key); it != map_.end()) {
      ++hits_;
      lru_.splice(lru_.begin(), lru_, it->second);
      return it->second->page;
    }
  }
  ++misses_;
  auto buf = std::make_shared<PageBuffer>();
  file.read_page(page_no, std::span<std::uint8_t>(buf->data(), buf->size()));
  if (capacity_ == 0) return buf;

  lru_.push_front(Entry{key, buf});
  map_.emplace(key, lru_.begin());
  while (map_.size() > capacity_) {
    map_.erase(lru_.back().key);
    lru_.pop_back();
  }
  return buf;
}

void PageCache::clear() {
  lru_.clear();
  map_.clear();
}

void PageCache::erase_file(std::uint64_t file_id) {
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->key.file_id == file_id) {
      map_.erase(it->key);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace backlog::storage
