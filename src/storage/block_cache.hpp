// BlockCache: the service-wide sharded page cache.
//
// One cache serves every hosted volume. Entries are keyed by the file's
// (st_dev, st_ino) identity plus the page number, not by a per-Env handle
// id: run files are immutable and copy-on-write clones hard-link them, so
// two volumes reading the same shared run resolve to the same inode and
// therefore the same cache entry — CoW sharing becomes cache dedup by
// construction, with no cross-volume coordination.
//
// Concurrency: N mutex-striped shards, each an independent LRU with its own
// slice of the byte budget. A lookup locks exactly one shard; the page read
// on a miss happens *outside* the lock so a slow disk stalls only the ops
// that need that very page, never the stripe. Hit/miss/eviction counters are
// relaxed atomics (many shard threads bump them concurrently) and are
// exported through the service MetricsRegistry as callback gauges.
//
// Invalidation: run files are immutable, so entries never go stale while
// the file exists. The only hazard is inode recycling — a new file created
// after the last hard link of a cached file is unlinked may reuse the
// (dev, ino) pair. Env erases a file's entries when it removes the *last*
// physical link (st_nlink == 1 at unlink time); links held by other volumes
// keep the entries, which is exactly right because the bytes are still live.
//
// A capacity of zero disables caching entirely: every get() reads through
// (counted as a miss) and stores nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "storage/env.hpp"

namespace backlog::storage {

/// One cached 4 KB page.
using PageBuffer = std::array<std::uint8_t, kPageSize>;

/// Point-in-time counter snapshot; any thread may take one.
struct BlockCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;   ///< entries pushed out by the byte budget
  std::uint64_t invalidations = 0;  ///< entries dropped by erase_file/clear
  std::uint64_t entries = 0;     ///< resident pages
  std::uint64_t bytes = 0;       ///< resident bytes (entries * page size)
  std::uint64_t capacity_bytes = 0;
  std::uint64_t shards = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(total);
  }
};

class BlockCache {
 public:
  /// `capacity_bytes` is the total budget across all shards (rounded down to
  /// whole pages per shard); 0 disables the cache. `shards` is clamped to at
  /// least 1.
  explicit BlockCache(std::uint64_t capacity_bytes, std::size_t shards = 16);

  BlockCache(const BlockCache&) = delete;
  BlockCache& operator=(const BlockCache&) = delete;

  /// Return page `page_no` of `file`, from cache or by reading through.
  /// The read happens outside the shard lock; concurrent misses on the same
  /// page may each read it once (last insert wins — the pages are identical
  /// because run files are immutable).
  std::shared_ptr<const PageBuffer> get(const RandomAccessFile& file,
                                        std::uint64_t page_no);

  /// Drop every entry of the file identified by (dev, ino). Called by Env
  /// when the last physical link of a file is unlinked (inode-recycling
  /// hazard) — see the header comment.
  void erase_file(std::uint64_t dev, std::uint64_t ino);

  /// Drop everything (cold-cache experiments, §6.4; `backlogctl cache clear`).
  void clear();

  [[nodiscard]] BlockCacheStats stats() const;
  [[nodiscard]] std::uint64_t capacity_bytes() const noexcept {
    return capacity_bytes_;
  }
  [[nodiscard]] bool enabled() const noexcept { return capacity_bytes_ != 0; }

 private:
  struct Key {
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::uint64_t page_no = 0;

    friend bool operator==(const Key&, const Key&) = default;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept;
  };

  struct Entry {
    Key key;
    std::shared_ptr<const PageBuffer> page;
  };

  /// One stripe: an independent LRU over its slice of the budget. Aligned
  /// so two stripes' locks never share a cache line.
  struct alignas(64) Shard {
    std::mutex mu;
    std::list<Entry> lru;  // front = most recent
    std::unordered_map<Key, std::list<Entry>::iterator, KeyHash> map;
  };

  Shard& shard_of(const Key& k) noexcept;
  const Shard& shard_of(const Key& k) const noexcept;

  std::uint64_t capacity_bytes_;
  std::size_t pages_per_shard_;
  std::vector<std::unique_ptr<Shard>> shards_;

  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> evictions_{0};
  std::atomic<std::uint64_t> invalidations_{0};
  std::atomic<std::uint64_t> entries_{0};
};

}  // namespace backlog::storage
