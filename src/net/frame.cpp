#include "net/frame.hpp"

#include "util/crc32c.hpp"
#include "util/hash.hpp"

namespace backlog::net {

namespace {

// Header field offsets (see the layout table in frame.hpp).
constexpr std::size_t kOffMagic = 0;
constexpr std::size_t kOffVersion = 4;
constexpr std::size_t kOffVerb = 6;
constexpr std::size_t kOffTenant = 8;
constexpr std::size_t kOffPayloadLen = 16;
constexpr std::size_t kOffCrc = 20;

std::uint32_t compute_crc(std::span<const std::uint8_t> header_wo_crc,
                          std::span<const std::uint8_t> payload) noexcept {
  const std::uint32_t h = util::crc32c(header_wo_crc.data(), kOffCrc);
  return util::crc32c(payload.data(), payload.size(), h);
}

}  // namespace

const char* to_string(HeaderStatus s) noexcept {
  switch (s) {
    case HeaderStatus::kOk: return "ok";
    case HeaderStatus::kBadMagic: return "bad magic";
    case HeaderStatus::kBadVersion: return "bad version";
    case HeaderStatus::kTooLarge: return "payload length over hard cap";
  }
  return "unknown";
}

HeaderStatus decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader& out) noexcept {
  // The caller guarantees kHeaderSize bytes; validate cheapest-first so a
  // port scanner's garbage is rejected on the first four bytes.
  out.magic = util::get_u32(bytes.data() + kOffMagic);
  if (out.magic != kFrameMagic) return HeaderStatus::kBadMagic;
  out.version = util::get_u16(bytes.data() + kOffVersion);
  if (out.version != kProtocolVersion) return HeaderStatus::kBadVersion;
  out.verb = util::get_u16(bytes.data() + kOffVerb);
  out.tenant_id = util::get_u64(bytes.data() + kOffTenant);
  out.payload_len = util::get_u32(bytes.data() + kOffPayloadLen);
  out.crc = util::get_u32(bytes.data() + kOffCrc);
  if (out.payload_len > kMaxFramePayload) return HeaderStatus::kTooLarge;
  return HeaderStatus::kOk;
}

bool frame_crc_ok(std::span<const std::uint8_t> frame) noexcept {
  const std::uint32_t stored = util::get_u32(frame.data() + kOffCrc);
  return compute_crc(frame.first(kHeaderSize),
                     frame.subspan(kHeaderSize)) == stored;
}

std::vector<std::uint8_t> encode_frame(std::uint16_t verb,
                                       std::uint64_t tenant_id,
                                       std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out(kHeaderSize + payload.size());
  util::put_u32(out.data() + kOffMagic, kFrameMagic);
  util::put_u16(out.data() + kOffVersion, kProtocolVersion);
  util::put_u16(out.data() + kOffVerb, verb);
  util::put_u64(out.data() + kOffTenant, tenant_id);
  util::put_u32(out.data() + kOffPayloadLen,
                static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(out.data() + kHeaderSize, payload.data(), payload.size());
  }
  util::put_u32(out.data() + kOffCrc,
                compute_crc({out.data(), kHeaderSize},
                            {out.data() + kHeaderSize, payload.size()}));
  return out;
}

std::vector<std::uint8_t> encode_response_payload(
    service::ErrorCode code, const std::string& message,
    std::span<const std::uint8_t> body) {
  util::Writer w;
  w.u8(static_cast<std::uint8_t>(code));
  if (code == service::ErrorCode::kOk) {
    w.bytes(body);
  } else {
    w.string(message);
  }
  return w.take();
}

ResponseView decode_response_prefix(util::Reader& r) {
  ResponseView v;
  v.code = static_cast<service::ErrorCode>(r.u8());
  if (v.code != service::ErrorCode::kOk) {
    v.message = r.string(/*max_len=*/4096);
  }
  return v;
}

std::uint64_t tenant_hash(std::string_view tenant) noexcept {
  return tenant.empty()
             ? 0
             : util::hash_bytes(tenant.data(), tenant.size(), /*seed=*/0x7e9a97);
}

}  // namespace backlog::net
