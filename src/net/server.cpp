#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <system_error>
#include <utility>

namespace backlog::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::system_error(errno, std::generic_category(), what);
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void wake(int event_fd) {
  const std::uint64_t one = 1;
  ssize_t n;
  do {
    n = ::write(event_fd, &one, sizeof one);
  } while (n < 0 && errno == EINTR);
}

void drain_eventfd(int event_fd) {
  std::uint64_t v;
  ssize_t n;
  do {
    n = ::read(event_fd, &v, sizeof v);
  } while (n < 0 && errno == EINTR);
}

}  // namespace

Server::~Server() { stop(); }

void Server::register_handler(Verb verb, std::uint32_t max_payload,
                              Handler handler) {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("Server: register_handler after start");
  }
  handlers_[static_cast<std::uint16_t>(verb)] =
      VerbEntry{max_payload, std::move(handler)};
}

void Server::start(const ServerOptions& options) {
  if (running_.exchange(true)) {
    throw std::logic_error("Server: already started");
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options.port);
  if (::inet_pton(AF_INET, options.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::invalid_argument("Server: bad bind address " +
                                options.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    running_.store(false);
    throw std::system_error(err, std::generic_category(),
                            "bind/listen " + options.bind_address + ":" +
                                std::to_string(options.port));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof bound;
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &blen);
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);

  if (options.metrics != nullptr) {
    auto& reg = *options.metrics;
    g_connections_ = &reg.gauge("backlog_net_connections",
                                "TCP connections accepted since start");
    g_active_ = &reg.gauge("backlog_net_active_connections",
                           "TCP connections currently open");
    g_frames_ = &reg.gauge("backlog_net_frames",
                           "Request frames received since start");
    g_decode_errors_ =
        &reg.gauge("backlog_net_decode_errors",
                   "Malformed frames (bad magic/version/length/crc, "
                   "mid-frame close) that closed a connection");
    g_bytes_in_ =
        &reg.gauge("backlog_net_bytes_in", "Bytes read off the network");
    g_bytes_out_ =
        &reg.gauge("backlog_net_bytes_out", "Bytes written to the network");
  }

  const std::size_t threads = options.io_threads == 0 ? 1 : options.io_threads;
  io_.clear();
  for (std::size_t i = 0; i < threads; ++i) {
    auto t = std::make_unique<IoThread>();
    t->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (t->epoll_fd < 0) throw_errno("epoll_create1");
    t->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (t->wake_fd < 0) throw_errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = t->wake_fd;
    if (::epoll_ctl(t->epoll_fd, EPOLL_CTL_ADD, t->wake_fd, &ev) < 0) {
      throw_errno("epoll_ctl wake_fd");
    }
    io_.push_back(std::move(t));
  }
  for (auto& t : io_) {
    IoThread* tp = t.get();
    t->thread = std::thread([this, tp] { io_loop(*tp); });
  }

  accept_wake_fd_ = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (accept_wake_fd_ < 0) throw_errno("eventfd");
  acceptor_ = std::thread([this] { accept_loop(); });
}

void Server::stop() {
  if (!running_.exchange(false)) return;
  if (accept_wake_fd_ >= 0) wake(accept_wake_fd_);
  if (acceptor_.joinable()) acceptor_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_wake_fd_ >= 0) {
    ::close(accept_wake_fd_);
    accept_wake_fd_ = -1;
  }
  for (auto& t : io_) {
    wake(t->wake_fd);
    if (t->thread.joinable()) t->thread.join();
    for (auto& [fd, conn] : t->conns) {
      (void)conn;
      ::close(fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
    }
    t->conns.clear();
    {
      const std::lock_guard<std::mutex> lock(t->pending_mu);
      for (const int fd : t->pending_fds) ::close(fd);
      t->pending_fds.clear();
    }
    ::close(t->wake_fd);
    ::close(t->epoll_fd);
  }
  io_.clear();
  publish_metrics();
}

ServerStats Server::stats() const noexcept {
  ServerStats s;
  s.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  s.connections_active = connections_active_.load(std::memory_order_relaxed);
  s.frames_received = frames_received_.load(std::memory_order_relaxed);
  s.decode_errors = decode_errors_.load(std::memory_order_relaxed);
  s.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  s.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  return s;
}

void Server::publish_metrics() noexcept {
  if (g_connections_ == nullptr) return;
  g_connections_->set(static_cast<double>(
      connections_accepted_.load(std::memory_order_relaxed)));
  g_active_->set(static_cast<double>(
      connections_active_.load(std::memory_order_relaxed)));
  g_frames_->set(
      static_cast<double>(frames_received_.load(std::memory_order_relaxed)));
  g_decode_errors_->set(
      static_cast<double>(decode_errors_.load(std::memory_order_relaxed)));
  g_bytes_in_->set(
      static_cast<double>(bytes_in_.load(std::memory_order_relaxed)));
  g_bytes_out_->set(
      static_cast<double>(bytes_out_.load(std::memory_order_relaxed)));
}

void Server::accept_loop() {
  while (running_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    fds[0] = {listen_fd_, POLLIN, 0};
    fds[1] = {accept_wake_fd_, POLLIN, 0};
    const int rc = ::poll(fds, 2, -1);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;
    if ((fds[0].revents & POLLIN) == 0) continue;
    while (true) {
      const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN (drained) or a transient accept error
      }
      set_nonblocking(fd);
      const int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
      connections_accepted_.fetch_add(1, std::memory_order_relaxed);
      connections_active_.fetch_add(1, std::memory_order_relaxed);
      IoThread& t =
          *io_[next_io_.fetch_add(1, std::memory_order_relaxed) % io_.size()];
      {
        const std::lock_guard<std::mutex> lock(t.pending_mu);
        t.pending_fds.push_back(fd);
      }
      wake(t.wake_fd);
    }
  }
}

void Server::adopt_pending(IoThread& t) {
  std::vector<int> fds;
  {
    const std::lock_guard<std::mutex> lock(t.pending_mu);
    fds.swap(t.pending_fds);
  }
  for (const int fd : fds) {
    auto conn = std::make_unique<Connection>();
    conn->fd = fd;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (::epoll_ctl(t.epoll_fd, EPOLL_CTL_ADD, fd, &ev) < 0) {
      ::close(fd);
      connections_active_.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    t.conns.emplace(fd, std::move(conn));
  }
}

void Server::io_loop(IoThread& t) {
  epoll_event events[64];
  while (true) {
    const int n = ::epoll_wait(t.epoll_fd, events, 64, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (!running_.load(std::memory_order_acquire)) break;
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == t.wake_fd) {
        drain_eventfd(t.wake_fd);
        adopt_pending(t);
        continue;
      }
      const auto it = t.conns.find(fd);
      if (it == t.conns.end()) continue;  // closed earlier in this batch
      Connection& c = *it->second;
      bool alive = true;
      if ((events[i].events & (EPOLLERR | EPOLLHUP)) != 0) {
        // Flush what the peer can still receive, then close: EPOLLHUP with
        // readable bytes pending is handled by the read path below first.
        alive = on_readable(t, c);
      } else {
        if ((events[i].events & EPOLLIN) != 0) alive = on_readable(t, c);
        if (alive && (events[i].events & EPOLLOUT) != 0) {
          alive = flush_writes(t, c);
        }
      }
      if (!alive) close_connection(t, fd);
    }
    publish_metrics();
  }
}

bool Server::on_readable(IoThread& t, Connection& c) {
  std::uint8_t chunk[64 * 1024];
  while (true) {
    const ssize_t n = ::read(c.fd, chunk, sizeof chunk);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    if (n == 0) {
      // EOF. Unparsed leftover bytes mean the peer hung up mid-frame — that
      // is a decode error (the stream ended where a frame promised more).
      if (c.rpos < c.rbuf.size()) {
        decode_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      return false;
    }
    bytes_in_.fetch_add(static_cast<std::uint64_t>(n),
                        std::memory_order_relaxed);
    c.rbuf.insert(c.rbuf.end(), chunk, chunk + n);
    if (!process_frames(c)) return false;
    if (static_cast<std::size_t>(n) < sizeof chunk) break;  // likely drained
  }
  return flush_writes(t, c);
}

bool Server::process_frames(Connection& c) {
  while (c.rbuf.size() - c.rpos >= kHeaderSize) {
    const std::span<const std::uint8_t> avail{c.rbuf.data() + c.rpos,
                                              c.rbuf.size() - c.rpos};
    FrameHeader h;
    const HeaderStatus hs = decode_header(avail.first(kHeaderSize), h);
    if (hs != HeaderStatus::kOk) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Per-verb cap check *before* buffering the payload: a known verb's
    // frame over its cap is a decode error — skipping megabytes of payload
    // to keep a hostile stream alive is not worth it.
    const auto entry = handlers_.find(h.verb);
    if (entry != handlers_.end() && h.payload_len > entry->second.max_payload) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    const std::size_t frame_len = kHeaderSize + h.payload_len;
    if (avail.size() < frame_len) break;  // wait for the rest

    if (!frame_crc_ok(avail.first(frame_len))) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    frames_received_.fetch_add(1, std::memory_order_relaxed);

    Response resp;
    if (entry == handlers_.end() || h.is_response()) {
      resp = Response::error(
          service::ErrorCode::kNoSuchVerb,
          "unknown verb id " + std::to_string(h.verb));
    } else {
      util::Reader req(avail.subspan(kHeaderSize, h.payload_len));
      try {
        resp = entry->second.handler(h, req);
      } catch (const util::SerdeError& e) {
        resp = Response::error(service::ErrorCode::kBadRequest, e.what());
      } catch (const service::ServiceError& e) {
        resp = Response::error(e.code(), e.what());
      } catch (const std::invalid_argument& e) {
        resp = Response::error(service::ErrorCode::kBadRequest, e.what());
      } catch (const std::exception& e) {
        resp = Response::error(service::ErrorCode::kInternal, e.what());
      }
    }
    const std::vector<std::uint8_t> payload =
        encode_response_payload(resp.code, resp.message, resp.body);
    const std::vector<std::uint8_t> frame = encode_frame(
        static_cast<std::uint16_t>(h.verb | kResponseBit), h.tenant_id,
        payload);
    c.wbuf.insert(c.wbuf.end(), frame.begin(), frame.end());
    c.rpos += frame_len;
  }
  // Compact: drop the parsed prefix once it dominates the buffer, so a
  // long-lived connection doesn't accrete every frame it ever received.
  if (c.rpos == c.rbuf.size()) {
    c.rbuf.clear();
    c.rpos = 0;
  } else if (c.rpos > 64 * 1024) {
    c.rbuf.erase(c.rbuf.begin(),
                 c.rbuf.begin() + static_cast<std::ptrdiff_t>(c.rpos));
    c.rpos = 0;
  }
  return true;
}

bool Server::flush_writes(IoThread& t, Connection& c) {
  while (c.wpos < c.wbuf.size()) {
    const ssize_t n =
        ::write(c.fd, c.wbuf.data() + c.wpos, c.wbuf.size() - c.wpos);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        if (!c.want_write) {
          c.want_write = true;
          epoll_event ev{};
          ev.events = EPOLLIN | EPOLLOUT;
          ev.data.fd = c.fd;
          ::epoll_ctl(t.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
        }
        return true;
      }
      return false;
    }
    if (n == 0) return false;  // same rule as the storage layer: 0 is fatal
    bytes_out_.fetch_add(static_cast<std::uint64_t>(n),
                         std::memory_order_relaxed);
    c.wpos += static_cast<std::size_t>(n);
  }
  c.wbuf.clear();
  c.wpos = 0;
  if (c.want_write) {
    c.want_write = false;
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = c.fd;
    ::epoll_ctl(t.epoll_fd, EPOLL_CTL_MOD, c.fd, &ev);
  }
  return true;
}

void Server::close_connection(IoThread& t, int fd) {
  ::epoll_ctl(t.epoll_fd, EPOLL_CTL_DEL, fd, nullptr);
  ::close(fd);
  t.conns.erase(fd);
  connections_active_.fetch_sub(1, std::memory_order_relaxed);
}

}  // namespace backlog::net
