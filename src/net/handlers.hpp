// ServiceEndpoint — the glue between the epoll Server and a VolumeManager.
//
// Registers a handler for every wire verb against one VolumeManager:
// control verbs decode under kControlPayloadCap, the data-plane batch verbs
// (apply/query) under kDataPayloadCap. Handlers re-validate everything the
// payload claims (tenant names through the same validation open_volume
// uses, shard indexes against shard_count()) — the header's tenant hash is
// a scheduling hint, never an authority. Volume-not-hosted is answered with
// kNoSuchTenant; a QoS rejection propagates as kThrottled byte-for-byte to
// the remote caller.
//
// The endpoint owns the Server and a MetricsPoller (for the kPollRates
// verb); net counters land in the VolumeManager's MetricsRegistry.
#pragma once

#include <cstdint>
#include <mutex>

#include "net/server.hpp"
#include "service/metrics.hpp"
#include "service/volume_manager.hpp"

namespace backlog::net {

class ServiceEndpoint {
 public:
  /// Registers every verb; does not listen yet.
  explicit ServiceEndpoint(service::VolumeManager& vm);

  /// Bind + serve. `options.metrics` is overridden to the VolumeManager's
  /// registry.
  void start(ServerOptions options);
  void stop();

  [[nodiscard]] std::uint16_t port() const noexcept { return server_.port(); }
  [[nodiscard]] const Server& server() const noexcept { return server_; }

 private:
  void register_handlers();

  service::VolumeManager& vm_;
  service::MetricsPoller poller_;
  std::mutex balance_mu_;  ///< kBalanceText cycles run exclusively
  Server server_;
};

}  // namespace backlog::net
