// Wire framing for the Backlog network protocol.
//
// One frame = one verb invocation (or its response). The framing is a fixed
// 24-byte little-endian header followed by the payload:
//
//   offset  size  field
//        0     4  magic        0x42 0x4b 0x4c 0x47 ("BKLG")
//        4     2  version      kProtocolVersion
//        6     2  verb         Verb id; responses set kResponseBit
//        8     8  tenant_id    scheduling hint: util::hash_bytes of the
//                              tenant name (0 for tenant-less verbs). The
//                              authoritative tenant name travels in the
//                              payload; the header copy exists so QoS /
//                              per-tenant connection scheduling can classify
//                              a frame without decoding it.
//       16     4  payload_len  bytes following the header
//       20     4  crc32c       over header bytes [0, 20) then the payload
//
// Everything that arrives off a socket is untrusted: headers are validated
// field by field (magic, version, length caps) before the payload length is
// believed, the crc covers header *and* payload so a flipped verb id or
// length can't slip through, and payloads are decoded exclusively with the
// bounds-checked util::Reader. A frame that fails any of these checks is a
// decode error: the connection is closed (a corrupt byte stream cannot be
// re-synchronized) and the server's decode-error counter is bumped. An
// *unknown verb* in an otherwise valid frame is NOT a decode error — the
// stream is still framed, so the server answers ErrorCode::kNoSuchVerb and
// keeps the connection.
//
// Responses reuse the request's verb with kResponseBit set, and their
// payload starts with one status byte (service::ErrorCode) — on kOk the
// verb-specific body follows, otherwise a length-prefixed error message.
// This is how kThrottled backpressure reaches remote clients byte-for-byte
// identically to in-process callers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "service/qos.hpp"  // ErrorCode: the shared status space
#include "util/serde.hpp"

namespace backlog::net {

inline constexpr std::uint32_t kFrameMagic = 0x474c4b42;  // "BKLG" in LE
inline constexpr std::uint16_t kProtocolVersion = 1;
inline constexpr std::size_t kHeaderSize = 24;
inline constexpr std::uint16_t kResponseBit = 0x8000;

/// Absolute payload ceiling, independent of any verb's own cap: a header
/// promising more than this is corrupt by definition and closes the
/// connection before a single payload byte is buffered.
inline constexpr std::uint32_t kMaxFramePayload = 32u << 20;

/// Default per-verb request caps (Server::register_handler takes an explicit
/// cap; these are the conventional tiers). Control verbs carry names and a
/// handful of integers; data verbs carry op batches.
inline constexpr std::uint32_t kControlPayloadCap = 64u << 10;
inline constexpr std::uint32_t kDataPayloadCap = 4u << 20;

/// Verb ids (wire values — append only).
enum class Verb : std::uint16_t {
  kPing = 1,
  kOpenVolume = 2,
  kCloseVolume = 3,
  kDestroyVolume = 4,
  kListTenants = 5,

  // Data plane: the batch verbs PR 5 built as the RPC surface.
  kApplyBatch = 16,
  kQueryBatch = 17,
  kConsistencyPoint = 18,

  // Snapshot / placement control plane.
  kTakeSnapshot = 32,
  kListVersions = 33,
  kCloneVolume = 34,
  kMigrateVolume = 35,
  kSetQos = 36,
  kQosSnapshot = 37,
  kQuickStats = 38,

  // Observability / inspection (responses are pre-rendered text so the
  // remote CLI prints byte-identical reports to the local one).
  kStatsText = 64,
  kMetricsText = 65,
  kPollRates = 66,
  kSetTracing = 67,
  kTraceText = 68,
  kInfoText = 69,
  kRunsText = 70,
  kQueryText = 71,
  kScanText = 72,
  kMaintainText = 73,
  kDumpRunText = 74,
  kBalanceText = 75,
  kCacheText = 76,
  kCacheClear = 77,
};

struct FrameHeader {
  std::uint32_t magic = kFrameMagic;
  std::uint16_t version = kProtocolVersion;
  std::uint16_t verb = 0;  ///< Verb id, possibly with kResponseBit
  std::uint64_t tenant_id = 0;
  std::uint32_t payload_len = 0;
  std::uint32_t crc = 0;

  [[nodiscard]] bool is_response() const noexcept {
    return (verb & kResponseBit) != 0;
  }
  [[nodiscard]] Verb verb_id() const noexcept {
    return static_cast<Verb>(verb & ~kResponseBit);
  }
};

/// Header-validation outcome; anything but kOk is a decode error.
enum class HeaderStatus : std::uint8_t {
  kOk,
  kBadMagic,
  kBadVersion,
  kTooLarge,  ///< payload_len over kMaxFramePayload
};
const char* to_string(HeaderStatus s) noexcept;

/// Decode + validate the fixed header from `bytes` (must hold kHeaderSize).
/// On kOk, `out` is filled; the crc is NOT checked here (the payload hasn't
/// arrived yet) — call frame_crc_ok once the full frame is buffered.
HeaderStatus decode_header(std::span<const std::uint8_t> bytes,
                           FrameHeader& out) noexcept;

/// CRC of a full frame (header bytes with the stored crc ignored, then the
/// payload). `frame` must hold kHeaderSize + header.payload_len bytes.
[[nodiscard]] bool frame_crc_ok(std::span<const std::uint8_t> frame) noexcept;

/// Encode one frame: header (crc computed) + payload.
std::vector<std::uint8_t> encode_frame(std::uint16_t verb,
                                       std::uint64_t tenant_id,
                                       std::span<const std::uint8_t> payload);

/// Response-payload helpers: status byte, then body (kOk) or message.
std::vector<std::uint8_t> encode_response_payload(
    service::ErrorCode code, const std::string& message,
    std::span<const std::uint8_t> body);

/// Decoded response payload; `body` borrows from the reader's buffer on kOk.
struct ResponseView {
  service::ErrorCode code = service::ErrorCode::kOk;
  std::string message;  ///< empty on kOk
};

/// Split a response payload into status/message and position `r` at the
/// start of the body. Throws util::SerdeError on truncation.
ResponseView decode_response_prefix(util::Reader& r);

/// Scheduling-hint tenant id for the frame header.
std::uint64_t tenant_hash(std::string_view tenant) noexcept;

}  // namespace backlog::net
