#include "net/handlers.hpp"

#include <chrono>
#include <future>

#include "net/render.hpp"
#include "net/wire.hpp"
#include "service/service.hpp"

namespace backlog::net {

namespace {

using Response = Server::Response;

Response no_such_tenant(const std::string& tenant) {
  return Response::error(service::ErrorCode::kNoSuchTenant,
                         "no volume '" + tenant + "' hosted here");
}

Response text_ok(const std::string& text) {
  util::Writer w;
  w.string(text);
  return Response::ok(w.take());
}

}  // namespace

ServiceEndpoint::ServiceEndpoint(service::VolumeManager& vm)
    : vm_(vm), poller_(vm, std::chrono::milliseconds(100)) {
  register_handlers();
}

void ServiceEndpoint::start(ServerOptions options) {
  options.metrics = &vm_.metrics();
  server_.start(options);
}

void ServiceEndpoint::stop() { server_.stop(); }

void ServiceEndpoint::register_handlers() {
  const auto ctl = kControlPayloadCap;
  const auto data = kDataPayloadCap;

  server_.register_handler(
      Verb::kPing, ctl,
      [](const FrameHeader&, util::Reader&) { return Response::ok(); });

  server_.register_handler(
      Verb::kOpenVolume, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        // Idempotent: remote CLIs open before every verb sequence, and a
        // volume that is already hosted is exactly the state they asked for.
        if (!vm_.has_volume(tenant)) vm_.open_volume(tenant);
        return Response::ok();
      });

  server_.register_handler(
      Verb::kCloseVolume, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        vm_.close_volume(tenant);
        return Response::ok();
      });

  server_.register_handler(
      Verb::kDestroyVolume, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        vm_.destroy_volume(tenant);
        return Response::ok();
      });

  server_.register_handler(
      Verb::kListTenants, ctl, [this](const FrameHeader&, util::Reader&) {
        const auto tenants = vm_.tenants();
        util::Writer w;
        w.u32(static_cast<std::uint32_t>(tenants.size()));
        for (const auto& t : tenants) w.string(t);
        return Response::ok(w.take());
      });

  // --- data plane ------------------------------------------------------------

  server_.register_handler(
      Verb::kApplyBatch, data, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        auto ops = wire::get_update_ops(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        vm_.apply_batch(tenant, std::move(ops)).get();
        return Response::ok();
      });

  server_.register_handler(
      Verb::kQueryBatch, data, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        auto ranges = wire::get_query_ranges(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        const auto results = vm_.query_batch(tenant, std::move(ranges)).get();
        util::Writer w;
        wire::put_query_results(w, results);
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kConsistencyPoint, ctl,
      [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        const auto stats = vm_.consistency_point(tenant).get();
        util::Writer w;
        wire::put_cp_stats(w, stats);
        return Response::ok(w.take());
      });

  // --- snapshot / placement control plane ------------------------------------

  server_.register_handler(
      Verb::kTakeSnapshot, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const core::LineId line = r.u64();
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        const core::Epoch version = vm_.take_snapshot(tenant, line).get();
        util::Writer w;
        w.u64(version);
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kListVersions, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const core::LineId line = r.u64();
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        const auto versions = vm_.list_versions(tenant, line).get();
        util::Writer w;
        w.u32(static_cast<std::uint32_t>(versions.size()));
        for (const core::Epoch v : versions) w.u64(v);
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kCloneVolume, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string src = wire::get_tenant(r);
        const std::string dst = wire::get_tenant(r);
        const core::LineId line = r.u64();
        const core::Epoch version = r.u64();
        if (!vm_.has_volume(src)) return no_such_tenant(src);
        const core::LineId new_line = vm_.clone_volume(src, dst, line, version);
        const core::FileManifest::Stats fs = vm_.shared_files().stats();
        util::Writer w;
        w.u64(new_line);
        w.u64(fs.shared_files);
        w.u64(fs.shared_bytes);
        w.u64(fs.saved_bytes);
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kMigrateVolume, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const std::uint64_t target = r.u64();
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        if (target >= vm_.shard_count()) {
          return Response::error(
              service::ErrorCode::kBadRequest,
              "target shard " + std::to_string(target) + " out of range (" +
                  std::to_string(vm_.shard_count()) + " shards)");
        }
        const auto stats =
            vm_.migrate_volume(tenant, static_cast<std::size_t>(target));
        util::Writer w;
        wire::put_migration_stats(w, stats);
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kSetQos, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const service::TenantQos qos = wire::get_qos(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        vm_.set_qos(tenant, qos);
        return Response::ok();
      });

  server_.register_handler(
      Verb::kQosSnapshot, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        util::Writer w;
        wire::put_qos_snapshot(w, vm_.qos(tenant));
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kQuickStats, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        util::Writer w;
        wire::put_quick_stats(w, vm_.quick_stats(tenant).get());
        return Response::ok(w.take());
      });

  // --- observability / inspection --------------------------------------------

  server_.register_handler(
      Verb::kStatsText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const bool json = r.u8() != 0;
        return text_ok(render_stats(vm_.stats(), json));
      });

  server_.register_handler(
      Verb::kMetricsText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const bool json = r.u8() != 0;
        std::string out =
            json ? vm_.metrics().to_json() : vm_.metrics().to_prometheus();
        if (json) out += "\n";
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kPollRates, ctl, [this](const FrameHeader&, util::Reader&) {
        util::Writer w;
        wire::put_rate_sample(w, poller_.poll_once());
        return Response::ok(w.take());
      });

  server_.register_handler(
      Verb::kSetTracing, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::uint32_t sample = r.u32();
        const std::uint64_t slow_us = r.u64();
        vm_.set_tracing(sample, slow_us);
        return Response::ok();
      });

  server_.register_handler(
      Verb::kTraceText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::uint64_t sample = r.u64();
        const std::uint64_t slow_us = r.u64();
        return text_ok(
            render_trace(vm_.trace_spans(), vm_.slow_ops(), sample, slow_us));
      });

  server_.register_handler(
      Verb::kInfoText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        std::string out;
        vm_.with_db(tenant, [&out, &tenant](core::BacklogDb& db) {
          out = render_info(db, tenant);
        }).get();
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kRunsText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        std::string out;
        vm_.with_env(tenant, [&out](storage::Env& env, core::BacklogDb&) {
          out = render_runs(env);
        }).get();
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kQueryText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const core::BlockNo first = r.u64();
        const std::uint64_t count = r.u64();
        const bool raw = r.u8() != 0;
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        std::string out;
        vm_.with_db(tenant, [&out, first, count, raw](core::BacklogDb& db) {
          out = raw ? render_records(db.query_raw(first, count),
                                     /*indent=*/true)
                    : render_query(db.query(first, count));
        }).get();
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kScanText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        std::string out;
        vm_.with_db(tenant, [&out](core::BacklogDb& db) {
          out = render_records(db.scan_all(), /*indent=*/false);
        }).get();
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kMaintainText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        return text_ok(render_maintenance(vm_.maintain(tenant).get()));
      });

  server_.register_handler(
      Verb::kDumpRunText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::string tenant = wire::get_tenant(r);
        const std::string file = r.string(wire::kMaxFileName);
        if (!vm_.has_volume(tenant)) return no_such_tenant(tenant);
        std::string out;
        vm_.with_env(tenant, [&out, &file](storage::Env& env,
                                           core::BacklogDb&) {
          out = render_dump_run(env, file);
        }).get();
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kBalanceText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const std::uint64_t cycles = r.u64();
        if (cycles == 0 || cycles > (1u << 20)) {
          return Response::error(service::ErrorCode::kBadRequest,
                                 "cycles out of range");
        }
        // One balance run at a time: concurrent balancers would fight over
        // placements (and Balancer::run_once is built to be the only mover).
        const std::lock_guard<std::mutex> lock(balance_mu_);
        const auto tenants = vm_.tenants();
        if (tenants.empty()) {
          return Response::error(service::ErrorCode::kBadRequest,
                                 "no volumes hosted");
        }

        service::BalancerPolicy bp;
        bp.latency_weighted = false;
        bp.cooldown = std::chrono::milliseconds(0);
        bp.min_load_to_act = 1;
        bp.max_moves_per_cycle = 2;
        service::Balancer balancer(vm_, bp);

        std::string out;
        char line[192];
        std::snprintf(line, sizeof line,
                      "%zu volumes on %zu shards; %llu balancer cycles\n",
                      tenants.size(), vm_.shard_count(),
                      static_cast<unsigned long long>(cycles));
        out += line;
        // Synthetic pulse: add+remove of a fresh key annihilates in the
        // write store — real load, volumes left unchanged.
        core::BlockNo probe = 1ull << 40;
        for (std::uint64_t c = 0; c <= cycles; ++c) {
          std::vector<std::future<void>> futs;
          for (const auto& t : tenants) {
            for (int i = 0; i < 16; ++i) {
              service::UpdateOp a;
              a.kind = service::UpdateOp::Kind::kAdd;
              a.key.block = probe++;
              a.key.inode = 2;
              a.key.length = 1;
              service::UpdateOp rm = a;
              rm.kind = service::UpdateOp::Kind::kRemove;
              futs.push_back(vm_.apply(t, {a, rm}));
            }
          }
          for (auto& f : futs) f.get();
          if (c == 0) {
            balancer.run_once();  // first sighting primes the rate counters
            continue;
          }
          const auto moves = balancer.run_once();
          for (const auto& m : moves) {
            std::snprintf(line, sizeof line,
                          "cycle %llu: moved %s shard %zu -> %zu "
                          "(imbalance %.3f -> %.3f)\n",
                          static_cast<unsigned long long>(c),
                          m.tenant.c_str(), m.from_shard, m.to_shard,
                          m.imbalance_before, m.imbalance_after);
            out += line;
          }
          if (moves.empty()) {
            std::snprintf(line, sizeof line,
                          "cycle %llu: balanced (imbalance %.3f)\n",
                          static_cast<unsigned long long>(c),
                          balancer.last_imbalance());
            out += line;
          }
        }
        std::snprintf(line, sizeof line, "%-20s %6s\n", "tenant", "shard");
        out += line;
        for (const auto& p : vm_.placements()) {
          std::snprintf(line, sizeof line, "%-20s %6zu\n", p.tenant.c_str(),
                        p.shard);
          out += line;
        }
        std::snprintf(line, sizeof line,
                      "moves: %llu, final imbalance %.3f\n",
                      static_cast<unsigned long long>(balancer.moves()),
                      balancer.last_imbalance());
        out += line;
        return text_ok(out);
      });

  server_.register_handler(
      Verb::kCacheText, ctl, [this](const FrameHeader&, util::Reader& r) {
        const bool json = r.u8() != 0;
        return text_ok(render_cache(vm_.cache_stats(), json));
      });

  server_.register_handler(
      Verb::kCacheClear, ctl, [this](const FrameHeader&, util::Reader&) {
        vm_.clear_caches();
        return Response::ok();
      });
}

}  // namespace backlog::net
