#include "net/render.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>

#include "lsm/run_file.hpp"

namespace backlog::net {

namespace {

void appendf(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendf(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof buf, fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(n, sizeof buf - 1));
}

}  // namespace

std::string render_info(core::BacklogDb& db, const std::string& label) {
  std::string out;
  const auto s = db.stats();
  appendf(out, "volume:            %s\n", label.c_str());
  appendf(out, "current CP:        %" PRIu64 "\n", db.current_cp());
  appendf(out, "partitions:        %" PRIu64 "\n", s.partitions);
  appendf(out, "runs:              %" PRIu64 " From, %" PRIu64 " To, %" PRIu64
               " Combined\n", s.from_runs, s.to_runs, s.combined_runs);
  appendf(out, "run records:       %" PRIu64 "\n", s.run_records);
  appendf(out, "db bytes:          %" PRIu64 " (%.2f MB)\n", s.db_bytes,
          s.db_bytes / (1024.0 * 1024.0));
  appendf(out, "deletion vectors:  %" PRIu64 " entries\n", s.dv_entries);
  const auto& reg = db.registry();
  appendf(out, "zombie snapshots:  %zu\n", reg.zombie_count());
  for (const core::LineId line : reg.lines()) {
    appendf(out, "line %" PRIu64 ": %s", line,
            reg.line_live(line) ? "live" : "dead");
    if (const auto parent = reg.parent_of(line)) {
      appendf(out, ", cloned from (line %" PRIu64 ", v%" PRIu64 ")",
              parent->parent, parent->branch_version);
    }
    out += ", snapshots:";
    for (const core::Epoch v : reg.snapshots(line)) {
      appendf(out, " %" PRIu64, v);
    }
    out += "\n";
  }
  return out;
}

std::string render_runs(storage::Env& env) {
  std::string out;
  appendf(out, "%-26s %10s %14s\n", "file", "records", "bytes");
  storage::BlockCache cache(64 * storage::kPageSize, /*shards=*/1);
  for (const std::string& name : env.list_files()) {
    if (!name.ends_with(".run")) continue;
    lsm::RunFile run(env, name, cache);
    appendf(out, "%-26s %10" PRIu64 " %14" PRIu64, name.c_str(),
            run.record_count(), run.size_bytes());
    if (const auto mn = run.min_record()) {
      appendf(out, "   blocks [%" PRIu64 ", %" PRIu64 "]",
              util::get_be64(mn->data()),
              util::get_be64(run.max_record()->data()));
    }
    out += "\n";
  }
  return out;
}

std::string render_query(const std::vector<core::BackrefEntry>& entries) {
  std::string out;
  for (const auto& e : entries) {
    appendf(out, "  %s versions:", core::to_string(e.rec).c_str());
    for (const core::Epoch v : e.versions) appendf(out, " %" PRIu64, v);
    out += "\n";
  }
  return out;
}

std::string render_records(const std::vector<core::CombinedRecord>& records,
                           bool indent) {
  std::string out;
  for (const auto& r : records) {
    appendf(out, "%s%s\n", indent ? "  " : "", core::to_string(r).c_str());
  }
  return out;
}

std::string render_maintenance(const core::MaintenanceStats& m) {
  std::string out;
  appendf(out, "input records:   %" PRIu64 "\n", m.input_records);
  appendf(out, "complete out:    %" PRIu64 "\n", m.output_complete);
  appendf(out, "incomplete out:  %" PRIu64 "\n", m.output_incomplete);
  appendf(out, "purged:          %" PRIu64 "\n", m.purged);
  appendf(out, "bytes:           %" PRIu64 " -> %" PRIu64 "\n", m.bytes_before,
          m.bytes_after);
  appendf(out, "io:              %" PRIu64 " reads, %" PRIu64 " writes\n",
          m.pages_read, m.pages_written);
  appendf(out, "wall time:       %.3f s\n", m.wall_micros / 1e6);
  return out;
}

std::string render_dump_run(storage::Env& env, const std::string& file) {
  std::string out;
  storage::BlockCache cache(256 * storage::kPageSize, /*shards=*/1);
  lsm::RunFile run(env, file, cache);
  const char kind = file.empty() ? '?' : file[0];
  auto stream = run.scan();
  while (stream->valid()) {
    const auto rec = stream->record();
    if (kind == 'c' && rec.size() == core::kCombinedRecordSize) {
      appendf(out, "%s\n",
              core::to_string(core::decode_combined(rec.data())).c_str());
    } else if (kind == 'f' && rec.size() == core::kFromRecordSize) {
      const auto r = core::decode_from(rec.data());
      appendf(out, "%s from=%" PRIu64 "\n", core::to_string(r.key).c_str(),
              r.from);
    } else if (kind == 't' && rec.size() == core::kToRecordSize) {
      const auto r = core::decode_to(rec.data());
      appendf(out, "%s to=%" PRIu64 "\n", core::to_string(r.key).c_str(), r.to);
    } else {
      appendf(out, "(%zu raw bytes)\n", rec.size());
    }
    stream->next();
  }
  return out;
}

namespace {

/// One tenant object of the `stats --json` output (the caller prints the
/// key). Latencies are the log2 histogram's conservative percentiles.
void append_tenant_json(std::string& out, const service::TenantStats& ts) {
  appendf(out,
          "{\"shard\":%zu,\"updates\":%" PRIu64 ",\"batches\":%" PRIu64
          ",\"cps\":%" PRIu64 ",\"queries\":%" PRIu64 ",\"snapshots\":%" PRIu64
          ",\"clones\":%" PRIu64 ",\"migrations\":%" PRIu64
          ",\"maintenance_runs\":%" PRIu64 ",\"maintenance_skipped\":%" PRIu64
          ",\"throttle_queued\":%" PRIu64 ",\"throttle_rejected\":%" PRIu64
          ",\"owned_bytes\":%" PRIu64 ",\"shared_bytes\":%" PRIu64,
          ts.shard, ts.updates, ts.batches, ts.cps, ts.queries, ts.snapshots,
          ts.clones, ts.migrations, ts.maintenance_runs,
          ts.maintenance_skipped, ts.throttle_queued, ts.throttle_rejected,
          ts.owned_bytes, ts.shared_bytes);
  appendf(out,
          ",\"update_batch_p50_us\":%" PRIu64 ",\"update_batch_p99_us\":%" PRIu64
          ",\"query_p50_us\":%" PRIu64 ",\"query_p99_us\":%" PRIu64
          ",\"queue_wait_p99_us\":%" PRIu64 ",\"io\":{\"page_reads\":%" PRIu64
          ",\"page_writes\":%" PRIu64 ",\"bytes_read\":%" PRIu64
          ",\"bytes_written\":%" PRIu64 ",\"fsyncs\":%" PRIu64 "}}",
          ts.update_batch_micros.p50(), ts.update_batch_micros.p99(),
          ts.query_micros.p50(), ts.query_micros.p99(),
          ts.queue_wait_micros.p99(), ts.io.page_reads, ts.io.page_writes,
          ts.io.bytes_read, ts.io.bytes_written, ts.io.fsyncs);
}

}  // namespace

std::string render_stats(const service::ServiceStats& stats, bool json) {
  std::string out;
  if (json) {
    out += "{\"tenants\":{";
    bool first = true;
    for (const auto& [name, ts] : stats.tenants) {
      if (!first) out += ",";
      first = false;
      appendf(out, "\"%s\":", name.c_str());
      append_tenant_json(out, ts);
    }
    out += "},\"total\":";
    append_tenant_json(out, stats.total);
    out += "}\n";
    return out;
  }
  appendf(out, "%-20s %6s %10s %8s %8s %10s %12s %8s\n", "tenant", "shard",
          "updates", "cps", "queries", "maint", "page_writes", "fsyncs");
  for (const auto& [name, ts] : stats.tenants) {
    appendf(out, "%-20s %6zu %10" PRIu64 " %8" PRIu64 " %8" PRIu64
                 " %10" PRIu64 " %12" PRIu64 " %8" PRIu64 "\n",
            name.c_str(), ts.shard, ts.updates, ts.cps, ts.queries,
            ts.maintenance_runs, ts.io.page_writes, ts.io.fsyncs);
  }
  const auto& t = stats.total;
  appendf(out, "total: %" PRIu64 " updates, %" PRIu64 " cps, %" PRIu64
               " queries; query p50/p99 %" PRIu64 "/%" PRIu64
               " us, queue wait p99 %" PRIu64 " us\n",
          t.updates, t.cps, t.queries, t.query_micros.p50(),
          t.query_micros.p99(), t.queue_wait_micros.p99());
  return out;
}

std::string render_cache(const service::VolumeManager::CacheReport& report,
                         bool json) {
  const auto& b = report.block;
  std::string out;
  if (json) {
    appendf(out,
            "{\"block\":{\"shared\":%s,\"capacity_bytes\":%" PRIu64
            ",\"shards\":%" PRIu64 ",\"entries\":%" PRIu64
            ",\"bytes\":%" PRIu64 ",\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
            ",\"hit_ratio\":%.4f,\"evictions\":%" PRIu64
            ",\"invalidations\":%" PRIu64 "},\"tenants\":{",
            report.block_shared ? "true" : "false", b.capacity_bytes,
            b.shards, b.entries, b.bytes, b.hits, b.misses, b.hit_ratio(),
            b.evictions, b.invalidations);
    bool first = true;
    for (const auto& row : report.tenants) {
      if (!first) out += ",";
      first = false;
      appendf(out,
              "\"%s\":{\"hits\":%" PRIu64 ",\"misses\":%" PRIu64
              ",\"stale_hits\":%" PRIu64 ",\"entries\":%" PRIu64
              ",\"capacity\":%" PRIu64 ",\"hit_ratio\":%.4f}",
              row.tenant.c_str(), row.result.hits, row.result.misses,
              row.result.stale_hits, row.result.entries, row.result.capacity,
              row.result.hit_ratio());
    }
    out += "}}\n";
    return out;
  }
  appendf(out,
          "block cache:   %s, %.1f MiB budget, %" PRIu64 " shards\n",
          report.block_shared ? "shared" : "per-volume (legacy)",
          static_cast<double>(b.capacity_bytes) / (1u << 20), b.shards);
  appendf(out,
          "  resident:    %" PRIu64 " pages (%.1f MiB)\n", b.entries,
          static_cast<double>(b.bytes) / (1u << 20));
  appendf(out,
          "  hits/misses: %" PRIu64 "/%" PRIu64 " (ratio %.3f)\n", b.hits,
          b.misses, b.hit_ratio());
  appendf(out,
          "  evicted:     %" PRIu64 ", invalidated: %" PRIu64 "\n",
          b.evictions, b.invalidations);
  appendf(out, "%-20s %10s %10s %8s %8s %8s\n", "tenant", "res_hits",
          "res_miss", "stale", "entries", "cap");
  for (const auto& row : report.tenants) {
    appendf(out,
            "%-20s %10" PRIu64 " %10" PRIu64 " %8" PRIu64 " %8" PRIu64
            " %8" PRIu64 "\n",
            row.tenant.c_str(), row.result.hits, row.result.misses,
            row.result.stale_hits, row.result.entries, row.result.capacity);
  }
  return out;
}

std::string render_trace(const std::vector<service::TraceSpan>& spans,
                         const std::vector<service::TraceSpan>& slow,
                         std::uint64_t sample, std::uint64_t slow_us) {
  std::string out;
  constexpr std::size_t kDumpCap = 64;
  const std::size_t from =
      spans.size() > kDumpCap ? spans.size() - kDumpCap : 0;
  appendf(out, "sampled spans: %zu recorded (1 in %" PRIu64
               "), showing newest %zu\n",
          spans.size(), sample, spans.size() - from);
  for (std::size_t i = from; i < spans.size(); ++i) {
    appendf(out, "%s\n", service::format_span(spans[i]).c_str());
  }
  appendf(out, "slow-op log (>= %" PRIu64 " us): %zu entries\n", slow_us,
          slow.size());
  for (const auto& s : slow) {
    appendf(out, "%s\n", service::format_span(s).c_str());
  }
  return out;
}

}  // namespace backlog::net
