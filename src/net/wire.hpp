// Typed payload codecs for the Backlog wire protocol — the single source of
// truth for every verb's request/response body, shared by the client library
// and the server handlers so the two sides can never drift.
//
// Encoding discipline: little-endian fixed-width fields via util::Writer;
// decoding goes exclusively through the bounds-checked util::Reader with an
// explicit cap on every length/count field, so a corrupt or hostile length
// can never drive an allocation or a read past the payload (decode_* throws
// util::SerdeError, which the server answers with kBadRequest and the
// client surfaces as a protocol error).
#pragma once

#include <string>
#include <vector>

#include "core/backlog_db.hpp"
#include "service/metrics.hpp"
#include "service/qos.hpp"
#include "service/volume_manager.hpp"
#include "util/serde.hpp"

namespace backlog::net::wire {

// Decode-side caps. Batches are additionally bounded by the verb's payload
// cap; these keep a single corrupt count from over-sizing a loop.
inline constexpr std::size_t kMaxTenantLen = 256;
inline constexpr std::size_t kMaxFileName = 512;
inline constexpr std::uint32_t kMaxBatchOps = 1u << 17;
inline constexpr std::uint32_t kMaxQueryRanges = 1u << 14;
inline constexpr std::uint32_t kMaxEntriesPerRange = 1u << 20;
inline constexpr std::uint32_t kMaxVersionsPerEntry = 1u << 16;
inline constexpr std::uint32_t kMaxShardsOnWire = 4096;

// --- primitives --------------------------------------------------------------

void put_tenant(util::Writer& w, const std::string& tenant);
std::string get_tenant(util::Reader& r);

void put_update_ops(util::Writer& w,
                    const std::vector<service::UpdateOp>& ops);
std::vector<service::UpdateOp> get_update_ops(util::Reader& r);

void put_query_ranges(util::Writer& w,
                      const std::vector<service::QueryRange>& ranges);
std::vector<service::QueryRange> get_query_ranges(util::Reader& r);

void put_query_results(
    util::Writer& w,
    const std::vector<std::vector<core::BackrefEntry>>& results);
std::vector<std::vector<core::BackrefEntry>> get_query_results(
    util::Reader& r);

void put_cp_stats(util::Writer& w, const core::CpFlushStats& s);
core::CpFlushStats get_cp_stats(util::Reader& r);

void put_quick_stats(util::Writer& w, const core::QuickStats& s);
core::QuickStats get_quick_stats(util::Reader& r);

void put_qos(util::Writer& w, const service::TenantQos& q);
service::TenantQos get_qos(util::Reader& r);

void put_qos_snapshot(util::Writer& w, const service::QosSnapshot& s);
service::QosSnapshot get_qos_snapshot(util::Reader& r);

void put_migration_stats(util::Writer& w, const service::MigrationStats& s);
service::MigrationStats get_migration_stats(util::Reader& r);

void put_rate_sample(util::Writer& w, const service::RateSample& s);
service::RateSample get_rate_sample(util::Reader& r);

}  // namespace backlog::net::wire
