// Text renderers shared by the local CLI and the network server.
//
// backlogctl's inspection subcommands (info, runs, query, scan, maintain,
// dump-run) print human-readable reports. With --connect those same reports
// are rendered *server-side* — on the shard thread that owns the volume,
// via VolumeManager::with_db / with_env — and shipped back as one text
// payload, so the remote CLI prints byte-identical output to the local one.
// Keeping both paths on these functions is what enforces that.
#pragma once

#include <string>

#include "core/backlog_db.hpp"
#include "service/service_stats.hpp"
#include "service/trace.hpp"
#include "service/volume_manager.hpp"
#include "storage/env.hpp"

namespace backlog::net {

/// `backlogctl info`: CP, stats, snapshot lines. `label` names the volume
/// in the header (the local CLI passes the directory, the server the
/// tenant name).
std::string render_info(core::BacklogDb& db, const std::string& label);

/// `backlogctl runs`: every .run file with record/byte counts + block range.
std::string render_runs(storage::Env& env);

/// `backlogctl query`: masked owner-query entries, one per line.
std::string render_query(const std::vector<core::BackrefEntry>& entries);

/// `backlogctl raw` / `scan`: joined records, one per line.
std::string render_records(const std::vector<core::CombinedRecord>& records,
                           bool indent);

/// `backlogctl maintain`: the maintenance report.
std::string render_maintenance(const core::MaintenanceStats& m);

/// `backlogctl dump-run`: decode one run file record by record.
std::string render_dump_run(storage::Env& env, const std::string& file);

/// `backlogctl stats`: the merged ServiceStats as the per-tenant table (or
/// one JSON object with json=true).
std::string render_stats(const service::ServiceStats& stats, bool json);

/// `backlogctl cache`: the shared block cache's counters plus each hosted
/// volume's result-cache counters (or one JSON object with json=true).
std::string render_cache(const service::VolumeManager::CacheReport& report,
                         bool json);

/// `backlogctl trace`: sampled spans + slow-op log. `sample`/`slow_us`
/// label the report headers (they are the knobs the run used).
std::string render_trace(const std::vector<service::TraceSpan>& spans,
                         const std::vector<service::TraceSpan>& slow,
                         std::uint64_t sample, std::uint64_t slow_us);

}  // namespace backlog::net
