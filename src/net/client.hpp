// Synchronous client for the Backlog wire protocol.
//
// One Client wraps one TCP connection with the one-outstanding-request
// protocol: call() writes a request frame, then blocks reading exactly one
// response frame. The client validates everything it receives with the same
// rigor as the server — magic, version, response bit, verb echo, payload cap
// and crc are all checked before a byte of the body is believed, and bodies
// are decoded through the bounds-checked util::Reader — a hostile or
// confused server is just another corrupt byte stream.
//
// Service-level failures arrive as non-kOk status bytes and are rethrown as
// service::ServiceError, so remote callers handle kThrottled (and friends)
// with exactly the code they'd use in-process. Protocol-level failures
// (closed connection, corrupt frame) throw std::runtime_error and leave the
// client unusable (the stream cannot be resynchronized).
//
// Thread model: a Client is NOT thread-safe; use one per thread (the bench's
// open-loop generator opens one per connection by design).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/frame.hpp"
#include "net/wire.hpp"

namespace backlog::net {

class Client {
 public:
  Client() = default;
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;

  /// Connection behavior knobs. The defaults are the old behavior except
  /// that a connect attempt is bounded instead of hanging on a black-holed
  /// address.
  struct ConnectOptions {
    /// Per-attempt connect bound (non-blocking connect + poll). 0 = the
    /// OS default (minutes).
    std::uint32_t connect_timeout_ms = 5000;
    /// SO_RCVTIMEO/SO_SNDTIMEO on the connected socket: a call() blocked on
    /// a stalled server throws ("net read: timeout") instead of hanging
    /// forever. 0 = no timeout. Note a timed-out client is closed like any
    /// other protocol failure — the request may have executed server-side,
    /// so only retry verbs that are idempotent (queries, open, stats).
    std::uint32_t read_timeout_ms = 0;
    /// Keep retrying refused/timed-out connects for this long before giving
    /// up — lets a client race a daemon's startup without external sleeps.
    /// Retrying a *connect* is always safe: no request has been sent yet.
    /// 0 = single attempt.
    std::uint32_t retry_for_ms = 0;
    /// First retry backoff; doubles per attempt (capped at 1 s) with ±50%
    /// jitter so a fleet of clients doesn't stampede a restarting server.
    std::uint32_t retry_backoff_ms = 50;
  };

  /// Resolve + connect (blocking). Throws std::runtime_error on failure.
  void connect(const std::string& host, std::uint16_t port);
  void connect(const std::string& host, std::uint16_t port,
               const ConnectOptions& opts);
  void close();
  [[nodiscard]] bool connected() const noexcept { return fd_ >= 0; }

  /// One request/response round trip. Returns the response *body* on kOk;
  /// throws service::ServiceError on a non-kOk status, std::runtime_error
  /// on any protocol violation. `tenant` fills the header's scheduling-hint
  /// hash (pass "" for tenant-less verbs).
  std::vector<std::uint8_t> call(Verb verb, const std::string& tenant,
                                 std::span<const std::uint8_t> payload);

  // --- typed verbs (thin wrappers over call + wire codecs) -------------------

  void ping();
  void open_volume(const std::string& tenant);
  void close_volume(const std::string& tenant);
  void destroy_volume(const std::string& tenant);
  std::vector<std::string> list_tenants();

  void apply_batch(const std::string& tenant,
                   const std::vector<service::UpdateOp>& batch);
  std::vector<std::vector<core::BackrefEntry>> query_batch(
      const std::string& tenant,
      const std::vector<service::QueryRange>& ranges);
  core::CpFlushStats consistency_point(const std::string& tenant);

  core::Epoch take_snapshot(const std::string& tenant, core::LineId line);
  std::vector<core::Epoch> list_versions(const std::string& tenant,
                                         core::LineId line);
  /// Returns the clone's writable line id plus the service-wide shared-file
  /// accounting (files, bytes, saved bytes) after the clone.
  struct CloneResult {
    core::LineId new_line = 0;
    std::uint64_t shared_files = 0;
    std::uint64_t shared_bytes = 0;
    std::uint64_t saved_bytes = 0;
  };
  CloneResult clone_volume(const std::string& src, const std::string& dst,
                           core::LineId parent_line, core::Epoch version);
  service::MigrationStats migrate_volume(const std::string& tenant,
                                         std::uint64_t target_shard);

  void set_qos(const std::string& tenant, const service::TenantQos& qos);
  service::QosSnapshot qos_snapshot(const std::string& tenant);
  core::QuickStats quick_stats(const std::string& tenant);

  std::string stats_text(bool json);
  std::string metrics_text(bool json);
  service::RateSample poll_rates();
  void set_tracing(std::uint32_t sample_every, std::uint64_t slow_op_micros);
  /// `sample`/`slow_us` only label the report headers (the knobs the run
  /// used); the spans themselves come from the server's rings.
  std::string trace_text(std::uint64_t sample, std::uint64_t slow_us);
  std::string info_text(const std::string& tenant);
  std::string runs_text(const std::string& tenant);
  std::string query_text(const std::string& tenant, core::BlockNo first,
                         std::uint64_t count, bool raw);
  std::string scan_text(const std::string& tenant);
  std::string maintain_text(const std::string& tenant);
  std::string dump_run_text(const std::string& tenant,
                            const std::string& file);
  std::string balance_text(std::uint64_t cycles);
  std::string cache_text(bool json);
  void cache_clear();

 private:
  /// Write all of `data` (EINTR retried; write()==0 is an error).
  void write_all(std::span<const std::uint8_t> data);
  /// Read exactly `n` bytes into `dst`; false on clean EOF at offset 0,
  /// throws on mid-buffer EOF or error.
  bool read_exact(std::uint8_t* dst, std::size_t n);

  int fd_ = -1;
};

/// Parse "host:port" (host may be empty for 127.0.0.1). Returns false on a
/// malformed string or out-of-range port.
bool parse_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port);

}  // namespace backlog::net
