#include "net/wire.hpp"

#include <algorithm>

namespace backlog::net::wire {

namespace {

void put_key(util::Writer& w, const core::BackrefKey& k) {
  w.u64(k.block);
  w.u64(k.inode);
  w.u64(k.offset);
  w.u64(k.length);
  w.u64(k.line);
}

core::BackrefKey get_key(util::Reader& r) {
  core::BackrefKey k;
  k.block = r.u64();
  k.inode = r.u64();
  k.offset = r.u64();
  k.length = r.u64();
  k.line = r.u64();
  return k;
}

}  // namespace

void put_tenant(util::Writer& w, const std::string& tenant) {
  w.string(tenant);
}

std::string get_tenant(util::Reader& r) { return r.string(kMaxTenantLen); }

void put_update_ops(util::Writer& w,
                    const std::vector<service::UpdateOp>& ops) {
  w.u32(static_cast<std::uint32_t>(ops.size()));
  for (const auto& op : ops) {
    w.u8(static_cast<std::uint8_t>(op.kind));
    put_key(w, op.key);
  }
}

std::vector<service::UpdateOp> get_update_ops(util::Reader& r) {
  const std::uint32_t n = r.count(kMaxBatchOps);
  std::vector<service::UpdateOp> ops;
  ops.reserve(std::min<std::uint32_t>(n, 4096));  // grow under Reader checks
  for (std::uint32_t i = 0; i < n; ++i) {
    service::UpdateOp op;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(service::UpdateOp::Kind::kRemove)) {
      throw util::SerdeError("wire: unknown update kind");
    }
    op.kind = static_cast<service::UpdateOp::Kind>(kind);
    op.key = get_key(r);
    ops.push_back(op);
  }
  return ops;
}

void put_query_ranges(util::Writer& w,
                      const std::vector<service::QueryRange>& ranges) {
  w.u32(static_cast<std::uint32_t>(ranges.size()));
  for (const auto& q : ranges) {
    w.u64(q.first);
    w.u64(q.count);
    w.u8(q.opts.expand ? 1 : 0);
    w.u8(q.opts.mask ? 1 : 0);
  }
}

std::vector<service::QueryRange> get_query_ranges(util::Reader& r) {
  const std::uint32_t n = r.count(kMaxQueryRanges);
  std::vector<service::QueryRange> ranges;
  ranges.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    service::QueryRange q;
    q.first = r.u64();
    q.count = r.u64();
    q.opts.expand = r.u8() != 0;
    q.opts.mask = r.u8() != 0;
    ranges.push_back(q);
  }
  return ranges;
}

void put_query_results(
    util::Writer& w,
    const std::vector<std::vector<core::BackrefEntry>>& results) {
  w.u32(static_cast<std::uint32_t>(results.size()));
  for (const auto& entries : results) {
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const auto& e : entries) {
      put_key(w, e.rec.key);
      w.u64(e.rec.from);
      w.u64(e.rec.to);
      w.u32(static_cast<std::uint32_t>(e.versions.size()));
      for (const core::Epoch v : e.versions) w.u64(v);
    }
  }
}

std::vector<std::vector<core::BackrefEntry>> get_query_results(
    util::Reader& r) {
  const std::uint32_t n = r.count(kMaxQueryRanges);
  std::vector<std::vector<core::BackrefEntry>> results;
  results.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t m = r.count(kMaxEntriesPerRange);
    std::vector<core::BackrefEntry> entries;
    entries.reserve(std::min<std::uint32_t>(m, 4096));
    for (std::uint32_t j = 0; j < m; ++j) {
      core::BackrefEntry e;
      e.rec.key = get_key(r);
      e.rec.from = r.u64();
      e.rec.to = r.u64();
      const std::uint32_t k = r.count(kMaxVersionsPerEntry);
      e.versions.reserve(std::min<std::uint32_t>(k, 4096));
      for (std::uint32_t v = 0; v < k; ++v) e.versions.push_back(r.u64());
      entries.push_back(std::move(e));
    }
    results.push_back(std::move(entries));
  }
  return results;
}

void put_cp_stats(util::Writer& w, const core::CpFlushStats& s) {
  w.u64(s.cp);
  w.u64(s.block_ops);
  w.u64(s.records_flushed);
  w.u64(s.pages_written);
  w.u64(s.wall_micros);
}

core::CpFlushStats get_cp_stats(util::Reader& r) {
  core::CpFlushStats s;
  s.cp = r.u64();
  s.block_ops = r.u64();
  s.records_flushed = r.u64();
  s.pages_written = r.u64();
  s.wall_micros = r.u64();
  return s;
}

void put_quick_stats(util::Writer& w, const core::QuickStats& s) {
  w.u64(s.from_runs);
  w.u64(s.to_runs);
  w.u64(s.combined_runs);
  w.u64(s.db_bytes);
  w.u64(s.run_records);
  w.u64(s.ws_entries);
  w.u64(s.ops_since_cp);
}

core::QuickStats get_quick_stats(util::Reader& r) {
  core::QuickStats s;
  s.from_runs = r.u64();
  s.to_runs = r.u64();
  s.combined_runs = r.u64();
  s.db_bytes = r.u64();
  s.run_records = r.u64();
  s.ws_entries = r.u64();
  s.ops_since_cp = r.u64();
  return s;
}

void put_qos(util::Writer& w, const service::TenantQos& q) {
  w.f64(q.ops_per_sec);
  w.f64(q.bytes_per_sec);
  w.f64(q.burst_ops);
  w.f64(q.burst_bytes);
  w.u32(q.weight);
  w.u64(q.max_wait_queue);
}

service::TenantQos get_qos(util::Reader& r) {
  service::TenantQos q;
  q.ops_per_sec = r.f64();
  q.bytes_per_sec = r.f64();
  q.burst_ops = r.f64();
  q.burst_bytes = r.f64();
  q.weight = r.u32();
  q.max_wait_queue = r.u64();
  return q;
}

void put_qos_snapshot(util::Writer& w, const service::QosSnapshot& s) {
  w.u8(s.enabled ? 1 : 0);
  put_qos(w, s.qos);
  w.u64(s.admitted);
  w.u64(s.queued);
  w.u64(s.released);
  w.u64(s.rejected);
  w.u64(s.wait_depth);
}

service::QosSnapshot get_qos_snapshot(util::Reader& r) {
  service::QosSnapshot s;
  s.enabled = r.u8() != 0;
  s.qos = get_qos(r);
  s.admitted = r.u64();
  s.queued = r.u64();
  s.released = r.u64();
  s.rejected = r.u64();
  s.wait_depth = r.u64();
  return s;
}

void put_migration_stats(util::Writer& w, const service::MigrationStats& s) {
  w.u64(s.source_shard);
  w.u64(s.target_shard);
  w.u8(s.moved ? 1 : 0);
  w.u8(s.aborted_dirty ? 1 : 0);
  w.u8(s.forced_cp ? 1 : 0);
  w.u64(s.replayed_tasks);
}

service::MigrationStats get_migration_stats(util::Reader& r) {
  service::MigrationStats s;
  s.source_shard = r.u64();
  s.target_shard = r.u64();
  s.moved = r.u8() != 0;
  s.aborted_dirty = r.u8() != 0;
  s.forced_cp = r.u8() != 0;
  s.replayed_tasks = r.u64();
  return s;
}

void put_rate_sample(util::Writer& w, const service::RateSample& s) {
  w.u8(s.primed ? 1 : 0);
  w.u64(s.at_micros);
  w.f64(s.window_seconds);
  w.f64(s.update_ops_per_sec);
  w.f64(s.queries_per_sec);
  w.f64(s.throttles_per_sec);
  w.f64(s.io_read_bytes_per_sec);
  w.f64(s.io_write_bytes_per_sec);
  w.u32(static_cast<std::uint32_t>(s.shard_busy_fraction.size()));
  for (const double b : s.shard_busy_fraction) w.f64(b);
}

service::RateSample get_rate_sample(util::Reader& r) {
  service::RateSample s;
  s.primed = r.u8() != 0;
  s.at_micros = r.u64();
  s.window_seconds = r.f64();
  s.update_ops_per_sec = r.f64();
  s.queries_per_sec = r.f64();
  s.throttles_per_sec = r.f64();
  s.io_read_bytes_per_sec = r.f64();
  s.io_write_bytes_per_sec = r.f64();
  const std::uint32_t n = r.count(kMaxShardsOnWire);
  s.shard_busy_fraction.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) {
    s.shard_busy_fraction.push_back(r.f64());
  }
  return s;
}

}  // namespace backlog::net::wire
