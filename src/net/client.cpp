#include "net/client.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace backlog::net {

namespace {

/// Max decoded length of a text-report body (bounded by the frame cap
/// anyway; this is the explicit Reader cap).
constexpr std::size_t kMaxTextBody = kMaxFramePayload;

std::string text_request(Client& c, Verb verb, const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  const auto body = c.call(verb, tenant, w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::uint64_t mono_ms() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// ±50% multiplicative jitter from a cheap per-process xorshift — good
/// enough to de-synchronize a fleet of retrying clients, and free of
/// <random>'s per-call construction cost.
std::uint32_t jittered(std::uint32_t base_ms) {
  static thread_local std::uint64_t state =
      0x9e3779b97f4a7c15ull ^
      (static_cast<std::uint64_t>(::getpid()) << 32) ^ mono_ms();
  state ^= state << 13;
  state ^= state >> 7;
  state ^= state << 17;
  const std::uint32_t half = std::max<std::uint32_t>(1, base_ms / 2);
  return half + static_cast<std::uint32_t>(state % (2 * half));
}

/// One bounded connect attempt on an already-created socket. Returns 0 on
/// success, the failing errno otherwise (ETIMEDOUT for a poll timeout).
int connect_bounded(int fd, const sockaddr* addr, socklen_t addrlen,
                    std::uint32_t timeout_ms) {
  if (timeout_ms == 0) {
    int rc;
    do {
      rc = ::connect(fd, addr, addrlen);
    } while (rc < 0 && errno == EINTR);
    return rc == 0 ? 0 : errno;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) return errno;
  int rc;
  do {
    rc = ::connect(fd, addr, addrlen);
  } while (rc < 0 && errno == EINTR);
  int err = 0;
  if (rc < 0) {
    if (errno != EINPROGRESS) {
      err = errno;
    } else {
      const std::uint64_t deadline = mono_ms() + timeout_ms;
      pollfd pfd{fd, POLLOUT, 0};
      for (;;) {
        const std::uint64_t now = mono_ms();
        if (now >= deadline) {
          err = ETIMEDOUT;
          break;
        }
        const int pr = ::poll(&pfd, 1, static_cast<int>(deadline - now));
        if (pr < 0) {
          if (errno == EINTR) continue;
          err = errno;
          break;
        }
        if (pr == 0) {
          err = ETIMEDOUT;
          break;
        }
        socklen_t len = sizeof err;
        if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0)
          err = errno;
        break;
      }
    }
  }
  if (err == 0 && ::fcntl(fd, F_SETFL, flags) < 0) err = errno;
  return err;
}

}  // namespace

bool parse_host_port(const std::string& spec, std::string& host,
                     std::uint16_t& port) {
  const std::size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon + 1 == spec.size()) return false;
  const std::string port_str = spec.substr(colon + 1);
  std::uint64_t p = 0;
  for (const char ch : port_str) {
    if (ch < '0' || ch > '9') return false;
    p = p * 10 + static_cast<std::uint64_t>(ch - '0');
    if (p > 65535) return false;
  }
  if (p == 0) return false;
  host = colon == 0 ? "127.0.0.1" : spec.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Client::connect(const std::string& host, std::uint16_t port) {
  connect(host, port, ConnectOptions{});
}

void Client::connect(const std::string& host, std::uint16_t port,
                     const ConnectOptions& opts) {
  close();
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0) {
    throw std::runtime_error("resolve " + host + ": " + ::gai_strerror(rc));
  }
  // Retrying a connect is always safe (no request has been issued), so a
  // client can race a daemon's startup: keep attempting for retry_for_ms
  // with exponentially backed-off, jittered pauses.
  const std::uint64_t give_up = mono_ms() + opts.retry_for_ms;
  std::uint32_t backoff = std::max<std::uint32_t>(1, opts.retry_backoff_ms);
  int last_errno = ECONNREFUSED;
  for (;;) {
    for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
      const int fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                              ai->ai_protocol);
      if (fd < 0) {
        last_errno = errno;
        continue;
      }
      const int err = connect_bounded(fd, ai->ai_addr, ai->ai_addrlen,
                                      opts.connect_timeout_ms);
      if (err == 0) {
        fd_ = fd;
        break;
      }
      last_errno = err;
      ::close(fd);
    }
    if (fd_ >= 0 || mono_ms() >= give_up) break;
    const std::uint32_t pause = jittered(backoff);
    backoff = std::min<std::uint32_t>(backoff * 2, 1000);
    ::poll(nullptr, 0, static_cast<int>(pause));  // signal-tolerant sleep
  }
  ::freeaddrinfo(res);
  if (fd_ < 0) {
    throw std::runtime_error("connect " + host + ":" + port_str + ": " +
                             std::strerror(last_errno));
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  if (opts.read_timeout_ms != 0) {
    timeval tv{};
    tv.tv_sec = opts.read_timeout_ms / 1000;
    tv.tv_usec = static_cast<long>(opts.read_timeout_ms % 1000) * 1000;
    ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
    ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
  }
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::write_all(std::span<const std::uint8_t> data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      close();
      throw std::runtime_error(timed_out ? "net write: timeout"
                                         : std::string("net write: ") +
                                               std::strerror(errno));
    }
    if (n == 0) {
      close();
      throw std::runtime_error("net write: wrote 0 bytes");
    }
    off += static_cast<std::size_t>(n);
  }
}

bool Client::read_exact(std::uint8_t* dst, std::size_t n) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t r = ::read(fd_, dst + off, n - off);
    if (r < 0) {
      if (errno == EINTR) continue;
      // SO_RCVTIMEO expiry: the server stalled past ConnectOptions::
      // read_timeout_ms. The stream is unusable (a late response would
      // desynchronize it), so close like any protocol failure.
      const bool timed_out = errno == EAGAIN || errno == EWOULDBLOCK;
      close();
      throw std::runtime_error(timed_out ? "net read: timeout"
                                         : std::string("net read: ") +
                                               std::strerror(errno));
    }
    if (r == 0) {
      close();
      if (off == 0) return false;
      throw std::runtime_error("net read: connection closed mid-frame");
    }
    off += static_cast<std::size_t>(r);
  }
  return true;
}

std::vector<std::uint8_t> Client::call(Verb verb, const std::string& tenant,
                                       std::span<const std::uint8_t> payload) {
  if (fd_ < 0) throw std::runtime_error("net: not connected");
  write_all(encode_frame(static_cast<std::uint16_t>(verb),
                         tenant_hash(tenant), payload));

  std::vector<std::uint8_t> frame(kHeaderSize);
  if (!read_exact(frame.data(), kHeaderSize)) {
    throw std::runtime_error("net: connection closed by server");
  }
  FrameHeader h;
  const HeaderStatus hs = decode_header(frame, h);
  if (hs != HeaderStatus::kOk) {
    close();
    throw std::runtime_error(std::string("net: bad response header: ") +
                             to_string(hs));
  }
  if (!h.is_response() ||
      h.verb_id() != verb) {
    close();
    throw std::runtime_error("net: response verb mismatch");
  }
  frame.resize(kHeaderSize + h.payload_len);
  if (h.payload_len != 0 &&
      !read_exact(frame.data() + kHeaderSize, h.payload_len)) {
    throw std::runtime_error("net: connection closed mid-frame");
  }
  if (!frame_crc_ok(frame)) {
    close();
    throw std::runtime_error("net: response crc mismatch");
  }

  util::Reader r(std::span<const std::uint8_t>(frame).subspan(kHeaderSize));
  const ResponseView v = decode_response_prefix(r);
  if (v.code != service::ErrorCode::kOk) {
    throw service::ServiceError(v.code, v.message);
  }
  const auto body = r.bytes(r.remaining());
  return {body.begin(), body.end()};
}

void Client::ping() { call(Verb::kPing, "", {}); }

void Client::open_volume(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  call(Verb::kOpenVolume, tenant, w.data());
}

void Client::close_volume(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  call(Verb::kCloseVolume, tenant, w.data());
}

void Client::destroy_volume(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  call(Verb::kDestroyVolume, tenant, w.data());
}

std::vector<std::string> Client::list_tenants() {
  const auto body = call(Verb::kListTenants, "", {});
  util::Reader r(body);
  const std::uint32_t n = r.count(1u << 20);
  std::vector<std::string> out;
  out.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) {
    out.push_back(r.string(wire::kMaxTenantLen));
  }
  return out;
}

void Client::apply_batch(const std::string& tenant,
                         const std::vector<service::UpdateOp>& batch) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  wire::put_update_ops(w, batch);
  call(Verb::kApplyBatch, tenant, w.data());
}

std::vector<std::vector<core::BackrefEntry>> Client::query_batch(
    const std::string& tenant,
    const std::vector<service::QueryRange>& ranges) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  wire::put_query_ranges(w, ranges);
  const auto body = call(Verb::kQueryBatch, tenant, w.data());
  util::Reader r(body);
  return wire::get_query_results(r);
}

core::CpFlushStats Client::consistency_point(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  const auto body = call(Verb::kConsistencyPoint, tenant, w.data());
  util::Reader r(body);
  return wire::get_cp_stats(r);
}

core::Epoch Client::take_snapshot(const std::string& tenant,
                                  core::LineId line) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  w.u64(line);
  const auto body = call(Verb::kTakeSnapshot, tenant, w.data());
  util::Reader r(body);
  return r.u64();
}

std::vector<core::Epoch> Client::list_versions(const std::string& tenant,
                                               core::LineId line) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  w.u64(line);
  const auto body = call(Verb::kListVersions, tenant, w.data());
  util::Reader r(body);
  const std::uint32_t n = r.count(1u << 24);
  std::vector<core::Epoch> out;
  out.reserve(std::min<std::uint32_t>(n, 4096));
  for (std::uint32_t i = 0; i < n; ++i) out.push_back(r.u64());
  return out;
}

Client::CloneResult Client::clone_volume(const std::string& src,
                                         const std::string& dst,
                                         core::LineId parent_line,
                                         core::Epoch version) {
  util::Writer w;
  wire::put_tenant(w, src);
  wire::put_tenant(w, dst);
  w.u64(parent_line);
  w.u64(version);
  const auto body = call(Verb::kCloneVolume, src, w.data());
  util::Reader r(body);
  CloneResult res;
  res.new_line = r.u64();
  res.shared_files = r.u64();
  res.shared_bytes = r.u64();
  res.saved_bytes = r.u64();
  return res;
}

service::MigrationStats Client::migrate_volume(const std::string& tenant,
                                               std::uint64_t target_shard) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  w.u64(target_shard);
  const auto body = call(Verb::kMigrateVolume, tenant, w.data());
  util::Reader r(body);
  return wire::get_migration_stats(r);
}

void Client::set_qos(const std::string& tenant,
                     const service::TenantQos& qos) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  wire::put_qos(w, qos);
  call(Verb::kSetQos, tenant, w.data());
}

service::QosSnapshot Client::qos_snapshot(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  const auto body = call(Verb::kQosSnapshot, tenant, w.data());
  util::Reader r(body);
  return wire::get_qos_snapshot(r);
}

core::QuickStats Client::quick_stats(const std::string& tenant) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  const auto body = call(Verb::kQuickStats, tenant, w.data());
  util::Reader r(body);
  return wire::get_quick_stats(r);
}

std::string Client::stats_text(bool json) {
  util::Writer w;
  w.u8(json ? 1 : 0);
  const auto body = call(Verb::kStatsText, "", w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::string Client::metrics_text(bool json) {
  util::Writer w;
  w.u8(json ? 1 : 0);
  const auto body = call(Verb::kMetricsText, "", w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

service::RateSample Client::poll_rates() {
  const auto body = call(Verb::kPollRates, "", {});
  util::Reader r(body);
  return wire::get_rate_sample(r);
}

void Client::set_tracing(std::uint32_t sample_every,
                         std::uint64_t slow_op_micros) {
  util::Writer w;
  w.u32(sample_every);
  w.u64(slow_op_micros);
  call(Verb::kSetTracing, "", w.data());
}

std::string Client::trace_text(std::uint64_t sample, std::uint64_t slow_us) {
  util::Writer w;
  w.u64(sample);
  w.u64(slow_us);
  const auto body = call(Verb::kTraceText, "", w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::string Client::info_text(const std::string& tenant) {
  return text_request(*this, Verb::kInfoText, tenant);
}

std::string Client::runs_text(const std::string& tenant) {
  return text_request(*this, Verb::kRunsText, tenant);
}

std::string Client::query_text(const std::string& tenant, core::BlockNo first,
                               std::uint64_t count, bool raw) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  w.u64(first);
  w.u64(count);
  w.u8(raw ? 1 : 0);
  const auto body = call(Verb::kQueryText, tenant, w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::string Client::scan_text(const std::string& tenant) {
  return text_request(*this, Verb::kScanText, tenant);
}

std::string Client::maintain_text(const std::string& tenant) {
  return text_request(*this, Verb::kMaintainText, tenant);
}

std::string Client::dump_run_text(const std::string& tenant,
                                  const std::string& file) {
  util::Writer w;
  wire::put_tenant(w, tenant);
  w.string(file);
  const auto body = call(Verb::kDumpRunText, tenant, w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::string Client::balance_text(std::uint64_t cycles) {
  util::Writer w;
  w.u64(cycles);
  const auto body = call(Verb::kBalanceText, "", w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

std::string Client::cache_text(bool json) {
  util::Writer w;
  w.u8(json ? 1 : 0);
  const auto body = call(Verb::kCacheText, "", w.data());
  util::Reader r(body);
  return r.string(kMaxTextBody);
}

void Client::cache_clear() { call(Verb::kCacheClear, "", {}); }

}  // namespace backlog::net
