// Epoll-based network server for the Backlog wire protocol.
//
// Threading model: one acceptor thread blocks in accept() and hands each new
// connection to one of `io_threads` event loops (round-robin). Every I/O
// thread owns a level-triggered epoll instance plus the read/write buffers
// of its connections — a connection lives on exactly one thread for its
// whole life, so buffer state needs no locking. Handlers run on the I/O
// thread: they decode the request with the bounds-checked util::Reader,
// call into the VolumeManager (whose verbs execute on the shard threads;
// the handler blocks on the future) and return the response payload.
// Because the client protocol is one-outstanding-request-per-connection,
// blocking the handler serializes only that connection; other connections
// on the same thread wait at most one verb's service time (raise io_threads
// to bound head-of-line blocking across connections).
//
// Trust model: the server trusts the network no more than a corrupt disk.
// Headers are validated before their length fields are believed, the crc
// covers header+payload, per-verb payload caps bound every allocation, and
// any malformed frame closes the connection after bumping the decode-error
// counter — the server itself must survive arbitrary bytes indefinitely.
//
// EINTR is retried on every syscall loop from day one; a write() returning
// 0 is treated as an error exactly like the storage layer's short-read rule.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/frame.hpp"
#include "service/metrics.hpp"

namespace backlog::net {

struct ServerOptions {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; read the bound one via port()
  std::size_t io_threads = 2;
  /// Registry to mirror the net counters into (optional; see
  /// Server::stats() for the authoritative values).
  service::MetricsRegistry* metrics = nullptr;
};

/// Cumulative server counters (atomics — any thread may read).
struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_active = 0;
  std::uint64_t frames_received = 0;
  std::uint64_t decode_errors = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
};

class Server {
 public:
  /// Handler outcome: a status plus either a body (kOk) or a message.
  struct Response {
    service::ErrorCode code = service::ErrorCode::kOk;
    std::string message;
    std::vector<std::uint8_t> body;

    static Response ok(std::vector<std::uint8_t> body = {}) {
      return {service::ErrorCode::kOk, {}, std::move(body)};
    }
    static Response error(service::ErrorCode code, std::string message) {
      return {code, std::move(message), {}};
    }
  };

  /// Decodes its request from `req` (bounds-checked; a SerdeError thrown
  /// here is answered with kBadRequest). Runs on an I/O thread.
  using Handler =
      std::function<Response(const FrameHeader& header, util::Reader& req)>;

  Server() = default;
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Register `handler` for `verb` with a request-payload cap (frames over
  /// it are decode errors). Register everything before start().
  void register_handler(Verb verb, std::uint32_t max_payload, Handler handler);

  /// Bind + listen + spawn the acceptor and I/O threads. Throws
  /// std::system_error on bind/listen failure.
  void start(const ServerOptions& options);

  /// Close the listener and every connection, join all threads. Idempotent.
  void stop();

  /// The bound TCP port (valid after start(); resolves port 0 requests).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  [[nodiscard]] ServerStats stats() const noexcept;

 private:
  struct Connection {
    int fd = -1;
    std::vector<std::uint8_t> rbuf;   // unparsed inbound bytes
    std::size_t rpos = 0;             // parse cursor into rbuf
    std::vector<std::uint8_t> wbuf;   // unsent outbound bytes
    std::size_t wpos = 0;
    bool want_write = false;          // EPOLLOUT armed
  };

  struct IoThread {
    int epoll_fd = -1;
    int wake_fd = -1;  // eventfd: stop/new-connection kick
    std::thread thread;
    std::mutex pending_mu;
    std::vector<int> pending_fds;  // accepted fds awaiting adoption
    std::map<int, std::unique_ptr<Connection>> conns;
  };

  struct VerbEntry {
    std::uint32_t max_payload = 0;
    Handler handler;
  };

  void accept_loop();
  void io_loop(IoThread& t);
  void adopt_pending(IoThread& t);
  /// Drain readable bytes; parse/dispatch complete frames. Returns false
  /// when the connection must close (EOF, error, or decode error).
  bool on_readable(IoThread& t, Connection& c);
  bool process_frames(Connection& c);
  /// Flush wbuf; arms/disarms EPOLLOUT as needed. False on fatal error.
  bool flush_writes(IoThread& t, Connection& c);
  void close_connection(IoThread& t, int fd);
  void publish_metrics() noexcept;

  std::map<std::uint16_t, VerbEntry> handlers_;
  std::vector<std::unique_ptr<IoThread>> io_;
  std::thread acceptor_;
  int listen_fd_ = -1;
  int accept_wake_fd_ = -1;  // eventfd that unblocks the acceptor's poll()
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<std::size_t> next_io_{0};

  // Authoritative counters (fetch_add: I/O threads share them).
  std::atomic<std::uint64_t> connections_accepted_{0};
  std::atomic<std::uint64_t> connections_active_{0};
  std::atomic<std::uint64_t> frames_received_{0};
  std::atomic<std::uint64_t> decode_errors_{0};
  std::atomic<std::uint64_t> bytes_in_{0};
  std::atomic<std::uint64_t> bytes_out_{0};

  // Registry mirrors (gauges set from the atomics above after every event
  // batch: last-writer-wins of an authoritative value, so multiple I/O
  // threads never corrupt a single-writer counter slot).
  service::MetricsRegistry::Gauge* g_connections_ = nullptr;
  service::MetricsRegistry::Gauge* g_active_ = nullptr;
  service::MetricsRegistry::Gauge* g_frames_ = nullptr;
  service::MetricsRegistry::Gauge* g_decode_errors_ = nullptr;
  service::MetricsRegistry::Gauge* g_bytes_in_ = nullptr;
  service::MetricsRegistry::Gauge* g_bytes_out_ = nullptr;
};

}  // namespace backlog::net
