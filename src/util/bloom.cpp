#include "util/bloom.hpp"

#include <bit>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/hash.hpp"

namespace backlog::util {

namespace {
constexpr std::size_t kMinBits = 64;

std::size_t round_up_pow2(std::size_t x) {
  if (x <= kMinBits) return kMinBits;
  return std::bit_ceil(x);
}
}  // namespace

BloomFilter::BloomFilter(std::size_t bits) {
  const std::size_t n = round_up_pow2(bits);
  bits_.assign(n / 64, 0);
  mask_ = n - 1;
}

BloomFilter BloomFilter::sized_for(std::size_t expected_keys,
                                   std::size_t max_bytes) {
  std::size_t want_bits = expected_keys * 8;
  std::size_t cap_bits = max_bytes * 8;
  if (want_bits > cap_bits) want_bits = cap_bits;
  return BloomFilter(want_bits);
}

void BloomFilter::insert(std::uint64_t key) noexcept {
  if (bits_.empty()) return;
  const std::uint64_t h1 = hash_u64(key, 0x71ee2e1cULL);
  const std::uint64_t h2 = hash_u64(key, 0x5bd1e995ULL) | 1;  // odd stride
  std::uint64_t h = h1;
  for (int i = 0; i < kNumHashes; ++i) {
    const std::uint64_t bit = h & mask_;
    bits_[bit >> 6] |= (1ULL << (bit & 63));
    h += h2;
  }
}

bool BloomFilter::may_contain(std::uint64_t key) const noexcept {
  if (bits_.empty()) return false;
  const std::uint64_t h1 = hash_u64(key, 0x71ee2e1cULL);
  const std::uint64_t h2 = hash_u64(key, 0x5bd1e995ULL) | 1;
  std::uint64_t h = h1;
  for (int i = 0; i < kNumHashes; ++i) {
    const std::uint64_t bit = h & mask_;
    if ((bits_[bit >> 6] & (1ULL << (bit & 63))) == 0) return false;
    h += h2;
  }
  return true;
}

void BloomFilter::halve() {
  if (bit_count() <= kMinBits) return;
  const std::size_t half_words = bits_.size() / 2;
  for (std::size_t i = 0; i < half_words; ++i) bits_[i] |= bits_[i + half_words];
  bits_.resize(half_words);
  mask_ = bit_count() - 1;
}

void BloomFilter::shrink_to_fit(std::size_t actual_keys) {
  const std::size_t target = round_up_pow2(actual_keys * 8);
  while (bit_count() > target && bit_count() > kMinBits) halve();
}

double BloomFilter::expected_fpr(std::size_t n) const noexcept {
  if (bits_.empty()) return 0.0;
  const double m = static_cast<double>(bit_count());
  const double k = kNumHashes;
  const double p = 1.0 - std::exp(-k * static_cast<double>(n) / m);
  return std::pow(p, k);
}

void BloomFilter::serialize(std::vector<std::uint8_t>& out) const {
  const std::uint64_t words = bits_.size();
  const std::size_t base = out.size();
  out.resize(base + 8 + words * 8);
  std::memcpy(out.data() + base, &words, 8);
  if (words > 0) std::memcpy(out.data() + base + 8, bits_.data(), words * 8);
}

BloomFilter BloomFilter::deserialize(std::span<const std::uint8_t> in,
                                     std::size_t* consumed) {
  if (in.size() < 8) throw std::runtime_error("bloom: truncated header");
  std::uint64_t words = 0;
  std::memcpy(&words, in.data(), 8);
  // Division form: `8 + words * 8` overflows for a hostile word count near
  // 2^61, which would wrap small and pass the length check.
  if (words > (in.size() - 8) / 8)
    throw std::runtime_error("bloom: truncated body");
  if (words != 0 && !std::has_single_bit(words))
    throw std::runtime_error("bloom: corrupt word count");
  BloomFilter f;
  f.bits_.resize(words);
  if (words > 0) {
    std::memcpy(f.bits_.data(), in.data() + 8, words * 8);
    f.mask_ = f.bit_count() - 1;
  }
  if (consumed != nullptr) *consumed = 8 + words * 8;
  return f;
}

}  // namespace backlog::util
