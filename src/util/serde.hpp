// Little-endian fixed-width encode/decode helpers for on-disk structures.
// All Backlog on-disk formats are little-endian; a static_assert in
// storage/env.cpp rejects big-endian hosts at build time.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace backlog::util {

inline void put_u16(std::uint8_t* dst, std::uint16_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}
inline void put_u32(std::uint8_t* dst, std::uint32_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}
inline void put_u64(std::uint8_t* dst, std::uint64_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}

inline std::uint16_t get_u16(const std::uint8_t* src) noexcept {
  std::uint16_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
inline std::uint32_t get_u32(const std::uint8_t* src) noexcept {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* src) noexcept {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

/// Big-endian encoding: memcmp order over the bytes equals numeric order.
/// Used for B+-tree keys (the tree compares keys with memcmp).
inline void put_be64(std::uint8_t* dst, std::uint64_t v) noexcept {
  for (int i = 7; i >= 0; --i) {
    dst[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}
inline std::uint64_t get_be64(const std::uint8_t* src) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | src[i];
  return v;
}

inline void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + 4);
  put_u32(out.data() + n, v);
}
inline void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + 8);
  put_u64(out.data() + n, v);
}
inline void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

}  // namespace backlog::util
