// Little-endian fixed-width encode/decode helpers for on-disk structures,
// plus the bounds-checked Reader/Writer used by every *untrusted* decode
// path (wire frames, anything that parses bytes a peer or a disk could have
// corrupted). All Backlog on-disk formats are little-endian; a static_assert
// in storage/env.cpp rejects big-endian hosts at build time.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace backlog::util {

inline void put_u16(std::uint8_t* dst, std::uint16_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}
inline void put_u32(std::uint8_t* dst, std::uint32_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}
inline void put_u64(std::uint8_t* dst, std::uint64_t v) noexcept {
  std::memcpy(dst, &v, sizeof v);
}

inline std::uint16_t get_u16(const std::uint8_t* src) noexcept {
  std::uint16_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
inline std::uint32_t get_u32(const std::uint8_t* src) noexcept {
  std::uint32_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}
inline std::uint64_t get_u64(const std::uint8_t* src) noexcept {
  std::uint64_t v;
  std::memcpy(&v, src, sizeof v);
  return v;
}

/// Big-endian encoding: memcmp order over the bytes equals numeric order.
/// Used for B+-tree keys (the tree compares keys with memcmp).
inline void put_be64(std::uint8_t* dst, std::uint64_t v) noexcept {
  for (int i = 7; i >= 0; --i) {
    dst[i] = static_cast<std::uint8_t>(v & 0xff);
    v >>= 8;
  }
}
inline std::uint64_t get_be64(const std::uint8_t* src) noexcept {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | src[i];
  return v;
}

inline void append_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  const std::size_t n = out.size();
  out.resize(n + 4);
  put_u32(out.data() + n, v);
}
inline void append_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  const std::size_t n = out.size();
  out.resize(n + 8);
  put_u64(out.data() + n, v);
}
inline void append_string(std::vector<std::uint8_t>& out, const std::string& s) {
  append_u32(out, static_cast<std::uint32_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

/// Thrown by Reader on any out-of-bounds or over-limit decode. Catching this
/// (and only this) at a decode boundary distinguishes "the bytes are
/// corrupt/malicious" from programmer errors.
class SerdeError : public std::runtime_error {
 public:
  explicit SerdeError(const std::string& what) : std::runtime_error(what) {}
};

/// Bounds-checked sequential decoder over a borrowed byte span. Every read
/// verifies the remaining length first and throws SerdeError instead of
/// reading past the end; length-prefixed fields take an explicit cap so a
/// corrupt length can never drive an allocation. The span is *borrowed*:
/// the Reader must not outlive the bytes it was built over.
class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}
  Reader(const std::uint8_t* data, std::size_t size) : data_(data, size) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] bool done() const noexcept { return pos_ == data_.size(); }

  std::uint8_t u8() { return *need(1); }
  std::uint16_t u16() { return get_u16(need(2)); }
  std::uint32_t u32() { return get_u32(need(4)); }
  std::uint64_t u64() { return get_u64(need(8)); }
  double f64() {
    const std::uint64_t bits = u64();
    double v;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }

  /// u32 length prefix + raw bytes; lengths above `max_len` throw before any
  /// allocation happens.
  std::string string(std::size_t max_len) {
    const std::uint32_t n = u32();
    if (n > max_len) throw SerdeError("serde: string length over cap");
    const std::uint8_t* p = need(n);
    return {reinterpret_cast<const char*>(p), n};
  }

  /// Borrow `n` raw bytes (no copy); throws if fewer remain.
  std::span<const std::uint8_t> bytes(std::size_t n) { return {need(n), n}; }

  /// A u32 element count with a sanity cap — callers size their loops (not
  /// their allocations!) from this.
  std::uint32_t count(std::uint32_t max_count) {
    const std::uint32_t n = u32();
    if (n > max_count) throw SerdeError("serde: element count over cap");
    return n;
  }

  void skip(std::size_t n) { need(n); }

 private:
  const std::uint8_t* need(std::size_t n) {
    if (n > remaining()) throw SerdeError("serde: read past end of buffer");
    const std::uint8_t* p = data_.data() + pos_;
    pos_ += n;
    return p;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

/// Append-only encoder mirroring Reader's field formats.
class Writer {
 public:
  Writer() = default;

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    const std::size_t n = out_.size();
    out_.resize(n + 2);
    put_u16(out_.data() + n, v);
  }
  void u32(std::uint32_t v) { append_u32(out_, v); }
  void u64(std::uint64_t v) { append_u64(out_, v); }
  void f64(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void string(const std::string& s) { append_string(out_, s); }
  void bytes(std::span<const std::uint8_t> b) {
    out_.insert(out_.end(), b.begin(), b.end());
  }

  [[nodiscard]] const std::vector<std::uint8_t>& data() const noexcept {
    return out_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(out_);
  }

 private:
  std::vector<std::uint8_t> out_;
};

}  // namespace backlog::util
