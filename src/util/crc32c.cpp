#include "util/crc32c.hpp"

#include <array>

namespace backlog::util {
namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int j = 0; j < 8; ++j) {
      crc = (crc & 1) ? (crc >> 1) ^ kPoly : crc >> 1;
    }
    t[i] = crc;
  }
  return t;
}

constexpr auto kTable = make_table();

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < len; ++i) {
    crc = kTable[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace backlog::util
