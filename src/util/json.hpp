// Minimal JSON string escaping, shared by the bench JSONROW emitter and the
// unit tests that pin its output. Lives in util (not bench/) so tests can
// include it without the bench tree on their include path.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

namespace backlog::util {

/// Escape `s` for embedding inside a JSON string literal (RFC 8259):
/// backslash, double quote, and the C0 control characters. Everything else
/// passes through byte-for-byte, so valid UTF-8 stays valid UTF-8.
inline std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char raw : s) {
    const auto c = static_cast<unsigned char>(raw);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += raw;
        }
    }
  }
  return out;
}

}  // namespace backlog::util
