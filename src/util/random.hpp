// Deterministic pseudo-random utilities for the workload generator and the
// deduplication-sharing model.
//
// We avoid <random>'s distribution objects in hot paths because their output
// differs across standard-library implementations; every experiment in this
// repo must be reproducible bit-for-bit from a seed.
#pragma once

#include <cstdint>
#include <vector>

namespace backlog::util {

/// xoshiro256** — small, fast, high-quality PRNG with a splitmix64 seeder.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t between(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform double in [0, 1).
  double uniform() noexcept;

  /// Bernoulli trial.
  bool chance(double p) noexcept;

  /// Geometric: number of failures before first success, success prob p.
  std::uint64_t geometric(double p) noexcept;

 private:
  std::uint64_t s_[4];
};

/// Zipf(α) sampler over ranks {1..n} with O(1) amortized sampling via the
/// rejection-inversion method of Hörmann & Derflinger. Used to model the
/// skewed block-sharing distribution of deduplicated data (§6.1: ~75-78% of
/// blocks have refcount 1, 18% refcount 2, 5% refcount 3, ...).
class ZipfSampler {
 public:
  ZipfSampler(std::uint64_t n, double alpha);

  /// Sample a rank in [1, n].
  std::uint64_t sample(Rng& rng) const;

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double alpha() const noexcept { return alpha_; }

 private:
  [[nodiscard]] double h(double x) const;
  [[nodiscard]] double h_integral(double x) const;
  [[nodiscard]] double h_integral_inverse(double x) const;

  std::uint64_t n_;
  double alpha_;
  double h_integral_x1_;
  double h_integral_n_;
  double s_;
};

/// Sample an index from an explicit discrete distribution (weights need not
/// be normalized). O(k) per sample; k is tiny for our op-mix tables.
std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights);

}  // namespace backlog::util
