#include "util/random.hpp"

#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"

namespace backlog::util {

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  // splitmix64 expansion of the seed into the four state words.
  std::uint64_t x = seed;
  for (auto& s : s_) {
    x += 0x9e3779b97f4a7c15ULL;
    s = mix64(x);
  }
  // xoshiro must not start from the all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless bounded sampling.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto l = static_cast<std::uint64_t>(m);
  if (l < bound) {
    const std::uint64_t t = -bound % bound;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::between(std::uint64_t lo, std::uint64_t hi) noexcept {
  return lo + below(hi - lo + 1);
}

double Rng::uniform() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool Rng::chance(double p) noexcept { return uniform() < p; }

std::uint64_t Rng::geometric(double p) noexcept {
  if (p >= 1.0) return 0;
  if (p <= 0.0) return 0;  // degenerate; callers validate
  const double u = uniform();
  return static_cast<std::uint64_t>(std::floor(std::log1p(-u) / std::log1p(-p)));
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha) : n_(n), alpha_(alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be positive");
  if (alpha <= 0.0) throw std::invalid_argument("ZipfSampler: alpha must be > 0");
  h_integral_x1_ = h_integral(1.5) - 1.0;
  h_integral_n_ = h_integral(static_cast<double>(n) + 0.5);
  s_ = 2.0 - h_integral_inverse(h_integral(2.5) - h(2.0));
}

double ZipfSampler::h(double x) const { return std::exp(-alpha_ * std::log(x)); }

double ZipfSampler::h_integral(double x) const {
  const double log_x = std::log(x);
  // Stable evaluation of (exp((1-a) log x) - 1) / (1-a), including a ~= 1.
  const double t = (1.0 - alpha_) * log_x;
  double v;
  if (std::fabs(t) > 1e-8) {
    v = std::expm1(t) / (1.0 - alpha_);
  } else {
    v = log_x * (1.0 + t / 2.0 + t * t / 6.0);
  }
  return v;
}

double ZipfSampler::h_integral_inverse(double x) const {
  double t = x * (1.0 - alpha_);
  if (t < -1.0) t = -1.0;  // guard rounding at the left boundary
  if (std::fabs(t) > 1e-8) {
    return std::exp(std::log1p(t) / (1.0 - alpha_));
  }
  return std::exp(x * (1.0 - x * alpha_ / 2.0));
}

std::uint64_t ZipfSampler::sample(Rng& rng) const {
  if (n_ == 1) return 1;
  while (true) {
    const double u =
        h_integral_n_ + rng.uniform() * (h_integral_x1_ - h_integral_n_);
    const double x = h_integral_inverse(u);
    std::uint64_t k = static_cast<std::uint64_t>(x + 0.5);
    if (k < 1) k = 1;
    if (k > n_) k = n_;
    const double kd = static_cast<double>(k);
    if (kd - x <= s_ || u >= h_integral(kd + 0.5) - h(kd)) {
      return k;
    }
  }
}

std::size_t sample_discrete(Rng& rng, const std::vector<double>& weights) {
  double total = 0;
  for (double w : weights) total += w;
  if (total <= 0) throw std::invalid_argument("sample_discrete: no mass");
  double u = rng.uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0) return i;
  }
  return weights.size() - 1;
}

}  // namespace backlog::util
