// CRC32-C (Castagnoli) used to checksum on-disk pages (run-file headers,
// B+-tree pages, manifests). Software table-driven implementation; this repo
// must build on any host, so no SSE4.2 intrinsics.
#pragma once

#include <cstddef>
#include <cstdint>

namespace backlog::util {

/// CRC32-C of `len` bytes, chained from `seed` (pass a previous result to
/// checksum discontiguous regions).
std::uint32_t crc32c(const void* data, std::size_t len,
                     std::uint32_t seed = 0) noexcept;

}  // namespace backlog::util
