// Bloom filter with the properties the paper relies on (§5.1):
//  * four hash functions (derived from two base hashes, Kirsch-Mitzenmacher),
//  * power-of-two bit count so the filter can be *halved* in linear time
//    (Broder & Mitzenmacher) to fit the actual number of records in a run,
//  * compact serialization appended to read-store run files.
//
// The default sizing mirrors the paper: 32 KB of bits for 32,000 operations
// per consistency point (~2.4% expected false-positive rate), expandable to
// 1 MB for the Combined read store.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace backlog::util {

class BloomFilter {
 public:
  static constexpr int kNumHashes = 4;

  /// An empty (always-negative) filter.
  BloomFilter() = default;

  /// Create a filter with `bits` bits; `bits` is rounded up to a power of
  /// two (required for cheap halving) and to at least 64.
  explicit BloomFilter(std::size_t bits);

  /// Paper sizing rule: 8 bits of filter per expected key, clamped to
  /// [64 bits, max_bytes*8]. 32,000 keys -> 32 KB (the WAFL setting).
  static BloomFilter sized_for(std::size_t expected_keys,
                               std::size_t max_bytes = 32 * 1024);

  void insert(std::uint64_t key) noexcept;
  [[nodiscard]] bool may_contain(std::uint64_t key) const noexcept;

  /// Halve the filter in linear time by OR-folding the upper half onto the
  /// lower half. Membership is preserved; FPR rises. No-op below 64 bits.
  void halve();

  /// Shrink by repeated halving until the filter is the smallest power of
  /// two that still gives ~8 bits/key for `actual_keys` (paper: runs smaller
  /// than the max op count get proportionally smaller filters).
  void shrink_to_fit(std::size_t actual_keys);

  [[nodiscard]] std::size_t bit_count() const noexcept { return bits_.size() * 64; }
  [[nodiscard]] std::size_t byte_size() const noexcept { return bits_.size() * 8; }
  [[nodiscard]] bool empty() const noexcept { return bits_.empty(); }

  /// Expected false positive rate for `n` inserted keys given current size.
  [[nodiscard]] double expected_fpr(std::size_t n) const noexcept;

  /// Serialization: [u64 word_count][words...]. Returns bytes appended.
  void serialize(std::vector<std::uint8_t>& out) const;
  static BloomFilter deserialize(std::span<const std::uint8_t> in,
                                 std::size_t* consumed = nullptr);

 private:
  // 64-bit words; word count is always zero or a power of two.
  std::vector<std::uint64_t> bits_;
  std::uint64_t mask_ = 0;  // bit_count-1 when non-empty
};

}  // namespace backlog::util
