// Monotonic wall-clock helpers shared by the core timing stats, the service
// layer's latency histograms and the workload drivers (one definition, so a
// future clock-source change happens in one place).
#pragma once

#include <chrono>
#include <cstdint>

namespace backlog::util {

inline std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline double now_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace backlog::util
