// 64-bit mixing and string hashing used by Bloom filters and page checksums.
//
// The hash family here is a self-contained xxHash64-style construction; it is
// deterministic across platforms so that on-disk Bloom filters written by one
// build can be read by another.
#pragma once

#include <cstddef>
#include <cstdint>

namespace backlog::util {

/// Strong 64-bit finalizer (splitmix64). Good avalanche behaviour; used to
/// derive the k Bloom hash functions from two base hashes.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Hash an arbitrary byte range with a seed. xxHash64-flavoured; stable
/// across platforms and builds (used in on-disk formats).
std::uint64_t hash_bytes(const void* data, std::size_t len,
                         std::uint64_t seed = 0) noexcept;

/// Hash a single 64-bit key (fast path used for Bloom filter membership of
/// physical block numbers).
constexpr std::uint64_t hash_u64(std::uint64_t key,
                                 std::uint64_t seed = 0) noexcept {
  return mix64(key ^ mix64(seed));
}

}  // namespace backlog::util
