// ResultCache: per-volume query/backref result cache with epoch tags.
//
// Caches whole masked-query results keyed by the query shape (first block,
// count, expand/mask flags). Every entry is stamped with the volume's
// mutation tag — the pair (BacklogDb mutation counter, SnapshotRegistry
// version) — at insert time. A hit whose tag no longer matches the current
// tag is stale and dies by tag comparison: no scans, no explicit
// invalidation calls from the write path. Anything that can change a query
// answer bumps one of the two counters (updates, CPs, maintenance and
// relocation bump the db counter; snapshot/clone/delete/kill/collect bump
// the registry version), so the tag is conservative by construction.
//
// Owned by one BacklogDb and accessed only on the volume's shard thread —
// single-threaded on purpose, like the write store. Capacity 0 disables it.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace backlog::core {

struct ResultCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;      ///< lookups that found nothing usable
  std::uint64_t stale_hits = 0;  ///< present but out-tagged (subset of misses)
  std::uint64_t entries = 0;
  std::uint64_t capacity = 0;

  [[nodiscard]] double hit_ratio() const noexcept {
    const std::uint64_t total = hits + misses;
    return total == 0 ? 0.0
                      : static_cast<double>(hits) / static_cast<double>(total);
  }
};

template <typename Result>
class ResultCache {
 public:
  struct Key {
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    bool expand = true;
    bool mask = true;

    friend bool operator==(const Key&, const Key&) = default;
  };

  /// The volume's mutation tag; see the header comment.
  struct Tag {
    std::uint64_t mutations = 0;
    std::uint64_t registry = 0;

    friend bool operator==(const Tag&, const Tag&) = default;
  };

  explicit ResultCache(std::size_t capacity) : capacity_(capacity) {}

  [[nodiscard]] bool enabled() const noexcept { return capacity_ != 0; }

  /// The cached result for `key` if present and stamped with `tag`, else
  /// nullptr. A stale entry (tag mismatch) is erased on the spot.
  const Result* get(const Key& key, const Tag& tag) {
    if (capacity_ == 0) {
      ++misses_;
      return nullptr;
    }
    const auto it = map_.find(key);
    if (it == map_.end()) {
      ++misses_;
      return nullptr;
    }
    if (!(it->second->tag == tag)) {
      lru_.erase(it->second);
      map_.erase(it);
      ++stale_hits_;
      ++misses_;
      return nullptr;
    }
    lru_.splice(lru_.begin(), lru_, it->second);
    ++hits_;
    return &it->second->result;
  }

  void put(const Key& key, const Tag& tag, Result result) {
    if (capacity_ == 0) return;
    const auto it = map_.find(key);
    if (it != map_.end()) {
      it->second->tag = tag;
      it->second->result = std::move(result);
      lru_.splice(lru_.begin(), lru_, it->second);
      return;
    }
    lru_.push_front(Entry{key, tag, std::move(result)});
    map_.emplace(key, lru_.begin());
    while (lru_.size() > capacity_) {
      map_.erase(lru_.back().key);
      lru_.pop_back();
    }
  }

  void clear() {
    map_.clear();
    lru_.clear();
  }

  [[nodiscard]] ResultCacheStats stats() const {
    ResultCacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.stale_hits = stale_hits_;
    s.entries = lru_.size();
    s.capacity = capacity_;
    return s;
  }

 private:
  struct Entry {
    Key key;
    Tag tag;
    Result result;
  };

  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.first * 0x9e3779b97f4a7c15ULL;
      h ^= k.count * 0x100000001b3ULL;
      h ^= (static_cast<std::uint64_t>(k.expand) << 1) |
           static_cast<std::uint64_t>(k.mask);
      return static_cast<std::size_t>(util::hash_u64(h));
    }
  };

  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<Key, typename std::list<Entry>::iterator, KeyHash> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t stale_hits_ = 0;
};

}  // namespace backlog::core
