#include "core/snapshot_registry.hpp"

#include <algorithm>
#include <stdexcept>

namespace backlog::core {

SnapshotRegistry::SnapshotRegistry() {
  LineInfo root;
  root.id = 0;
  root.created_at = 1;
  root.live = true;
  lines_.emplace(0, std::move(root));
}

Epoch SnapshotRegistry::advance_cp() {
  ++version_;
  return ++current_cp_;
}

const SnapshotRegistry::LineInfo& SnapshotRegistry::info(LineId line) const {
  auto it = lines_.find(line);
  if (it == lines_.end())
    throw std::invalid_argument("SnapshotRegistry: unknown line " +
                                std::to_string(line));
  return it->second;
}

SnapshotRegistry::LineInfo& SnapshotRegistry::info(LineId line) {
  return const_cast<LineInfo&>(
      static_cast<const SnapshotRegistry*>(this)->info(line));
}

bool SnapshotRegistry::line_exists(LineId line) const {
  return lines_.contains(line);
}

bool SnapshotRegistry::line_live(LineId line) const { return info(line).live; }

Epoch SnapshotRegistry::take_snapshot(LineId line) {
  LineInfo& li = info(line);
  if (!li.live)
    throw std::logic_error("take_snapshot: line has no live head");
  li.snapshots.insert(current_cp_);
  ++version_;
  return current_cp_;
}

LineId SnapshotRegistry::create_clone(LineId parent, Epoch version) {
  LineInfo& p = info(parent);
  if (!p.snapshots.contains(version) && !p.zombies.contains(version))
    throw std::invalid_argument("create_clone: (line " + std::to_string(parent) +
                                ", v" + std::to_string(version) +
                                ") is not a retained snapshot");
  const LineId id = next_line_++;
  LineInfo li;
  li.id = id;
  li.parent = parent;
  li.branch_version = version;
  li.created_at = current_cp_;
  li.live = true;
  p.children.push_back({id, version});
  lines_.emplace(id, std::move(li));
  ++version_;
  return id;
}

void SnapshotRegistry::delete_snapshot(LineId line, Epoch version) {
  LineInfo& li = info(line);
  if (!li.snapshots.erase(version))
    throw std::invalid_argument("delete_snapshot: (line " + std::to_string(line) +
                                ", v" + std::to_string(version) +
                                ") is not retained");
  // §4.2.2: a cloned snapshot becomes a zombie so its back references are
  // not purged while descendants remain.
  const bool cloned = std::any_of(
      li.children.begin(), li.children.end(), [&](const CloneEdge& e) {
        return e.branch_version == version && lines_.contains(e.child);
      });
  if (cloned) li.zombies.insert(version);
  ++version_;
}

void SnapshotRegistry::kill_line(LineId line) {
  info(line).live = false;
  ++version_;
}

std::size_t SnapshotRegistry::collect_zombies() {
  ++version_;
  std::size_t dropped = 0;
  // Iterate to fixpoint: forgetting a line can orphan a zombie in its
  // parent, which can in turn let the parent line itself be forgotten.
  bool changed = true;
  while (changed) {
    changed = false;
    for (auto& [id, li] : lines_) {
      // Prune clone edges to lines that no longer exist.
      auto& ch = li.children;
      const auto old_size = ch.size();
      ch.erase(std::remove_if(ch.begin(), ch.end(),
                              [&](const CloneEdge& e) {
                                return !lines_.contains(e.child);
                              }),
               ch.end());
      if (ch.size() != old_size) changed = true;
      // Drop zombies no live edge branches from.
      for (auto it = li.zombies.begin(); it != li.zombies.end();) {
        const Epoch v = *it;
        const bool needed = std::any_of(
            ch.begin(), ch.end(),
            [&](const CloneEdge& e) { return e.branch_version == v; });
        if (!needed) {
          it = li.zombies.erase(it);
          ++dropped;
          changed = true;
        } else {
          ++it;
        }
      }
    }
    // Forget fully-dead lines (never forget line 0, the root).
    for (auto it = lines_.begin(); it != lines_.end();) {
      const LineInfo& li = it->second;
      if (li.id != 0 && !li.live && li.snapshots.empty() && li.zombies.empty() &&
          li.children.empty()) {
        it = lines_.erase(it);
        changed = true;
      } else {
        ++it;
      }
    }
  }
  return dropped;
}

std::vector<Epoch> SnapshotRegistry::snapshots(LineId line) const {
  const LineInfo& li = info(line);
  return {li.snapshots.begin(), li.snapshots.end()};
}

bool SnapshotRegistry::has_snapshot(LineId line, Epoch version) const {
  auto it = lines_.find(line);
  return it != lines_.end() && it->second.snapshots.contains(version);
}

std::vector<Epoch> SnapshotRegistry::valid_versions_in(LineId line, Epoch from,
                                                       Epoch to) const {
  auto it = lines_.find(line);
  if (it == lines_.end()) return {};
  const LineInfo& li = it->second;
  std::vector<Epoch> out;
  for (auto s = li.snapshots.lower_bound(from); s != li.snapshots.end() && *s < to;
       ++s) {
    out.push_back(*s);
  }
  if (li.live && from <= current_cp_ && current_cp_ < to) {
    if (out.empty() || out.back() != current_cp_) out.push_back(current_cp_);
  }
  return out;
}

bool SnapshotRegistry::interval_protected(LineId line, Epoch from,
                                          Epoch to) const {
  auto it = lines_.find(line);
  if (it == lines_.end()) return false;
  const LineInfo& li = it->second;
  if (li.live && from <= current_cp_ && current_cp_ < to) return true;
  auto s = li.snapshots.lower_bound(from);
  if (s != li.snapshots.end() && *s < to) return true;
  auto z = li.zombies.lower_bound(from);
  if (z != li.zombies.end() && *z < to) return true;
  for (const CloneEdge& e : li.children) {
    if (lines_.contains(e.child) && from <= e.branch_version &&
        e.branch_version < to) {
      return true;
    }
  }
  return false;
}

std::vector<CloneEdge> SnapshotRegistry::clones_of(LineId line) const {
  auto it = lines_.find(line);
  if (it == lines_.end()) return {};
  std::vector<CloneEdge> out;
  for (const CloneEdge& e : it->second.children) {
    if (lines_.contains(e.child)) out.push_back(e);
  }
  return out;
}

std::vector<LineId> SnapshotRegistry::lines() const {
  std::vector<LineId> out;
  out.reserve(lines_.size());
  for (const auto& [id, li] : lines_) out.push_back(id);
  return out;
}

std::optional<ParentEdge> SnapshotRegistry::parent_of(LineId line) const {
  const LineInfo& li = info(line);
  if (!li.parent) return std::nullopt;
  return ParentEdge{*li.parent, li.branch_version};
}

std::size_t SnapshotRegistry::zombie_count() const {
  std::size_t n = 0;
  for (const auto& [id, li] : lines_) n += li.zombies.size();
  return n;
}

void SnapshotRegistry::serialize(std::vector<std::uint8_t>& out) const {
  util::append_u64(out, current_cp_);
  util::append_u64(out, next_line_);
  util::append_u64(out, lines_.size());
  for (const auto& [id, li] : lines_) {
    util::append_u64(out, li.id);
    util::append_u64(out, li.parent ? *li.parent + 1 : 0);  // 0 = none
    util::append_u64(out, li.branch_version);
    util::append_u64(out, li.created_at);
    util::append_u64(out, li.live ? 1 : 0);
    util::append_u64(out, li.snapshots.size());
    for (Epoch v : li.snapshots) util::append_u64(out, v);
    util::append_u64(out, li.zombies.size());
    for (Epoch v : li.zombies) util::append_u64(out, v);
    util::append_u64(out, li.children.size());
    for (const CloneEdge& e : li.children) {
      util::append_u64(out, e.child);
      util::append_u64(out, e.branch_version);
    }
  }
}

SnapshotRegistry SnapshotRegistry::deserialize(std::span<const std::uint8_t> in,
                                               std::size_t* consumed) {
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > in.size())
      throw std::runtime_error("SnapshotRegistry: truncated blob");
  };
  auto read_u64 = [&]() {
    need(8);
    const std::uint64_t v = util::get_u64(in.data() + pos);
    pos += 8;
    return v;
  };
  SnapshotRegistry reg;
  reg.lines_.clear();
  reg.current_cp_ = read_u64();
  reg.next_line_ = read_u64();
  const std::uint64_t line_count = read_u64();
  for (std::uint64_t i = 0; i < line_count; ++i) {
    LineInfo li;
    li.id = read_u64();
    const std::uint64_t parent_plus1 = read_u64();
    if (parent_plus1 != 0) li.parent = parent_plus1 - 1;
    li.branch_version = read_u64();
    li.created_at = read_u64();
    li.live = read_u64() != 0;
    const std::uint64_t snap_count = read_u64();
    for (std::uint64_t j = 0; j < snap_count; ++j) li.snapshots.insert(read_u64());
    const std::uint64_t zombie_count = read_u64();
    for (std::uint64_t j = 0; j < zombie_count; ++j) li.zombies.insert(read_u64());
    const std::uint64_t child_count = read_u64();
    for (std::uint64_t j = 0; j < child_count; ++j) {
      CloneEdge e;
      e.child = read_u64();
      e.branch_version = read_u64();
      li.children.push_back(e);
    }
    reg.lines_.emplace(li.id, std::move(li));
  }
  if (consumed != nullptr) *consumed = pos;
  return reg;
}

}  // namespace backlog::core
