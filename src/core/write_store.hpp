// In-memory write stores for the From and To tables (§5, §5.1).
//
// The WS is a balanced tree sorted the same way as the on-disk runs, so that
// (a) the CP flush can build the run file bottom-up with zero sorting work
// and (b) proactive pruning can find the entry it needs in O(log n):
//
//  * add+remove within one CP  -> both sides are still in memory; the From
//    entry is erased and nothing is ever written (records with from == to
//    never materialize);
//  * remove+re-add within one CP (reallocation) -> the buffered To entry is
//    erased, so the original From record simply stays incomplete and the
//    reference's lifetime continues uninterrupted (the paper's "3..present"
//    example).
//
// Invariant: every epoch stored in the WS equals the *current* CP number —
// the WS is flushed at every consistency point, which is what makes pruning
// a pure in-memory operation.
#pragma once

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "core/backref_record.hpp"

namespace backlog::core {

/// Outcome of an update, for stats and tests.
enum class WsUpdate {
  kInserted,        ///< a new WS entry was created
  kPrunedAnnihilate,///< add+remove in one CP cancelled out (nothing remains)
  kPrunedMerge,     ///< remove+add in one CP merged intervals (To erased)
};

class WriteStore {
 public:
  /// `pruning` off is used only by the ablation bench (§5.1 design choice).
  explicit WriteStore(bool pruning = true) : pruning_(pruning) {}

  /// A reference to `key` became live at the current CP `cp`.
  WsUpdate add_reference(const BackrefKey& key, Epoch cp);

  /// The reference to `key` died at the current CP `cp`.
  WsUpdate remove_reference(const BackrefKey& key, Epoch cp);

  /// Bulk update: apply `ops` in order with exactly the same pruning rules
  /// as the per-op calls, amortizing per-record overhead. All ops carry the
  /// same epoch `cp` (the write-store invariant), so the per-op epoch stamp
  /// and pruning-probe setup are paid once; inserts are hinted at the tail,
  /// which is O(1) amortized for the dominant append pattern (fresh blocks
  /// allocated monotonically) and falls back to O(log n) otherwise.
  void apply_many(std::span<const Update> ops, Epoch cp);

  [[nodiscard]] std::size_t from_size() const noexcept { return from_.size(); }
  [[nodiscard]] std::size_t to_size() const noexcept { return to_.size(); }
  [[nodiscard]] bool empty() const noexcept {
    return from_.empty() && to_.empty();
  }

  /// Sorted snapshots of the stores as encoded record buffers (the flush
  /// path feeds these to RunWriter; the query path wraps them in streams).
  [[nodiscard]] std::vector<std::uint8_t> encode_from_sorted() const;
  [[nodiscard]] std::vector<std::uint8_t> encode_to_sorted() const;

  /// Encoded entries whose block lies in [block_lo, block_hi) — the query
  /// path merges these with the on-disk runs.
  [[nodiscard]] std::vector<std::uint8_t> encode_from_range(BlockNo block_lo,
                                                            BlockNo block_hi) const;
  [[nodiscard]] std::vector<std::uint8_t> encode_to_range(BlockNo block_lo,
                                                          BlockNo block_hi) const;

  /// Relocation support: rewrite the block field of every entry whose block
  /// lies in [block_lo, block_hi) to (block - block_lo + new_lo). Returns
  /// the number of entries rewritten.
  std::size_t rekey_block_range(BlockNo block_lo, BlockNo block_hi,
                                BlockNo new_lo);

  [[nodiscard]] const std::set<FromRecord>& from_entries() const noexcept {
    return from_;
  }
  [[nodiscard]] const std::set<ToRecord>& to_entries() const noexcept {
    return to_;
  }

  /// Drop everything (after a successful CP flush, or to simulate a crash).
  void clear() {
    from_.clear();
    to_.clear();
  }

  /// Remove WS entries matching an exact key (relocation support). Returns
  /// the erased (from?, to?) entries' presence.
  struct Erased {
    bool from = false;
    bool to = false;
    Epoch from_epoch = 0;
    Epoch to_epoch = 0;
  };
  Erased erase_key(const BackrefKey& key, Epoch cp);

 private:
  bool pruning_;
  std::set<FromRecord> from_;
  std::set<ToRecord> to_;
};

}  // namespace backlog::core
