// FileManifest — reference-counted ownership of immutable files shared
// across volume directories (the service layer's copy-on-write clones).
//
// The paper's premise is that a write-anywhere system shares immutable
// blocks across snapshots and clones and resolves shared ownership through
// back references; this is the same idea one level up, applied to whole
// files. A Backlog volume's run files are immutable once written (updates
// land in new Level-0 runs, logical deletes go through the deletion
// vectors), so a clone can *share* them instead of copying: clone_volume
// hard-links every live run file into the clone's directory and records the
// sharing here. From that point the file is owned by a refcount, not by a
// single volume directory:
//
//   * note_link(name)   — one more directory holds a link of `name`
//   * note_unlink(name) — one holder dropped its link (compaction retiring
//                         a run, snapshot deletion, destroy_volume, clone
//                         failure cleanup)
//
// An entry exists only while a file is held by >= 2 directories; when the
// count decays to 1 the entry is erased and the remaining holder owns the
// file alone again (its eventual unlink is the physical removal — refcount
// zero). Untracked names are sole-owned by construction, so the hot path
// (every CP flush creates runs, most runs are never shared) costs nothing.
//
// Persistence and crash safety: the table is persisted to `FILEREFS` in the
// service root via atomic tmp+rename. clone_volume persists it as one of
// its two durability points (the other being the clone directory's commit
// rename), and a crash between the two leaves the table stale in either
// direction — which is why recovery never trusts it: rebuild() recounts
// every name across the committed volume directories (names are globally
// unique, see BacklogOptions::file_tag) and rewrites the table. FILEREFS is
// a durable cache for inspection and accounting, not the root of truth; the
// union of the volumes' own Backlog manifests is.
//
// Thread safety: all methods lock an internal mutex — shard threads release
// files during compaction while the API thread shares files during a clone.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace backlog::core {

class FileManifest {
 public:
  /// One shared file: how many directories hold a hard link of it.
  struct Entry {
    std::uint32_t refcount = 0;
    std::uint64_t size_bytes = 0;
  };

  struct Stats {
    std::uint64_t shared_files = 0;  ///< tracked names (refcount >= 2)
    std::uint64_t shared_bytes = 0;  ///< bytes stored once, referenced more
    std::uint64_t saved_bytes = 0;   ///< sum over entries of (refcount-1)*size
    std::uint64_t persists = 0;      ///< FILEREFS writes since construction
  };

  /// Creates `root` if missing and loads `root/FILEREFS` if present (a
  /// corrupt or torn table loads as far as it parses — callers that need
  /// exactness after a crash run rebuild()).
  explicit FileManifest(std::filesystem::path root);

  FileManifest(const FileManifest&) = delete;
  FileManifest& operator=(const FileManifest&) = delete;

  // --- refcount transitions (in-memory; callers choose the persist point) ---

  /// One more directory holds a link of `name`. Creates the entry at
  /// refcount 2 (the original holder plus the new one) on first sharing.
  void note_link(const std::string& name, std::uint64_t size_bytes);

  /// One holder dropped its link of `name`. Returns true if the table
  /// changed (the name was tracked); untracked names are sole-owned and
  /// nothing needs recording. Entries decay at refcount 1: the survivor
  /// owns the file alone and its own unlink is the physical removal.
  bool note_unlink(const std::string& name);

  /// The per-file release hook BacklogDb calls when it retires a run
  /// (after deleting its own directory entry). Memory-only — a compaction
  /// pass retiring many shared runs must not rewrite FILEREFS per file;
  /// BacklogDb flushes once per pass via persist_if_dirty(). The widened
  /// crash window only ever leaves FILEREFS *overcounting* (links gone,
  /// table not yet rewritten), which recovery's rebuild() erases.
  void release(const std::string& name) { note_unlink(name); }

  /// Write `FILEREFS` atomically (tmp + rename). A no-op table still
  /// persists (an empty file), so a cleared table is durable too.
  void persist();

  /// persist() only if a note_link/note_unlink changed the table since the
  /// last write — the batch flush for compaction passes and recovery.
  void persist_if_dirty();

  // --- queries ---------------------------------------------------------------

  /// True while `name` is held by >= 2 directories.
  [[nodiscard]] bool is_shared(const std::string& name) const;

  /// Tracked holder count of `name`; 0 for untracked (sole-owned) names.
  [[nodiscard]] std::uint32_t refcount(const std::string& name) const;

  [[nodiscard]] std::map<std::string, Entry> snapshot() const;
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::filesystem::path& root() const noexcept {
    return root_;
  }

  // --- recovery --------------------------------------------------------------

  /// Recount every `.run` name across `volume_dirs` (the committed volume
  /// directories), replace the table with names whose *inode* is held by
  /// >= 2 directories, and persist. Sharing is verified by stat identity,
  /// not name equality alone: a legacy byte-copied clone (cow_clone=false)
  /// duplicates names without sharing storage and must not be counted.
  /// Returns the number of tracked entries. This is the crash recovery
  /// path: whatever a half-finished clone or an unpersisted release left
  /// in FILEREFS, the directories are the truth.
  std::size_t rebuild(const std::vector<std::filesystem::path>& volume_dirs);

 private:
  void load();
  void persist_locked();

  std::filesystem::path root_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::uint64_t persists_ = 0;
  bool dirty_ = false;
};

}  // namespace backlog::core
