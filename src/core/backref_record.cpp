#include "core/backref_record.hpp"

#include <sstream>

namespace backlog::core {

std::string to_string(const BackrefKey& k) {
  std::ostringstream os;
  os << "{block=" << k.block << " len=" << k.length << " inode=" << k.inode
     << " off=" << k.offset << " line=" << k.line << "}";
  return os.str();
}

std::string to_string(const CombinedRecord& r) {
  std::ostringstream os;
  os << to_string(r.key) << "[" << r.from << ",";
  if (r.to == kInfinity) {
    os << "inf";
  } else {
    os << r.to;
  }
  os << ")";
  return os.str();
}

}  // namespace backlog::core
