// Back-reference record model (§4.1–4.2).
//
// A back reference maps a physical extent to a logical owner:
//   (block, inode, offset, length, line)  — "who references these blocks"
// plus lifetime epochs in global consistency-point numbers:
//   From table:     from              (reference became live at CP `from`)
//   To table:       to                (reference died at CP `to`, exclusive)
//   Combined table: [from, to)        (outer join of the two, §4.2.1)
// `to = kInfinity` marks an incomplete (live) record.
//
// On-disk encoding is fixed-size with all fields big-endian, so memcmp over
// the record bytes sorts by (block, inode, offset, length, line, epoch) —
// exactly the order the LSM machinery (run files, merges, pairing) needs.
// The paper's btrfs port uses 40-byte From/To and 48-byte Combined tuples
// with some fields narrowed; we keep every field 64-bit (48/56 bytes) and
// note the delta in EXPERIMENTS.md space-overhead discussion.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>

#include "util/serde.hpp"

namespace backlog::core {

/// Global consistency-point number ("version" of a snapshot within a line).
using Epoch = std::uint64_t;
/// Snapshot line id (§2, Fig. 3): a clone starts a new line.
using LineId = std::uint64_t;
/// Physical block number.
using BlockNo = std::uint64_t;
/// Inode number.
using InodeNo = std::uint64_t;

inline constexpr Epoch kInfinity = UINT64_MAX;

/// The owner-identity part shared by all three tables (§4.1 plus the length
/// field added for extent-based allocation, §6.1).
struct BackrefKey {
  BlockNo block = 0;    ///< first physical block of the extent
  InodeNo inode = 0;    ///< owning inode
  std::uint64_t offset = 0;  ///< logical offset within the inode, in blocks
  std::uint64_t length = 1;  ///< extent length in blocks
  LineId line = 0;      ///< snapshot line containing the inode

  friend auto operator<=>(const BackrefKey&, const BackrefKey&) = default;
};

struct FromRecord {
  BackrefKey key;
  Epoch from = 0;
  friend auto operator<=>(const FromRecord&, const FromRecord&) = default;
};

struct ToRecord {
  BackrefKey key;
  Epoch to = 0;
  friend auto operator<=>(const ToRecord&, const ToRecord&) = default;
};

struct CombinedRecord {
  BackrefKey key;
  Epoch from = 0;
  Epoch to = kInfinity;

  [[nodiscard]] bool complete() const noexcept { return to != kInfinity; }
  /// Structural-inheritance override marker (§4.2.2): a record that begins
  /// at epoch 0 terminates inheritance from the parent snapshot.
  [[nodiscard]] bool is_override() const noexcept { return from == 0; }

  friend auto operator<=>(const CombinedRecord&, const CombinedRecord&) = default;
};

/// One update-path operation (§5 callbacks in value form): the element type
/// of the batch verbs — BacklogDb::apply_many() in core and
/// apply()/apply_batch() at the service layer (service::UpdateOp is an alias).
struct Update {
  enum class Kind : std::uint8_t { kAdd, kRemove };
  Kind kind = Kind::kAdd;
  BackrefKey key;
};

inline constexpr std::size_t kKeySize = 40;
inline constexpr std::size_t kFromRecordSize = 48;
inline constexpr std::size_t kToRecordSize = 48;
inline constexpr std::size_t kCombinedRecordSize = 56;

inline void encode_key(const BackrefKey& k, std::uint8_t* dst) noexcept {
  util::put_be64(dst, k.block);
  util::put_be64(dst + 8, k.inode);
  util::put_be64(dst + 16, k.offset);
  util::put_be64(dst + 24, k.length);
  util::put_be64(dst + 32, k.line);
}

inline BackrefKey decode_key(const std::uint8_t* src) noexcept {
  BackrefKey k;
  k.block = util::get_be64(src);
  k.inode = util::get_be64(src + 8);
  k.offset = util::get_be64(src + 16);
  k.length = util::get_be64(src + 24);
  k.line = util::get_be64(src + 32);
  return k;
}

inline void encode_from(const FromRecord& r, std::uint8_t* dst) noexcept {
  encode_key(r.key, dst);
  util::put_be64(dst + kKeySize, r.from);
}
inline FromRecord decode_from(const std::uint8_t* src) noexcept {
  return {decode_key(src), util::get_be64(src + kKeySize)};
}

inline void encode_to(const ToRecord& r, std::uint8_t* dst) noexcept {
  encode_key(r.key, dst);
  util::put_be64(dst + kKeySize, r.to);
}
inline ToRecord decode_to(const std::uint8_t* src) noexcept {
  return {decode_key(src), util::get_be64(src + kKeySize)};
}

inline void encode_combined(const CombinedRecord& r, std::uint8_t* dst) noexcept {
  encode_key(r.key, dst);
  util::put_be64(dst + kKeySize, r.from);
  util::put_be64(dst + kKeySize + 8, r.to);
}
inline CombinedRecord decode_combined(const std::uint8_t* src) noexcept {
  return {decode_key(src), util::get_be64(src + kKeySize),
          util::get_be64(src + kKeySize + 8)};
}

/// Encode just a block number as a seek prefix (records sort block-first).
inline void encode_block_prefix(BlockNo block, std::uint8_t* dst8) noexcept {
  util::put_be64(dst8, block);
}

/// Human-readable form for logs, test failures and the examples.
std::string to_string(const BackrefKey& k);
std::string to_string(const CombinedRecord& r);

}  // namespace backlog::core
