// Outer join of the From and To tables (§4.2.1).
//
// Both inputs are sorted streams of encoded records sharing the 40-byte
// (block, inode, offset, length, line) prefix. Within each group:
//
//   * a From entry pairs with the *smallest* To entry with to > from;
//   * a From entry with no matching To is incomplete (to = ∞, live record);
//   * a To entry with no matching From joins an implicit from = 0 — this is
//     a structural-inheritance override record (§4.2.2).
//
// OuterJoinStream emits the resulting Combined records as a sorted
// RecordStream, so compaction can pipe it straight into a RunWriter merged
// with the previous Combined RS, and queries can collect from it directly.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backref_record.hpp"
#include "lsm/run_file.hpp"

namespace backlog::core {

class OuterJoinStream final : public lsm::RecordStream {
 public:
  /// `from_in` yields kFromRecordSize records; `to_in` yields kToRecordSize
  /// records; both in memcmp order. Either may be null/empty.
  OuterJoinStream(std::unique_ptr<lsm::RecordStream> from_in,
                  std::unique_ptr<lsm::RecordStream> to_in);

  [[nodiscard]] bool valid() const override;
  [[nodiscard]] std::span<const std::uint8_t> record() const override;
  void next() override;

 private:
  void refill();

  std::unique_ptr<lsm::RecordStream> from_;
  std::unique_ptr<lsm::RecordStream> to_;
  std::vector<std::uint8_t> group_out_;  // encoded Combined records
  std::size_t pos_ = 0;                  // byte offset into group_out_
};

/// Pure-function form of the per-group pairing, used by OuterJoinStream and
/// unit-tested directly: `froms`/`tos` are the epochs of one key group,
/// sorted ascending. Returns [from, to) intervals sorted by (from, to).
std::vector<CombinedRecord> join_group(const BackrefKey& key,
                                       const std::vector<Epoch>& froms,
                                       const std::vector<Epoch>& tos);

}  // namespace backlog::core
