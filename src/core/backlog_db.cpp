#include "core/backlog_db.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstring>
#include <deque>
#include <set>
#include <stdexcept>

#include "core/file_manifest.hpp"
#include "core/join.hpp"
#include "util/clock.hpp"
#include "util/crc32c.hpp"
#include "util/serde.hpp"

namespace backlog::core {

using util::now_micros;

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kManifestTmpName[] = "MANIFEST.tmp";
constexpr char kDvFromName[] = "dv_from.bin";
constexpr char kDvToName[] = "dv_to.bin";
constexpr char kDvCombinedName[] = "dv_combined.bin";
constexpr std::uint64_t kManifestMagic = 0x424b4c4f474d4651ULL;
constexpr std::uint64_t kManifestEditMagic = 0x424b4c4f47454454ULL;

std::size_t record_size_of(std::uint8_t table) {
  switch (table) {
    case 0: return kFromRecordSize;
    case 1: return kToRecordSize;
    case 2: return kCombinedRecordSize;
    default: throw std::logic_error("bad table id");
  }
}

/// Limits a run stream to records with block < block_hi and keeps the run
/// file handle alive for the stream's lifetime.
class BoundedStream final : public lsm::RecordStream {
 public:
  BoundedStream(std::shared_ptr<lsm::RunFile> run,
                std::unique_ptr<lsm::RecordStream> in, BlockNo block_hi)
      : run_(std::move(run)), in_(std::move(in)), block_hi_(block_hi) {}

  [[nodiscard]] bool valid() const override {
    return in_->valid() && util::get_be64(in_->record().data()) < block_hi_;
  }
  [[nodiscard]] std::span<const std::uint8_t> record() const override {
    return in_->record();
  }
  void next() override { in_->next(); }

 private:
  std::shared_ptr<lsm::RunFile> run_;
  std::unique_ptr<lsm::RecordStream> in_;
  BlockNo block_hi_;
};

}  // namespace

BacklogDb::BacklogDb(storage::Env& env, BacklogOptions options)
    : env_(env),
      options_(options),
      ws_(options.pruning),
      private_cache_(options.shared_cache != nullptr
                         ? nullptr
                         : std::make_unique<storage::BlockCache>(
                               static_cast<std::uint64_t>(options.cache_pages) *
                                   storage::kPageSize,
                               /*shards=*/1)),
      cache_(options.shared_cache != nullptr ? *options.shared_cache
                                             : *private_cache_),
      result_cache_(options.result_cache_entries) {
  if (options_.partition_blocks == 0)
    throw std::invalid_argument("BacklogOptions: partition_blocks must be > 0");
  if (options_.max_extent_blocks == 0)
    throw std::invalid_argument(
        "BacklogOptions: max_extent_blocks must be > 0 (every reference "
        "covers at least one block)");
  if (options_.expected_ops_per_cp == 0)
    throw std::invalid_argument(
        "BacklogOptions: expected_ops_per_cp must be > 0 (it sizes the "
        "per-run Bloom filters)");
  if (options_.file_tag.size() > 32)
    throw std::invalid_argument(
        "BacklogOptions: file_tag must be <= 32 chars — run names embed it "
        "verbatim, and a truncated tag could collide across volumes");
  for (const char c : options_.file_tag) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '-' || c == '_' || c == '.';
    if (!ok)
      throw std::invalid_argument(
          "BacklogOptions: file_tag must be [A-Za-z0-9._-] (it names files)");
  }
  // Note: cache_pages == 0 (with no shared cache) is a documented value
  // (disable the page cache, used by the cold-cache experiments); the
  // service layer doesn't hit this path — hosted volumes read through the
  // injected service-wide cache.
  //
  // Attach whichever cache this db reads through to the Env so deleting a
  // run's last link invalidates its cached pages before the inode can be
  // recycled. Never override a cache the service already attached.
  if (env_.block_cache() == nullptr) env_.set_block_cache(&cache_);
  if (env_.file_exists(kManifestName)) {
    load_manifest();
    remove_orphan_runs();
  }
  // Establish the manifest base so per-CP writes can be O(1) edit appends.
  save_manifest();
}

BacklogDb::~BacklogDb() {
  // The private cache dies with the db; the Env may outlive it (tests
  // reopen a db over the same Env), so drop the dangling attachment. A
  // service-injected shared cache outlives both — leave it.
  if (private_cache_ != nullptr && env_.block_cache() == private_cache_.get())
    env_.set_block_cache(nullptr);
}

void BacklogDb::add_reference(const BackrefKey& key) {
  if (key.length == 0)
    throw std::invalid_argument("add_reference: zero-length extent");
  if (key.length > options_.max_extent_blocks)
    throw std::invalid_argument("add_reference: extent exceeds max_extent_blocks");
  max_extent_seen_ = std::max(max_extent_seen_, key.length);
  ws_.add_reference(key, registry_.current_cp());
  ++ops_since_cp_;
  ++mutations_;
}

void BacklogDb::apply_many(std::span<const Update> ops) {
  // Validate the whole batch before touching the write store: a bad op
  // applies nothing (the batch is one unit; see the header contract).
  std::uint64_t max_len = 0;
  for (const Update& op : ops) {
    if (op.key.length == 0)
      throw std::invalid_argument("apply_many: zero-length extent");
    if (op.key.length > options_.max_extent_blocks)
      throw std::invalid_argument(
          "apply_many: extent exceeds max_extent_blocks");
    max_len = std::max(max_len, op.key.length);
  }
  max_extent_seen_ = std::max(max_extent_seen_, max_len);
  ws_.apply_many(ops, registry_.current_cp());
  ops_since_cp_ += ops.size();
  ++mutations_;
}

void BacklogDb::remove_reference(const BackrefKey& key) {
  if (key.length == 0)
    throw std::invalid_argument("remove_reference: zero-length extent");
  if (key.length > options_.max_extent_blocks)
    throw std::invalid_argument(
        "remove_reference: extent exceeds max_extent_blocks");
  max_extent_seen_ = std::max(max_extent_seen_, key.length);
  ws_.remove_reference(key, registry_.current_cp());
  ++ops_since_cp_;
  ++mutations_;
}

std::string BacklogDb::new_run_name(Table table, std::uint64_t partition) {
  const char prefix = table == Table::kFrom     ? 'f'
                      : table == Table::kTo     ? 't'
                                                : 'c';
  char buf[64];
  if (options_.file_tag.empty()) {
    std::snprintf(buf, sizeof buf, "%c_%06llu_%08llu.run", prefix,
                  static_cast<unsigned long long>(partition),
                  static_cast<unsigned long long>(next_run_id_++));
  } else {
    // The tag makes the name unique across every volume sharing a
    // FileManifest: a cloned volume inherits its source's runs (and the
    // source's next_run_id_), so without the tag both could mint the same
    // name and a later flush would truncate a file the other still reads.
    std::snprintf(buf, sizeof buf, "%c_%.32s_%06llu_%08llu.run", prefix,
                  options_.file_tag.c_str(),
                  static_cast<unsigned long long>(partition),
                  static_cast<unsigned long long>(next_run_id_++));
  }
  return buf;
}

std::uint64_t BacklogDb::flush_table(const std::vector<std::uint8_t>& sorted,
                                     std::size_t record_size, Table table) {
  if (sorted.empty()) return 0;
  const std::size_t n = sorted.size() / record_size;
  std::uint64_t records = 0;
  std::size_t i = 0;
  while (i < n) {
    // Records are globally sorted block-first, so each partition's records
    // form one contiguous span (§5.3: one WS, split into partitions at CP).
    const BlockNo block = util::get_be64(sorted.data() + i * record_size);
    const std::uint64_t partition = partition_of(block);
    const BlockNo part_end = (partition + 1) * options_.partition_blocks;
    const std::string name = new_run_name(table, partition);
    lsm::RunWriter writer(env_, name, record_size,
                          std::min<std::size_t>(n, options_.expected_ops_per_cp),
                          options_.bloom_max_bytes);
    while (i < n) {
      const std::uint8_t* rec = sorted.data() + i * record_size;
      const BlockNo b = util::get_be64(rec);
      if (b >= part_end) break;
      writer.add({rec, record_size}, b);
      ++i;
      ++records;
    }
    writer.finish();

    auto meta = std::make_shared<RunMeta>();
    meta->name = name;
    meta->table = table;
    meta->partition = partition;
    meta->record_count = writer.record_count();
    meta->size_bytes = writer.file_size();
    meta->bloom = writer.bloom();
    meta->min_rec = writer.first_record();
    meta->max_rec = writer.last_record();
    track_run_added(*meta);
    Partition& part = partitions_[partition];
    (table == Table::kFrom   ? part.from_runs
     : table == Table::kTo   ? part.to_runs
                             : part.combined_runs)
        .push_back(meta);
    pending_manifest_runs_.push_back(std::move(meta));
  }
  return records;
}

CpFlushStats BacklogDb::consistency_point() {
  const std::uint64_t t0 = now_micros();
  const storage::IoStats before = env_.stats();

  CpFlushStats s;
  s.cp = registry_.current_cp();
  s.block_ops = ops_since_cp_;
  s.records_flushed = ws_.from_size() + ws_.to_size();

  flush_table(ws_.encode_from_sorted(), kFromRecordSize, Table::kFrom);
  flush_table(ws_.encode_to_sorted(), kToRecordSize, Table::kTo);
  ws_.clear();
  if (options_.checkpoint) options_.checkpoint("cp_flushed");

  // The CP is committed by the manifest write (the "root node written last"
  // rule of write-anywhere systems, §2) — so the registry advances first and
  // the manifest records the post-CP state.
  registry_.advance_cp();
  persist_registry();
  if (options_.checkpoint) options_.checkpoint("registry_persisted");
  ops_since_cp_ = 0;
  ++mutations_;

  const storage::IoStats delta = env_.stats() - before;
  s.pages_written = delta.page_writes;
  s.wall_micros = now_micros() - t0;
  return s;
}

void BacklogDb::persist_registry() {
  // Same write order as a CP commit: deletion vectors first, then the
  // manifest edit that references any runs created since the last write —
  // a crash in between leaves the previous edit authoritative.
  if (dv_dirty_) {
    dv_from_.save(env_, kDvFromName);
    dv_to_.save(env_, kDvToName);
    dv_combined_.save(env_, kDvCombinedName);
    dv_dirty_ = false;
  }
  append_manifest_edit();
}

std::vector<std::string> BacklogDb::live_files() const {
  std::vector<std::string> out;
  out.push_back(kManifestName);
  for (const char* dv : {kDvFromName, kDvToName, kDvCombinedName}) {
    if (env_.file_exists(dv)) out.push_back(dv);
  }
  for (const auto& [pid, part] : partitions_) {
    for (const auto& m : part.from_runs) out.push_back(m->name);
    for (const auto& m : part.to_runs) out.push_back(m->name);
    for (const auto& m : part.combined_runs) out.push_back(m->name);
  }
  return out;
}

std::shared_ptr<BacklogDb::RunMeta> BacklogDb::load_run_meta(
    const std::string& name, Table table, std::uint64_t partition) {
  lsm::RunFile rf(env_, name, cache_);
  auto meta = std::make_shared<RunMeta>();
  meta->name = name;
  meta->table = table;
  meta->partition = partition;
  meta->record_count = rf.record_count();
  meta->size_bytes = rf.size_bytes();
  meta->bloom = rf.bloom();
  if (auto mn = rf.min_record()) meta->min_rec = *mn;
  if (auto mx = rf.max_record()) meta->max_rec = *mx;
  return meta;
}

std::shared_ptr<lsm::RunFile> BacklogDb::open_run(const RunMeta& meta) {
  if (auto it = open_runs_.find(meta.name); it != open_runs_.end()) {
    // Refresh LRU position.
    open_lru_.remove(meta.name);
    open_lru_.push_front(meta.name);
    return it->second;
  }
  auto rf = std::make_shared<lsm::RunFile>(env_, meta.name, cache_);
  open_runs_.emplace(meta.name, rf);
  open_lru_.push_front(meta.name);
  while (open_runs_.size() > options_.max_open_runs) {
    const std::string victim = open_lru_.back();
    open_lru_.pop_back();
    open_runs_.erase(victim);
  }
  return rf;
}

void BacklogDb::drop_run(const RunMeta& meta) {
  track_run_removed(meta);
  if (auto it = open_runs_.find(meta.name); it != open_runs_.end()) {
    open_lru_.remove(meta.name);
    open_runs_.erase(it);
  }
  // Deleting this directory's entry is always safe: a run shared with a
  // cloned volume is a hard link, so sharers keep the inode alive. The
  // manifest release keeps the logical refcount in step — at refcount zero
  // the unlink above *was* the physical removal.
  env_.delete_file(meta.name);
  if (options_.shared_files != nullptr) options_.shared_files->release(meta.name);
}

void BacklogDb::track_run_added(const RunMeta& meta) noexcept {
  switch (meta.table) {
    case Table::kFrom: ++quick_.from_runs; break;
    case Table::kTo: ++quick_.to_runs; break;
    case Table::kCombined: ++quick_.combined_runs; break;
  }
  quick_.db_bytes += meta.size_bytes;
  quick_.run_records += meta.record_count;
}

void BacklogDb::track_run_removed(const RunMeta& meta) noexcept {
  switch (meta.table) {
    case Table::kFrom: --quick_.from_runs; break;
    case Table::kTo: --quick_.to_runs; break;
    case Table::kCombined: --quick_.combined_runs; break;
  }
  quick_.db_bytes -= meta.size_bytes;
  quick_.run_records -= meta.record_count;
}

bool BacklogDb::run_may_intersect(const RunMeta& meta, BlockNo block_lo,
                                  BlockNo block_hi) const {
  if (meta.record_count == 0) return false;
  const BlockNo min_block = util::get_be64(meta.min_rec.data());
  const BlockNo max_block = util::get_be64(meta.max_rec.data());
  if (max_block < block_lo || min_block >= block_hi) return false;
  if (options_.use_bloom && block_hi - block_lo <= options_.bloom_probe_limit) {
    for (BlockNo b = block_lo; b < block_hi; ++b) {
      if (meta.bloom.may_contain(b)) return true;
    }
    return false;
  }
  return true;
}

std::unique_ptr<lsm::RecordStream> BacklogDb::table_stream(
    const Partition& part, Table table, BlockNo block_lo, BlockNo block_hi,
    bool include_ws) {
  const auto& runs = table == Table::kFrom   ? part.from_runs
                     : table == Table::kTo   ? part.to_runs
                                             : part.combined_runs;
  const std::size_t record_size = record_size_of(static_cast<std::uint8_t>(table));

  std::vector<std::unique_ptr<lsm::RecordStream>> inputs;
  std::uint8_t prefix[8];
  util::put_be64(prefix, block_lo);
  for (const auto& meta : runs) {
    if (!run_may_intersect(*meta, block_lo, block_hi)) continue;
    std::shared_ptr<lsm::RunFile> rf = open_run(*meta);
    auto stream = rf->seek({prefix, 8});
    inputs.push_back(std::make_unique<BoundedStream>(std::move(rf),
                                                     std::move(stream), block_hi));
  }
  if (include_ws) {
    if (table == Table::kFrom) {
      auto buf = ws_.encode_from_range(block_lo, block_hi);
      if (!buf.empty())
        inputs.push_back(
            std::make_unique<lsm::VectorStream>(std::move(buf), record_size));
    } else if (table == Table::kTo) {
      auto buf = ws_.encode_to_range(block_lo, block_hi);
      if (!buf.empty())
        inputs.push_back(
            std::make_unique<lsm::VectorStream>(std::move(buf), record_size));
    }
  }
  auto merged = std::make_unique<lsm::MergeStream>(std::move(inputs), record_size);
  const lsm::DeletionVector& vec = dv(table);
  if (vec.empty()) return merged;
  return std::make_unique<lsm::FilteredStream>(std::move(merged), vec);
}

std::vector<CombinedRecord> BacklogDb::collect_raw(BlockNo block_lo,
                                                   BlockNo block_hi) {
  static const Partition kEmptyPartition;
  std::vector<CombinedRecord> out;
  // Records sort by *starting* block; an extent starting before block_lo can
  // still cover it, so begin scanning max_extent_seen_-1 blocks early and
  // filter to records whose range intersects [block_lo, block_hi).
  const std::uint64_t overscan = max_extent_seen_ - 1;
  const BlockNo scan_lo = block_lo > overscan ? block_lo - overscan : 0;
  const std::uint64_t first_part = partition_of(scan_lo);
  const std::uint64_t last_part = partition_of(block_hi - 1);
  for (std::uint64_t pid = first_part;; ++pid) {
    auto it = partitions_.find(pid);
    const Partition& part =
        it != partitions_.end() ? it->second : kEmptyPartition;

    auto join = std::make_unique<OuterJoinStream>(
        table_stream(part, Table::kFrom, scan_lo, block_hi, true),
        table_stream(part, Table::kTo, scan_lo, block_hi, true));
    std::vector<std::unique_ptr<lsm::RecordStream>> inputs;
    inputs.push_back(std::move(join));
    inputs.push_back(table_stream(part, Table::kCombined, scan_lo, block_hi,
                                  false));
    lsm::MergeStream merged(std::move(inputs), kCombinedRecordSize);
    while (merged.valid()) {
      CombinedRecord rec = decode_combined(merged.record().data());
      if (rec.key.block + rec.key.length > block_lo) out.push_back(rec);
      merged.next();
    }
    if (pid == last_part) break;
  }
  return out;
}

void BacklogDb::expand_inheritance(std::vector<CombinedRecord>& records) const {
  // Records whose from == 0 override inheritance for their (key, line).
  std::set<BackrefKey> overrides;
  std::set<CombinedRecord> seen(records.begin(), records.end());
  for (const CombinedRecord& r : records) {
    if (r.is_override()) overrides.insert(r.key);
  }
  std::deque<CombinedRecord> work(records.begin(), records.end());
  while (!work.empty()) {
    const CombinedRecord r = work.front();
    work.pop_front();
    for (const CloneEdge& edge : registry_.clones_of(r.key.line)) {
      // The clone branched from snapshot (line, v); it inherits this record
      // iff the record was visible at v and no override exists in the clone.
      if (!(r.from <= edge.branch_version && edge.branch_version < r.to))
        continue;
      BackrefKey key2 = r.key;
      key2.line = edge.child;
      if (overrides.contains(key2)) continue;
      const CombinedRecord synth{key2, 0, kInfinity};
      if (seen.insert(synth).second) {
        overrides.insert(key2);
        work.push_back(synth);
      }
    }
  }
  records.assign(seen.begin(), seen.end());
}

std::vector<BackrefEntry> BacklogDb::query(BlockNo first, std::uint64_t count,
                                           const QueryOptions& opts) {
  if (count == 0) return {};
  // Result-cache fast path: the tag pairs this db's mutation counter with
  // the registry version, so any update/CP/maintenance/registry change
  // since the entry was stored makes the tags differ and the entry dies on
  // comparison. Queries read the write store too (table_stream with
  // include_ws), which is why plain CP-epoch tagging would be wrong — every
  // buffered update must invalidate, not only flushes.
  const ResultCache<std::vector<BackrefEntry>>::Key key{
      first, count, opts.expand, opts.mask};
  const ResultCache<std::vector<BackrefEntry>>::Tag tag{mutations_,
                                                        registry_.version()};
  if (const auto* cached = result_cache_.get(key, tag)) return *cached;

  std::vector<CombinedRecord> raw = collect_raw(first, first + count);
  if (opts.expand) expand_inheritance(raw);
  std::vector<BackrefEntry> out;
  out.reserve(raw.size());
  for (const CombinedRecord& r : raw) {
    BackrefEntry e;
    e.rec = r;
    e.versions = registry_.valid_versions_in(r.key.line, r.from, r.to);
    if (opts.mask && e.versions.empty()) continue;
    out.push_back(std::move(e));
  }
  result_cache_.put(key, tag, out);
  return out;
}

std::vector<CombinedRecord> BacklogDb::query_raw(BlockNo first,
                                                 std::uint64_t count) {
  if (count == 0) return {};
  return collect_raw(first, first + count);
}

std::vector<CombinedRecord> BacklogDb::scan_all() {
  std::vector<CombinedRecord> out;
  // WS entries may exist for partitions with no runs yet; collect_raw
  // handles that, so scan the full block space partition by partition.
  std::set<std::uint64_t> pids;
  for (const auto& [pid, part] : partitions_) pids.insert(pid);
  for (const FromRecord& r : ws_.from_entries()) pids.insert(partition_of(r.key.block));
  for (const ToRecord& r : ws_.to_entries()) pids.insert(partition_of(r.key.block));
  for (const std::uint64_t pid : pids) {
    const BlockNo lo = pid * options_.partition_blocks;
    const BlockNo hi = lo + options_.partition_blocks;
    std::vector<CombinedRecord> chunk = collect_raw(lo, hi);
    out.insert(out.end(), chunk.begin(), chunk.end());
  }
  return out;
}

void BacklogDb::clear_cache() {
  cache_.clear();
  result_cache_.clear();
}

void BacklogDb::merge_run_batches(std::vector<std::shared_ptr<RunMeta>>& runs,
                                  Table table, std::uint64_t partition) {
  const std::size_t batch = std::max<std::size_t>(options_.max_open_runs, 2);
  const std::size_t record_size = record_size_of(static_cast<std::uint8_t>(table));
  // Each pass merges disjoint chunks of `batch` runs into one run apiece
  // (level k -> level k+1); a handful of passes suffices for any backlog,
  // and each record is rewritten only O(log_batch(runs)) times.
  while (runs.size() > batch) {
    std::vector<std::shared_ptr<RunMeta>> next_level;
    for (std::size_t chunk = 0; chunk < runs.size(); chunk += batch) {
      const std::size_t chunk_end = std::min(runs.size(), chunk + batch);
      if (chunk_end - chunk == 1) {
        next_level.push_back(runs[chunk]);
        continue;
      }
      std::vector<std::unique_ptr<lsm::RecordStream>> inputs;
      std::uint64_t total_records = 0;
      for (std::size_t i = chunk; i < chunk_end; ++i) {
        std::shared_ptr<lsm::RunFile> rf = open_run(*runs[i]);
        inputs.push_back(
            std::make_unique<BoundedStream>(rf, rf->scan(), UINT64_MAX));
        total_records += runs[i]->record_count;
      }
      lsm::MergeStream merged(std::move(inputs), record_size);
      const std::string name = new_run_name(table, partition);
      lsm::RunWriter writer(env_, name, record_size,
                            std::max<std::size_t>(total_records, 1),
                            table == Table::kCombined
                                ? options_.combined_bloom_max_bytes
                                : options_.bloom_max_bytes);
      while (merged.valid()) {
        writer.add(merged.record(), util::get_be64(merged.record().data()));
        merged.next();
      }
      writer.finish();
      for (std::size_t i = chunk; i < chunk_end; ++i) drop_run(*runs[i]);

      auto meta = std::make_shared<RunMeta>();
      meta->name = name;
      meta->table = table;
      meta->partition = partition;
      meta->record_count = writer.record_count();
      meta->size_bytes = writer.file_size();
      meta->bloom = writer.bloom();
      meta->min_rec = writer.first_record();
      meta->max_rec = writer.last_record();
      track_run_added(*meta);
      next_level.push_back(std::move(meta));
    }
    runs = std::move(next_level);
  }
}

MaintenanceStats BacklogDb::maintain() {
  if (!ws_.empty())
    throw std::logic_error(
        "BacklogDb::maintain: write store not empty; call consistency_point() "
        "first");
  const std::uint64_t t0 = now_micros();
  const storage::IoStats before = env_.stats();
  MaintenanceStats s;

  // Zombies whose descendants are gone can finally be purged (§4.2.2).
  registry_.collect_zombies();

  for (auto& [pid, part] : partitions_) maintain_one(pid, part, s);

  if (dv_dirty_) {
    dv_from_.save(env_, kDvFromName);
    dv_to_.save(env_, kDvToName);
    dv_combined_.save(env_, kDvCombinedName);
    dv_dirty_ = false;
  }
  save_manifest();
  // One FILEREFS flush per compaction pass, not per retired shared run.
  if (options_.shared_files != nullptr) options_.shared_files->persist_if_dirty();

  const storage::IoStats delta = env_.stats() - before;
  s.pages_read = delta.page_reads;
  s.pages_written = delta.page_writes;
  s.wall_micros = now_micros() - t0;
  ++mutations_;  // purging changes unmasked (query_raw-visible) results
  return s;
}

MaintenanceStats BacklogDb::maintain_partition(BlockNo block) {
  if (!ws_.empty())
    throw std::logic_error(
        "BacklogDb::maintain_partition: write store not empty; call "
        "consistency_point() first");
  const std::uint64_t t0 = now_micros();
  const storage::IoStats before = env_.stats();
  MaintenanceStats s;
  registry_.collect_zombies();
  const std::uint64_t pid = partition_of(block);
  if (auto it = partitions_.find(pid); it != partitions_.end()) {
    maintain_one(pid, it->second, s);
  }
  if (dv_dirty_) {
    dv_from_.save(env_, kDvFromName);
    dv_to_.save(env_, kDvToName);
    dv_combined_.save(env_, kDvCombinedName);
    dv_dirty_ = false;
  }
  save_manifest();
  if (options_.shared_files != nullptr) options_.shared_files->persist_if_dirty();
  const storage::IoStats delta = env_.stats() - before;
  s.pages_read = delta.page_reads;
  s.pages_written = delta.page_writes;
  s.wall_micros = now_micros() - t0;
  ++mutations_;
  return s;
}

void BacklogDb::maintain_one(std::uint64_t pid, Partition& part,
                             MaintenanceStats& s) {
  const BlockNo block_lo = pid * options_.partition_blocks;
  const BlockNo block_hi = block_lo + options_.partition_blocks;

  {
    for (const auto& m : part.from_runs) {
      s.input_records += m->record_count;
      s.bytes_before += m->size_bytes;
    }
    for (const auto& m : part.to_runs) {
      s.input_records += m->record_count;
      s.bytes_before += m->size_bytes;
    }
    for (const auto& m : part.combined_runs) {
      s.input_records += m->record_count;
      s.bytes_before += m->size_bytes;
    }
    if (part.from_runs.empty() && part.to_runs.empty() &&
        part.combined_runs.empty()) {
      return;
    }

    // Pre-merge oversized Level-0 populations into intermediate runs so the
    // final pass never holds more than max_open_runs files open (the
    // Stepped-Merge levels of §5.1).
    merge_run_batches(part.from_runs, Table::kFrom, pid);
    merge_run_batches(part.to_runs, Table::kTo, pid);
    merge_run_batches(part.combined_runs, Table::kCombined, pid);

    // Join all From runs against all To runs, then merge with the previous
    // Combined RS (Fig. 4's query plan).
    auto join = std::make_unique<OuterJoinStream>(
        table_stream(part, Table::kFrom, block_lo, block_hi, false),
        table_stream(part, Table::kTo, block_lo, block_hi, false));
    std::vector<std::unique_ptr<lsm::RecordStream>> inputs;
    inputs.push_back(std::move(join));
    inputs.push_back(
        table_stream(part, Table::kCombined, block_lo, block_hi, false));
    lsm::MergeStream merged(std::move(inputs), kCombinedRecordSize);

    const std::string combined_name = new_run_name(Table::kCombined, pid);
    const std::string from_name = new_run_name(Table::kFrom, pid);
    std::size_t total_guess = 0;
    for (const auto& m : part.combined_runs) total_guess += m->record_count;
    for (const auto& m : part.from_runs) total_guess += m->record_count;
    lsm::RunWriter combined_writer(env_, combined_name, kCombinedRecordSize,
                                   std::max<std::size_t>(total_guess, 1),
                                   options_.combined_bloom_max_bytes);
    lsm::RunWriter from_writer(env_, from_name, kFromRecordSize,
                               std::max<std::size_t>(total_guess, 1),
                               options_.bloom_max_bytes);

    while (merged.valid()) {
      const CombinedRecord rec = decode_combined(merged.record().data());
      // Purge rule (§5.2): a record is dead when no retained version, zombie
      // or clone branch point falls inside its interval. Structural-
      // inheritance override records (from == 0) are the exception — they
      // gate expansion for their line, so they must survive until the line
      // itself is forgotten, even if no retained version observes them.
      const bool alive =
          rec.is_override()
              ? registry_.line_exists(rec.key.line)
              : registry_.interval_protected(rec.key.line, rec.from, rec.to);
      if (!alive) {
        ++s.purged;
      } else if (rec.to == kInfinity) {
        // Incomplete records live in the new From RS (§5.2).
        std::uint8_t buf[kFromRecordSize];
        encode_from(FromRecord{rec.key, rec.from}, buf);
        from_writer.add({buf, kFromRecordSize}, rec.key.block);
        ++s.output_incomplete;
      } else {
        std::uint8_t buf[kCombinedRecordSize];
        encode_combined(rec, buf);
        combined_writer.add({buf, kCombinedRecordSize}, rec.key.block);
        ++s.output_complete;
      }
      merged.next();
    }
    combined_writer.finish();
    from_writer.finish();

    // Retire the old runs and install the new generation.
    for (const auto& m : part.from_runs) drop_run(*m);
    for (const auto& m : part.to_runs) drop_run(*m);
    for (const auto& m : part.combined_runs) drop_run(*m);
    part.from_runs.clear();
    part.to_runs.clear();
    part.combined_runs.clear();

    auto install = [&](const std::string& name, Table table,
                       lsm::RunWriter& writer,
                       std::vector<std::shared_ptr<RunMeta>>& dest) {
      if (writer.record_count() == 0) {
        env_.delete_file(name);
        return;
      }
      auto meta = std::make_shared<RunMeta>();
      meta->name = name;
      meta->table = table;
      meta->partition = pid;
      meta->record_count = writer.record_count();
      meta->size_bytes = writer.file_size();
      meta->bloom = writer.bloom();
      meta->min_rec = writer.first_record();
      meta->max_rec = writer.last_record();
      s.bytes_after += meta->size_bytes;
      track_run_added(*meta);
      dest.push_back(std::move(meta));
    };
    install(combined_name, Table::kCombined, combined_writer, part.combined_runs);
    install(from_name, Table::kFrom, from_writer, part.from_runs);

    // The deletion-vector entries for this block range were consumed by the
    // filtered input streams; the new runs no longer contain them.
    if (dv_from_.erase_block_range(block_lo, block_hi) +
            dv_to_.erase_block_range(block_lo, block_hi) +
            dv_combined_.erase_block_range(block_lo, block_hi) >
        0) {
      dv_dirty_ = true;
    }
  }
}

std::uint64_t BacklogDb::relocate(BlockNo old_block, std::uint64_t length,
                                  BlockNo new_block) {
  if (length == 0) return 0;
  const BlockNo block_hi = old_block + length;
  std::uint64_t moved = 0;

  // 1. Write-store entries: re-key in place.
  moved += ws_.rekey_block_range(old_block, block_hi, new_block);

  // 2. Read-store records: suppress through the deletion vectors and
  //    re-emit re-keyed copies as fresh Level-0 runs. The record bytes
  //    (epochs included) are otherwise preserved, so join results and
  //    version masks are unchanged.
  const std::uint64_t first_part = partition_of(old_block);
  const std::uint64_t last_part = partition_of(block_hi - 1);
  std::vector<std::uint8_t> new_from, new_to, new_combined;
  for (std::uint64_t pid = first_part; pid <= last_part; ++pid) {
    auto it = partitions_.find(pid);
    if (it == partitions_.end()) continue;
    Partition& part = it->second;

    auto rewrite = [&](Table table, std::vector<std::uint8_t>& out,
                       lsm::DeletionVector& vec, std::size_t rec_size) {
      auto stream = table_stream(part, table, old_block, block_hi, false);
      while (stream->valid()) {
        const std::span<const std::uint8_t> rec = stream->record();
        vec.insert(rec);
        const std::size_t n = out.size();
        out.insert(out.end(), rec.begin(), rec.end());
        const BlockNo b = util::get_be64(out.data() + n);
        util::put_be64(out.data() + n, b - old_block + new_block);
        ++moved;
        stream->next();
        (void)rec_size;
      }
    };
    rewrite(Table::kFrom, new_from, dv_from_, kFromRecordSize);
    rewrite(Table::kTo, new_to, dv_to_, kToRecordSize);
    rewrite(Table::kCombined, new_combined, dv_combined_, kCombinedRecordSize);
  }

  auto sort_records = [](std::vector<std::uint8_t>& buf, std::size_t rec_size) {
    const std::size_t n = buf.size() / rec_size;
    std::vector<std::uint32_t> order(n);
    for (std::size_t i = 0; i < n; ++i) order[i] = static_cast<std::uint32_t>(i);
    std::sort(order.begin(), order.end(), [&](std::uint32_t a, std::uint32_t b) {
      return std::memcmp(buf.data() + a * rec_size, buf.data() + b * rec_size,
                         rec_size) < 0;
    });
    std::vector<std::uint8_t> sorted(buf.size());
    for (std::size_t i = 0; i < n; ++i) {
      std::memcpy(sorted.data() + i * rec_size, buf.data() + order[i] * rec_size,
                  rec_size);
    }
    buf = std::move(sorted);
  };
  if (!new_from.empty()) {
    sort_records(new_from, kFromRecordSize);
    flush_table(new_from, kFromRecordSize, Table::kFrom);
  }
  if (!new_to.empty()) {
    sort_records(new_to, kToRecordSize);
    flush_table(new_to, kToRecordSize, Table::kTo);
  }
  if (!new_combined.empty()) {
    sort_records(new_combined, kCombinedRecordSize);
    flush_table(new_combined, kCombinedRecordSize, Table::kCombined);
  }
  if (moved > 0) dv_dirty_ = true;
  ++mutations_;
  return moved;
}

DbStats BacklogDb::stats() const {
  DbStats s;
  for (const auto& [pid, part] : partitions_) {
    s.from_runs += part.from_runs.size();
    s.to_runs += part.to_runs.size();
    s.combined_runs += part.combined_runs.size();
    for (const auto& m : part.from_runs) {
      s.db_bytes += m->size_bytes;
      s.run_records += m->record_count;
    }
    for (const auto& m : part.to_runs) {
      s.db_bytes += m->size_bytes;
      s.run_records += m->record_count;
    }
    for (const auto& m : part.combined_runs) {
      s.db_bytes += m->size_bytes;
      s.run_records += m->record_count;
    }
  }
  s.ws_from = ws_.from_size();
  s.ws_to = ws_.to_size();
  s.dv_entries = dv_from_.size() + dv_to_.size() + dv_combined_.size();
  s.partitions = partitions_.size();
  return s;
}

FileOwnershipStats BacklogDb::file_ownership() const {
  FileOwnershipStats s;
  const auto classify = [&](const std::shared_ptr<RunMeta>& m) {
    ++s.total_files;
    if (options_.shared_files != nullptr &&
        options_.shared_files->is_shared(m->name)) {
      ++s.shared_files;
      s.shared_bytes += m->size_bytes;
    } else {
      s.owned_bytes += m->size_bytes;
    }
  };
  for (const auto& [pid, part] : partitions_) {
    for (const auto& m : part.from_runs) classify(m);
    for (const auto& m : part.to_runs) classify(m);
    for (const auto& m : part.combined_runs) classify(m);
  }
  // Metadata files are copied into clones, never linked: always owned.
  for (const char* name :
       {kManifestName, kDvFromName, kDvToName, kDvCombinedName}) {
    if (env_.file_exists(name)) {
      ++s.total_files;
      s.owned_bytes += env_.file_size(name);
    }
  }
  return s;
}

QuickStats BacklogDb::quick_stats() const noexcept {
  QuickStats q = quick_;
  q.ws_entries = ws_.from_size() + ws_.to_size();
  q.ops_since_cp = ops_since_cp_;
  return q;
}

lsm::DeletionVector& BacklogDb::dv(Table table) {
  switch (table) {
    case Table::kFrom: return dv_from_;
    case Table::kTo: return dv_to_;
    case Table::kCombined: return dv_combined_;
  }
  throw std::logic_error("bad table");
}

const lsm::DeletionVector& BacklogDb::dv(Table table) const {
  return const_cast<BacklogDb*>(this)->dv(table);
}

namespace {
void emit_run_entry(std::vector<std::uint8_t>& out, std::uint8_t table,
                    std::uint64_t partition, const std::string& name) {
  out.push_back(table);
  util::append_u64(out, partition);
  util::append_string(out, name);
}
}  // namespace

void BacklogDb::save_manifest() {
  std::vector<std::uint8_t> out;
  util::append_u64(out, kManifestMagic);
  util::append_u64(out, next_run_id_);
  util::append_u64(out, max_extent_seen_);
  registry_.serialize(out);
  std::uint64_t run_count = 0;
  for (const auto& [pid, part] : partitions_) {
    run_count +=
        part.from_runs.size() + part.to_runs.size() + part.combined_runs.size();
  }
  util::append_u64(out, run_count);
  for (const auto& [pid, part] : partitions_) {
    auto emit = [&](const std::vector<std::shared_ptr<RunMeta>>& runs) {
      for (const auto& m : runs) {
        emit_run_entry(out, static_cast<std::uint8_t>(m->table), m->partition,
                       m->name);
      }
    };
    emit(part.from_runs);
    emit(part.to_runs);
    emit(part.combined_runs);
  }
  manifest_log_.reset();  // release the old file before replacing it
  auto file = env_.create_file(kManifestTmpName);
  file->append(out);
  file->sync();
  file->close();
  env_.rename_file(kManifestTmpName, kManifestName);
  pending_manifest_runs_.clear();
  manifest_log_ = env_.append_file(kManifestName);
}

void BacklogDb::append_manifest_edit() {
  // One small record per CP: [magic][len][payload][crc]. The payload
  // carries the new registry state (it embeds the advanced CP number) and
  // the runs created since the last manifest write.
  std::vector<std::uint8_t> payload;
  util::append_u64(payload, next_run_id_);
  util::append_u64(payload, max_extent_seen_);
  registry_.serialize(payload);
  util::append_u64(payload, pending_manifest_runs_.size());
  for (const auto& m : pending_manifest_runs_) {
    emit_run_entry(payload, static_cast<std::uint8_t>(m->table), m->partition,
                   m->name);
  }
  std::vector<std::uint8_t> record;
  util::append_u64(record, kManifestEditMagic);
  util::append_u32(record, static_cast<std::uint32_t>(payload.size()));
  record.insert(record.end(), payload.begin(), payload.end());
  util::append_u32(record, util::crc32c(payload.data(), payload.size()));
  if (manifest_log_ == nullptr) manifest_log_ = env_.append_file(kManifestName);
  manifest_log_->append(record);
  manifest_log_->sync();
  pending_manifest_runs_.clear();
}

void BacklogDb::load_manifest() {
  auto file = env_.open_file(kManifestName);
  std::vector<std::uint8_t> buf(file->size());
  file->read(0, buf);
  std::size_t pos = 0;
  auto need = [&](std::size_t n) {
    if (pos + n > buf.size()) throw std::runtime_error("manifest: truncated");
  };
  auto read_u64 = [&]() {
    need(8);
    const std::uint64_t v = util::get_u64(buf.data() + pos);
    pos += 8;
    return v;
  };
  auto read_runs = [&](std::uint64_t count) {
    for (std::uint64_t i = 0; i < count; ++i) {
      need(1);
      const auto table = static_cast<Table>(buf[pos++]);
      const std::uint64_t partition = read_u64();
      need(4);
      const std::uint32_t name_len = util::get_u32(buf.data() + pos);
      pos += 4;
      need(name_len);
      const std::string name(reinterpret_cast<const char*>(buf.data() + pos),
                             name_len);
      pos += name_len;
      auto meta = load_run_meta(name, table, partition);
      track_run_added(*meta);
      Partition& part = partitions_[partition];
      (table == Table::kFrom   ? part.from_runs
       : table == Table::kTo   ? part.to_runs
                               : part.combined_runs)
          .push_back(std::move(meta));
    }
  };

  // Base section.
  if (read_u64() != kManifestMagic)
    throw std::runtime_error("manifest: bad magic");
  next_run_id_ = read_u64();
  max_extent_seen_ = read_u64();
  std::size_t consumed = 0;
  registry_ = SnapshotRegistry::deserialize({buf.data() + pos, buf.size() - pos},
                                            &consumed);
  pos += consumed;
  read_runs(read_u64());

  // Edit log: replay until the end or the first torn/corrupt record (a torn
  // tail means the CP that wrote it never committed — drop it).
  while (pos + 12 <= buf.size()) {
    if (util::get_u64(buf.data() + pos) != kManifestEditMagic) break;
    const std::uint32_t len = util::get_u32(buf.data() + pos + 8);
    if (pos + 12 + len + 4 > buf.size()) break;  // torn record
    const std::uint8_t* payload = buf.data() + pos + 12;
    const std::uint32_t want = util::get_u32(payload + len);
    if (util::crc32c(payload, len) != want) break;  // corrupt record
    pos += 12 + len + 4;
    // Apply the edit.
    std::size_t epos = 0;
    next_run_id_ = util::get_u64(payload + epos);
    epos += 8;
    max_extent_seen_ = util::get_u64(payload + epos);
    epos += 8;
    std::size_t reg_consumed = 0;
    registry_ = SnapshotRegistry::deserialize({payload + epos, len - epos},
                                              &reg_consumed);
    epos += reg_consumed;
    const std::uint64_t added = util::get_u64(payload + epos);
    epos += 8;
    // Reuse read_runs by temporarily pointing pos at the payload: simpler to
    // parse inline here.
    for (std::uint64_t i = 0; i < added; ++i) {
      const auto table = static_cast<Table>(payload[epos++]);
      const std::uint64_t partition = util::get_u64(payload + epos);
      epos += 8;
      const std::uint32_t name_len = util::get_u32(payload + epos);
      epos += 4;
      const std::string name(reinterpret_cast<const char*>(payload + epos),
                             name_len);
      epos += name_len;
      auto meta = load_run_meta(name, table, partition);
      track_run_added(*meta);
      Partition& part = partitions_[partition];
      (table == Table::kFrom   ? part.from_runs
       : table == Table::kTo   ? part.to_runs
                               : part.combined_runs)
          .push_back(std::move(meta));
    }
  }

  dv_from_.load(env_, kDvFromName);
  dv_to_.load(env_, kDvToName);
  dv_combined_.load(env_, kDvCombinedName);
}

void BacklogDb::remove_orphan_runs() {
  // Run files not referenced by the recovered manifest belong to a CP that
  // never committed; write-anywhere recovery discards them.
  std::set<std::string> referenced;
  for (const auto& [pid, part] : partitions_) {
    for (const auto& m : part.from_runs) referenced.insert(m->name);
    for (const auto& m : part.to_runs) referenced.insert(m->name);
    for (const auto& m : part.combined_runs) referenced.insert(m->name);
  }
  for (const std::string& name : env_.list_files()) {
    if (name.size() > 4 && name.ends_with(".run") && !referenced.contains(name)) {
      env_.delete_file(name);
      if (options_.shared_files != nullptr) options_.shared_files->release(name);
    }
  }
  if (options_.shared_files != nullptr) options_.shared_files->persist_if_dirty();
}

}  // namespace backlog::core
