// Snapshot lines, versions, clones and zombies (§2 Fig. 3, §4.2.2).
//
// A (line, version) pair uniquely identifies a snapshot or consistency
// point; the version is the global CP number at which it was taken. Creating
// a writable clone of snapshot (l, v) starts a new line l' whose back
// references are *implicit* (structural inheritance) — the registry records
// the branch point so the query engine can expand inherited records and so
// maintenance knows which epochs must survive purging.
//
// Zombies: deleting a snapshot that has been cloned must not allow its back
// references to be purged (descendant lines still inherit through it), so
// the snapshot id moves to a zombie set and is dropped only once every
// descendant clone is gone (§4.2.2, last paragraph).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "core/backref_record.hpp"
#include "storage/env.hpp"

namespace backlog::core {

/// A clone edge: line `child` was created from snapshot (parent, version).
struct CloneEdge {
  LineId child = 0;
  Epoch branch_version = 0;
};

/// The inverse view: `line` was cloned from snapshot (parent, version).
struct ParentEdge {
  LineId parent = 0;
  Epoch branch_version = 0;
};

class SnapshotRegistry {
 public:
  /// A fresh registry has line 0, live, at CP 1 (CP 0 is reserved so that
  /// `from == 0` can mean "structural-inheritance override", §4.2.2).
  SnapshotRegistry();

  // --- global clock --------------------------------------------------------

  /// The current (in-progress) global consistency point number.
  [[nodiscard]] Epoch current_cp() const noexcept { return current_cp_; }

  /// Completes the current CP and starts the next; returns the new number.
  Epoch advance_cp();

  // --- lines and snapshots -------------------------------------------------

  /// True if `line` exists (live, dead-but-retained, or zombie).
  [[nodiscard]] bool line_exists(LineId line) const;

  /// True if `line` is writable (its head is the live file system).
  [[nodiscard]] bool line_live(LineId line) const;

  /// Retain the state of `line` as of the current CP as a snapshot; returns
  /// its version (the current CP number).
  Epoch take_snapshot(LineId line);

  /// Create a writable clone of snapshot (parent, version); returns the new
  /// line id. The version must be a retained snapshot or zombie of parent.
  LineId create_clone(LineId parent, Epoch version);

  /// Delete snapshot (line, version). If clones branch from it, it becomes a
  /// zombie instead of disappearing (its back references must survive).
  void delete_snapshot(LineId line, Epoch version);

  /// Stop the live head of a line (e.g. deleting a writable clone's working
  /// state). Its snapshots remain until individually deleted.
  void kill_line(LineId line);

  /// Drop zombie versions that no longer have descendant clones, and forget
  /// lines with no snapshots, no zombies, no clones and no live head.
  /// Returns the number of zombie versions dropped.
  std::size_t collect_zombies();

  // --- query support ---------------------------------------------------------

  /// Retained snapshot versions of `line` (ascending). Does not include the
  /// live head or zombies.
  [[nodiscard]] std::vector<Epoch> snapshots(LineId line) const;

  /// True if (line, version) is a retained snapshot (zombies excluded).
  /// Validation hook for the service layer, which refuses to build a new
  /// tenant on a deleted snapshot even though create_clone() would accept
  /// the zombie.
  [[nodiscard]] bool has_snapshot(LineId line, Epoch version) const;

  /// Versions in [from, to) that are visible to queries: retained snapshots,
  /// plus the live head (reported as current_cp()) when the line is live.
  [[nodiscard]] std::vector<Epoch> valid_versions_in(LineId line, Epoch from,
                                                     Epoch to) const;

  /// True if any *protected* epoch lies in [from, to): a retained snapshot,
  /// a zombie version, a clone branch point, or the live head. Records whose
  /// interval contains no protected epoch are purged by maintenance (§5.2).
  [[nodiscard]] bool interval_protected(LineId line, Epoch from, Epoch to) const;

  /// Clone edges out of `line` (for structural-inheritance expansion).
  [[nodiscard]] std::vector<CloneEdge> clones_of(LineId line) const;

  /// All known line ids (ascending), for verifiers and stats.
  [[nodiscard]] std::vector<LineId> lines() const;

  /// Parent edge of `line` (nullopt for root lines).
  [[nodiscard]] std::optional<ParentEdge> parent_of(LineId line) const;

  [[nodiscard]] std::size_t zombie_count() const;

  // --- persistence (part of the Backlog manifest, §5.4) ---------------------

  void serialize(std::vector<std::uint8_t>& out) const;
  static SnapshotRegistry deserialize(std::span<const std::uint8_t> in,
                                      std::size_t* consumed);

  /// Monotonic mutation counter: bumped by every state-changing call
  /// (advance_cp, take_snapshot, create_clone, delete_snapshot, kill_line,
  /// collect_zombies). BacklogDb's query result cache tags each entry with
  /// it so any registry change — which can alter masking, expansion or the
  /// visible version set — invalidates by tag comparison, no scans. Not
  /// persisted: the cache is in-memory and dies with the process.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

 private:
  struct LineInfo {
    LineId id = 0;
    std::optional<LineId> parent;
    Epoch branch_version = 0;  ///< version of parent this line branched from
    Epoch created_at = 0;      ///< CP at which the line came into existence
    bool live = true;
    std::set<Epoch> snapshots;        ///< retained, queryable versions
    std::set<Epoch> zombies;          ///< deleted-but-cloned versions
    std::vector<CloneEdge> children;  ///< clone edges out of this line
  };

  [[nodiscard]] const LineInfo& info(LineId line) const;
  LineInfo& info(LineId line);

  Epoch current_cp_ = 1;
  LineId next_line_ = 1;
  std::uint64_t version_ = 0;
  std::map<LineId, LineInfo> lines_;
};

}  // namespace backlog::core
