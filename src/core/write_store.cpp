#include "core/write_store.hpp"

namespace backlog::core {

WsUpdate WriteStore::add_reference(const BackrefKey& key, Epoch cp) {
  if (pruning_) {
    // Reallocation within one CP: the reference died and came back before
    // anything hit disk, so its lifetime never actually ended — erase the
    // buffered To entry and leave the original (older) From record alone.
    if (to_.erase(ToRecord{key, cp}) > 0) return WsUpdate::kPrunedMerge;
  }
  from_.insert(FromRecord{key, cp});
  return WsUpdate::kInserted;
}

WsUpdate WriteStore::remove_reference(const BackrefKey& key, Epoch cp) {
  if (pruning_) {
    // Created and destroyed within one CP: annihilate (a from == to record
    // would describe an interval no consistency point can observe).
    if (from_.erase(FromRecord{key, cp}) > 0) return WsUpdate::kPrunedAnnihilate;
  }
  to_.insert(ToRecord{key, cp});
  return WsUpdate::kInserted;
}

void WriteStore::apply_many(std::span<const Update> ops, Epoch cp) {
  for (const Update& op : ops) {
    if (op.kind == Update::Kind::kAdd) {
      if (pruning_ && !to_.empty() && to_.erase(ToRecord{op.key, cp}) > 0) {
        continue;  // reallocation within one CP: lifetime never ended
      }
      // end() hint: fresh blocks arrive in ascending order, so the common
      // insert lands at the tail in O(1) amortized.
      from_.insert(from_.end(), FromRecord{op.key, cp});
    } else {
      if (pruning_ && !from_.empty() &&
          from_.erase(FromRecord{op.key, cp}) > 0) {
        continue;  // add+remove in one CP annihilates
      }
      to_.insert(to_.end(), ToRecord{op.key, cp});
    }
  }
}

std::vector<std::uint8_t> WriteStore::encode_from_sorted() const {
  std::vector<std::uint8_t> out(from_.size() * kFromRecordSize);
  std::size_t pos = 0;
  for (const FromRecord& r : from_) {
    encode_from(r, out.data() + pos);
    pos += kFromRecordSize;
  }
  return out;
}

std::vector<std::uint8_t> WriteStore::encode_to_sorted() const {
  std::vector<std::uint8_t> out(to_.size() * kToRecordSize);
  std::size_t pos = 0;
  for (const ToRecord& r : to_) {
    encode_to(r, out.data() + pos);
    pos += kToRecordSize;
  }
  return out;
}

namespace {
// Smallest possible key with the given block: all other fields zero (note
// that BackrefKey's default length is 1, so build explicitly).
BackrefKey range_floor(BlockNo block) {
  BackrefKey k;
  k.block = block;
  k.inode = 0;
  k.offset = 0;
  k.length = 0;
  k.line = 0;
  return k;
}
}  // namespace

std::vector<std::uint8_t> WriteStore::encode_from_range(BlockNo block_lo,
                                                        BlockNo block_hi) const {
  std::vector<std::uint8_t> out;
  for (auto it = from_.lower_bound(FromRecord{range_floor(block_lo), 0});
       it != from_.end() && it->key.block < block_hi; ++it) {
    const std::size_t n = out.size();
    out.resize(n + kFromRecordSize);
    encode_from(*it, out.data() + n);
  }
  return out;
}

std::vector<std::uint8_t> WriteStore::encode_to_range(BlockNo block_lo,
                                                      BlockNo block_hi) const {
  std::vector<std::uint8_t> out;
  for (auto it = to_.lower_bound(ToRecord{range_floor(block_lo), 0});
       it != to_.end() && it->key.block < block_hi; ++it) {
    const std::size_t n = out.size();
    out.resize(n + kToRecordSize);
    encode_to(*it, out.data() + n);
  }
  return out;
}

std::size_t WriteStore::rekey_block_range(BlockNo block_lo, BlockNo block_hi,
                                          BlockNo new_lo) {
  std::size_t moved = 0;
  std::vector<FromRecord> from_hits;
  for (auto it = from_.lower_bound(FromRecord{range_floor(block_lo), 0});
       it != from_.end() && it->key.block < block_hi;) {
    from_hits.push_back(*it);
    it = from_.erase(it);
  }
  for (FromRecord r : from_hits) {
    r.key.block = r.key.block - block_lo + new_lo;
    from_.insert(r);
    ++moved;
  }
  std::vector<ToRecord> to_hits;
  for (auto it = to_.lower_bound(ToRecord{range_floor(block_lo), 0});
       it != to_.end() && it->key.block < block_hi;) {
    to_hits.push_back(*it);
    it = to_.erase(it);
  }
  for (ToRecord r : to_hits) {
    r.key.block = r.key.block - block_lo + new_lo;
    to_.insert(r);
    ++moved;
  }
  return moved;
}

WriteStore::Erased WriteStore::erase_key(const BackrefKey& key, Epoch cp) {
  Erased e;
  if (from_.erase(FromRecord{key, cp}) > 0) {
    e.from = true;
    e.from_epoch = cp;
  }
  if (to_.erase(ToRecord{key, cp}) > 0) {
    e.to = true;
    e.to_epoch = cp;
  }
  return e;
}

}  // namespace backlog::core
