#include "core/file_manifest.hpp"

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <system_error>
#include <utility>

namespace backlog::core {

namespace {
constexpr char kRefsName[] = "FILEREFS";
constexpr char kRefsTmpName[] = "FILEREFS.tmp";
}  // namespace

FileManifest::FileManifest(std::filesystem::path root) : root_(std::move(root)) {
  std::filesystem::create_directories(root_);
  load();
}

void FileManifest::load() {
  std::ifstream in(root_ / kRefsName);
  if (!in.is_open()) return;
  // One line per shared file: "<refcount> <size_bytes> <name>". The file is
  // untrusted on-disk state, so each field is validated before it is
  // believed: the name must look like a run file that could actually live in
  // a volume directory (no path separators, .run suffix, bounded length) and
  // the counters must be within what the clone machinery can produce —
  // anything else, including a hostile 2^63 size that would overflow the
  // saved-bytes accounting, stops the parse. rebuild() re-derives the truth
  // from the volume directories anyway.
  constexpr std::size_t kMaxName = 512;
  constexpr std::size_t kMaxEntries = 1u << 20;
  constexpr std::uint32_t kMaxRefcount = 1u << 20;
  constexpr std::uint64_t kMaxSizeBytes = 1ull << 50;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream row(line);
    std::uint32_t refcount = 0;
    std::uint64_t size_bytes = 0;
    std::string name;
    if (!(row >> refcount >> size_bytes >> name) || refcount < 2 ||
        refcount > kMaxRefcount || size_bytes > kMaxSizeBytes ||
        name.empty() || name.size() > kMaxName || !name.ends_with(".run") ||
        name.find('/') != std::string::npos ||
        name.find('\\') != std::string::npos) {
      break;
    }
    entries_[name] = Entry{refcount, size_bytes};
    if (entries_.size() >= kMaxEntries) break;
  }
}

void FileManifest::note_link(const std::string& name,
                             std::uint64_t size_bytes) {
  std::lock_guard lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name, Entry{2, size_bytes});
  if (!inserted) ++it->second.refcount;
  dirty_ = true;
}

bool FileManifest::note_unlink(const std::string& name) {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(name);
  if (it == entries_.end()) return false;
  if (--it->second.refcount <= 1) entries_.erase(it);
  dirty_ = true;
  return true;
}

void FileManifest::persist() {
  std::lock_guard lock(mu_);
  persist_locked();
}

void FileManifest::persist_if_dirty() {
  std::lock_guard lock(mu_);
  if (dirty_) persist_locked();
}

void FileManifest::persist_locked() {
  const std::filesystem::path tmp = root_ / kRefsTmpName;
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out.is_open())
      throw std::runtime_error("FileManifest: cannot write " + tmp.string());
    for (const auto& [name, e] : entries_) {
      out << e.refcount << ' ' << e.size_bytes << ' ' << name << '\n';
    }
  }
  std::filesystem::rename(tmp, root_ / kRefsName);
  ++persists_;
  dirty_ = false;
}

bool FileManifest::is_shared(const std::string& name) const {
  std::lock_guard lock(mu_);
  return entries_.contains(name);
}

std::uint32_t FileManifest::refcount(const std::string& name) const {
  std::lock_guard lock(mu_);
  const auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.refcount;
}

std::map<std::string, FileManifest::Entry> FileManifest::snapshot() const {
  std::lock_guard lock(mu_);
  return entries_;
}

FileManifest::Stats FileManifest::stats() const {
  std::lock_guard lock(mu_);
  Stats s;
  s.shared_files = entries_.size();
  s.persists = persists_;
  for (const auto& [name, e] : entries_) {
    s.shared_bytes += e.size_bytes;
    s.saved_bytes += e.size_bytes * (e.refcount - 1);
  }
  return s;
}

std::size_t FileManifest::rebuild(
    const std::vector<std::filesystem::path>& volume_dirs) {
  std::lock_guard lock(mu_);
  // Group holders by (device, inode), not by name alone: a legacy
  // byte-copied clone duplicates names across directories without sharing
  // storage, and spurious entries would misreport deduplication.
  using InodeId = std::pair<std::uint64_t, std::uint64_t>;
  std::map<std::string, std::map<InodeId, Entry>> counted;
  for (const auto& dir : volume_dirs) {
    std::error_code ec;
    for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
      if (!de.is_regular_file()) continue;
      const std::string name = de.path().filename().string();
      if (!name.ends_with(".run")) continue;
      struct ::stat st{};
      if (::stat(de.path().c_str(), &st) != 0) continue;
      const InodeId id{static_cast<std::uint64_t>(st.st_dev),
                       static_cast<std::uint64_t>(st.st_ino)};
      auto [it, inserted] = counted[name].try_emplace(
          id, Entry{1, static_cast<std::uint64_t>(st.st_size)});
      if (!inserted) ++it->second.refcount;
    }
  }
  entries_.clear();
  for (auto& [name, by_inode] : counted) {
    // At most one inode group per name can be shared in practice (only
    // clones create links); keep the most-held one if several exist.
    const Entry* best = nullptr;
    for (const auto& [id, e] : by_inode) {
      if (best == nullptr || e.refcount > best->refcount) best = &e;
    }
    if (best != nullptr && best->refcount >= 2) entries_.emplace(name, *best);
  }
  persist_locked();
  return entries_.size();
}

}  // namespace backlog::core
