#include "core/wal.hpp"

#include <cstring>
#include <vector>

#include "util/crc32c.hpp"
#include "util/serde.hpp"

namespace backlog::core {

namespace {

constexpr std::uint32_t kWalMagic = 0x4c415742;  // "BWAL" little-endian

}  // namespace

Wal::Wal(storage::Env& env, std::string name)
    : env_(env), name_(std::move(name)), file_(env_.append_file(name_)) {}

void Wal::append(Epoch epoch, std::span<const Update> ops) {
  if (ops.empty()) return;
  if (ops.size() > kMaxOpsPerRecord)
    throw std::invalid_argument("Wal::append: batch exceeds kMaxOpsPerRecord");
  const std::uint32_t op_count = static_cast<std::uint32_t>(ops.size());
  const std::uint32_t payload_len =
      op_count * static_cast<std::uint32_t>(kOpSize);
  scratch_.resize(kHeaderSize + payload_len);
  std::uint8_t* h = scratch_.data();
  util::put_u32(h, kWalMagic);
  util::put_u64(h + 4, epoch);
  util::put_u32(h + 12, op_count);
  util::put_u32(h + 16, payload_len);
  std::uint8_t* p = h + kHeaderSize;
  for (const Update& op : ops) {
    *p = static_cast<std::uint8_t>(op.kind);
    encode_key(op.key, p + 1);
    p += kOpSize;
  }
  // CRC spans the header minus its own field, then the payload — the same
  // chained-seed layout net/frame uses.
  std::uint32_t crc = util::crc32c(h, 20);
  crc = util::crc32c(h + kHeaderSize, payload_len, crc);
  util::put_u32(h + 20, crc);
  file_->append(scratch_);
  dirty_ = true;
}

void Wal::sync() {
  if (!dirty_) return;
  file_->sync();
  dirty_ = false;
}

void Wal::reset() {
  file_->close();
  file_ = env_.create_file(name_);  // truncates
  dirty_ = false;
}

std::uint64_t Wal::size_bytes() const noexcept { return file_->size(); }

WalReplayStats Wal::replay(storage::Env& env, const std::string& name,
                           const WalReplayOptions& options,
                           const ApplyFn& apply) {
  WalReplayStats stats;
  if (!env.file_exists(name)) return stats;
  const std::uint64_t size = env.file_size(name);
  if (size == 0) return stats;

  std::vector<std::uint8_t> buf(size);
  env.open_file(name)->read(0, buf);

  std::vector<Update> ops;
  std::size_t pos = 0;
  while (pos < buf.size()) {
    const std::size_t remaining = buf.size() - pos;
    // Untrusted decode: every length check happens before the checksum is
    // computed, and any failure clean-rejects the tail — a crash mid-append
    // legitimately leaves a partial record here.
    if (remaining < kHeaderSize) break;
    const std::uint8_t* h = buf.data() + pos;
    if (util::get_u32(h) != kWalMagic) break;
    const Epoch epoch = util::get_u64(h + 4);
    const std::uint32_t op_count = util::get_u32(h + 12);
    const std::uint32_t payload_len = util::get_u32(h + 16);
    if (op_count > kMaxOpsPerRecord) break;
    if (payload_len != op_count * static_cast<std::uint32_t>(kOpSize)) break;
    if (remaining - kHeaderSize < payload_len) break;  // torn tail
    std::uint32_t crc = util::crc32c(h, 20);
    crc = util::crc32c(h + kHeaderSize, payload_len, crc);
    if (crc != util::get_u32(h + 20)) break;

    ops.clear();
    ops.reserve(op_count);
    bool bad_op = false;
    const std::uint8_t* p = h + kHeaderSize;
    for (std::uint32_t i = 0; i < op_count; ++i, p += kOpSize) {
      const std::uint8_t kind = *p;
      if (kind > static_cast<std::uint8_t>(Update::Kind::kRemove)) {
        bad_op = true;
        break;
      }
      Update op;
      op.kind = static_cast<Update::Kind>(kind);
      op.key = decode_key(p + 1);
      // A CRC-valid record can still carry ops the db would reject
      // (impossible via the append path, which logs only already-applied
      // batches — so treat it as corruption, not as input).
      if (op.key.length == 0 || op.key.length > options.max_extent_blocks) {
        bad_op = true;
        break;
      }
      ops.push_back(op);
    }
    if (bad_op) break;

    ++stats.frames_scanned;
    if (epoch < options.min_epoch) {
      stats.ops_skipped += op_count;
    } else if (op_count > 0) {
      apply(epoch, ops);
      stats.ops_applied += op_count;
    }
    pos += kHeaderSize + payload_len;
  }

  if (pos < buf.size()) {
    stats.tail_rejected = true;
    stats.bytes_rejected = buf.size() - pos;
  }
  return stats;
}

}  // namespace backlog::core
