// BacklogDb — the paper's primary contribution, assembled.
//
// Log-Structured Back References (§4–5): a write-optimized back-reference
// database for write-anywhere file systems. The file system drives it with
// three callbacks (§5): add_reference / remove_reference on block-pointer
// changes, and consistency_point() at every CP. Updates never read disk;
// they buffer in the write store and are flushed en masse as immutable
// Level-0 run files per consistency point (Stepped-Merge, §5.1). Periodic
// maintenance (§5.2) merges runs, joins From ⋈ To into the Combined table
// and purges records of deleted snapshots. Queries (§4.2) serve "which
// objects reference these physical blocks?" with structural-inheritance
// expansion for writable clones and masking against retained versions.
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/backref_record.hpp"
#include "core/result_cache.hpp"
#include "core/snapshot_registry.hpp"
#include "core/write_store.hpp"
#include "lsm/deletion_vector.hpp"
#include "lsm/merge.hpp"
#include "lsm/run_file.hpp"
#include "storage/block_cache.hpp"
#include "storage/env.hpp"

namespace backlog::core {

class FileManifest;

struct BacklogOptions {
  /// Horizontal partitioning granularity (§5.3): run files cover disjoint
  /// fixed ranges of `partition_blocks` physical blocks each.
  std::uint64_t partition_blocks = 1ull << 20;

  /// Expected block operations per CP; sizes the per-run Bloom filters
  /// (paper: 32 KB of filter for the WAFL setting of 32,000 ops, §5.1).
  std::size_t expected_ops_per_cp = 32000;
  std::size_t bloom_max_bytes = 32 * 1024;
  /// The Combined RS may grow its filter up to 1 MB (§5.1).
  std::size_t combined_bloom_max_bytes = 1024 * 1024;

  /// DEPRECATED — page budget of the *private* fallback cache, in 4 KB
  /// pages (paper: 32 MB, §6.1). Only consulted when `shared_cache` is
  /// null: bare-library users keep the old one-cache-per-db behavior
  /// unchanged. Service deployments ignore it — the VolumeManager owns one
  /// service-wide storage::BlockCache sized by service::CacheOptions and
  /// injects it below; migrate by setting `shared_cache` (and size the
  /// budget there) instead of tuning per-volume pages.
  std::size_t cache_pages = 8192;

  /// Service-wide block cache (borrowed; must outlive the db). When set,
  /// this db reads run pages through it — keyed by file identity
  /// (dev, ino), so CoW-cloned volumes sharing hard-linked runs share the
  /// cached pages too — and `cache_pages` is ignored. Null (the standalone
  /// default) makes the db construct a private cache of `cache_pages`.
  storage::BlockCache* shared_cache = nullptr;

  /// Capacity (entries) of the per-volume query result cache; 0 (the
  /// default) disables it. Results are tagged with the volume's mutation
  /// epoch + registry version and die by tag comparison — see
  /// core/result_cache.hpp.
  std::size_t result_cache_entries = 0;

  /// How many run files may be held open simultaneously.
  std::size_t max_open_runs = 256;

  /// Queries touching at most this many blocks probe Bloom filters per
  /// block to skip runs entirely; wider scans rely on min/max fencing.
  std::uint64_t bloom_probe_limit = 64;

  /// Upper bound on extent length (§6.1's btrfs length field). Records sort
  /// by *starting* block, so a query for block b must begin scanning at
  /// b - max_extent_blocks + 1 to catch extents covering b; bounding the
  /// length keeps that overscan constant. add_reference enforces it.
  std::uint64_t max_extent_blocks = 128;

  // Ablation toggles (bench/ablation_design_choices).
  bool use_bloom = true;
  bool pruning = true;

  /// Uniquifies run-file names across every volume sharing a FileManifest:
  /// with a tag, runs are named `<table>_<tag>_<partition>_<id>.run`. Two db
  /// instances with distinct tags can never mint the same name, so a run
  /// hard-linked into another volume's directory (copy-on-write clone) is
  /// never rewritten in place by that volume's own flushes — RunWriter
  /// truncates on create, which would corrupt every sharer. The service
  /// layer assigns a fresh tag per opened volume instance; empty (the
  /// standalone default) keeps the legacy `<table>_<partition>_<id>.run`
  /// names. Characters are restricted to [A-Za-z0-9._-].
  std::string file_tag;

  /// Shared-file ownership hook (borrowed; outlives the db). When set,
  /// every run file the db retires — compaction, batch pre-merges, orphan
  /// removal — is released through the manifest after the db unlinks its
  /// own directory entry, so refcounts of files shared with cloned volumes
  /// stay exact. Null (the standalone default) means every file is
  /// sole-owned and plain deletion suffices.
  FileManifest* shared_files = nullptr;

  /// Crash-injection checkpoint for the durability pipeline, mirroring
  /// ServiceOptions::clone_checkpoint: invoked with "cp_flushed" after a
  /// consistency point's run files hit disk (write store cleared, registry
  /// not yet advanced) and "registry_persisted" after the manifest edit
  /// commits the CP. Crash tests _exit() inside the hook to freeze the
  /// on-disk state exactly between those two ordering points. Null (the
  /// default) disables injection.
  std::function<void(std::string_view point)> checkpoint;
};

/// One masked query result: a Combined record plus the retained snapshot /
/// CP versions (within [from, to)) in which the reference is visible.
struct BackrefEntry {
  CombinedRecord rec;
  std::vector<Epoch> versions;

  friend bool operator==(const BackrefEntry&, const BackrefEntry&) = default;
};

struct QueryOptions {
  bool expand = true;  ///< structural-inheritance expansion (§4.2.2)
  bool mask = true;    ///< drop records invisible in every retained version
};

/// Returned by consistency_point(): the paper's per-CP overhead metrics.
struct CpFlushStats {
  Epoch cp = 0;                    ///< the CP that was just committed
  std::uint64_t block_ops = 0;     ///< add/remove calls during this CP
  std::uint64_t records_flushed = 0;
  std::uint64_t pages_written = 0; ///< 4 KB page writes charged to the flush
  std::uint64_t wall_micros = 0;
};

struct MaintenanceStats {
  std::uint64_t input_records = 0;
  std::uint64_t output_complete = 0;    ///< records in the new Combined RS
  std::uint64_t output_incomplete = 0;  ///< records in the new From RS
  std::uint64_t purged = 0;             ///< dead records dropped (§5.2)
  std::uint64_t bytes_before = 0;
  std::uint64_t bytes_after = 0;
  std::uint64_t pages_read = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t wall_micros = 0;
};

/// Shared-vs-owned byte split of the volume's durable files, resolved
/// against the shared FileManifest (everything is owned when no manifest is
/// configured). `shared_bytes` counts run files hard-linked into at least
/// one other volume directory (copy-on-write clones); metadata files
/// (manifest, deletion vectors) are always owned — they are copied, never
/// linked, because they mutate in place.
struct FileOwnershipStats {
  std::uint64_t owned_bytes = 0;
  std::uint64_t shared_bytes = 0;
  std::uint64_t shared_files = 0;
  std::uint64_t total_files = 0;
};

struct DbStats {
  std::uint64_t from_runs = 0;
  std::uint64_t to_runs = 0;
  std::uint64_t combined_runs = 0;
  std::uint64_t db_bytes = 0;      ///< total size of all run files
  std::uint64_t run_records = 0;   ///< records across all runs
  std::size_t ws_from = 0;
  std::size_t ws_to = 0;
  std::uint64_t dv_entries = 0;
  std::uint64_t partitions = 0;
};

/// O(1) stats snapshot. Unlike stats(), which walks every partition and run,
/// these counters are maintained incrementally as runs are installed and
/// retired — cheap enough for a scheduler to poll across hundreds of hosted
/// volumes between every task.
struct QuickStats {
  std::uint64_t from_runs = 0;
  std::uint64_t to_runs = 0;
  std::uint64_t combined_runs = 0;
  std::uint64_t db_bytes = 0;
  std::uint64_t run_records = 0;
  std::uint64_t ws_entries = 0;     ///< buffered From + To write-store entries
  std::uint64_t ops_since_cp = 0;

  /// Level-0 pressure signal: the run count that maintenance collapses.
  [[nodiscard]] std::uint64_t l0_runs() const noexcept {
    return from_runs + to_runs;
  }
};

class BacklogDb {
 public:
  /// Opens (or creates) the database rooted at `env`. If a manifest exists,
  /// the previous state — run files, snapshot registry, deletion vectors —
  /// is recovered (§5.4); the write store starts empty and the file system
  /// replays its journal through add/remove_reference.
  explicit BacklogDb(storage::Env& env, BacklogOptions options = {});
  ~BacklogDb();

  BacklogDb(const BacklogDb&) = delete;
  BacklogDb& operator=(const BacklogDb&) = delete;

  // --- update path (§5): no disk I/O, ever ---------------------------------

  /// Block-reference-added callback: `key` became live at the current CP.
  void add_reference(const BackrefKey& key);

  /// Block-reference-removed callback: `key` died at the current CP.
  void remove_reference(const BackrefKey& key);

  /// Batched update path: validate, stamp and buffer a whole batch of
  /// add/remove callbacks in one call, amortizing the per-record epoch
  /// lookup, extent bookkeeping and op accounting. Semantically equal to
  /// issuing the calls in order, with one contract difference: the batch is
  /// validated *up front*, so an invalid op (zero-length / oversized
  /// extent) throws std::invalid_argument before anything is applied —
  /// the sequential calls would apply the prefix. Used by the service's
  /// apply()/apply_batch() verbs and the journal-replay recovery path.
  void apply_many(std::span<const Update> ops);

  // --- consistency points ----------------------------------------------------

  /// Flush the write store as new Level-0 runs (one per touched partition
  /// and table), persist the manifest, and advance the global CP number.
  CpFlushStats consistency_point();

  [[nodiscard]] Epoch current_cp() const noexcept { return registry_.current_cp(); }

  /// The snapshot registry: the file system takes snapshots, creates clones
  /// and deletes snapshots through this. State persists with the manifest.
  [[nodiscard]] SnapshotRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] const SnapshotRegistry& registry() const noexcept {
    return registry_;
  }

  /// Persist the current registry state (and any runs created since the
  /// last manifest write) as a manifest edit *without* advancing the CP.
  /// Lets registry mutations made between consistency points — clone
  /// creation, snapshot deletion — survive a crash instead of waiting for
  /// the next CP's edit append.
  void persist_registry();

  /// Names of every file that makes up the database's durable state: the
  /// manifest, the deletion-vector files that exist, and all registered run
  /// files. With an empty write store, copying exactly these files yields a
  /// byte-complete clone of the volume (the service layer's cross-volume
  /// clone). Orphan files from uncommitted CPs are excluded by construction.
  [[nodiscard]] std::vector<std::string> live_files() const;

  // --- queries (§4.2, §6.4) -------------------------------------------------

  /// All owners of physical blocks [first, first+count): "tell me all the
  /// objects containing this block". Sorted by record order.
  [[nodiscard]] std::vector<BackrefEntry> query(BlockNo first,
                                                std::uint64_t count = 1,
                                                const QueryOptions& opts = {});

  /// Raw joined records (no expansion, no masking) — verifier/test hook.
  [[nodiscard]] std::vector<CombinedRecord> query_raw(BlockNo first,
                                                      std::uint64_t count = 1);

  /// Every joined record in the database (unmasked, unexpanded).
  [[nodiscard]] std::vector<CombinedRecord> scan_all();

  /// Drop cached pages *and* cached query results (cold-cache query
  /// experiments, §6.4). Note: with an injected shared_cache this clears
  /// the whole service-wide block cache — the fleet-wide cold-cache knob is
  /// the service layer's clear_caches(), which clears the block cache once.
  void clear_cache();

  /// Drop only this volume's cached query results (the service layer's
  /// per-volume share of clear_caches()).
  void clear_result_cache() { result_cache_.clear(); }

  /// Counters of this volume's query result cache.
  [[nodiscard]] ResultCacheStats result_cache_stats() const {
    return result_cache_.stats();
  }

  /// Counters of the block cache this db reads through. With an injected
  /// shared_cache these are the *service-wide* counters (every volume sees
  /// the same numbers); in the legacy standalone mode they are this db's
  /// private cache, which is how the service layer aggregates a per-volume
  /// fleet report.
  [[nodiscard]] storage::BlockCacheStats block_cache_stats() const {
    return cache_.stats();
  }

  // --- maintenance (§5.2) -----------------------------------------------------

  /// Compact every partition: merge runs, precompute Combined, purge dead
  /// records, apply + consume the deletion vectors. Requires an empty write
  /// store (call right after consistency_point()).
  MaintenanceStats maintain();

  /// Selective compaction (§5.3): compact only the partition that covers
  /// `block`. Lets hot block ranges be maintained without paying for the
  /// whole volume. Same empty-write-store requirement as maintain().
  MaintenanceStats maintain_partition(BlockNo block);

  // --- relocation (§3, §5.1 deletion vector) ---------------------------------

  /// Rewrite all back references of extent [old_block, old_block+length) to
  /// point at new_block: RS copies are suppressed through the deletion
  /// vectors and re-emitted (re-keyed) as fresh Level-0 runs; WS entries are
  /// re-keyed in place. Returns the number of rewritten records. The caller
  /// (file system) is responsible for updating its own block pointers.
  std::uint64_t relocate(BlockNo old_block, std::uint64_t length,
                         BlockNo new_block);

  [[nodiscard]] DbStats stats() const;
  [[nodiscard]] FileOwnershipStats file_ownership() const;
  [[nodiscard]] QuickStats quick_stats() const noexcept;
  [[nodiscard]] const BacklogOptions& options() const noexcept { return options_; }

 private:
  enum class Table : std::uint8_t { kFrom = 0, kTo = 1, kCombined = 2 };

  struct RunMeta {
    std::string name;
    Table table;
    std::uint64_t partition = 0;
    std::uint64_t record_count = 0;
    std::uint64_t size_bytes = 0;
    util::BloomFilter bloom;  // always resident (§5.1)
    std::vector<std::uint8_t> min_rec, max_rec;
  };

  struct Partition {
    std::vector<std::shared_ptr<RunMeta>> from_runs;
    std::vector<std::shared_ptr<RunMeta>> to_runs;
    std::vector<std::shared_ptr<RunMeta>> combined_runs;
  };

  [[nodiscard]] std::uint64_t partition_of(BlockNo block) const {
    return block / options_.partition_blocks;
  }

  // Run-file lifecycle.
  std::shared_ptr<RunMeta> load_run_meta(const std::string& name, Table table,
                                         std::uint64_t partition);
  std::shared_ptr<lsm::RunFile> open_run(const RunMeta& meta);
  void drop_run(const RunMeta& meta);
  std::string new_run_name(Table table, std::uint64_t partition);

  // QuickStats bookkeeping: every install/retire of a registered run passes
  // through these (orphan files deleted during recovery never registered).
  void track_run_added(const RunMeta& meta) noexcept;
  void track_run_removed(const RunMeta& meta) noexcept;

  // Flush helpers.
  std::uint64_t flush_table(const std::vector<std::uint8_t>& sorted,
                            std::size_t record_size, Table table);

  // Stepped-Merge intermediate levels (§5.1): when a partition holds more
  // runs than can be merged in one pass (bounded by open-file capacity),
  // batches of the oldest runs are pre-merged into single larger runs.
  void merge_run_batches(std::vector<std::shared_ptr<RunMeta>>& runs,
                         Table table, std::uint64_t partition);

  // Compaction of a single partition; accumulates into `s`.
  void maintain_one(std::uint64_t pid, Partition& part, MaintenanceStats& s);

  // Query plumbing. Returns a sorted stream of records in
  // [block_lo, block_hi) for the given table within one partition, merged
  // across runs (+ WS for From/To) and filtered through the deletion vector.
  std::unique_ptr<lsm::RecordStream> table_stream(const Partition& part,
                                                  Table table, BlockNo block_lo,
                                                  BlockNo block_hi,
                                                  bool include_ws);
  [[nodiscard]] bool run_may_intersect(const RunMeta& meta, BlockNo block_lo,
                                       BlockNo block_hi) const;
  std::vector<CombinedRecord> collect_raw(BlockNo block_lo, BlockNo block_hi);
  void expand_inheritance(std::vector<CombinedRecord>& records) const;

  // Manifest: a base snapshot plus an append-only edit log. Every CP
  // appends one small edit record (new registry state + runs added since
  // the last edit); maintenance rewrites the base and truncates the log.
  // This keeps the per-CP manifest cost O(1) even with thousands of
  // accumulated Level-0 runs between compactions.
  void save_manifest();         // full rewrite (open/maintain)
  void append_manifest_edit();  // per-CP delta
  void load_manifest();
  void remove_orphan_runs();

  lsm::DeletionVector& dv(Table table);
  [[nodiscard]] const lsm::DeletionVector& dv(Table table) const;

  storage::Env& env_;
  BacklogOptions options_;
  SnapshotRegistry registry_;
  WriteStore ws_;
  // The compat shim for bare-library users: when no shared cache is
  // injected, the db owns a private one and cache_ points at it.
  std::unique_ptr<storage::BlockCache> private_cache_;
  storage::BlockCache& cache_;
  ResultCache<std::vector<BackrefEntry>> result_cache_;
  /// Bumped by every operation that can change a query answer outside the
  /// registry: updates, CP flushes, maintenance, relocation. Together with
  /// registry_.version() it forms the result cache's tag.
  std::uint64_t mutations_ = 0;
  std::map<std::uint64_t, Partition> partitions_;
  std::uint64_t next_run_id_ = 1;
  std::uint64_t ops_since_cp_ = 0;
  QuickStats quick_{};  // incrementally maintained run counters
  // Largest extent length ever referenced: queries for block b must begin
  // scanning at b - (max_extent_seen_ - 1) to catch covering extents.
  // 1 for block-granularity workloads, so the overscan is usually zero.
  std::uint64_t max_extent_seen_ = 1;

  // Runs created since the last manifest write (base or edit).
  std::vector<std::shared_ptr<RunMeta>> pending_manifest_runs_;
  std::unique_ptr<storage::WritableFile> manifest_log_;

  lsm::DeletionVector dv_from_{kFromRecordSize};
  lsm::DeletionVector dv_to_{kToRecordSize};
  lsm::DeletionVector dv_combined_{kCombinedRecordSize};
  bool dv_dirty_ = false;

  // Open-file LRU over run files (bounded fd usage with many L0 runs).
  std::unordered_map<std::string, std::shared_ptr<lsm::RunFile>> open_runs_;
  std::list<std::string> open_lru_;
};

}  // namespace backlog::core
