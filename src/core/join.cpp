#include "core/join.hpp"

#include <algorithm>
#include <cstring>

namespace backlog::core {

std::vector<CombinedRecord> join_group(const BackrefKey& key,
                                       const std::vector<Epoch>& froms,
                                       const std::vector<Epoch>& tos) {
  std::vector<CombinedRecord> out;
  out.reserve(std::max(froms.size(), tos.size()));
  std::size_t ti = 0;
  for (const Epoch f : froms) {
    // To entries strictly before this From can no longer match it, nor any
    // later From (froms ascend) — they are structural-inheritance overrides
    // that join the implicit from = 0.
    while (ti < tos.size() && tos[ti] < f) {
      out.push_back({key, 0, tos[ti]});
      ++ti;
    }
    if (ti < tos.size() && tos[ti] == f) {
      // from == to: the reference was created and destroyed within one CP
      // (only possible when WS pruning is disabled) — no consistency point
      // can observe it, so both sides annihilate (§4.2, pruning rule).
      ++ti;
      continue;
    }
    if (ti < tos.size()) {
      out.push_back({key, f, tos[ti]});
      ++ti;
    } else {
      out.push_back({key, f, kInfinity});  // incomplete (live) record
    }
  }
  for (; ti < tos.size(); ++ti) out.push_back({key, 0, tos[ti]});
  std::sort(out.begin(), out.end());
  return out;
}

OuterJoinStream::OuterJoinStream(std::unique_ptr<lsm::RecordStream> from_in,
                                 std::unique_ptr<lsm::RecordStream> to_in)
    : from_(std::move(from_in)), to_(std::move(to_in)) {
  refill();
}

bool OuterJoinStream::valid() const { return pos_ < group_out_.size(); }

std::span<const std::uint8_t> OuterJoinStream::record() const {
  return {group_out_.data() + pos_, kCombinedRecordSize};
}

void OuterJoinStream::next() {
  pos_ += kCombinedRecordSize;
  if (pos_ >= group_out_.size()) refill();
}

void OuterJoinStream::refill() {
  group_out_.clear();
  pos_ = 0;
  const bool from_ok = from_ != nullptr && from_->valid();
  const bool to_ok = to_ != nullptr && to_->valid();
  if (!from_ok && !to_ok) return;

  // The next group is the smaller of the two heads' 40-byte key prefixes.
  std::uint8_t group_key[kKeySize];
  if (from_ok && to_ok) {
    const int c = std::memcmp(from_->record().data(), to_->record().data(),
                              kKeySize);
    std::memcpy(group_key, (c <= 0 ? from_ : to_)->record().data(), kKeySize);
  } else if (from_ok) {
    std::memcpy(group_key, from_->record().data(), kKeySize);
  } else {
    std::memcpy(group_key, to_->record().data(), kKeySize);
  }
  const BackrefKey key = decode_key(group_key);

  std::vector<Epoch> froms;
  while (from_ != nullptr && from_->valid() &&
         std::memcmp(from_->record().data(), group_key, kKeySize) == 0) {
    froms.push_back(decode_from(from_->record().data()).from);
    from_->next();
  }
  std::vector<Epoch> tos;
  while (to_ != nullptr && to_->valid() &&
         std::memcmp(to_->record().data(), group_key, kKeySize) == 0) {
    tos.push_back(decode_to(to_->record().data()).to);
    to_->next();
  }
  // Run-file streams already deliver epochs ascending within a key group
  // (epoch is the record suffix); merged streams preserve that.
  const std::vector<CombinedRecord> joined = join_group(key, froms, tos);
  group_out_.resize(joined.size() * kCombinedRecordSize);
  for (std::size_t i = 0; i < joined.size(); ++i) {
    encode_combined(joined[i], group_out_.data() + i * kCombinedRecordSize);
  }
}

}  // namespace backlog::core
