// Write-ahead log for the group-commit durability pipeline (ROADMAP item).
//
// A consistency point is the paper's durability unit, but it is far too
// heavy to pay per operation: flushing the write store rewrites runs and
// the manifest. The WAL makes individual updates durable *between* CPs at
// the cost of one sequential append plus an (amortized) fsync: the service
// layer appends every applied batch here, group-commits one fsync across
// all volumes of a shard inside a commit window, and acks the callers only
// after that sync. A CP makes the logged window durable in run files, so
// the log is truncated behind the committed epoch.
//
// Framing reuses the net/frame discipline byte for byte in spirit: a small
// fixed header carrying magic + lengths + CRC32C, with every length
// validated BEFORE the checksum is computed. The replay parser is an
// untrusted-input decoder exactly like the run-file footer — the file is
// whatever a crash (or an adversary) left on disk, so a torn, truncated,
// or bit-flipped tail is *clean-rejected* (replay stops, reports the
// rejected bytes) instead of throwing out of recovery.
//
// Record layout (little-endian, like every on-disk struct here):
//   [0,4)   magic "BWAL"
//   [4,12)  epoch — BacklogDb::current_cp() at append time; replay skips
//           records below the recovered db's committed epoch (their ops are
//           already durable in run files)
//   [12,16) op_count
//   [16,20) payload_len == op_count * 41 (redundant, so lengths can be
//           validated against each other before trusting either)
//   [20,24) CRC32C over header[0,20) + payload
//   payload: op_count × { kind u8 (0=add, 1=remove), 40-byte big-endian
//            BackrefKey (the encode_key format run files use) }
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>

#include "core/backref_record.hpp"
#include "storage/env.hpp"

namespace backlog::core {

/// Outcome of one replay pass. `tail_rejected` does not distinguish a torn
/// write from corruption — both mean "everything from `bytes_rejected`
/// before EOF was never acknowledged durable, drop it".
struct WalReplayStats {
  std::uint64_t frames_scanned = 0;   ///< well-formed records seen
  std::uint64_t ops_applied = 0;      ///< ops delivered to the apply callback
  std::uint64_t ops_skipped = 0;      ///< ops below min_epoch (already in runs)
  std::uint64_t bytes_rejected = 0;   ///< trailing bytes dropped as torn/corrupt
  bool tail_rejected = false;
};

struct WalReplayOptions {
  /// Records with epoch < min_epoch are skipped, not applied: a CP that
  /// committed at this epoch already flushed them into run files.
  Epoch min_epoch = 0;
  /// Extent-length cap mirroring BacklogOptions::max_extent_blocks: a
  /// CRC-valid record carrying an op over the cap is clean-rejected here
  /// instead of exploding out of BacklogDb::apply_many mid-recovery.
  std::uint64_t max_extent_blocks = kInfinity;
};

/// Append-only, CRC-framed log of Update batches. One Wal per volume
/// directory (the file lives next to the manifest); the *group commit* —
/// one fsync spanning every dirty volume on a shard — is the service
/// layer's job, this class only exposes the per-file append/sync/reset.
/// Not thread-safe: owned and driven by the volume's shard thread.
class Wal {
 public:
  static constexpr const char* kDefaultName = "WAL";
  static constexpr std::size_t kHeaderSize = 24;
  static constexpr std::size_t kOpSize = 1 + kKeySize;  // kind + key
  /// Cap validated before any allocation or checksum on replay; generous
  /// against the service's batch caps.
  static constexpr std::uint32_t kMaxOpsPerRecord = 1u << 20;

  /// Opens (creating if missing) `name` under `env`, preserving existing
  /// contents — recovery reads the old tail via replay() before the first
  /// append lands.
  explicit Wal(storage::Env& env, std::string name = kDefaultName);

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Appends one record. Buffered by the kernel only — call sync() (or let
  /// the shard's group-commit window do it) before acking durability.
  /// Empty batches append nothing.
  void append(Epoch epoch, std::span<const Update> ops);

  /// Durability barrier for everything appended so far. No-op when nothing
  /// was appended since the last sync.
  void sync();

  /// True when appends since the last sync() await a durability barrier.
  [[nodiscard]] bool dirty() const noexcept { return dirty_; }

  /// Truncates the log. Called after a consistency point commits: every
  /// logged op at or below the committed epoch is now durable in run files
  /// (and anything newer was re-checked by the caller before truncating).
  void reset();

  [[nodiscard]] std::uint64_t size_bytes() const noexcept;

  using ApplyFn = std::function<void(Epoch, std::span<const Update>)>;

  /// Replays `name` (missing file == empty log), delivering each surviving
  /// record's ops to `apply` in append order. Never throws on bad bytes:
  /// the first malformed, torn, over-cap, or CRC-failing record rejects
  /// the remainder of the file (see WalReplayStats). Exceptions from
  /// `apply` itself propagate — the callback is trusted code.
  static WalReplayStats replay(storage::Env& env, const std::string& name,
                               const WalReplayOptions& options,
                               const ApplyFn& apply);

 private:
  storage::Env& env_;
  std::string name_;
  std::unique_ptr<storage::WritableFile> file_;
  std::vector<std::uint8_t> scratch_;  // reused encode buffer
  bool dirty_ = false;
};

}  // namespace backlog::core
