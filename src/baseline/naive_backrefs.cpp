#include "baseline/naive_backrefs.hpp"

#include <chrono>
#include <cstring>
#include <stdexcept>

#include "util/serde.hpp"

namespace backlog::baseline {

namespace {
// key   = (block, inode, offset, line, from)  big-endian
// value = to
constexpr std::size_t kNaiveKeySize = 40;
constexpr std::size_t kNaiveValueSize = 8;

void encode_naive_key(const core::BackrefKey& k, core::Epoch from,
                      std::uint8_t* dst) {
  util::put_be64(dst, k.block);
  util::put_be64(dst + 8, k.inode);
  util::put_be64(dst + 16, k.offset);
  util::put_be64(dst + 24, k.line);
  util::put_be64(dst + 32, from);
}

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

NaiveBackrefs::NaiveBackrefs(storage::Env& env, NaiveOptions options)
    : env_(env), structural_removes_(options.structural_removes) {
  tree_ = std::make_unique<storage::BTree>(env, "naive_backrefs.btree",
                                           kNaiveKeySize, kNaiveValueSize,
                                           options.cache_pages);
}

void NaiveBackrefs::add_reference(const core::BackrefKey& key) {
  std::uint8_t kbuf[kNaiveKeySize];
  std::uint8_t vbuf[kNaiveValueSize];
  encode_naive_key(key, cp_, kbuf);
  util::put_be64(vbuf, core::kInfinity);
  tree_->put({kbuf, kNaiveKeySize}, {vbuf, kNaiveValueSize});  // insert
  ++ops_since_cp_;
}

void NaiveBackrefs::remove_reference(const core::BackrefKey& key) {
  // Read-modify-write: locate the live record (to == ∞) for this key. The
  // `from` suffix is unknown, so seek to the key prefix and scan — exactly
  // the lookup a real implementation would do.
  std::uint8_t kbuf[kNaiveKeySize];
  encode_naive_key(key, 0, kbuf);
  std::uint8_t live_key[kNaiveKeySize];
  bool found = false;
  for (auto c = tree_->seek({kbuf, kNaiveKeySize}); c.valid(); c.next()) {
    if (std::memcmp(c.key().data(), kbuf, 32) != 0) break;  // prefix ended
    if (util::get_be64(c.value().data()) == core::kInfinity) {
      std::memcpy(live_key, c.key().data(), kNaiveKeySize);
      found = true;
      break;
    }
  }
  if (!found) {
    if (!structural_removes_)
      throw std::logic_error("NaiveBackrefs: remove of unknown reference");
    // The key was never explicitly added on this line: it is inherited from
    // a cloned snapshot, and dropping it terminates inheritance — record
    // the override interval [0, cp) (§4.2.2).
    encode_naive_key(key, 0, live_key);
  }
  std::uint8_t vbuf[kNaiveValueSize];
  util::put_be64(vbuf, cp_);
  tree_->put({live_key, kNaiveKeySize}, {vbuf, kNaiveValueSize});
  ++ops_since_cp_;
}

fsim::SinkCpStats NaiveBackrefs::on_consistency_point() {
  const std::uint64_t t0 = now_micros();
  const storage::IoStats before = env_.stats();
  fsim::SinkCpStats s;
  s.cp = cp_++;
  s.block_ops = ops_since_cp_;
  tree_->flush();
  ops_since_cp_ = 0;
  const storage::IoStats delta = env_.stats() - before;
  s.pages_written = delta.page_writes;
  s.wall_micros = now_micros() - t0;
  return s;
}

std::uint64_t NaiveBackrefs::db_bytes() const {
  return tree_->stats().page_count * storage::kPageSize;
}

std::vector<core::CombinedRecord> NaiveBackrefs::query(core::BlockNo first,
                                                       std::uint64_t count) {
  std::vector<core::CombinedRecord> out;
  std::uint8_t kbuf[kNaiveKeySize];
  core::BackrefKey seek_key;
  seek_key.block = first;
  seek_key.inode = 0;
  seek_key.offset = 0;
  seek_key.line = 0;
  encode_naive_key(seek_key, 0, kbuf);
  for (auto c = tree_->seek({kbuf, kNaiveKeySize}); c.valid(); c.next()) {
    core::CombinedRecord r;
    r.key.block = util::get_be64(c.key().data());
    if (r.key.block >= first + count) break;
    r.key.inode = util::get_be64(c.key().data() + 8);
    r.key.offset = util::get_be64(c.key().data() + 16);
    r.key.line = util::get_be64(c.key().data() + 24);
    r.key.length = 1;
    r.from = util::get_be64(c.key().data() + 32);
    r.to = util::get_be64(c.value().data());
    out.push_back(r);
  }
  return out;
}

}  // namespace backlog::baseline
