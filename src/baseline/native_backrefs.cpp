#include "baseline/native_backrefs.hpp"

#include <chrono>
#include <cstring>

#include "util/serde.hpp"

namespace backlog::baseline {

namespace {
constexpr std::size_t kNativeKeySize = 32;   // block, inode, offset, line
constexpr std::size_t kNativeValueSize = 8;  // refcount

void encode_native_key(const core::BackrefKey& k, std::uint8_t* dst) {
  util::put_be64(dst, k.block);
  util::put_be64(dst + 8, k.inode);
  util::put_be64(dst + 16, k.offset);
  util::put_be64(dst + 24, k.line);
}

core::BackrefKey decode_native_key(const std::uint8_t* src) {
  core::BackrefKey k;
  k.block = util::get_be64(src);
  k.inode = util::get_be64(src + 8);
  k.offset = util::get_be64(src + 16);
  k.line = util::get_be64(src + 24);
  k.length = 1;
  return k;
}

std::uint64_t now_micros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
}  // namespace

NativeBackrefs::NativeBackrefs(storage::Env& env, NativeOptions options)
    : env_(env) {
  tree_ = std::make_unique<storage::BTree>(env, "native_backrefs.btree",
                                           kNativeKeySize, kNativeValueSize,
                                           options.cache_pages);
}

void NativeBackrefs::add_reference(const core::BackrefKey& key) {
  ++pending_[key];
  ++ops_since_cp_;
}

void NativeBackrefs::remove_reference(const core::BackrefKey& key) {
  --pending_[key];
  ++ops_since_cp_;
}

fsim::SinkCpStats NativeBackrefs::on_consistency_point() {
  const std::uint64_t t0 = now_micros();
  const storage::IoStats before = env_.stats();
  fsim::SinkCpStats s;
  s.cp = cp_++;
  s.block_ops = ops_since_cp_;

  // Transaction commit: fold the buffered deltas into the on-disk tree.
  std::uint8_t kbuf[kNativeKeySize];
  std::uint8_t vbuf[kNativeValueSize];
  for (const auto& [key, delta] : pending_) {
    if (delta == 0) continue;  // cancelled within the transaction
    encode_native_key(key, kbuf);
    std::int64_t refs = delta;
    if (auto existing = tree_->get({kbuf, kNativeKeySize})) {
      refs += static_cast<std::int64_t>(util::get_u64(existing->data()));
    }
    if (refs > 0) {
      util::put_u64(vbuf, static_cast<std::uint64_t>(refs));
      tree_->put({kbuf, kNativeKeySize}, {vbuf, kNativeValueSize});
    } else {
      tree_->erase({kbuf, kNativeKeySize});
    }
  }
  pending_.clear();
  tree_->flush();
  ops_since_cp_ = 0;

  const storage::IoStats delta = env_.stats() - before;
  s.pages_written = delta.page_writes;
  s.wall_micros = now_micros() - t0;
  return s;
}

std::uint64_t NativeBackrefs::db_bytes() const {
  return tree_->stats().page_count * storage::kPageSize;
}

std::vector<NativeBackrefs::Owner> NativeBackrefs::query(core::BlockNo first,
                                                         std::uint64_t count) {
  std::vector<Owner> out;
  std::uint8_t kbuf[kNativeKeySize];
  core::BackrefKey seek_key;
  seek_key.block = first;
  seek_key.inode = 0;
  seek_key.offset = 0;
  seek_key.line = 0;
  encode_native_key(seek_key, kbuf);
  for (auto c = tree_->seek({kbuf, kNativeKeySize}); c.valid(); c.next()) {
    const core::BackrefKey key = decode_native_key(c.key().data());
    if (key.block >= first + count) break;
    out.push_back({key, util::get_u64(c.value().data())});
  }
  return out;
}

}  // namespace backlog::baseline
