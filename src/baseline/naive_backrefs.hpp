// Baseline "naive conceptual table" (§4.1).
//
// The straw-man the paper measures first: one on-disk table of Conceptual
// records (block, inode, offset, line, from, to), updated *in place*:
//
//   * allocation  -> insert a record with to = ∞;
//   * deallocation -> find the live record for the key (a B-tree lookup =
//     disk read once the table outgrows the cache) and overwrite its `to`
//     with the current CP — the read-modify-write the paper says made the
//     file system "slow down to a crawl after only a few hundred CPs".
//
// Updates are applied immediately against the tree's buffer cache and dirty
// pages are written back at each CP, so both the read-miss storm and the
// scattered page writes show up in the Env accounting. Reproduced by
// bench/ablation_naive_baseline.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/backref_record.hpp"
#include "fsim/backref_sink.hpp"
#include "storage/btree.hpp"
#include "storage/env.hpp"

namespace backlog::baseline {

struct NaiveOptions {
  std::size_t cache_pages = 2048;  ///< 8 MB buffer cache

  /// When true, removing a reference with no live record inserts the
  /// §4.2.2 structural-inheritance override record [0, cp) instead of
  /// throwing — the naive table's rendering of "a writable clone dropped a
  /// reference it only inherited". Off by default: on clone-free workloads
  /// an unmatched remove is a workload bug and should fail loudly.
  bool structural_removes = false;
};

class NaiveBackrefs final : public fsim::BackrefSink {
 public:
  NaiveBackrefs(storage::Env& env, NaiveOptions options = {});

  void add_reference(const core::BackrefKey& key) override;
  void remove_reference(const core::BackrefKey& key) override;
  fsim::SinkCpStats on_consistency_point() override;
  [[nodiscard]] bool advances_cp() const override { return false; }
  [[nodiscard]] std::uint64_t db_bytes() const override;

  /// All records (live and historical) for blocks [first, first+count).
  [[nodiscard]] std::vector<core::CombinedRecord> query(core::BlockNo first,
                                                        std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t record_count() const { return tree_->size(); }
  [[nodiscard]] core::Epoch current_cp() const noexcept { return cp_; }

 private:
  storage::Env& env_;
  bool structural_removes_ = false;
  std::unique_ptr<storage::BTree> tree_;
  std::uint64_t ops_since_cp_ = 0;
  core::Epoch cp_ = 1;
};

}  // namespace backlog::baseline
