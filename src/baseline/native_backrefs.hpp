// Baseline "Original": btrfs-style native back references (§7).
//
// Btrfs keeps back references as refcounted items in its global
// update-in-place metadata B-tree, keyed next to the extent records; updates
// accumulate in an in-memory balanced tree during a transaction and are
// inserted into the on-disk tree at commit (= our consistency point). We
// reproduce that shape on the shared BTree substrate:
//
//   key   = (block, inode, offset, line)   big-endian, memcmp-ordered
//   value = refcount (u64)
//
// Like btrfs, no CP/transaction ids are stored (that is how btrfs gets free
// inode copy-on-write at the cost of query-time work, §7) — so this baseline
// cannot answer historical per-version queries; it resolves only the
// *current* owners, which is all Table 1's update-path comparison needs.
//
// The CP-time cost profile is the point: applying the buffered deltas is a
// read-modify-write against the tree's page cache, so dirty meta-data pages
// (and, once the tree outgrows the cache, read misses) are charged to the
// Env — the same accounting the Backlog flush path uses.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "core/backref_record.hpp"
#include "fsim/backref_sink.hpp"
#include "storage/btree.hpp"
#include "storage/env.hpp"

namespace backlog::baseline {

struct NativeOptions {
  std::size_t cache_pages = 2048;  ///< metadata page cache (8 MB)
};

class NativeBackrefs final : public fsim::BackrefSink {
 public:
  NativeBackrefs(storage::Env& env, NativeOptions options = {});

  void add_reference(const core::BackrefKey& key) override;
  void remove_reference(const core::BackrefKey& key) override;
  fsim::SinkCpStats on_consistency_point() override;
  [[nodiscard]] bool advances_cp() const override { return false; }
  [[nodiscard]] std::uint64_t db_bytes() const override;

  /// Current owners of blocks [first, first+count): (key, refcount) pairs.
  struct Owner {
    core::BackrefKey key;
    std::uint64_t refcount;
  };
  [[nodiscard]] std::vector<Owner> query(core::BlockNo first,
                                         std::uint64_t count = 1);

  [[nodiscard]] std::uint64_t record_count() const { return tree_->size(); }

 private:
  struct KeyCmp {
    bool operator()(const core::BackrefKey& a, const core::BackrefKey& b) const {
      return std::tie(a.block, a.inode, a.offset, a.line) <
             std::tie(b.block, b.inode, b.offset, b.line);
    }
  };

  storage::Env& env_;
  std::unique_ptr<storage::BTree> tree_;
  std::map<core::BackrefKey, std::int64_t, KeyCmp> pending_;  // per-CP deltas
  std::uint64_t ops_since_cp_ = 0;
  core::Epoch cp_ = 1;
};

}  // namespace backlog::baseline
