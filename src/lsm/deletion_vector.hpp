// Deletion vector (§5.1), borrowed from C-Store.
//
// Read-store runs are immutable; when a maintenance operation (block
// relocation, volume shrink) must remove back references from the RS without
// rewriting it, the records are registered here instead. The query engine
// wraps every RS stream in a FilteredStream, which makes the suppression
// completely opaque to query-processing logic — exactly the paper's design.
// Compaction consumes the vector: records dropped while writing the new RS
// are removed from it.
//
// The vector is an in-memory ordered index (the paper stores it as a small
// B-tree, "usually entirely cached"); it is persisted to a side file at each
// consistency point so recovery restores it.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "lsm/run_file.hpp"
#include "storage/env.hpp"

namespace backlog::lsm {

class DeletionVector {
 public:
  explicit DeletionVector(std::size_t record_size) : record_size_(record_size) {}

  void insert(std::span<const std::uint8_t> record);
  [[nodiscard]] bool contains(std::span<const std::uint8_t> record) const;
  /// Remove one entry (compaction consumed it). Returns true if present.
  bool erase(std::span<const std::uint8_t> record);

  /// Consume every entry whose leading 8 bytes (big-endian block number)
  /// fall in [block_lo, block_hi) — compaction of a partition clears the
  /// vector for that partition's block range. Returns the count removed.
  std::size_t erase_block_range(std::uint64_t block_lo, std::uint64_t block_hi);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }
  void clear() { entries_.clear(); }

  /// Persist to / restore from a side file (whole-file rewrite; the vector
  /// is small by construction).
  void save(storage::Env& env, const std::string& file_name) const;
  void load(storage::Env& env, const std::string& file_name);

  [[nodiscard]] std::size_t record_size() const noexcept { return record_size_; }

 private:
  std::size_t record_size_;
  std::set<std::vector<std::uint8_t>> entries_;
};

/// Stream adapter that hides records present in the deletion vector.
class FilteredStream final : public RecordStream {
 public:
  FilteredStream(std::unique_ptr<RecordStream> in, const DeletionVector& dv)
      : in_(std::move(in)), dv_(dv) {
    skip();
  }

  [[nodiscard]] bool valid() const override { return in_->valid(); }
  [[nodiscard]] std::span<const std::uint8_t> record() const override {
    return in_->record();
  }
  void next() override {
    in_->next();
    skip();
  }

 private:
  void skip() {
    while (in_->valid() && dv_.contains(in_->record())) in_->next();
  }

  std::unique_ptr<RecordStream> in_;
  const DeletionVector& dv_;
};

}  // namespace backlog::lsm
