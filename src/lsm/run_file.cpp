#include "lsm/run_file.hpp"

#include <cstring>
#include <stdexcept>

#include "util/serde.hpp"

namespace backlog::lsm {

namespace {

using storage::kPageSize;

constexpr std::uint64_t kMagic = 0x424b4c4f4752554eULL;  // "BKLOGRUN"
constexpr std::size_t kMaxLevels = 8;

// Footer layout offsets (single page at the end of the file).
constexpr std::size_t kFooterMagic = 0;
constexpr std::size_t kFooterRecordSize = 8;
constexpr std::size_t kFooterRecordCount = 16;
constexpr std::size_t kFooterLeafPages = 24;
constexpr std::size_t kFooterLevelCount = 32;
constexpr std::size_t kFooterBloomOffset = 40;
constexpr std::size_t kFooterBloomSize = 48;
constexpr std::size_t kFooterLevels = 56;                       // 8 x 24 bytes
constexpr std::size_t kFooterMinMax = kFooterLevels + kMaxLevels * 24;

int prefix_cmp(std::span<const std::uint8_t> record,
               std::span<const std::uint8_t> prefix) {
  return std::memcmp(record.data(), prefix.data(), prefix.size());
}

}  // namespace

RunWriter::RunWriter(storage::Env& env, const std::string& file_name,
                     std::size_t record_size, std::size_t expected_keys,
                     std::size_t bloom_max_bytes)
    : env_(env),
      record_size_(record_size),
      bloom_(util::BloomFilter::sized_for(expected_keys == 0 ? 1 : expected_keys,
                                          bloom_max_bytes)) {
  if (record_size_ == 0 || record_size_ > 1024)
    throw std::invalid_argument("RunWriter: record_size out of range");
  records_per_page_ = kPageSize / record_size_;
  file_ = env_.create_file(file_name);
  page_.assign(kPageSize, 0);
  levels_.emplace_back();  // I1 separators accumulate here
}

void RunWriter::add(std::span<const std::uint8_t> record, std::uint64_t bloom_key) {
  if (finished_) throw std::logic_error("RunWriter: add after finish");
  if (record.size() != record_size_)
    throw std::invalid_argument("RunWriter: wrong record size");
  if (!last_record_.empty() &&
      std::memcmp(last_record_.data(), record.data(), record_size_) > 0)
    throw std::logic_error("RunWriter: records must be added in sorted order");
  if (first_record_.empty()) first_record_.assign(record.begin(), record.end());
  last_record_.assign(record.begin(), record.end());

  if (page_records_ == 0) {
    // First record of a fresh leaf page: remember it as the I1 separator.
    levels_[0].insert(levels_[0].end(), record.begin(), record.end());
  }
  std::memcpy(page_.data() + page_records_ * record_size_, record.data(),
              record_size_);
  ++page_records_;
  ++count_;
  bloom_.insert(bloom_key);
  if (page_records_ == records_per_page_) flush_leaf_page();
}

void RunWriter::flush_leaf_page() {
  if (page_records_ == 0) return;
  file_->append(page_);
  std::memset(page_.data(), 0, page_.size());
  page_records_ = 0;
  ++leaf_pages_;
}

std::uint64_t RunWriter::finish() {
  if (finished_) throw std::logic_error("RunWriter: double finish");
  finished_ = true;
  flush_leaf_page();

  // Build the remaining index levels purely from in-memory separators: level
  // k+1 holds the first entry of every level-k page. No reads required.
  const std::size_t epp = kPageSize / record_size_;  // index entries per page
  while (true) {
    const std::vector<std::uint8_t>& cur = levels_.back();
    const std::size_t entries = cur.size() / record_size_;
    const std::size_t pages = (entries + epp - 1) / epp;
    if (pages <= 1) break;
    std::vector<std::uint8_t> up;
    for (std::size_t p = 0; p < pages; ++p) {
      const std::uint8_t* first = cur.data() + p * epp * record_size_;
      up.insert(up.end(), first, first + record_size_);
    }
    levels_.push_back(std::move(up));
  }
  // A run that fits in one leaf page needs no index at all.
  if (leaf_pages_ <= 1) levels_.clear();
  if (levels_.size() > kMaxLevels)
    throw std::runtime_error("RunWriter: level overflow");

  struct LevelOut {
    std::uint64_t start_page;
    std::uint64_t page_count;
    std::uint64_t entry_count;
  };
  std::vector<LevelOut> level_out;
  std::uint64_t next_page = leaf_pages_;
  std::vector<std::uint8_t> page_buf(kPageSize, 0);
  for (const auto& level : levels_) {
    const std::size_t entries = level.size() / record_size_;
    const std::size_t pages = (entries + epp - 1) / epp;
    level_out.push_back({next_page, pages, entries});
    for (std::size_t p = 0; p < pages; ++p) {
      std::memset(page_buf.data(), 0, page_buf.size());
      const std::size_t lo = p * epp;
      const std::size_t hi = std::min(entries, lo + epp);
      std::memcpy(page_buf.data(), level.data() + lo * record_size_,
                  (hi - lo) * record_size_);
      file_->append(page_buf);
    }
    next_page += pages;
  }

  // Bloom filter (shrunk to the actual key count), padded to a page boundary.
  bloom_.shrink_to_fit(count_ == 0 ? 1 : static_cast<std::size_t>(count_));
  std::vector<std::uint8_t> bloom_bytes;
  bloom_.serialize(bloom_bytes);
  const std::uint64_t bloom_offset = file_->size();
  const std::uint64_t bloom_size = bloom_bytes.size();
  const std::size_t pad = (kPageSize - (bloom_bytes.size() % kPageSize)) % kPageSize;
  bloom_bytes.resize(bloom_bytes.size() + pad, 0);
  file_->append(bloom_bytes);

  // Footer.
  std::vector<std::uint8_t> footer(kPageSize, 0);
  util::put_u64(footer.data() + kFooterMagic, kMagic);
  util::put_u64(footer.data() + kFooterRecordSize, record_size_);
  util::put_u64(footer.data() + kFooterRecordCount, count_);
  util::put_u64(footer.data() + kFooterLeafPages, leaf_pages_);
  util::put_u64(footer.data() + kFooterLevelCount, level_out.size());
  util::put_u64(footer.data() + kFooterBloomOffset, bloom_offset);
  util::put_u64(footer.data() + kFooterBloomSize, bloom_size);
  for (std::size_t i = 0; i < level_out.size(); ++i) {
    std::uint8_t* p = footer.data() + kFooterLevels + i * 24;
    util::put_u64(p, level_out[i].start_page);
    util::put_u64(p + 8, level_out[i].page_count);
    util::put_u64(p + 16, level_out[i].entry_count);
  }
  if (kFooterMinMax + 2 * record_size_ > kPageSize)
    throw std::runtime_error("RunWriter: record too large for footer min/max");
  if (count_ > 0) {
    std::memcpy(footer.data() + kFooterMinMax, first_record_.data(), record_size_);
    std::memcpy(footer.data() + kFooterMinMax + record_size_, last_record_.data(),
                record_size_);
  }
  file_->append(footer);
  file_->sync();
  file_size_ = file_->size();
  file_->close();
  return count_;
}

RunFile::RunFile(storage::Env& env, std::string file_name,
                 storage::BlockCache& cache)
    : env_(env), name_(std::move(file_name)), cache_(cache) {
  file_ = env_.open_file(name_);
  if (file_->size() < kPageSize || file_->size() % kPageSize != 0)
    throw std::runtime_error("RunFile: malformed file " + name_);
  std::vector<std::uint8_t> footer(kPageSize);
  const std::uint64_t footer_page = file_->size() / kPageSize - 1;
  file_->read_page(footer_page, footer);
  if (util::get_u64(footer.data() + kFooterMagic) != kMagic)
    throw std::runtime_error("RunFile: bad magic in " + name_);
  // The footer is untrusted input (a bit-flipped or truncated file must fail
  // loudly, never index with a garbage field): every value is range-checked
  // against the writer's invariants and the actual file size before use.
  const auto corrupt = [this](const char* what) -> std::runtime_error {
    return std::runtime_error(std::string("RunFile: corrupt footer (") + what +
                              ") in " + name_);
  };
  record_size_ = util::get_u64(footer.data() + kFooterRecordSize);
  record_count_ = util::get_u64(footer.data() + kFooterRecordCount);
  leaf_pages_ = util::get_u64(footer.data() + kFooterLeafPages);
  const std::uint64_t level_count = util::get_u64(footer.data() + kFooterLevelCount);
  const std::uint64_t bloom_offset = util::get_u64(footer.data() + kFooterBloomOffset);
  const std::uint64_t bloom_size = util::get_u64(footer.data() + kFooterBloomSize);
  // RunWriter enforces record_size in [1, 1024]; 0 would divide by zero two
  // lines down, and min/max below must both fit in the footer page.
  if (record_size_ == 0 || record_size_ > 1024 ||
      kFooterMinMax + 2 * record_size_ > kPageSize) {
    throw corrupt("record size");
  }
  records_per_page_ = kPageSize / record_size_;
  entries_per_index_page_ = kPageSize / record_size_;
  // Everything before the footer page is data; pages and byte ranges the
  // footer points at must stay inside it.
  const std::uint64_t data_pages = footer_page;
  const std::uint64_t data_bytes = footer_page * kPageSize;
  if (leaf_pages_ > data_pages) throw corrupt("leaf page count");
  if (record_count_ > leaf_pages_ * records_per_page_)
    throw corrupt("record count");
  if (level_count > kMaxLevels) throw corrupt("level count");
  for (std::uint64_t i = 0; i < level_count; ++i) {
    const std::uint8_t* p = footer.data() + kFooterLevels + i * 24;
    const LevelInfo info{util::get_u64(p), util::get_u64(p + 8),
                         util::get_u64(p + 16)};
    if (info.start_page > data_pages ||
        info.page_count > data_pages - info.start_page) {
      throw corrupt("index level page range");
    }
    if (info.entry_count > info.page_count * entries_per_index_page_)
      throw corrupt("index level entry count");
    levels_.push_back(info);
  }
  if (record_count_ > 0) {
    min_record_.assign(footer.data() + kFooterMinMax,
                       footer.data() + kFooterMinMax + record_size_);
    max_record_.assign(footer.data() + kFooterMinMax + record_size_,
                       footer.data() + kFooterMinMax + 2 * record_size_);
  }
  // Bloom range: the subtraction form is overflow-proof (offset + size could
  // wrap); an oversized size must also never drive the allocation below.
  if (bloom_offset > data_bytes || bloom_size > data_bytes - bloom_offset)
    throw corrupt("bloom filter range");
  // Load the Bloom filter eagerly (the paper keeps RS filters resident).
  std::vector<std::uint8_t> bloom_bytes(bloom_size);
  if (bloom_size > 0) file_->read(bloom_offset, bloom_bytes);
  bloom_ = util::BloomFilter::deserialize(bloom_bytes);
}

std::optional<std::vector<std::uint8_t>> RunFile::min_record() const {
  if (record_count_ == 0) return std::nullopt;
  return min_record_;
}

std::optional<std::vector<std::uint8_t>> RunFile::max_record() const {
  if (record_count_ == 0) return std::nullopt;
  return max_record_;
}

std::span<const std::uint8_t> RunFile::record_at(
    std::uint64_t index, std::shared_ptr<const storage::PageBuffer>& page,
    std::uint64_t& cached_page_no) const {
  const std::uint64_t page_no = index / records_per_page_;
  if (page_no != cached_page_no || page == nullptr) {
    page = cache_.get(*file_, page_no);
    cached_page_no = page_no;
  }
  return {page->data() + (index % records_per_page_) * record_size_, record_size_};
}

std::uint64_t RunFile::lower_bound(std::span<const std::uint8_t> prefix) const {
  if (record_count_ == 0) return 0;
  if (prefix.size() > record_size_)
    throw std::invalid_argument("RunFile::lower_bound: prefix too long");

  std::shared_ptr<const storage::PageBuffer> page;
  std::uint64_t cached_page_no = UINT64_MAX;

  // Reads entry `j` of index level `li`.
  auto index_entry = [&](std::size_t li, std::uint64_t j)
      -> std::span<const std::uint8_t> {
    const LevelInfo& info = levels_[li];
    const std::uint64_t page_no = info.start_page + j / entries_per_index_page_;
    if (page_no != cached_page_no || page == nullptr) {
      page = cache_.get(*file_, page_no);
      cached_page_no = page_no;
    }
    return {page->data() + (j % entries_per_index_page_) * record_size_,
            record_size_};
  };

  // Descend from the topmost level, narrowing the child-slice each step.
  std::uint64_t child = 0;  // page index within the next level down
  for (std::size_t li = levels_.size(); li-- > 0;) {
    const LevelInfo& info = levels_[li];
    const std::uint64_t slice_lo =
        (li + 1 == levels_.size()) ? 0 : child * entries_per_index_page_;
    const std::uint64_t slice_hi =
        (li + 1 == levels_.size())
            ? info.entry_count
            : std::min<std::uint64_t>(info.entry_count,
                                      slice_lo + entries_per_index_page_);
    // lower_bound over [slice_lo, slice_hi): first entry >= prefix.
    std::uint64_t lo = slice_lo, hi = slice_hi;
    while (lo < hi) {
      const std::uint64_t mid = lo + (hi - lo) / 2;
      if (prefix_cmp(index_entry(li, mid), prefix) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    child = (lo == slice_lo) ? slice_lo : lo - 1;
  }
  // `child` is now a leaf page index (0 when there are no index levels).
  const std::uint64_t base = child * records_per_page_;
  const std::uint64_t end =
      std::min<std::uint64_t>(record_count_, base + records_per_page_);
  std::uint64_t lo = base, hi = end;
  std::shared_ptr<const storage::PageBuffer> leaf_page;
  std::uint64_t leaf_cached = UINT64_MAX;
  while (lo < hi) {
    const std::uint64_t mid = lo + (hi - lo) / 2;
    if (prefix_cmp(record_at(mid, leaf_page, leaf_cached), prefix) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::span<const std::uint8_t> RunFile::Stream::record() const {
  return run_->record_at(pos_, page_, cached_page_no_);
}

std::unique_ptr<RunFile::Stream> RunFile::stream_from(std::uint64_t start) const {
  auto s = std::make_unique<Stream>();
  s->run_ = this;
  s->pos_ = start;
  return s;
}

std::unique_ptr<RunFile::Stream> RunFile::seek(
    std::span<const std::uint8_t> prefix) const {
  return stream_from(lower_bound(prefix));
}

}  // namespace backlog::lsm
