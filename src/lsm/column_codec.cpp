#include "lsm/column_codec.hpp"

#include <stdexcept>

#include "util/crc32c.hpp"
#include "util/serde.hpp"

namespace backlog::lsm {

namespace {
constexpr std::uint64_t kMagic = 0x424b434f4c435a31ULL;  // "BKCOLZ1"
}

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t* pos) {
  std::uint64_t v = 0;
  int shift = 0;
  while (true) {
    if (*pos >= in.size()) throw std::runtime_error("varint: truncated");
    const std::uint8_t byte = in[(*pos)++];
    if (shift >= 63 && (byte & 0x7e) != 0)
      throw std::runtime_error("varint: overflow");
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) return v;
    shift += 7;
  }
}

std::vector<std::uint8_t> compress_columns(std::span<const std::uint8_t> records,
                                           std::size_t record_size) {
  if (record_size == 0 || record_size % 8 != 0)
    throw std::invalid_argument("compress_columns: record_size must be 8k");
  if (records.size() % record_size != 0)
    throw std::invalid_argument("compress_columns: partial record");
  const std::size_t n = records.size() / record_size;
  const std::size_t columns = record_size / 8;

  std::vector<std::uint8_t> out;
  util::append_u64(out, kMagic);
  util::append_u64(out, n);
  util::append_u64(out, record_size);

  std::vector<std::uint8_t> col;
  for (std::size_t c = 0; c < columns; ++c) {
    col.clear();
    std::uint64_t prev = 0;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v =
          util::get_be64(records.data() + i * record_size + c * 8);
      put_varint(col, zigzag_encode(static_cast<std::int64_t>(v - prev)));
      prev = v;
    }
    util::append_u64(out, col.size());
    out.insert(out.end(), col.begin(), col.end());
  }
  util::append_u32(out, util::crc32c(out.data(), out.size()));
  return out;
}

std::vector<std::uint8_t> decompress_columns(std::span<const std::uint8_t> blob,
                                             std::size_t* record_size_out) {
  if (blob.size() < 28) throw std::runtime_error("column blob: truncated");
  const std::uint32_t want = util::get_u32(blob.data() + blob.size() - 4);
  if (util::crc32c(blob.data(), blob.size() - 4) != want)
    throw std::runtime_error("column blob: checksum mismatch");
  std::size_t pos = 0;
  auto read_u64 = [&]() {
    if (pos + 8 > blob.size()) throw std::runtime_error("column blob: truncated");
    const std::uint64_t v = util::get_u64(blob.data() + pos);
    pos += 8;
    return v;
  };
  if (read_u64() != kMagic) throw std::runtime_error("column blob: bad magic");
  const std::uint64_t n = read_u64();
  const std::uint64_t record_size = read_u64();
  if (record_size == 0 || record_size % 8 != 0)
    throw std::runtime_error("column blob: bad record size");
  const std::size_t columns = record_size / 8;

  std::vector<std::uint8_t> out(n * record_size);
  for (std::size_t c = 0; c < columns; ++c) {
    const std::uint64_t col_bytes = read_u64();
    if (pos + col_bytes > blob.size() - 4)
      throw std::runtime_error("column blob: truncated column");
    const std::span<const std::uint8_t> col(blob.data() + pos, col_bytes);
    std::size_t cpos = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
      prev += static_cast<std::uint64_t>(zigzag_decode(get_varint(col, &cpos)));
      util::put_be64(out.data() + i * record_size + c * 8, prev);
    }
    if (cpos != col_bytes)
      throw std::runtime_error("column blob: trailing column bytes");
    pos += col_bytes;
  }
  if (record_size_out != nullptr) *record_size_out = record_size;
  return out;
}

}  // namespace backlog::lsm
