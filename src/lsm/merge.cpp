#include "lsm/merge.hpp"

#include <cstring>

namespace backlog::lsm {

MergeStream::MergeStream(std::vector<std::unique_ptr<RecordStream>> inputs,
                         std::size_t record_size)
    : inputs_(std::move(inputs)), record_size_(record_size) {
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i] != nullptr && inputs_[i]->valid()) heap_.push_back(i);
  }
  heapify();
}

bool MergeStream::less(std::size_t a, std::size_t b) const {
  const auto ra = inputs_[heap_[a]]->record();
  const auto rb = inputs_[heap_[b]]->record();
  const int c = std::memcmp(ra.data(), rb.data(), record_size_);
  if (c != 0) return c < 0;
  // Tie-break on input index for a deterministic merge order.
  return heap_[a] < heap_[b];
}

void MergeStream::sift_down(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t smallest = i;
    const std::size_t l = 2 * i + 1, r = 2 * i + 2;
    if (l < n && less(l, smallest)) smallest = l;
    if (r < n && less(r, smallest)) smallest = r;
    if (smallest == i) return;
    std::swap(heap_[i], heap_[smallest]);
    i = smallest;
  }
}

void MergeStream::sift_up(std::size_t i) {
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!less(i, parent)) return;
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void MergeStream::heapify() {
  for (std::size_t i = heap_.size(); i-- > 0;) sift_down(i);
}

bool MergeStream::valid() const { return !heap_.empty(); }

std::span<const std::uint8_t> MergeStream::record() const {
  return inputs_[heap_.front()]->record();
}

void MergeStream::next() {
  RecordStream& top = *inputs_[heap_.front()];
  top.next();
  if (!top.valid()) {
    heap_.front() = heap_.back();
    heap_.pop_back();
  }
  if (!heap_.empty()) sift_down(0);
}

DedupStream::DedupStream(std::unique_ptr<RecordStream> in, std::size_t record_size)
    : in_(std::move(in)), record_size_(record_size) {}

void DedupStream::next() {
  std::vector<std::uint8_t> cur(in_->record().begin(), in_->record().end());
  in_->next();
  while (in_->valid() &&
         std::memcmp(cur.data(), in_->record().data(), record_size_) == 0) {
    in_->next();
  }
}

}  // namespace backlog::lsm
