// Read-store run files (§5.1).
//
// A run file is an immutable, densely packed B-tree written bottom-up from
// an already-sorted record stream:
//
//   [leaf pages][I1 pages][I2 pages]...[bloom bytes][footer page]
//
// * Records are fixed-size byte strings totally ordered by memcmp (Backlog
//   encodes record fields big-endian precisely so this holds).
// * Leaf pages hold floor(4096/record_size) records each; record i lives at
//   page i/rpp, slot i%rpp — the tree is *implicit*: internal level k holds
//   the first record of every level-(k-1) page, and because children are
//   physically contiguous the child page number is start + slot index. This
//   mirrors the paper's Leaf/I1/I2 construction: while the leaf file is
//   streamed out, I1 is accumulated in memory, then I2, ... so writing a run
//   requires *zero* disk reads.
// * A Bloom filter over caller-supplied 64-bit keys (Backlog: the physical
//   block number) is serialized before the footer and loaded eagerly on
//   open, so negative point queries cost no page reads at all.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "storage/env.hpp"
#include "storage/block_cache.hpp"
#include "util/bloom.hpp"

namespace backlog::lsm {

/// Abstract sorted stream of fixed-size records; the unit of composition for
/// merges (runs, write-store snapshots, filters all speak this interface).
class RecordStream {
 public:
  virtual ~RecordStream() = default;
  [[nodiscard]] virtual bool valid() const = 0;
  [[nodiscard]] virtual std::span<const std::uint8_t> record() const = 0;
  virtual void next() = 0;
};

/// In-memory stream over a flat, sorted byte buffer of fixed-size records.
class VectorStream final : public RecordStream {
 public:
  VectorStream(std::vector<std::uint8_t> data, std::size_t record_size)
      : data_(std::move(data)), record_size_(record_size) {}

  [[nodiscard]] bool valid() const override { return pos_ < data_.size(); }
  [[nodiscard]] std::span<const std::uint8_t> record() const override {
    return {data_.data() + pos_, record_size_};
  }
  void next() override { pos_ += record_size_; }

 private:
  std::vector<std::uint8_t> data_;
  std::size_t record_size_;
  std::size_t pos_ = 0;
};

/// Streams records (pre-sorted!) into a new run file.
class RunWriter {
 public:
  /// `expected_keys` sizes the Bloom filter (paper rule: 8 bits/key capped
  /// at `bloom_max_bytes`; it is shrunk to fit the actual count at finish).
  RunWriter(storage::Env& env, const std::string& file_name,
            std::size_t record_size, std::size_t expected_keys,
            std::size_t bloom_max_bytes = 32 * 1024);

  /// Append the next record (must be >= the previous one under memcmp);
  /// `bloom_key` is the point-lookup key (Backlog: physical block number).
  void add(std::span<const std::uint8_t> record, std::uint64_t bloom_key);

  /// Flush all levels + bloom + footer. Returns the record count.
  std::uint64_t finish();

  [[nodiscard]] std::uint64_t record_count() const noexcept { return count_; }

  /// Post-finish accessors so the flush path can register run metadata
  /// without re-reading the file (the CP update path must never read disk).
  [[nodiscard]] const util::BloomFilter& bloom() const noexcept { return bloom_; }
  [[nodiscard]] const std::vector<std::uint8_t>& first_record() const noexcept {
    return first_record_;
  }
  [[nodiscard]] const std::vector<std::uint8_t>& last_record() const noexcept {
    return last_record_;
  }
  [[nodiscard]] std::uint64_t file_size() const noexcept { return file_size_; }

 private:
  void flush_leaf_page();

  storage::Env& env_;
  std::unique_ptr<storage::WritableFile> file_;
  std::size_t record_size_;
  std::size_t records_per_page_;
  std::vector<std::uint8_t> page_;                 // current leaf page buffer
  std::size_t page_records_ = 0;
  std::vector<std::vector<std::uint8_t>> levels_;  // I1.. separators, flat
  util::BloomFilter bloom_;
  std::uint64_t count_ = 0;
  std::uint64_t leaf_pages_ = 0;
  std::vector<std::uint8_t> first_record_;  // footer min key
  std::vector<std::uint8_t> last_record_;   // sortedness check + footer max key
  std::uint64_t file_size_ = 0;             // total bytes after finish
  bool finished_ = false;
};

/// Immutable view of a finished run file.
class RunFile {
 public:
  /// Opens the file, reads footer and Bloom filter (charged to IoStats).
  RunFile(storage::Env& env, std::string file_name, storage::BlockCache& cache);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::uint64_t record_count() const noexcept { return record_count_; }
  [[nodiscard]] std::size_t record_size() const noexcept { return record_size_; }
  [[nodiscard]] std::uint64_t size_bytes() const noexcept { return file_->size(); }
  [[nodiscard]] const util::BloomFilter& bloom() const noexcept { return bloom_; }

  /// Bloom check for a point key; false means definitely absent.
  [[nodiscard]] bool may_contain(std::uint64_t bloom_key) const noexcept {
    return bloom_.may_contain(bloom_key);
  }

  /// Smallest/largest record (empty run: both nullopt).
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> min_record() const;
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> max_record() const;

  /// Index of the first record whose prefix-compare with `prefix` is >= 0,
  /// i.e. lower_bound under memcmp over the first prefix.size() bytes.
  /// Descends the implicit B-tree: O(height) page reads.
  [[nodiscard]] std::uint64_t lower_bound(std::span<const std::uint8_t> prefix) const;

  class Stream final : public RecordStream {
   public:
    [[nodiscard]] bool valid() const override { return pos_ < run_->record_count_; }
    [[nodiscard]] std::span<const std::uint8_t> record() const override;
    void next() override { ++pos_; }

   private:
    friend class RunFile;
    const RunFile* run_ = nullptr;
    std::uint64_t pos_ = 0;
    mutable std::shared_ptr<const storage::PageBuffer> page_;
    mutable std::uint64_t cached_page_no_ = UINT64_MAX;
  };

  /// Stream starting at record index `start`.
  [[nodiscard]] std::unique_ptr<Stream> stream_from(std::uint64_t start) const;

  /// Stream from the first record with record-prefix >= `prefix`.
  [[nodiscard]] std::unique_ptr<Stream> seek(std::span<const std::uint8_t> prefix) const;

  /// Full scan.
  [[nodiscard]] std::unique_ptr<Stream> scan() const { return stream_from(0); }

 private:
  friend class Stream;

  [[nodiscard]] std::span<const std::uint8_t> record_at(
      std::uint64_t index, std::shared_ptr<const storage::PageBuffer>& page,
      std::uint64_t& cached_page_no) const;

  storage::Env& env_;
  std::string name_;
  std::unique_ptr<storage::RandomAccessFile> file_;
  storage::BlockCache& cache_;
  std::size_t record_size_ = 0;
  std::size_t records_per_page_ = 0;
  std::uint64_t record_count_ = 0;
  std::uint64_t leaf_pages_ = 0;
  // Internal levels: level[i] = {start_page, page_count}; level 0 = I1.
  struct LevelInfo {
    std::uint64_t start_page;
    std::uint64_t page_count;
    std::uint64_t entry_count;
  };
  std::vector<LevelInfo> levels_;
  std::size_t entries_per_index_page_ = 0;
  util::BloomFilter bloom_;
  std::vector<std::uint8_t> min_record_;
  std::vector<std::uint8_t> max_record_;
};

}  // namespace backlog::lsm
