// Column-wise compression for back-reference record buffers (§8).
//
// The paper's future-work section observes: "Our tables of back reference
// records appear to be highly compressible, especially if we compress them
// by columns" (citing Abadi et al.'s integrating of compression into
// column-oriented execution). This module implements and evaluates that
// idea so the trade-off can be measured (bench/ablation_compression):
//
//  * records are fixed-size rows of big-endian u64 fields (From = 6 columns,
//    Combined = 7);
//  * the encoder transposes rows into columns and encodes each column with
//    zigzag-delta varints — sorted tables have tiny deltas in the leading
//    (block) column and heavily repeated values elsewhere (inode, line,
//    length), which is exactly where columnar delta coding wins;
//  * the blob is self-describing and checksummed.
//
// The codec is lossless and order-preserving: decompress() returns the
// byte-identical record buffer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace backlog::lsm {

/// Compress a flat buffer of `record_size`-byte records (record_size must be
/// a non-zero multiple of 8). Returns the self-describing blob.
std::vector<std::uint8_t> compress_columns(std::span<const std::uint8_t> records,
                                           std::size_t record_size);

/// Inverse of compress_columns. Throws std::runtime_error on a corrupt blob.
std::vector<std::uint8_t> decompress_columns(std::span<const std::uint8_t> blob,
                                             std::size_t* record_size_out = nullptr);

/// Varint primitives (exposed for tests and reuse).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
std::uint64_t get_varint(std::span<const std::uint8_t> in, std::size_t* pos);

/// Zigzag mapping of signed deltas onto unsigned varint space.
constexpr std::uint64_t zigzag_encode(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
constexpr std::int64_t zigzag_decode(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>((v >> 1) ^ (~(v & 1) + 1));
}

}  // namespace backlog::lsm
