// K-way merge over sorted record streams.
//
// Used by compaction (merge all Level-0 runs, §5.2) and by queries (merge
// run files + write-store snapshot into one sorted view). Duplicate records
// across inputs are *kept* — Backlog tables are multisets (the same
// (block,inode,offset,line) key legitimately recurs with different epochs,
// and those epochs are part of the record bytes anyway).
#pragma once

#include <memory>
#include <vector>

#include "lsm/run_file.hpp"

namespace backlog::lsm {

class MergeStream final : public RecordStream {
 public:
  /// Streams must all produce records of `record_size` bytes in memcmp order.
  MergeStream(std::vector<std::unique_ptr<RecordStream>> inputs,
              std::size_t record_size);

  [[nodiscard]] bool valid() const override;
  [[nodiscard]] std::span<const std::uint8_t> record() const override;
  void next() override;

 private:
  void sift_down(std::size_t i);
  void sift_up(std::size_t i);
  [[nodiscard]] bool less(std::size_t a, std::size_t b) const;
  void heapify();

  std::vector<std::unique_ptr<RecordStream>> inputs_;
  std::vector<std::size_t> heap_;  // indexes into inputs_; min-heap by record
  std::size_t record_size_;
};

/// Wraps a stream, dropping exact-duplicate consecutive records. Compaction
/// uses this to collapse records that were re-written by earlier merges.
class DedupStream final : public RecordStream {
 public:
  DedupStream(std::unique_ptr<RecordStream> in, std::size_t record_size);

  [[nodiscard]] bool valid() const override { return in_->valid(); }
  [[nodiscard]] std::span<const std::uint8_t> record() const override {
    return in_->record();
  }
  void next() override;

 private:
  std::unique_ptr<RecordStream> in_;
  std::size_t record_size_;
};

}  // namespace backlog::lsm
