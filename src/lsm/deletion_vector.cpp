#include "lsm/deletion_vector.hpp"

#include <stdexcept>

#include "util/serde.hpp"

namespace backlog::lsm {

void DeletionVector::insert(std::span<const std::uint8_t> record) {
  if (record.size() != record_size_)
    throw std::invalid_argument("DeletionVector: wrong record size");
  entries_.emplace(record.begin(), record.end());
}

bool DeletionVector::contains(std::span<const std::uint8_t> record) const {
  if (entries_.empty()) return false;
  // Heterogeneous lookup without allocating: std::set<vector> requires a
  // key; the vector here is small (one record) and only built when the
  // vector is non-empty, which is rare in normal operation.
  std::vector<std::uint8_t> key(record.begin(), record.end());
  return entries_.contains(key);
}

bool DeletionVector::erase(std::span<const std::uint8_t> record) {
  std::vector<std::uint8_t> key(record.begin(), record.end());
  return entries_.erase(key) > 0;
}

std::size_t DeletionVector::erase_block_range(std::uint64_t block_lo,
                                              std::uint64_t block_hi) {
  std::vector<std::uint8_t> lo_key(record_size_, 0);
  util::put_be64(lo_key.data(), block_lo);
  std::size_t removed = 0;
  for (auto it = entries_.lower_bound(lo_key); it != entries_.end();) {
    if (util::get_be64(it->data()) >= block_hi) break;
    it = entries_.erase(it);
    ++removed;
  }
  return removed;
}

void DeletionVector::save(storage::Env& env, const std::string& file_name) const {
  std::vector<std::uint8_t> out;
  util::append_u64(out, entries_.size());
  util::append_u64(out, record_size_);
  for (const auto& e : entries_) out.insert(out.end(), e.begin(), e.end());
  auto file = env.create_file(file_name);
  file->append(out);
  file->sync();
}

void DeletionVector::load(storage::Env& env, const std::string& file_name) {
  entries_.clear();
  if (!env.file_exists(file_name)) return;
  auto file = env.open_file(file_name);
  std::vector<std::uint8_t> buf(file->size());
  if (buf.size() < 16) return;
  file->read(0, buf);
  const std::uint64_t count = util::get_u64(buf.data());
  const std::uint64_t rec_size = util::get_u64(buf.data() + 8);
  if (rec_size != record_size_)
    throw std::runtime_error("DeletionVector: record size mismatch on load");
  if (buf.size() < 16 + count * rec_size)
    throw std::runtime_error("DeletionVector: truncated file");
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint8_t* p = buf.data() + 16 + i * rec_size;
    entries_.emplace(p, p + rec_size);
  }
}

}  // namespace backlog::lsm
