// NFS-trace support (§6.2.2).
//
// The paper replays the first 16 days of the EECS03 trace (Harvard EECS
// home directories, Feb-Mar 2003). That trace is not redistributable, so —
// per the substitution policy in DESIGN.md — this module provides:
//
//  * a simple timestamped trace format (and text serialization, so users can
//    supply real traces);
//  * a deterministic EECS03-like *synthesizer* reproducing the properties
//    the experiment depends on: a write-rich op mix (1 write : 2 reads, only
//    writes reach the block layer), diurnal load (low-load periods produce
//    the per-op overhead spikes of Fig. 7), a truncate/setattr-heavy
//    interval (the hours 200–250 dip, where most ops cancel within a CP),
//    and a 90%-small-file population;
//  * a player that advances simulated time (so the 10-second CP trigger
//    fires exactly as in the paper) and applies each op to fsim.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <unordered_map>
#include <vector>

#include "fsim/fsim.hpp"
#include "util/random.hpp"

namespace backlog::fsim {

enum class TraceOpType : std::uint8_t {
  kCreate,    ///< create file of `a` blocks; binds file slot `file`
  kWrite,     ///< overwrite `b` blocks at offset `a` of slot `file`
  kAppend,    ///< append `a` blocks to slot `file`
  kTruncate,  ///< truncate slot `file` to `a` blocks (setattr)
  kRemove,    ///< delete slot `file`
};

struct TraceOp {
  double timestamp = 0;  ///< seconds from trace start
  TraceOpType type = TraceOpType::kCreate;
  std::uint64_t file = 0;  ///< trace-local file slot id
  std::uint64_t a = 0;
  std::uint64_t b = 0;
};

struct Trace {
  std::vector<TraceOp> ops;
  double duration_seconds = 0;

  /// Text round-trip: one op per line, "ts type file a b".
  void save(std::ostream& os) const;
  static Trace load(std::istream& is);
};

struct TraceSynthOptions {
  double hours = 16.0 * 24.0;       ///< trace length (paper: 16 days)
  double ops_per_second_peak = 40;  ///< file-level op rate at peak load
  double diurnal_min_fraction = 0.06;  ///< night load as a fraction of peak
  /// Truncate-heavy interval (fraction of the trace): within it most ops are
  /// setattr-style truncates that largely cancel within a CP (Fig. 7 dip).
  double truncate_phase_begin = 0.55;
  double truncate_phase_end = 0.70;
  double small_file_fraction = 0.90;
  std::size_t max_live_files = 8000;
  std::uint64_t seed = 2003;
};

/// Deterministic EECS03-like trace (see header comment).
Trace synthesize_eecs03_like(const TraceSynthOptions& options);

/// Statistics the player reports per simulated hour (the x-axis of Fig. 7/8).
struct TraceHourStats {
  double hour = 0;
  std::uint64_t block_ops = 0;       ///< adds + removes reaching the sink
  std::uint64_t pages_written = 0;   ///< back-ref page writes in this hour
  std::uint64_t cp_micros = 0;       ///< CP flush wall time in this hour
  std::uint64_t cps = 0;
  std::uint64_t db_bytes = 0;        ///< back-ref footprint at hour end
  std::uint64_t data_bytes = 0;      ///< physical data at hour end
};

class TracePlayer {
 public:
  TracePlayer(FileSystem& fs, LineId line);

  /// Replay the whole trace; returns per-hour stats. `on_hour`, if given, is
  /// called after each simulated hour (Fig. 8 runs maintenance there).
  std::vector<TraceHourStats> play(
      const Trace& trace,
      const std::function<void(std::uint64_t hour_index)>& on_hour = {});

 private:
  void apply(const TraceOp& op);

  FileSystem& fs_;
  LineId line_;
  std::unordered_map<std::uint64_t, InodeNo> slots_;
};

}  // namespace backlog::fsim
