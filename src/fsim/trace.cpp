#include "fsim/trace.hpp"

#include <cmath>
#include <functional>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

namespace backlog::fsim {

namespace {
const char* type_name(TraceOpType t) {
  switch (t) {
    case TraceOpType::kCreate: return "create";
    case TraceOpType::kWrite: return "write";
    case TraceOpType::kAppend: return "append";
    case TraceOpType::kTruncate: return "truncate";
    case TraceOpType::kRemove: return "remove";
  }
  return "?";
}

TraceOpType parse_type(const std::string& s) {
  if (s == "create") return TraceOpType::kCreate;
  if (s == "write") return TraceOpType::kWrite;
  if (s == "append") return TraceOpType::kAppend;
  if (s == "truncate") return TraceOpType::kTruncate;
  if (s == "remove") return TraceOpType::kRemove;
  throw std::runtime_error("trace: unknown op type '" + s + "'");
}
}  // namespace

void Trace::save(std::ostream& os) const {
  os << "# backlog-trace v1 duration=" << duration_seconds << "\n";
  for (const TraceOp& op : ops) {
    os << op.timestamp << ' ' << type_name(op.type) << ' ' << op.file << ' '
       << op.a << ' ' << op.b << '\n';
  }
}

Trace Trace::load(std::istream& is) {
  Trace t;
  std::string line;
  while (std::getline(is, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    TraceOp op;
    std::string type;
    if (!(ls >> op.timestamp >> type >> op.file >> op.a >> op.b))
      throw std::runtime_error("trace: malformed line: " + line);
    op.type = parse_type(type);
    t.ops.push_back(op);
  }
  if (!t.ops.empty()) t.duration_seconds = t.ops.back().timestamp;
  return t;
}

Trace synthesize_eecs03_like(const TraceSynthOptions& options) {
  util::Rng rng(options.seed);
  Trace trace;
  const double total_seconds = options.hours * 3600.0;
  trace.duration_seconds = total_seconds;

  // Live file-slot population model.
  std::vector<std::uint64_t> live;
  std::vector<std::uint64_t> live_size;  // blocks, parallel to `live`
  std::uint64_t next_slot = 0;

  double t = 0;
  while (t < total_seconds) {
    const double phase = t / total_seconds;
    const double day_phase = std::fmod(t, 24.0 * 3600.0) / (24.0 * 3600.0);
    // Diurnal curve: peak mid-day, trough at night.
    const double diurnal =
        options.diurnal_min_fraction +
        (1.0 - options.diurnal_min_fraction) *
            0.5 * (1.0 - std::cos(2.0 * M_PI * day_phase));
    const double rate = options.ops_per_second_peak * diurnal;
    // Exponential inter-arrival.
    t += -std::log(1.0 - rng.uniform()) / std::max(rate, 1e-3);
    if (t >= total_seconds) break;

    const bool truncate_phase =
        phase >= options.truncate_phase_begin && phase < options.truncate_phase_end;

    TraceOp op;
    op.timestamp = t;
    double w_create = 0.30, w_write = 0.38, w_append = 0.12, w_trunc = 0.06,
           w_remove = 0.14;
    if (truncate_phase) {
      // The §6.2.2 dip: a burst of setattr (truncate) + rewrite activity
      // where most block references cancel within one CP.
      w_create = 0.10;
      w_write = 0.25;
      w_append = 0.05;
      w_trunc = 0.50;
      w_remove = 0.10;
    }
    if (live.empty() || live.size() < 16) {
      w_create = 1.0;
      w_write = w_append = w_trunc = w_remove = 0;
    } else if (live.size() >= options.max_live_files) {
      w_remove += w_create;
      w_create = 0;
    }
    const std::size_t kind =
        util::sample_discrete(rng, {w_create, w_write, w_append, w_trunc, w_remove});
    switch (kind) {
      case 0: {
        op.type = TraceOpType::kCreate;
        op.file = next_slot++;
        op.a = rng.chance(options.small_file_fraction) ? rng.between(1, 8)
                                                       : rng.between(16, 128);
        live.push_back(op.file);
        live_size.push_back(op.a);
        break;
      }
      case 1: {
        const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
        op.type = TraceOpType::kWrite;
        op.file = live[i];
        const std::uint64_t size = std::max<std::uint64_t>(live_size[i], 1);
        op.a = rng.below(size);
        op.b = 1 + rng.below(std::min<std::uint64_t>(size - op.a, 8));
        break;
      }
      case 2: {
        const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
        op.type = TraceOpType::kAppend;
        op.file = live[i];
        op.a = 1 + rng.below(4);
        live_size[i] += op.a;
        break;
      }
      case 3: {
        const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
        op.type = TraceOpType::kTruncate;
        op.file = live[i];
        op.a = live_size[i] / 2;
        live_size[i] = op.a;
        // In the truncate phase, immediately regrow: churn that cancels
        // within a CP (this is what produces the Fig. 7 dip).
        break;
      }
      default: {
        const std::size_t i = static_cast<std::size_t>(rng.below(live.size()));
        op.type = TraceOpType::kRemove;
        op.file = live[i];
        live[i] = live.back();
        live.pop_back();
        live_size[i] = live_size.back();
        live_size.pop_back();
        break;
      }
    }
    trace.ops.push_back(op);
  }
  return trace;
}

TracePlayer::TracePlayer(FileSystem& fs, LineId line) : fs_(fs), line_(line) {}

void TracePlayer::apply(const TraceOp& op) {
  switch (op.type) {
    case TraceOpType::kCreate: {
      slots_[op.file] = fs_.create_file(line_, op.a);
      break;
    }
    case TraceOpType::kWrite: {
      auto it = slots_.find(op.file);
      if (it == slots_.end()) return;
      fs_.write_file(line_, it->second, op.a, op.b);
      break;
    }
    case TraceOpType::kAppend: {
      auto it = slots_.find(op.file);
      if (it == slots_.end()) return;
      const std::uint64_t size = fs_.file_size_blocks(line_, it->second);
      fs_.write_file(line_, it->second, size, op.a);
      break;
    }
    case TraceOpType::kTruncate: {
      auto it = slots_.find(op.file);
      if (it == slots_.end()) return;
      fs_.truncate_file(line_, it->second, op.a);
      break;
    }
    case TraceOpType::kRemove: {
      auto it = slots_.find(op.file);
      if (it == slots_.end()) return;
      fs_.delete_file(line_, it->second);
      slots_.erase(it);
      break;
    }
  }
}

std::vector<TraceHourStats> TracePlayer::play(
    const Trace& trace,
    const std::function<void(std::uint64_t hour_index)>& on_hour) {
  std::vector<TraceHourStats> hours;
  TraceHourStats cur;
  std::uint64_t hour_index = 0;
  double clock = 0;
  std::uint64_t ops_at_hour_start =
      fs_.stats().block_writes + fs_.stats().block_frees;

  auto close_hour = [&]() {
    cur.hour = static_cast<double>(hour_index + 1);
    cur.block_ops =
        fs_.stats().block_writes + fs_.stats().block_frees - ops_at_hour_start;
    cur.db_bytes = fs_.has_db() ? fs_.db().stats().db_bytes : 0;
    cur.data_bytes = fs_.stats().data_bytes();
    hours.push_back(cur);
    if (on_hour) on_hour(hour_index);
    ++hour_index;
    cur = TraceHourStats{};
    ops_at_hour_start = fs_.stats().block_writes + fs_.stats().block_frees;
  };

  for (const TraceOp& op : trace.ops) {
    // Advance simulated time in CP-interval steps so the 10 s trigger fires
    // at the right moments, and close out whole hours as we pass them.
    while (clock < op.timestamp) {
      const double hour_end = (hour_index + 1) * 3600.0;
      const double step = std::min(op.timestamp, hour_end) - clock;
      fs_.advance_time(step);
      clock += step;
      if (auto s = fs_.maybe_consistency_point()) {
        cur.pages_written += s->pages_written;
        cur.cp_micros += s->wall_micros;
        ++cur.cps;
      }
      if (clock >= hour_end) close_hour();
    }
    apply(op);
    if (auto s = fs_.maybe_consistency_point()) {
      cur.pages_written += s->pages_written;
      cur.cp_micros += s->wall_micros;
      ++cur.cps;
    }
  }
  close_hour();
  return hours;
}

}  // namespace backlog::fsim
