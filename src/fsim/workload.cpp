#include "fsim/workload.hpp"

#include <algorithm>
#include <stdexcept>

namespace backlog::fsim {

WorkloadGenerator::WorkloadGenerator(FileSystem& fs, LineId line,
                                     WorkloadOptions options)
    : fs_(fs), line_(line), options_(options), rng_(options.seed) {}

void WorkloadGenerator::adopt_existing_files() {
  files_ = fs_.list_files(line_);
}

std::uint64_t WorkloadGenerator::pick_file_size() {
  if (rng_.chance(options_.small_file_fraction)) {
    return rng_.between(options_.small_blocks_min, options_.small_blocks_max);
  }
  return rng_.between(options_.large_blocks_min, options_.large_blocks_max);
}

InodeNo WorkloadGenerator::pick_victim() {
  const std::size_t i = static_cast<std::size_t>(rng_.below(files_.size()));
  return files_[i];
}

std::uint64_t WorkloadGenerator::step() {
  const std::uint64_t writes_before = fs_.stats().block_writes;

  // Near the population cap, convert creates into deletes to stay bounded.
  double w_create = options_.w_create;
  double w_delete = options_.w_delete;
  if (files_.size() >= options_.max_live_files) {
    w_delete += w_create;
    w_create = 0;
  } else if (files_.empty()) {
    w_create += w_delete;
    w_delete = 0;
  }
  const std::vector<double> weights = {w_create, w_delete, options_.w_overwrite,
                                       options_.w_append, options_.w_truncate};
  switch (files_.empty() ? 0 : util::sample_discrete(rng_, weights)) {
    case 0: {  // create
      files_.push_back(fs_.create_file(line_, pick_file_size()));
      break;
    }
    case 1: {  // delete
      const std::size_t i = static_cast<std::size_t>(rng_.below(files_.size()));
      fs_.delete_file(line_, files_[i]);
      files_[i] = files_.back();
      files_.pop_back();
      break;
    }
    case 2: {  // overwrite a random range of an existing file
      const InodeNo ino = pick_victim();
      const std::uint64_t size = fs_.file_size_blocks(line_, ino);
      if (size == 0) {
        fs_.write_file(line_, ino, 0, 1);
        break;
      }
      const std::uint64_t off = rng_.below(size);
      const std::uint64_t cnt = 1 + rng_.below(std::min<std::uint64_t>(
                                        size - off, 8));
      fs_.write_file(line_, ino, off, cnt);
      break;
    }
    case 3: {  // append
      const InodeNo ino = pick_victim();
      const std::uint64_t size = fs_.file_size_blocks(line_, ino);
      fs_.write_file(line_, ino, size, 1 + rng_.below(4));
      break;
    }
    case 4: {  // truncate (the setattr-heavy behaviour of §6.2.2)
      const InodeNo ino = pick_victim();
      const std::uint64_t size = fs_.file_size_blocks(line_, ino);
      fs_.truncate_file(line_, ino, size / 2);
      break;
    }
    default: break;
  }
  return fs_.stats().block_writes - writes_before;
}

void WorkloadGenerator::run_block_writes(std::uint64_t block_writes) {
  const std::uint64_t target = fs_.stats().block_writes + block_writes;
  while (fs_.stats().block_writes < target) step();
}

void SnapshotScheduler::on_cp(std::uint64_t cp_index) {
  if (policy_.nightly_every_cps > 0 &&
      cp_index % policy_.nightly_every_cps == 0) {
    nightly_.push_back(fs_.take_snapshot(line_));
    if (nightly_.size() > policy_.keep_nightly) {
      fs_.delete_snapshot(line_, nightly_.front());
      nightly_.erase(nightly_.begin());
    }
    return;  // a nightly CP also satisfies the hourly cadence
  }
  if (policy_.hourly_every_cps > 0 && cp_index % policy_.hourly_every_cps == 0) {
    hourly_.push_back(fs_.take_snapshot(line_));
    if (hourly_.size() > policy_.keep_hourly) {
      fs_.delete_snapshot(line_, hourly_.front());
      hourly_.erase(hourly_.begin());
    }
  }
}

CloneChurner::CloneChurner(FileSystem& fs, LineId parent_line, ClonePolicy policy,
                           const WorkloadOptions& wl_options)
    : fs_(fs),
      parent_line_(parent_line),
      policy_(policy),
      wl_options_(wl_options),
      rng_(policy.seed) {}

void CloneChurner::on_cp(const std::vector<Epoch>& available_snapshots) {
  if (!rng_.chance(policy_.clones_per_cp)) return;
  if (clones_.size() >= policy_.max_live_clones) {
    // Retire the oldest clone to make room (delete-clone path, §4.2.2).
    LiveClone victim = std::move(clones_.front());
    clones_.erase(clones_.begin());
    fs_.delete_clone_head(victim.line);
    if (clones_.size() >= policy_.max_live_clones) return;
  }
  if (available_snapshots.empty()) return;
  const Epoch version =
      available_snapshots[rng_.below(available_snapshots.size())];
  const LineId clone = fs_.create_clone(parent_line_, version);
  ++created_;
  WorkloadOptions wl = wl_options_;
  wl.seed = rng_.next();
  auto gen = std::make_unique<WorkloadGenerator>(fs_, clone, wl);
  gen->adopt_existing_files();
  // Dirty the clone: overwrites of inherited blocks produce the To-override
  // records that exercise structural inheritance.
  gen->run_block_writes(policy_.clone_writes);
  clones_.push_back({clone, std::move(gen)});
}

WorkloadOptions dbench_preset(std::uint64_t seed) {
  // CIFS file service: mixed create/write/delete with medium files and a
  // strong overwrite component.
  WorkloadOptions w;
  w.w_create = 0.25;
  w.w_delete = 0.20;
  w.w_overwrite = 0.35;
  w.w_append = 0.15;
  w.w_truncate = 0.05;
  w.small_file_fraction = 0.70;
  w.small_blocks_min = 1;
  w.small_blocks_max = 16;
  w.large_blocks_min = 32;
  w.large_blocks_max = 128;
  w.seed = seed;
  return w;
}

WorkloadOptions varmail_preset(std::uint64_t seed) {
  // Mail spool: many small files, append-heavy (delivery) with frequent
  // deletes (mailbox cleanup) — FileBench /var/mail personality.
  WorkloadOptions w;
  w.w_create = 0.35;
  w.w_delete = 0.30;
  w.w_overwrite = 0.05;
  w.w_append = 0.30;
  w.w_truncate = 0.00;
  w.small_file_fraction = 0.98;
  w.small_blocks_min = 1;
  w.small_blocks_max = 4;
  w.large_blocks_min = 8;
  w.large_blocks_max = 32;
  w.seed = seed;
  return w;
}

WorkloadOptions postmark_preset(std::uint64_t seed) {
  // PostMark: small-file create/delete churn with short appends.
  WorkloadOptions w;
  w.w_create = 0.40;
  w.w_delete = 0.38;
  w.w_overwrite = 0.10;
  w.w_append = 0.12;
  w.w_truncate = 0.00;
  w.small_file_fraction = 0.95;
  w.small_blocks_min = 1;
  w.small_blocks_max = 8;
  w.large_blocks_min = 8;
  w.large_blocks_max = 64;
  w.seed = seed;
  return w;
}

}  // namespace backlog::fsim
