#include "fsim/fsim.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace backlog::fsim {

FileSystem::FileSystem(storage::Env& env, FsimOptions options,
                       core::BacklogOptions backlog_options)
    : options_(options), rng_(options.rng_seed) {
  db_ = std::make_unique<core::BacklogDb>(env, backlog_options);
  own_sink_ = std::make_unique<BacklogSink>(*db_);
  sink_ = own_sink_.get();
  zipf_ = std::make_unique<util::ZipfSampler>(
      std::max<std::uint64_t>(options_.dedup_pool_size, 1),
      options_.dedup_zipf_alpha);
  live_.emplace(0, Image{});
}

FileSystem::FileSystem(FsimOptions options, BackrefSink& sink)
    : options_(options), sink_(&sink), rng_(options.rng_seed) {
  own_registry_ = std::make_unique<core::SnapshotRegistry>();
  zipf_ = std::make_unique<util::ZipfSampler>(
      std::max<std::uint64_t>(options_.dedup_pool_size, 1),
      options_.dedup_zipf_alpha);
  live_.emplace(0, Image{});
}

FileSystem::~FileSystem() = default;

core::SnapshotRegistry& FileSystem::registry() {
  return db_ != nullptr ? db_->registry() : *own_registry_;
}

const core::SnapshotRegistry& FileSystem::registry() const {
  return db_ != nullptr ? db_->registry() : *own_registry_;
}

core::BacklogDb& FileSystem::db() {
  if (db_ == nullptr)
    throw std::logic_error("FileSystem: no BacklogDb in baseline-sink mode");
  return *db_;
}

// --- block allocator ---------------------------------------------------------

void FileSystem::ref_block(BlockNo b) { ++block_refs_[b]; }

void FileSystem::unref_block(BlockNo b) {
  auto it = block_refs_.find(b);
  if (it == block_refs_.end())
    throw std::logic_error("fsim: unref of unallocated block");
  if (--it->second == 0) {
    block_refs_.erase(it);
    free_list_.push_back(b);
    --stats_.allocated_blocks;
  }
}

BlockNo FileSystem::allocate_or_dedup(bool* was_dedup) {
  *was_dedup = false;
  if (options_.dedup_fraction > 0 && !dedup_pool_.empty() &&
      rng_.chance(options_.dedup_fraction)) {
    // Pick a share target with Zipf skew over the recent-block pool; rank 1
    // maps to the most recently written slot.
    const std::uint64_t rank = zipf_->sample(rng_) - 1;
    if (rank < dedup_pool_.size()) {
      const std::size_t idx =
          (dedup_pool_pos_ + dedup_pool_.size() - 1 - rank) % dedup_pool_.size();
      const BlockNo target = dedup_pool_[idx];
      if (block_refs_.contains(target)) {
        *was_dedup = true;
        ++stats_.dedup_hits;
        return target;
      }
    }
  }
  BlockNo b;
  if (!free_list_.empty()) {
    b = free_list_.back();
    free_list_.pop_back();
  } else {
    b = next_block_++;
  }
  ++stats_.allocated_blocks;
  if (dedup_pool_.size() < options_.dedup_pool_size) {
    dedup_pool_.push_back(b);
  } else if (!dedup_pool_.empty()) {
    dedup_pool_[dedup_pool_pos_] = b;
    dedup_pool_pos_ = (dedup_pool_pos_ + 1) % dedup_pool_.size();
  }
  return b;
}

// --- pointer bookkeeping -------------------------------------------------------

void FileSystem::add_pointer(LineId line, InodeNo inode, std::uint64_t offset,
                             BlockNo b) {
  BackrefKey key;
  key.block = b;
  key.inode = inode;
  key.offset = offset;
  key.length = 1;
  key.line = line;
  sink_->add_reference(key);
  journal_.push_back({true, key});
  ref_block(b);
  ++stats_.block_writes;
  ++writes_since_cp_;
}

void FileSystem::remove_pointer(LineId line, InodeNo inode, std::uint64_t offset,
                                BlockNo b) {
  BackrefKey key;
  key.block = b;
  key.inode = inode;
  key.offset = offset;
  key.length = 1;
  key.line = line;
  sink_->remove_reference(key);
  journal_.push_back({false, key});
  unref_block(b);
  ++stats_.block_frees;
}

void FileSystem::ref_image(const Image& img) {
  for (const auto& [ino, file] : img) {
    for (const BlockNo b : file->blocks) ref_block(b);
  }
}

void FileSystem::unref_image(const Image& img) {
  for (const auto& [ino, file] : img) {
    for (const BlockNo b : file->blocks) unref_block(b);
  }
}

// --- namespace operations -------------------------------------------------------

FileNode& FileSystem::mutable_file(LineId line, InodeNo inode) {
  auto lit = live_.find(line);
  if (lit == live_.end())
    throw std::invalid_argument("fsim: line has no live head");
  auto fit = lit->second.find(inode);
  if (fit == lit->second.end())
    throw std::invalid_argument("fsim: no such file");
  // Copy-on-write: snapshot images share the FileNode; clone it if shared.
  if (fit->second.use_count() > 1) {
    fit->second = std::make_shared<FileNode>(*fit->second);
  }
  return const_cast<FileNode&>(*fit->second);
}

InodeNo FileSystem::create_file(LineId line, std::uint64_t num_blocks) {
  auto lit = live_.find(line);
  if (lit == live_.end())
    throw std::invalid_argument("fsim: line has no live head");
  const InodeNo inode = next_inode_++;
  auto node = std::make_shared<FileNode>();
  node->blocks.reserve(num_blocks);
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    bool dedup = false;
    const BlockNo b = allocate_or_dedup(&dedup);
    node->blocks.push_back(b);
    add_pointer(line, inode, i, b);
  }
  lit->second.emplace(inode, std::move(node));
  ++stats_.files_live;
  return inode;
}

void FileSystem::write_file(LineId line, InodeNo inode, std::uint64_t offset,
                            std::uint64_t count) {
  FileNode& file = mutable_file(line, inode);
  if (offset + count > file.blocks.size()) file.blocks.resize(offset + count, 0);
  for (std::uint64_t i = offset; i < offset + count; ++i) {
    const BlockNo old = file.blocks[i];
    if (old != 0) remove_pointer(line, inode, i, old);
    bool dedup = false;
    const BlockNo b = allocate_or_dedup(&dedup);
    file.blocks[i] = b;
    add_pointer(line, inode, i, b);
  }
}

void FileSystem::truncate_file(LineId line, InodeNo inode,
                               std::uint64_t new_blocks) {
  FileNode& file = mutable_file(line, inode);
  if (new_blocks >= file.blocks.size()) return;
  for (std::uint64_t i = new_blocks; i < file.blocks.size(); ++i) {
    if (file.blocks[i] != 0) remove_pointer(line, inode, i, file.blocks[i]);
  }
  file.blocks.resize(new_blocks);
}

void FileSystem::delete_file(LineId line, InodeNo inode) {
  truncate_file(line, inode, 0);
  live_.at(line).erase(inode);
  --stats_.files_live;
}

bool FileSystem::file_exists(LineId line, InodeNo inode) const {
  auto lit = live_.find(line);
  return lit != live_.end() && lit->second.contains(inode);
}

std::uint64_t FileSystem::file_size_blocks(LineId line, InodeNo inode) const {
  return live_.at(line).at(inode)->blocks.size();
}

std::vector<InodeNo> FileSystem::list_files(LineId line) const {
  std::vector<InodeNo> out;
  auto lit = live_.find(line);
  if (lit == live_.end()) return out;
  out.reserve(lit->second.size());
  for (const auto& [ino, file] : lit->second) out.push_back(ino);
  return out;
}

// --- snapshots and clones ---------------------------------------------------

Epoch FileSystem::take_snapshot(LineId line) {
  const Image& img = live_image(line);
  const Epoch version = registry().take_snapshot(line);
  snapshots_[line][version] = img;  // shared_ptr copies: O(#files)
  ref_image(img);
  return version;
}

void FileSystem::delete_snapshot(LineId line, Epoch version) {
  auto lit = snapshots_.find(line);
  if (lit == snapshots_.end() || !lit->second.contains(version))
    throw std::invalid_argument("fsim: no such snapshot");
  registry().delete_snapshot(line, version);
  unref_image(lit->second.at(version));
  lit->second.erase(version);
}

LineId FileSystem::create_clone(LineId line, Epoch version) {
  auto lit = snapshots_.find(line);
  if (lit == snapshots_.end() || !lit->second.contains(version))
    throw std::invalid_argument("fsim: cannot clone a non-retained snapshot");
  const LineId clone = registry().create_clone(line, version);
  const Image& img = lit->second.at(version);
  live_.emplace(clone, img);
  ref_image(img);
  stats_.files_live += img.size();
  // No back-reference records are written: structural inheritance (§4.2.2).
  return clone;
}

void FileSystem::delete_clone_head(LineId line) {
  auto lit = live_.find(line);
  if (lit == live_.end())
    throw std::invalid_argument("fsim: line has no live head");
  // Dropping the live head removes its (possibly inherited) references from
  // the live view — but those are *not* pointer removals at the back-ref
  // level for inherited blocks... they are: the live tree of the clone dies,
  // so every reference it holds stops being live. Write-anywhere systems
  // implement this as deleting every file, which is what we do; it produces
  // the To entries (overrides, for inherited blocks) the design expects.
  std::vector<InodeNo> inodes;
  for (const auto& [ino, file] : lit->second) inodes.push_back(ino);
  for (const InodeNo ino : inodes) delete_file(line, ino);
  live_.erase(line);
  registry().kill_line(line);
}

// --- time and consistency points ------------------------------------------------

void FileSystem::advance_time(double seconds) {
  sim_clock_ += seconds;
  seconds_since_cp_ += seconds;
}

std::optional<SinkCpStats> FileSystem::maybe_consistency_point() {
  if (writes_since_cp_ >= options_.ops_per_cp ||
      (seconds_since_cp_ >= options_.cp_interval_seconds &&
       writes_since_cp_ > 0)) {
    return consistency_point();
  }
  return std::nullopt;
}

SinkCpStats FileSystem::consistency_point() {
  SinkCpStats s = sink_->on_consistency_point();
  if (!sink_->advances_cp()) registry().advance_cp();
  journal_.clear();
  writes_since_cp_ = 0;
  seconds_since_cp_ = 0.0;
  ++stats_.cps_taken;
  return s;
}

// --- ground truth / misc --------------------------------------------------------

const Image& FileSystem::live_image(LineId line) const {
  auto lit = live_.find(line);
  if (lit == live_.end())
    throw std::invalid_argument("fsim: line has no live head");
  return lit->second;
}

std::vector<LineId> FileSystem::live_lines() const {
  std::vector<LineId> out;
  out.reserve(live_.size());
  for (const auto& [line, img] : live_) out.push_back(line);
  return out;
}

const std::map<Epoch, Image>& FileSystem::snapshot_images(LineId line) const {
  static const std::map<Epoch, Image> kEmpty;
  auto lit = snapshots_.find(line);
  return lit != snapshots_.end() ? lit->second : kEmpty;
}

void FileSystem::replay_journal_into(BackrefSink& sink) const {
  for (const JournalOp& op : journal_) {
    if (op.add) {
      sink.add_reference(op.key);
    } else {
      sink.remove_reference(op.key);
    }
  }
}

BlockNo FileSystem::allocate_block_at_end() {
  const BlockNo b = next_block_++;
  ++stats_.allocated_blocks;
  ref_block(b);
  return b;
}

std::uint64_t FileSystem::relocate_extent(BlockNo old_block, std::uint64_t length,
                                          BlockNo new_block) {
  const BlockNo old_hi = old_block + length;
  // Destination must be fresh: refuse overlapping or allocated targets.
  for (std::uint64_t i = 0; i < length; ++i) {
    if (block_refs_.contains(new_block + i))
      throw std::invalid_argument("relocate_extent: destination in use");
  }
  if (new_block < old_hi && old_block < new_block + length)
    throw std::invalid_argument("relocate_extent: ranges overlap");

  auto relocate_in_image = [&](Image& img) {
    std::uint64_t updated = 0;
    for (auto& [ino, file] : img) {
      bool dirty = false;
      for (const BlockNo b : file->blocks) {
        if (b >= old_block && b < old_hi) {
          dirty = true;
          break;
        }
      }
      if (!dirty) continue;
      auto copy = std::make_shared<FileNode>(*file);
      for (BlockNo& b : copy->blocks) {
        if (b >= old_block && b < old_hi) {
          b = b - old_block + new_block;
          ++updated;
        }
      }
      file = std::move(copy);
    }
    return updated;
  };

  std::uint64_t updated = 0;
  for (auto& [line, img] : live_) updated += relocate_in_image(img);
  for (auto& [line, snaps] : snapshots_) {
    for (auto& [version, img] : snaps) updated += relocate_in_image(img);
  }

  // Move the allocator bookkeeping.
  for (BlockNo b = old_block; b < old_hi; ++b) {
    auto it = block_refs_.find(b);
    if (it == block_refs_.end()) continue;
    block_refs_[b - old_block + new_block] = it->second;
    block_refs_.erase(it);
    free_list_.push_back(b);
  }
  next_block_ = std::max(next_block_, new_block + length);
  for (BlockNo& b : dedup_pool_) {
    if (b >= old_block && b < old_hi) b = b - old_block + new_block;
  }

  // Rewrite the back references themselves.
  if (db_ != nullptr) db_->relocate(old_block, length, new_block);
  return updated;
}

}  // namespace backlog::fsim
