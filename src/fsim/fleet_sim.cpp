#include "fsim/fleet_sim.hpp"

#include <cmath>

#include "util/random.hpp"

namespace backlog::fsim {

const char* to_string(QosClass c) noexcept {
  switch (c) {
    case QosClass::kGold: return "gold";
    case QosClass::kSilver: return "silver";
    case QosClass::kBronze: return "bronze";
  }
  return "unknown";
}

QosClass class_of_tenant(std::size_t index) noexcept {
  switch (index % 8) {
    case 0: return QosClass::kGold;
    case 1:
    case 2:
    case 3: return QosClass::kSilver;
    default: return QosClass::kBronze;
  }
}

std::uint32_t weight_of(QosClass c) noexcept {
  switch (c) {
    case QosClass::kGold: return 8;
    case QosClass::kSilver: return 4;
    case QosClass::kBronze: return 1;
  }
  return 1;
}

SloPolicy default_slo(QosClass c) noexcept {
  switch (c) {
    case QosClass::kGold: return {25'000};
    case QosClass::kSilver: return {100'000};
    case QosClass::kBronze: return {400'000};
  }
  return {400'000};
}

std::array<SloPolicy, kQosClasses> default_slo_table() noexcept {
  return {default_slo(QosClass::kGold), default_slo(QosClass::kSilver),
          default_slo(QosClass::kBronze)};
}

SloVerdict evaluate_slo(QosClass cls,
                        const service::LatencyHistogram& queue_wait,
                        const SloPolicy& policy) noexcept {
  SloVerdict v;
  v.cls = cls;
  v.samples = queue_wait.count();
  v.p99_micros = queue_wait.p99();
  v.target_micros = policy.p99_queue_wait_micros;
  v.pass = v.samples == 0 || v.p99_micros <= v.target_micros;
  return v;
}

std::vector<SloVerdict> evaluate_fleet_slo(
    const service::ServiceStats& stats,
    const std::function<std::optional<QosClass>(const std::string&)>& class_of,
    const std::array<SloPolicy, kQosClasses>& policies) {
  std::array<service::LatencyHistogram, kQosClasses> merged{};
  for (const auto& [tenant, ts] : stats.tenants) {
    const std::optional<QosClass> cls = class_of(tenant);
    if (!cls) continue;
    merged[static_cast<std::size_t>(*cls)].merge(ts.queue_wait_micros);
  }
  std::vector<SloVerdict> out;
  out.reserve(kQosClasses);
  for (std::size_t i = 0; i < kQosClasses; ++i) {
    out.push_back(
        evaluate_slo(static_cast<QosClass>(i), merged[i], policies[i]));
  }
  return out;
}

std::vector<ArrivalEvent> build_arrival_schedule(
    const OpenLoopOptions& options) {
  std::vector<ArrivalEvent> out;
  if (options.tenants == 0 || options.arrivals_per_sec <= 0.0 ||
      options.duration_micros == 0) {
    return out;
  }
  out.reserve(static_cast<std::size_t>(
      options.arrivals_per_sec *
          (static_cast<double>(options.duration_micros) / 1e6) +
      16));
  util::Rng rng(options.seed);
  const util::ZipfSampler zipf(options.tenants, options.zipf_alpha);
  const double mean_gap_micros = 1e6 / options.arrivals_per_sec;
  double t = 0.0;
  for (;;) {
    // Exponential inter-arrival gap: -ln(1-U) * mean. uniform() lies in
    // [0, 1), so 1-U is in (0, 1] and the log is finite; gaps of zero
    // micros (sub-microsecond bursts) are legal and kept.
    t += -std::log(1.0 - rng.uniform()) * mean_gap_micros;
    if (t >= static_cast<double>(options.duration_micros)) break;
    const auto tenant = static_cast<std::uint32_t>(zipf.sample(rng) - 1);
    out.push_back({static_cast<std::uint64_t>(t), tenant});
  }
  return out;
}

}  // namespace backlog::fsim
