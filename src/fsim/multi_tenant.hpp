// Multi-volume workload driver for the service layer (the service-side
// counterpart of fsim): synthesizes per-tenant block-operation traces and
// replays them *concurrently* against a VolumeManager, one feeder thread per
// tenant, with batched updates, the paper's CP cadence, and optional
// interleaved owner queries.
//
// Traces are deterministic (seeded) and carry their own ground truth: the
// set of references still live when the trace ends, which the service tests
// verify against scan_all() after concurrent replay + background
// maintenance. Write-anywhere discipline is preserved per tenant — block
// numbers are allocated monotonically, a remove always targets a previously
// added extent, and a key is never re-added while live.
//
// Traces can additionally carry snapshot-lifecycle and placement events:
// take a snapshot of the writable line, branch a writable clone off the
// latest snapshot (subsequent adds then target the new line), or live-
// migrate the volume to another shard mid-trace. Events ride at fixed op
// positions so replays are reproducible, and the ground truth stays exact:
// live_keys records each add under the line it targeted, and the final line
// and snapshot counts are precomputed for verification.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "core/backref_record.hpp"
#include "service/volume_manager.hpp"

namespace backlog::fsim {

struct TenantTraceOptions {
  std::uint64_t block_ops = 20000;       ///< add + remove ops in the trace
  double remove_fraction = 0.45;         ///< probability an op removes a live ref
  std::uint64_t max_extent_blocks = 4;   ///< extent lengths drawn from [1, this]
  std::uint64_t inodes = 512;            ///< synthetic inode population
  std::uint64_t seed = 1;

  /// Snapshot the writable line every N ops (0 = never).
  std::uint64_t snapshot_every_ops = 0;
  /// Branch a writable clone off the latest snapshot every N ops and switch
  /// subsequent adds to the new line (0 = never). Clone events are skipped
  /// until the writable line has at least one snapshot, so enabling clones
  /// without snapshots yields none.
  std::uint64_t clone_every_ops = 0;
  /// Live-migrate the volume to the next shard (round-robin) every N ops
  /// (0 = never).
  std::uint64_t migrate_every_ops = 0;
};

/// A snapshot-lifecycle or placement event at a fixed position in the trace.
struct TraceEvent {
  enum class Kind : std::uint8_t { kSnapshot, kClone, kMigrate };
  Kind kind = Kind::kSnapshot;
  std::uint64_t at_op = 0;   ///< fires before trace.ops[at_op] is applied
  core::LineId line = 0;     ///< snapshot target / clone parent line
};

/// One tenant's trace plus its ground truth.
struct TenantTrace {
  std::vector<service::UpdateOp> ops;
  /// References added and never removed: exactly the records that must be
  /// live (to == infinity) after the full trace has been replayed, across
  /// all lines the trace wrote to.
  std::vector<core::BackrefKey> live_keys;
  /// Events in at_op order (empty unless the options enable them).
  std::vector<TraceEvent> events;
  /// Lines the volume ends with (1 + clones taken); clone events create
  /// lines 1, 2, ... in order, which replay asserts against the service.
  std::uint64_t lines = 1;
  std::uint64_t snapshots = 0;  ///< snapshot events in the trace
};

TenantTrace synthesize_tenant_trace(const TenantTraceOptions& options);

struct ReplayOptions {
  std::size_t batch_ops = 256;      ///< ops per apply() batch
  /// Feed batches through the batched verb (VolumeManager::apply_batch,
  /// i.e. BacklogDb::apply_many on the shard) instead of apply()'s per-op
  /// loop. Same data, same ordering guarantees; this is the hot-path mode
  /// the service_throughput bench sweeps A/B.
  bool use_apply_batch = false;
  std::uint64_t ops_per_cp = 2000;  ///< consistency point every N ops
  /// Issue one owner query per N ops against a recently touched block
  /// (0 = no queries). Queries are verified to return at least one entry.
  std::uint64_t query_every_ops = 0;
  /// Take a final consistency point when the trace is exhausted.
  bool final_cp = true;
};

struct TenantReplayResult {
  std::string tenant;
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t cps = 0;
  std::uint64_t queries = 0;
  std::uint64_t empty_query_results = 0;  ///< queries on a live block with no hit
  std::uint64_t snapshots = 0;            ///< take_snapshot verbs issued
  std::uint64_t clones = 0;               ///< lines branched
  std::uint64_t migrations = 0;           ///< completed live migrations
  std::uint64_t migrations_skipped = 0;   ///< trace migrations lost to races
  double wall_seconds = 0;
};

struct TenantWorkload {
  std::string tenant;
  TenantTrace trace;
  /// Burst pacing: after every `pause_every_ops` trace ops the feeder
  /// sleeps for `pause` (0 = feed as fast as the service admits). Pacing
  /// shapes arrival times only; the trace and its ground truth are
  /// unchanged.
  std::uint64_t pause_every_ops = 0;
  std::chrono::microseconds pause{0};
};

/// Fleet shapes for multi-tenant scenarios. Every tenant's trace still
/// carries its own exact ground truth (live_keys), whatever the shape.
enum class FleetShape : std::uint8_t {
  kUniform,    ///< every tenant gets total_ops / tenants
  kHotTenant,  ///< tenant 0 gets hot_share of the budget (noisy neighbor)
  kBursty,     ///< uniform budget, but feeders emit bursts separated by idle
};

struct FleetOptions {
  std::size_t tenants = 8;
  std::uint64_t total_ops = 80000;
  FleetShape shape = FleetShape::kUniform;
  /// kHotTenant: tenant 0's share of total_ops, in (0, 1).
  double hot_share = 0.5;
  /// kBursty: ops per burst and the idle gap between bursts.
  std::uint64_t burst_ops = 512;
  std::chrono::microseconds burst_pause{2000};
  std::uint64_t seed = 1;
  /// Trace knobs shared by every tenant (block_ops/seed are overridden).
  TenantTraceOptions base{};
  std::string name_prefix = "tenant-";
};

/// Synthesize one workload per tenant under the given shape; volume names
/// are `<prefix>000`, `<prefix>001`, …
std::vector<TenantWorkload> synthesize_fleet(const FleetOptions& options);

/// Replays every workload concurrently (one feeder thread per tenant).
/// Volumes must already be open. Backpressure: each feeder waits for its
/// tenant's consistency-point future before starting the next CP window, so
/// at most one CP window of work per tenant is in flight. Snapshot/clone/
/// migrate events execute inline on the feeder; a trace migration that
/// loses a race with another placement actor (e.g. a running Balancer has
/// the volume's handoff in flight) is skipped and counted in
/// migrations_skipped rather than failing the replay. Exceptions raised by
/// any service future propagate out of this call.
std::vector<TenantReplayResult> replay_concurrently(
    service::VolumeManager& vm, const std::vector<TenantWorkload>& workloads,
    const ReplayOptions& options = {});

}  // namespace backlog::fsim
