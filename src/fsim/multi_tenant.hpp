// Multi-volume workload driver for the service layer (the service-side
// counterpart of fsim): synthesizes per-tenant block-operation traces and
// replays them *concurrently* against a VolumeManager, one feeder thread per
// tenant, with batched updates, the paper's CP cadence, and optional
// interleaved owner queries.
//
// Traces are deterministic (seeded) and carry their own ground truth: the
// set of references still live when the trace ends, which the service tests
// verify against scan_all() after concurrent replay + background
// maintenance. Write-anywhere discipline is preserved per tenant — block
// numbers are allocated monotonically, a remove always targets a previously
// added extent, and a key is never re-added while live.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/backref_record.hpp"
#include "service/volume_manager.hpp"

namespace backlog::fsim {

struct TenantTraceOptions {
  std::uint64_t block_ops = 20000;       ///< add + remove ops in the trace
  double remove_fraction = 0.45;         ///< probability an op removes a live ref
  std::uint64_t max_extent_blocks = 4;   ///< extent lengths drawn from [1, this]
  std::uint64_t inodes = 512;            ///< synthetic inode population
  std::uint64_t seed = 1;
};

/// One tenant's trace plus its ground truth.
struct TenantTrace {
  std::vector<service::UpdateOp> ops;
  /// References added and never removed: exactly the records that must be
  /// live (to == infinity) after the full trace has been replayed.
  std::vector<core::BackrefKey> live_keys;
};

TenantTrace synthesize_tenant_trace(const TenantTraceOptions& options);

struct ReplayOptions {
  std::size_t batch_ops = 256;      ///< ops per apply() batch
  std::uint64_t ops_per_cp = 2000;  ///< consistency point every N ops
  /// Issue one owner query per N ops against a recently touched block
  /// (0 = no queries). Queries are verified to return at least one entry.
  std::uint64_t query_every_ops = 0;
  /// Take a final consistency point when the trace is exhausted.
  bool final_cp = true;
};

struct TenantReplayResult {
  std::string tenant;
  std::uint64_t ops = 0;
  std::uint64_t batches = 0;
  std::uint64_t cps = 0;
  std::uint64_t queries = 0;
  std::uint64_t empty_query_results = 0;  ///< queries on a live block with no hit
  double wall_seconds = 0;
};

struct TenantWorkload {
  std::string tenant;
  TenantTrace trace;
};

/// Replays every workload concurrently (one feeder thread per tenant).
/// Volumes must already be open. Backpressure: each feeder waits for its
/// tenant's consistency-point future before starting the next CP window, so
/// at most one CP window of work per tenant is in flight. Exceptions raised
/// by any service future propagate out of this call.
std::vector<TenantReplayResult> replay_concurrently(
    service::VolumeManager& vm, const std::vector<TenantWorkload>& workloads,
    const ReplayOptions& options = {});

}  // namespace backlog::fsim
