// Ground-truth verifier (§5): "a utility program that walks the entire file
// system tree, reconstructs the back references, and then compares them with
// the database produced by our algorithm."
//
// The ground truth is the set of (block, inode, offset, line, version)
// tuples visible in any retained image: every snapshot image plus, for live
// lines, the current CP's view. The database side is produced by masked,
// inheritance-expanded queries over the whole block space. The two sets must
// be identical.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "fsim/fsim.hpp"

namespace backlog::fsim {

struct VerifyResult {
  bool ok = false;
  std::uint64_t ground_truth_refs = 0;
  std::uint64_t db_refs = 0;
  /// First few mismatches, rendered for test-failure messages.
  std::vector<std::string> errors;
};

/// A single visible reference at a specific retained version.
using RefTuple = std::tuple<core::BlockNo, core::InodeNo, std::uint64_t,
                            core::LineId, core::Epoch>;

/// Ground truth from the fsim images (no database involvement).
std::set<RefTuple> ground_truth_refs(const FileSystem& fs);

/// Database view: expanded + masked queries over [0, fs.max_block()).
std::set<RefTuple> database_refs(FileSystem& fs, std::uint64_t chunk_blocks = 64);

/// Full comparison; reports up to `max_errors` differences.
VerifyResult verify_backrefs(FileSystem& fs, std::size_t max_errors = 10);

}  // namespace backlog::fsim
