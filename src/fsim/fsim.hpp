// fsim — the write-anywhere file-system simulator (§5, §6.1).
//
// Mirrors the paper's evaluation vehicle: a simulated WAFL-style file system
// with writable snapshots, clones and deduplication. All file-system
// meta-data lives in main memory; *only the back-reference meta-data* is
// stored on disk (through the attached BackrefSink). Data blocks are never
// materialized — what matters for the experiments is the stream of
// block-reference operations and the consistency-point cadence.
//
// Write-anywhere semantics: every logical overwrite allocates a new physical
// block (or, with probability dedup_fraction, points at an existing block —
// dedup emulation per §6.1), the old block's reference is removed, and the
// old block is freed once no retained image references it.
//
// Consistency points: taken after ops_per_cp block writes or cp_interval
// simulated seconds, whichever comes first (the paper's 32,000-write / 10 s
// WAFL configuration).
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/backlog_db.hpp"
#include "core/snapshot_registry.hpp"
#include "fsim/backref_sink.hpp"
#include "storage/env.hpp"
#include "util/random.hpp"

namespace backlog::fsim {

using core::BackrefKey;
using core::BlockNo;
using core::Epoch;
using core::InodeNo;
using core::LineId;

struct FsimOptions {
  /// CP trigger: block writes per consistency point (WAFL: 32,000).
  std::uint64_t ops_per_cp = 32000;
  /// CP trigger: simulated seconds between CPs (WAFL: 10 s).
  double cp_interval_seconds = 10.0;

  /// Deduplication emulation (§6.1): fraction of newly written blocks that
  /// duplicate an existing block, and the skew of which blocks get shared.
  /// alpha ~1.15 with a 10% dup rate yields the paper's observed refcount
  /// distribution (~75-78% of blocks with refcount 1, ~18% with 2, ...).
  double dedup_fraction = 0.10;
  double dedup_zipf_alpha = 1.15;
  std::size_t dedup_pool_size = 4096;

  std::uint64_t rng_seed = 42;
};

/// One file: an array of physical block pointers (index = logical offset in
/// blocks). Immutable once shared with a snapshot image (copy-on-write).
struct FileNode {
  std::vector<BlockNo> blocks;
};

/// A point-in-time file-system tree of one line: inode -> file.
using Image = std::map<InodeNo, std::shared_ptr<const FileNode>>;

/// One logged block-pointer operation (the journal, §5.4): everything since
/// the last CP, used by the crash-recovery path to rebuild the write store.
struct JournalOp {
  bool add = false;
  BackrefKey key;
};

struct FsStats {
  std::uint64_t allocated_blocks = 0;  ///< physical blocks currently in use
  std::uint64_t block_writes = 0;      ///< lifetime pointer-adds
  std::uint64_t block_frees = 0;       ///< lifetime pointer-removes
  std::uint64_t dedup_hits = 0;        ///< writes satisfied by sharing
  std::uint64_t files_live = 0;
  std::uint64_t cps_taken = 0;

  /// Physical data size in bytes (4 KB per allocated block) — denominator
  /// of the paper's space-overhead percentage (Fig. 6/8).
  [[nodiscard]] std::uint64_t data_bytes() const {
    return allocated_blocks * 4096;
  }
};

class FileSystem {
 public:
  /// Backlog-backed file system: owns a BacklogDb rooted at `env`.
  FileSystem(storage::Env& env, FsimOptions options,
             core::BacklogOptions backlog_options = {});

  /// Baseline-backed file system: `sink` provides the back references and
  /// the FileSystem owns its snapshot registry. `sink` must outlive this.
  FileSystem(FsimOptions options, BackrefSink& sink);

  ~FileSystem();
  FileSystem(const FileSystem&) = delete;
  FileSystem& operator=(const FileSystem&) = delete;

  // --- namespace operations (on the live head of a line) --------------------

  /// Create a file of `num_blocks` blocks; returns its inode number.
  InodeNo create_file(LineId line, std::uint64_t num_blocks);

  /// Copy-on-write (re)write of `count` logical blocks starting at `offset`;
  /// extends the file if the range reaches past EOF.
  void write_file(LineId line, InodeNo inode, std::uint64_t offset,
                  std::uint64_t count);

  /// Shrink (or no-op-grow) the file to `new_blocks` blocks.
  void truncate_file(LineId line, InodeNo inode, std::uint64_t new_blocks);

  void delete_file(LineId line, InodeNo inode);

  [[nodiscard]] bool file_exists(LineId line, InodeNo inode) const;
  [[nodiscard]] std::uint64_t file_size_blocks(LineId line, InodeNo inode) const;
  [[nodiscard]] std::vector<InodeNo> list_files(LineId line) const;

  // --- snapshots and clones (§2) ---------------------------------------------

  /// Preserve the current state of `line` as snapshot version current_cp().
  Epoch take_snapshot(LineId line);

  void delete_snapshot(LineId line, Epoch version);

  /// Writable clone of snapshot (line, version): starts a new line.
  LineId create_clone(LineId line, Epoch version);

  /// Destroy the live head of a (cloned) line; snapshots of it remain.
  void delete_clone_head(LineId line);

  // --- time and consistency points -------------------------------------------

  void advance_time(double seconds);

  /// Take a CP if either trigger (op count / simulated time) fired.
  std::optional<SinkCpStats> maybe_consistency_point();

  /// Unconditionally take a consistency point.
  SinkCpStats consistency_point();

  [[nodiscard]] Epoch current_cp() const { return registry().current_cp(); }

  // --- accessors --------------------------------------------------------------

  [[nodiscard]] core::SnapshotRegistry& registry();
  [[nodiscard]] const core::SnapshotRegistry& registry() const;

  /// The Backlog database (throws std::logic_error in baseline-sink mode).
  [[nodiscard]] core::BacklogDb& db();
  [[nodiscard]] bool has_db() const noexcept { return db_ != nullptr; }

  [[nodiscard]] const FsStats& stats() const noexcept { return stats_; }
  [[nodiscard]] FsimOptions& options() noexcept { return options_; }

  // --- ground truth for the verifier and relocation ---------------------------

  [[nodiscard]] const Image& live_image(LineId line) const;
  [[nodiscard]] std::vector<LineId> live_lines() const;
  /// Retained snapshot images of a line: version -> image.
  [[nodiscard]] const std::map<Epoch, Image>& snapshot_images(LineId line) const;
  [[nodiscard]] std::uint64_t max_block() const noexcept { return next_block_; }
  [[nodiscard]] bool block_allocated(BlockNo b) const {
    return block_refs_.contains(b);
  }

  /// Journal of block-pointer ops since the last CP (crash recovery tests).
  [[nodiscard]] const std::deque<JournalOp>& journal() const noexcept {
    return journal_;
  }

  /// Crash simulation: rebuild the sink's in-memory state by re-issuing the
  /// journal into it (call on a freshly re-opened BacklogDb).
  void replay_journal_into(BackrefSink& sink) const;

  // --- relocation support (the use cases of §3) --------------------------------

  /// Move physical extent [old_block, old_block+length) to new_block: updates
  /// every pointer in every live and snapshot image, fixes refcounts and the
  /// allocator, and rewrites the back references (db().relocate in Backlog
  /// mode). The destination must be unallocated. Returns pointers updated.
  std::uint64_t relocate_extent(BlockNo old_block, std::uint64_t length,
                                BlockNo new_block);

  /// Explicit allocation hook for relocation destinations and tests.
  BlockNo allocate_block_at_end();

 private:
  // Mutable-file access with copy-on-write against shared snapshot images.
  FileNode& mutable_file(LineId line, InodeNo inode);

  BlockNo allocate_or_dedup(bool* was_dedup);
  void ref_block(BlockNo b);
  void unref_block(BlockNo b);
  void add_pointer(LineId line, InodeNo inode, std::uint64_t offset, BlockNo b);
  void remove_pointer(LineId line, InodeNo inode, std::uint64_t offset,
                      BlockNo b);
  void ref_image(const Image& img);
  void unref_image(const Image& img);

  FsimOptions options_;
  std::unique_ptr<core::BacklogDb> db_;        // Backlog mode
  std::unique_ptr<BacklogSink> own_sink_;      // Backlog mode
  std::unique_ptr<core::SnapshotRegistry> own_registry_;  // sink mode
  BackrefSink* sink_ = nullptr;                // always valid

  util::Rng rng_;
  std::unique_ptr<util::ZipfSampler> zipf_;

  std::map<LineId, Image> live_;
  std::map<LineId, std::map<Epoch, Image>> snapshots_;
  std::unordered_map<BlockNo, std::uint32_t> block_refs_;
  std::vector<BlockNo> free_list_;
  std::vector<BlockNo> dedup_pool_;  // ring buffer of recently written blocks
  std::size_t dedup_pool_pos_ = 0;

  BlockNo next_block_ = 1;  // block 0 reserved
  InodeNo next_inode_ = 2;  // inodes 0/1 reserved (root/meta convention)
  std::uint64_t writes_since_cp_ = 0;
  double seconds_since_cp_ = 0.0;
  double sim_clock_ = 0.0;
  std::deque<JournalOp> journal_;
  FsStats stats_;
};

}  // namespace backlog::fsim
