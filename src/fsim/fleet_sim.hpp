// Fleet-scale open-loop scenario machinery (the ROADMAP's fleet_sim item).
//
// The closed-loop drivers in this tree (replay_concurrently, the bench
// sweeps) block on each future before issuing the next batch, so when the
// service slows down the *offered load drops with it* and queueing delay is
// silently absorbed by the stalled driver — the classic coordinated-
// omission trap. The open-loop generator here fixes the arrival process
// instead: a Poisson schedule (exponential inter-arrival gaps at a fixed
// rate) with Zipf-distributed tenant selection is computed up front, and
// the dispatcher submits each arrival at its scheduled instant whether or
// not earlier work has completed. Under overload the backlog then grows in
// the service's queues, where the PR 6 queue-wait histograms measure it
// honestly.
//
// The SLO half maps tenants onto three QoS classes (gold/silver/bronze),
// each with a p99 queue-wait ceiling, and judges a fleet by merging the
// per-tenant `queue_wait_micros` histograms from ServiceStats per class.
// Everything in this header is deterministic and service-free, so the unit
// tests can pin exact schedules and verdicts; bench/fleet_sim.cpp supplies
// the driver, the chaos actor, and the JSONROW reporting.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "service/service_stats.hpp"

namespace backlog::fsim {

// --- QoS classes and SLO policies --------------------------------------------

/// Service classes of the simulated fleet, best to worst.
enum class QosClass : std::uint8_t { kGold = 0, kSilver = 1, kBronze = 2 };

inline constexpr std::size_t kQosClasses = 3;

[[nodiscard]] const char* to_string(QosClass c) noexcept;

/// Deterministic class of tenant `index`: 1/8 gold, 3/8 silver, 1/2 bronze
/// (index mod 8 -> {0}=gold, {1,2,3}=silver, rest bronze). Stable across
/// runs so schedules, weights and verdicts reproduce from a seed alone.
[[nodiscard]] QosClass class_of_tenant(std::size_t index) noexcept;

/// Weighted-fair share the class gets in its shard queue (stride-scheduler
/// weight; see shard_queue.hpp).
[[nodiscard]] std::uint32_t weight_of(QosClass c) noexcept;

/// One class's SLO: a ceiling on the p99 of its queue-wait histogram.
struct SloPolicy {
  std::uint64_t p99_queue_wait_micros = 0;
};

/// Default per-class targets (gold 25 ms, silver 100 ms, bronze 400 ms):
/// generous enough that an unloaded service passes on a busy CI runner, and
/// hopeless under sustained overload, where open-loop queue growth pushes
/// p99 waits toward the scenario duration.
[[nodiscard]] SloPolicy default_slo(QosClass c) noexcept;

[[nodiscard]] std::array<SloPolicy, kQosClasses> default_slo_table() noexcept;

/// Outcome of judging one class against its policy.
struct SloVerdict {
  QosClass cls = QosClass::kGold;
  std::uint64_t samples = 0;        ///< queue-wait observations merged
  std::uint64_t p99_micros = 0;     ///< interpolated p99 of the merged histogram
  std::uint64_t target_micros = 0;  ///< the policy ceiling
  bool pass = true;                 ///< vacuously true with zero samples
};

/// Judge one class: pass iff the histogram is empty or p99 <= target.
[[nodiscard]] SloVerdict evaluate_slo(QosClass cls,
                                      const service::LatencyHistogram& queue_wait,
                                      const SloPolicy& policy) noexcept;

/// Merge every classified tenant's queue-wait histogram by class and judge
/// each class. `class_of` maps a tenant name to its class; returning
/// nullopt excludes the tenant (e.g. verifier or churn volumes that ride
/// along in a chaos scenario but carry no SLO).
[[nodiscard]] std::vector<SloVerdict> evaluate_fleet_slo(
    const service::ServiceStats& stats,
    const std::function<std::optional<QosClass>(const std::string&)>& class_of,
    const std::array<SloPolicy, kQosClasses>& policies);

// --- open-loop arrival schedule ----------------------------------------------

/// One scheduled arrival: at `at_micros` after scenario start, tenant
/// `tenant` submits a batch (what the batch contains is the driver's
/// business — the schedule only fixes *when* and *who*).
struct ArrivalEvent {
  std::uint64_t at_micros = 0;
  std::uint32_t tenant = 0;

  bool operator==(const ArrivalEvent&) const = default;
};

struct OpenLoopOptions {
  std::size_t tenants = 1000;
  /// Traffic skew across tenant ranks; tenant 0 is the hottest.
  double zipf_alpha = 1.1;
  /// Poisson rate of the arrival process (arrivals, not ops — a driver
  /// typically submits a batch per arrival).
  double arrivals_per_sec = 2000.0;
  std::uint64_t duration_micros = 2'000'000;
  std::uint64_t seed = 1;
};

/// Deterministic Poisson/Zipf schedule: exponential inter-arrival gaps at
/// `arrivals_per_sec`, the tenant of each arrival drawn Zipf(alpha) over
/// ranks (rank 1 -> tenant 0). Same options -> bit-identical schedule, on
/// every platform (util::Rng, not <random>).
[[nodiscard]] std::vector<ArrivalEvent> build_arrival_schedule(
    const OpenLoopOptions& options);

}  // namespace backlog::fsim
