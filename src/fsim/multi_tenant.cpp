#include "fsim/multi_tenant.hpp"

#include <cstdio>
#include <deque>
#include <exception>
#include <map>
#include <stdexcept>
#include <thread>

#include "util/clock.hpp"
#include "util/random.hpp"

namespace backlog::fsim {

using util::now_seconds;

TenantTrace synthesize_tenant_trace(const TenantTraceOptions& options) {
  util::Rng rng(options.seed);
  TenantTrace trace;
  trace.ops.reserve(options.block_ops);

  // Live references, sampled uniformly for removal (swap-pop). Each entry
  // carries the line it was added under.
  std::vector<core::BackrefKey> live;
  core::BlockNo next_block = 1;  // block 0 reserved, as in fsim
  core::LineId writable_line = 0;
  std::uint64_t snapshots_on_line = 0;

  auto fires = [](std::uint64_t every, std::uint64_t i) {
    return every != 0 && i != 0 && i % every == 0;
  };

  for (std::uint64_t i = 0; i < options.block_ops; ++i) {
    if (fires(options.snapshot_every_ops, i)) {
      trace.events.push_back({TraceEvent::Kind::kSnapshot, i, writable_line});
      ++trace.snapshots;
      ++snapshots_on_line;
    }
    if (fires(options.clone_every_ops, i) && snapshots_on_line > 0) {
      // Branch off the latest snapshot of the current writable line; the
      // registry hands out line ids sequentially, so the clone becomes line
      // `trace.lines` — replay asserts that.
      trace.events.push_back({TraceEvent::Kind::kClone, i, writable_line});
      writable_line = trace.lines++;
      snapshots_on_line = 0;
    }
    if (fires(options.migrate_every_ops, i)) {
      trace.events.push_back({TraceEvent::Kind::kMigrate, i, 0});
    }

    const bool remove = !live.empty() && rng.chance(options.remove_fraction);
    service::UpdateOp op;
    if (remove) {
      const std::size_t idx = rng.below(live.size());
      op.kind = service::UpdateOp::Kind::kRemove;
      op.key = live[idx];
      live[idx] = live.back();
      live.pop_back();
    } else {
      op.kind = service::UpdateOp::Kind::kAdd;
      op.key.block = next_block;
      op.key.length = rng.between(1, options.max_extent_blocks);
      next_block += op.key.length;  // write-anywhere: always fresh blocks
      op.key.inode = 2 + rng.below(options.inodes);
      op.key.offset = rng.below(1u << 20);
      op.key.line = writable_line;
      live.push_back(op.key);
    }
    trace.ops.push_back(op);
  }
  trace.live_keys = std::move(live);
  return trace;
}

std::vector<TenantWorkload> synthesize_fleet(const FleetOptions& options) {
  if (options.tenants == 0)
    throw std::invalid_argument("synthesize_fleet: tenants must be > 0");
  if (options.shape == FleetShape::kHotTenant &&
      (options.hot_share <= 0 || options.hot_share >= 1)) {
    throw std::invalid_argument("synthesize_fleet: hot_share must be in (0,1)");
  }
  std::vector<TenantWorkload> out;
  out.reserve(options.tenants);
  for (std::size_t i = 0; i < options.tenants; ++i) {
    std::uint64_t ops = options.total_ops / options.tenants;
    if (options.shape == FleetShape::kHotTenant) {
      const double total = static_cast<double>(options.total_ops);
      ops = i == 0 ? static_cast<std::uint64_t>(total * options.hot_share)
                   : static_cast<std::uint64_t>(total *
                                                (1.0 - options.hot_share)) /
                         (options.tenants > 1 ? options.tenants - 1 : 1);
    }
    TenantTraceOptions to = options.base;
    to.block_ops = std::max<std::uint64_t>(1, ops);
    to.seed = options.seed * 1000003 + i;
    char suffix[24];
    std::snprintf(suffix, sizeof suffix, "%03zu", i);
    TenantWorkload wl;
    wl.tenant = options.name_prefix + suffix;
    wl.trace = synthesize_tenant_trace(to);
    if (options.shape == FleetShape::kBursty) {
      wl.pause_every_ops = options.burst_ops;
      wl.pause = options.burst_pause;
    }
    out.push_back(std::move(wl));
  }
  return out;
}

namespace {

TenantReplayResult replay_one(service::VolumeManager& vm,
                              const TenantWorkload& wl,
                              const ReplayOptions& options) {
  TenantReplayResult r;
  r.tenant = wl.tenant;
  const double t0 = now_seconds();

  std::vector<std::future<void>> applied;      // current CP window's batches
  std::deque<std::future<std::vector<core::BackrefEntry>>> queries;
  core::BlockNo last_added = 0;

  std::vector<service::UpdateOp> batch;
  batch.reserve(options.batch_ops);
  std::uint64_t ops_in_window = 0;

  auto flush_batch = [&] {
    if (batch.empty()) return;
    r.ops += batch.size();
    ++r.batches;
    applied.push_back(options.use_apply_batch
                          ? vm.apply_batch(wl.tenant, std::move(batch))
                          : vm.apply(wl.tenant, std::move(batch)));
    batch = {};
    batch.reserve(options.batch_ops);
  };

  auto drain_queries = [&](std::size_t keep) {
    while (queries.size() > keep) {
      if (queries.front().get().empty()) ++r.empty_query_results;
      queries.pop_front();
    }
  };

  auto take_cp = [&] {
    flush_batch();
    // The CP future completing implies every prior foreground task for this
    // tenant completed (per-shard FIFO) — natural per-tenant backpressure.
    vm.consistency_point(wl.tenant).get();
    ++r.cps;
    for (auto& f : applied) f.get();  // surface any batch exception
    applied.clear();
    ops_in_window = 0;
  };

  // Latest snapshot version per line, fed to clone events.
  std::map<core::LineId, core::Epoch> last_version;
  core::LineId next_clone_line = 1;
  std::size_t next_event = 0;
  std::size_t migrate_round = 0;

  auto run_events_at = [&](std::uint64_t op_index) {
    while (next_event < wl.trace.events.size() &&
           wl.trace.events[next_event].at_op == op_index) {
      const TraceEvent& ev = wl.trace.events[next_event++];
      flush_batch();  // events act on everything applied so far (FIFO)
      switch (ev.kind) {
        case TraceEvent::Kind::kSnapshot: {
          last_version[ev.line] = vm.take_snapshot(wl.tenant, ev.line).get();
          ++r.snapshots;
          break;
        }
        case TraceEvent::Kind::kClone: {
          const core::LineId id =
              vm.create_clone(wl.tenant, ev.line, last_version.at(ev.line)).get();
          if (id != next_clone_line) {
            throw std::logic_error("replay: clone line id mismatch for " +
                                   wl.tenant);
          }
          ++next_clone_line;
          ++r.clones;
          break;
        }
        case TraceEvent::Kind::kMigrate: {
          // Rotate deterministically through the shards. One feeder per
          // tenant, so *trace* migrations never overlap — but an external
          // placement actor (the Balancer) may have this volume's handoff
          // in flight; losing that race skips the event, it doesn't fail
          // the replay.
          const std::size_t target =
              (vm.current_shard(wl.tenant) + 1 + (migrate_round++ % 2)) %
              vm.shard_count();
          try {
            if (vm.migrate_volume(wl.tenant, target).moved) ++r.migrations;
          } catch (const std::logic_error&) {
            ++r.migrations_skipped;
          }
          break;
        }
      }
    }
  };

  for (std::uint64_t i = 0; i < wl.trace.ops.size(); ++i) {
    run_events_at(i);
    const service::UpdateOp& op = wl.trace.ops[i];
    if (op.kind == service::UpdateOp::Kind::kAdd) {
      last_added = op.key.block;
    } else if (op.key.block == last_added) {
      last_added = 0;  // keep queries aimed at a still-live reference
    }
    batch.push_back(op);
    if (batch.size() >= options.batch_ops) flush_batch();

    if (wl.pause_every_ops != 0 && (i + 1) % wl.pause_every_ops == 0 &&
        wl.pause.count() > 0) {
      flush_batch();  // the burst's tail reaches the service before the idle
      std::this_thread::sleep_for(wl.pause);
    }

    ++ops_in_window;
    if (options.query_every_ops != 0 && last_added != 0 &&
        ops_in_window % options.query_every_ops == 0) {
      flush_batch();  // the queried block must already be applied (FIFO)
      queries.push_back(vm.query(wl.tenant, last_added));
      ++r.queries;
      drain_queries(32);
    }
    if (ops_in_window >= options.ops_per_cp) take_cp();
  }
  run_events_at(wl.trace.ops.size());
  if (options.final_cp || !batch.empty() || !applied.empty()) take_cp();
  drain_queries(0);

  r.wall_seconds = now_seconds() - t0;
  return r;
}

}  // namespace

std::vector<TenantReplayResult> replay_concurrently(
    service::VolumeManager& vm, const std::vector<TenantWorkload>& workloads,
    const ReplayOptions& options) {
  std::vector<TenantReplayResult> results(workloads.size());
  std::vector<std::exception_ptr> errors(workloads.size());
  std::vector<std::thread> feeders;
  feeders.reserve(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    feeders.emplace_back([&, i] {
      try {
        results[i] = replay_one(vm, workloads[i], options);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : feeders) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace backlog::fsim
