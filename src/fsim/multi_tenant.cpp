#include "fsim/multi_tenant.hpp"

#include <deque>
#include <exception>
#include <thread>

#include "util/clock.hpp"
#include "util/random.hpp"

namespace backlog::fsim {

using util::now_seconds;

TenantTrace synthesize_tenant_trace(const TenantTraceOptions& options) {
  util::Rng rng(options.seed);
  TenantTrace trace;
  trace.ops.reserve(options.block_ops);

  // Live references, sampled uniformly for removal (swap-pop).
  std::vector<core::BackrefKey> live;
  core::BlockNo next_block = 1;  // block 0 reserved, as in fsim

  for (std::uint64_t i = 0; i < options.block_ops; ++i) {
    const bool remove = !live.empty() && rng.chance(options.remove_fraction);
    service::UpdateOp op;
    if (remove) {
      const std::size_t idx = rng.below(live.size());
      op.kind = service::UpdateOp::Kind::kRemove;
      op.key = live[idx];
      live[idx] = live.back();
      live.pop_back();
    } else {
      op.kind = service::UpdateOp::Kind::kAdd;
      op.key.block = next_block;
      op.key.length = rng.between(1, options.max_extent_blocks);
      next_block += op.key.length;  // write-anywhere: always fresh blocks
      op.key.inode = 2 + rng.below(options.inodes);
      op.key.offset = rng.below(1u << 20);
      op.key.line = 0;
      live.push_back(op.key);
    }
    trace.ops.push_back(op);
  }
  trace.live_keys = std::move(live);
  return trace;
}

namespace {

TenantReplayResult replay_one(service::VolumeManager& vm,
                              const TenantWorkload& wl,
                              const ReplayOptions& options) {
  TenantReplayResult r;
  r.tenant = wl.tenant;
  const double t0 = now_seconds();

  std::vector<std::future<void>> applied;      // current CP window's batches
  std::deque<std::future<std::vector<core::BackrefEntry>>> queries;
  core::BlockNo last_added = 0;

  std::vector<service::UpdateOp> batch;
  batch.reserve(options.batch_ops);
  std::uint64_t ops_in_window = 0;

  auto flush_batch = [&] {
    if (batch.empty()) return;
    r.ops += batch.size();
    ++r.batches;
    applied.push_back(vm.apply(wl.tenant, std::move(batch)));
    batch = {};
    batch.reserve(options.batch_ops);
  };

  auto drain_queries = [&](std::size_t keep) {
    while (queries.size() > keep) {
      if (queries.front().get().empty()) ++r.empty_query_results;
      queries.pop_front();
    }
  };

  auto take_cp = [&] {
    flush_batch();
    // The CP future completing implies every prior foreground task for this
    // tenant completed (per-shard FIFO) — natural per-tenant backpressure.
    vm.consistency_point(wl.tenant).get();
    ++r.cps;
    for (auto& f : applied) f.get();  // surface any batch exception
    applied.clear();
    ops_in_window = 0;
  };

  for (const service::UpdateOp& op : wl.trace.ops) {
    if (op.kind == service::UpdateOp::Kind::kAdd) {
      last_added = op.key.block;
    } else if (op.key.block == last_added) {
      last_added = 0;  // keep queries aimed at a still-live reference
    }
    batch.push_back(op);
    if (batch.size() >= options.batch_ops) flush_batch();

    ++ops_in_window;
    if (options.query_every_ops != 0 && last_added != 0 &&
        ops_in_window % options.query_every_ops == 0) {
      flush_batch();  // the queried block must already be applied (FIFO)
      queries.push_back(vm.query(wl.tenant, last_added));
      ++r.queries;
      drain_queries(32);
    }
    if (ops_in_window >= options.ops_per_cp) take_cp();
  }
  if (options.final_cp || !batch.empty() || !applied.empty()) take_cp();
  drain_queries(0);

  r.wall_seconds = now_seconds() - t0;
  return r;
}

}  // namespace

std::vector<TenantReplayResult> replay_concurrently(
    service::VolumeManager& vm, const std::vector<TenantWorkload>& workloads,
    const ReplayOptions& options) {
  std::vector<TenantReplayResult> results(workloads.size());
  std::vector<std::exception_ptr> errors(workloads.size());
  std::vector<std::thread> feeders;
  feeders.reserve(workloads.size());
  for (std::size_t i = 0; i < workloads.size(); ++i) {
    feeders.emplace_back([&, i] {
      try {
        results[i] = replay_one(vm, workloads[i], options);
      } catch (...) {
        errors[i] = std::current_exception();
      }
    });
  }
  for (auto& t : feeders) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  return results;
}

}  // namespace backlog::fsim
