// Stochastic workload generation (§6.2.1) and the snapshot/clone policies
// the paper's synthetic experiments use: file create/delete/update rates
// mirroring the EECS03 trace, 90% small files, four hourly + four nightly
// snapshots, and roughly 7 writable-clone creations per 100 CPs.
//
// Also provides the three application-benchmark presets of Table 1
// (dbench-like CIFS file service, FileBench varmail-like mail spool,
// PostMark-like small-file churn) expressed as op-mix + file-size models on
// the same simulator, so the Base / Original / Backlog configurations are
// compared on identical work.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fsim/fsim.hpp"
#include "util/random.hpp"

namespace backlog::fsim {

struct WorkloadOptions {
  // Relative op-mix weights (normalized internally).
  double w_create = 0.30;
  double w_delete = 0.12;
  double w_overwrite = 0.40;
  double w_append = 0.10;
  double w_truncate = 0.08;

  // File-size model: 90% small files (§6.2.1, home-directory population).
  double small_file_fraction = 0.90;
  std::uint64_t small_blocks_min = 1, small_blocks_max = 8;
  std::uint64_t large_blocks_min = 16, large_blocks_max = 256;

  // Bound on the live-file population (delete pressure rises near it).
  std::size_t max_live_files = 20000;

  std::uint64_t seed = 1234;
};

/// Issues file-level operations against the live head of one line.
class WorkloadGenerator {
 public:
  WorkloadGenerator(FileSystem& fs, LineId line, WorkloadOptions options);

  /// Perform one file-level operation (create/delete/overwrite/append/
  /// truncate). Returns the number of block writes it issued.
  std::uint64_t step();

  /// Issue operations until at least `block_writes` pointer writes occurred.
  void run_block_writes(std::uint64_t block_writes);

  [[nodiscard]] std::size_t live_files() const noexcept { return files_.size(); }
  [[nodiscard]] LineId line() const noexcept { return line_; }

  /// Adopt the current population of `line` (used after cloning: the new
  /// line starts with the parent's files).
  void adopt_existing_files();

 private:
  std::uint64_t pick_file_size();
  InodeNo pick_victim();

  FileSystem& fs_;
  LineId line_;
  WorkloadOptions options_;
  util::Rng rng_;
  std::vector<InodeNo> files_;  // sampled uniformly; O(1) removal by swap
};

/// The paper's snapshot retention: promote CPs to "hourly" and "nightly"
/// snapshots and keep four of each (§6.1), expressed in CP counts so the
/// experiments scale.
struct SnapshotPolicy {
  std::uint64_t hourly_every_cps = 6;
  std::size_t keep_hourly = 4;
  std::uint64_t nightly_every_cps = 48;
  std::size_t keep_nightly = 4;
};

class SnapshotScheduler {
 public:
  SnapshotScheduler(FileSystem& fs, LineId line, SnapshotPolicy policy)
      : fs_(fs), line_(line), policy_(policy) {}

  /// Call once per completed CP (pass the running CP index from 1).
  void on_cp(std::uint64_t cp_index);

  [[nodiscard]] const std::vector<Epoch>& hourly() const noexcept {
    return hourly_;
  }
  [[nodiscard]] const std::vector<Epoch>& nightly() const noexcept {
    return nightly_;
  }

 private:
  FileSystem& fs_;
  LineId line_;
  SnapshotPolicy policy_;
  std::vector<Epoch> hourly_;
  std::vector<Epoch> nightly_;
};

/// Clone churn at the paper's pessimistic rate (~7 clones / 100 CPs, with
/// clone deletion keeping the population bounded).
struct ClonePolicy {
  double clones_per_cp = 0.07;
  std::size_t max_live_clones = 4;
  /// Block writes issued into a fresh clone before it may be deleted
  /// (exercises structural-inheritance overrides).
  std::uint64_t clone_writes = 64;
  std::uint64_t seed = 99;
};

class CloneChurner {
 public:
  CloneChurner(FileSystem& fs, LineId parent_line, ClonePolicy policy,
               const WorkloadOptions& wl_options);

  /// Call once per completed CP: may create a clone (of the most recent
  /// snapshot), write into clones, or delete the oldest clone.
  void on_cp(const std::vector<Epoch>& available_snapshots);

  [[nodiscard]] std::size_t live_clones() const noexcept { return clones_.size(); }
  [[nodiscard]] std::uint64_t clones_created() const noexcept { return created_; }

 private:
  struct LiveClone {
    LineId line;
    std::unique_ptr<WorkloadGenerator> gen;
  };

  FileSystem& fs_;
  LineId parent_line_;
  ClonePolicy policy_;
  WorkloadOptions wl_options_;
  util::Rng rng_;
  std::vector<LiveClone> clones_;
  std::uint64_t created_ = 0;
};

/// Table 1 application presets: the op mix and file-size model approximating
/// each benchmark's behaviour at the block-operation level.
WorkloadOptions dbench_preset(std::uint64_t seed);    ///< CIFS file service
WorkloadOptions varmail_preset(std::uint64_t seed);   ///< /var/mail spool
WorkloadOptions postmark_preset(std::uint64_t seed);  ///< small-file churn

}  // namespace backlog::fsim
