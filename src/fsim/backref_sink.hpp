// The interface fsim drives back-reference implementations through (§5):
// "we implement back references as a set of callback functions on the
// following events: adding a block reference, removing a block reference,
// and taking a consistency point."
//
// Three implementations exist, matching Table 1's three configurations:
//   * NullSink           — the "Base" configuration (no back references);
//   * baseline::NativeBackrefs — "Original": btrfs-style refcounted items in
//     a global update-in-place metadata B-tree;
//   * BacklogSink        — the paper's system (wraps core::BacklogDb).
#pragma once

#include <cstdint>

#include "core/backlog_db.hpp"
#include "core/backref_record.hpp"

namespace backlog::fsim {

/// Per-CP flush outcome in the units the paper reports.
struct SinkCpStats {
  core::Epoch cp = 0;
  std::uint64_t block_ops = 0;
  std::uint64_t pages_written = 0;
  std::uint64_t wall_micros = 0;
};

class BackrefSink {
 public:
  virtual ~BackrefSink() = default;

  virtual void add_reference(const core::BackrefKey& key) = 0;
  virtual void remove_reference(const core::BackrefKey& key) = 0;

  /// Flush whatever the implementation buffers. If this returns true from
  /// advances_cp(), the implementation advanced the global CP number itself
  /// (BacklogDb does, via its registry).
  virtual SinkCpStats on_consistency_point() = 0;
  [[nodiscard]] virtual bool advances_cp() const = 0;

  /// Total on-disk footprint of the back-reference meta-data.
  [[nodiscard]] virtual std::uint64_t db_bytes() const = 0;
};

/// Table 1 "Base": no back references at all.
class NullSink final : public BackrefSink {
 public:
  void add_reference(const core::BackrefKey&) override {}
  void remove_reference(const core::BackrefKey&) override {}
  SinkCpStats on_consistency_point() override { return {}; }
  [[nodiscard]] bool advances_cp() const override { return false; }
  [[nodiscard]] std::uint64_t db_bytes() const override { return 0; }
};

/// The paper's system, adapted to the sink interface. Does not own the db.
class BacklogSink final : public BackrefSink {
 public:
  explicit BacklogSink(core::BacklogDb& db) : db_(db) {}

  void add_reference(const core::BackrefKey& key) override {
    db_.add_reference(key);
  }
  void remove_reference(const core::BackrefKey& key) override {
    db_.remove_reference(key);
  }
  SinkCpStats on_consistency_point() override {
    const core::CpFlushStats s = db_.consistency_point();
    return {s.cp, s.block_ops, s.pages_written, s.wall_micros};
  }
  [[nodiscard]] bool advances_cp() const override { return true; }
  [[nodiscard]] std::uint64_t db_bytes() const override {
    return db_.stats().db_bytes;
  }

 private:
  core::BacklogDb& db_;
};

}  // namespace backlog::fsim
