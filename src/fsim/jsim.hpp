// jsim — an update-in-place journaling file system over Backlog (§8).
//
// The paper closes with: "we are currently experimenting with using Backlog
// in an update-in-place journaling file system." This module demonstrates
// that portability claim. The semantics differ from fsim in exactly the way
// that matters for back references:
//
//   * overwrites happen **in place**: the physical block does not move, so
//     no back-reference operations are generated at all — only allocations
//     (create/extend) and deallocations (truncate/delete) touch the
//     database. Overwrite-heavy workloads therefore generate far fewer
//     back-reference ops than on a write-anywhere system;
//   * there are no snapshots or clones (a single line, 0, always live);
//   * durability comes from a redo journal: operations since the last
//     checkpoint are logged, and recovery replays them to rebuild the
//     Backlog write store (§5.4's journal-replay path, exercised for real).
//
// Backlog needs no changes to support this — the point of the exercise.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "core/backlog_db.hpp"
#include "fsim/backref_sink.hpp"
#include "fsim/fsim.hpp"
#include "storage/env.hpp"

namespace backlog::fsim {

struct JsimOptions {
  std::uint64_t ops_per_cp = 4096;  ///< checkpoint cadence in journal entries
};

class JournalingFileSystem {
 public:
  JournalingFileSystem(storage::Env& env, JsimOptions options = {},
                       core::BacklogOptions backlog_options = {});

  JournalingFileSystem(const JournalingFileSystem&) = delete;
  JournalingFileSystem& operator=(const JournalingFileSystem&) = delete;

  // --- namespace ops ---------------------------------------------------------

  InodeNo create_file(std::uint64_t num_blocks);

  /// In-place (re)write: blocks inside the file do NOT move and generate no
  /// back-reference traffic; blocks past EOF are allocated.
  void write_file(InodeNo inode, std::uint64_t offset, std::uint64_t count);

  void truncate_file(InodeNo inode, std::uint64_t new_blocks);
  void delete_file(InodeNo inode);

  [[nodiscard]] bool file_exists(InodeNo inode) const {
    return files_.contains(inode);
  }
  [[nodiscard]] std::uint64_t file_size_blocks(InodeNo inode) const {
    return files_.at(inode).size();
  }

  // --- checkpoints & recovery --------------------------------------------------

  /// Commit: flush the Backlog write store and truncate the journal.
  SinkCpStats checkpoint();

  /// Crash simulation: discard the in-memory Backlog state (the WS vanished
  /// with the crash) and replay the journal into a freshly opened database,
  /// as a real journaling file system would at mount time.
  void recover_after_crash();

  [[nodiscard]] core::BacklogDb& db() { return *db_; }
  [[nodiscard]] const std::deque<JournalOp>& journal() const { return journal_; }
  [[nodiscard]] std::uint64_t backref_ops() const { return backref_ops_; }
  [[nodiscard]] std::uint64_t block_writes() const { return block_writes_; }
  [[nodiscard]] std::uint64_t max_block() const { return next_block_; }

  /// Ground truth for verification: every (block -> inode, offset) pointer.
  [[nodiscard]] std::map<core::BlockNo, std::pair<InodeNo, std::uint64_t>>
  live_pointers() const;

 private:
  core::BackrefKey make_key(core::BlockNo b, InodeNo inode,
                            std::uint64_t offset) const;
  void add_ref(core::BlockNo b, InodeNo inode, std::uint64_t offset);
  void remove_ref(core::BlockNo b, InodeNo inode, std::uint64_t offset);

  storage::Env& env_;
  JsimOptions options_;
  core::BacklogOptions backlog_options_;
  std::unique_ptr<core::BacklogDb> db_;

  std::map<InodeNo, std::vector<core::BlockNo>> files_;
  std::vector<core::BlockNo> free_list_;
  core::BlockNo next_block_ = 1;
  InodeNo next_inode_ = 2;
  std::deque<JournalOp> journal_;
  std::uint64_t backref_ops_ = 0;  ///< ops that reached the database
  std::uint64_t block_writes_ = 0; ///< all data-block writes incl. in-place
};

}  // namespace backlog::fsim
