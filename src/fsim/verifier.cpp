#include "fsim/verifier.hpp"

#include <algorithm>
#include <sstream>

namespace backlog::fsim {

namespace {
void add_image_refs(std::set<RefTuple>& out, const Image& img, core::LineId line,
                    core::Epoch version) {
  for (const auto& [inode, file] : img) {
    for (std::uint64_t off = 0; off < file->blocks.size(); ++off) {
      const core::BlockNo b = file->blocks[off];
      if (b != 0) out.emplace(b, inode, off, line, version);
    }
  }
}

std::string render(const RefTuple& t) {
  std::ostringstream os;
  os << "block=" << std::get<0>(t) << " inode=" << std::get<1>(t)
     << " off=" << std::get<2>(t) << " line=" << std::get<3>(t)
     << " version=" << std::get<4>(t);
  return os.str();
}
}  // namespace

std::set<RefTuple> ground_truth_refs(const FileSystem& fs) {
  std::set<RefTuple> out;
  const core::SnapshotRegistry& reg = fs.registry();
  for (const core::LineId line : reg.lines()) {
    for (const auto& [version, img] : fs.snapshot_images(line)) {
      add_image_refs(out, img, line, version);
    }
  }
  for (const core::LineId line : fs.live_lines()) {
    add_image_refs(out, fs.live_image(line), line, reg.current_cp());
  }
  return out;
}

std::set<RefTuple> database_refs(FileSystem& fs, std::uint64_t chunk_blocks) {
  std::set<RefTuple> out;
  core::BacklogDb& db = fs.db();
  const std::uint64_t limit = fs.max_block();
  for (core::BlockNo b = 0; b < limit; b += chunk_blocks) {
    const std::uint64_t count = std::min<std::uint64_t>(chunk_blocks, limit - b);
    for (const core::BackrefEntry& e : db.query(b, count)) {
      for (std::uint64_t i = 0; i < e.rec.key.length; ++i) {
        for (const core::Epoch v : e.versions) {
          out.emplace(e.rec.key.block + i, e.rec.key.inode, e.rec.key.offset + i,
                      e.rec.key.line, v);
        }
      }
    }
  }
  return out;
}

VerifyResult verify_backrefs(FileSystem& fs, std::size_t max_errors) {
  VerifyResult r;
  const std::set<RefTuple> truth = ground_truth_refs(fs);
  const std::set<RefTuple> db = database_refs(fs);
  r.ground_truth_refs = truth.size();
  r.db_refs = db.size();

  std::vector<RefTuple> missing, spurious;
  std::set_difference(truth.begin(), truth.end(), db.begin(), db.end(),
                      std::back_inserter(missing));
  std::set_difference(db.begin(), db.end(), truth.begin(), truth.end(),
                      std::back_inserter(spurious));
  for (const RefTuple& t : missing) {
    if (r.errors.size() >= max_errors) break;
    r.errors.push_back("missing from db: " + render(t));
  }
  for (const RefTuple& t : spurious) {
    if (r.errors.size() >= max_errors) break;
    r.errors.push_back("spurious in db:  " + render(t));
  }
  r.ok = missing.empty() && spurious.empty();
  return r;
}

}  // namespace backlog::fsim
