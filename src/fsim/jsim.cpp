#include "fsim/jsim.hpp"

#include <stdexcept>

namespace backlog::fsim {

JournalingFileSystem::JournalingFileSystem(storage::Env& env, JsimOptions options,
                                           core::BacklogOptions backlog_options)
    : env_(env), options_(options), backlog_options_(backlog_options) {
  db_ = std::make_unique<core::BacklogDb>(env_, backlog_options_);
}

core::BackrefKey JournalingFileSystem::make_key(core::BlockNo b, InodeNo inode,
                                                std::uint64_t offset) const {
  core::BackrefKey key;
  key.block = b;
  key.inode = inode;
  key.offset = offset;
  key.length = 1;
  key.line = 0;  // update-in-place: a single, always-live line
  return key;
}

void JournalingFileSystem::add_ref(core::BlockNo b, InodeNo inode,
                                   std::uint64_t offset) {
  const core::BackrefKey key = make_key(b, inode, offset);
  db_->add_reference(key);
  journal_.push_back({true, key});
  ++backref_ops_;
}

void JournalingFileSystem::remove_ref(core::BlockNo b, InodeNo inode,
                                      std::uint64_t offset) {
  const core::BackrefKey key = make_key(b, inode, offset);
  db_->remove_reference(key);
  journal_.push_back({false, key});
  ++backref_ops_;
}

InodeNo JournalingFileSystem::create_file(std::uint64_t num_blocks) {
  const InodeNo inode = next_inode_++;
  std::vector<core::BlockNo>& blocks = files_[inode];
  blocks.reserve(num_blocks);
  for (std::uint64_t i = 0; i < num_blocks; ++i) {
    core::BlockNo b;
    if (!free_list_.empty()) {
      b = free_list_.back();
      free_list_.pop_back();
    } else {
      b = next_block_++;
    }
    blocks.push_back(b);
    add_ref(b, inode, i);
    ++block_writes_;
  }
  return inode;
}

void JournalingFileSystem::write_file(InodeNo inode, std::uint64_t offset,
                                      std::uint64_t count) {
  auto it = files_.find(inode);
  if (it == files_.end()) throw std::invalid_argument("jsim: no such file");
  std::vector<core::BlockNo>& blocks = it->second;
  for (std::uint64_t i = offset; i < offset + count; ++i) {
    if (i < blocks.size()) {
      // In-place overwrite: the block stays where it is. No journal entry,
      // no back-reference change — the defining difference from
      // write-anywhere semantics.
      ++block_writes_;
      continue;
    }
    core::BlockNo b;
    if (!free_list_.empty()) {
      b = free_list_.back();
      free_list_.pop_back();
    } else {
      b = next_block_++;
    }
    blocks.push_back(b);
    add_ref(b, inode, i);
    ++block_writes_;
  }
}

void JournalingFileSystem::truncate_file(InodeNo inode, std::uint64_t new_blocks) {
  auto it = files_.find(inode);
  if (it == files_.end()) throw std::invalid_argument("jsim: no such file");
  std::vector<core::BlockNo>& blocks = it->second;
  while (blocks.size() > new_blocks) {
    const core::BlockNo b = blocks.back();
    remove_ref(b, inode, blocks.size() - 1);
    free_list_.push_back(b);
    blocks.pop_back();
  }
}

void JournalingFileSystem::delete_file(InodeNo inode) {
  truncate_file(inode, 0);
  files_.erase(inode);
}

SinkCpStats JournalingFileSystem::checkpoint() {
  const core::CpFlushStats s = db_->consistency_point();
  journal_.clear();
  return {s.cp, s.block_ops, s.pages_written, s.wall_micros};
}

void JournalingFileSystem::recover_after_crash() {
  // The in-memory write store dies with the crash; the on-disk state is the
  // last checkpoint. Re-open and redo the journal (§5.4) — through the
  // batched update path: the journal is validated history, so replaying it
  // as one apply_many call rebuilds the write store at bulk-insert speed
  // instead of paying the per-op callback overhead entry by entry.
  db_.reset();
  db_ = std::make_unique<core::BacklogDb>(env_, backlog_options_);
  std::vector<core::Update> redo;
  redo.reserve(journal_.size());
  for (const JournalOp& op : journal_) {
    redo.push_back({op.add ? core::Update::Kind::kAdd
                           : core::Update::Kind::kRemove,
                    op.key});
  }
  db_->apply_many(redo);
}

std::map<core::BlockNo, std::pair<InodeNo, std::uint64_t>>
JournalingFileSystem::live_pointers() const {
  std::map<core::BlockNo, std::pair<InodeNo, std::uint64_t>> out;
  for (const auto& [inode, blocks] : files_) {
    for (std::uint64_t off = 0; off < blocks.size(); ++off) {
      out[blocks[off]] = {inode, off};
    }
  }
  return out;
}

}  // namespace backlog::fsim
