// Unit tests for util: hashing, Bloom filters, RNG/distributions, CRC, serde.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "util/bloom.hpp"
#include "util/crc32c.hpp"
#include "util/hash.hpp"
#include "util/random.hpp"
#include "util/serde.hpp"

namespace bu = backlog::util;

TEST(Hash, Deterministic) {
  const char data[] = "write-anywhere file system";
  EXPECT_EQ(bu::hash_bytes(data, sizeof data - 1),
            bu::hash_bytes(data, sizeof data - 1));
  EXPECT_NE(bu::hash_bytes(data, sizeof data - 1),
            bu::hash_bytes(data, sizeof data - 2));
  EXPECT_NE(bu::hash_bytes(data, sizeof data - 1, 1),
            bu::hash_bytes(data, sizeof data - 1, 2));
}

TEST(Hash, CoversAllLengthTails) {
  // Exercise the 32-byte block loop plus the 8/4/1-byte tails.
  std::vector<std::uint8_t> buf(100);
  for (std::size_t i = 0; i < buf.size(); ++i) buf[i] = static_cast<std::uint8_t>(i);
  std::set<std::uint64_t> hashes;
  for (std::size_t len = 0; len <= buf.size(); ++len) {
    hashes.insert(bu::hash_bytes(buf.data(), len));
  }
  // All prefixes should hash differently (overwhelmingly likely).
  EXPECT_EQ(hashes.size(), buf.size() + 1);
}

TEST(Hash, U64AvalanchesSingleBitFlips) {
  const std::uint64_t base = bu::hash_u64(0xdeadbeefULL);
  for (int bit = 0; bit < 64; ++bit) {
    EXPECT_NE(base, bu::hash_u64(0xdeadbeefULL ^ (1ULL << bit)));
  }
}

TEST(Bloom, EmptyFilterRejectsEverything) {
  bu::BloomFilter f;
  EXPECT_TRUE(f.empty());
  EXPECT_FALSE(f.may_contain(42));
}

TEST(Bloom, NoFalseNegatives) {
  bu::BloomFilter f(8 * 1024 * 8);
  for (std::uint64_t k = 0; k < 5000; ++k) f.insert(k * 977);
  for (std::uint64_t k = 0; k < 5000; ++k) EXPECT_TRUE(f.may_contain(k * 977));
}

TEST(Bloom, FalsePositiveRateNearExpected) {
  // Paper sizing: 8 bits/key with 4 hashes -> ~2.4% FPR.
  const std::size_t n = 32000;
  bu::BloomFilter f = bu::BloomFilter::sized_for(n);
  EXPECT_EQ(f.byte_size(), 32u * 1024u);  // the WAFL default from §5.1
  for (std::uint64_t k = 0; k < n; ++k) f.insert(k);
  std::size_t fp = 0;
  const std::size_t probes = 100000;
  for (std::uint64_t k = 0; k < probes; ++k) {
    if (f.may_contain(1'000'000'000ULL + k)) ++fp;
  }
  const double rate = static_cast<double>(fp) / probes;
  EXPECT_LT(rate, 0.05);  // well under 2x the theoretical 2.4%
  EXPECT_GT(rate, 0.001); // and it is a real Bloom filter, not a set
  EXPECT_NEAR(f.expected_fpr(n), 0.024, 0.01);
}

TEST(Bloom, HalvingPreservesMembership) {
  bu::BloomFilter f(64 * 1024);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t k = 0; k < 2000; ++k) keys.push_back(k * 7919);
  for (auto k : keys) f.insert(k);
  const std::size_t before = f.bit_count();
  f.halve();
  EXPECT_EQ(f.bit_count(), before / 2);
  for (auto k : keys) EXPECT_TRUE(f.may_contain(k));
}

TEST(Bloom, ShrinkToFitStopsAtRightSize) {
  bu::BloomFilter f = bu::BloomFilter::sized_for(32000);
  for (std::uint64_t k = 0; k < 100; ++k) f.insert(k);
  f.shrink_to_fit(100);
  // 100 keys * 8 bits = 800 -> rounded up to 1024 bits.
  EXPECT_EQ(f.bit_count(), 1024u);
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(f.may_contain(k));
}

TEST(Bloom, SerializeRoundTrip) {
  bu::BloomFilter f(4096);
  for (std::uint64_t k = 0; k < 100; ++k) f.insert(k * 31);
  std::vector<std::uint8_t> bytes;
  f.serialize(bytes);
  std::size_t consumed = 0;
  bu::BloomFilter g = bu::BloomFilter::deserialize(bytes, &consumed);
  EXPECT_EQ(consumed, bytes.size());
  EXPECT_EQ(g.bit_count(), f.bit_count());
  for (std::uint64_t k = 0; k < 100; ++k) EXPECT_TRUE(g.may_contain(k * 31));
}

TEST(Bloom, DeserializeRejectsGarbage) {
  std::vector<std::uint8_t> tiny(4, 0);
  EXPECT_THROW(bu::BloomFilter::deserialize(tiny), std::runtime_error);
  std::vector<std::uint8_t> bad(16, 0);
  bad[0] = 3;  // word count 3: not a power of two
  EXPECT_THROW(bu::BloomFilter::deserialize(bad), std::runtime_error);
}

TEST(Rng, DeterministicAcrossInstances) {
  bu::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, BelowStaysInBounds) {
  bu::Rng r(1);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.below(17), 17u);
    const std::uint64_t v = r.between(5, 9);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 9u);
  }
}

TEST(Rng, UniformCoversRange) {
  bu::Rng r(3);
  double mn = 1, mx = 0, sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double u = r.uniform();
    mn = std::min(mn, u);
    mx = std::max(mx, u);
    sum += u;
  }
  EXPECT_GE(mn, 0.0);
  EXPECT_LT(mx, 1.0);
  EXPECT_NEAR(sum / n, 0.5, 0.02);
}

TEST(Rng, ChanceRespectsBias) {
  bu::Rng r(11);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.1) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.1, 0.01);
}

TEST(Zipf, RanksAreInRangeAndSkewed) {
  bu::Rng r(5);
  bu::ZipfSampler z(1000, 1.15);
  std::map<std::uint64_t, int> counts;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t k = z.sample(r);
    ASSERT_GE(k, 1u);
    ASSERT_LE(k, 1000u);
    ++counts[k];
  }
  // Rank 1 must dominate rank 10 which must dominate rank 100.
  EXPECT_GT(counts[1], counts[10]);
  EXPECT_GT(counts[10], counts[100]);
  // Rank 1 frequency for alpha=1.15 over 1000 ranks is ~18%; loose bounds.
  EXPECT_GT(counts[1], n / 10);
  EXPECT_LT(counts[1], n / 2);
}

TEST(Zipf, RejectsBadParameters) {
  EXPECT_THROW(bu::ZipfSampler(0, 1.0), std::invalid_argument);
  EXPECT_THROW(bu::ZipfSampler(10, 0.0), std::invalid_argument);
}

TEST(Zipf, SingleElementAlwaysRankOne) {
  bu::Rng r(9);
  bu::ZipfSampler z(1, 1.2);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.sample(r), 1u);
}

TEST(DiscreteSample, FollowsWeights) {
  bu::Rng r(13);
  std::vector<int> counts(3, 0);
  const int n = 30000;
  for (int i = 0; i < n; ++i) {
    ++counts[bu::sample_discrete(r, {1.0, 2.0, 1.0})];
  }
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.5, 0.02);
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.25, 0.02);
}

TEST(DiscreteSample, ZeroMassThrows) {
  bu::Rng r(1);
  std::vector<double> w = {0.0, 0.0};
  EXPECT_THROW(bu::sample_discrete(r, w), std::invalid_argument);
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 test vector: 32 bytes of zeros.
  std::vector<std::uint8_t> zeros(32, 0);
  EXPECT_EQ(bu::crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
  std::vector<std::uint8_t> ones(32, 0xff);
  EXPECT_EQ(bu::crc32c(ones.data(), ones.size()), 0x62a8ab43u);
  const char* s = "123456789";
  EXPECT_EQ(bu::crc32c(s, 9), 0xe3069283u);
}

TEST(Crc32c, ChainingMatchesOneShot) {
  const char* s = "backlog-backrefs";
  const auto whole = bu::crc32c(s, 16);
  const auto part = bu::crc32c(s + 8, 8, bu::crc32c(s, 8));
  EXPECT_EQ(whole, part);
}

TEST(Serde, BigEndianOrderMatchesNumericOrder) {
  bu::Rng r(17);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = r.next(), b = r.next();
    std::uint8_t ea[8], eb[8];
    bu::put_be64(ea, a);
    bu::put_be64(eb, b);
    EXPECT_EQ(a < b, std::memcmp(ea, eb, 8) < 0);
    EXPECT_EQ(a, bu::get_be64(ea));
  }
}

TEST(Serde, LittleEndianRoundTrip) {
  std::uint8_t buf[8];
  bu::put_u64(buf, 0x1122334455667788ULL);
  EXPECT_EQ(bu::get_u64(buf), 0x1122334455667788ULL);
  bu::put_u32(buf, 0xa1b2c3d4u);
  EXPECT_EQ(bu::get_u32(buf), 0xa1b2c3d4u);
  bu::put_u16(buf, 0xbeefu);
  EXPECT_EQ(bu::get_u16(buf), 0xbeefu);
}

// --- bounds-checked Reader/Writer (the only decode path for untrusted bytes) --

TEST(Serde, WriterReaderRoundTrip) {
  bu::Writer w;
  w.u8(7);
  w.u16(0xbeef);
  w.u32(0xa1b2c3d4u);
  w.u64(0x1122334455667788ULL);
  w.f64(2.5);
  w.string("hello");
  const std::vector<std::uint8_t> raw = {9, 8, 7};
  w.bytes(raw);

  bu::Reader r(w.data());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xa1b2c3d4u);
  EXPECT_EQ(r.u64(), 0x1122334455667788ULL);
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_EQ(r.string(16), "hello");
  const auto b = r.bytes(3);
  EXPECT_EQ(std::vector<std::uint8_t>(b.begin(), b.end()), raw);
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Serde, ReaderThrowsOnOverrun) {
  bu::Writer w;
  w.u32(1);
  bu::Reader r(w.data());
  r.u16();
  EXPECT_THROW(r.u32(), bu::SerdeError);  // only 2 bytes left
  bu::Reader r2(w.data());
  EXPECT_THROW(r2.bytes(5), bu::SerdeError);
  bu::Reader r3(w.data());
  EXPECT_THROW(r3.skip(5), bu::SerdeError);
}

TEST(Serde, ReaderStringAndCountCapsBeforeAllocation) {
  // A hostile length prefix must be rejected by the declared cap, never
  // reach an allocation or a read past the buffer.
  bu::Writer w;
  w.string("abcdef");
  bu::Reader r(w.data());
  EXPECT_THROW(r.string(3), bu::SerdeError);  // 6 > cap 3

  bu::Writer w2;
  w2.u32(0xffffffffu);  // count prefix claiming 4 billion elements
  bu::Reader r2(w2.data());
  EXPECT_THROW(r2.count(1024), bu::SerdeError);

  // A length prefix larger than the remaining bytes is equally fatal even
  // when under the cap.
  bu::Writer w3;
  w3.u32(100);  // string length 100, but no bytes follow
  bu::Reader r3(w3.data());
  EXPECT_THROW(r3.string(1 << 20), bu::SerdeError);
}
