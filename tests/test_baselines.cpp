// Tests of the two comparison systems: btrfs-style native back references
// ("Original" in Table 1) and the naive conceptual table (§4.1).
#include <gtest/gtest.h>

#include "baseline/naive_backrefs.hpp"
#include "baseline/native_backrefs.hpp"
#include "fsim/fsim.hpp"
#include "storage/env.hpp"

namespace bb = backlog::baseline;
namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;

namespace {
bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2, std::uint64_t off = 0,
                   bc::LineId line = 0) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.offset = off;
  k.length = 1;
  k.line = line;
  return k;
}
}  // namespace

TEST(NativeBackrefs, RefcountsAccumulate) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NativeBackrefs native(env);
  native.add_reference(key(10));
  native.add_reference(key(10));  // dedup: second pointer to the same block
  native.add_reference(key(11, 3));
  native.on_consistency_point();
  auto owners = native.query(10);
  ASSERT_EQ(owners.size(), 1u);
  EXPECT_EQ(owners[0].refcount, 2u);
  EXPECT_EQ(native.query(10, 2).size(), 2u);
}

TEST(NativeBackrefs, RemovalDropsToZeroAndErases) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NativeBackrefs native(env);
  native.add_reference(key(10));
  native.on_consistency_point();
  native.remove_reference(key(10));
  native.on_consistency_point();
  EXPECT_TRUE(native.query(10).empty());
  EXPECT_EQ(native.record_count(), 0u);
}

TEST(NativeBackrefs, SameCpChurnCancelsBeforeDisk) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NativeBackrefs native(env);
  native.add_reference(key(5));
  native.remove_reference(key(5));
  native.on_consistency_point();
  EXPECT_EQ(native.record_count(), 0u);
}

TEST(NativeBackrefs, CpFlushChargesPageWrites) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NativeBackrefs native(env);
  for (std::uint64_t b = 0; b < 2000; ++b) native.add_reference(key(b));
  const auto s = native.on_consistency_point();
  EXPECT_EQ(s.block_ops, 2000u);
  EXPECT_GT(s.pages_written, 0u);
}

TEST(NaiveBackrefs, LifecycleMatchesConceptualTable) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NaiveBackrefs naive(env);
  naive.add_reference(key(100));            // from = 1, to = inf
  naive.on_consistency_point();             // cp -> 2
  naive.remove_reference(key(100));         // to = 2
  naive.add_reference(key(100));            // new record from = 2
  naive.on_consistency_point();             // cp -> 3
  const auto recs = naive.query(100);
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].from, 1u);
  EXPECT_EQ(recs[0].to, 2u);
  EXPECT_EQ(recs[1].from, 2u);
  EXPECT_EQ(recs[1].to, bc::kInfinity);
}

TEST(NaiveBackrefs, RemoveOfUnknownReferenceThrows) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NaiveBackrefs naive(env);
  EXPECT_THROW(naive.remove_reference(key(1)), std::logic_error);
}

TEST(NaiveBackrefs, DeallocationReadsTheTable) {
  // The §4.1 point: the naive design's removal is a read-modify-write. With
  // a tiny cache and a large table, removals must incur page reads, whereas
  // Backlog's update path never reads.
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NaiveOptions opts;
  opts.cache_pages = 8;
  bb::NaiveBackrefs naive(env, opts);
  for (std::uint64_t b = 0; b < 20000; ++b) naive.add_reference(key(b * 7));
  naive.on_consistency_point();
  const auto before = env.stats();
  // Deallocate in a scattered order, as a real free pattern would be.
  backlog::util::Rng rng(3);
  std::vector<std::uint64_t> victims;
  for (std::uint64_t b = 0; b < 2000; ++b) victims.push_back(b);
  for (std::size_t i = victims.size(); i > 1; --i) {
    std::swap(victims[i - 1], victims[rng.below(i)]);
  }
  for (const std::uint64_t b : victims) naive.remove_reference(key(b * 7));
  const auto delta = env.stats() - before;
  EXPECT_GT(delta.page_reads, 100u)
      << "read-modify-write must hit disk once the table exceeds the cache";
}

TEST(Baselines, FsimRunsOnAllThreeConfigurations) {
  // The Table 1 setup: identical workload on Base / Original / Backlog.
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0.0;
  fo.rng_seed = 5;

  auto drive = [&](bf::FileSystem& fs) {
    std::vector<bf::InodeNo> files;
    for (int i = 0; i < 50; ++i) files.push_back(fs.create_file(0, 4));
    for (int i = 0; i < 25; ++i) fs.write_file(0, files[i], 0, 2);
    for (int i = 0; i < 10; ++i) fs.delete_file(0, files[i]);
    return fs.consistency_point();
  };

  bf::NullSink null;
  bf::FileSystem base(fo, null);
  const auto s_base = drive(base);
  EXPECT_EQ(s_base.pages_written, 0u);

  bs::TempDir dir_native;
  bs::Env env_native(dir_native.path());
  bb::NativeBackrefs native(env_native);
  bf::FileSystem fs_native(fo, native);
  const auto s_native = drive(fs_native);
  EXPECT_GT(s_native.pages_written, 0u);

  bs::TempDir dir_backlog;
  bs::Env env_backlog(dir_backlog.path());
  bf::FileSystem fs_backlog(env_backlog, fo);
  const auto s_backlog = drive(fs_backlog);
  EXPECT_GT(s_backlog.pages_written, 0u);

  // All three observed the same number of block operations.
  EXPECT_EQ(s_native.block_ops, s_backlog.block_ops);
}

TEST(Baselines, NativeMatchesBacklogLiveOwners) {
  // Cross-check: on a clone-free workload the native baseline's current
  // owners must equal Backlog's masked live view.
  bf::FsimOptions fo;
  fo.ops_per_cp = 1000000;
  fo.dedup_fraction = 0.3;
  fo.rng_seed = 11;

  bs::TempDir dir_n, dir_b;
  bs::Env env_n(dir_n.path()), env_b(dir_b.path());
  bb::NativeBackrefs native(env_n);
  bf::FileSystem fs_n(fo, native);
  bf::FileSystem fs_b(env_b, fo);

  auto drive = [](bf::FileSystem& fs) {
    std::vector<bf::InodeNo> files;
    for (int i = 0; i < 40; ++i) files.push_back(fs.create_file(0, 5));
    for (int i = 0; i < 20; ++i) fs.write_file(0, files[i], 1, 2);
    for (int i = 30; i < 40; ++i) fs.delete_file(0, files[i]);
    fs.consistency_point();
  };
  drive(fs_n);
  drive(fs_b);

  const auto limit = std::max(fs_n.max_block(), fs_b.max_block());
  for (bc::BlockNo b = 0; b < limit; ++b) {
    const auto n_owners = native.query(b);
    std::size_t n_refs = 0;
    for (const auto& o : n_owners) n_refs += o.refcount;
    std::size_t b_refs = 0;
    for (const auto& e : fs_b.db().query(b)) {
      if (e.rec.to == bc::kInfinity) ++b_refs;
    }
    ASSERT_EQ(n_refs, b_refs) << "block " << b;
  }
}
