// Tests for the LSM layer: run files (bottom-up B-trees), merges, deletion
// vectors.
#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <vector>

#include "lsm/deletion_vector.hpp"
#include "lsm/merge.hpp"
#include "lsm/run_file.hpp"
#include "storage/env.hpp"
#include "util/random.hpp"
#include "util/serde.hpp"

namespace bl = backlog::lsm;
namespace bs = backlog::storage;
namespace bu = backlog::util;

namespace {

constexpr std::size_t kRec = 16;  // test records: [be64 key][be64 payload]

std::vector<std::uint8_t> rec(std::uint64_t key, std::uint64_t payload = 0) {
  std::vector<std::uint8_t> out(kRec);
  bu::put_be64(out.data(), key);
  bu::put_be64(out.data() + 8, payload);
  return out;
}

/// Writes n sorted records with keys = base + i*stride; returns their keys.
std::vector<std::uint64_t> write_run(bs::Env& env, const std::string& name,
                                     std::uint64_t n, std::uint64_t base = 0,
                                     std::uint64_t stride = 1) {
  bl::RunWriter w(env, name, kRec, n);
  std::vector<std::uint64_t> keys;
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t k = base + i * stride;
    w.add(rec(k, i), k);
    keys.push_back(k);
  }
  w.finish();
  return keys;
}

std::vector<std::uint64_t> collect_keys(bl::RecordStream& s) {
  std::vector<std::uint64_t> out;
  while (s.valid()) {
    out.push_back(bu::get_be64(s.record().data()));
    s.next();
  }
  return out;
}

}  // namespace

// Parameterized over run sizes that hit the interesting shapes: empty,
// single record, exactly one leaf page (256 recs at 16 B), one-over, and
// multi-level index (> 256 leaf pages -> 2 index levels).
class RunFileSizes : public ::testing::TestWithParam<std::uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Shapes, RunFileSizes,
                         ::testing::Values(0, 1, 255, 256, 257, 4096, 70000));

TEST_P(RunFileSizes, RoundTripAndLowerBound) {
  const std::uint64_t n = GetParam();
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(1024 * bs::kPageSize);
  write_run(env, "r.run", n, /*base=*/10, /*stride=*/3);
  bl::RunFile run(env, "r.run", cache);
  EXPECT_EQ(run.record_count(), n);

  // Full scan returns everything in order.
  auto s = run.scan();
  const auto keys = collect_keys(*s);
  ASSERT_EQ(keys.size(), n);
  for (std::uint64_t i = 0; i < n; ++i) EXPECT_EQ(keys[i], 10 + i * 3);

  if (n == 0) {
    std::uint8_t p[8];
    bu::put_be64(p, 0);
    EXPECT_EQ(run.lower_bound({p, 8}), 0u);
    return;
  }
  EXPECT_EQ(bu::get_be64(run.min_record()->data()), 10u);
  EXPECT_EQ(bu::get_be64(run.max_record()->data()), 10 + (n - 1) * 3);

  // lower_bound agrees with the definition at boundaries, between keys and
  // beyond the ends.
  auto lb = [&](std::uint64_t key) {
    std::uint8_t p[8];
    bu::put_be64(p, key);
    return run.lower_bound({p, 8});
  };
  EXPECT_EQ(lb(0), 0u);
  EXPECT_EQ(lb(10), 0u);
  EXPECT_EQ(lb(11), 1u);    // between key 10 and 13
  EXPECT_EQ(lb(13), 1u);
  EXPECT_EQ(lb(10 + (n - 1) * 3), n - 1);
  EXPECT_EQ(lb(10 + (n - 1) * 3 + 1), n);
  // Random probes against the analytic answer.
  bu::Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t probe = rng.below(10 + n * 3 + 20);
    const std::uint64_t want =
        probe <= 10 ? 0
                    : std::min<std::uint64_t>(n, (probe - 10 + 2) / 3);
    EXPECT_EQ(lb(probe), want) << "probe=" << probe;
  }
}

TEST(RunFile, SeekStreamsFromPrefix) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(1024 * bs::kPageSize);
  write_run(env, "r.run", 1000, 0, 2);  // keys 0,2,...,1998
  bl::RunFile run(env, "r.run", cache);
  std::uint8_t p[8];
  bu::put_be64(p, 500);
  auto s = run.seek({p, 8});
  ASSERT_TRUE(s->valid());
  EXPECT_EQ(bu::get_be64(s->record().data()), 500u);
}

TEST(RunFile, RejectsUnsortedInput) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bl::RunWriter w(env, "r.run", kRec, 10);
  w.add(rec(5), 5);
  EXPECT_THROW(w.add(rec(4), 4), std::logic_error);
}

TEST(RunFile, DuplicateKeysAllowed) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(64 * bs::kPageSize);
  bl::RunWriter w(env, "r.run", kRec, 10);
  w.add(rec(7, 1), 7);
  w.add(rec(7, 2), 7);
  w.add(rec(7, 3), 7);
  w.finish();
  bl::RunFile run(env, "r.run", cache);
  std::uint8_t p[8];
  bu::put_be64(p, 7);
  EXPECT_EQ(run.lower_bound({p, 8}), 0u);  // first of the duplicates
  auto s = run.scan();
  EXPECT_EQ(collect_keys(*s).size(), 3u);
}

TEST(RunFile, BloomFilterSkipsAbsentKeys) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(64 * bs::kPageSize);
  write_run(env, "r.run", 1000, 0, 10);  // keys 0,10,20,...
  bl::RunFile run(env, "r.run", cache);
  for (std::uint64_t k = 0; k < 10000; k += 10) {
    EXPECT_TRUE(run.may_contain(k));  // no false negatives
  }
  std::size_t fp = 0;
  for (std::uint64_t k = 1'000'000; k < 1'010'000; ++k) {
    if (run.may_contain(k)) ++fp;
  }
  EXPECT_LT(fp, 600u);  // ~2.4% expected -> allow 6%
}

TEST(RunFile, BloomShrinksForSmallRuns) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(64 * bs::kPageSize);
  // expected 32000 keys but only 10 added: filter must have been halved down.
  bl::RunWriter w(env, "r.run", kRec, 32000);
  for (std::uint64_t i = 0; i < 10; ++i) w.add(rec(i), i);
  w.finish();
  bl::RunFile run(env, "r.run", cache);
  EXPECT_LE(run.bloom().bit_count(), 128u);
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(run.may_contain(i));
}

TEST(RunFile, WriterProducesNoReads) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  const auto before = env.stats();
  write_run(env, "r.run", 50000);
  const auto delta = env.stats() - before;
  EXPECT_EQ(delta.page_reads, 0u);  // §5.1: bottom-up build, zero reads
  EXPECT_GT(delta.page_writes, 0u);
}

TEST(RunFile, StreamFromMidpoint) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(64 * bs::kPageSize);
  write_run(env, "r.run", 1000);
  bl::RunFile run(env, "r.run", cache);
  auto s = run.stream_from(990);
  EXPECT_EQ(collect_keys(*s).size(), 10u);
}

TEST(VectorStream, BasicIteration) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t k : {1, 5, 9}) {
    auto r = rec(k);
    buf.insert(buf.end(), r.begin(), r.end());
  }
  bl::VectorStream s(std::move(buf), kRec);
  EXPECT_EQ(collect_keys(s), (std::vector<std::uint64_t>{1, 5, 9}));
}

TEST(Merge, InterleavesSortedInputs) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bs::BlockCache cache(64 * bs::kPageSize);
  write_run(env, "a.run", 100, 0, 3);   // 0,3,6,...
  write_run(env, "b.run", 100, 1, 3);   // 1,4,7,...
  write_run(env, "c.run", 100, 2, 3);   // 2,5,8,...
  bl::RunFile a(env, "a.run", cache), b(env, "b.run", cache),
      c(env, "c.run", cache);
  std::vector<std::unique_ptr<bl::RecordStream>> inputs;
  inputs.push_back(a.scan());
  inputs.push_back(b.scan());
  inputs.push_back(c.scan());
  bl::MergeStream m(std::move(inputs), kRec);
  const auto keys = collect_keys(m);
  ASSERT_EQ(keys.size(), 300u);
  for (std::uint64_t i = 0; i < 300; ++i) EXPECT_EQ(keys[i], i);
}

TEST(Merge, KeepsDuplicatesAcrossInputs) {
  std::vector<std::unique_ptr<bl::RecordStream>> inputs;
  for (int rep = 0; rep < 3; ++rep) {
    std::vector<std::uint8_t> buf;
    auto r = rec(42, rep);
    buf.insert(buf.end(), r.begin(), r.end());
    inputs.push_back(std::make_unique<bl::VectorStream>(std::move(buf), kRec));
  }
  bl::MergeStream m(std::move(inputs), kRec);
  EXPECT_EQ(collect_keys(m).size(), 3u);
}

TEST(Merge, HandlesEmptyAndNullInputs) {
  std::vector<std::unique_ptr<bl::RecordStream>> inputs;
  inputs.push_back(nullptr);
  inputs.push_back(std::make_unique<bl::VectorStream>(std::vector<std::uint8_t>{},
                                                      kRec));
  std::vector<std::uint8_t> buf = rec(1);
  inputs.push_back(std::make_unique<bl::VectorStream>(buf, kRec));
  bl::MergeStream m(std::move(inputs), kRec);
  EXPECT_EQ(collect_keys(m), std::vector<std::uint64_t>{1});
}

TEST(Merge, DedupStreamCollapsesExactDuplicates) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t k : {1, 1, 1, 2, 3, 3}) {
    auto r = rec(k, 0);
    buf.insert(buf.end(), r.begin(), r.end());
  }
  auto inner = std::make_unique<bl::VectorStream>(std::move(buf), kRec);
  bl::DedupStream d(std::move(inner), kRec);
  EXPECT_EQ(collect_keys(d), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(DeletionVector, InsertContainsErase) {
  bl::DeletionVector dv(kRec);
  const auto r1 = rec(10), r2 = rec(20);
  EXPECT_FALSE(dv.contains(r1));
  dv.insert(r1);
  EXPECT_TRUE(dv.contains(r1));
  EXPECT_FALSE(dv.contains(r2));
  EXPECT_TRUE(dv.erase(r1));
  EXPECT_FALSE(dv.erase(r1));
  EXPECT_TRUE(dv.empty());
}

TEST(DeletionVector, FilteredStreamHidesEntries) {
  std::vector<std::uint8_t> buf;
  for (std::uint64_t k : {1, 2, 3, 4, 5}) {
    auto r = rec(k);
    buf.insert(buf.end(), r.begin(), r.end());
  }
  bl::DeletionVector dv(kRec);
  dv.insert(rec(1));  // first (tests skip-at-init)
  dv.insert(rec(3));  // middle
  dv.insert(rec(5));  // last
  auto inner = std::make_unique<bl::VectorStream>(std::move(buf), kRec);
  bl::FilteredStream f(std::move(inner), dv);
  EXPECT_EQ(collect_keys(f), (std::vector<std::uint64_t>{2, 4}));
}

TEST(DeletionVector, EraseBlockRange) {
  bl::DeletionVector dv(kRec);
  for (std::uint64_t k : {5, 10, 15, 20, 25}) dv.insert(rec(k));
  EXPECT_EQ(dv.erase_block_range(10, 21), 3u);
  EXPECT_EQ(dv.size(), 2u);
  EXPECT_TRUE(dv.contains(rec(5)));
  EXPECT_TRUE(dv.contains(rec(25)));
}

TEST(DeletionVector, SaveLoadRoundTrip) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bl::DeletionVector dv(kRec);
  for (std::uint64_t k = 0; k < 100; k += 7) dv.insert(rec(k));
  dv.save(env, "dv.bin");
  bl::DeletionVector dv2(kRec);
  dv2.load(env, "dv.bin");
  EXPECT_EQ(dv2.size(), dv.size());
  for (std::uint64_t k = 0; k < 100; k += 7) EXPECT_TRUE(dv2.contains(rec(k)));
  // Loading a missing file yields an empty vector.
  bl::DeletionVector dv3(kRec);
  dv3.load(env, "missing.bin");
  EXPECT_TRUE(dv3.empty());
}

TEST(DeletionVector, LoadRejectsSizeMismatch) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bl::DeletionVector dv(kRec);
  dv.insert(rec(1));
  dv.save(env, "dv.bin");
  bl::DeletionVector other(kRec + 8);
  EXPECT_THROW(other.load(env, "dv.bin"), std::runtime_error);
}

// --- corrupt-run-file hardening ----------------------------------------------
// The footer is untrusted input: every field a bit flip can reach must either
// be rejected at open or lead to a well-defined (possibly wrong, never
// crashing) read. These tests patch bytes on disk directly.

namespace {

// Footer field offsets within the final page (mirror run_file.cpp).
constexpr std::uint64_t kFtRecordSize = 8;
constexpr std::uint64_t kFtRecordCount = 16;
constexpr std::uint64_t kFtLeafPages = 24;
constexpr std::uint64_t kFtLevelCount = 32;
constexpr std::uint64_t kFtBloomOffset = 40;
constexpr std::uint64_t kFtBloomSize = 48;
constexpr std::uint64_t kFtLevels = 56;

std::uint64_t footer_start(const std::filesystem::path& file) {
  return std::filesystem::file_size(file) - bs::kPageSize;
}

void poke_u64(const std::filesystem::path& file, std::uint64_t off,
              std::uint64_t value) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  std::uint8_t buf[8];
  bu::put_u64(buf, value);
  f.seekp(static_cast<std::streamoff>(off));
  f.write(reinterpret_cast<const char*>(buf), 8);
}

void flip_bit(const std::filesystem::path& file, std::uint64_t off, int bit) {
  std::fstream f(file, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.seekg(static_cast<std::streamoff>(off));
  char b = 0;
  f.read(&b, 1);
  b = static_cast<char>(b ^ (1 << bit));
  f.seekp(static_cast<std::streamoff>(off));
  f.write(&b, 1);
}

}  // namespace

TEST(RunFile, CorruptFooterFieldsRejected) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  write_run(env, "r.run", 600);  // 2+ leaf pages -> one index level
  const std::filesystem::path file =
      std::filesystem::path(dir.path()) / "r.run";
  const std::filesystem::path pristine =
      std::filesystem::path(dir.path()) / "pristine.bin";
  std::filesystem::copy_file(file, pristine);
  const std::uint64_t fs = footer_start(file);

  const auto expect_rejected = [&](std::uint64_t field, std::uint64_t value) {
    std::filesystem::copy_file(pristine, file,
                               std::filesystem::copy_options::overwrite_existing);
    poke_u64(file, fs + field, value);
    bs::BlockCache cache(16 * bs::kPageSize);
    EXPECT_THROW(bl::RunFile(env, "r.run", cache), std::runtime_error)
        << "field offset " << field << " value " << value;
  };

  expect_rejected(kFtRecordSize, 0);          // division by zero otherwise
  expect_rejected(kFtRecordSize, 2000);       // over the writer's 1024 cap
  expect_rejected(kFtRecordSize, UINT64_MAX);
  expect_rejected(kFtRecordCount, UINT64_MAX);     // over leaf capacity
  expect_rejected(kFtLeafPages, UINT64_MAX);       // past the file
  expect_rejected(kFtLevelCount, 9);               // over kMaxLevels
  expect_rejected(kFtLevelCount, UINT64_MAX);
  expect_rejected(kFtBloomOffset, UINT64_MAX);     // past the file
  expect_rejected(kFtBloomSize, UINT64_MAX);       // offset+size would wrap
  expect_rejected(kFtLevels, UINT64_MAX);          // level 0 start page
  expect_rejected(kFtLevels + 8, UINT64_MAX);      // level 0 page count
  expect_rejected(kFtLevels + 16, UINT64_MAX);     // level 0 entry count

  // And the pristine file still opens after all that.
  std::filesystem::copy_file(pristine, file,
                             std::filesystem::copy_options::overwrite_existing);
  bs::BlockCache cache(16 * bs::kPageSize);
  bl::RunFile run(env, "r.run", cache);
  EXPECT_EQ(run.record_count(), 600u);
}

TEST(RunFile, FooterBitFlipsNeverCrash) {
  // Flip every bit of the footer's structured prefix (magic through the
  // level table), one at a time. Each mutant must either throw or open and
  // answer a query — under ASan/UBSan this proves no flip reaches an
  // out-of-bounds read.
  bs::TempDir dir;
  bs::Env env(dir.path());
  write_run(env, "r.run", 600);
  const std::filesystem::path file =
      std::filesystem::path(dir.path()) / "r.run";
  const std::filesystem::path pristine =
      std::filesystem::path(dir.path()) / "pristine.bin";
  std::filesystem::copy_file(file, pristine);
  const std::uint64_t fs = footer_start(file);

  int rejected = 0, survived = 0;
  for (std::uint64_t off = 0; off < kFtLevels + 3 * 24; ++off) {
    for (int bit = 0; bit < 8; ++bit) {
      std::filesystem::copy_file(
          pristine, file, std::filesystem::copy_options::overwrite_existing);
      flip_bit(file, fs + off, bit);
      bs::BlockCache cache(16 * bs::kPageSize);
      try {
        bl::RunFile run(env, "r.run", cache);
        auto s = run.seek(rec(100));
        for (int i = 0; i < 4 && s->valid(); ++i) s->next();
        ++survived;
      } catch (const std::exception&) {
        ++rejected;
      }
    }
  }
  // The magic field alone guarantees a healthy rejected population; some
  // flips (e.g. min/max record bytes, low bits of counts) legitimately
  // survive as wrong-but-safe runs.
  EXPECT_GT(rejected, 64);
  SUCCEED() << rejected << " rejected, " << survived << " survived";
}
