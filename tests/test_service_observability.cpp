// The observability layer: MetricsRegistry / MetricsPoller, per-op tracing
// (TraceRing, slow-op log) and their wiring through the service.
//
// The layer's claims are forensic, so the tests pin the invariants a
// debugging session relies on: (a) a span's stages telescope exactly —
// gate + queue + execute == end-to-end, io <= execute — including for an
// op that crossed a live migration park/replay; (b) the slow-op log is
// exact (every over-threshold op, not a sample) and captures an injected
// Env delay; (c) trace rings overwrite oldest and never block or allocate
// on the shard thread; (d) registry counters agree with the ServiceStats
// snapshot they mirror; (e) enabling tracing adds zero API-thread
// allocations to the hot path (counting global operator new, same idiom as
// test_service_batch); (f) scraping every export surface races apply/query
// load and migration churn without a data race (the TSan CI job runs this
// binary).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/clock.hpp"

// --- counting allocator ------------------------------------------------------
// Per-thread allocation counter (worker threads allocate freely on their own
// counters; tests only meter the API thread).

namespace {
thread_local std::uint64_t g_thread_allocs = 0;

std::uint64_t thread_allocs() { return g_thread_allocs; }

void* counted_malloc(std::size_t n) {
  ++g_thread_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned(std::size_t n, std::align_val_t al) {
  ++g_thread_allocs;
  void* p = nullptr;
  const std::size_t align =
      std::max(sizeof(void*), static_cast<std::size_t>(al));
  if (posix_memalign(&p, align, n ? n : 1) != 0 || p == nullptr)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_malloc(n); }
void* operator new[](std::size_t n) { return counted_malloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bc = backlog::core;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace butil = backlog::util;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = 2;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}

std::vector<bsvc::UpdateOp> batch_of(bc::BlockNo first, std::size_t n) {
  std::vector<bsvc::UpdateOp> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i) batch.push_back(add(first + i));
  return batch;
}

/// Spans of one verb, in scrape (submit-time) order.
std::vector<bsvc::TraceSpan> spans_of(const std::vector<bsvc::TraceSpan>& all,
                                      bsvc::TraceVerb verb) {
  std::vector<bsvc::TraceSpan> out;
  for (const auto& s : all) {
    if (s.verb == verb) out.push_back(s);
  }
  return out;
}

// --- building blocks ---------------------------------------------------------

TEST(Observability, IoStatsAccumulateIsFieldComplete) {
  bs::IoStats a;
  a.page_reads = 1;
  a.page_writes = 2;
  a.bytes_read = 3;
  a.bytes_written = 4;
  a.files_created = 5;
  a.files_deleted = 6;
  a.fsyncs = 7;
  a.fsync_micros = 8;
  a.io_micros = 9;

  bs::IoStats sum;
  sum += a;
  sum += a;
  EXPECT_EQ(sum.page_reads, 2u);
  EXPECT_EQ(sum.page_writes, 4u);
  EXPECT_EQ(sum.bytes_read, 6u);
  EXPECT_EQ(sum.bytes_written, 8u);
  EXPECT_EQ(sum.files_created, 10u);
  EXPECT_EQ(sum.files_deleted, 12u);
  EXPECT_EQ(sum.fsyncs, 14u);
  EXPECT_EQ(sum.fsync_micros, 16u);
  EXPECT_EQ(sum.io_micros, 18u);

  // += and - are inverses, field by field.
  const bs::IoStats back = sum - a;
  EXPECT_EQ(back.page_reads, a.page_reads);
  EXPECT_EQ(back.fsyncs, a.fsyncs);
  EXPECT_EQ(back.fsync_micros, a.fsync_micros);
  EXPECT_EQ(back.io_micros, a.io_micros);
}

TEST(Observability, LatencyHistogramPercentilesAndBuckets) {
  bsvc::LatencyHistogram h;
  for (std::uint64_t v : {1, 1, 2, 3, 5, 9, 100, 1000}) h.record(v);

  // The convenience accessors are exactly the canonical quantiles.
  EXPECT_EQ(h.p50(), h.quantile_micros(0.50));
  EXPECT_EQ(h.p95(), h.quantile_micros(0.95));
  EXPECT_EQ(h.p99(), h.quantile_micros(0.99));
  EXPECT_LE(h.p50(), h.p95());
  EXPECT_LE(h.p95(), h.p99());

  // to_buckets: non-cumulative counts, ascending bounds, summing to count.
  const auto buckets = h.to_buckets();
  ASSERT_FALSE(buckets.empty());
  std::uint64_t total = 0, prev_le = 0;
  for (const auto& b : buckets) {
    EXPECT_GT(b.le_micros, prev_le);
    prev_le = b.le_micros;
    total += b.count;
  }
  EXPECT_EQ(total, h.count());

  // ingest_bucket round-trips what bucket_of produced: an ingested copy
  // reports identical percentiles and buckets.
  bsvc::LatencyHistogram copy;
  for (const auto& b : buckets) {
    std::size_t idx = 0;
    while (bsvc::LatencyHistogram::bucket_upper_micros(idx) < b.le_micros)
      ++idx;
    copy.ingest_bucket(idx, b.count);
  }
  copy.ingest_sum_max(h.sum_micros(), h.max_micros());
  EXPECT_EQ(copy.count(), h.count());
  EXPECT_EQ(copy.p99(), h.p99());
  EXPECT_EQ(copy.max_micros(), h.max_micros());
}

TEST(Observability, LatencyHistogramQuantilesInterpolateWithinBucket) {
  // 100 observations of 1000 µs all land in the (512, 1024] bucket with
  // max = 1000. The interpolated quantiles walk from the bucket's lower
  // bound toward the max-clamped upper bound by rank: the former
  // upper-bound readout reported 1000 for every quantile (and would report
  // 1024 without the max clamp) — an over-report of up to 2× per bucket.
  bsvc::LatencyHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  EXPECT_EQ(h.quantile_micros(0.01), 517u);  // 512 + 0.01 * 488
  EXPECT_EQ(h.p50(), 756u);                  // 512 + 0.50 * 488
  EXPECT_EQ(h.p95(), 976u);                  // 512 + 0.95 * 488
  EXPECT_EQ(h.p99(), 995u);                  // 512 + 0.99 * 488
  EXPECT_EQ(h.quantile_micros(1.0), 1000u);  // the true maximum, not 1024

  // Multi-bucket: ranks resolve to the right bucket before interpolating.
  // 90 samples at 10 µs ((8,16] bucket) + 10 at 1000 µs: p50 sits in the
  // small bucket, p99 in the big one.
  bsvc::LatencyHistogram mix;
  for (int i = 0; i < 90; ++i) mix.record(10);
  for (int i = 0; i < 10; ++i) mix.record(1000);
  EXPECT_EQ(mix.p50(), 12u);   // 8 + (50/90) * 8 ~= 12.4
  EXPECT_EQ(mix.p99(), 951u);  // 512 + (9/10) * (1000 - 512) ~= 951.2

  // The ingest (scrape) round trip preserves the interpolated readout
  // exactly: identical bucket counts + sum/max give identical quantiles.
  bsvc::LatencyHistogram copy;
  for (const auto& b : mix.to_buckets()) {
    copy.ingest_bucket(bsvc::LatencyHistogram::bucket_of(b.le_micros),
                       b.count);
  }
  copy.ingest_sum_max(mix.sum_micros(), mix.max_micros());
  EXPECT_EQ(copy.p50(), mix.p50());
  EXPECT_EQ(copy.p95(), mix.p95());
  EXPECT_EQ(copy.p99(), mix.p99());

  // A single sample interpolates to itself (hi clamps to max, lo <= max).
  bsvc::LatencyHistogram one;
  one.record(700);
  EXPECT_EQ(one.p50(), one.max_micros());
  EXPECT_EQ(one.p99(), 700u);
}

TEST(Observability, TraceRingOverflowEvictsOldest) {
  bsvc::TraceRing ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (std::uint64_t id = 1; id <= 10; ++id) {
    bsvc::TraceSpan s;
    s.id = id;
    s.t_submit = id;
    // push reports eviction exactly once the ring is full.
    EXPECT_EQ(ring.push(s), id > 4);
  }
  EXPECT_EQ(ring.size(), 4u);
  EXPECT_EQ(ring.recorded(), 10u);
  EXPECT_EQ(ring.evicted(), 6u);

  // The survivors are the newest four, oldest first.
  const auto spans = ring.snapshot();
  ASSERT_EQ(spans.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(spans[i].id, 7 + i);
}

TEST(Observability, TraceSpanTenantTruncationAndFormat) {
  bsvc::TraceSpan s;
  s.id = 42;
  s.verb = bsvc::TraceVerb::kQuery;
  s.set_tenant(std::string(100, 'x'));  // longer than the inline array
  EXPECT_EQ(std::string(s.tenant), std::string(sizeof(s.tenant) - 1, 'x'));

  s.gate_wait_micros = 10;
  s.queue_wait_micros = 20;
  s.execute_micros = 30;
  s.io_micros = 12;
  s.slow = true;
  s.migrated = true;
  const std::string line = bsvc::format_span(s);
  EXPECT_NE(line.find("slow-op"), std::string::npos);
  EXPECT_NE(line.find("verb=query"), std::string::npos);
  EXPECT_NE(line.find("migrated"), std::string::npos);
  EXPECT_NE(line.find("gate=10us"), std::string::npos);
  EXPECT_NE(line.find("core=18us"), std::string::npos);  // 30 - 12
  EXPECT_NE(line.find("e2e=60us"), std::string::npos);   // 10 + 20 + 30
}

TEST(Observability, MetricsRegistrySlotsAndIdempotentRegistration) {
  bsvc::MetricsRegistry reg(3);
  auto& c = reg.counter("backlog_test_total", "test counter");
  EXPECT_EQ(&c, &reg.counter("backlog_test_total", "ignored"));
  c.add(0, 5);
  c.add(1, 7);
  c.add(2);
  EXPECT_EQ(c.total(), 13u);

  auto& g = reg.gauge("backlog_test_gauge", "test gauge");
  auto& g_labeled =
      reg.gauge("backlog_test_gauge", "test gauge", "shard=\"1\"");
  EXPECT_NE(&g, &g_labeled);  // distinct series within one family
  g.set(0.5);
  g_labeled.set(1.5);
  EXPECT_DOUBLE_EQ(g.value(), 0.5);

  auto& h = reg.histogram("backlog_test_micros", "test histogram");
  h.record(0, 3);
  h.record(1, 300);
  h.record(2, 300000);
  const bsvc::LatencyHistogram merged = h.merged();
  EXPECT_EQ(merged.count(), 3u);
  EXPECT_EQ(merged.sum_micros(), 300303u);
  EXPECT_EQ(merged.max_micros(), 300000u);
}

TEST(Observability, PrometheusExpositionIsWellFormed) {
  bsvc::MetricsRegistry reg(2);
  reg.counter("backlog_ops_total", "ops").add(0, 9);
  reg.gauge("backlog_busy", "busy", "shard=\"0\"").set(0.25);
  auto& h = reg.histogram("backlog_lat_micros", "latency");
  h.record(0, 1);
  h.record(0, 5);
  h.record(1, 1000);

  const std::string out = reg.to_prometheus();
  EXPECT_NE(out.find("# HELP backlog_ops_total ops\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE backlog_ops_total counter\n"),
            std::string::npos);
  EXPECT_NE(out.find("backlog_ops_total 9\n"), std::string::npos);
  EXPECT_NE(out.find("backlog_busy{shard=\"0\"} 0.25\n"), std::string::npos);
  EXPECT_NE(out.find("# TYPE backlog_lat_micros histogram\n"),
            std::string::npos);
  // Histogram invariants a scraper relies on: cumulative buckets, +Inf
  // bucket present and equal to _count.
  EXPECT_NE(out.find("backlog_lat_micros_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);
  EXPECT_NE(out.find("backlog_lat_micros_count 3\n"), std::string::npos);
  EXPECT_NE(out.find("backlog_lat_micros_sum 1006\n"), std::string::npos);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"backlog_ops_total\":9"), std::string::npos);
  EXPECT_NE(json.find("\"backlog_lat_micros\""), std::string::npos);
  EXPECT_NE(json.find("\"buckets\":["), std::string::npos);
}

// --- service wiring ----------------------------------------------------------

TEST(Observability, VerbCountersMatchServiceStats) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 2);
  o.sync_writes = true;  // so the CP issues real fsyncs
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");
  vm.open_volume("bob");

  vm.apply("alice", batch_of(100, 8)).get();
  vm.apply_batch("bob", batch_of(200, 16)).get();
  vm.query("alice", 100).get();
  vm.query("bob", 200).get();
  vm.consistency_point("alice").get();

  const bsvc::ServiceStats stats = vm.stats();
  bsvc::MetricsRegistry& reg = vm.metrics();
  EXPECT_EQ(reg.counter("backlog_updates_total", "").total(),
            stats.total.updates);
  EXPECT_EQ(reg.counter("backlog_queries_total", "").total(),
            stats.total.queries);
  EXPECT_EQ(reg.counter("backlog_cps_total", "").total(), stats.total.cps);
  EXPECT_EQ(stats.total.updates, 24u);
  EXPECT_EQ(stats.total.queries, 2u);

  // The new Env counters flowed through IoStats::operator+= into the merged
  // snapshot: a sync CP fsyncs at least once, and syscall wall time was
  // accumulated.
  EXPECT_GE(stats.total.io.fsyncs, 1u);
  EXPECT_GE(stats.total.io.io_micros, stats.total.io.fsync_micros);
}

TEST(Observability, MetricsPollerComputesWindowedRates) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  vm.open_volume("alice");
  bsvc::MetricsPoller poller(vm, std::chrono::milliseconds(1000));

  const std::uint64_t t0 = butil::now_micros();
  const bsvc::RateSample primed = poller.poll_once(t0);
  EXPECT_EQ(primed.update_ops_per_sec, 0.0);  // first poll primes the window
  // The priming sample says so: its zeros mean "no previous poll", not
  // "idle", and consumers (metrics --watch) label it instead of printing it.
  EXPECT_FALSE(primed.primed);

  for (int i = 0; i < 10; ++i) vm.apply("alice", batch_of(i * 100, 50)).get();
  vm.query("alice", 0).get();

  // Deterministic window: exactly one second after the prime.
  const bsvc::RateSample s = poller.poll_once(t0 + 1'000'000);
  EXPECT_TRUE(s.primed);  // a real window: differences are meaningful now
  EXPECT_DOUBLE_EQ(s.window_seconds, 1.0);
  EXPECT_DOUBLE_EQ(s.update_ops_per_sec, 500.0);
  EXPECT_DOUBLE_EQ(s.queries_per_sec, 1.0);
  ASSERT_EQ(s.shard_busy_fraction.size(), 2u);
  for (const double b : s.shard_busy_fraction) {
    EXPECT_GE(b, 0.0);
    EXPECT_LE(b, 1.0);
  }
  EXPECT_EQ(poller.last().at_micros, t0 + 1'000'000);

  // The rates were mirrored into registry gauges.
  EXPECT_DOUBLE_EQ(
      vm.metrics().gauge("backlog_update_ops_per_sec", "").value(), 500.0);
}

TEST(Observability, SampledSpansTelescopeExactly) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 2);
  o.trace_sample_every = 1;  // record every foreground op
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");

  vm.apply("alice", batch_of(0, 4)).get();
  vm.apply_batch("alice", batch_of(100, 8)).get();
  vm.query("alice", 0).get();
  vm.query_batch("alice", {{0, 1, {}}, {100, 1, {}}}).get();
  vm.consistency_point("alice").get();

  const auto spans = vm.trace_spans();
  ASSERT_GE(spans.size(), 5u);
  for (const auto& s : spans) {
    // The stage breakdown telescopes exactly to the end-to-end latency.
    EXPECT_EQ(s.gate_wait_micros + s.queue_wait_micros + s.execute_micros,
              s.end_to_end_micros());
    EXPECT_LE(s.io_micros, s.execute_micros);
    EXPECT_EQ(std::string(s.tenant), "alice");
    EXPECT_FALSE(s.migrated);
    EXPECT_GT(s.id, 0u);
  }
  EXPECT_EQ(spans_of(spans, bsvc::TraceVerb::kApply).size(), 1u);
  EXPECT_EQ(spans_of(spans, bsvc::TraceVerb::kApplyBatch)[0].ops, 8u);
  EXPECT_EQ(spans_of(spans, bsvc::TraceVerb::kQueryBatch)[0].ops, 2u);
  EXPECT_EQ(spans_of(spans, bsvc::TraceVerb::kCp).size(), 1u);
  EXPECT_EQ(vm.metrics().counter("backlog_trace_spans_total", "").total(),
            spans.size());
}

TEST(Observability, ServiceTraceRingOverflowKeepsNewest) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 1);
  o.trace_sample_every = 1;
  o.trace_ring_size = 8;
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");

  for (int i = 0; i < 100; ++i) vm.apply("alice", {add(i)}).get();

  const auto spans = vm.trace_spans();
  ASSERT_EQ(spans.size(), 8u);  // capacity, not 100: oldest were evicted
  // Survivors are the newest spans, still ordered oldest -> newest.
  for (std::size_t i = 1; i < spans.size(); ++i) {
    EXPECT_GT(spans[i].id, spans[i - 1].id);
  }
  EXPECT_GE(vm.metrics().counter("backlog_trace_evictions_total", "").total(),
            92u - 8u);  // stats()-scrape control spans may evict a few more
}

TEST(Observability, SlowOpCapturesInjectedEnvDelay) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 1);
  o.sync_writes = true;
  o.slow_op_micros = 2000;  // 2 ms threshold, no sampling
  std::atomic<bool> inject{false};
  constexpr std::uint64_t kDelayMicros = 5000;
  o.env_fault_hook = [&](std::string_view op, const std::string&) {
    if (inject.load(std::memory_order_acquire) && op == "create") {
      std::this_thread::sleep_for(std::chrono::microseconds(kDelayMicros));
    }
  };
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");
  vm.apply("alice", batch_of(0, 16)).get();
  EXPECT_TRUE(vm.slow_ops().empty());  // nothing slow yet

  // The CP creates run files; the hook stretches each create by 5 ms.
  inject.store(true, std::memory_order_release);
  const std::uint64_t t_before = butil::now_micros();
  vm.consistency_point("alice").get();
  const std::uint64_t wall = butil::now_micros() - t_before;
  inject.store(false, std::memory_order_release);

  const auto slow = spans_of(vm.slow_ops(), bsvc::TraceVerb::kCp);
  ASSERT_EQ(slow.size(), 1u);
  const bsvc::TraceSpan& s = slow[0];
  EXPECT_TRUE(s.slow);
  // All stages sum exactly to the recorded end-to-end latency (a far
  // stronger property than the acceptance criterion's 10% band) ...
  EXPECT_EQ(s.gate_wait_micros + s.queue_wait_micros + s.execute_micros,
            s.end_to_end_micros());
  EXPECT_LE(s.io_micros, s.execute_micros);
  // ... and the span brackets reality: it contains the injected delay and
  // fits inside the caller-observed wall time.
  EXPECT_GE(s.execute_micros, kDelayMicros);
  EXPECT_LE(s.end_to_end_micros(), wall);
  // Within 10% of the caller-observed wall, modulo scheduler noise: `wall`
  // also contains the future-wakeup hop back to this thread, which on an
  // oversubscribed host (parallel ctest on few cores) can alone add
  // milliseconds the span legitimately does not cover.
  constexpr std::uint64_t kSchedSlackMicros = 20000;
  EXPECT_GE(10 * (s.end_to_end_micros() + kSchedSlackMicros), 9 * wall);
  // The sync CP did real IO under the span.
  EXPECT_GT(s.io_micros, 0u);
  EXPECT_EQ(vm.metrics().counter("backlog_slow_ops_total", "").total(), 1u);
}

TEST(Observability, SlowOpSpansMigrationParkReplay) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 2);
  o.slow_op_micros = 1000;
  o.trace_sample_every = 1;
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");
  vm.apply("alice", {add(1)}).get();
  const std::size_t source = vm.current_shard("alice");
  const std::size_t target = 1 - source;

  // Block the source shard so the migration drain queues behind the
  // blocker, keeping the park window open while we submit the traced op.
  std::atomic<bool> entered{false}, release{false};
  auto blocker = vm.with_db("alice", [&](bc::BacklogDb&) {
    entered.store(true, std::memory_order_release);
    while (!release.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });
  while (!entered.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }

  bsvc::MigrationStats ms;
  std::thread migrator([&] { ms = vm.migrate_volume("alice", target); });
  // Phase 1 (park) needs only the routing lock; give it ample time, then
  // submit the op that must land in the parked deque.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto parked_op = vm.apply("alice", {add(2)});
  // Hold the park open long enough that the op is unambiguously slow.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  release.store(true, std::memory_order_release);
  blocker.get();
  migrator.join();
  ASSERT_NO_THROW(parked_op.get());
  EXPECT_TRUE(ms.moved);
  EXPECT_GE(ms.replayed_tasks, 1u);

  // The op's span survived the handoff: recorded on the target shard,
  // flagged migrated, park time showing up as queue wait, stages still
  // telescoping exactly.
  const auto applies = spans_of(vm.slow_ops(), bsvc::TraceVerb::kApply);
  ASSERT_FALSE(applies.empty());
  const bsvc::TraceSpan& s = applies.back();
  EXPECT_TRUE(s.migrated);
  EXPECT_EQ(s.submit_shard, source);
  EXPECT_EQ(s.exec_shard, target);
  EXPECT_GE(s.queue_wait_micros, 5000u);  // at least the held park window
  EXPECT_EQ(s.gate_wait_micros + s.queue_wait_micros + s.execute_micros,
            s.end_to_end_micros());
  EXPECT_EQ(vm.query("alice", 2).get().size(), 1u);
}

TEST(Observability, GateWaitStageSplitsFromQueueWait) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 1);
  o.trace_sample_every = 1;
  bsvc::VolumeManager vm(o);
  vm.open_volume("alice");

  // Tiny bucket: an apply issued right after the burst is spent must wait
  // at the gate for a refill. On an oversubscribed host this thread can be
  // descheduled past the refill between the two applies (token back, no
  // wait, no gated span), so use a wide 20 ms refill window and retry the
  // pair until a gated span shows up.
  bsvc::TenantQos qos;
  qos.ops_per_sec = 50;
  qos.burst_ops = 1;
  vm.set_qos("alice", qos);
  bool saw_gated = false;
  for (bc::BlockNo b = 1; b < 20 && !saw_gated; b += 2) {
    vm.apply("alice", {add(b)}).get();      // spends the burst
    vm.apply("alice", {add(b + 1)}).get();  // throttled: waits for a token
    for (const auto& s : spans_of(vm.trace_spans(), bsvc::TraceVerb::kApply)) {
      EXPECT_EQ(s.gate_wait_micros + s.queue_wait_micros + s.execute_micros,
                s.end_to_end_micros());
      if (s.gate_wait_micros > 0) saw_gated = true;
    }
  }
  EXPECT_TRUE(saw_gated);
  const bsvc::ServiceStats stats = vm.stats();
  EXPECT_GE(stats.tenants.at("alice").throttle_queued, 1u);
  EXPECT_GE(stats.total.gate_wait_micros.count(), 1u);
}

TEST(Observability, SetTracingTogglesAtRuntime) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));  // tracing off by default
  vm.open_volume("alice");

  vm.apply("alice", {add(1)}).get();
  EXPECT_TRUE(vm.trace_spans().empty());

  vm.set_tracing(/*sample_every=*/1, /*slow_op_micros=*/0);
  vm.apply("alice", {add(2)}).get();
  const std::size_t traced = vm.trace_spans().size();
  EXPECT_GE(traced, 1u);

  vm.set_tracing(0, 0);
  vm.apply("alice", {add(3)}).get();
  // No new spans beyond what the enabled window recorded (the disabled
  // scrape itself is not traced).
  EXPECT_EQ(vm.trace_spans().size(), traced);
}

TEST(Observability, TracingAddsNoApiThreadAllocations) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");

  // One measured region per mode: N applies through the identical call
  // shape. The traced run may not allocate more than the untraced one —
  // the TraceCtx rides by value in the task's SBO storage and the rings
  // are preallocated.
  constexpr int kOps = 64;
  const auto measure = [&](bc::BlockNo base) {
    for (int i = 0; i < 8; ++i) vm.apply("alice", {add(base + i)}).get();
    const std::uint64_t before = thread_allocs();
    for (int i = 8; i < 8 + kOps; ++i) {
      vm.apply("alice", {add(base + i)}).get();
    }
    return thread_allocs() - before;
  };

  const std::uint64_t untraced = measure(1000);
  vm.set_tracing(/*sample_every=*/1, /*slow_op_micros=*/1);
  const std::uint64_t traced = measure(2000);
  EXPECT_LE(traced, untraced);
}

// --- scrape-while-hot stress (the TSan CI job runs this binary) --------------

TEST(Observability, ScrapeWhileHotStressIsRaceFree) {
  bs::TempDir dir;
  bsvc::ServiceOptions o = service_options(dir, 4);
  o.trace_sample_every = 4;
  o.slow_op_micros = 500;
  o.trace_ring_size = 64;
  o.slow_op_ring_size = 64;
  bsvc::VolumeManager vm(o);
  constexpr int kTenants = 8;
  for (int i = 0; i < kTenants; ++i) {
    vm.open_volume("t" + std::to_string(i));
  }
  bsvc::MetricsPoller poller(vm, std::chrono::milliseconds(5));
  poller.start();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> applied{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < 2; ++w) {
    workers.emplace_back([&, w] {
      bc::BlockNo next = 1'000'000ull * (w + 1);
      int tenant = 0;
      while (!stop.load(std::memory_order_acquire)) {
        const std::string name = "t" + std::to_string(tenant % kTenants);
        ++tenant;
        auto fut = vm.apply_batch(name, batch_of(next, 16));
        next += 16;
        ASSERT_NO_THROW(vm.query(name, next - 16).get());
        ASSERT_NO_THROW(fut.get());
        applied.fetch_add(16, std::memory_order_relaxed);
      }
    });
  }
  std::thread churn([&] {
    int round = 0;
    while (!stop.load(std::memory_order_acquire)) {
      const std::string name = "t" + std::to_string(round++ % kTenants);
      const std::size_t target =
          (vm.current_shard(name) + 1) % o.shards;
      ASSERT_NO_THROW(vm.migrate_volume(name, target));
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });

  // The scraper hammers every export surface while the fleet is hot.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(800);
  std::uint64_t scrapes = 0;
  while (std::chrono::steady_clock::now() < deadline) {
    const std::string prom = vm.metrics().to_prometheus();
    EXPECT_NE(prom.find("backlog_updates_total"), std::string::npos);
    const std::string json = vm.metrics().to_json();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    (void)vm.trace_spans();
    (void)vm.slow_ops();
    (void)vm.stats();
    ++scrapes;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : workers) t.join();
  churn.join();
  poller.stop();

  EXPECT_GT(scrapes, 0u);
  EXPECT_GT(applied.load(), 0u);
  // Scrape consistency after quiescence: the registry totals equal the
  // ServiceStats snapshot they mirror.
  const bsvc::ServiceStats stats = vm.stats();
  EXPECT_EQ(vm.metrics().counter("backlog_updates_total", "").total(),
            stats.total.updates);
  for (const auto& s : vm.trace_spans()) {
    EXPECT_EQ(s.gate_wait_micros + s.queue_wait_micros + s.execute_micros,
              s.end_to_end_micros());
  }
}

}  // namespace
