// Tests of the fleet-scale scenario machinery (src/fsim/fleet_sim.hpp) and
// the shard fault-injection hooks behind it:
//   * fixed-seed determinism of the Zipf tenant sampler and the Poisson
//     arrival schedule (exact event sequence, cross-construction);
//   * SLO accounting: synthetic histograms in, expected p99-vs-class
//     verdicts out, including the per-class merge over ServiceStats;
//   * JSON string escaping used by the bench JSONROW emitter;
//   * WorkerPool / VolumeManager kill-restart semantics (tasks queued on a
//     dead shard wait, never drop — including through pool teardown);
//   * a chaos smoke: kill/restart shards repeatedly under the multi-tenant
//     ground-truth verifier, zero dropped ops and exact live sets.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "fsim/fleet_sim.hpp"
#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/json.hpp"
#include "util/random.hpp"

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace util = backlog::util;

namespace {

// --- open-loop schedule -------------------------------------------------------

TEST(FleetSim, ArrivalScheduleIsDeterministic) {
  bf::OpenLoopOptions o;
  o.tenants = 20000;  // fleet-scale tenant count costs nothing here
  o.zipf_alpha = 1.1;
  o.arrivals_per_sec = 5000;
  o.duration_micros = 500'000;
  o.seed = 42;
  const std::vector<bf::ArrivalEvent> a = bf::build_arrival_schedule(o);
  const std::vector<bf::ArrivalEvent> b = bf::build_arrival_schedule(o);
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);  // bit-identical event sequence, same construction twice

  o.seed = 43;
  const std::vector<bf::ArrivalEvent> c = bf::build_arrival_schedule(o);
  EXPECT_NE(a, c);
}

TEST(FleetSim, ArrivalScheduleShape) {
  bf::OpenLoopOptions o;
  o.tenants = 1000;
  o.zipf_alpha = 1.2;
  o.arrivals_per_sec = 4000;
  o.duration_micros = 1'000'000;
  o.seed = 7;
  const std::vector<bf::ArrivalEvent> events = bf::build_arrival_schedule(o);
  // Poisson(4000/s) over 1 s: ~4000 events; 5 sigma is ~316.
  EXPECT_GT(events.size(), 3600u);
  EXPECT_LT(events.size(), 4400u);
  std::uint64_t prev = 0;
  std::vector<std::uint64_t> per_tenant(o.tenants, 0);
  for (const bf::ArrivalEvent& ev : events) {
    EXPECT_GE(ev.at_micros, prev);  // schedule is time-ordered
    EXPECT_LT(ev.at_micros, o.duration_micros);
    ASSERT_LT(ev.tenant, o.tenants);
    prev = ev.at_micros;
    ++per_tenant[ev.tenant];
  }
  // Zipf skew: rank 1 strictly dominates the tail.
  EXPECT_GT(per_tenant[0], per_tenant[o.tenants - 1]);
  EXPECT_GT(per_tenant[0], events.size() / 100);
}

TEST(FleetSim, ZipfSamplerIsDeterministic) {
  const util::ZipfSampler zipf(5000, 1.1);
  util::Rng rng_a(99);
  util::Rng rng_b(99);
  for (int i = 0; i < 1000; ++i) {
    const std::uint64_t a = zipf.sample(rng_a);
    ASSERT_EQ(a, zipf.sample(rng_b));
    ASSERT_GE(a, 1u);
    ASSERT_LE(a, 5000u);
  }
}

TEST(FleetSim, EmptyScheduleEdgeCases) {
  bf::OpenLoopOptions o;
  o.tenants = 0;
  EXPECT_TRUE(bf::build_arrival_schedule(o).empty());
  o.tenants = 10;
  o.arrivals_per_sec = 0;
  EXPECT_TRUE(bf::build_arrival_schedule(o).empty());
  o.arrivals_per_sec = 100;
  o.duration_micros = 0;
  EXPECT_TRUE(bf::build_arrival_schedule(o).empty());
}

// --- QoS classes and SLO verdicts --------------------------------------------

TEST(FleetSim, ClassOfTenantMix) {
  // 1/8 gold, 3/8 silver, 1/2 bronze, deterministic by index.
  std::size_t gold = 0, silver = 0, bronze = 0;
  for (std::size_t i = 0; i < 8000; ++i) {
    switch (bf::class_of_tenant(i)) {
      case bf::QosClass::kGold: ++gold; break;
      case bf::QosClass::kSilver: ++silver; break;
      case bf::QosClass::kBronze: ++bronze; break;
    }
  }
  EXPECT_EQ(gold, 1000u);
  EXPECT_EQ(silver, 3000u);
  EXPECT_EQ(bronze, 4000u);
  EXPECT_EQ(bf::class_of_tenant(0), bf::QosClass::kGold);
  EXPECT_EQ(bf::class_of_tenant(1), bf::QosClass::kSilver);
  EXPECT_EQ(bf::class_of_tenant(7), bf::QosClass::kBronze);
  EXPECT_GT(bf::weight_of(bf::QosClass::kGold),
            bf::weight_of(bf::QosClass::kSilver));
  EXPECT_GT(bf::weight_of(bf::QosClass::kSilver),
            bf::weight_of(bf::QosClass::kBronze));
}

TEST(FleetSim, SloVerdictAgainstSyntheticHistograms) {
  // 100 waits of 1 ms: every sample lands in the (512, 1024] bucket with
  // max = 1000, so the interpolated p99 is 512 + 0.99 * (1000 - 512) = 995.
  bsvc::LatencyHistogram fast;
  for (int i = 0; i < 100; ++i) fast.record(1000);
  const bf::SloVerdict ok = bf::evaluate_slo(
      bf::QosClass::kGold, fast, bf::default_slo(bf::QosClass::kGold));
  EXPECT_EQ(ok.p99_micros, 995u);
  EXPECT_EQ(ok.samples, 100u);
  EXPECT_TRUE(ok.pass);

  // The same distribution shifted to 1 s blows through every class target.
  bsvc::LatencyHistogram slow;
  for (int i = 0; i < 100; ++i) slow.record(1'000'000);
  for (std::size_t c = 0; c < bf::kQosClasses; ++c) {
    const auto cls = static_cast<bf::QosClass>(c);
    const bf::SloVerdict v = bf::evaluate_slo(cls, slow, bf::default_slo(cls));
    EXPECT_FALSE(v.pass) << bf::to_string(cls);
    EXPECT_GT(v.p99_micros, v.target_micros);
  }

  // No samples -> vacuous pass (a class with no traffic breaches nothing).
  const bf::SloVerdict empty = bf::evaluate_slo(
      bf::QosClass::kBronze, bsvc::LatencyHistogram{},
      bf::default_slo(bf::QosClass::kBronze));
  EXPECT_TRUE(empty.pass);
  EXPECT_EQ(empty.samples, 0u);
}

TEST(FleetSim, FleetSloMergesPerClass) {
  bsvc::ServiceStats stats;
  // Two gold tenants, fast; one bronze tenant, catastrophically slow; one
  // unclassified volume that must be excluded from every class.
  for (const char* name : {"t00000", "t00008"}) {
    bsvc::TenantStats ts;
    for (int i = 0; i < 50; ++i) ts.queue_wait_micros.record(200);
    stats.tenants[name] = ts;
  }
  {
    bsvc::TenantStats ts;
    for (int i = 0; i < 50; ++i) ts.queue_wait_micros.record(2'000'000);
    stats.tenants["t00004"] = ts;  // index 4 -> bronze
  }
  {
    bsvc::TenantStats ts;
    for (int i = 0; i < 50; ++i) ts.queue_wait_micros.record(30'000'000);
    stats.tenants["verify-000"] = ts;  // no class: ignored
  }
  const auto verdicts = bf::evaluate_fleet_slo(
      stats,
      [](const std::string& name) -> std::optional<bf::QosClass> {
        if (name == "t00000" || name == "t00008") return bf::QosClass::kGold;
        if (name == "t00004") return bf::QosClass::kBronze;
        return std::nullopt;
      },
      bf::default_slo_table());
  ASSERT_EQ(verdicts.size(), bf::kQosClasses);
  EXPECT_EQ(verdicts[0].cls, bf::QosClass::kGold);
  EXPECT_EQ(verdicts[0].samples, 100u);  // both gold tenants merged
  EXPECT_TRUE(verdicts[0].pass);
  EXPECT_EQ(verdicts[1].samples, 0u);  // silver: no traffic, vacuous pass
  EXPECT_TRUE(verdicts[1].pass);
  EXPECT_EQ(verdicts[2].samples, 50u);
  EXPECT_FALSE(verdicts[2].pass);  // 2 s waits breach bronze's 400 ms
  // The 30 s unclassified histogram polluted nobody's verdict.
  EXPECT_LT(verdicts[0].p99_micros, 1000u);
}

// --- JSON escaping ------------------------------------------------------------

TEST(FleetSim, JsonEscapeHostileStrings) {
  EXPECT_EQ(util::json_escape("plain"), "plain");
  EXPECT_EQ(util::json_escape("he said \"hi\""), "he said \\\"hi\\\"");
  EXPECT_EQ(util::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(util::json_escape("tab\there"), "tab\\there");
  EXPECT_EQ(util::json_escape("nl\nhere"), "nl\\nhere");
  // Spliced literal: "\x01b" would otherwise parse as the single byte 0x1b.
  EXPECT_EQ(util::json_escape(std::string("nul\x01" "byte")), "nul\\u0001byte");
  EXPECT_EQ(util::json_escape("unicode µ stays"), "unicode µ stays");
}

// --- shard kill/restart -------------------------------------------------------

TEST(FleetSim, KilledShardQueuesWorkAndRestartDrainsIt) {
  bsvc::WorkerPool pool(2, 8);
  ASSERT_TRUE(pool.shard_alive(0));
  ASSERT_TRUE(pool.kill_shard(0));
  EXPECT_FALSE(pool.shard_alive(0));
  EXPECT_FALSE(pool.kill_shard(0));  // already dead

  // Work submitted against the dead shard parks in its (open) queue.
  std::atomic<int> ran{0};
  std::promise<void> done;
  for (int i = 0; i < 10; ++i) {
    pool.submit(0, bsvc::Task([&] { ran.fetch_add(1); }));
  }
  pool.submit(0, bsvc::Task([&] { done.set_value(); }));
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(ran.load(), 0);
  EXPECT_GE(pool.queue_depth(0), 10u);

  // The live shard is unaffected.
  std::promise<void> other;
  pool.submit(1, bsvc::Task([&] { other.set_value(); }));
  other.get_future().get();

  ASSERT_TRUE(pool.restart_shard(0));
  EXPECT_FALSE(pool.restart_shard(0));  // already alive
  done.get_future().get();
  EXPECT_EQ(ran.load(), 10);
  EXPECT_TRUE(pool.shard_alive(0));
}

TEST(FleetSim, PoolTeardownWithDeadShardDropsNothing) {
  std::atomic<int> ran{0};
  {
    bsvc::WorkerPool pool(1, 8);
    ASSERT_TRUE(pool.kill_shard(0));
    for (int i = 0; i < 25; ++i) {
      pool.submit(0, bsvc::Task([&] { ran.fetch_add(1); }));
    }
    // Destructor must restart the dead shard and drain the queue.
  }
  EXPECT_EQ(ran.load(), 25);
}

TEST(FleetSim, VolumeManagerKillHooksValidate) {
  bs::TempDir dir("backlog_fleet_hooks");
  bsvc::ServiceOptions o;
  o.shards = 2;
  o.root = dir.path();
  bsvc::VolumeManager vm(o);
  EXPECT_THROW(vm.kill_shard(2), std::out_of_range);
  EXPECT_THROW(vm.restart_shard(9), std::out_of_range);
  EXPECT_THROW((void)vm.shard_alive(5), std::out_of_range);
  EXPECT_TRUE(vm.shard_alive(0));
  EXPECT_TRUE(vm.kill_shard(0));
  EXPECT_FALSE(vm.kill_shard(0));
  EXPECT_TRUE(vm.restart_shard(0));
  EXPECT_FALSE(vm.restart_shard(0));
  // Verbs still work end to end after a kill/restart cycle.
  vm.open_volume("a");
  std::vector<bsvc::UpdateOp> ops(1);
  ops[0].kind = bsvc::UpdateOp::Kind::kAdd;
  ops[0].key.block = 1;
  ops[0].key.inode = 2;
  ops[0].key.length = 1;
  vm.apply_batch("a", std::move(ops)).get();
  EXPECT_EQ(vm.query("a", 1).get().size(), 1u);
}

// The chaos smoke: the multi-tenant ground-truth verifier replays
// concurrently while shards are killed and restarted around it. Zero
// dropped ops (every feeder completes its full trace) and exact live sets.
TEST(FleetSim, ChaosSmokeKillRestartUnderVerifier) {
  bs::TempDir dir("backlog_fleet_chaos");
  bsvc::ServiceOptions o;
  o.shards = 2;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 1000;
  bsvc::VolumeManager vm(o);

  bf::FleetOptions fo;
  fo.tenants = 3;
  fo.total_ops = 9000;
  fo.seed = 11;
  fo.base.snapshot_every_ops = 900;
  fo.base.clone_every_ops = 1500;
  const std::vector<bf::TenantWorkload> fleet = bf::synthesize_fleet(fo);
  for (const auto& w : fleet) vm.open_volume(w.tenant);

  std::vector<bf::TenantReplayResult> results;
  std::thread replayer([&] {
    bf::ReplayOptions ro;
    ro.batch_ops = 64;
    ro.use_apply_batch = true;
    ro.ops_per_cp = 600;
    ro.query_every_ops = 128;
    results = bf::replay_concurrently(vm, fleet, ro);
  });

  // Chaos: alternate killing each shard while the replay runs.
  for (int round = 0; round < 6; ++round) {
    const std::size_t victim = static_cast<std::size_t>(round) % o.shards;
    if (vm.kill_shard(victim)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(15));
      vm.restart_shard(victim);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  replayer.join();

  ASSERT_EQ(results.size(), fleet.size());
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    // Zero dropped ops: the feeder pushed the entire trace through.
    EXPECT_EQ(results[i].ops, fleet[i].trace.ops.size()) << fleet[i].tenant;
    EXPECT_EQ(results[i].empty_query_results, 0u) << fleet[i].tenant;
    std::set<bc::BackrefKey> expect(fleet[i].trace.live_keys.begin(),
                                    fleet[i].trace.live_keys.end());
    std::set<bc::BackrefKey> got;
    for (const auto& rec : vm.scan_all(fleet[i].tenant).get()) {
      if (rec.to == bc::kInfinity) got.insert(rec.key);
    }
    EXPECT_EQ(got, expect) << fleet[i].tenant;
  }
  // The kill/restart counters made it into the metrics registry.
  const std::string prom = vm.metrics().to_prometheus();
  EXPECT_NE(prom.find("backlog_shard_kills_total"), std::string::npos);
}

}  // namespace
