// Live tenant migration: protocol unit tests plus concurrent stress (run
// under ThreadSanitizer in CI).
//
// The protocol promises: (a) a query against a migrated volume returns
// results identical to before the move; (b) updates are neither lost nor
// duplicated no matter how they race the drain/park/replay handoff — checked
// here with per-volume op checksums against trace ground truth; (c) other
// tenants never block on a migration; (d) per-tenant FIFO order survives the
// handoff (queries racing 20+ migrations always observe their preceding
// writes).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"
#include "util/hash.hpp"

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}

using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t>;
KeyTuple tup(const bc::BackrefKey& k) {
  return {k.block, k.inode, k.offset, k.length, k.line};
}

/// Order-independent checksum of a key set: XOR of per-key hashes. Equal
/// checksums + equal cardinality make lost/duplicated updates visible.
std::uint64_t key_checksum(const bc::BackrefKey& k) {
  std::uint8_t buf[bc::kKeySize];
  bc::encode_key(k, buf);
  return backlog::util::hash_bytes(buf, sizeof buf, /*seed=*/0x6d69);
}

std::vector<bc::BackrefEntry> query_now(bsvc::VolumeManager& vm,
                                        const std::string& tenant,
                                        bc::BlockNo b) {
  return vm.query(tenant, b).get();
}

}  // namespace

TEST(ServiceMigration, MigratedVolumeReturnsIdenticalResults) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 3));
  vm.open_volume("alice");

  std::vector<bsvc::UpdateOp> batch;
  for (bc::BlockNo b = 1; b <= 64; ++b) batch.push_back(add(b));
  vm.apply("alice", std::move(batch)).get();
  // A retained snapshot plus later churn makes the version masks nontrivial.
  const bc::Epoch snap = vm.take_snapshot("alice").get();
  vm.apply("alice", {{bsvc::UpdateOp::Kind::kRemove, key(10)}, add(100)}).get();
  vm.consistency_point("alice").get();

  std::vector<std::vector<bc::BackrefEntry>> before;
  for (const bc::BlockNo b : {1ull, 10ull, 64ull, 100ull}) {
    before.push_back(query_now(vm, "alice", b));
  }

  const std::size_t source = vm.current_shard("alice");
  const std::size_t target = (source + 1) % vm.shard_count();
  const bsvc::MigrationStats ms = vm.migrate_volume("alice", target);
  EXPECT_TRUE(ms.moved);
  EXPECT_EQ(ms.source_shard, source);
  EXPECT_EQ(ms.target_shard, target);
  EXPECT_FALSE(ms.forced_cp);  // everything was committed before the move
  EXPECT_EQ(vm.current_shard("alice"), target);

  std::size_t i = 0;
  for (const bc::BlockNo b : {1ull, 10ull, 64ull, 100ull}) {
    EXPECT_EQ(query_now(vm, "alice", b), before[i++]) << "block " << b;
  }
  // The deleted-at-snapshot reference is still visible at the snapshot.
  const auto at10 = query_now(vm, "alice", 10);
  ASSERT_EQ(at10.size(), 1u);
  EXPECT_EQ(at10[0].versions, std::vector<bc::Epoch>{snap});

  // Round-trip home: still identical.
  EXPECT_TRUE(vm.migrate_volume("alice", source).moved);
  i = 0;
  for (const bc::BlockNo b : {1ull, 10ull, 64ull, 100ull}) {
    EXPECT_EQ(query_now(vm, "alice", b), before[i++]) << "block " << b;
  }
  EXPECT_EQ(vm.stats().tenants.at("alice").migrations, 2u);
}

TEST(ServiceMigration, DrainForcesConsistencyPointForBufferedUpdates) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  vm.open_volume("alice");
  vm.apply("alice", {add(1), add(2), add(3)}).get();  // buffered, no CP

  const std::size_t target = (vm.current_shard("alice") + 1) % 2;
  const bsvc::MigrationStats ms = vm.migrate_volume("alice", target);
  EXPECT_TRUE(ms.moved);
  EXPECT_TRUE(ms.forced_cp);
  EXPECT_EQ(vm.quick_stats("alice").get().ws_entries, 0u);
  for (const bc::BlockNo b : {1ull, 2ull, 3ull}) {
    EXPECT_EQ(query_now(vm, "alice", b).size(), 1u);
  }
}

TEST(ServiceMigration, Validation) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  vm.open_volume("alice");
  EXPECT_THROW(vm.migrate_volume("nobody", 1), std::invalid_argument);
  EXPECT_THROW(vm.migrate_volume("alice", 2), std::invalid_argument);
  const bsvc::MigrationStats noop =
      vm.migrate_volume("alice", vm.current_shard("alice"));
  EXPECT_FALSE(noop.moved);
  EXPECT_EQ(vm.stats().tenants.at("alice").migrations, 0u);
}

TEST(ServiceMigration, QueriesRaceMigrationsAndAlwaysSeePriorWrites) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 3));
  vm.open_volume("alice");
  vm.open_volume("bob");  // an innocent bystander that must never stall
  vm.apply("alice", {add(7), add(8)}).get();
  vm.consistency_point("alice").get();
  vm.apply("bob", {add(7)}).get();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> alice_queries{0}, bob_ops{0};
  std::vector<std::thread> hammers;
  for (int i = 0; i < 2; ++i) {
    hammers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        ASSERT_EQ(vm.query("alice", 7).get().size(), 1u);
        ASSERT_EQ(vm.query("alice", 8).get().size(), 1u);
        alice_queries.fetch_add(2, std::memory_order_relaxed);
      }
    });
  }
  hammers.emplace_back([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_EQ(vm.query("bob", 7).get().size(), 1u);
      bob_ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  // 24 migrations around the ring while the hammers run; interleave updates
  // so drains alternate between forced-CP and empty-WS handoffs, then a
  // query for the *just-applied* block proves FIFO survived the handoff.
  bc::BlockNo next = 1000;
  std::uint64_t replayed = 0;
  for (int round = 0; round < 24; ++round) {
    const bc::BlockNo fresh = next++;
    vm.apply("alice", {add(fresh)}).get();
    const std::size_t target = (vm.current_shard("alice") + 1) % 3;
    const bsvc::MigrationStats ms = vm.migrate_volume("alice", target);
    EXPECT_TRUE(ms.moved);
    replayed += ms.replayed_tasks;
    EXPECT_EQ(vm.query("alice", fresh).get().size(), 1u) << "round " << round;
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : hammers) t.join();

  EXPECT_GT(alice_queries.load(), 0u);
  EXPECT_GT(bob_ops.load(), 0u);
  const auto stats = vm.stats();
  EXPECT_EQ(stats.tenants.at("alice").migrations, 24u);
  EXPECT_EQ(stats.tenants.at("bob").migrations, 0u);
  // With two hammer threads racing 24 handoffs, some operations should have
  // taken the park/replay path (not a hard guarantee, hence no assert).
  if (replayed == 0) {
    GTEST_LOG_(INFO) << "no task was parked this run (timing-dependent)";
  }
}

TEST(ServiceMigration, ApplyBatchesSpanMigrationsAtomicallyAndInOrder) {
  // A batch is one task, so the park/replay handoff moves it as one unit:
  // it can never be split across shards, half-applied, or reordered
  // against the single ops around it. 24 rounds interleave
  // single-op applies, 16-op batches and a batched query with a live
  // migration racing them; after each round the *batch's* keys and the
  // singles' keys must all be visible (FIFO across the handoff), and the
  // final ground truth must match exactly — cardinality and checksum.
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 3));
  vm.open_volume("alice");
  vm.open_volume("bob");  // bystander that must never stall
  vm.apply("bob", {add(7)}).get();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> bob_ops{0};
  std::thread bystander([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_EQ(vm.query("bob", 7).get().size(), 1u);
      bob_ops.fetch_add(1, std::memory_order_relaxed);
    }
  });

  constexpr std::size_t kBatch = 16;
  std::uint64_t expect_checksum = 0;
  std::uint64_t expect_count = 0;
  bc::BlockNo next = 1000;
  for (int round = 0; round < 24; ++round) {
    const bc::BlockNo single_blk = next++;
    vm.apply("alice", {add(single_blk)}).get();

    std::vector<bsvc::UpdateOp> batch;
    const bc::BlockNo batch_base = next;
    for (std::size_t i = 0; i < kBatch; ++i) batch.push_back(add(next++));
    // Fire the batch and immediately race the handoff (don't wait for the
    // apply first — parking the batch is the point).
    auto applied = vm.apply_batch("alice", std::move(batch));
    const std::size_t target = (vm.current_shard("alice") + 1) % 3;
    const bsvc::MigrationStats ms = vm.migrate_volume("alice", target);
    EXPECT_TRUE(ms.moved);
    ASSERT_NO_THROW(applied.get());

    // FIFO survived: a batched query submitted after the move sees the
    // single and every batch op on the new shard.
    std::vector<bsvc::QueryRange> ranges;
    ranges.push_back({single_blk, 1, {}});
    for (std::size_t i = 0; i < kBatch; ++i)
      ranges.push_back({batch_base + i, 1, {}});
    const auto results = vm.query_batch("alice", std::move(ranges)).get();
    ASSERT_EQ(results.size(), kBatch + 1);
    for (std::size_t i = 0; i < results.size(); ++i) {
      EXPECT_EQ(results[i].size(), 1u) << "round " << round << " range " << i;
    }

    expect_checksum ^= key_checksum(key(single_blk));
    for (std::size_t i = 0; i < kBatch; ++i)
      expect_checksum ^= key_checksum(key(batch_base + i));
    expect_count += kBatch + 1;
  }
  stop.store(true, std::memory_order_release);
  bystander.join();
  EXPECT_GT(bob_ops.load(), 0u);

  // No lost or duplicated op across all 24 handoffs.
  std::uint64_t got_checksum = 0, got_count = 0;
  vm.with_db("alice",
             [&](bc::BacklogDb& db) {
               for (const auto& rec : db.scan_all()) {
                 if (rec.to != bc::kInfinity) continue;
                 ++got_count;
                 got_checksum ^= key_checksum(rec.key);
               }
             })
      .get();
  EXPECT_EQ(got_count, expect_count);
  EXPECT_EQ(got_checksum, expect_checksum);
  EXPECT_EQ(vm.stats().tenants.at("alice").migrations, 24u);
}

TEST(ServiceMigration, ConcurrentStressNoLostOrDuplicatedUpdates) {
  // Feeders replay per-tenant traces with snapshot, clone and migration
  // events embedded, background maintenance sweeps throughout, and every
  // volume keeps moving between shards. Afterwards each volume's live
  // records must equal the trace ground truth exactly — cardinality and
  // order-independent checksum — so a lost batch, a double replay or a
  // misrouted op cannot hide.
  constexpr std::size_t kTenants = 6;
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 3));

  bsvc::MaintenancePolicy policy;
  policy.l0_run_threshold = 8;
  policy.budget_per_sweep = 2;
  policy.poll_interval = std::chrono::milliseconds(5);
  bsvc::MaintenanceScheduler scheduler(vm, policy);

  std::vector<bf::TenantWorkload> workloads;
  for (std::size_t i = 0; i < kTenants; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    vm.open_volume(name);
    bf::TenantTraceOptions to;
    to.block_ops = 3000 + 400 * i;
    to.remove_fraction = 0.4;
    to.seed = 5000 + i;
    to.snapshot_every_ops = 700;
    to.clone_every_ops = 1500;
    to.migrate_every_ops = 450 + 50 * i;  // desynchronized churn
    workloads.push_back({name, bf::synthesize_tenant_trace(to)});
  }

  bf::ReplayOptions ro;
  ro.batch_ops = 128;
  ro.ops_per_cp = 500;
  ro.query_every_ops = 90;
  const auto results = bf::replay_concurrently(vm, workloads, ro);
  scheduler.stop();

  ASSERT_EQ(results.size(), kTenants);
  std::uint64_t total_migrations = 0;
  for (std::size_t i = 0; i < kTenants; ++i) {
    EXPECT_EQ(results[i].ops, workloads[i].trace.ops.size());
    EXPECT_EQ(results[i].snapshots, workloads[i].trace.snapshots);
    EXPECT_EQ(results[i].clones, workloads[i].trace.lines - 1);
    EXPECT_GT(results[i].migrations, 0u) << results[i].tenant;
    EXPECT_EQ(results[i].empty_query_results, 0u) << results[i].tenant;
    total_migrations += results[i].migrations;
  }

  for (const auto& wl : workloads) {
    std::set<KeyTuple> expect;
    std::uint64_t expect_checksum = 0;
    for (const auto& k : wl.trace.live_keys) {
      expect.insert(tup(k));
      expect_checksum ^= key_checksum(k);
    }
    std::set<KeyTuple> got;
    std::uint64_t got_checksum = 0;
    vm.with_db(wl.tenant,
               [&](bc::BacklogDb& db) {
                 for (const auto& rec : db.scan_all()) {
                   if (rec.to != bc::kInfinity) continue;
                   got.insert(tup(rec.key));
                   got_checksum ^= key_checksum(rec.key);
                 }
               })
        .get();
    EXPECT_EQ(got.size(), expect.size()) << wl.tenant;
    EXPECT_EQ(got_checksum, expect_checksum) << wl.tenant;
    EXPECT_EQ(got, expect) << wl.tenant;
  }

  const auto stats = vm.stats();
  std::uint64_t updates = 0;
  for (const auto& [name, ts] : stats.tenants) updates += ts.updates;
  EXPECT_EQ(updates, stats.total.updates);
  EXPECT_EQ(stats.total.migrations, total_migrations);
  EXPECT_GT(stats.total.snapshots, 0u);
  EXPECT_GT(stats.total.clones, 0u);
}
