// The WAL durability pipeline under fire.
//
// Four suites:
//
//   * WalReplay — the log's untrusted-input decoder, driven directly: a
//     torn tail truncated at *every* byte offset and a bit flip at every
//     byte must clean-reject (never throw), applying exactly the intact
//     record prefix; CRC-valid records carrying ops the db would refuse
//     (kind out of range, zero/over-cap extents) are rejected the same way.
//   * WalCrashMatrix — fork/_exit crash injection at every commit-pipeline
//     ordering point ("wal_appended", "wal_synced", "cp_flushed",
//     "registry_persisted", "wal_truncated"), each at two adjacent firings.
//     _exit skips destructors but keeps the kernel page cache, so the
//     recovered state is *deterministic*: every batch whose injection point
//     fired is present — via WAL replay before the registry commits, via
//     run files after — and recovery must agree exactly with an in-test
//     model, with the on-disk file set, and with a NaiveBackrefs replay of
//     the same op sequence (zero masked-query divergence).
//   * WalGroupCommit — the commit window amortizes fsyncs across batches
//     and volumes of a shard; window 0 degenerates to per-op fsync; acked
//     writes survive a reopen with no consistency point in between.
//   * WoundedVolume — persistent write errors (injected via the Env's
//     write-fault plans) flip the volume read-only: every mutating verb
//     returns typed ErrorCode::kWounded (in-process and over the wire),
//     reads keep working, the gauge reports it, and a torn-page fault's
//     half-written record is clean-rejected on the next open.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <filesystem>
#include <fstream>
#include <future>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "baseline/naive_backrefs.hpp"
#include "core/wal.hpp"
#include "net/client.hpp"
#include "net/handlers.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace bb = backlog::baseline;
namespace bc = backlog::core;
namespace bn = backlog::net;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;
namespace fs = std::filesystem;

#if defined(__SANITIZE_THREAD__)
#define BACKLOG_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define BACKLOG_TSAN 1
#endif
#endif

namespace {

bsvc::ServiceOptions wal_options(const fs::path& root,
                                 std::uint32_t window_micros = 0) {
  bsvc::ServiceOptions o;
  o.shards = 1;
  o.root = root;
  o.db_options.expected_ops_per_cp = 512;
  o.sync_writes = false;  // wal_enabled re-enables real fsyncs on the Env
  o.wal_enabled = true;
  o.wal_commit_window_micros = window_micros;
  return o;
}

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) { return {bsvc::UpdateOp::Kind::kAdd, key(b)}; }
bsvc::UpdateOp rm(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kRemove, key(b)};
}

using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t>;
KeyTuple tup(const bc::BackrefKey& k) {
  return {k.block, k.inode, k.offset, k.length, k.line};
}

// Every block the tests touch lives below this, so one masked query over
// [0, kUniverse) is the volume's whole live set.
constexpr std::uint64_t kUniverse = 512;

std::set<KeyTuple> live_keys(bsvc::VolumeManager& vm, const std::string& t) {
  std::set<KeyTuple> out;
  for (const auto& e : vm.query(t, 0, kUniverse).get()) {
    if (e.rec.to == bc::kInfinity) out.insert(tup(e.rec.key));
  }
  return out;
}

/// On-disk == manifest: every regular file in the volume directory except
/// the WAL itself (never part of the manifest) is referenced by live_files,
/// and nothing referenced is missing — no leaked orphan runs after recovery.
void expect_disk_matches_manifest(bsvc::VolumeManager& vm, const fs::path& root,
                                  const std::string& tenant) {
  std::set<std::string> live, on_disk;
  vm.with_db(tenant,
             [&](bc::BacklogDb& db) {
               for (const auto& f : db.live_files()) live.insert(f);
               for (const auto& de : fs::directory_iterator(root / tenant)) {
                 if (de.is_regular_file())
                   on_disk.insert(de.path().filename().string());
               }
             })
      .get();
  on_disk.erase(bc::Wal::kDefaultName);
  EXPECT_EQ(on_disk, live) << "leaked or missing files in " << tenant;
}

/// Replays `ops` through the naive conceptual table and returns its live
/// key set — the reference a recovered volume must not diverge from.
std::set<KeyTuple> naive_live_keys(const std::vector<bsvc::UpdateOp>& ops) {
  bs::TempDir dir;
  bs::Env env(dir.path());
  bb::NaiveBackrefs naive(env);
  for (const bsvc::UpdateOp& op : ops) {
    if (op.kind == bsvc::UpdateOp::Kind::kAdd) {
      naive.add_reference(op.key);
    } else {
      naive.remove_reference(op.key);
    }
  }
  naive.on_consistency_point();
  std::set<KeyTuple> out;
  for (const auto& r : naive.query(0, kUniverse)) {
    if (r.to == bc::kInfinity) out.insert(tup(r.key));
  }
  return out;
}

void apply_to_model(std::set<KeyTuple>& model,
                    const std::vector<bsvc::UpdateOp>& batch) {
  for (const bsvc::UpdateOp& op : batch) {
    if (op.kind == bsvc::UpdateOp::Kind::kAdd) {
      model.insert(tup(op.key));
    } else {
      model.erase(tup(op.key));
    }
  }
}

bsvc::ErrorCode code_of(std::future<void>& f) {
  try {
    f.get();
  } catch (const bsvc::ServiceError& e) {
    return e.code();
  } catch (...) {
    ADD_FAILURE() << "expected ServiceError";
  }
  return bsvc::ErrorCode::kOk;
}

// --- WAL replay: the untrusted decoder ---------------------------------------

std::vector<bsvc::UpdateOp> record_ops(bc::BlockNo first, std::uint64_t n) {
  std::vector<bsvc::UpdateOp> ops;
  for (std::uint64_t i = 0; i < n; ++i) ops.push_back(add(first + i));
  return ops;
}

/// Writes `records` (epoch, ops) pairs through the real append path and
/// returns the resulting file bytes.
std::vector<char> build_log(const fs::path& dir,
                            const std::vector<std::vector<bsvc::UpdateOp>>& recs) {
  {
    bs::Env env(dir);
    bc::Wal wal(env);
    bc::Epoch epoch = 1;
    for (const auto& r : recs) wal.append(epoch++, r);
    wal.sync();
  }
  std::ifstream in(dir / bc::Wal::kDefaultName, std::ios::binary);
  return {std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>()};
}

void write_log(const fs::path& dir, const std::vector<char>& bytes) {
  std::ofstream out(dir / bc::Wal::kDefaultName,
                    std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

bc::WalReplayStats replay_count(const fs::path& dir, std::uint64_t* ops_seen,
                                bc::WalReplayOptions opts = {}) {
  bs::Env env(dir);
  std::uint64_t n = 0;
  const bc::WalReplayStats st = bc::Wal::replay(
      env, bc::Wal::kDefaultName, opts,
      [&n](bc::Epoch, std::span<const bc::Update> ops) { n += ops.size(); });
  if (ops_seen != nullptr) *ops_seen = n;
  return st;
}

TEST(WalReplay, MissingAndEmptyLogsReplayNothing) {
  bs::TempDir dir;
  std::uint64_t n = 0;
  bc::WalReplayStats st = replay_count(dir.path(), &n);
  EXPECT_EQ(st.frames_scanned, 0u);
  EXPECT_FALSE(st.tail_rejected);
  EXPECT_EQ(n, 0u);

  build_log(dir.path(), {});  // creates the file, appends nothing
  st = replay_count(dir.path(), &n);
  EXPECT_EQ(st.frames_scanned, 0u);
  EXPECT_FALSE(st.tail_rejected);
}

TEST(WalReplay, RoundTripAppliesEveryRecordInOrder) {
  bs::TempDir dir;
  build_log(dir.path(),
            {record_ops(10, 3), record_ops(20, 5), record_ops(30, 2)});
  bs::Env env(dir.path());
  std::vector<std::uint64_t> blocks;
  std::vector<bc::Epoch> epochs;
  const bc::WalReplayStats st = bc::Wal::replay(
      env, bc::Wal::kDefaultName, {},
      [&](bc::Epoch e, std::span<const bc::Update> ops) {
        epochs.push_back(e);
        for (const auto& op : ops) blocks.push_back(op.key.block);
      });
  EXPECT_EQ(st.frames_scanned, 3u);
  EXPECT_EQ(st.ops_applied, 10u);
  EXPECT_FALSE(st.tail_rejected);
  EXPECT_EQ(epochs, (std::vector<bc::Epoch>{1, 2, 3}));
  EXPECT_EQ(blocks, (std::vector<std::uint64_t>{10, 11, 12, 20, 21, 22, 23,
                                                24, 30, 31}));
}

TEST(WalReplay, RecordsBelowMinEpochAreSkippedNotApplied) {
  bs::TempDir dir;
  build_log(dir.path(),
            {record_ops(10, 4), record_ops(20, 4), record_ops(30, 4)});
  std::uint64_t n = 0;
  bc::WalReplayOptions opts;
  opts.min_epoch = 2;  // record 1 (epoch 1) is already durable in runs
  const bc::WalReplayStats st = replay_count(dir.path(), &n, opts);
  EXPECT_EQ(st.frames_scanned, 3u);
  EXPECT_EQ(st.ops_skipped, 4u);
  EXPECT_EQ(st.ops_applied, 8u);
  EXPECT_EQ(n, 8u);
}

TEST(WalReplay, TruncationAtEveryByteCleanRejectsTheTail) {
  bs::TempDir dir;
  const std::vector<std::uint64_t> per_record = {3, 1, 5};
  const std::vector<char> good = build_log(
      dir.path(), {record_ops(10, 3), record_ops(20, 1), record_ops(30, 5)});
  // Byte offsets where a record boundary sits, and the op count intact at
  // that prefix length.
  std::vector<std::pair<std::size_t, std::uint64_t>> boundaries;
  std::size_t off = 0;
  std::uint64_t ops = 0;
  boundaries.emplace_back(0, 0);
  for (const std::uint64_t n : per_record) {
    off += bc::Wal::kHeaderSize + n * bc::Wal::kOpSize;
    ops += n;
    boundaries.emplace_back(off, ops);
  }
  ASSERT_EQ(off, good.size());

  for (std::size_t cut = 0; cut <= good.size(); ++cut) {
    write_log(dir.path(), {good.begin(), good.begin() + cut});
    std::uint64_t n = 0;
    bc::WalReplayStats st;
    ASSERT_NO_THROW(st = replay_count(dir.path(), &n)) << "cut at " << cut;
    // The longest whole-record prefix within the cut survives; the rest is
    // rejected as a torn tail.
    std::uint64_t want_ops = 0;
    std::size_t boundary = 0;
    for (const auto& [b, o] : boundaries) {
      if (b <= cut) {
        boundary = b;
        want_ops = o;
      }
    }
    EXPECT_EQ(n, want_ops) << "cut at " << cut;
    EXPECT_EQ(st.tail_rejected, cut != boundary) << "cut at " << cut;
    EXPECT_EQ(st.bytes_rejected, cut - boundary) << "cut at " << cut;
  }
}

TEST(WalReplay, BitFlipAtEveryByteCleanRejectsFromTheFlippedRecord) {
  bs::TempDir dir;
  const std::vector<std::uint64_t> per_record = {3, 1, 5};
  const std::vector<char> good = build_log(
      dir.path(), {record_ops(10, 3), record_ops(20, 1), record_ops(30, 5)});

  for (std::size_t i = 0; i < good.size(); ++i) {
    auto bad = good;
    bad[i] = static_cast<char>(bad[i] ^ 0x40);
    write_log(dir.path(), bad);
    std::uint64_t n = 0;
    bc::WalReplayStats st;
    ASSERT_NO_THROW(st = replay_count(dir.path(), &n)) << "flip at " << i;
    // Records strictly before the flipped one apply; the flip's record and
    // everything after it are rejected (CRC covers every byte, and a length
    // flip fails the redundant-length cross-check before the CRC is read).
    std::size_t off = 0;
    std::uint64_t want_ops = 0;
    for (const std::uint64_t nrec : per_record) {
      const std::size_t end = off + bc::Wal::kHeaderSize + nrec * bc::Wal::kOpSize;
      if (i < end) break;
      want_ops += nrec;
      off = end;
    }
    EXPECT_EQ(n, want_ops) << "flip at " << i;
    EXPECT_TRUE(st.tail_rejected) << "flip at " << i;
  }
}

TEST(WalReplay, CrcValidRecordWithImpossibleOpsIsRejectedNotApplied) {
  // The append path can be coaxed into logging ops the db would refuse —
  // replay must treat them as corruption, not input.
  {
    bs::TempDir dir;
    bs::Env env(dir.path());
    bc::Wal wal(env);
    bc::BackrefKey zero_len = key(10);
    zero_len.length = 0;
    const std::vector<bsvc::UpdateOp> ops = {
        {bsvc::UpdateOp::Kind::kAdd, zero_len}};
    wal.append(1, ops);
    wal.sync();
    std::uint64_t n = 0;
    const bc::WalReplayStats st = replay_count(dir.path(), &n);
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(st.tail_rejected);
  }
  {
    bs::TempDir dir;
    bs::Env env(dir.path());
    bc::Wal wal(env);
    bc::BackrefKey huge = key(10);
    huge.length = 1 << 20;
    const std::vector<bsvc::UpdateOp> ops = {
        {bsvc::UpdateOp::Kind::kAdd, huge}};
    wal.append(1, ops);
    wal.sync();
    std::uint64_t n = 0;
    bc::WalReplayOptions opts;
    opts.max_extent_blocks = 128;
    const bc::WalReplayStats st = replay_count(dir.path(), &n, opts);
    EXPECT_EQ(n, 0u);
    EXPECT_TRUE(st.tail_rejected);
  }
}

// --- crash matrix ------------------------------------------------------------

/// The child's workload after the parent seeded and committed batch A:
/// apply B1, apply B2, CP, apply B3, CP. Injection points fire in a fixed
/// order, so each (point, ordinal) pins an exact prefix of batches whose
/// point fired before the kill — and _exit keeps the page cache, so exactly
/// that prefix must recover.
std::vector<std::vector<bsvc::UpdateOp>> crash_batches() {
  std::vector<bsvc::UpdateOp> b1, b2, b3;
  for (std::uint64_t i = 0; i < 16; ++i) b1.push_back(add(100 + i));
  for (std::uint64_t i = 0; i < 16; ++i) b2.push_back(add(200 + i));
  for (std::uint64_t i = 0; i < 4; ++i) b2.push_back(rm(104 + i));
  for (std::uint64_t i = 0; i < 16; ++i) b3.push_back(add(300 + i));
  return {b1, b2, b3};
}

/// Kills a forked child at the `ordinal`-th firing of `point`, then verifies
/// the recovered volume holds exactly the first `expect_batches` batches on
/// top of the seed — against an in-test model, the on-disk file set, and a
/// NaiveBackrefs replay of the same ops.
void run_wal_crash_case(const char* point, int ordinal, int expect_batches) {
  SCOPED_TRACE(std::string("crash at ") + point + " firing #" +
               std::to_string(ordinal));
  bs::TempDir dir;
  const auto batches = crash_batches();
  std::vector<bsvc::UpdateOp> seed;
  for (std::uint64_t b = 1; b <= 48; ++b) seed.push_back(add(b));

  {
    bsvc::VolumeManager vm(wal_options(dir.path()));
    vm.open_volume("alpha");
    vm.apply("alpha", seed).get();
    vm.consistency_point("alpha").get();
  }  // joined: single-threaded again, safe to fork

  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    bsvc::ServiceOptions so = wal_options(dir.path());
    const std::string target = point;
    auto fired = std::make_shared<int>(0);
    so.wal_checkpoint = [target, ordinal, fired](std::string_view p) {
      if (p == target && ++*fired == ordinal) ::_exit(0);
    };
    try {
      bsvc::VolumeManager vm(so);
      vm.open_volume("alpha");
      vm.apply("alpha", batches[0]).get();
      vm.apply("alpha", batches[1]).get();
      vm.consistency_point("alpha").get();
      vm.apply("alpha", batches[2]).get();
      vm.consistency_point("alpha").get();
    } catch (...) {
      ::_exit(18);
    }
    ::_exit(17);  // the injection point never fired — test bug
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  ASSERT_EQ(WEXITSTATUS(status), 0) << "child did not die at the point";

  std::set<KeyTuple> model;
  std::vector<bsvc::UpdateOp> replayed_ops = seed;
  apply_to_model(model, seed);
  for (int i = 0; i < expect_batches; ++i) {
    apply_to_model(model, batches[i]);
    replayed_ops.insert(replayed_ops.end(), batches[i].begin(),
                        batches[i].end());
  }

  bsvc::VolumeManager vm(wal_options(dir.path()));
  vm.open_volume("alpha");
  EXPECT_EQ(live_keys(vm, "alpha"), model) << "recovered state != model";
  EXPECT_EQ(live_keys(vm, "alpha"), naive_live_keys(replayed_ops))
      << "masked-query divergence vs NaiveBackrefs";
  expect_disk_matches_manifest(vm, dir.path(), "alpha");

  // The recovered volume is fully serviceable: a fresh committed write
  // round-trips.
  vm.apply("alpha", {add(450)}).get();
  vm.consistency_point("alpha").get();
  EXPECT_FALSE(vm.query("alpha", 450).get().empty());
}

}  // namespace

#ifndef BACKLOG_TSAN
TEST(WalCrashMatrix, KillAtWalAppended) {
  // The record is in the log (page cache) but unsynced and unacked; replay
  // must still deliver it after _exit — an un-fsynced write survives
  // process death.
  run_wal_crash_case("wal_appended", 1, 1);
  if (HasFatalFailure()) return;
  run_wal_crash_case("wal_appended", 2, 2);
}

TEST(WalCrashMatrix, KillAtWalSynced) {
  // The acked case: the fsync completed, so the batch is a hard promise.
  run_wal_crash_case("wal_synced", 1, 1);
  if (HasFatalFailure()) return;
  run_wal_crash_case("wal_synced", 2, 2);
}

TEST(WalCrashMatrix, KillAtCpFlushed) {
  // Runs are on disk but the registry is not: the new runs recover as
  // orphans and are removed, and the WAL (not yet truncated, epochs still
  // at the old CP) re-supplies every op.
  run_wal_crash_case("cp_flushed", 1, 2);
  if (HasFatalFailure()) return;
  run_wal_crash_case("cp_flushed", 2, 3);
}

TEST(WalCrashMatrix, KillAtRegistryPersisted) {
  // The CP committed: the WAL's records now carry epochs below the
  // recovered registry and must be skipped — the data arrives via runs,
  // and double-apply must not occur.
  run_wal_crash_case("registry_persisted", 1, 2);
  if (HasFatalFailure()) return;
  run_wal_crash_case("registry_persisted", 2, 3);
}

TEST(WalCrashMatrix, KillAtWalTruncated) {
  // Log truncated behind the committed CP: replay sees an empty file.
  run_wal_crash_case("wal_truncated", 1, 2);
  if (HasFatalFailure()) return;
  run_wal_crash_case("wal_truncated", 2, 3);
}
#endif  // BACKLOG_TSAN

// --- group commit ------------------------------------------------------------

TEST(WalGroupCommit, WindowZeroIsPerOpFsync) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(wal_options(dir.path(), 0));
  vm.open_volume("a");
  for (std::uint64_t i = 0; i < 8; ++i) vm.apply("a", {add(10 + i)}).get();
  EXPECT_EQ(vm.metrics().counter("backlog_wal_records_total", "").total(), 8u);
  EXPECT_EQ(vm.metrics().counter("backlog_wal_syncs_total", "").total(), 8u);
}

TEST(WalGroupCommit, WindowAmortizesFsyncsAcrossBatchesAndVolumes) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(wal_options(dir.path(), /*window_micros=*/20000));
  vm.open_volume("a");
  vm.open_volume("b");
  std::vector<std::future<void>> acks;
  for (std::uint64_t i = 0; i < 16; ++i) {
    acks.push_back(vm.apply("a", {add(100 + i)}));
    acks.push_back(vm.apply("b", {add(200 + i)}));
  }
  for (auto& f : acks) EXPECT_NO_THROW(f.get());
  const std::uint64_t records =
      vm.metrics().counter("backlog_wal_records_total", "").total();
  const std::uint64_t syncs =
      vm.metrics().counter("backlog_wal_syncs_total", "").total();
  EXPECT_EQ(records, 32u);
  EXPECT_GE(syncs, 2u);  // at least one sweep, both volumes dirty in it
  EXPECT_LT(syncs, records) << "group commit did not amortize fsyncs";
  EXPECT_EQ(live_keys(vm, "a").size(), 16u);
  EXPECT_EQ(live_keys(vm, "b").size(), 16u);
}

TEST(WalGroupCommit, AckedWritesSurviveReopenWithoutAnyConsistencyPoint) {
  bs::TempDir dir;
  std::set<KeyTuple> model;
  {
    bsvc::VolumeManager vm(wal_options(dir.path(), /*window_micros=*/2000));
    vm.open_volume("a");
    std::vector<std::future<void>> acks;
    std::vector<bsvc::UpdateOp> all;
    for (std::uint64_t i = 0; i < 10; ++i) {
      acks.push_back(vm.apply("a", {add(50 + i)}));
      all.push_back(add(50 + i));
    }
    for (auto& f : acks) f.get();
    apply_to_model(model, all);
  }  // torn down with a dirty write store and no CP — like a clean kill
  bsvc::VolumeManager vm(wal_options(dir.path()));
  vm.open_volume("a");
  EXPECT_EQ(live_keys(vm, "a"), model);
  EXPECT_GE(vm.metrics().counter("backlog_wal_replayed_ops_total", "").total(),
            10u);
}

TEST(WalGroupCommit, ConsistencyPointTruncatesTheLog) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(wal_options(dir.path()));
  vm.open_volume("a");
  const auto wal_size = [&] {
    std::uint64_t size = 0;
    vm.with_env("a", [&size](bs::Env& env, bc::BacklogDb&) {
        size = env.file_size(bc::Wal::kDefaultName);
      }).get();
    return size;
  };
  vm.apply("a", {add(10), add(11)}).get();
  EXPECT_GT(wal_size(), 0u);
  vm.consistency_point("a").get();
  EXPECT_EQ(wal_size(), 0u) << "CP did not truncate the WAL";
  vm.apply("a", {add(12)}).get();
  EXPECT_GT(wal_size(), 0u);
}

// --- wounded volumes ---------------------------------------------------------

TEST(WoundedVolume, PersistentWriteErrorFlipsReadOnlyWithTypedErrors) {
  bs::TempDir dir;
  std::set<KeyTuple> committed;
  apply_to_model(committed, {add(10), add(11)});
  {
    bsvc::VolumeManager vm(wal_options(dir.path()));
    vm.open_volume("w");
    vm.apply("w", {add(10), add(11)}).get();
    vm.consistency_point("w").get();

    vm.with_env("w", [](bs::Env& env, bc::BacklogDb&) {
        env.set_write_fault({bs::Env::WriteFaultMode::kEio, 0, true});
      }).get();

    auto f = vm.apply("w", {add(20)});
    EXPECT_EQ(code_of(f), bsvc::ErrorCode::kWounded);

    // Reads keep working on the wounded volume. The refused batch was
    // applied in memory before the log write failed (the apply-before-log
    // ordering), so it is *visible* here — but it was never acked, and the
    // reopen below proves it is not durable.
    EXPECT_FALSE(vm.query("w", 10).get().empty());
    std::set<KeyTuple> ghost = committed;
    apply_to_model(ghost, {add(20)});
    EXPECT_EQ(live_keys(vm, "w"), ghost);

    // Every mutating verb fast-fails with the typed code.
    auto f2 = vm.apply("w", {add(21)});
    EXPECT_EQ(code_of(f2), bsvc::ErrorCode::kWounded);
    EXPECT_THROW(
        {
          try {
            vm.consistency_point("w").get();
          } catch (const bsvc::ServiceError& e) {
            EXPECT_EQ(e.code(), bsvc::ErrorCode::kWounded);
            throw;
          }
        },
        bsvc::ServiceError);
    EXPECT_THROW(vm.take_snapshot("w").get(), bsvc::ServiceError);
    EXPECT_THROW(vm.maintain("w").get(), bsvc::ServiceError);

    // Degradation is visible to monitoring.
    EXPECT_EQ(vm.metrics().counter("backlog_volumes_wounded_total", "").total(),
              1u);
    EXPECT_EQ(vm.metrics().gauge("backlog_wounded_volumes", "").value(), 1.0);
  }
  // Un-acked writes died with the process; the committed state recovers and
  // the wound does not outlive the bad Env.
  bsvc::VolumeManager vm(wal_options(dir.path()));
  vm.open_volume("w");
  EXPECT_EQ(live_keys(vm, "w"), committed);
  vm.apply("w", {add(30)}).get();
  EXPECT_EQ(vm.metrics().gauge("backlog_wounded_volumes", "").value(), 0.0);
}

TEST(WoundedVolume, SyncFailureUnderGroupCommitWoundsOnlyThatVolume) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(wal_options(dir.path(), /*window_micros=*/5000));
  vm.open_volume("sick");
  vm.open_volume("healthy");

  // The next append lands, then the window's fsync fails — the persistent
  // error wounds the volume and its pending ack carries the typed code.
  vm.with_env("sick", [](bs::Env& env, bc::BacklogDb&) {
      env.set_write_fault({bs::Env::WriteFaultMode::kEio, 1, true});
    }).get();

  auto sick = vm.apply("sick", {add(10)});
  auto ok = vm.apply("healthy", {add(20)});
  EXPECT_EQ(code_of(sick), bsvc::ErrorCode::kWounded);
  EXPECT_NO_THROW(ok.get());  // the neighbour's ack rides the same sweep

  EXPECT_EQ(live_keys(vm, "healthy").size(), 1u);
  auto again = vm.apply("sick", {add(11)});
  EXPECT_EQ(code_of(again), bsvc::ErrorCode::kWounded);
  EXPECT_EQ(vm.metrics().gauge("backlog_wounded_volumes", "").value(), 1.0);
}

TEST(WoundedVolume, TornPageFaultRecoversCleanlyToLastAckedState) {
  bs::TempDir dir;
  std::set<KeyTuple> committed;
  {
    bsvc::VolumeManager vm(wal_options(dir.path()));
    vm.open_volume("w");
    std::vector<bsvc::UpdateOp> seed;
    for (std::uint64_t b = 1; b <= 8; ++b) seed.push_back(add(b));
    vm.apply("w", seed).get();
    vm.consistency_point("w").get();
    apply_to_model(committed, seed);

    // A torn page: half the record lands in the WAL, then EIO. The write
    // was never acked, the volume is wounded, and the half-record is
    // exactly the torn tail replay must clean-reject on the next open.
    vm.with_env("w", [](bs::Env& env, bc::BacklogDb&) {
        env.set_write_fault({bs::Env::WriteFaultMode::kTornPage, 0, true});
      }).get();
    auto f = vm.apply("w", record_ops(100, 200));  // big enough to tear
    EXPECT_EQ(code_of(f), bsvc::ErrorCode::kWounded);
    std::uint64_t torn = 0;
    vm.with_env("w", [&torn](bs::Env& env, bc::BacklogDb&) {
        torn = env.file_size(bc::Wal::kDefaultName);
      }).get();
    EXPECT_GT(torn, 0u);  // a partial record really is on disk
  }
  bsvc::VolumeManager vm(wal_options(dir.path()));
  vm.open_volume("w");  // replay clean-rejects the torn tail — no throw
  EXPECT_EQ(live_keys(vm, "w"), committed);
  expect_disk_matches_manifest(vm, dir.path(), "w");
  // Healed on reopen: the wound does not persist across recovery.
  vm.apply("w", {add(400)}).get();
  vm.consistency_point("w").get();
  EXPECT_FALSE(vm.query("w", 400).get().empty());
}

TEST(WoundedVolume, TypedErrorSurfacesOverTheWire) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(wal_options(dir.path()));
  bn::ServiceEndpoint endpoint(vm);
  bn::ServerOptions opts;
  opts.port = 0;
  opts.io_threads = 2;
  endpoint.start(opts);

  bn::Client c;
  c.connect("127.0.0.1", endpoint.port());
  c.open_volume("w");
  c.apply_batch("w", {add(10)});
  c.consistency_point("w");

  vm.with_env("w", [](bs::Env& env, bc::BacklogDb&) {
      env.set_write_fault({bs::Env::WriteFaultMode::kEio, 0, true});
    }).get();

  try {
    c.apply_batch("w", {add(20)});
    FAIL() << "expected kWounded over the wire";
  } catch (const bsvc::ServiceError& e) {
    EXPECT_EQ(e.code(), bsvc::ErrorCode::kWounded);
  }
  // The connection survives and reads still answer.
  bsvc::QueryRange r;
  r.first = 10;
  r.count = 1;
  const auto hits = c.query_batch("w", {r});
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_FALSE(hits[0].empty());
  c.ping();
  endpoint.stop();
}
