// The batched hot path (apply_batch / query_batch / apply_many) and its
// allocation story.
//
// The perf PR's claims are structural, so the tests pin structure, not
// nanoseconds: (a) InlineTask keeps the service's dispatch wrappers out of
// the allocator and RingDeque reuses its slots, verified with a counting
// global operator new — a warmed ShardQueue push/pop_many cycle performs
// *zero* heap allocations, and an apply_batch call allocates O(1) on the
// API thread regardless of batch size; (b) chunked dequeue (pop_many) is
// schedule-equivalent to repeated pop() — stride fairness and the
// background anti-starvation rule hold inside chunks; (c) the batch verbs
// keep per-tenant FIFO order against interleaved single ops, validate
// atomically, and match the per-op path's pruning semantics exactly;
// (d) ServiceOptions::pin_shards actually pins the worker threads.
#include <gtest/gtest.h>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "core/backlog_db.hpp"
#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

// --- counting allocator ------------------------------------------------------
// Per-thread allocation counter: lets a test measure the API thread's
// allocations while worker threads allocate freely (write-store nodes etc.)
// on their own counters. Covers every replaceable global form so sized and
// aligned deallocations stay matched.

namespace {
thread_local std::uint64_t g_thread_allocs = 0;

std::uint64_t thread_allocs() { return g_thread_allocs; }

void* counted_malloc(std::size_t n) {
  ++g_thread_allocs;
  if (void* p = std::malloc(n ? n : 1)) return p;
  throw std::bad_alloc();
}

void* counted_aligned(std::size_t n, std::align_val_t al) {
  ++g_thread_allocs;
  void* p = nullptr;
  const std::size_t align =
      std::max(sizeof(void*), static_cast<std::size_t>(al));
  if (posix_memalign(&p, align, n ? n : 1) != 0 || p == nullptr)
    throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t n) { return counted_malloc(n); }
void* operator new[](std::size_t n) { return counted_malloc(n); }
void* operator new(std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}
void* operator new[](std::size_t n, std::align_val_t al) {
  return counted_aligned(n, al);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = 2;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}
bsvc::UpdateOp remove(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kRemove, key(b)};
}

std::vector<bsvc::UpdateOp> batch_of(bc::BlockNo first, std::size_t n) {
  std::vector<bsvc::UpdateOp> batch;
  batch.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    batch.push_back(add(first + static_cast<bc::BlockNo>(i)));
  return batch;
}

}  // namespace

// --- InlineTask --------------------------------------------------------------

TEST(InlineTask, SmallCapturesStayInlineAndMove) {
  int x = 0;
  std::array<char, 96> pad{};  // the dispatch-wrapper ballpark
  const std::uint64_t before = thread_allocs();
  bsvc::Task t([&x, pad] { x += 1 + pad[0]; });
  EXPECT_EQ(thread_allocs() - before, 0u) << "small capture heap-allocated";
  ASSERT_TRUE(static_cast<bool>(t));
  EXPECT_FALSE(t.heap_allocated());
  t();
  EXPECT_EQ(x, 1);

  bsvc::Task moved = std::move(t);
  EXPECT_FALSE(static_cast<bool>(t));  // NOLINT(bugprone-use-after-move)
  ASSERT_TRUE(static_cast<bool>(moved));
  moved();
  EXPECT_EQ(x, 2);

  moved = bsvc::Task{};  // move-assign empties and destroys
  EXPECT_FALSE(static_cast<bool>(moved));
}

TEST(InlineTask, OversizedCapturesSpillToHeapAndDestroyOnce) {
  auto marker = std::make_shared<int>(7);
  std::array<char, 512> big{};
  int runs = 0;
  {
    bsvc::Task t([marker, big, &runs] {
      (void)big;
      ++runs;
    });
    EXPECT_TRUE(t.heap_allocated());
    EXPECT_EQ(marker.use_count(), 2);
    bsvc::Task moved = std::move(t);
    EXPECT_EQ(marker.use_count(), 2);  // the heap pointer moved, no copy
    moved();
  }
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(marker.use_count(), 1);  // capture destroyed exactly once
}

// --- chunked dequeue ---------------------------------------------------------

TEST(ShardQueue, PopManyKeepsStrideFairnessAndBgAntiStarvation) {
  bsvc::ShardQueue q(/*bg_starvation_limit=*/4);
  std::vector<int> order;
  std::vector<int> seq1, seq2;
  for (int i = 0; i < 16; ++i) {
    q.push(
        [&order, &seq1, i] {
          order.push_back(1);
          seq1.push_back(i);
        },
        /*flow=*/1);
  }
  for (int i = 0; i < 16; ++i) {
    q.push(
        [&order, &seq2, i] {
          order.push_back(2);
          seq2.push_back(i);
        },
        /*flow=*/2);
  }
  for (int i = 0; i < 4; ++i) {
    q.push_background([&order] { order.push_back(0); });
  }
  q.close();

  std::vector<bsvc::Task> chunk;
  chunk.reserve(8);
  std::size_t chunks = 0, max_chunk = 0;
  for (;;) {
    chunk.clear();
    const std::size_t n = q.pop_many(chunk, 8);
    if (n == 0) break;
    ++chunks;
    max_chunk = std::max(max_chunk, n);
    for (bsvc::Task& t : chunk) t();
  }
  ASSERT_EQ(order.size(), 36u);
  EXPECT_EQ(max_chunk, 8u) << "dequeue never actually chunked";
  EXPECT_LE(chunks, 6u);

  // Stride fairness holds inside chunks: both flows appear early and often.
  EXPECT_GE(std::count(order.begin(), order.begin() + 8, 1), 3);
  EXPECT_GE(std::count(order.begin(), order.begin() + 8, 2), 3);
  // Per-flow FIFO survived the chunking.
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(seq1[i], i);
    EXPECT_EQ(seq2[i], i);
  }
  // The 1-in-4 anti-starvation rule fired *inside* a chunk: the first
  // background task ran after exactly 4 foreground tasks, and all
  // background work finished before the foreground backlog drained.
  const auto first_bg = std::find(order.begin(), order.end(), 0);
  ASSERT_NE(first_bg, order.end());
  EXPECT_EQ(first_bg - order.begin(), 4);
  const auto last_bg =
      std::find(order.rbegin(), order.rend(), 0).base() - order.begin();
  EXPECT_LT(last_bg, 32);
}

TEST(ShardQueue, SteadyStatePushPopManyIsAllocationFree) {
  bsvc::ShardQueue q;
  std::vector<bsvc::Task> chunk;
  chunk.reserve(8);
  std::uint64_t ran = 0;
  // Task shaped like the hot path's wrapper: comfortably inside the SBO
  // budget, far outside std::function's 16 bytes.
  std::array<std::uint64_t, 8> payload{};
  const auto cycle = [&] {
    for (int i = 0; i < 8; ++i) {
      q.push([&ran, payload] { ran += 1 + payload[0]; }, /*flow=*/1);
    }
    chunk.clear();
    // No gtest assertion inside the measured window — the final `ran`
    // count proves every task was popped and executed.
    (void)q.pop_many(chunk, 8);
    for (bsvc::Task& t : chunk) t();
  };
  for (int warm = 0; warm < 32; ++warm) cycle();  // grow rings + flow node

  const std::uint64_t before = thread_allocs();
  for (int i = 0; i < 256; ++i) cycle();
  EXPECT_EQ(thread_allocs() - before, 0u)
      << "steady-state enqueue/dequeue touched the allocator";
  EXPECT_EQ(ran, (32u + 256u) * 8u);
}

// --- batch verbs: semantics --------------------------------------------------

TEST(ServiceBatch, BatchAndSingleOpsInterleaveInFifoOrder) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  vm.open_volume("alice");

  vm.apply("alice", {add(1)}).get();
  auto b1 = vm.apply_batch("alice", {add(2), add(3)});
  auto q1 = vm.query("alice", 2);  // submitted after b1: must see it (FIFO)
  auto b2 = vm.apply_batch("alice", {remove(1), add(4)});
  auto q2 = vm.query_batch("alice", {{1, 1, {}}, {2, 1, {}}, {4, 1, {}}});

  b1.get();
  b2.get();
  EXPECT_EQ(q1.get().size(), 1u);
  const auto results = q2.get();
  ASSERT_EQ(results.size(), 3u);
  // remove(1) happened in the same CP window as add(1)? No — add(1) was in
  // an earlier apply, same window (no CP yet), so the WS annihilates it.
  EXPECT_TRUE(results[0].empty());
  EXPECT_EQ(results[1].size(), 1u);
  EXPECT_EQ(results[2].size(), 1u);

  // query_batch answers match the single-query verb exactly.
  EXPECT_EQ(results[1], vm.query("alice", 2).get());
  EXPECT_EQ(results[2], vm.query("alice", 4).get());

  // Degenerate batches are legal no-ops.
  EXPECT_NO_THROW(vm.apply_batch("alice", {}).get());
  EXPECT_TRUE(vm.query_batch("alice", {}).get().empty());
}

TEST(ServiceBatch, ApplyBatchValidatesAtomicallyApplyAppliesPrefix) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");

  bsvc::UpdateOp bad = add(2);
  bad.key.length = 0;

  // apply_batch: validation is up front, nothing lands.
  auto fut = vm.apply_batch("alice", {add(1), bad, add(3)});
  EXPECT_THROW(fut.get(), std::invalid_argument);
  EXPECT_EQ(vm.quick_stats("alice").get().ws_entries, 0u);

  // apply: the documented prefix contract — op 1 landed before the throw.
  auto fut2 = vm.apply("alice", {add(1), bad, add(3)});
  EXPECT_THROW(fut2.get(), std::invalid_argument);
  EXPECT_EQ(vm.quick_stats("alice").get().ws_entries, 1u);
}

TEST(ServiceBatch, ApplyManyMatchesSequentialPruningSemantics) {
  bs::TempDir dir;
  // Same op sequence through both paths; write stores must agree on every
  // pruning rule (annihilate, merge) and the post-CP state must be equal.
  const std::vector<bc::Update> ops = {
      add(10), add(11), remove(10),  // add+remove in one CP: annihilates
      remove(12), add(12),           // remove+re-add: To erased, no From
      add(13), add(14), remove(14),
  };

  bs::Env env_a(dir.path() / "a"), env_b(dir.path() / "b");
  bc::BacklogDb db_a(env_a), db_b(env_b);
  db_a.apply_many(ops);
  for (const bc::Update& op : ops) {
    if (op.kind == bc::Update::Kind::kAdd) {
      db_b.add_reference(op.key);
    } else {
      db_b.remove_reference(op.key);
    }
  }
  EXPECT_EQ(db_a.quick_stats().ws_entries, db_b.quick_stats().ws_entries);
  db_a.consistency_point();
  db_b.consistency_point();
  EXPECT_EQ(db_a.scan_all(), db_b.scan_all());

  // And the empty batch is a no-op.
  db_a.apply_many({});
  EXPECT_EQ(db_a.quick_stats().ws_entries, 0u);
}

// --- batch verbs: allocation shape -------------------------------------------

TEST(ServiceBatch, ApplyBatchEnqueueAllocationsAreConstantInBatchSize) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  const std::string tenant = "alice";
  vm.open_volume(tenant);

  // Warm the path: ring growth, flow registration, promise machinery.
  for (int i = 0; i < 8; ++i) {
    vm.apply_batch(tenant, batch_of(100000 + i * 10, 4)).get();
  }

  // Measure only the API thread's enqueue: the batch is built outside the
  // window and moved in; the worker's own allocations (write-store nodes)
  // land on its thread's counter, not ours.
  const auto measure = [&](bc::BlockNo base, std::size_t nops) {
    auto batch = batch_of(base, nops);
    const std::uint64_t before = thread_allocs();
    auto fut = vm.apply_batch(tenant, std::move(batch));
    const std::uint64_t after = thread_allocs();
    fut.get();
    return after - before;
  };

  const std::uint64_t small = measure(200000, 16);
  const std::uint64_t big = measure(300000, 4096);
  EXPECT_LE(small, 8u) << "per-batch enqueue cost grew beyond the promise";
  EXPECT_LE(big, small + 2)
      << "enqueue allocations scale with batch size (SBO task too small or "
         "an op-proportional copy crept in)";
}

// --- shard pinning -----------------------------------------------------------

TEST(ServiceBatch, PinShardsAppliesThreadAffinity) {
#if defined(__linux__)
  bs::TempDir dir;
  bsvc::ServiceOptions so = service_options(dir, 2);
  so.pin_shards = true;
  bsvc::VolumeManager vm(so);
  EXPECT_TRUE(vm.shards_pinned());

  vm.open_volume("alice");
  int cpus_in_mask = -1;
  vm.with_db("alice",
             [&](bc::BacklogDb&) {
               cpu_set_t set;
               CPU_ZERO(&set);
               if (pthread_getaffinity_np(pthread_self(), sizeof set, &set) ==
                   0) {
                 cpus_in_mask = CPU_COUNT(&set);
               }
             })
      .get();
  EXPECT_EQ(cpus_in_mask, 1) << "worker thread not pinned to a single CPU";

  // The pinned pool still serves real traffic end to end.
  vm.apply_batch("alice", batch_of(1, 64)).get();
  vm.consistency_point("alice").get();
  EXPECT_EQ(vm.query("alice", 1).get().size(), 1u);
#else
  GTEST_SKIP() << "thread affinity is Linux-only";
#endif
}
