// Tests of the multi-tenant volume service: tenant routing, the worker
// pool's foreground/background interleaving, cross-volume isolation,
// options validation, QuickStats bookkeeping, and a concurrent multi-tenant
// stress test verified against per-trace ground truth (run under
// ThreadSanitizer in CI).
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <set>
#include <thread>
#include <tuple>
#include <vector>

#include "fsim/multi_tenant.hpp"
#include "service/service.hpp"
#include "storage/env.hpp"

namespace bc = backlog::core;
namespace bf = backlog::fsim;
namespace bs = backlog::storage;
namespace bsvc = backlog::service;

namespace {

bsvc::ServiceOptions service_options(const bs::TempDir& dir,
                                     std::size_t shards) {
  bsvc::ServiceOptions o;
  o.shards = shards;
  o.root = dir.path();
  o.db_options.expected_ops_per_cp = 2000;
  o.sync_writes = false;
  return o;
}

bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.length = 1;
  return k;
}

bsvc::UpdateOp add(bc::BlockNo b) {
  return {bsvc::UpdateOp::Kind::kAdd, key(b)};
}

/// A set-comparable projection of a BackrefKey.
using KeyTuple = std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                            std::uint64_t, std::uint64_t>;
KeyTuple tup(const bc::BackrefKey& k) {
  return {k.block, k.inode, k.offset, k.length, k.line};
}

}  // namespace

TEST(Service, TenantRoutingIsDeterministicAndStable) {
  bs::TempDir dir;
  std::vector<std::string> names;
  for (int i = 0; i < 64; ++i) names.push_back("tenant-" + std::to_string(i));

  std::vector<std::size_t> first;
  {
    bsvc::VolumeManager vm(service_options(dir, 4));
    for (const auto& n : names) first.push_back(vm.shard_of(n));
    // Every shard hosts someone (the hash spreads 64 tenants over 4 shards).
    std::set<std::size_t> used(first.begin(), first.end());
    EXPECT_EQ(used.size(), 4u);
  }
  {
    // A fresh service instance (fresh process in real life) routes each
    // tenant identically — volumes re-open on their old shard.
    bsvc::VolumeManager vm(service_options(dir, 4));
    for (std::size_t i = 0; i < names.size(); ++i) {
      EXPECT_EQ(vm.shard_of(names[i]), first[i]) << names[i];
    }
  }
}

TEST(Service, OptionsValidation) {
  bs::TempDir dir;

  // Core: constructing a BacklogDb with degenerate options must throw
  // rather than divide by zero downstream.
  bs::Env env(dir.path());
  {
    bc::BacklogOptions o;
    o.partition_blocks = 0;
    EXPECT_THROW(bc::BacklogDb db(env, o), std::invalid_argument);
  }
  {
    bc::BacklogOptions o;
    o.max_extent_blocks = 0;
    EXPECT_THROW(bc::BacklogDb db(env, o), std::invalid_argument);
  }
  {
    bc::BacklogOptions o;
    o.expected_ops_per_cp = 0;
    EXPECT_THROW(bc::BacklogDb db(env, o), std::invalid_argument);
  }

  // Service: zero shards, empty root and a cacheless hosted volume are
  // configuration errors.
  {
    bsvc::ServiceOptions o = service_options(dir, 0);
    EXPECT_THROW(bsvc::VolumeManager vm(o), std::invalid_argument);
  }
  {
    bsvc::ServiceOptions o = service_options(dir, 2);
    o.root.clear();
    EXPECT_THROW(bsvc::VolumeManager vm(o), std::invalid_argument);
  }
  {
    // With the shared block cache on (the default), the deprecated
    // per-volume cache_pages knob is ignored — 0 is fine...
    bsvc::ServiceOptions o = service_options(dir, 2);
    o.db_options.cache_pages = 0;
    bsvc::VolumeManager vm(o);
  }
  {
    // ...but opting out of the shared cache makes a cacheless hosted
    // volume a configuration error again.
    bsvc::ServiceOptions o = service_options(dir, 2);
    o.cache.enable_block_cache = false;
    o.db_options.cache_pages = 0;
    EXPECT_THROW(bsvc::VolumeManager vm(o), std::invalid_argument);
  }

  // Tenant names become directory names; reject traversal and duplicates.
  bs::TempDir dir2;
  bsvc::VolumeManager vm(service_options(dir2, 2));
  EXPECT_THROW(vm.open_volume(""), std::invalid_argument);
  EXPECT_THROW(vm.open_volume("../escape"), std::invalid_argument);
  EXPECT_THROW(vm.open_volume("a/b"), std::invalid_argument);
  vm.open_volume("alice");
  EXPECT_THROW(vm.open_volume("alice"), std::invalid_argument);
  EXPECT_THROW(vm.query("nobody", 1).get(), std::invalid_argument);
}

TEST(Service, VolumeLifecycleAndReopen) {
  bs::TempDir dir;
  {
    bsvc::VolumeManager vm(service_options(dir, 2));
    vm.open_volume("alice");
    vm.apply("alice", {add(100), add(200)}).get();
    vm.consistency_point("alice").get();
    vm.apply("alice", {add(300)}).get();
    // close_volume commits the still-buffered add(300).
    vm.close_volume("alice");
    EXPECT_FALSE(vm.has_volume("alice"));
  }
  {
    bsvc::VolumeManager vm(service_options(dir, 2));
    vm.open_volume("alice");
    EXPECT_EQ(vm.query("alice", 300).get().size(), 1u);
    EXPECT_EQ(vm.query("alice", 100).get().size(), 1u);
  }
}

TEST(Service, QueryWhileMaintenanceOnOneShard) {
  bs::TempDir dir;
  bsvc::ServiceOptions opts = service_options(dir, 1);  // force interleaving
  bsvc::VolumeManager vm(opts);
  vm.open_volume("alice");
  vm.open_volume("bob");

  // Pile up Level-0 runs on alice: 12 CP windows of updates.
  bc::BlockNo next = 1;
  for (int cp = 0; cp < 12; ++cp) {
    std::vector<bsvc::UpdateOp> batch;
    for (int i = 0; i < 200; ++i) batch.push_back(add(next++));
    vm.apply("alice", std::move(batch)).get();
    vm.consistency_point("alice").get();
  }
  ASSERT_GE(vm.quick_stats("alice").get().l0_runs(), 12u);

  // Hold the shard on a gate task so the probe stays queued while we check
  // the one-probe-in-flight rule, then flood the shard with foreground
  // queries for both tenants plus updates for bob.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto blocker = vm.with_db("alice", [released](bc::BacklogDb&) { released.wait(); });

  bsvc::MaintenancePolicy policy;
  policy.l0_run_threshold = 4;
  ASSERT_TRUE(vm.schedule_maintenance("alice", policy));
  EXPECT_FALSE(vm.schedule_maintenance("alice", policy));  // one in flight

  std::vector<std::future<std::vector<bc::BackrefEntry>>> queries;
  for (int i = 0; i < 50; ++i) {
    queries.push_back(vm.query("alice", 1 + static_cast<bc::BlockNo>(i * 7)));
    queries.push_back(vm.query("bob", 999));  // bob is empty: 0 results, no error
  }
  auto bob_apply = vm.apply("bob", {add(999)});
  release.set_value();
  blocker.get();
  bob_apply.get();

  for (std::size_t i = 0; i < queries.size(); i += 2) {
    EXPECT_EQ(queries[i].get().size(), 1u);
  }

  // The background probe eventually runs and compacts alice down to the
  // single post-maintenance From run holding the live records.
  for (int spin = 0; spin < 100; ++spin) {
    if (vm.stats().tenants.at("alice").maintenance_runs > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const auto stats = vm.stats();
  EXPECT_EQ(stats.tenants.at("alice").maintenance_runs, 1u);
  EXPECT_LE(vm.quick_stats("alice").get().l0_runs(), 1u);
  // Maintenance must not have disturbed visibility.
  EXPECT_EQ(vm.query("alice", 1).get().size(), 1u);
}

TEST(Service, MaintenanceSkipsMidCpWindow) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");
  vm.apply("alice", {add(1), add(2)}).get();  // write store non-empty

  bsvc::MaintenancePolicy policy;
  policy.l0_run_threshold = 0;  // always over threshold
  ASSERT_TRUE(vm.schedule_maintenance("alice", policy));
  // Wait for the probe to drain (it skips, it must not throw).
  for (int spin = 0; spin < 100; ++spin) {
    if (vm.stats().tenants.at("alice").maintenance_skipped > 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto stats = vm.stats();
  EXPECT_EQ(stats.tenants.at("alice").maintenance_runs, 0u);
  EXPECT_EQ(stats.tenants.at("alice").maintenance_skipped, 1u);
  // Buffered updates are intact.
  EXPECT_EQ(vm.query("alice", 1).get().size(), 1u);
}

TEST(Service, IoStatsIsolationAcrossVolumes) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));  // same shard, distinct Envs
  vm.open_volume("heavy");
  vm.open_volume("light");

  vm.apply("light", {add(1)}).get();
  vm.consistency_point("light").get();
  const bs::IoStats light_before = vm.io_stats("light").get();

  // Hammer the heavy tenant on the same shard.
  bc::BlockNo next = 1;
  for (int cp = 0; cp < 8; ++cp) {
    std::vector<bsvc::UpdateOp> batch;
    for (int i = 0; i < 500; ++i) batch.push_back(add(next++));
    vm.apply("heavy", std::move(batch)).get();
    vm.consistency_point("heavy").get();
  }
  vm.maintain("heavy").get();

  const bs::IoStats light_after = vm.io_stats("light").get();
  const bs::IoStats heavy = vm.io_stats("heavy").get();
  // The heavy tenant's I/O lands exclusively on its own Env.
  EXPECT_EQ(light_after.page_writes, light_before.page_writes);
  EXPECT_EQ(light_after.page_reads, light_before.page_reads);
  EXPECT_GT(heavy.page_writes, light_after.page_writes * 4);
}

TEST(Service, QuickStatsMatchesFullWalk) {
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 1));
  vm.open_volume("alice");

  auto check = [&](const char* when) {
    vm.with_db("alice",
               [&](bc::BacklogDb& db) {
                 const bc::DbStats full = db.stats();
                 const bc::QuickStats quick = db.quick_stats();
                 EXPECT_EQ(quick.from_runs, full.from_runs) << when;
                 EXPECT_EQ(quick.to_runs, full.to_runs) << when;
                 EXPECT_EQ(quick.combined_runs, full.combined_runs) << when;
                 EXPECT_EQ(quick.db_bytes, full.db_bytes) << when;
                 EXPECT_EQ(quick.run_records, full.run_records) << when;
                 EXPECT_EQ(quick.ws_entries, full.ws_from + full.ws_to) << when;
               })
        .get();
  };

  bc::BlockNo next = 1;
  for (int cp = 0; cp < 6; ++cp) {
    std::vector<bsvc::UpdateOp> batch;
    for (int i = 0; i < 300; ++i) batch.push_back(add(next++));
    // Remove a few of this window's adds so To runs appear as well.
    for (int i = 0; i < 50; ++i) {
      batch.push_back({bsvc::UpdateOp::Kind::kRemove,
                       key(next - 1 - static_cast<bc::BlockNo>(i))});
    }
    vm.apply("alice", std::move(batch)).get();
    check("mid-window");
    vm.consistency_point("alice").get();
    check("after cp");
  }
  vm.maintain("alice").get();
  check("after maintenance");
  vm.relocate("alice", 10, 5, 1'000'000).get();
  check("after relocate");
  vm.consistency_point("alice").get();
  check("after relocate cp");

  // Counters also survive recovery (rebuilt from the manifest).
  vm.close_volume("alice");
  vm.open_volume("alice");
  check("after reopen");
}

TEST(Service, StatsSnapshotsShardsSequentially) {
  // Regression: stats() used to submit one snapshot task to every shard at
  // once, so every shard served the aggregation at the same moment (a
  // coordinated fleet-wide blip) and a slow shard was sampled *before* the
  // aggregate's own wait on earlier shards finished. Now shard k's snapshot
  // is only submitted once shard k-1's completed. Deterministic probe: gate
  // shard 0, start stats(), complete updates on shard 1 while shard 0 is
  // blocked — the aggregate must include them, because shard 1 may only be
  // snapshotted after shard 0 drains.
  bs::TempDir dir;
  bsvc::VolumeManager vm(service_options(dir, 2));
  // Find tenant names that land on shard 0 and shard 1.
  std::string t0, t1;
  for (int i = 0; (t0.empty() || t1.empty()) && i < 64; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    (vm.shard_of(name) == 0 ? t0 : t1) = name;
  }
  ASSERT_FALSE(t0.empty());
  ASSERT_FALSE(t1.empty());
  vm.open_volume(t0);
  vm.open_volume(t1);

  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  auto blocker = vm.with_db(t0, [released](bc::BacklogDb&) { released.wait(); });

  std::thread stats_thread;
  bsvc::ServiceStats observed;
  stats_thread = std::thread([&] { observed = vm.stats(); });

  // Shard 1 keeps serving while shard 0 is gated; these 3 updates complete
  // strictly before the gate opens.
  vm.apply(t1, {add(1), add(2), add(3)}).get();

  release.set_value();
  blocker.get();
  stats_thread.join();
  EXPECT_EQ(observed.tenants.at(t1).updates, 3u);
  EXPECT_EQ(observed.tenants.at(t0).updates, 0u);
}

TEST(Service, ConcurrentMultiTenantStressWithVerify) {
  constexpr std::size_t kTenants = 8;
  bs::TempDir dir;
  bsvc::ServiceOptions opts = service_options(dir, 2);
  bsvc::VolumeManager vm(opts);

  bsvc::MaintenancePolicy policy;
  policy.l0_run_threshold = 8;
  policy.budget_per_sweep = 2;
  policy.poll_interval = std::chrono::milliseconds(5);
  bsvc::MaintenanceScheduler scheduler(vm, policy);

  std::vector<bf::TenantWorkload> workloads;
  for (std::size_t i = 0; i < kTenants; ++i) {
    const std::string name = "tenant-" + std::to_string(i);
    vm.open_volume(name);
    bf::TenantTraceOptions to;
    to.block_ops = 3000 + 500 * i;  // skewed load
    to.remove_fraction = 0.4;
    to.seed = 1000 + i;
    workloads.push_back({name, bf::synthesize_tenant_trace(to)});
  }

  bf::ReplayOptions ro;
  ro.batch_ops = 128;
  ro.ops_per_cp = 500;
  ro.query_every_ops = 100;
  const auto results = bf::replay_concurrently(vm, workloads, ro);
  scheduler.stop();

  ASSERT_EQ(results.size(), kTenants);
  for (std::size_t i = 0; i < kTenants; ++i) {
    EXPECT_EQ(results[i].ops, workloads[i].trace.ops.size());
    EXPECT_GT(results[i].cps, 0u);
    EXPECT_GT(results[i].queries, 0u);
    // Every interleaved query targeted a live reference.
    EXPECT_EQ(results[i].empty_query_results, 0u) << results[i].tenant;
  }

  // Scan/verify: each volume's incomplete (live) records must be exactly
  // the trace's ground truth, regardless of how background maintenance
  // interleaved with the replay.
  for (const auto& wl : workloads) {
    std::set<KeyTuple> expect;
    for (const auto& k : wl.trace.live_keys) expect.insert(tup(k));
    std::set<KeyTuple> got;
    vm.with_db(wl.tenant,
               [&](bc::BacklogDb& db) {
                 for (const auto& rec : db.scan_all()) {
                   if (rec.to == bc::kInfinity) got.insert(tup(rec.key));
                 }
               })
        .get();
    EXPECT_EQ(got, expect) << wl.tenant;
  }

  const auto stats = vm.stats();
  EXPECT_EQ(stats.tenants.size(), kTenants);
  std::uint64_t total_updates = 0;
  for (const auto& [name, ts] : stats.tenants) total_updates += ts.updates;
  EXPECT_EQ(total_updates, stats.total.updates);
  EXPECT_GT(stats.total.queries, 0u);
  EXPECT_GT(stats.total.query_micros.count(), 0u);
}
