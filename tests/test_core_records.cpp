// Record encoding, snapshot registry, write-store pruning, and the outer
// join — the §4 building blocks of Backlog.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/backref_record.hpp"
#include "core/join.hpp"
#include "core/snapshot_registry.hpp"
#include "core/write_store.hpp"
#include "util/random.hpp"

namespace bc = backlog::core;
namespace bu = backlog::util;

namespace {
bc::BackrefKey key(bc::BlockNo b, bc::InodeNo ino = 2, std::uint64_t off = 0,
                   bc::LineId line = 0, std::uint64_t len = 1) {
  bc::BackrefKey k;
  k.block = b;
  k.inode = ino;
  k.offset = off;
  k.length = len;
  k.line = line;
  return k;
}
}  // namespace

TEST(Records, EncodeDecodeRoundTrip) {
  const bc::FromRecord f{key(100, 2, 7, 3, 4), 42};
  std::uint8_t buf[bc::kFromRecordSize];
  bc::encode_from(f, buf);
  EXPECT_EQ(bc::decode_from(buf), f);

  const bc::ToRecord t{key(5), 9};
  std::uint8_t tbuf[bc::kToRecordSize];
  bc::encode_to(t, tbuf);
  EXPECT_EQ(bc::decode_to(tbuf), t);

  const bc::CombinedRecord c{key(77, 1, 2, 0, 8), 3, bc::kInfinity};
  std::uint8_t cbuf[bc::kCombinedRecordSize];
  bc::encode_combined(c, cbuf);
  EXPECT_EQ(bc::decode_combined(cbuf), c);
}

TEST(Records, MemcmpOrderEqualsTupleOrder) {
  bu::Rng rng(99);
  auto random_rec = [&]() {
    bc::CombinedRecord r;
    r.key.block = rng.below(1000);
    r.key.inode = rng.below(100);
    r.key.offset = rng.below(50);
    r.key.length = 1 + rng.below(4);
    r.key.line = rng.below(5);
    r.from = rng.below(100);
    r.to = rng.chance(0.2) ? bc::kInfinity : rng.below(200);
    return r;
  };
  for (int i = 0; i < 2000; ++i) {
    const bc::CombinedRecord a = random_rec(), b = random_rec();
    std::uint8_t ea[bc::kCombinedRecordSize], eb[bc::kCombinedRecordSize];
    bc::encode_combined(a, ea);
    bc::encode_combined(b, eb);
    const int c = std::memcmp(ea, eb, bc::kCombinedRecordSize);
    EXPECT_EQ(a < b, c < 0);
    EXPECT_EQ(a == b, c == 0);
  }
}

TEST(Records, ToStringIsHumanReadable) {
  const bc::CombinedRecord c{key(100, 2, 0, 0), 4, bc::kInfinity};
  const std::string s = bc::to_string(c);
  EXPECT_NE(s.find("block=100"), std::string::npos);
  EXPECT_NE(s.find("inf"), std::string::npos);
}

// --- SnapshotRegistry -----------------------------------------------------

TEST(Registry, FreshStateHasLiveRootLine) {
  bc::SnapshotRegistry reg;
  EXPECT_TRUE(reg.line_exists(0));
  EXPECT_TRUE(reg.line_live(0));
  EXPECT_EQ(reg.current_cp(), 1u);
  EXPECT_EQ(reg.lines(), std::vector<bc::LineId>{0});
}

TEST(Registry, SnapshotsAndValidVersions) {
  bc::SnapshotRegistry reg;
  reg.advance_cp();  // cp=2
  reg.advance_cp();  // cp=3
  EXPECT_EQ(reg.take_snapshot(0), 3u);
  reg.advance_cp();  // cp=4
  reg.advance_cp();  // cp=5
  EXPECT_EQ(reg.take_snapshot(0), 5u);
  reg.advance_cp();  // cp=6

  // A record alive over [2, inf) is visible at snapshots 3, 5 and live 6.
  EXPECT_EQ(reg.valid_versions_in(0, 2, bc::kInfinity),
            (std::vector<bc::Epoch>{3, 5, 6}));
  // A record alive over [2, 5) sees only snapshot 3.
  EXPECT_EQ(reg.valid_versions_in(0, 2, 5), (std::vector<bc::Epoch>{3}));
  // Deleting snapshot 3 removes it from visibility.
  reg.delete_snapshot(0, 3);
  EXPECT_TRUE(reg.valid_versions_in(0, 2, 5).empty());
}

TEST(Registry, LiveHeadCountsOnce) {
  bc::SnapshotRegistry reg;
  reg.take_snapshot(0);  // snapshot at cp 1 == current
  const auto v = reg.valid_versions_in(0, 0, bc::kInfinity);
  EXPECT_EQ(v, std::vector<bc::Epoch>{1});  // not duplicated
}

TEST(Registry, CloneLifecycleAndZombies) {
  bc::SnapshotRegistry reg;
  reg.advance_cp();                       // cp=2
  const bc::Epoch snap = reg.take_snapshot(0);  // v=2
  reg.advance_cp();                       // cp=3
  const bc::LineId clone = reg.create_clone(0, snap);
  EXPECT_TRUE(reg.line_live(clone));
  ASSERT_EQ(reg.clones_of(0).size(), 1u);
  EXPECT_EQ(reg.clones_of(0)[0].child, clone);
  EXPECT_EQ(reg.clones_of(0)[0].branch_version, snap);

  // Deleting the cloned snapshot makes it a zombie, not gone (§4.2.2).
  reg.delete_snapshot(0, snap);
  EXPECT_EQ(reg.zombie_count(), 1u);
  // The zombie still protects intervals containing it.
  EXPECT_TRUE(reg.interval_protected(0, 1, 3));
  // But it is not a *valid* (queryable) version.
  EXPECT_TRUE(reg.valid_versions_in(0, 2, 3).empty());

  // Zombie survives collection while the clone lives...
  EXPECT_EQ(reg.collect_zombies(), 0u);
  // ...and is dropped once the clone line is fully dead.
  reg.kill_line(clone);
  EXPECT_EQ(reg.collect_zombies(), 1u);
  EXPECT_EQ(reg.zombie_count(), 0u);
  EXPECT_FALSE(reg.line_exists(clone));
}

TEST(Registry, RecursiveClonesKeepAncestryAlive) {
  bc::SnapshotRegistry reg;
  reg.advance_cp();
  const bc::Epoch s0 = reg.take_snapshot(0);
  const bc::LineId l1 = reg.create_clone(0, s0);
  reg.advance_cp();
  const bc::Epoch s1 = reg.take_snapshot(l1);
  const bc::LineId l2 = reg.create_clone(l1, s1);

  // Kill the middle line's head and delete its snapshot: it must survive as
  // a zombie holder because l2 still descends from it.
  reg.delete_snapshot(l1, s1);
  reg.kill_line(l1);
  reg.collect_zombies();
  EXPECT_TRUE(reg.line_exists(l1));
  EXPECT_TRUE(reg.interval_protected(l1, s1, s1 + 1));

  // Once the grandchild dies too, the whole chain collapses.
  reg.kill_line(l2);
  reg.collect_zombies();
  EXPECT_FALSE(reg.line_exists(l2));
  EXPECT_FALSE(reg.line_exists(l1));
}

TEST(Registry, IntervalProtectedByLiveHeadAndBranchPoints) {
  bc::SnapshotRegistry reg;
  reg.advance_cp();  // cp=2
  // Live head protects intervals containing the current CP.
  EXPECT_TRUE(reg.interval_protected(0, 1, bc::kInfinity));
  EXPECT_FALSE(reg.interval_protected(0, 1, 2));  // [1,2) excludes cp 2
  reg.take_snapshot(0);                           // v=2
  EXPECT_TRUE(reg.interval_protected(0, 1, 3));
  // Unknown lines protect nothing.
  EXPECT_FALSE(reg.interval_protected(77, 0, bc::kInfinity));
}

TEST(Registry, CloneOfUnretainedVersionThrows) {
  bc::SnapshotRegistry reg;
  EXPECT_THROW(reg.create_clone(0, 1), std::invalid_argument);
  EXPECT_THROW(reg.delete_snapshot(0, 1), std::invalid_argument);
  EXPECT_THROW(reg.take_snapshot(5), std::invalid_argument);
}

TEST(Registry, SerializeRoundTrip) {
  bc::SnapshotRegistry reg;
  reg.advance_cp();
  const bc::Epoch s = reg.take_snapshot(0);
  const bc::LineId c1 = reg.create_clone(0, s);
  reg.advance_cp();
  reg.take_snapshot(c1);
  reg.delete_snapshot(0, s);  // zombie
  std::vector<std::uint8_t> blob;
  reg.serialize(blob);
  std::size_t consumed = 0;
  bc::SnapshotRegistry reg2 = bc::SnapshotRegistry::deserialize(blob, &consumed);
  EXPECT_EQ(consumed, blob.size());
  EXPECT_EQ(reg2.current_cp(), reg.current_cp());
  EXPECT_EQ(reg2.lines(), reg.lines());
  EXPECT_EQ(reg2.zombie_count(), 1u);
  EXPECT_EQ(reg2.clones_of(0).size(), 1u);
  EXPECT_EQ(reg2.snapshots(c1), reg.snapshots(c1));
}

// --- WriteStore pruning (§5.1) ----------------------------------------------

TEST(WriteStore, AddThenRemoveSameCpAnnihilates) {
  bc::WriteStore ws;
  EXPECT_EQ(ws.add_reference(key(1), 5), bc::WsUpdate::kInserted);
  EXPECT_EQ(ws.remove_reference(key(1), 5), bc::WsUpdate::kPrunedAnnihilate);
  EXPECT_TRUE(ws.empty());
}

TEST(WriteStore, RemoveThenAddSameCpMerges) {
  // The paper's example: reference alive since CP 3, removed and re-added
  // within CP 4 -> the buffered To is erased and the lifetime continues.
  bc::WriteStore ws;
  EXPECT_EQ(ws.remove_reference(key(1), 4), bc::WsUpdate::kInserted);
  EXPECT_EQ(ws.add_reference(key(1), 4), bc::WsUpdate::kPrunedMerge);
  EXPECT_TRUE(ws.empty());
}

TEST(WriteStore, PruningDisabledKeepsBothSides) {
  bc::WriteStore ws(/*pruning=*/false);
  ws.add_reference(key(1), 5);
  ws.remove_reference(key(1), 5);
  EXPECT_EQ(ws.from_size(), 1u);
  EXPECT_EQ(ws.to_size(), 1u);
}

TEST(WriteStore, DifferentKeysDoNotPrune) {
  bc::WriteStore ws;
  ws.add_reference(key(1, 2, 0), 5);
  ws.remove_reference(key(1, 2, 1), 5);  // different offset
  EXPECT_EQ(ws.from_size(), 1u);
  EXPECT_EQ(ws.to_size(), 1u);
}

TEST(WriteStore, EncodedBuffersAreSorted) {
  bc::WriteStore ws;
  ws.add_reference(key(30), 1);
  ws.add_reference(key(10), 1);
  ws.add_reference(key(20), 1);
  const auto buf = ws.encode_from_sorted();
  ASSERT_EQ(buf.size(), 3 * bc::kFromRecordSize);
  EXPECT_EQ(bc::decode_from(buf.data()).key.block, 10u);
  EXPECT_EQ(bc::decode_from(buf.data() + bc::kFromRecordSize).key.block, 20u);
  EXPECT_EQ(bc::decode_from(buf.data() + 2 * bc::kFromRecordSize).key.block, 30u);
}

TEST(WriteStore, RangeEncodingSelectsBlocks) {
  bc::WriteStore ws;
  for (std::uint64_t b : {5, 10, 15, 20}) ws.add_reference(key(b), 1);
  const auto buf = ws.encode_from_range(10, 20);
  ASSERT_EQ(buf.size(), 2 * bc::kFromRecordSize);
  EXPECT_EQ(bc::decode_from(buf.data()).key.block, 10u);
}

TEST(WriteStore, RekeyBlockRange) {
  bc::WriteStore ws;
  ws.add_reference(key(10), 1);
  ws.add_reference(key(11), 1);
  ws.remove_reference(key(12), 1);
  EXPECT_EQ(ws.rekey_block_range(10, 12, 100), 2u);
  const auto buf = ws.encode_from_range(100, 102);
  EXPECT_EQ(buf.size(), 2 * bc::kFromRecordSize);
  // The To entry at block 12 was outside the range and stays put.
  EXPECT_EQ(ws.encode_to_range(12, 13).size(), bc::kToRecordSize);
}

// --- join_group (§4.2.1) -------------------------------------------------------

TEST(Join, SimplePairing) {
  const auto out = bc::join_group(key(100), {4}, {7});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 4u);
  EXPECT_EQ(out[0].to, 7u);
}

TEST(Join, IncompleteRecordJoinsInfinity) {
  const auto out = bc::join_group(key(100), {4}, {});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].to, bc::kInfinity);
}

TEST(Join, UnmatchedToBecomesOverride) {
  // §4.2.2: a To with no From joins the implicit from = 0.
  const auto out = bc::join_group(key(100), {}, {43});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].from, 0u);
  EXPECT_EQ(out[0].to, 43u);
  EXPECT_TRUE(out[0].is_override());
}

TEST(Join, PaperSection421Example) {
  // Block 103: inode 4 alive [10,12) and [16,20), inode 5 alive [30,inf).
  // Within one inode-4 group: froms {10,16}, tos {12,20}.
  const auto out4 = bc::join_group(key(103, 4, 0, 0), {10, 16}, {12, 20});
  ASSERT_EQ(out4.size(), 2u);
  EXPECT_EQ(out4[0], (bc::CombinedRecord{key(103, 4, 0, 0), 10, 12}));
  EXPECT_EQ(out4[1], (bc::CombinedRecord{key(103, 4, 0, 0), 16, 20}));
  const auto out5 = bc::join_group(key(103, 5, 2, 0), {30}, {});
  ASSERT_EQ(out5.size(), 1u);
  EXPECT_EQ(out5[0], (bc::CombinedRecord{key(103, 5, 2, 0), 30, bc::kInfinity}));
}

TEST(Join, EqualEpochsAnnihilate) {
  // from == to records can only arise with pruning disabled; the join must
  // drop them rather than fabricate an override + live pair.
  const auto out = bc::join_group(key(1), {5}, {5});
  EXPECT_TRUE(out.empty());
  // ...even interleaved with real intervals.
  const auto out2 = bc::join_group(key(1), {3, 5}, {5, 5});
  // from=3 pairs with to=5; from=5 annihilates with the second to=5.
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(out2[0], (bc::CombinedRecord{key(1), 3, 5}));
}

TEST(Join, ManyIntervalsPairInOrder) {
  const auto out = bc::join_group(key(9), {1, 10, 20, 30}, {5, 15, 25});
  ASSERT_EQ(out.size(), 4u);
  EXPECT_EQ(out[0], (bc::CombinedRecord{key(9), 1, 5}));
  EXPECT_EQ(out[1], (bc::CombinedRecord{key(9), 10, 15}));
  EXPECT_EQ(out[2], (bc::CombinedRecord{key(9), 20, 25}));
  EXPECT_EQ(out[3], (bc::CombinedRecord{key(9), 30, bc::kInfinity}));
}

TEST(Join, OverridePlusLaterReallocation) {
  // Clone overrides an inherited block at 43, then the same block is
  // reallocated to the same owner at 50: (0,43) and (50,inf).
  const auto out = bc::join_group(key(107, 5, 2, 1), {50}, {43});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0], (bc::CombinedRecord{key(107, 5, 2, 1), 0, 43}));
  EXPECT_EQ(out[1], (bc::CombinedRecord{key(107, 5, 2, 1), 50, bc::kInfinity}));
}

TEST(Join, OuterJoinStreamGroupsAcrossKeys) {
  // Build encoded From/To streams spanning three key groups.
  std::vector<std::uint8_t> from_buf, to_buf;
  auto push_from = [&](const bc::FromRecord& r) {
    from_buf.resize(from_buf.size() + bc::kFromRecordSize);
    bc::encode_from(r, from_buf.data() + from_buf.size() - bc::kFromRecordSize);
  };
  auto push_to = [&](const bc::ToRecord& r) {
    to_buf.resize(to_buf.size() + bc::kToRecordSize);
    bc::encode_to(r, to_buf.data() + to_buf.size() - bc::kToRecordSize);
  };
  push_from({key(1), 2});             // incomplete
  push_from({key(2), 3});             // pairs with to=6
  push_to({key(2), 6});
  push_to({key(3), 9});               // override

  bc::OuterJoinStream join(
      std::make_unique<backlog::lsm::VectorStream>(from_buf, bc::kFromRecordSize),
      std::make_unique<backlog::lsm::VectorStream>(to_buf, bc::kToRecordSize));
  std::vector<bc::CombinedRecord> out;
  while (join.valid()) {
    out.push_back(bc::decode_combined(join.record().data()));
    join.next();
  }
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0], (bc::CombinedRecord{key(1), 2, bc::kInfinity}));
  EXPECT_EQ(out[1], (bc::CombinedRecord{key(2), 3, 6}));
  EXPECT_EQ(out[2], (bc::CombinedRecord{key(3), 0, 9}));
}

TEST(Join, OuterJoinStreamHandlesNullSides) {
  std::vector<std::uint8_t> from_buf(bc::kFromRecordSize);
  bc::encode_from({key(7), 1}, from_buf.data());
  bc::OuterJoinStream join(
      std::make_unique<backlog::lsm::VectorStream>(from_buf, bc::kFromRecordSize),
      nullptr);
  ASSERT_TRUE(join.valid());
  EXPECT_EQ(bc::decode_combined(join.record().data()).to, bc::kInfinity);
  join.next();
  EXPECT_FALSE(join.valid());

  bc::OuterJoinStream empty(nullptr, nullptr);
  EXPECT_FALSE(empty.valid());
}
